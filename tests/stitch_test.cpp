#include <gtest/gtest.h>

#include "core/error.h"
#include "stitch/compositor.h"
#include "stitch/stitcher.h"

namespace vs::stitch {
namespace {

geo::warped_patch solid_patch(int x0, int y0, int w, int h,
                              std::uint8_t tone) {
  geo::warped_patch patch;
  patch.x0 = x0;
  patch.y0 = y0;
  patch.pixels = img::image_u8(w, h, 1, tone);
  patch.valid = img::image_u8(w, h, 1, 255);
  return patch;
}

TEST(Compositor, StartsEmpty) {
  compositor canvas;
  EXPECT_TRUE(canvas.empty());
  EXPECT_TRUE(canvas.render().empty());
  EXPECT_DOUBLE_EQ(canvas.coverage(), 0.0);
}

TEST(Compositor, EnsureThenBlendRendersContent) {
  compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 4, 4}));
  canvas.blend(solid_patch(0, 0, 4, 4, 200));
  const auto out = canvas.render();
  EXPECT_EQ(out.width(), 4);
  EXPECT_EQ(out.height(), 4);
  EXPECT_EQ(out.at(1, 1), 200);
  EXPECT_DOUBLE_EQ(canvas.coverage(), 1.0);
}

TEST(Compositor, EnsureGrowsAndPreservesContent) {
  compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 4, 4}));
  canvas.blend(solid_patch(0, 0, 4, 4, 100));
  ASSERT_TRUE(canvas.ensure(geo::rect{-2, -2, 4, 4}));
  EXPECT_EQ(canvas.bounds(), (geo::rect{-2, -2, 6, 6}));
  const auto out = canvas.render();
  // Only the original 4x4 is covered; render crops to it.
  EXPECT_EQ(out.width(), 4);
  EXPECT_EQ(out.at(0, 0), 100);
}

TEST(Compositor, LaterPatchOverwrites) {
  compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 6, 4}));
  canvas.blend(solid_patch(0, 0, 6, 4, 50));
  canvas.feather_seams();
  canvas.blend(solid_patch(2, 0, 4, 4, 250));
  const auto out = canvas.render();
  EXPECT_EQ(out.at(0, 0), 50);
  EXPECT_EQ(out.at(5, 0), 250);
}

TEST(Compositor, InvalidPixelsDoNotWrite) {
  compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 4, 4}));
  auto patch = solid_patch(0, 0, 4, 4, 200);
  patch.valid.at(2, 2) = 0;
  canvas.blend(patch);
  EXPECT_LT(canvas.coverage(), 1.0);
}

TEST(Compositor, PixelCapRefusesGrowth) {
  compositor canvas(/*max_pixels=*/16);
  EXPECT_TRUE(canvas.ensure(geo::rect{0, 0, 4, 4}));
  EXPECT_FALSE(canvas.ensure(geo::rect{0, 0, 40, 40}));
  EXPECT_EQ(canvas.bounds(), (geo::rect{0, 0, 4, 4}));
}

TEST(Compositor, BlendWithoutEnsureThrows) {
  compositor canvas;
  auto patch = solid_patch(0, 0, 2, 2, 9);
  EXPECT_THROW(canvas.blend(patch), invalid_argument);
}

TEST(Compositor, FeatherSmoothsSeam) {
  compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 8, 4}));
  canvas.blend(solid_patch(0, 0, 8, 4, 0));
  canvas.feather_seams();
  canvas.blend(solid_patch(4, 0, 4, 4, 255));
  canvas.feather_seams();
  const auto out = canvas.render();
  // The first new column bordering old content is averaged toward it.
  EXPECT_LT(out.at(4, 2), 255);
  EXPECT_GT(out.at(4, 2), 0);
  // Interior of the new patch is untouched.
  EXPECT_EQ(out.at(7, 2), 255);
}

TEST(Montage, LaysOutLeftToRight) {
  img::image_u8 a(3, 2, 1, 10);
  img::image_u8 b(2, 4, 1, 20);
  const auto out = montage({a, b}, 2);
  EXPECT_EQ(out.width(), 3 + 2 + 2);
  EXPECT_EQ(out.height(), 4);
  EXPECT_EQ(out.at(0, 0), 10);
  EXPECT_EQ(out.at(5, 0), 20);
  EXPECT_EQ(out.at(3, 0), 0);  // gap column
}

TEST(Montage, SkipsEmptyImages) {
  img::image_u8 a(3, 2, 1, 10);
  const auto out = montage({img::image_u8{}, a, img::image_u8{}}, 2);
  EXPECT_EQ(out.width(), 3);
}

TEST(Montage, AllEmptyGivesEmpty) {
  EXPECT_TRUE(montage({img::image_u8{}, img::image_u8{}}).empty());
}

TEST(MiniPanorama, AnchorsFirstFrame) {
  mini_panorama_builder builder;
  img::image_u8 frame(16, 12, 1, 77);
  EXPECT_TRUE(builder.add_frame(frame, geo::mat3::identity()));
  EXPECT_EQ(builder.frames_added(), 1);
  const auto pano = builder.render();
  EXPECT_GE(pano.width(), 14);  // interpolation-domain trim allowed
  EXPECT_EQ(pano.at(3, 3), 77);
}

TEST(MiniPanorama, TranslationExtendsPanorama) {
  mini_panorama_builder builder;
  img::image_u8 frame(16, 12, 1, 77);
  ASSERT_TRUE(builder.add_frame(frame, geo::mat3::identity()));
  ASSERT_TRUE(builder.add_frame(frame, geo::mat3::translation(8.0, 0.0)));
  const auto pano = builder.render();
  EXPECT_GE(pano.width(), 20);
}

TEST(MiniPanorama, RejectsImplausibleTransform) {
  mini_panorama_builder builder;
  img::image_u8 frame(16, 12, 1, 77);
  EXPECT_FALSE(builder.add_frame(frame, geo::mat3::scaling(100.0, 100.0)));
  EXPECT_TRUE(builder.empty());
}

TEST(MiniPanorama, RejectsWhenCanvasCapHit) {
  mini_panorama_builder builder(/*max_pixels=*/64);
  img::image_u8 frame(16, 12, 1, 77);
  EXPECT_FALSE(builder.add_frame(frame, geo::mat3::identity()));
}

TEST(AlignFrames, NulloptOnTooFewFeatures) {
  feat::frame_features a;
  feat::frame_features b;
  EXPECT_FALSE(align_frames(a, b, match::match_params{}, alignment_params{}, 1)
                   .has_value());
}

}  // namespace
}  // namespace vs::stitch
