// Tests for the substrate extensions: recorded video, Harris scoring,
// pyramids / resizing, and gain-compensated compositing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <filesystem>

#include "app/config.h"
#include "core/error.h"
#include "features/harris.h"
#include "features/pyramid.h"
#include "image/draw.h"
#include "image/image_io.h"
#include "stitch/compositor.h"
#include "video/recorded.h"

namespace vs {
namespace {

// ---------------------------------------------------------------------------
// recorded_video
// ---------------------------------------------------------------------------

class RecordedVideo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/vs_recorded_test";
    std::filesystem::create_directories(dir_);
    for (int i = 0; i < 3; ++i) {
      img::image_u8 frame(16, 12, 1, static_cast<std::uint8_t>(10 * i));
      char name[64];
      std::snprintf(name, sizeof(name), "/frame_%04d.pgm", i);
      img::save_pnm(frame, dir_ + name);
    }
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(RecordedVideo, LoadsFramesInOrder) {
  video::recorded_video clip(dir_);
  EXPECT_EQ(clip.frame_count(), 3);
  EXPECT_EQ(clip.frame_width(), 16);
  EXPECT_EQ(clip.frame(2).at(0, 0), 20);
}

TEST_F(RecordedVideo, DownsamplesOnLoad) {
  video::recorded_video clip(dir_, 2);
  EXPECT_EQ(clip.frame_width(), 8);
  EXPECT_EQ(clip.frame(0).height(), 6);
}

TEST_F(RecordedVideo, EmptyDirectoryThrows) {
  const std::string empty = dir_ + "/empty";
  std::filesystem::create_directories(empty);
  EXPECT_THROW((void)video::recorded_video(empty), io_error);
}

TEST_F(RecordedVideo, ListFindsOnlyPnm) {
  img::save_pnm(img::image_u8(4, 4, 1), dir_ + "/zz.ppm");
  std::ofstream(dir_ + "/notes.txt") << "not an image";
  const auto files = video::list_pnm_files(dir_);
  EXPECT_EQ(files.size(), 4u);  // 3 pgm + 1 ppm, txt ignored
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

// ---------------------------------------------------------------------------
// Harris response
// ---------------------------------------------------------------------------

TEST(Harris, FlatRegionScoresNearZero) {
  img::image_u8 flat(32, 32, 1, 100);
  EXPECT_NEAR(feat::harris_response(flat, 16, 16), 0.0, 1e-9);
}

TEST(Harris, EdgeScoresNegative) {
  img::image_u8 edge(32, 32, 1, 0);
  for (int y = 0; y < 32; ++y) {
    for (int x = 16; x < 32; ++x) edge.at(x, y) = 200;
  }
  EXPECT_LT(feat::harris_response(edge, 16, 16), 0.0);
}

TEST(Harris, CornerScoresPositiveAndAboveEdge) {
  img::image_u8 corner(32, 32, 1, 0);
  img::fill_rect(corner, 16, 16, 16, 16, img::color{200, 200, 200});
  const double at_corner = feat::harris_response(corner, 16, 16);
  EXPECT_GT(at_corner, 0.0);
  img::image_u8 edge(32, 32, 1, 0);
  for (int y = 0; y < 32; ++y) {
    for (int x = 16; x < 32; ++x) edge.at(x, y) = 200;
  }
  EXPECT_GT(at_corner, feat::harris_response(edge, 16, 16));
}

TEST(Harris, FastWithHarrisScoringStillDetects) {
  img::image_u8 im(64, 64, 1, 60);
  img::fill_rect(im, 24, 24, 16, 16, img::color{220, 220, 220});
  feat::fast_params params;
  params.border = 8;
  params.score = feat::corner_score::harris;
  const auto keypoints = feat::fast_detect(im, params);
  EXPECT_FALSE(keypoints.empty());
}

// ---------------------------------------------------------------------------
// Pyramid / resize
// ---------------------------------------------------------------------------

TEST(Resize, PreservesFlatContent) {
  img::image_u8 flat(20, 10, 1, 77);
  const auto resized = feat::resize_bilinear(flat, 13, 7);
  EXPECT_EQ(resized.width(), 13);
  EXPECT_EQ(resized.height(), 7);
  for (std::size_t i = 0; i < resized.size(); ++i) {
    EXPECT_NEAR(resized[i], 77, 1);
  }
}

TEST(Resize, DownThenUpApproximatesSmooth) {
  img::image_u8 ramp(32, 32, 1);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      ramp.at(x, y) = static_cast<std::uint8_t>(4 * x + 2 * y);
    }
  }
  const auto down = feat::resize_bilinear(ramp, 16, 16);
  const auto up = feat::resize_bilinear(down, 32, 32);
  EXPECT_LT(img::mean_abs_diff(ramp, up), 6.0);
}

TEST(Resize, RejectsBadArguments) {
  EXPECT_THROW((void)feat::resize_bilinear(img::image_u8{}, 4, 4),
               invalid_argument);
  EXPECT_THROW((void)feat::resize_bilinear(img::image_u8(4, 4, 1), 0, 4),
               invalid_argument);
}

TEST(Pyramid, LevelsShrinkByFactor) {
  img::image_u8 base(128, 96, 1, 50);
  feat::pyramid_params params;
  params.levels = 3;
  params.scale_factor = 2.0;
  params.min_dimension = 24;
  const auto pyramid = feat::build_pyramid(base, params);
  ASSERT_EQ(pyramid.size(), 3u);
  EXPECT_EQ(pyramid[0].image.width(), 128);
  EXPECT_EQ(pyramid[1].image.width(), 64);
  EXPECT_EQ(pyramid[2].image.width(), 32);
  EXPECT_NEAR(pyramid[2].scale, 4.0, 1e-9);
}

TEST(Pyramid, StopsAtMinDimension) {
  img::image_u8 base(100, 100, 1);
  feat::pyramid_params params;
  params.levels = 10;
  params.scale_factor = 2.0;
  params.min_dimension = 40;
  const auto pyramid = feat::build_pyramid(base, params);
  EXPECT_EQ(pyramid.size(), 2u);  // 100, 50; 25 < 40 stops
}

TEST(Pyramid, RejectsBadParams) {
  img::image_u8 base(64, 64, 1);
  feat::pyramid_params params;
  params.levels = 0;
  EXPECT_THROW((void)feat::build_pyramid(base, params), invalid_argument);
  params.levels = 2;
  params.scale_factor = 1.0;
  EXPECT_THROW((void)feat::build_pyramid(base, params), invalid_argument);
}

TEST(Pyramid, MultiScaleExtractCoversAllLevels) {
  // Corner-rich scene: multi-scale extraction finds at least the
  // single-scale set, with coordinates in base-image range.
  img::image_u8 im(128, 96, 1, 60);
  for (int y = 20; y < 80; y += 12) {
    for (int x = 20; x < 110; x += 12) {
      img::fill_rect(im, x, y, 3, 3, img::color{230, 230, 230});
    }
  }
  feat::orb_params params;
  const auto single = feat::orb_extract(im, params);
  feat::pyramid_params pyr;
  pyr.levels = 3;
  const auto multi = feat::orb_extract_pyramid(im, params, pyr);
  EXPECT_GE(multi.size(), single.size());
  for (const auto& kp : multi.keypoints) {
    EXPECT_GE(kp.x, 0.0f);
    EXPECT_LT(kp.x, 128.0f);
    EXPECT_GE(kp.y, 0.0f);
    EXPECT_LT(kp.y, 96.0f);
  }
}

// ---------------------------------------------------------------------------
// Gain compensation
// ---------------------------------------------------------------------------

geo::warped_patch solid(int x0, int y0, int w, int h, std::uint8_t tone) {
  geo::warped_patch patch;
  patch.x0 = x0;
  patch.y0 = y0;
  patch.pixels = img::image_u8(w, h, 1, tone);
  patch.valid = img::image_u8(w, h, 1, 255);
  return patch;
}

TEST(GainCompensation, MatchesOverlapMean) {
  stitch::compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 30, 10}));
  canvas.blend(solid(0, 0, 20, 10, 100));
  canvas.feather_seams();
  // The new patch is twice as bright; with compensation its non-overlap
  // region is pulled toward the canvas level.
  canvas.blend(solid(10, 0, 20, 10, 200), /*gain_compensate=*/true);
  const auto out = canvas.render();
  EXPECT_NEAR(out.at(25, 5), 140, 6);  // 200 * 0.7 (clamped gain)
}

TEST(GainCompensation, NoOverlapMeansNoGain) {
  stitch::compositor canvas;
  ASSERT_TRUE(canvas.ensure(geo::rect{0, 0, 40, 10}));
  canvas.blend(solid(0, 0, 10, 10, 100));
  canvas.feather_seams();
  canvas.blend(solid(30, 0, 10, 10, 200), /*gain_compensate=*/true);
  const auto out = canvas.render();
  EXPECT_EQ(out.at(35, 5), 200);  // untouched: nothing to compensate against
}

TEST(GainCompensation, OffByDefaultInPipelineConfig) {
  app::pipeline_config config;
  EXPECT_FALSE(config.gain_compensation);
}

}  // namespace
}  // namespace vs
