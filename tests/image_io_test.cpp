#include <gtest/gtest.h>

#include <cstdio>

#include "core/error.h"
#include "image/image_io.h"

namespace vs::img {
namespace {

image_u8 gradient(int w, int h, int channels) {
  image_u8 im(w, h, channels);
  for (std::size_t i = 0; i < im.size(); ++i) {
    im[i] = static_cast<std::uint8_t>(i * 7 % 256);
  }
  return im;
}

TEST(ImageIo, RoundTripGray) {
  const image_u8 original = gradient(13, 7, 1);
  EXPECT_EQ(decode_pnm(encode_pnm(original)), original);
}

TEST(ImageIo, RoundTripRgb) {
  const image_u8 original = gradient(5, 9, 3);
  EXPECT_EQ(decode_pnm(encode_pnm(original)), original);
}

TEST(ImageIo, EncodeUsesP5ForGrayP6ForRgb) {
  EXPECT_EQ(encode_pnm(gradient(2, 2, 1)).substr(0, 2), "P5");
  EXPECT_EQ(encode_pnm(gradient(2, 2, 3)).substr(0, 2), "P6");
}

TEST(ImageIo, DecodesAsciiP2) {
  const std::string ascii = "P2\n2 2\n255\n0 64\n128 255\n";
  const image_u8 im = decode_pnm(ascii);
  EXPECT_EQ(im.width(), 2);
  EXPECT_EQ(im.at(1, 0), 64);
  EXPECT_EQ(im.at(1, 1), 255);
}

TEST(ImageIo, DecodesAsciiP3) {
  const std::string ascii = "P3\n1 1\n255\n10 20 30\n";
  const image_u8 im = decode_pnm(ascii);
  EXPECT_EQ(im.channels(), 3);
  EXPECT_EQ(im.at(0, 0, 2), 30);
}

TEST(ImageIo, SkipsHeaderComments) {
  const std::string ascii = "P2\n# a comment\n2 1\n# another\n255\n1 2\n";
  const image_u8 im = decode_pnm(ascii);
  EXPECT_EQ(im.at(0, 0), 1);
  EXPECT_EQ(im.at(1, 0), 2);
}

TEST(ImageIo, RejectsBadMagic) {
  EXPECT_THROW((void)decode_pnm("P9\n1 1\n255\n0"), io_error);
  EXPECT_THROW((void)decode_pnm("hello"), io_error);
}

TEST(ImageIo, RejectsTruncatedBinary) {
  std::string bytes = encode_pnm(gradient(4, 4, 1));
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW((void)decode_pnm(bytes), io_error);
}

TEST(ImageIo, RejectsBadMaxval) {
  EXPECT_THROW((void)decode_pnm("P2\n1 1\n70000\n0\n"), io_error);
  EXPECT_THROW((void)decode_pnm("P2\n1 1\n0\n0\n"), io_error);
}

TEST(ImageIo, RejectsUnreasonableDimensions) {
  EXPECT_THROW((void)decode_pnm("P2\n0 5\n255\n"), io_error);
  EXPECT_THROW((void)decode_pnm("P2\n100000 100000\n255\n"), io_error);
}

TEST(ImageIo, EncodeRejectsEmpty) {
  EXPECT_THROW((void)encode_pnm(image_u8{}), invalid_argument);
}

TEST(ImageIo, SaveAndLoadFile) {
  const image_u8 original = gradient(8, 6, 1);
  const std::string path = ::testing::TempDir() + "/vs_io_test.pgm";
  save_pnm(original, path);
  EXPECT_EQ(load_pnm(path), original);
  std::remove(path.c_str());
}

TEST(ImageIo, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_pnm("/nonexistent/path/nope.pgm"), io_error);
}

}  // namespace
}  // namespace vs::img
