#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "geometry/linalg.h"
#include "geometry/mat3.h"

namespace vs::geo {
namespace {

constexpr double kTol = 1e-9;

TEST(Mat3, IdentityAppliesNothing) {
  const mat3 id = mat3::identity();
  const vec2 p{3.5, -2.25};
  EXPECT_NEAR(id.apply(p).x, p.x, kTol);
  EXPECT_NEAR(id.apply(p).y, p.y, kTol);
  EXPECT_NEAR(id.det(), 1.0, kTol);
}

TEST(Mat3, TranslationMovesPoints) {
  const auto t = mat3::translation(5.0, -3.0);
  const vec2 q = t.apply({1.0, 1.0});
  EXPECT_NEAR(q.x, 6.0, kTol);
  EXPECT_NEAR(q.y, -2.0, kTol);
}

TEST(Mat3, RotationQuarterTurn) {
  const auto r = mat3::rotation(M_PI / 2);
  const vec2 q = r.apply({1.0, 0.0});
  EXPECT_NEAR(q.x, 0.0, kTol);
  EXPECT_NEAR(q.y, 1.0, kTol);
}

TEST(Mat3, RotationAboutCenterFixesCenter) {
  const vec2 center{10.0, 20.0};
  const auto r = mat3::rotation_about(1.234, center);
  const vec2 q = r.apply(center);
  EXPECT_NEAR(q.x, center.x, 1e-9);
  EXPECT_NEAR(q.y, center.y, 1e-9);
}

TEST(Mat3, ScalingScalesDeterminant) {
  const auto s = mat3::scaling(2.0, 3.0);
  EXPECT_NEAR(s.det(), 6.0, kTol);
}

TEST(Mat3, MultiplicationComposes) {
  const auto t = mat3::translation(1.0, 0.0);
  const auto r = mat3::rotation(M_PI / 2);
  // (r * t) means translate first, then rotate.
  const vec2 q = (r * t).apply({0.0, 0.0});
  EXPECT_NEAR(q.x, 0.0, kTol);
  EXPECT_NEAR(q.y, 1.0, kTol);
}

TEST(Mat3, InverseRoundTrips) {
  const mat3 m = mat3::translation(4.0, -7.0) * mat3::rotation(0.3) *
                 mat3::scaling(1.5, 0.75);
  const auto inv = m.inverse();
  ASSERT_TRUE(inv.has_value());
  const mat3 prod = m * (*inv);
  EXPECT_LT(prod.projective_distance(mat3::identity()), 1e-9);
}

TEST(Mat3, SingularHasNoInverse) {
  const mat3 collapse(1, 0, 0, 2, 0, 0, 3, 0, 1);  // rank-deficient
  EXPECT_FALSE(collapse.inverse().has_value());
}

TEST(Mat3, ApplyNearInfinityReturnsSentinel) {
  mat3 m = mat3::identity();
  m(2, 0) = 1.0;
  m(2, 2) = 0.0;  // w = x
  const vec2 q = m.apply({0.0, 5.0});  // w == 0
  EXPECT_GT(std::abs(q.x) + std::abs(q.y), 1e14);
}

TEST(Mat3, NormalizeSetsBottomRightToOne) {
  mat3 m = mat3::identity() * 4.0;
  m.normalize();
  EXPECT_NEAR(m(2, 2), 1.0, kTol);
  EXPECT_NEAR(m(0, 0), 1.0, kTol);
}

TEST(Mat3, IsAffineDetectsProjectiveTerms) {
  EXPECT_TRUE(mat3::identity().is_affine());
  mat3 m = mat3::identity();
  m(2, 0) = 0.01;
  EXPECT_FALSE(m.is_affine());
}

TEST(Mat3, ProjectiveDistanceInvariantToScale) {
  const mat3 m = mat3::translation(2.0, 3.0);
  const mat3 scaled = m * 7.5;
  EXPECT_LT(m.projective_distance(scaled), 1e-9);
}

TEST(Vec2, Arithmetic) {
  const vec2 a{1.0, 2.0};
  const vec2 b{3.0, -1.0};
  EXPECT_EQ((a + b), (vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (vec2{2.0, 4.0}));
  EXPECT_NEAR(a.dot(b), 1.0, kTol);
  EXPECT_NEAR(distance(a, b), std::sqrt(13.0), kTol);
}

TEST(Linalg, SolvesDiagonalSystem) {
  const auto x = solve_gaussian({2, 0, 0, 3}, {4, 9});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, kTol);
  EXPECT_NEAR((*x)[1], 3.0, kTol);
}

TEST(Linalg, SolvesSystemRequiringPivoting) {
  // First pivot is zero; partial pivoting must swap rows.
  const auto x = solve_gaussian({0, 1, 1, 0}, {5, 7});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 7.0, kTol);
  EXPECT_NEAR((*x)[1], 5.0, kTol);
}

TEST(Linalg, SingularSystemReturnsNullopt) {
  EXPECT_FALSE(solve_gaussian({1, 2, 2, 4}, {1, 2}).has_value());
}

TEST(Linalg, RejectsShapeMismatch) {
  EXPECT_THROW((void)solve_gaussian({1, 2, 3}, {1, 2}), invalid_argument);
}

TEST(Linalg, LeastSquaresExactSolution) {
  // y = 2x + 1 sampled at x = 0..3, design matrix [x 1].
  const std::vector<double> a = {0, 1, 1, 1, 2, 1, 3, 1};
  const std::vector<double> b = {1, 3, 5, 7};
  const auto x = solve_least_squares(a, b, 4, 2);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 2.0, kTol);
  EXPECT_NEAR((*x)[1], 1.0, kTol);
}

TEST(Linalg, LeastSquaresMinimizesResidual) {
  // Inconsistent system: best fit of constant to {0, 10} is 5.
  const std::vector<double> a = {1, 1};
  const std::vector<double> b = {0, 10};
  const auto x = solve_least_squares(a, b, 2, 1);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 5.0, kTol);
}

TEST(Linalg, LeastSquaresRejectsUnderdetermined) {
  EXPECT_THROW((void)solve_least_squares({1, 2}, {1}, 1, 2), invalid_argument);
}

}  // namespace
}  // namespace vs::geo
