// Stage-graph architecture tests: the registry as the one shared stage
// description, and the frame_executor's scheduling invariant — the summary
// is byte-identical across every (pool width, in-flight depth) combination,
// for both inputs, every approximation variant and hardening off/full, with
// the sequential instrumented lane as the reference.  Plus the regression
// test for recovery retries racing the acquisition prefetch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "app/pipeline.h"
#include "core/error.h"
#include "core/thread_pool.h"
#include "fault/detectors.h"
#include "pipeline/executor.h"
#include "pipeline/scheduler.h"
#include "pipeline/stage.h"
#include "resil/runtime.h"
#include "rt/instrument.h"
#include "video/generator.h"

namespace vs {
namespace {

using pipeline::budget_key;
using pipeline::stage_id;

// ---------------------------------------------------------------------------
// Registry sanity: the one description every subsystem derives from.
// ---------------------------------------------------------------------------

TEST(StageRegistry, IsInDataflowOrder) {
  const auto registry = pipeline::stage_registry();
  ASSERT_EQ(registry.size(), static_cast<std::size_t>(pipeline::stage_count));
  for (int i = 0; i < pipeline::stage_count; ++i) {
    EXPECT_EQ(static_cast<int>(registry[static_cast<std::size_t>(i)].id), i);
  }
  EXPECT_STREQ(pipeline::stage_name(stage_id::acquire), "acquire");
  EXPECT_STREQ(pipeline::stage_name(stage_id::composite), "composite");
}

TEST(StageRegistry, ScopeOwnershipRoundTrips) {
  for (const auto& stage : pipeline::stage_registry()) {
    for (const rt::fn f : stage.scopes) {
      if (f == rt::fn::count_) continue;
      EXPECT_EQ(pipeline::stage_of(f), stage.id) << rt::fn_name(f);
    }
  }
  // Scopes outside the per-frame graph belong to no stage.
  EXPECT_EQ(pipeline::stage_of(rt::fn::other), stage_id::count_);
}

TEST(StageRegistry, PrefetchableStagesFormAPrefix) {
  // The clean lane runs the prefetchable prefix of a frame ahead of the
  // stitch point; a gap in the prefix would make obtain() skip a stage.
  // The gate stage is the one sanctioned hole: it sits between acquire and
  // detect in dataflow order but always runs at the stitch point (frame
  // classification needs the frames in stitch order), so gated runs
  // degrade the prefix to acquire-only instead of prefetching through it.
  bool seen_unprefetchable = false;
  for (const auto& stage : pipeline::stage_registry()) {
    if (stage.id == stage_id::gate) continue;
    if (!stage.prefetchable) seen_unprefetchable = true;
    if (seen_unprefetchable) {
      EXPECT_FALSE(stage.prefetchable) << stage.name;
    }
  }
  EXPECT_TRUE(pipeline::stage_info(stage_id::acquire).prefetchable);
  EXPECT_FALSE(pipeline::stage_info(stage_id::gate).prefetchable);
  EXPECT_TRUE(pipeline::stage_info(stage_id::describe).prefetchable);
  EXPECT_FALSE(pipeline::stage_info(stage_id::match).prefetchable);
}

TEST(StageRegistry, FusedStagesShareTheirPredecessorsBudget) {
  // describe rides inside detect's watchdog scope, estimate inside match's:
  // re-opening would grant corrupted loop bounds a second allowance.
  EXPECT_FALSE(pipeline::stage_info(stage_id::describe).opens_scope);
  EXPECT_EQ(pipeline::stage_info(stage_id::describe).budget,
            pipeline::stage_info(stage_id::detect).budget);
  EXPECT_FALSE(pipeline::stage_info(stage_id::estimate).opens_scope);
  EXPECT_EQ(pipeline::stage_info(stage_id::estimate).budget,
            pipeline::stage_info(stage_id::match).budget);
  // estimate's CFCSS transition is owned by the alignment cascade.
  EXPECT_FALSE(pipeline::stage_info(stage_id::estimate).executor_marked);
}

TEST(StageRegistry, BudgetValueSelectsTheMatchingAllowance) {
  resil::stage_budget_config budgets;
  budgets.acquire = 11;
  budgets.extract = 22;
  budgets.align = 33;
  budgets.composite = 44;
  EXPECT_EQ(pipeline::budget_value(budgets, budget_key::acquire), 11u);
  EXPECT_EQ(pipeline::budget_value(budgets, budget_key::extract), 22u);
  EXPECT_EQ(pipeline::budget_value(budgets, budget_key::align), 33u);
  EXPECT_EQ(pipeline::budget_value(budgets, budget_key::composite), 44u);
}

TEST(StageRegistry, DerivedBudgetsFollowTheRegistryGrouping) {
  rt::counters golden{};
  const auto charge = [&](rt::fn f, std::uint64_t ops) {
    golden.by_fn[static_cast<int>(f)][static_cast<int>(rt::op::int_alu)] = ops;
  };
  charge(rt::fn::video_decode, 1000);
  charge(rt::fn::fast_detect, 2000);
  charge(rt::fn::orb_describe, 3000);
  charge(rt::fn::match, 4000);
  charge(rt::fn::ransac, 5000);
  charge(rt::fn::homography, 6000);
  charge(rt::fn::warp, 7000);
  charge(rt::fn::remap, 8000);
  charge(rt::fn::stitch, 9000);
  const auto budgets = resil::derive_stage_budgets(golden, 1, 1.0);
  EXPECT_EQ(budgets.acquire, 1024u);  // floor of max(1024, total * factor)
  EXPECT_EQ(budgets.extract, 5000u);
  EXPECT_EQ(budgets.align, 15000u);
  EXPECT_EQ(budgets.composite, 24000u);
}

// ---------------------------------------------------------------------------
// Golden end-to-end matrix: byte identity across widths and depths.
// ---------------------------------------------------------------------------

constexpr unsigned kWidths[] = {1, 2, 4};
constexpr int kDepths[] = {1, 2, 4};
constexpr int kBatches[] = {1, 2, 4, pipeline::kBatchAuto};

struct pool_width_guard {
  ~pool_width_guard() { core::thread_pool::set_global_threads(0); }
};

const video::synthetic_video& clip(video::input_id id) {
  static const auto one = video::make_input(video::input_id::input1, 8);
  static const auto two = video::make_input(video::input_id::input2, 8);
  return id == video::input_id::input1 ? *one : *two;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_value(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

/// One 64-bit digest of everything the summary promises to keep
/// byte-identical: the montage, every mini-panorama, every placement and
/// the run statistics.
std::uint64_t summary_hash(const app::summary_result& result) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto hash_image = [&](const img::image_u8& image) {
    h = fnv1a_value(h, static_cast<std::uint64_t>(image.width()));
    h = fnv1a_value(h, static_cast<std::uint64_t>(image.height()));
    h = fnv1a_value(h, static_cast<std::uint64_t>(image.channels()));
    h = fnv1a(h, image.data(), image.size());
  };
  hash_image(result.panorama);
  for (const auto& pano : result.mini_panoramas) hash_image(pano);
  for (const auto& placement : result.placements) {
    h = fnv1a_value(h, static_cast<std::uint64_t>(placement.frame_index));
    h = fnv1a_value(h, static_cast<std::uint64_t>(placement.panorama_index));
    h = fnv1a(h, &placement.frame_to_anchor, sizeof(placement.frame_to_anchor));
  }
  h = fnv1a(h, &result.stats, sizeof(result.stats));
  return h;
}

/// Calibrates a fully-hardened config from a fault-free profiled run,
/// exactly as the campaign drivers do.
app::pipeline_config hardened_config(const video::video_source& source,
                                     app::algorithm alg) {
  app::pipeline_config config;
  config.approx.alg = alg;
  config.hardening.level = resil::hardening_level::full;
  app::pipeline_config profile_config = config;
  profile_config.hardening = resil::hardening_config{};
  rt::session profile;
  const auto golden = app::summarize(source, profile_config);
  config.hardening.stage_budgets = resil::derive_stage_budgets(
      profile.stats(), source.frame_count());
  config.hardening.calibration =
      fault::calibrate_detectors({golden.panorama});
  return config;
}

void expect_matrix_matches_instrumented_lane(video::input_id id,
                                             bool hardened) {
  const pool_width_guard guard;
  const auto& source = clip(id);
  for (const auto alg : {app::algorithm::vs, app::algorithm::vs_rfd,
                         app::algorithm::vs_kds, app::algorithm::vs_sm}) {
    app::pipeline_config config;
    if (hardened) {
      config = hardened_config(source, alg);
    } else {
      config.approx.alg = alg;
    }

    // Reference: the sequential instrumented lane (depth is ignored there —
    // its hook stream must keep every acquisition inline).
    std::uint64_t reference = 0;
    {
      rt::session session;
      reference = summary_hash(app::summarize(source, config));
    }

    for (const unsigned width : kWidths) {
      core::thread_pool::set_global_threads(width);
      for (const int depth : kDepths) {
        config.frames_in_flight = depth;
        EXPECT_EQ(reference, summary_hash(app::summarize(source, config)))
            << video::input_name(id) << " " << app::algorithm_name(alg)
            << (hardened ? " hardened" : " unhardened") << " width " << width
            << " depth " << depth;
      }
    }
  }
}

/// Same golden contract along the batch axis: depth fixed at 4, the
/// per-stage scheduler swept across fixed batch sizes and the auto policy
/// at every pool width.  Every cell must reproduce the sequential
/// instrumented-lane digest.
void expect_batch_matrix_matches_instrumented_lane(video::input_id id,
                                                   bool hardened) {
  const pool_width_guard guard;
  const auto& source = clip(id);
  for (const auto alg : {app::algorithm::vs, app::algorithm::vs_rfd,
                         app::algorithm::vs_kds, app::algorithm::vs_sm}) {
    app::pipeline_config config;
    if (hardened) {
      config = hardened_config(source, alg);
    } else {
      config.approx.alg = alg;
    }

    std::uint64_t reference = 0;
    {
      rt::session session;
      reference = summary_hash(app::summarize(source, config));
    }

    config.frames_in_flight = 4;
    for (const unsigned width : kWidths) {
      core::thread_pool::set_global_threads(width);
      for (const int batch : kBatches) {
        config.batch = batch;
        EXPECT_EQ(reference, summary_hash(app::summarize(source, config)))
            << video::input_name(id) << " " << app::algorithm_name(alg)
            << (hardened ? " hardened" : " unhardened") << " width " << width
            << " batch " << pipeline::batch_name(batch);
      }
    }
  }
}

TEST(StageGraphGolden, Input1AllVariantsUnhardened) {
  expect_matrix_matches_instrumented_lane(video::input_id::input1, false);
}

TEST(StageGraphGolden, Input2AllVariantsUnhardened) {
  expect_matrix_matches_instrumented_lane(video::input_id::input2, false);
}

TEST(StageGraphGolden, Input1AllVariantsFullyHardened) {
  expect_matrix_matches_instrumented_lane(video::input_id::input1, true);
}

TEST(StageGraphGolden, Input2AllVariantsFullyHardened) {
  expect_matrix_matches_instrumented_lane(video::input_id::input2, true);
}

TEST(StageGraphGolden, Input1BatchMatrixUnhardened) {
  expect_batch_matrix_matches_instrumented_lane(video::input_id::input1,
                                                false);
}

TEST(StageGraphGolden, Input2BatchMatrixUnhardened) {
  expect_batch_matrix_matches_instrumented_lane(video::input_id::input2,
                                                false);
}

TEST(StageGraphGolden, Input1BatchMatrixFullyHardened) {
  expect_batch_matrix_matches_instrumented_lane(video::input_id::input1, true);
}

TEST(StageGraphGolden, Input2BatchMatrixFullyHardened) {
  expect_batch_matrix_matches_instrumented_lane(video::input_id::input2, true);
}

// ---------------------------------------------------------------------------
// Regression: recovery retry racing the acquisition prefetch.
// ---------------------------------------------------------------------------

/// Wraps a pristine source and throws crash_error from exactly one frame()
/// call for the chosen index — the first one, which under prefetching is
/// the helper thread's.  The second call (the recovery retry) succeeds.
class transient_fault_source final : public video::video_source {
 public:
  transient_fault_source(const video::video_source& inner, int faulty_index)
      : inner_(inner), faulty_index_(faulty_index) {}

  [[nodiscard]] int frame_count() const override {
    return inner_.frame_count();
  }
  [[nodiscard]] int frame_width() const override {
    return inner_.frame_width();
  }
  [[nodiscard]] int frame_height() const override {
    return inner_.frame_height();
  }
  [[nodiscard]] img::image_u8 frame(int index) const override {
    if (index == faulty_index_ && !thrown_.exchange(true)) {
      throw crash_error(crash_kind::segfault,
                        "transient acquisition fault (test)");
    }
    return inner_.frame(index);
  }

 private:
  const video::video_source& inner_;
  const int faulty_index_;
  mutable std::atomic<bool> thrown_{false};
};

TEST(StageGraphRecovery, RetryRecomputesAPoisonedPrefetchInline) {
  const pool_width_guard guard;
  const auto& pristine = clip(video::input_id::input1);
  const auto config = hardened_config(pristine, app::algorithm::vs);
  const auto expected = summary_hash(app::summarize(pristine, config));

  for (const int depth : kDepths) {
    // Frame 2's prefetch is launched while frame 1 is being stitched at
    // every depth >= 1; its poisoned future must be contained at the
    // recovery boundary and recomputed inline, not swapped for a later
    // frame's slot or re-scheduled on top of the running helper.
    const transient_fault_source source(pristine, 2);
    app::pipeline_config run_config = config;
    run_config.frames_in_flight = depth;
    const auto result = app::summarize(source, run_config);
    EXPECT_EQ(expected, summary_hash(result)) << "depth " << depth;
    EXPECT_GE(result.recovery.crashes_contained, 1u) << "depth " << depth;
    EXPECT_GE(result.recovery.retries, 1u) << "depth " << depth;
    EXPECT_GE(result.recovery.frames_recovered, 1u) << "depth " << depth;
    EXPECT_EQ(result.recovery.frames_degraded, 0u) << "depth " << depth;
  }
}

TEST(StageGraphRecovery, RetryRecomputesAnEvictedBatchedFrameInline) {
  // Same transient fault, batched scheduler: frame 2's acquire throws inside
  // a grouped dispatch.  Eviction must poison only that frame's ticket — the
  // rest of the batch completes — and the recovery boundary recomputes the
  // frame inline, off the queues, leaving the summary byte-identical.
  const pool_width_guard guard;
  const auto& pristine = clip(video::input_id::input1);
  const auto config = hardened_config(pristine, app::algorithm::vs);
  const auto expected = summary_hash(app::summarize(pristine, config));

  for (const int batch : kBatches) {
    const transient_fault_source source(pristine, 2);
    app::pipeline_config run_config = config;
    run_config.frames_in_flight = 4;
    run_config.batch = batch;
    const auto result = app::summarize(source, run_config);
    EXPECT_EQ(expected, summary_hash(result))
        << "batch " << pipeline::batch_name(batch);
    EXPECT_GE(result.recovery.crashes_contained, 1u)
        << "batch " << pipeline::batch_name(batch);
    EXPECT_GE(result.recovery.retries, 1u)
        << "batch " << pipeline::batch_name(batch);
    EXPECT_GE(result.recovery.frames_recovered, 1u)
        << "batch " << pipeline::batch_name(batch);
    EXPECT_EQ(result.recovery.frames_degraded, 0u)
        << "batch " << pipeline::batch_name(batch);
  }
}

TEST(StageGraphRecovery, InstrumentedLaneContainsTheSameTransientFault) {
  // The instrumented lane never prefetches; the same transient fault is
  // contained on its inline path with an identical summary.
  const auto& pristine = clip(video::input_id::input1);
  const auto config = hardened_config(pristine, app::algorithm::vs);
  std::uint64_t expected = 0;
  {
    rt::session session;
    expected = summary_hash(app::summarize(pristine, config));
  }
  const transient_fault_source source(pristine, 2);
  rt::session session;
  const auto result = app::summarize(source, config);
  EXPECT_EQ(expected, summary_hash(result));
  EXPECT_GE(result.recovery.crashes_contained, 1u);
  EXPECT_GE(result.recovery.frames_recovered, 1u);
}

// ---------------------------------------------------------------------------
// Executor unit behaviour.
// ---------------------------------------------------------------------------

TEST(FrameExecutor, InstrumentedLaneNeverOverlaps) {
  rt::session session;
  resil::hardening_config hardening;
  pipeline::frame_executor exec(
      hardening, 8, 4, [](int) { return img::image_u8(2, 2, 1); },
      [](const img::image_u8&) { return feat::frame_features{}; });
  EXPECT_FALSE(exec.overlapping());
}

TEST(FrameExecutor, CleanLaneOverlapsOnlyWithDepthAndFrames) {
  resil::hardening_config hardening;
  const auto acquire = [](int) { return img::image_u8(2, 2, 1); };
  const auto detect = [](const img::image_u8&) {
    return feat::frame_features{};
  };
  EXPECT_TRUE(
      pipeline::frame_executor(hardening, 8, 2, acquire, detect).overlapping());
  EXPECT_FALSE(
      pipeline::frame_executor(hardening, 8, 0, acquire, detect).overlapping());
  EXPECT_FALSE(
      pipeline::frame_executor(hardening, 1, 2, acquire, detect).overlapping());
}

TEST(FrameExecutor, BatchKnobSelectsSchedulerOrLegacyRing) {
  resil::hardening_config hardening;
  const auto acquire = [](int) { return img::image_u8(2, 2, 1); };
  const auto detect = [](const img::image_u8&) {
    return feat::frame_features{};
  };
  // Explicit off keeps the legacy per-frame future ring.
  pipeline::frame_executor ring(hardening, 8, 2, acquire, detect, {},
                                pipeline::kBatchOff);
  EXPECT_TRUE(ring.overlapping());
  EXPECT_FALSE(ring.batched());
  // Any scheduler batch setting routes production through stage queues.
  pipeline::frame_executor batched(hardening, 8, 2, acquire, detect, {}, 2);
  EXPECT_TRUE(batched.overlapping());
  EXPECT_TRUE(batched.batched());
  EXPECT_EQ(batched.batch(), 2);
  // No overlap means no scheduler, whatever the knob says.
  pipeline::frame_executor inline_only(hardening, 8, 0, acquire, detect, {},
                                       2);
  EXPECT_FALSE(inline_only.batched());
}

TEST(FrameExecutor, ObtainDrainsSkippedFramesAndConsumesInOrder) {
  // Consumption that skips indices (the RFD drop path) must finish and
  // discard the stale slots, and every consumed frame must be the right one.
  std::atomic<int> calls{0};
  resil::hardening_config hardening;
  pipeline::frame_executor exec(
      hardening, 10, 3,
      [&calls](int index) {
        ++calls;
        return img::image_u8(4, 1, 1, static_cast<std::uint8_t>(index));
      },
      [](const img::image_u8&) { return feat::frame_features{}; });
  for (const int index : {0, 1, 4, 5, 9}) {
    const auto work = exec.obtain(index);
    EXPECT_EQ(work.frame.at(0, 0), static_cast<std::uint8_t>(index))
        << "frame " << index;
  }
  // Every scheduled acquisition ran exactly once: 0 and the prefetches of
  // 1..9 (monotonic top-up never re-schedules a frame).
  EXPECT_EQ(calls.load(), 10);
}

// ---------------------------------------------------------------------------
// Selective replication: registry contracts and the executor's dual checks.
// ---------------------------------------------------------------------------

TEST(StageRegistry, ReplicationContractsMatchProductKinds) {
  using pipeline::dual_check;
  // Acquire is the I/O boundary — outside the sphere of replication.
  EXPECT_FALSE(pipeline::stage_info(stage_id::acquire).replicable);
  EXPECT_EQ(pipeline::stage_info(stage_id::acquire).check, dual_check::none);
  // Structured-value stages recompute; the buffer producer checksums.
  for (const stage_id s : {stage_id::detect, stage_id::describe,
                           stage_id::match, stage_id::estimate}) {
    EXPECT_TRUE(pipeline::stage_info(s).replicable)
        << pipeline::stage_name(s);
    EXPECT_EQ(pipeline::stage_info(s).check, dual_check::recompute)
        << pipeline::stage_name(s);
  }
  EXPECT_TRUE(pipeline::stage_info(stage_id::composite).replicable);
  EXPECT_EQ(pipeline::stage_info(stage_id::composite).check,
            dual_check::checksum);
  EXPECT_EQ(pipeline::replicable_stage_mask() &
                pipeline::stage_bit(stage_id::acquire),
            0u);
  EXPECT_EQ(pipeline::geometry_stage_mask(),
            pipeline::stage_bit(stage_id::estimate));
}

TEST(StageRegistry, ReplicateSpecParsingAndNaming) {
  EXPECT_EQ(pipeline::parse_replicate_stages("off"), 0u);
  EXPECT_EQ(pipeline::parse_replicate_stages(""), 0u);
  EXPECT_EQ(pipeline::parse_replicate_stages("geometry"),
            pipeline::geometry_stage_mask());
  EXPECT_EQ(pipeline::parse_replicate_stages("ALL"),
            pipeline::replicable_stage_mask());
  EXPECT_EQ(pipeline::parse_replicate_stages("match,estimate"),
            pipeline::stage_bit(stage_id::match) |
                pipeline::stage_bit(stage_id::estimate));
  // Canonical names round trip through the parser.
  EXPECT_EQ(pipeline::replicate_stages_name(0), "off");
  EXPECT_EQ(pipeline::replicate_stages_name(pipeline::geometry_stage_mask()),
            "geometry");
  EXPECT_EQ(
      pipeline::replicate_stages_name(pipeline::replicable_stage_mask()),
      "all");
  EXPECT_EQ(pipeline::replicate_stages_name(
                pipeline::parse_replicate_stages("describe,composite")),
            "describe,composite");
  // Acquire is a stage name but not a replicable one.
  EXPECT_THROW((void)pipeline::parse_replicate_stages("acquire"),
               invalid_argument);
  EXPECT_THROW((void)pipeline::parse_replicate_stages("warp"),
               invalid_argument);
}

TEST(FrameExecutor, ReplicaDivergenceInAPrefetchedStageIsDetected) {
  // detectors level: containment without the CFCSS monitor, so the
  // executor can be driven directly; the explicit mask turns the
  // extraction dual check on.
  resil::hardening_config hardening;
  hardening.level = resil::hardening_level::detectors;
  hardening.replicate_stages = pipeline::stage_bit(stage_id::detect);
  resil::session session(hardening);

  std::atomic<int> checks{0};
  pipeline::frame_executor exec(
      hardening, 6, 2, [](int) { return img::image_u8(4, 4, 1); },
      [](const img::image_u8&) { return feat::frame_features{}; },
      // The verifier disagrees on the second checked frame — which the
      // clean-lane ring has prefetched by then.
      [&checks](const img::image_u8&, const feat::frame_features&) {
        return ++checks != 2;
      });
  ASSERT_TRUE(exec.overlapping());
  (void)exec.obtain(0);  // inline cold start: check runs and passes
  try {
    (void)exec.obtain(1);  // consumed from the ring: check diverges
    FAIL() << "replica divergence was not raised";
  } catch (const detected_error& e) {
    EXPECT_EQ(e.kind(), detect_kind::replica_divergence);
  }
  EXPECT_EQ(checks.load(), 2);
  EXPECT_EQ(resil::tls.report.replica_divergences, 1u);
}

TEST(FrameExecutor, ReplicaDivergenceInABatchedStageIsDetected) {
  // The same dual-check contract with production routed through the batched
  // stage queues: the check still runs at the consuming obtain() against
  // work a grouped dispatch produced, and its divergence must surface there.
  resil::hardening_config hardening;
  hardening.level = resil::hardening_level::detectors;
  hardening.replicate_stages = pipeline::stage_bit(stage_id::detect);
  resil::session session(hardening);

  std::atomic<int> checks{0};
  pipeline::frame_executor exec(
      hardening, 6, 2, [](int) { return img::image_u8(4, 4, 1); },
      [](const img::image_u8&) { return feat::frame_features{}; },
      [&checks](const img::image_u8&, const feat::frame_features&) {
        return ++checks != 2;
      },
      /*batch=*/2);
  ASSERT_TRUE(exec.overlapping());
  ASSERT_TRUE(exec.batched());
  (void)exec.obtain(0);  // inline cold start: check runs and passes
  try {
    (void)exec.obtain(1);  // consumed from a batched ticket: check diverges
    FAIL() << "replica divergence was not raised";
  } catch (const detected_error& e) {
    EXPECT_EQ(e.kind(), detect_kind::replica_divergence);
  }
  EXPECT_EQ(checks.load(), 2);
  EXPECT_EQ(resil::tls.report.replica_divergences, 1u);
}

}  // namespace
}  // namespace vs
