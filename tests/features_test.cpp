#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "features/fast.h"
#include "features/orb.h"
#include "image/draw.h"

namespace vs::feat {
namespace {

// A frame with a single bright square: its corners are FAST corners.
img::image_u8 square_frame(int w = 64, int h = 64) {
  img::image_u8 im(w, h, 1, 60);
  img::fill_rect(im, w / 2 - 8, h / 2 - 8, 16, 16, img::color{220, 220, 220});
  return im;
}

TEST(Fast, FlatImageHasNoCorners) {
  img::image_u8 flat(64, 64, 1, 128);
  EXPECT_TRUE(fast_detect(flat, fast_params{}).empty());
}

TEST(Fast, DetectsSquareCorners) {
  fast_params params;
  params.border = 8;
  const auto keypoints = fast_detect(square_frame(), params);
  ASSERT_FALSE(keypoints.empty());
  // Every detection must be near one of the four square corners.
  for (const auto& kp : keypoints) {
    const double dx = std::min(std::abs(kp.x - 24.0), std::abs(kp.x - 39.0));
    const double dy = std::min(std::abs(kp.y - 24.0), std::abs(kp.y - 39.0));
    EXPECT_LT(dx, 4.0);
    EXPECT_LT(dy, 4.0);
  }
}

TEST(Fast, ScoreZeroOnFlat) {
  img::image_u8 flat(16, 16, 1, 90);
  EXPECT_EQ(fast_score(flat, 8, 8, 15), 0);
}

TEST(Fast, ScorePositiveOnIsolatedDot) {
  img::image_u8 im(16, 16, 1, 50);
  img::fill_rect(im, 7, 7, 2, 2, img::color{250, 250, 250});
  EXPECT_GT(fast_score(im, 7, 7, 15), 0);
}

TEST(Fast, HigherThresholdDetectsFewer) {
  img::image_u8 im = square_frame();
  fast_params loose;
  loose.threshold = 8;
  loose.border = 8;
  fast_params strict = loose;
  strict.threshold = 120;
  EXPECT_GE(fast_detect(im, loose).size(), fast_detect(im, strict).size());
}

TEST(Fast, MaxKeypointsCaps) {
  // Dense impulse grid: many corners.
  img::image_u8 im(96, 96, 1, 40);
  for (int y = 12; y < 84; y += 6) {
    for (int x = 12; x < 84; x += 6) {
      img::fill_rect(im, x, y, 2, 2, img::color{240, 240, 240});
    }
  }
  fast_params params;
  params.border = 8;
  params.max_keypoints = 10;
  const auto keypoints = fast_detect(im, params);
  EXPECT_LE(keypoints.size(), 10u);
  EXPECT_GE(keypoints.size(), 5u);
}

TEST(Fast, ResultsSortedByScore) {
  img::image_u8 im(96, 96, 1, 40);
  for (int y = 12; y < 84; y += 8) {
    for (int x = 12; x < 84; x += 8) {
      img::fill_rect(im, x, y, 2, 2, img::color{240, 240, 240});
    }
  }
  fast_params params;
  params.border = 8;
  const auto keypoints = fast_detect(im, params);
  for (std::size_t i = 1; i < keypoints.size(); ++i) {
    EXPECT_GE(keypoints[i - 1].score, keypoints[i].score);
  }
}

TEST(Fast, RespectsBorder) {
  img::image_u8 im(64, 64, 1, 40);
  img::fill_rect(im, 2, 2, 2, 2, img::color{240, 240, 240});  // near edge
  fast_params params;
  params.border = 10;
  EXPECT_TRUE(fast_detect(im, params).empty());
}

TEST(Fast, GrayOnlyInput) {
  img::image_u8 rgb(32, 32, 3);
  EXPECT_THROW((void)fast_detect(rgb, fast_params{}), invalid_argument);
}

TEST(Hamming, IdenticalIsZero) {
  descriptor d;
  d.bits = {0x123456789abcdef0ULL, 1, 2, 3};
  EXPECT_EQ(hamming_distance(d, d), 0);
}

TEST(Hamming, ComplementIs256) {
  descriptor a;
  descriptor b;
  for (std::size_t i = 0; i < 4; ++i) {
    a.bits[i] = 0;
    b.bits[i] = ~0ULL;
  }
  EXPECT_EQ(hamming_distance(a, b), 256);
}

TEST(Hamming, CountsSingleBit) {
  descriptor a;
  descriptor b = a;
  b.bits[2] ^= 1ULL << 17;
  EXPECT_EQ(hamming_distance(a, b), 1);
}

TEST(Hamming, BoundedEarlyExit) {
  descriptor a;
  descriptor b;
  b.bits[0] = ~0ULL;  // 64 differing bits in the first word
  EXPECT_EQ(hamming_distance_bounded(a, b, 10), 11);
  EXPECT_EQ(hamming_distance_bounded(a, b, 64), 64);
  EXPECT_EQ(hamming_distance_bounded(a, a, 10), 0);
}

TEST(Orb, OrientationPointsTowardBrightSide) {
  // Patch bright on the right: centroid is at positive x, angle ~ 0.
  img::image_u8 im(32, 32, 1, 10);
  for (int y = 0; y < 32; ++y) {
    for (int x = 17; x < 32; ++x) im.at(x, y) = 200;
  }
  const float angle = intensity_centroid_angle(im, 16, 16, 7);
  EXPECT_NEAR(angle, 0.0f, 0.2f);
}

TEST(Orb, OrientationRotatesWithContent) {
  // Bright on top (negative y): angle ~ -pi/2.
  img::image_u8 im(32, 32, 1, 10);
  for (int y = 0; y < 15; ++y) {
    for (int x = 0; x < 32; ++x) im.at(x, y) = 200;
  }
  const float angle = intensity_centroid_angle(im, 16, 16, 7);
  EXPECT_NEAR(angle, -static_cast<float>(M_PI) / 2.0f, 0.2f);
}

TEST(Orb, DescriptorDeterministic) {
  const auto im = square_frame();
  keypoint kp{32.0f, 32.0f, 1.0f, 0.3f};
  EXPECT_EQ(orb_describe_one(im, kp, 7), orb_describe_one(im, kp, 7));
}

TEST(Orb, DescriptorDiffersAcrossContent) {
  // Two different textures inside the sampling patch.
  img::image_u8 a(64, 64, 1);
  img::image_u8 b(64, 64, 1);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      a.at(x, y) = static_cast<std::uint8_t>((x * 37 + y * 11) % 256);
      b.at(x, y) = static_cast<std::uint8_t>((x * 5 + y * 53) % 256);
    }
  }
  keypoint kp{32.0f, 32.0f, 1.0f, 0.0f};
  const auto da = orb_describe_one(a, kp, 7);
  const auto db = orb_describe_one(b, kp, 7);
  EXPECT_GT(hamming_distance(da, db), 40);
}

TEST(Orb, ExtractProducesDescriptorPerKeypoint) {
  orb_params params;
  params.fast.border = 18;
  const auto features = orb_extract(square_frame(96, 96), params);
  EXPECT_EQ(features.keypoints.size(), features.descriptors.size());
}

TEST(Orb, ExtractOnTranslatedImageMatchesDescriptors) {
  // The same physical corner viewed in two frames shifted by 4 px must
  // produce near-identical descriptors (the property matching relies on).
  img::image_u8 a(96, 96, 1, 60);
  img::fill_rect(a, 40, 40, 14, 14, img::color{220, 220, 220});
  img::image_u8 b(96, 96, 1, 60);
  img::fill_rect(b, 44, 40, 14, 14, img::color{220, 220, 220});
  orb_params params;
  const auto fa = orb_extract(a, params);
  const auto fb = orb_extract(b, params);
  ASSERT_FALSE(fa.empty());
  ASSERT_FALSE(fb.empty());
  int best = 257;
  for (const auto& da : fa.descriptors) {
    for (const auto& db : fb.descriptors) {
      best = std::min(best, hamming_distance(da, db));
    }
  }
  EXPECT_LT(best, 40);
}

TEST(Orb, GrayOnlyInput) {
  img::image_u8 rgb(64, 64, 3);
  EXPECT_THROW((void)orb_extract(rgb, orb_params{}), invalid_argument);
}

// ---------------------------------------------------------------------------
// Per-keypoint scoring verification (the extraction stages' replication
// contract).
// ---------------------------------------------------------------------------

TEST(OrbVerify, AcceptsAGenuineExtraction) {
  const img::image_u8 frame = square_frame(96, 96);
  const orb_params params;
  const auto features = orb_extract(frame, params);
  ASSERT_FALSE(features.empty());
  EXPECT_TRUE(orb_verify_features(frame, features, params));
}

TEST(OrbVerify, EmptyExtractionOfAFlatFrameVerifies) {
  const img::image_u8 flat(64, 64, 1, 128);
  const orb_params params;
  const auto features = orb_extract(flat, params);
  EXPECT_TRUE(features.empty());
  EXPECT_TRUE(orb_verify_features(flat, features, params));
}

TEST(OrbVerify, CatchesAnyTamperedStoredField) {
  const img::image_u8 frame = square_frame(96, 96);
  const orb_params params;
  const auto features = orb_extract(frame, params);
  ASSERT_FALSE(features.empty());

  // Every field a register fault can silently perturb diverges: the score
  // is re-derived at the stored coordinates, so corrupt positions mismatch
  // exactly like corrupt scores.
  auto tampered = features;
  tampered.keypoints[0].x += 1.0f;
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));

  tampered = features;
  tampered.keypoints[0].x += 0.5f;  // fractional: FAST never emits these
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));

  tampered = features;
  tampered.keypoints[0].score += 1.0f;
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));

  tampered = features;
  tampered.keypoints[0].angle += 0.5f;
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));

  tampered = features;
  tampered.descriptors[0].bits[1] ^= 1ULL << 13;
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));

  // A coordinate blown out of the detection window must be rejected by the
  // bounds pre-check, not chased into an out-of-range load.
  tampered = features;
  tampered.keypoints[0].y = 1.0e6f;
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));

  // A keypoint/descriptor count mismatch can only come from a fault.
  tampered = features;
  tampered.descriptors.pop_back();
  EXPECT_FALSE(orb_verify_features(frame, tampered, params));
}

}  // namespace
}  // namespace vs::feat
