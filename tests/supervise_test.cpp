// src/supervise/ — the process-isolated campaign supervisor.
//
// The workload here is WP (warp a small image): cheap enough to run dozens
// of shard attempts per test, instrumented like every other kernel.  Poison
// fixtures make the workload misbehave *only while a fault plan is armed*
// (never during the golden run), keyed off the planned target index so
// which experiments die is deterministic — real SIGSEGV deaths, real
// worker hangs, exercised against real fork/waitpid containment.
#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/pipeline.h"
#include "app/wp.h"
#include "fault/campaign.h"
#include "fault/wire.h"
#include "rt/instrument.h"
#include "supervise/journal.h"
#include "supervise/supervisor.h"
#include "video/generator.h"

namespace vs {
namespace {

img::image_u8 wp_source() {
  img::image_u8 src(28, 20);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      src.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) & 0xFF);
    }
  }
  return src;
}

fault::workload wp_workload() {
  return [] { return app::run_wp(wp_source(), app::wp_default_transform()); };
}

fault::campaign_config small_campaign(int injections = 40) {
  fault::campaign_config campaign;
  campaign.injections = injections;
  campaign.seed = 7;
  campaign.threads = 1;
  return campaign;
}

// Serializes a whole campaign's record stream; equal strings mean equal
// campaigns, field for field, in experiment order.
std::string records_key(const std::vector<fault::injection_record>& records) {
  std::string out;
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += fault::wire::record_payload(i, records[i]);
    out += '\n';
  }
  return out;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

core::backoff_policy fast_backoff() {
  core::backoff_policy p;
  p.base_delay_ms = 1.0;
  p.max_delay_ms = 4.0;
  return p;
}

TEST(Wire, RecordRoundTripAndTamperRejection) {
  fault::injection_record r;
  r.plan.cls = rt::reg_class::fpr;
  r.plan.target = 123456789ULL;
  r.plan.bit = 61;
  r.plan.reg_id = 17;
  r.plan.scoped = true;
  r.plan.scope = rt::fn::warp;
  r.plan.scope_b = rt::fn::remap;
  r.register_live = true;
  r.fired = true;
  r.result = fault::outcome::detected_degraded;
  r.fired_scope = rt::fn::remap;
  r.fired_kind = rt::op::fp_alu;
  r.detections = 3;
  r.replica_divergences = 5;
  r.retries = 2;
  r.frames_degraded = 1;

  const std::string payload = fault::wire::record_payload(42, r);
  const std::string line = fault::wire::seal(payload);
  const auto unsealed = fault::wire::unseal(line + "\n");
  ASSERT_TRUE(unsealed.has_value());
  const auto parsed = fault::wire::parse_record(*unsealed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->index, 42u);
  EXPECT_EQ(fault::wire::record_payload(42, parsed->record), payload);

  // One corrupted byte anywhere in the line must reject it as a unit.
  std::string tampered = line;
  tampered[4] = tampered[4] == '0' ? '1' : '0';
  EXPECT_FALSE(fault::wire::unseal(tampered).has_value());
  // A truncated line (torn write) fails the seal.
  EXPECT_FALSE(
      fault::wire::unseal(line.substr(0, line.size() - 3)).has_value());
  // A sealed but field-damaged payload fails the parse.
  EXPECT_FALSE(fault::wire::parse_record("R 1 9 0 0 0 0 0 0 0 0 0 0 0 0 0 0")
                   .has_value());
}

TEST(Wire, DetectedReplicaOutcomeRoundTrips) {
  // A Detected(replica) record — dual execution caught the fault and the
  // retry recovered — must survive the journal byte-for-byte.
  fault::injection_record r;
  r.plan.cls = rt::reg_class::gpr;
  r.plan.target = 1024;
  r.plan.bit = 7;
  r.register_live = true;
  r.fired = true;
  r.result = fault::outcome::detected_recovered;
  r.fired_scope = rt::fn::fast_detect;
  r.fired_kind = rt::op::int_alu;
  r.detections = 1;
  r.replica_divergences = 1;
  r.retries = 1;

  const std::string payload = fault::wire::record_payload(9, r);
  const auto parsed = fault::wire::parse_record(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record.replica_divergences, 1u);
  EXPECT_EQ(parsed->record.result, fault::outcome::detected_recovered);
  EXPECT_EQ(fault::wire::record_payload(9, parsed->record), payload);
}

TEST(Wire, LegacyRecordWithoutReplicaFieldParses) {
  // Journals written before the replica_divergences column carry one token
  // less; they must parse with the field defaulting to zero so a resumed
  // campaign can read its own pre-upgrade checkpoint.
  fault::injection_record r;
  r.fired = true;
  r.result = fault::outcome::detected_degraded;
  r.detections = 2;
  r.replica_divergences = 4;
  r.retries = 1;
  r.frames_degraded = 1;
  std::string payload = fault::wire::record_payload(3, r);

  // Drop the replica_divergences token (16th field counting the "R" tag).
  std::vector<std::string> tokens;
  std::size_t begin = 0;
  while (begin <= payload.size()) {
    const std::size_t space = payload.find(' ', begin);
    tokens.push_back(payload.substr(
        begin, space == std::string::npos ? space : space - begin));
    begin = space == std::string::npos ? payload.size() + 1 : space + 1;
  }
  ASSERT_EQ(tokens.size(), 18u);
  EXPECT_EQ(tokens[15], "4");
  tokens.erase(tokens.begin() + 15);
  std::string legacy;
  for (const auto& token : tokens) {
    if (!legacy.empty()) legacy.push_back(' ');
    legacy += token;
  }

  const auto parsed = fault::wire::parse_record(legacy);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->record.replica_divergences, 0u);
  EXPECT_EQ(parsed->record.detections, 2u);
  EXPECT_EQ(parsed->record.retries, 1u);
  EXPECT_EQ(parsed->record.frames_degraded, 1u);
  EXPECT_EQ(parsed->record.result, fault::outcome::detected_degraded);
}

TEST(Supervisor, ShardedMatchesReferenceAtAnyJobCount) {
  const auto work = wp_workload();
  const auto campaign = small_campaign();
  const auto reference = fault::run_campaign(work, campaign);
  const std::string ref_key = records_key(reference.records);

  for (const bool isolate : {false, true}) {
    supervise::supervisor_config config;
    config.jobs = 2;
    config.isolate = isolate;
    config.shard_size = 7;  // deliberately not a divisor of 40
    const auto sharded = supervise::run_sharded_campaign(work, campaign, config);
    EXPECT_EQ(records_key(sharded.campaign.records), ref_key)
        << "isolate=" << isolate;
    EXPECT_EQ(sharded.campaign.rates.to_string(),
              reference.rates.to_string())
        << "isolate=" << isolate;
    EXPECT_EQ(sharded.stats.quarantined.size(), 0u);
    EXPECT_EQ(sharded.stats.worker_crashes, 0u);
  }
}

TEST(Supervisor, JournalRoundTripAndFullResume) {
  const auto work = wp_workload();
  const auto campaign = small_campaign(24);
  const std::string path = temp_path("supervise_roundtrip.journal");
  std::remove(path.c_str());

  supervise::supervisor_config config;
  config.jobs = 2;
  config.shard_size = 5;
  config.journal_path = path;
  const auto first = supervise::run_sharded_campaign(work, campaign, config);
  ASSERT_EQ(first.campaign.records.size(), 24u);

  // Resuming a finished journal recomputes nothing.
  config.resume = true;
  const auto resumed = supervise::run_sharded_campaign(work, campaign, config);
  EXPECT_EQ(records_key(resumed.campaign.records),
            records_key(first.campaign.records));
  EXPECT_EQ(resumed.stats.records_recovered, 24u);
  EXPECT_EQ(resumed.stats.shards_resumed, resumed.stats.shards_total);
  EXPECT_EQ(resumed.stats.retries, 0u);
  std::remove(path.c_str());
}

TEST(Supervisor, RecoversFromTruncatedAndGarbledJournalTail) {
  const auto work = wp_workload();
  const auto campaign = small_campaign(24);
  const std::string path = temp_path("supervise_truncated.journal");
  std::remove(path.c_str());

  supervise::supervisor_config config;
  config.jobs = 1;
  config.shard_size = 6;
  config.journal_path = path;
  const auto first = supervise::run_sharded_campaign(work, campaign, config);

  // Simulate a SIGKILL mid-write plus later garbage: chop the tail line in
  // half, then append a line that never had a valid seal.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string content = buffer.str();
  // Cut mid-way through the last record line, losing it and every line after
  // it (trailing checkpoints included).
  const std::size_t last_record = content.rfind("\nR ");
  ASSERT_NE(last_record, std::string::npos);
  content.resize(last_record + 10);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content << "\nnot a sealed line at all\n";
  }

  const auto state = supervise::load_journal(path);
  ASSERT_TRUE(state.header.has_value());
  EXPECT_GE(state.skipped_lines, 2u);  // the torn line + the garbage line
  EXPECT_LT(state.records.size(), 24u);

  // Resume: the lost tail is recomputed; the result is bit-identical.
  config.resume = true;
  const auto resumed = supervise::run_sharded_campaign(work, campaign, config);
  EXPECT_EQ(records_key(resumed.campaign.records),
            records_key(first.campaign.records));
  EXPECT_EQ(resumed.campaign.records.size(), 24u);
  std::remove(path.c_str());
}

TEST(Supervisor, RejectsJournalFromDifferentCampaign) {
  const auto work = wp_workload();
  auto campaign = small_campaign(12);
  const std::string path = temp_path("supervise_mismatch.journal");
  std::remove(path.c_str());

  supervise::supervisor_config config;
  config.journal_path = path;
  (void)supervise::run_sharded_campaign(work, campaign, config);

  campaign.seed = 8;  // a different campaign entirely
  config.resume = true;
  EXPECT_THROW(
      (void)supervise::run_sharded_campaign(work, campaign, config),
      vs::invalid_argument);
  std::remove(path.c_str());
}

TEST(Supervisor, RejectsPreRestrictedCampaign) {
  auto campaign = small_campaign(12);
  campaign.range_first = 4;
  campaign.range_count = 4;
  EXPECT_THROW((void)supervise::run_sharded_campaign(
                   wp_workload(), campaign, supervise::supervisor_config{}),
               vs::invalid_argument);
}

// Workload that dies of a *real* SIGSEGV — not a guarded crash_error — in a
// deterministic subset of experiments.  Only processes isolation survives.
fault::workload segv_workload() {
  return [] {
    if (rt::tls.enabled && rt::tls.armed && rt::tls.target % 5 == 3) {
      std::raise(SIGSEGV);
    }
    return app::run_wp(wp_source(), app::wp_default_transform());
  };
}

TEST(Supervisor, WorkerSignalDeathClassifiedAsCrashAndShardRetried) {
  const auto campaign = small_campaign();
  // The poison never fires in-process here: the reference uses the clean
  // workload, and the golden run is unarmed.
  const auto reference = fault::run_campaign(wp_workload(), campaign);

  std::size_t poisoned = 0;
  for (const auto& r : reference.records) {
    poisoned += r.register_live && r.plan.target % 5 == 3 ? 1u : 0u;
  }
  ASSERT_GE(poisoned, 1u) << "fixture needs at least one poisoned experiment";

  supervise::supervisor_config config;
  config.jobs = 2;
  config.isolate = true;
  config.shard_size = 7;
  config.backoff = fast_backoff();
  const auto sharded =
      supervise::run_sharded_campaign(segv_workload(), campaign, config);

  ASSERT_EQ(sharded.campaign.records.size(), reference.records.size());
  EXPECT_GE(sharded.stats.worker_crashes, poisoned);
  EXPECT_GE(sharded.stats.retries, 1u);
  EXPECT_EQ(sharded.stats.quarantined.size(), 0u);
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    const auto& ref = reference.records[i];
    const auto& got = sharded.campaign.records[i];
    if (ref.register_live && ref.plan.target % 5 == 3) {
      EXPECT_EQ(got.result, fault::outcome::crash_segfault) << "exp " << i;
      EXPECT_TRUE(got.fired) << "exp " << i;
    } else {
      EXPECT_EQ(fault::wire::record_payload(i, got),
                fault::wire::record_payload(i, ref))
          << "exp " << i;
    }
  }
}

// Workload that wedges (sleeps far past the watchdog) in a deterministic
// subset of experiments: the wall-clock analog of an infinite loop the
// step-budget watchdog cannot see.
fault::workload hang_workload() {
  return [] {
    if (rt::tls.enabled && rt::tls.armed && rt::tls.target % 7 == 1) {
      std::this_thread::sleep_for(std::chrono::seconds(5));
    }
    return app::run_wp(wp_source(), app::wp_default_transform());
  };
}

TEST(Supervisor, WatchdogKillsWedgedWorkerAndClassifiesHang) {
  const auto campaign = small_campaign(30);
  const auto reference = fault::run_campaign(wp_workload(), campaign);
  std::size_t poisoned = 0;
  for (const auto& r : reference.records) {
    poisoned += r.register_live && r.plan.target % 7 == 1 ? 1u : 0u;
  }
  ASSERT_GE(poisoned, 1u) << "fixture needs at least one wedged experiment";

  supervise::supervisor_config config;
  config.jobs = 2;
  config.isolate = true;
  config.shard_size = 6;
  config.shard_timeout_s = 0.4;
  config.backoff = fast_backoff();
  const auto sharded =
      supervise::run_sharded_campaign(hang_workload(), campaign, config);

  ASSERT_EQ(sharded.campaign.records.size(), reference.records.size());
  EXPECT_GE(sharded.stats.worker_timeouts, poisoned);
  EXPECT_EQ(sharded.stats.quarantined.size(), 0u);
  for (std::size_t i = 0; i < reference.records.size(); ++i) {
    const auto& ref = reference.records[i];
    const auto& got = sharded.campaign.records[i];
    if (ref.register_live && ref.plan.target % 7 == 1) {
      EXPECT_EQ(got.result, fault::outcome::hang) << "exp " << i;
    } else {
      EXPECT_EQ(fault::wire::record_payload(i, got),
                fault::wire::record_payload(i, ref))
          << "exp " << i;
    }
  }
}

// Workload that fails *every* armed run with an ordinary exception: no
// forward progress is possible on live experiments, so retry must give up
// and quarantine instead of spinning forever.
fault::workload poison_workload() {
  return []() -> img::image_u8 {
    if (rt::tls.enabled && rt::tls.armed) {
      throw std::logic_error("poisoned workload");
    }
    return app::run_wp(wp_source(), app::wp_default_transform());
  };
}

TEST(Supervisor, QuarantinesShardAfterPersistentFailures) {
  for (const bool isolate : {false, true}) {
    const auto campaign = small_campaign(12);
    supervise::supervisor_config config;
    config.jobs = 1;
    config.isolate = isolate;
    config.shard_size = 12;
    config.max_failures = 2;
    config.backoff = fast_backoff();
    const auto sharded =
        supervise::run_sharded_campaign(poison_workload(), campaign, config);
    // Dead-register experiments classify as masked without executing the
    // workload, so they complete even under total poisoning; the campaign
    // still terminates, with the unfinishable shard abandoned.
    ASSERT_EQ(sharded.stats.quarantined.size(), 1u) << "isolate=" << isolate;
    EXPECT_LT(sharded.campaign.records.size(), 12u) << "isolate=" << isolate;
    EXPECT_EQ(sharded.campaign.rates.experiments,
              sharded.campaign.records.size());
    EXPECT_GE(sharded.stats.retries, 1u);
  }
}

TEST(Supervisor, ClipFleetMatchesDirectSummarization) {
  std::vector<supervise::clip_job> jobs;
  jobs.push_back({video::input_id::input1, app::algorithm::vs, 8});
  jobs.push_back({video::input_id::input1, app::algorithm::vs_rfd, 8});
  jobs.push_back({video::input_id::input2, app::algorithm::vs, 8});

  supervise::supervisor_config config;
  config.jobs = 2;
  config.isolate = true;
  const auto fleet = supervise::run_clip_fleet(jobs, config);
  ASSERT_EQ(fleet.size(), jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(fleet[i].completed) << "job " << i;
    EXPECT_EQ(fleet[i].attempts, 1) << "job " << i;
    const auto source = video::make_input(jobs[i].input, jobs[i].frames);
    app::pipeline_config direct;
    direct.approx.alg = jobs[i].alg;
    const auto result = app::summarize(*source, direct);
    EXPECT_EQ(fleet[i].panorama_hash, fault::wire::hash_image(result.panorama))
        << "job " << i;
    EXPECT_EQ(fleet[i].frames_stitched, result.stats.frames_stitched);
    EXPECT_EQ(fleet[i].mini_panoramas, result.stats.mini_panoramas);
  }
}

}  // namespace
}  // namespace vs
