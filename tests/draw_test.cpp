#include <gtest/gtest.h>

#include "core/log.h"
#include "image/draw.h"

namespace vs::img {
namespace {

TEST(Draw, PutPixelInBounds) {
  image_u8 im(4, 4, 1);
  put_pixel(im, 1, 2, color{200, 0, 0});
  EXPECT_EQ(im.at(1, 2), 200);
}

TEST(Draw, PutPixelOutOfBoundsIsNoop) {
  image_u8 im(4, 4, 1, 7);
  put_pixel(im, -1, 0, color{200, 0, 0});
  put_pixel(im, 4, 0, color{200, 0, 0});
  for (std::size_t i = 0; i < im.size(); ++i) EXPECT_EQ(im[i], 7);
}

TEST(Draw, PutPixelRgbWritesAllChannels) {
  image_u8 im(2, 2, 3);
  put_pixel(im, 0, 0, color{1, 2, 3});
  EXPECT_EQ(im.at(0, 0, 0), 1);
  EXPECT_EQ(im.at(0, 0, 1), 2);
  EXPECT_EQ(im.at(0, 0, 2), 3);
}

TEST(Draw, LineCoversEndpoints) {
  image_u8 im(8, 8, 1);
  draw_line(im, 1, 1, 6, 4, color{255, 255, 255});
  EXPECT_EQ(im.at(1, 1), 255);
  EXPECT_EQ(im.at(6, 4), 255);
}

TEST(Draw, HorizontalLineIsSolid) {
  image_u8 im(8, 4, 1);
  draw_line(im, 0, 2, 7, 2, color{9, 9, 9});
  for (int x = 0; x < 8; ++x) EXPECT_EQ(im.at(x, 2), 9);
}

TEST(Draw, FillRectClipsToImage) {
  image_u8 im(4, 4, 1);
  fill_rect(im, 2, 2, 10, 10, color{5, 5, 5});
  EXPECT_EQ(im.at(3, 3), 5);
  EXPECT_EQ(im.at(1, 1), 0);
}

TEST(Draw, RectOutlineLeavesInteriorEmpty) {
  image_u8 im(8, 8, 1);
  draw_rect(im, 1, 1, 5, 5, color{8, 8, 8});
  EXPECT_EQ(im.at(1, 1), 8);
  EXPECT_EQ(im.at(3, 3), 0);
}

TEST(Draw, FilledCircleContainsCenterNotCorners) {
  image_u8 im(16, 16, 1);
  fill_circle(im, 8, 8, 4, color{3, 3, 3});
  EXPECT_EQ(im.at(8, 8), 3);
  EXPECT_EQ(im.at(0, 0), 0);
  EXPECT_EQ(im.at(8 + 4, 8), 3);
  EXPECT_EQ(im.at(8 + 5, 8), 0);
}

TEST(Draw, CircleOutlineIsSymmetric) {
  image_u8 im(16, 16, 1);
  draw_circle(im, 8, 8, 5, color{4, 4, 4});
  EXPECT_EQ(im.at(13, 8), 4);
  EXPECT_EQ(im.at(3, 8), 4);
  EXPECT_EQ(im.at(8, 13), 4);
  EXPECT_EQ(im.at(8, 3), 4);
}

TEST(Draw, MarkerDrawsCross) {
  image_u8 im(8, 8, 1);
  draw_marker(im, 4, 4, 2, color{6, 6, 6});
  EXPECT_EQ(im.at(2, 4), 6);
  EXPECT_EQ(im.at(6, 4), 6);
  EXPECT_EQ(im.at(4, 2), 6);
  EXPECT_EQ(im.at(4, 6), 6);
  EXPECT_EQ(im.at(2, 2), 0);
}

}  // namespace
}  // namespace vs::img

namespace vs::log {
namespace {

TEST(Log, LevelThresholding) {
  const level original = get_level();
  set_level(level::warn);
  EXPECT_FALSE(enabled(level::debug));
  EXPECT_FALSE(enabled(level::info));
  EXPECT_TRUE(enabled(level::warn));
  EXPECT_TRUE(enabled(level::error));
  set_level(level::off);
  EXPECT_FALSE(enabled(level::error));
  set_level(original);
}

TEST(Log, WriteComposesWithoutCrashing) {
  const level original = get_level();
  set_level(level::off);
  write(level::error, "value=", 42, " name=", "x");  // discarded, no crash
  set_level(original);
}

}  // namespace
}  // namespace vs::log
