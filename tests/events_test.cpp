#include <gtest/gtest.h>

#include "app/events.h"
#include "video/generator.h"

namespace vs::app {
namespace {

const video::synthetic_video& clip() {
  static const auto source = video::make_input(video::input_id::input2, 12);
  return *source;
}

TEST(Events, PlacementsCoverStitchedFrames) {
  const auto result = summarize(clip(), pipeline_config{});
  EXPECT_EQ(result.placements.size(),
            static_cast<std::size_t>(result.stats.frames_stitched));
  for (const auto& placement : result.placements) {
    EXPECT_GE(placement.frame_index, 0);
    EXPECT_LT(placement.frame_index, result.stats.frames_total);
    EXPECT_GE(placement.panorama_index, 0);
    EXPECT_LT(placement.panorama_index, result.stats.mini_panoramas);
  }
}

TEST(Events, PlacementsAreOrderedByFrame) {
  const auto result = summarize(clip(), pipeline_config{});
  for (std::size_t i = 1; i < result.placements.size(); ++i) {
    EXPECT_LT(result.placements[i - 1].frame_index,
              result.placements[i].frame_index);
  }
}

TEST(Events, PanoramaBoundsMatchImages) {
  const auto result = summarize(clip(), pipeline_config{});
  ASSERT_EQ(result.panorama_bounds.size(), result.mini_panoramas.size());
  for (std::size_t p = 0; p < result.mini_panoramas.size(); ++p) {
    EXPECT_EQ(result.panorama_bounds[p].w, result.mini_panoramas[p].width());
    EXPECT_EQ(result.panorama_bounds[p].h, result.mini_panoramas[p].height());
  }
}

TEST(Events, SummarizeEventsProducesAnnotatedMontage) {
  const auto summary = summarize_events(clip(), pipeline_config{});
  EXPECT_FALSE(summary.annotated.empty());
  EXPECT_EQ(summary.annotated.channels(), 3);
  EXPECT_EQ(summary.tracks.size(), summary.coverage.mini_panoramas.size());
  // The synthetic clip's relocating clutter produces motion detections.
  EXPECT_GT(summary.detections_total, 0);
}

TEST(Events, DeterministicAcrossRuns) {
  const auto a = summarize_events(clip(), pipeline_config{});
  const auto b = summarize_events(clip(), pipeline_config{});
  EXPECT_EQ(a.annotated, b.annotated);
  EXPECT_EQ(a.detections_total, b.detections_total);
}

TEST(Events, OverlayDrawsConfirmedTrack) {
  img::image_u8 pano(40, 30, 1, 100);
  track::object_track confirmed;
  confirmed.state = track::track_state::confirmed;
  confirmed.path = {{5.0, 5.0}, {15.0, 5.0}, {25.0, 5.0}};
  const auto annotated =
      overlay_tracks(pano, geo::rect{0, 0, 40, 30}, {confirmed}, true);
  EXPECT_EQ(annotated.channels(), 3);
  // Trail pixels are red-dominant.
  EXPECT_GT(annotated.at(10, 5, 0), annotated.at(10, 5, 1));
}

TEST(Events, OverlaySkipsTentativeWhenConfirmedOnly) {
  img::image_u8 pano(40, 30, 1, 100);
  track::object_track tentative;
  tentative.state = track::track_state::tentative;
  tentative.path = {{5.0, 5.0}, {15.0, 5.0}};
  const auto annotated =
      overlay_tracks(pano, geo::rect{0, 0, 40, 30}, {tentative}, true);
  EXPECT_EQ(annotated.at(10, 5, 0), 100);  // untouched
}

TEST(Events, OverlayHonoursContentOrigin) {
  img::image_u8 pano(40, 30, 1, 100);
  track::object_track confirmed;
  confirmed.state = track::track_state::confirmed;
  // Anchor coords offset by the content origin (10, 5).
  confirmed.path = {{15.0, 10.0}, {25.0, 10.0}};
  const auto annotated =
      overlay_tracks(pano, geo::rect{10, 5, 40, 30}, {confirmed}, true);
  EXPECT_GT(annotated.at(10, 5, 0), annotated.at(10, 5, 1));
}

}  // namespace
}  // namespace vs::app
