// core::backoff_policy / retry_with_backoff — the supervisor's retry engine,
// pinned in isolation: exponential growth, cap, deterministic bounded
// jitter, and the attempt/sleep accounting retry loops rely on.
#include <gtest/gtest.h>

#include <vector>

#include "core/retry.h"

namespace vs::core {
namespace {

backoff_policy no_jitter() {
  backoff_policy p;
  p.base_delay_ms = 10.0;
  p.max_delay_ms = 100.0;
  p.multiplier = 2.0;
  p.jitter = 0.0;
  return p;
}

TEST(Retry, DelayGrowsExponentiallyThenCaps) {
  const backoff_policy p = no_jitter();
  EXPECT_DOUBLE_EQ(p.delay_ms(1), 10.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(2), 20.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(3), 40.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(4), 80.0);
  EXPECT_DOUBLE_EQ(p.delay_ms(5), 100.0);   // capped
  EXPECT_DOUBLE_EQ(p.delay_ms(50), 100.0);  // stays capped, no overflow
  EXPECT_DOUBLE_EQ(p.delay_ms(0), 10.0);    // clamped to the first attempt
}

TEST(Retry, JitterIsBoundedAndDeterministic) {
  backoff_policy p = no_jitter();
  p.jitter = 0.5;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double nominal = no_jitter().delay_ms(attempt);
    const double d = p.delay_ms(attempt);
    EXPECT_GE(d, nominal * 0.5) << "attempt " << attempt;
    EXPECT_LT(d, nominal * 1.5) << "attempt " << attempt;
    // Same policy, same attempt => same delay (replayable schedules).
    EXPECT_DOUBLE_EQ(d, p.delay_ms(attempt));
  }
  // Different seeds decorrelate the schedules.
  backoff_policy q = p;
  q.seed = p.seed + 1;
  bool any_differs = false;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    any_differs = any_differs || p.delay_ms(attempt) != q.delay_ms(attempt);
  }
  EXPECT_TRUE(any_differs);
}

TEST(Retry, StopsOnFirstSuccess) {
  backoff_policy p = no_jitter();
  p.max_attempts = 5;
  std::vector<double> sleeps;
  int calls = 0;
  const retry_outcome out = retry_with_backoff(
      p, [&](int attempt) { return ++calls == 3 && attempt == 3; },
      [&](double ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);  // slept after failures 1 and 2 only
  EXPECT_DOUBLE_EQ(sleeps[0], p.delay_ms(1));
  EXPECT_DOUBLE_EQ(sleeps[1], p.delay_ms(2));
  EXPECT_DOUBLE_EQ(out.slept_ms, sleeps[0] + sleeps[1]);
}

TEST(Retry, ExhaustsAttemptsWithoutSleepingAfterLast) {
  backoff_policy p = no_jitter();
  p.max_attempts = 3;
  int calls = 0;
  int sleeps = 0;
  const retry_outcome out = retry_with_backoff(
      p,
      [&](int) {
        ++calls;
        return false;
      },
      [&](double) { ++sleeps; });
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps, 2);  // no backoff after the final failure
}

TEST(Retry, SingleAttemptPolicyNeverSleeps) {
  backoff_policy p = no_jitter();
  p.max_attempts = 0;  // clamped to one try
  int sleeps = 0;
  const retry_outcome out =
      retry_with_backoff(p, [&](int) { return false; },
                         [&](double) { ++sleeps; });
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(sleeps, 0);
}

}  // namespace
}  // namespace vs::core
