#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "geometry/affine.h"
#include "geometry/homography.h"
#include "geometry/ransac.h"

namespace vs::geo {
namespace {

std::vector<point_pair> exact_pairs(const mat3& truth, int count,
                                    std::uint64_t seed) {
  rng gen(seed);
  std::vector<point_pair> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const vec2 p{gen.uniform_real(0.0, 128.0), gen.uniform_real(0.0, 96.0)};
    pairs.push_back({p, truth.apply(p)});
  }
  return pairs;
}

class HomographyRecovery : public ::testing::TestWithParam<mat3> {};

TEST_P(HomographyRecovery, RecoversExactTransform) {
  const mat3 truth = GetParam();
  const auto pairs = exact_pairs(truth, 16, 11);
  const auto estimate = estimate_homography(pairs);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(estimate->projective_distance(truth), 1e-6);
}

mat3 slight_perspective() {
  mat3 m = mat3::translation(3.0, 1.0) * mat3::rotation(0.1);
  m(2, 0) = 1e-4;
  m(2, 1) = -5e-5;
  return m;
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, HomographyRecovery,
    ::testing::Values(mat3::identity(), mat3::translation(10.0, -4.0),
                      mat3::rotation(0.25), mat3::scaling(1.3, 0.8),
                      mat3::translation(5.0, 2.0) * mat3::rotation(-0.4) *
                          mat3::scaling(1.1, 1.1),
                      slight_perspective()));

TEST(Homography, NeedsFourPairs) {
  const auto pairs = exact_pairs(mat3::identity(), 3, 5);
  EXPECT_FALSE(estimate_homography(pairs).has_value());
}

TEST(Homography, CollinearPointsDegenerate) {
  std::vector<point_pair> pairs;
  for (int i = 0; i < 6; ++i) {
    const vec2 p{static_cast<double>(i), static_cast<double>(2 * i)};
    pairs.push_back({p, p});
  }
  EXPECT_FALSE(estimate_homography(pairs).has_value());
}

TEST(Homography, ReprojectionErrorZeroForExact) {
  const mat3 truth = mat3::translation(2.0, 2.0);
  const point_pair pair{{5.0, 6.0}, truth.apply({5.0, 6.0})};
  EXPECT_NEAR(reprojection_error(truth, pair), 0.0, 1e-9);
}

TEST(Homography, ReprojectionErrorMeasuresDisplacement) {
  const point_pair pair{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_NEAR(reprojection_error(mat3::identity(), pair), 5.0, 1e-9);
}

TEST(Homography, PlausibleAcceptsRigid) {
  EXPECT_TRUE(plausible_homography(mat3::identity()));
  EXPECT_TRUE(plausible_homography(mat3::rotation(1.0)));
  EXPECT_TRUE(plausible_homography(mat3::translation(100.0, 50.0)));
}

TEST(Homography, PlausibleRejectsCollapseAndExplosion) {
  EXPECT_FALSE(plausible_homography(mat3::scaling(0.1, 0.1), 4.0));
  EXPECT_FALSE(plausible_homography(mat3::scaling(10.0, 10.0), 4.0));
}

TEST(Homography, PlausibleRejectsReflection) {
  EXPECT_FALSE(plausible_homography(mat3::scaling(-1.0, 1.0)));
}

TEST(Homography, PlausibleRejectsStrongPerspective) {
  mat3 m = mat3::identity();
  m(2, 0) = 0.5;
  EXPECT_FALSE(plausible_homography(m));
}

TEST(Affine, RecoversExactAffine) {
  const mat3 truth = mat3::affine(1.2, -0.3, 7.0, 0.25, 0.9, -2.0);
  const auto pairs = exact_pairs(truth, 12, 17);
  const auto estimate = estimate_affine(pairs);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(estimate->projective_distance(truth), 1e-6);
}

TEST(Affine, NeedsThreePairs) {
  const auto pairs = exact_pairs(mat3::identity(), 2, 3);
  EXPECT_FALSE(estimate_affine(pairs).has_value());
}

TEST(Affine, CollinearDegenerate) {
  std::vector<point_pair> pairs;
  for (int i = 0; i < 5; ++i) {
    const vec2 p{static_cast<double>(i), 0.0};
    pairs.push_back({p, p});
  }
  EXPECT_FALSE(estimate_affine(pairs).has_value());
}

TEST(Similarity, RecoversRotationScaleTranslation) {
  const double s = 1.4;
  const double theta = 0.6;
  const mat3 truth =
      mat3::translation(3.0, -2.0) * mat3::rotation(theta) *
      mat3::scaling(s, s);
  const auto pairs = exact_pairs(truth, 8, 23);
  const auto estimate = estimate_similarity(pairs);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_LT(estimate->projective_distance(truth), 1e-6);
}

TEST(Similarity, NeedsTwoPairs) {
  std::vector<point_pair> one = {{{0, 0}, {1, 1}}};
  EXPECT_FALSE(estimate_similarity(one).has_value());
}

TEST(Ransac, RecoversModelDespiteOutliers) {
  const mat3 truth = mat3::translation(6.0, -3.0) * mat3::rotation(0.15);
  auto pairs = exact_pairs(truth, 40, 31);
  rng junk(99);
  for (int i = 0; i < 15; ++i) {
    pairs.push_back({{junk.uniform_real(0, 128), junk.uniform_real(0, 96)},
                     {junk.uniform_real(0, 128), junk.uniform_real(0, 96)}});
  }
  ransac_params params;
  params.min_inliers = 20;
  const auto fit = ransac_homography(pairs, params, 7);
  ASSERT_TRUE(fit.has_value());
  EXPECT_GE(fit->inlier_count, 38u);
  EXPECT_LT(fit->model.projective_distance(truth), 1e-4);
}

class RansacOutlierSweep : public ::testing::TestWithParam<int> {};

TEST_P(RansacOutlierSweep, SurvivesOutlierFraction) {
  const int outliers = GetParam();
  const mat3 truth = mat3::translation(-4.0, 8.0);
  auto pairs = exact_pairs(truth, 30, 41);
  rng junk(1234);
  for (int i = 0; i < outliers; ++i) {
    pairs.push_back({{junk.uniform_real(0, 128), junk.uniform_real(0, 96)},
                     {junk.uniform_real(0, 128), junk.uniform_real(0, 96)}});
  }
  ransac_params params;
  params.min_inliers = 25;
  params.max_iterations = 400;
  const auto fit = ransac_homography(pairs, params, 5);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->model.projective_distance(truth), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(OutlierCounts, RansacOutlierSweep,
                         ::testing::Values(0, 5, 15, 30));

TEST(Ransac, DeterministicForSameSeed) {
  const mat3 truth = mat3::rotation(0.2);
  auto pairs = exact_pairs(truth, 25, 51);
  ransac_params params;
  const auto a = ransac_homography(pairs, params, 77);
  const auto b = ransac_homography(pairs, params, 77);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->inlier_count, b->inlier_count);
  EXPECT_LT(a->model.projective_distance(b->model), 1e-12);
}

TEST(Ransac, RejectsWhenTooFewInliers) {
  rng junk(3);
  std::vector<point_pair> pairs;
  for (int i = 0; i < 30; ++i) {
    pairs.push_back({{junk.uniform_real(0, 128), junk.uniform_real(0, 96)},
                     {junk.uniform_real(0, 128), junk.uniform_real(0, 96)}});
  }
  ransac_params params;
  params.min_inliers = 25;
  EXPECT_FALSE(ransac_homography(pairs, params, 7).has_value());
}

TEST(Ransac, AffineVariantRecovers) {
  const mat3 truth = mat3::affine(1.1, 0.1, -5.0, -0.05, 0.95, 3.0);
  auto pairs = exact_pairs(truth, 30, 61);
  ransac_params params;
  params.min_inliers = 20;
  const auto fit = ransac_affine(pairs, params, 9);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->model.projective_distance(truth), 1e-5);
}

TEST(Ransac, EarlyExitUsesFewerIterationsOnCleanData) {
  const mat3 truth = mat3::translation(1.0, 1.0);
  auto pairs = exact_pairs(truth, 30, 71);
  ransac_params params;
  params.max_iterations = 500;
  const auto fit = ransac_homography(pairs, params, 3);
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->iterations_run, 50);
}

TEST(Ransac, ZeroSampleSizeThrows) {
  std::vector<point_pair> pairs(10);
  ransac_params params;
  params.sample_size = 0;
  auto estimator = [](std::span<const point_pair>) {
    return std::optional<mat3>{};
  };
  auto error = [](const mat3&, const point_pair&) { return 0.0; };
  EXPECT_THROW((void)ransac_fit(pairs, params, estimator, error, 1),
               invalid_argument);
}

}  // namespace
}  // namespace vs::geo
