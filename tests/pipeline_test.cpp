#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "app/wp.h"
#include "core/error.h"
#include "video/generator.h"

namespace vs::app {
namespace {

// Shared small clips so the suite stays fast (scene generation is the
// expensive part and is cached by make_input's shared_ptr per call site).
const video::synthetic_video& clip2() {
  static const auto clip = video::make_input(video::input_id::input2, 10);
  return *clip;
}
const video::synthetic_video& clip1() {
  static const auto clip = video::make_input(video::input_id::input1, 10);
  return *clip;
}

TEST(Pipeline, BaselineStitchesSmoothInput) {
  const auto result = summarize(clip2(), pipeline_config{});
  EXPECT_EQ(result.stats.frames_total, 10);
  EXPECT_GE(result.stats.frames_stitched, 8);
  EXPECT_GE(result.stats.mini_panoramas, 1);
  EXPECT_FALSE(result.panorama.empty());
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto a = summarize(clip2(), pipeline_config{});
  const auto b = summarize(clip2(), pipeline_config{});
  EXPECT_EQ(a.panorama, b.panorama);
  EXPECT_EQ(a.stats.frames_stitched, b.stats.frames_stitched);
}

TEST(Pipeline, PanoramaCoversMoreThanOneFrame) {
  const auto result = summarize(clip2(), pipeline_config{});
  EXPECT_GT(result.panorama.width(), clip2().frame_width());
}

TEST(Pipeline, FrameAccountingIsConsistent) {
  for (const auto* clip : {&clip1(), &clip2()}) {
    for (const auto alg : {algorithm::vs, algorithm::vs_rfd,
                           algorithm::vs_kds, algorithm::vs_sm}) {
      pipeline_config config;
      config.approx.alg = alg;
      const auto result = summarize(*clip, config);
      EXPECT_EQ(result.stats.frames_stitched + result.stats.frames_discarded +
                    result.stats.frames_dropped_rfd,
                result.stats.frames_total)
          << algorithm_name(alg);
      EXPECT_EQ(result.stats.mini_panoramas,
                static_cast<int>(result.mini_panoramas.size()));
    }
  }
}

TEST(Pipeline, RfdDropsRequestedFraction) {
  pipeline_config config;
  config.approx.alg = algorithm::vs_rfd;
  config.approx.rfd_drop_fraction = 0.5;  // large so 10 frames show it
  const auto result = summarize(clip2(), config);
  EXPECT_GT(result.stats.frames_dropped_rfd, 0);
}

TEST(Pipeline, RfdZeroFractionDropsNothing) {
  pipeline_config config;
  config.approx.alg = algorithm::vs_rfd;
  config.approx.rfd_drop_fraction = 0.0;
  const auto result = summarize(clip2(), config);
  EXPECT_EQ(result.stats.frames_dropped_rfd, 0);
}

TEST(Pipeline, KdsReducesKeypointsMatchedOn) {
  pipeline_config baseline;
  const auto vs = summarize(clip2(), baseline);
  pipeline_config kds;
  kds.approx.alg = algorithm::vs_kds;
  const auto approx = summarize(clip2(), kds);
  EXPECT_EQ(vs.stats.keypoints_detected, approx.stats.keypoints_detected);
  EXPECT_LT(approx.stats.keypoints_matched_on,
            vs.stats.keypoints_matched_on / 2);
}

TEST(Pipeline, BaselineMatchesOnAllKeypoints) {
  const auto result = summarize(clip2(), pipeline_config{});
  EXPECT_EQ(result.stats.keypoints_detected,
            result.stats.keypoints_matched_on);
}

TEST(Pipeline, SmUsesSimpleMatcher) {
  pipeline_config config;
  config.approx.alg = algorithm::vs_sm;
  EXPECT_EQ(config.matcher().mode, match::match_mode::simple);
  EXPECT_EQ(pipeline_config{}.matcher().mode, match::match_mode::ratio_test);
}

TEST(Pipeline, ApproximateGoldensDifferFromBaseline) {
  const auto vs = summarize(clip1(), pipeline_config{});
  pipeline_config rfd;
  rfd.approx.alg = algorithm::vs_rfd;
  rfd.approx.rfd_drop_fraction = 0.3;
  const auto approx = summarize(clip1(), rfd);
  EXPECT_FALSE(vs.panorama == approx.panorama);
}

TEST(Pipeline, Input1FragmentsMoreThanInput2) {
  const auto one = summarize(clip1(), pipeline_config{});
  const auto two = summarize(clip2(), pipeline_config{});
  EXPECT_GE(one.stats.mini_panoramas, two.stats.mini_panoramas);
}

TEST(Pipeline, CumulativeAlignmentsAreCounted) {
  const auto result = summarize(clip2(), pipeline_config{});
  EXPECT_GT(result.stats.homography_alignments +
                result.stats.affine_alignments,
            0);
}

TEST(ParseAlgorithm, AllNamesRoundTrip) {
  for (const auto alg : {algorithm::vs, algorithm::vs_rfd, algorithm::vs_kds,
                         algorithm::vs_sm}) {
    EXPECT_EQ(parse_algorithm(algorithm_name(alg)), alg);
  }
}

TEST(ParseAlgorithm, CaseInsensitiveAndShortForms) {
  EXPECT_EQ(parse_algorithm("vs_rfd"), algorithm::vs_rfd);
  EXPECT_EQ(parse_algorithm("kds"), algorithm::vs_kds);
  EXPECT_EQ(parse_algorithm("Sm"), algorithm::vs_sm);
}

TEST(ParseAlgorithm, UnknownThrows) {
  EXPECT_THROW((void)parse_algorithm("vs_magic"), invalid_argument);
}

TEST(Wp, ProducesWarpedOutput) {
  const auto frame = clip2().frame(0);
  const auto out = run_wp(frame, wp_default_transform());
  EXPECT_FALSE(out.empty());
  EXPECT_GE(out.width(), frame.width() - 2);
}

TEST(Wp, IdentityTransformKeepsSize) {
  const auto frame = clip2().frame(0);
  const auto out = run_wp(frame, geo::mat3::identity());
  EXPECT_EQ(out.width(), frame.width());
  EXPECT_EQ(out.height(), frame.height());
}

TEST(Wp, DeterministicOutput) {
  const auto frame = clip2().frame(0);
  EXPECT_EQ(run_wp(frame, wp_default_transform()),
            run_wp(frame, wp_default_transform()));
}

TEST(Wp, DegenerateTransformThrows) {
  const auto frame = clip2().frame(0);
  EXPECT_THROW((void)run_wp(frame, geo::mat3::translation(1e12, 0.0)),
               invalid_argument);
}

}  // namespace
}  // namespace vs::app
