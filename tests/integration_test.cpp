// Cross-module integration tests: the full application under
// instrumentation, fault campaigns over the real pipeline, and the
// experiment-level properties the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "app/pipeline.h"
#include "app/wp.h"
#include "fault/campaign.h"
#include "perf/profiler.h"
#include "quality/metric.h"
#include "video/generator.h"

namespace vs {
namespace {

std::shared_ptr<const video::synthetic_video> small_input(video::input_id id) {
  static const auto one = video::make_input(video::input_id::input1, 8);
  static const auto two = video::make_input(video::input_id::input2, 8);
  return id == video::input_id::input1 ? one : two;
}

TEST(Integration, InstrumentedRunMatchesUninstrumented) {
  const auto source = small_input(video::input_id::input2);
  const auto plain = app::summarize(*source, app::pipeline_config{});
  rt::session session;
  const auto instrumented = app::summarize(*source, app::pipeline_config{});
  EXPECT_EQ(plain.panorama, instrumented.panorama);
  EXPECT_GT(session.stats().steps(), 1000000u);
}

TEST(Integration, ProfileIsWarpDominated) {
  const auto source = small_input(video::input_id::input2);
  rt::session session;
  (void)app::summarize(*source, app::pipeline_config{});
  const auto profile = perf::function_profile(session.stats());
  const double warp = perf::warp_fraction(profile);
  EXPECT_GT(warp, 0.15);  // the hot function is a leading cost
  EXPECT_GT(perf::opencv_fraction(profile), 0.5);
}

TEST(Integration, ApproximationsAreCheaperOrEqual) {
  const auto source = small_input(video::input_id::input2);
  double baseline_cycles = 0.0;
  for (const auto alg : {app::algorithm::vs, app::algorithm::vs_kds}) {
    app::pipeline_config config;
    config.approx.alg = alg;
    rt::session session;
    (void)app::summarize(*source, config);
    const auto report = perf::evaluate(session.stats());
    if (alg == app::algorithm::vs) {
      baseline_cycles = report.cycles;
    } else {
      EXPECT_LT(report.cycles, baseline_cycles);
    }
  }
}

TEST(Integration, GprCampaignOnRealPipelineProducesPaperShape) {
  const auto source = small_input(video::input_id::input2);
  fault::campaign_config config;
  config.injections = 150;
  config.seed = 7;
  config.threads = 1;
  const auto result = fault::run_campaign(
      [source] { return app::summarize(*source, app::pipeline_config{}).panorama; },
      config);
  // Shape assertions, loose enough to be stable at 150 experiments.
  EXPECT_GT(result.rates.rate(fault::outcome::masked), 0.35);
  EXPECT_GT(result.rates.crash_rate(), 0.2);
  EXPECT_LT(result.rates.rate(fault::outcome::sdc), 0.15);
}

TEST(Integration, FprCampaignIsOverwhelminglyMasked) {
  const auto source = small_input(video::input_id::input2);
  fault::campaign_config config;
  config.cls = rt::reg_class::fpr;
  config.injections = 150;
  config.seed = 11;
  config.threads = 1;
  const auto result = fault::run_campaign(
      [source] { return app::summarize(*source, app::pipeline_config{}).panorama; },
      config);
  EXPECT_GT(result.rates.rate(fault::outcome::masked), 0.95);
  EXPECT_EQ(result.rates.crash_rate(), 0.0);
}

TEST(Integration, ScopedCampaignOnWpRuns) {
  const auto source = small_input(video::input_id::input1);
  const img::image_u8 frame = source->frame(0);
  const geo::mat3 transform = app::wp_default_transform();
  fault::campaign_config config;
  config.injections = 100;
  config.seed = 13;
  config.threads = 1;
  config.scoped = true;
  config.scope = rt::fn::warp;
  const auto result = fault::run_campaign(
      [frame, transform] { return app::run_wp(frame, transform); }, config);
  EXPECT_EQ(result.rates.experiments, 100u);
}

TEST(Integration, QualityMetricOnApproxGoldens) {
  const auto source = small_input(video::input_id::input2);
  const auto vs = app::summarize(*source, app::pipeline_config{});
  app::pipeline_config sm;
  sm.approx.alg = app::algorithm::vs_sm;
  const auto approx = app::summarize(*source, sm);
  const auto q = quality::compare_images(vs.panorama, approx.panorama);
  // The approximate output is similar but not beyond the egregious limit.
  EXPECT_FALSE(q.egregious);
}

TEST(Integration, CampaignGoldenIdenticalToPlainRun) {
  const auto source = small_input(video::input_id::input2);
  const auto plain = app::summarize(*source, app::pipeline_config{}).panorama;
  fault::campaign_config config;
  config.injections = 1;
  config.threads = 1;
  const auto result = fault::run_campaign(
      [source] { return app::summarize(*source, app::pipeline_config{}).panorama; },
      config);
  EXPECT_EQ(result.golden, plain);
}

}  // namespace
}  // namespace vs
