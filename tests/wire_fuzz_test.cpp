// Adversarial round-trip tests shared by the two wire decoders: the
// supervisor's checksummed line protocol (fault/wire.h) and the serving
// front end's length-prefixed binary framing (serve/framing.h).  Both sit
// on byte streams written by processes that die mid-write, so the contract
// under test is the same for each: random payloads survive a round trip,
// and truncation, bit flips, or outright garbage are skipped — never a
// crash, never a half-parsed record.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fault/wire.h"
#include "serve/framing.h"
#include "serve/protocol.h"

namespace vs {
namespace {

std::string random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

std::string random_line_text(std::mt19937_64& rng, std::size_t max_len) {
  // Line protocol payloads must stay newline-free (seal()'s contract).
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

// --- fault/wire line protocol ---

TEST(WireFuzz, RandomPayloadsRoundTripThroughSeal) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::string payload = random_line_text(rng, 120);
    const auto back = fault::wire::unseal(fault::wire::seal(payload));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
  }
}

TEST(WireFuzz, TruncatedSealedLinesAreRejected) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::string sealed = fault::wire::seal(random_line_text(rng, 80));
    std::uniform_int_distribution<std::size_t> cut(0, sealed.size() - 1);
    const std::string torn = sealed.substr(0, cut(rng));
    const auto back = fault::wire::unseal(torn);
    if (back.has_value()) {
      // A cut can legally land after a shorter valid seal only if the
      // remaining text still checksums; rebuilding must agree.
      EXPECT_EQ(fault::wire::seal(*back), torn);
    }
  }
}

TEST(WireFuzz, FlippedChecksumByteRejectsTheLine) {
  const std::string sealed = fault::wire::seal("R 1 2 3");
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string bent = sealed;
    bent[i] = static_cast<char>(bent[i] ^ 0x20);  // stays printable-ish
    const auto back = fault::wire::unseal(bent);
    if (back.has_value()) {
      // A single-byte flip can change the payload or the checksum, never
      // both consistently.  The only legal survivors are hex-case flips in
      // the checksum digits (unseal parses hex case-insensitively), which
      // leave the payload untouched.
      EXPECT_EQ(*back, "R 1 2 3");
      EXPECT_GE(i, sealed.rfind('~'));
    }
  }
}

TEST(WireFuzz, GarbageNeverParsesAsARecord) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    // Must not crash; almost always nullopt, and any survivor must have
    // passed every range check.
    (void)fault::wire::parse_record(random_bytes(rng, 100));
  }
}

// --- serve framing ---

TEST(FrameFuzz, RandomPayloadsRoundTrip) {
  std::mt19937_64 rng(21);
  serve::frame_decoder decoder;
  for (int i = 0; i < 100; ++i) {
    const std::string payload = random_bytes(rng, 600);
    const std::uint16_t type = static_cast<std::uint16_t>(i % 9 + 1);
    decoder.feed(serve::encode_frame(type, payload));
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
  }
  EXPECT_EQ(decoder.skipped_bytes(), 0u);
}

TEST(FrameFuzz, ArbitraryChunkBoundariesDontMatter) {
  std::mt19937_64 rng(22);
  std::string stream;
  std::vector<std::string> payloads;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back(random_bytes(rng, 300));
    stream += serve::encode_frame(5, payloads.back());
  }
  serve::frame_decoder decoder;
  std::size_t decoded = 0;
  std::size_t pos = 0;
  std::uniform_int_distribution<std::size_t> chunk(1, 7);
  while (pos < stream.size()) {
    const std::size_t n = std::min(chunk(rng), stream.size() - pos);
    decoder.feed(stream.data() + pos, n);
    pos += n;
    while (const auto frame = decoder.next()) {
      ASSERT_LT(decoded, payloads.size());
      EXPECT_EQ(frame->payload, payloads[decoded]);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, payloads.size());
  EXPECT_EQ(decoder.skipped_bytes(), 0u);
}

TEST(FrameFuzz, TruncatedFrameIsSkippedAndStreamResyncs) {
  // A worker died mid-payload: the torn frame carries an intact header, so
  // the decoder knows the claimed length, reads that many bytes from what
  // follows, fails the checksum, and resyncs.  The survivor frame is made
  // longer than any claimed length so the checksum check always fires.
  // (A cut inside the header leaves a garbage length field the decoder can
  // only wait out — that path is covered by the length-cap test below.)
  std::mt19937_64 rng(23);
  for (int i = 0; i < 50; ++i) {
    std::string torn_payload = random_bytes(rng, 200);
    if (torn_payload.empty()) torn_payload = "x";
    const std::string torn_full = serve::encode_frame(2, torn_payload);
    std::uniform_int_distribution<std::size_t> cut(serve::kFrameHeaderSize,
                                                   torn_full.size() - 1);
    std::string survivor_payload = random_bytes(rng, 200);
    survivor_payload.resize(400, '\x5A');
    serve::frame_decoder decoder;
    decoder.feed(torn_full.substr(0, cut(rng)));
    decoder.feed(serve::encode_frame(6, survivor_payload));
    std::optional<serve::frame> got;
    while (const auto frame = decoder.next()) got = frame;
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, 6);
    EXPECT_EQ(got->payload, survivor_payload);
  }
}

TEST(FrameFuzz, FlippedBytesNeverYieldACorruptFrame) {
  std::mt19937_64 rng(24);
  for (int i = 0; i < 120; ++i) {
    const std::string payload = random_bytes(rng, 150);
    std::string bent = serve::encode_frame(3, payload);
    std::uniform_int_distribution<std::size_t> pick(0, bent.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    const std::size_t at = pick(rng);
    bent[at] = static_cast<char>(bent[at] ^ (1 << bit(rng)));

    const std::string clean_payload = random_bytes(rng, 150);
    serve::frame_decoder decoder;
    decoder.feed(bent);
    decoder.feed(serve::encode_frame(4, clean_payload));

    // However the flip lands, every frame that comes out is internally
    // consistent, and the clean frame always survives — though a flip in
    // the length field can inflate the claimed payload (up to the 64 MiB
    // cap), in which case the decoder legitimately waits for those bytes
    // before it can fail the checksum and resync.  Feed filler until it
    // does; a correct decoder recovers the clean frame within the cap.
    bool saw_clean = false;
    const auto drain = [&] {
      while (const auto frame = decoder.next()) {
        if (frame->type == 4 && frame->payload == clean_payload) {
          saw_clean = true;
        } else {
          EXPECT_EQ(frame->type, 3);
          EXPECT_EQ(frame->payload, payload);  // flip hit dead bytes only
        }
      }
    };
    drain();
    const std::string filler(1u << 20, '\0');
    for (int flush = 0; !saw_clean && flush < 72; ++flush) {
      decoder.feed(filler);
      drain();
    }
    EXPECT_TRUE(saw_clean);
  }
}

TEST(FrameFuzz, PureGarbageNeverCrashesOrWedges) {
  std::mt19937_64 rng(25);
  serve::frame_decoder decoder;
  std::size_t fed = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string junk = random_bytes(rng, 300);
    fed += junk.size();
    decoder.feed(junk);
    while (decoder.next()) {
      // A random 16-byte header + checksum colliding is ~2^-64; finding a
      // frame here means the validator is broken.
      ADD_FAILURE() << "garbage decoded as a frame";
    }
  }
  // Everything but a sub-header tail must have been consumed and tallied.
  EXPECT_GE(decoder.skipped_bytes() + serve::kFrameHeaderSize, fed);
}

TEST(FrameFuzz, AbsurdLengthFieldsCannotReserveMemory) {
  // A header claiming a 3 GiB payload must be rejected by the cap, not
  // buffered until the host dies.
  std::string bent = serve::encode_frame(1, "x");
  bent[8] = '\xFF';  // length field low byte
  bent[9] = '\xFF';
  bent[10] = '\xFF';
  bent[11] = '\x7F';
  serve::frame_decoder decoder;
  decoder.feed(bent);
  while (decoder.next()) {
  }
  EXPECT_LT(decoder.pending_bytes(), bent.size());
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

// --- serve protocol parsers on top of the framing ---

TEST(ProtocolFuzz, GarbagePayloadsNeverCrashParsers) {
  std::mt19937_64 rng(31);
  for (int i = 0; i < 300; ++i) {
    const std::string junk = random_bytes(rng, 200);
    (void)serve::parse_hello(junk);
    (void)serve::parse_submit(junk);
    (void)serve::parse_accepted(junk);
    (void)serve::parse_rejected(junk);
    (void)serve::parse_panorama(junk);
    (void)serve::parse_complete(junk);
    (void)serve::parse_failed(junk);
    (void)serve::parse_stats_reply(junk);
  }
}

TEST(ProtocolFuzz, ImageDimensionByteCountMismatchIsRejected) {
  img::image_u8 image(6, 4, 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(i * 7);
  }
  serve::panorama_msg msg;
  msg.job_id = 9;
  msg.index = 1;
  msg.image = image;
  const std::string framed = serve::encode_panorama(msg);

  serve::frame_decoder decoder;
  decoder.feed(framed);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());

  // Valid as-is...
  ASSERT_TRUE(serve::parse_panorama(frame->payload).has_value());
  // ...but claiming one more column than the bytes provide must fail
  // (dimension tokens live before the '\n').
  std::string bent = frame->payload;
  const std::size_t nl = bent.find('\n');
  ASSERT_NE(nl, std::string::npos);
  std::string header = bent.substr(0, nl);
  const std::size_t w_at = header.find(" 6 ");
  ASSERT_NE(w_at, std::string::npos);
  header.replace(w_at, 3, " 7 ");
  EXPECT_FALSE(
      serve::parse_panorama(header + bent.substr(nl)).has_value());
}

TEST(ProtocolFuzz, SubmitRoundTripPreservesEveryField) {
  serve::job_request request;
  request.input = video::input_id::input2;
  request.alg = app::algorithm::vs_kds;
  request.frames = 33;
  request.hardening = resil::hardening_level::cfcss;
  request.priority = serve::priority_class::interactive;
  request.deadline_ms = 12345;
  request.max_threads = 5;

  serve::frame_decoder decoder;
  decoder.feed(serve::encode_submit(request));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  const auto back = serve::parse_submit(frame->payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->input, request.input);
  EXPECT_EQ(back->alg, request.alg);
  EXPECT_EQ(back->frames, request.frames);
  EXPECT_EQ(back->hardening, request.hardening);
  EXPECT_EQ(back->priority, request.priority);
  EXPECT_EQ(back->deadline_ms, request.deadline_ms);
  EXPECT_EQ(back->max_threads, request.max_threads);
}

}  // namespace
}  // namespace vs
