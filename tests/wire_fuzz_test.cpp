// Adversarial round-trip tests shared by the two wire decoders: the
// supervisor's checksummed line protocol (fault/wire.h) and the serving
// front end's length-prefixed binary framing (serve/framing.h).  Both sit
// on byte streams written by processes that die mid-write, so the contract
// under test is the same for each: random payloads survive a round trip,
// and truncation, bit flips, or outright garbage are skipped — never a
// crash, never a half-parsed record.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "fault/wire.h"
#include "serve/framing.h"
#include "serve/job_journal.h"
#include "serve/protocol.h"
#include "supervise/journal.h"

namespace vs {
namespace {

std::string random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

std::string random_line_text(std::mt19937_64& rng, std::size_t max_len) {
  // Line protocol payloads must stay newline-free (seal()'s contract).
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

// --- fault/wire line protocol ---

TEST(WireFuzz, RandomPayloadsRoundTripThroughSeal) {
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::string payload = random_line_text(rng, 120);
    const auto back = fault::wire::unseal(fault::wire::seal(payload));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
  }
}

TEST(WireFuzz, TruncatedSealedLinesAreRejected) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::string sealed = fault::wire::seal(random_line_text(rng, 80));
    std::uniform_int_distribution<std::size_t> cut(0, sealed.size() - 1);
    const std::string torn = sealed.substr(0, cut(rng));
    const auto back = fault::wire::unseal(torn);
    if (back.has_value()) {
      // A cut can legally land after a shorter valid seal only if the
      // remaining text still checksums; rebuilding must agree.
      EXPECT_EQ(fault::wire::seal(*back), torn);
    }
  }
}

TEST(WireFuzz, FlippedChecksumByteRejectsTheLine) {
  const std::string sealed = fault::wire::seal("R 1 2 3");
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string bent = sealed;
    bent[i] = static_cast<char>(bent[i] ^ 0x20);  // stays printable-ish
    const auto back = fault::wire::unseal(bent);
    if (back.has_value()) {
      // A single-byte flip can change the payload or the checksum, never
      // both consistently.  The only legal survivors are hex-case flips in
      // the checksum digits (unseal parses hex case-insensitively), which
      // leave the payload untouched.
      EXPECT_EQ(*back, "R 1 2 3");
      EXPECT_GE(i, sealed.rfind('~'));
    }
  }
}

TEST(WireFuzz, GarbageNeverParsesAsARecord) {
  std::mt19937_64 rng(11);
  for (int i = 0; i < 500; ++i) {
    // Must not crash; almost always nullopt, and any survivor must have
    // passed every range check.
    (void)fault::wire::parse_record(random_bytes(rng, 100));
  }
}

// --- serve framing ---

TEST(FrameFuzz, RandomPayloadsRoundTrip) {
  std::mt19937_64 rng(21);
  serve::frame_decoder decoder;
  for (int i = 0; i < 100; ++i) {
    const std::string payload = random_bytes(rng, 600);
    const std::uint16_t type = static_cast<std::uint16_t>(i % 9 + 1);
    decoder.feed(serve::encode_frame(type, payload));
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
  }
  EXPECT_EQ(decoder.skipped_bytes(), 0u);
}

TEST(FrameFuzz, ArbitraryChunkBoundariesDontMatter) {
  std::mt19937_64 rng(22);
  std::string stream;
  std::vector<std::string> payloads;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back(random_bytes(rng, 300));
    stream += serve::encode_frame(5, payloads.back());
  }
  serve::frame_decoder decoder;
  std::size_t decoded = 0;
  std::size_t pos = 0;
  std::uniform_int_distribution<std::size_t> chunk(1, 7);
  while (pos < stream.size()) {
    const std::size_t n = std::min(chunk(rng), stream.size() - pos);
    decoder.feed(stream.data() + pos, n);
    pos += n;
    while (const auto frame = decoder.next()) {
      ASSERT_LT(decoded, payloads.size());
      EXPECT_EQ(frame->payload, payloads[decoded]);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, payloads.size());
  EXPECT_EQ(decoder.skipped_bytes(), 0u);
}

TEST(FrameFuzz, TruncatedFrameIsSkippedAndStreamResyncs) {
  // A worker died mid-payload: the torn frame carries an intact header, so
  // the decoder knows the claimed length, reads that many bytes from what
  // follows, fails the checksum, and resyncs.  The survivor frame is made
  // longer than any claimed length so the checksum check always fires.
  // (A cut inside the header leaves a garbage length field the decoder can
  // only wait out — that path is covered by the length-cap test below.)
  std::mt19937_64 rng(23);
  for (int i = 0; i < 50; ++i) {
    std::string torn_payload = random_bytes(rng, 200);
    if (torn_payload.empty()) torn_payload = "x";
    const std::string torn_full = serve::encode_frame(2, torn_payload);
    std::uniform_int_distribution<std::size_t> cut(serve::kFrameHeaderSize,
                                                   torn_full.size() - 1);
    std::string survivor_payload = random_bytes(rng, 200);
    survivor_payload.resize(400, '\x5A');
    serve::frame_decoder decoder;
    decoder.feed(torn_full.substr(0, cut(rng)));
    decoder.feed(serve::encode_frame(6, survivor_payload));
    std::optional<serve::frame> got;
    while (const auto frame = decoder.next()) got = frame;
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, 6);
    EXPECT_EQ(got->payload, survivor_payload);
  }
}

TEST(FrameFuzz, FlippedBytesNeverYieldACorruptFrame) {
  std::mt19937_64 rng(24);
  for (int i = 0; i < 120; ++i) {
    const std::string payload = random_bytes(rng, 150);
    std::string bent = serve::encode_frame(3, payload);
    std::uniform_int_distribution<std::size_t> pick(0, bent.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    const std::size_t at = pick(rng);
    bent[at] = static_cast<char>(bent[at] ^ (1 << bit(rng)));

    const std::string clean_payload = random_bytes(rng, 150);
    serve::frame_decoder decoder;
    decoder.feed(bent);
    decoder.feed(serve::encode_frame(4, clean_payload));

    // However the flip lands, every frame that comes out is internally
    // consistent, and the clean frame always survives — though a flip in
    // the length field can inflate the claimed payload (up to the 64 MiB
    // cap), in which case the decoder legitimately waits for those bytes
    // before it can fail the checksum and resync.  Feed filler until it
    // does; a correct decoder recovers the clean frame within the cap.
    bool saw_clean = false;
    const auto drain = [&] {
      while (const auto frame = decoder.next()) {
        if (frame->type == 4 && frame->payload == clean_payload) {
          saw_clean = true;
        } else {
          EXPECT_EQ(frame->type, 3);
          EXPECT_EQ(frame->payload, payload);  // flip hit dead bytes only
        }
      }
    };
    drain();
    const std::string filler(1u << 20, '\0');
    for (int flush = 0; !saw_clean && flush < 72; ++flush) {
      decoder.feed(filler);
      drain();
    }
    EXPECT_TRUE(saw_clean);
  }
}

TEST(FrameFuzz, PureGarbageNeverCrashesOrWedges) {
  std::mt19937_64 rng(25);
  serve::frame_decoder decoder;
  std::size_t fed = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string junk = random_bytes(rng, 300);
    fed += junk.size();
    decoder.feed(junk);
    while (decoder.next()) {
      // A random 16-byte header + checksum colliding is ~2^-64; finding a
      // frame here means the validator is broken.
      ADD_FAILURE() << "garbage decoded as a frame";
    }
  }
  // Everything but a sub-header tail must have been consumed and tallied.
  EXPECT_GE(decoder.skipped_bytes() + serve::kFrameHeaderSize, fed);
}

TEST(FrameFuzz, AbsurdLengthFieldsCannotReserveMemory) {
  // A header claiming a 3 GiB payload must be rejected by the cap, not
  // buffered until the host dies.
  std::string bent = serve::encode_frame(1, "x");
  bent[8] = '\xFF';  // length field low byte
  bent[9] = '\xFF';
  bent[10] = '\xFF';
  bent[11] = '\x7F';
  serve::frame_decoder decoder;
  decoder.feed(bent);
  while (decoder.next()) {
  }
  EXPECT_LT(decoder.pending_bytes(), bent.size());
  EXPECT_GT(decoder.skipped_bytes(), 0u);
}

// --- serve protocol parsers on top of the framing ---

TEST(ProtocolFuzz, GarbagePayloadsNeverCrashParsers) {
  std::mt19937_64 rng(31);
  for (int i = 0; i < 300; ++i) {
    const std::string junk = random_bytes(rng, 200);
    (void)serve::parse_hello(junk);
    (void)serve::parse_submit(junk);
    (void)serve::parse_accepted(junk);
    (void)serve::parse_rejected(junk);
    (void)serve::parse_panorama(junk);
    (void)serve::parse_complete(junk);
    (void)serve::parse_failed(junk);
    (void)serve::parse_stats_reply(junk);
  }
}

TEST(ProtocolFuzz, ImageDimensionByteCountMismatchIsRejected) {
  img::image_u8 image(6, 4, 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>(i * 7);
  }
  serve::panorama_msg msg;
  msg.job_id = 9;
  msg.index = 1;
  msg.image = image;
  const std::string framed = serve::encode_panorama(msg);

  serve::frame_decoder decoder;
  decoder.feed(framed);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());

  // Valid as-is...
  ASSERT_TRUE(serve::parse_panorama(frame->payload).has_value());
  // ...but claiming one more column than the bytes provide must fail
  // (dimension tokens live before the '\n').
  std::string bent = frame->payload;
  const std::size_t nl = bent.find('\n');
  ASSERT_NE(nl, std::string::npos);
  std::string header = bent.substr(0, nl);
  const std::size_t w_at = header.find(" 6 ");
  ASSERT_NE(w_at, std::string::npos);
  header.replace(w_at, 3, " 7 ");
  EXPECT_FALSE(
      serve::parse_panorama(header + bent.substr(nl)).has_value());
}

TEST(ProtocolFuzz, SubmitRoundTripPreservesEveryField) {
  serve::job_request request;
  request.input = video::input_id::input2;
  request.alg = app::algorithm::vs_kds;
  request.frames = 33;
  request.hardening = resil::hardening_level::cfcss;
  request.priority = serve::priority_class::interactive;
  request.deadline_ms = 12345;
  request.max_threads = 5;
  request.client_key = "fleet-42-7";
  request.fault.armed = true;
  request.fault.cls = rt::reg_class::fpr;
  request.fault.target = 987654321ULL;
  request.fault.bit = 61;
  request.fault.step_budget = 5555555ULL;

  serve::frame_decoder decoder;
  decoder.feed(serve::encode_submit(request));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  const auto back = serve::parse_submit(frame->payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->input, request.input);
  EXPECT_EQ(back->alg, request.alg);
  EXPECT_EQ(back->frames, request.frames);
  EXPECT_EQ(back->hardening, request.hardening);
  EXPECT_EQ(back->priority, request.priority);
  EXPECT_EQ(back->deadline_ms, request.deadline_ms);
  EXPECT_EQ(back->max_threads, request.max_threads);
  EXPECT_EQ(back->client_key, request.client_key);
  EXPECT_EQ(back->fault.armed, request.fault.armed);
  EXPECT_EQ(back->fault.cls, request.fault.cls);
  EXPECT_EQ(back->fault.target, request.fault.target);
  EXPECT_EQ(back->fault.bit, request.fault.bit);
  EXPECT_EQ(back->fault.step_budget, request.fault.step_budget);
}

TEST(ProtocolFuzz, LegacySevenFieldSubmitStillParses) {
  // A pre-crash-only client sends only the original 7 fields; the server
  // must accept it as a keyless, unarmed request.
  const auto back = serve::parse_submit("J 1 2 24 1 0 500 4");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->input, video::input_id::input2);
  EXPECT_EQ(back->alg, app::algorithm::vs_kds);
  EXPECT_EQ(back->frames, 24);
  EXPECT_TRUE(back->client_key.empty());
  EXPECT_FALSE(back->fault.armed);
  // Any other field count between the two shapes is garbage.
  EXPECT_FALSE(serve::parse_submit("J 1 2 24 1 0 500 4 key").has_value());
  EXPECT_FALSE(
      serve::parse_submit("J 1 2 24 1 0 500 4 key 1 0 9 3").has_value());
}

// --- serve job journal on top of the sealed line protocol ---
//
// The admission journal shares the campaign journal's physics (sealed
// payloads, one per line, flushed per line), so the adversary is the same:
// a SIGKILL tearing the tail, a disk flipping a bit, a replay duplicating
// lines.  The contract under fuzz: the replayed job set is exactly the
// clean journal's minus the corrupted records — never a crash, never a
// half-parsed admission, never a double execution.

serve::job_request journal_request(int i) {
  serve::job_request r;
  r.input = i % 2 == 0 ? video::input_id::input1 : video::input_id::input2;
  r.alg = static_cast<app::algorithm>(i % 4);
  r.frames = 6 + i;
  r.client_key = "fuzz-" + std::to_string(i);
  r.fault.armed = i % 3 == 0;
  r.fault.target = static_cast<std::uint64_t>(i) * 1013904223ULL;
  r.fault.bit = static_cast<std::uint32_t>(i % 64);
  r.fault.step_budget = 1000000ULL + static_cast<std::uint64_t>(i);
  return r;
}

/// The clean journal every corruption test perturbs: header, five
/// admissions, two settlements (ids 1 and 4), one deferred drain-tail job.
std::vector<std::string> clean_journal_payloads() {
  std::vector<std::string> lines;
  lines.push_back(serve::job_journal_header_payload("fuzz"));
  for (int i = 1; i <= 5; ++i) {
    lines.push_back(serve::accepted_payload(static_cast<std::uint64_t>(i),
                                            journal_request(i)));
  }
  lines.push_back(
      serve::settled_payload(1, true, fault::outcome::masked, 0xabcdULL));
  lines.push_back(serve::settled_payload(4, false,
                                         fault::outcome::crash_segfault, 0));
  lines.push_back(serve::deferred_payload(journal_request(99)));
  return lines;
}

void write_journal(const std::string& path,
                   const std::vector<std::string>& payloads) {
  supervise::journal_writer writer;
  writer.open(path, /*truncate=*/true);
  for (const auto& p : payloads) writer.append(p);
}

/// Serializes a replay set; equal strings mean equal job sets, field for
/// field, in replay order.
std::string replay_key(const std::vector<serve::journaled_job>& jobs) {
  std::string out;
  for (const auto& j : jobs) {
    out += std::to_string(j.id) + ":" +
           serve::request_fields_payload(j.request) + "\n";
  }
  return out;
}

std::string journal_temp(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(JournalFuzz, CleanJournalReplaysUnsettledPlusDeferred) {
  const std::string path = journal_temp("job_journal_clean.journal");
  write_journal(path, clean_journal_payloads());
  const auto state = serve::load_job_journal(path);
  EXPECT_TRUE(state.saw_header);
  EXPECT_EQ(state.skipped_lines, 0u);
  const auto replay = state.unfinished();
  // Ids 1 and 4 settled; 2, 3, 5 replay in admission order, then the
  // deferred job under a fresh id past the largest journaled one.
  ASSERT_EQ(replay.size(), 4u);
  EXPECT_EQ(replay[0].id, 2u);
  EXPECT_EQ(replay[1].id, 3u);
  EXPECT_EQ(replay[2].id, 5u);
  EXPECT_GT(replay[3].id, 5u);
  EXPECT_EQ(replay[0].request.client_key, "fuzz-2");
  EXPECT_EQ(replay[3].request.client_key, "fuzz-99");
  EXPECT_EQ(serve::request_fields_payload(replay[2].request),
            serve::request_fields_payload(journal_request(5)));
  std::remove(path.c_str());
}

TEST(JournalFuzz, TruncationReplaysExactlyTheIntactPrefix) {
  // Cutting the byte stream anywhere must replay exactly what a journal
  // holding only the fully-written lines would: the torn tail costs its
  // own line, never the records before it.
  const auto payloads = clean_journal_payloads();
  std::string stream;
  std::vector<std::size_t> line_ends;
  for (const auto& p : payloads) {
    stream += fault::wire::seal(p) + "\n";
    line_ends.push_back(stream.size());
  }
  const std::string torn_path = journal_temp("job_journal_torn.journal");
  const std::string ref_path = journal_temp("job_journal_ref.journal");
  std::mt19937_64 rng(41);
  std::uniform_int_distribution<std::size_t> cut(0, stream.size());
  for (int i = 0; i < 100; ++i) {
    const std::size_t at = cut(rng);
    std::ofstream(torn_path, std::ios::binary | std::ios::trunc)
        << stream.substr(0, at);
    // A line survives if every byte except its trailing '\n' made it:
    // getline yields an unterminated final line, and the seal still
    // validates.
    std::size_t complete = 0;
    while (complete < line_ends.size() && line_ends[complete] - 1 <= at) {
      ++complete;
    }
    write_journal(ref_path, {payloads.begin(),
                             payloads.begin() +
                                 static_cast<std::ptrdiff_t>(complete)});
    EXPECT_EQ(replay_key(serve::load_job_journal(torn_path).unfinished()),
              replay_key(serve::load_job_journal(ref_path).unfinished()));
  }
  std::remove(torn_path.c_str());
  std::remove(ref_path.c_str());
}

TEST(JournalFuzz, BitFlipCostsAtMostTheFlippedRecord) {
  // Flip one bit somewhere in one line: the loader must either reject that
  // line (replay == clean journal minus that record) or, if the flip
  // happens to leave the seal valid (hex-case flips in the checksum),
  // replay the clean set untouched.
  const auto payloads = clean_journal_payloads();
  const std::string flip_path = journal_temp("job_journal_flip.journal");
  const std::string ref_path = journal_temp("job_journal_flipref.journal");
  std::mt19937_64 rng(43);
  std::uniform_int_distribution<int> bit(0, 7);
  for (std::size_t victim = 0; victim < payloads.size(); ++victim) {
    const std::string sealed = fault::wire::seal(payloads[victim]);
    std::uniform_int_distribution<std::size_t> pick(0, sealed.size() - 1);
    for (int trial = 0; trial < 30; ++trial) {
      std::string bent = sealed;
      const std::size_t at = pick(rng);
      bent[at] = static_cast<char>(bent[at] ^ (1 << bit(rng)));
      if (bent[at] == '\n') continue;  // a flip INTO framing splits lines
      std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        out << (i == victim ? bent : fault::wire::seal(payloads[i])) << "\n";
      }
      out.close();
      const auto flipped = serve::load_job_journal(flip_path);
      if (fault::wire::unseal(bent) == payloads[victim]) {
        write_journal(ref_path, payloads);  // benign hex-case flip
      } else {
        std::vector<std::string> minus;
        for (std::size_t i = 0; i < payloads.size(); ++i) {
          if (i != victim) minus.push_back(payloads[i]);
        }
        write_journal(ref_path, minus);
        EXPECT_GE(flipped.skipped_lines, 1u);
      }
      EXPECT_EQ(replay_key(flipped.unfinished()),
                replay_key(serve::load_job_journal(ref_path).unfinished()));
    }
  }
  std::remove(flip_path.c_str());
  std::remove(ref_path.c_str());
}

TEST(JournalFuzz, DuplicatedLinesAreNoOps) {
  // A replayed write (crash between append and ack, then re-append) must
  // not double-admit or double-settle: duplicate A and D lines are no-ops.
  const auto payloads = clean_journal_payloads();
  const std::string clean_path = journal_temp("job_journal_dup_ref.journal");
  write_journal(clean_path, payloads);
  const std::string clean_key =
      replay_key(serve::load_job_journal(clean_path).unfinished());

  const std::string dup_path = journal_temp("job_journal_dup.journal");
  std::vector<std::string> doubled;
  for (const auto& p : payloads) {
    doubled.push_back(p);
    if (p.size() > 1 && (p[0] == 'A' || p[0] == 'D')) doubled.push_back(p);
  }
  write_journal(dup_path, doubled);
  const auto state = serve::load_job_journal(dup_path);
  EXPECT_EQ(replay_key(state.unfinished()), clean_key);
  EXPECT_EQ(state.accepted.size(), 5u);
  EXPECT_EQ(state.settled.size(), 2u);
  std::remove(clean_path.c_str());
  std::remove(dup_path.c_str());
}

TEST(JournalFuzz, HeaderlessJournalDropsEveryRecord) {
  // Records without an identity line are another journal's strays; replay
  // must refuse them all rather than resurrect foreign jobs.
  auto payloads = clean_journal_payloads();
  payloads.erase(payloads.begin());
  const std::string path = journal_temp("job_journal_headerless.journal");
  write_journal(path, payloads);
  const auto state = serve::load_job_journal(path);
  EXPECT_FALSE(state.saw_header);
  EXPECT_TRUE(state.unfinished().empty());
  EXPECT_EQ(state.skipped_lines, payloads.size());
  std::remove(path.c_str());
}

TEST(JournalFuzz, GarbageJournalNeverCrashesTheLoader) {
  std::mt19937_64 rng(47);
  const std::string path = journal_temp("job_journal_garbage.journal");
  for (int i = 0; i < 50; ++i) {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << random_bytes(rng, 2000);
    const auto state = serve::load_job_journal(path);
    EXPECT_TRUE(state.unfinished().empty());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vs
