// Unit tests for the per-stage batched scheduler (pipeline/scheduler.h):
// the --batch axis parser, the grouped-submit pool primitive it dispatches
// through, ticket resolution, per-item eviction, and the stats counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"
#include "image/image.h"
#include "pipeline/scheduler.h"

namespace vs {
namespace {

using pipeline::stage_scheduler;

// ---------------------------------------------------------------------------
// The --batch axis: parsing, naming, resolution.
// ---------------------------------------------------------------------------

TEST(BatchAxis, ParseAcceptsTheDocumentedSpellings) {
  EXPECT_EQ(pipeline::parse_batch(""), pipeline::kBatchAuto);
  EXPECT_EQ(pipeline::parse_batch("auto"), pipeline::kBatchAuto);
  EXPECT_EQ(pipeline::parse_batch("AUTO"), pipeline::kBatchAuto);
  EXPECT_EQ(pipeline::parse_batch("off"), pipeline::kBatchOff);
  EXPECT_EQ(pipeline::parse_batch("none"), pipeline::kBatchOff);
  EXPECT_EQ(pipeline::parse_batch("1"), 1);
  EXPECT_EQ(pipeline::parse_batch("16"), 16);
  EXPECT_EQ(pipeline::parse_batch("256"), pipeline::kBatchMax);
}

TEST(BatchAxis, ParseRejectsOutOfRangeAndJunk) {
  EXPECT_THROW((void)pipeline::parse_batch("0"), invalid_argument);
  EXPECT_THROW((void)pipeline::parse_batch("257"), invalid_argument);
  EXPECT_THROW((void)pipeline::parse_batch("-1"), invalid_argument);
  EXPECT_THROW((void)pipeline::parse_batch("2x"), invalid_argument);
  EXPECT_THROW((void)pipeline::parse_batch("bogus"), invalid_argument);
}

TEST(BatchAxis, NamesRoundTripThroughTheParser) {
  EXPECT_EQ(pipeline::batch_name(pipeline::kBatchOff), "off");
  EXPECT_EQ(pipeline::batch_name(pipeline::kBatchAuto), "auto");
  EXPECT_EQ(pipeline::batch_name(pipeline::kBatchInherit), "inherit");
  EXPECT_EQ(pipeline::batch_name(8), "8");
  for (const int batch : {pipeline::kBatchOff, pipeline::kBatchAuto, 1, 7}) {
    EXPECT_EQ(pipeline::parse_batch(pipeline::batch_name(batch)), batch);
  }
}

TEST(BatchAxis, ResolutionDefersOnlyForInherit) {
  // Explicit values pass through untouched; only kBatchInherit consults the
  // process-wide request.
  EXPECT_EQ(pipeline::resolve_batch(pipeline::kBatchOff), pipeline::kBatchOff);
  EXPECT_EQ(pipeline::resolve_batch(3), 3);
  EXPECT_EQ(pipeline::resolve_batch(pipeline::kBatchInherit),
            pipeline::requested_batch());
}

// ---------------------------------------------------------------------------
// thread_pool::run_tasks — the grouped-submit primitive batches ride on.
// ---------------------------------------------------------------------------

TEST(RunTasks, RunsEveryTaskExactlyOnce) {
  core::thread_pool pool(4);
  std::atomic<int> ran{0};
  std::vector<bool> hit(23, false);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hit.size(); ++i) {
    tasks.push_back([&ran, &hit, i] {
      hit[i] = true;  // distinct slots: no two tasks share an index
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.run_tasks(tasks);
  EXPECT_EQ(ran.load(), static_cast<int>(hit.size()));
  for (std::size_t i = 0; i < hit.size(); ++i) {
    EXPECT_TRUE(hit[i]) << "task " << i;
  }
}

TEST(RunTasks, EmptyGroupIsANoop) {
  core::thread_pool pool(2);
  pool.run_tasks({});
}

// ---------------------------------------------------------------------------
// stage_scheduler behaviour.
// ---------------------------------------------------------------------------

img::image_u8 stamped_frame(int index) {
  return img::image_u8(4, 1, 1, static_cast<std::uint8_t>(index));
}

feat::frame_features stamped_features(const img::image_u8& frame) {
  feat::frame_features f;
  feat::keypoint kp;
  kp.x = static_cast<float>(frame.at(0, 0));
  f.keypoints.push_back(kp);
  return f;
}

TEST(StageScheduler, TicketsResolveWithTheirOwnFramesWork) {
  core::thread_pool pool(2);
  stage_scheduler::options opt;
  opt.batch = 2;
  opt.pool = &pool;
  stage_scheduler scheduler(opt);
  const std::uint64_t job = scheduler.attach();
  EXPECT_EQ(scheduler.batch_limit(), 2);

  constexpr int kFrames = 9;
  std::vector<std::future<pipeline::frame_work>> tickets;
  for (int i = 0; i < kFrames; ++i) {
    tickets.push_back(scheduler.submit(
        job, i, [i] { return stamped_frame(i); },
        [](const img::image_u8& frame) { return stamped_features(frame); }));
  }
  for (int i = 0; i < kFrames; ++i) {
    auto work = tickets[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(work.frame.at(0, 0), static_cast<std::uint8_t>(i));
    ASSERT_EQ(work.features.keypoints.size(), 1u);
    EXPECT_EQ(work.features.keypoints[0].x, static_cast<float>(i));
  }

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.jobs, 1u);
  EXPECT_EQ(stats.frames, static_cast<std::uint64_t>(kFrames));
  // Every frame crosses two queues (acquire, then detect), capped at the
  // fixed batch size per dispatch.
  EXPECT_GE(stats.batches, static_cast<std::uint64_t>(kFrames));
  EXPECT_GE(stats.peak_batch, 1u);
  EXPECT_LE(stats.peak_batch, 2u);
  EXPECT_EQ(stats.evicted, 0u);
}

TEST(StageScheduler, EvictionPoisonsOnlyTheThrowingFrame) {
  core::thread_pool pool(2);
  stage_scheduler::options opt;
  opt.batch = 4;  // wide enough that the faulty frame shares a batch
  opt.pool = &pool;
  stage_scheduler scheduler(opt);
  const std::uint64_t job = scheduler.attach();

  constexpr int kFrames = 8;
  constexpr int kFaulty = 3;
  std::vector<std::future<pipeline::frame_work>> tickets;
  for (int i = 0; i < kFrames; ++i) {
    tickets.push_back(scheduler.submit(
        job, i,
        [i] {
          if (i == kFaulty) {
            throw crash_error(crash_kind::segfault, "acquire fault (test)");
          }
          return stamped_frame(i);
        },
        [](const img::image_u8& frame) { return stamped_features(frame); }));
  }
  for (int i = 0; i < kFrames; ++i) {
    auto& ticket = tickets[static_cast<std::size_t>(i)];
    if (i == kFaulty) {
      EXPECT_THROW((void)ticket.get(), crash_error) << "frame " << i;
    } else {
      EXPECT_EQ(ticket.get().frame.at(0, 0), static_cast<std::uint8_t>(i))
          << "frame " << i;
    }
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.frames, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.evicted, 1u);
}

TEST(StageScheduler, ExtractionFaultsPoisonTheTicketToo) {
  core::thread_pool pool(1);
  stage_scheduler::options opt;
  opt.batch = 2;
  opt.pool = &pool;
  stage_scheduler scheduler(opt);
  const std::uint64_t job = scheduler.attach();
  auto poisoned = scheduler.submit(
      job, 0, [] { return stamped_frame(0); },
      [](const img::image_u8&) -> feat::frame_features {
        throw detected_error(detect_kind::replica_divergence,
                             "extraction fault (test)");
      });
  auto healthy = scheduler.submit(
      job, 1, [] { return stamped_frame(1); },
      [](const img::image_u8& frame) { return stamped_features(frame); });
  EXPECT_THROW((void)poisoned.get(), detected_error);
  EXPECT_EQ(healthy.get().frame.at(0, 0), 1);
  EXPECT_EQ(scheduler.stats().evicted, 1u);
}

TEST(StageScheduler, SharedAcrossJobsKeepsTicketsSeparate) {
  // Two producers feed one scheduler — the serving shape.  Frames from
  // different jobs may share a batch, but each ticket resolves with its own
  // job's work.
  core::thread_pool pool(2);
  stage_scheduler::options opt;
  opt.batch = pipeline::kBatchAuto;
  opt.pool = &pool;
  stage_scheduler scheduler(opt);
  const std::uint64_t job_a = scheduler.attach();
  const std::uint64_t job_b = scheduler.attach();
  EXPECT_NE(job_a, job_b);

  std::vector<std::future<pipeline::frame_work>> a;
  std::vector<std::future<pipeline::frame_work>> b;
  for (int i = 0; i < 6; ++i) {
    a.push_back(scheduler.submit(
        job_a, i, [i] { return stamped_frame(i); },
        [](const img::image_u8& frame) { return stamped_features(frame); }));
    b.push_back(scheduler.submit(
        job_b, i, [i] { return stamped_frame(100 + i); },
        [](const img::image_u8& frame) { return stamped_features(frame); }));
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(a[static_cast<std::size_t>(i)].get().frame.at(0, 0),
              static_cast<std::uint8_t>(i));
    EXPECT_EQ(b[static_cast<std::size_t>(i)].get().frame.at(0, 0),
              static_cast<std::uint8_t>(100 + i));
  }
  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.frames, 12u);
}

TEST(StageScheduler, DestructorDrainsUnconsumedTickets) {
  // Tickets the consumer abandoned (the RFD skip path, or an executor torn
  // down mid-run) must still be fulfilled before the dispatcher exits — a
  // promise destroyed unfulfilled would turn future::get into
  // broken_promise at some later consumer.
  core::thread_pool pool(1);
  std::future<pipeline::frame_work> abandoned;
  {
    stage_scheduler::options opt;
    opt.batch = 1;
    opt.pool = &pool;
    stage_scheduler scheduler(opt);
    const std::uint64_t job = scheduler.attach();
    abandoned = scheduler.submit(
        job, 0, [] { return stamped_frame(7); },
        [](const img::image_u8& frame) { return stamped_features(frame); });
    // Scheduler destroyed here with the ticket possibly still queued.
  }
  EXPECT_EQ(abandoned.get().frame.at(0, 0), 7);
}

}  // namespace
}  // namespace vs
