// Tests for the fault containment & recovery subsystem (src/resil/):
// CFCSS stage signatures, HAFT-style replication, the per-stage watchdog,
// the recovery boundary (and its rt unwind-state regression guarantees),
// and the hardened end-to-end pipeline behaviour.
#include <gtest/gtest.h>

#include <stdexcept>

#include "app/pipeline.h"
#include "core/error.h"
#include "fault/campaign.h"
#include "fault/detectors.h"
#include "resil/recovery.h"
#include "resil/runtime.h"
#include "rt/instrument.h"
#include "video/generator.h"

namespace vs {
namespace {

/// Saves/restores the thread's resil state so tests can poke it directly.
struct resil_state_guard {
  resil::runtime_state saved = resil::tls;
  ~resil_state_guard() { resil::tls = saved; }
};

const auto int_eq = [](int a, int b) { return a == b; };

// ---------------------------------------------------------------------------
// CFCSS signatures
// ---------------------------------------------------------------------------

TEST(Cfcss, LegalFramePathsPass) {
  using resil::cfcss::node;
  resil::cfcss::monitor m;

  // Full aligned frame, including the homography -> affine cascade
  // (estimate -> estimate is a legal self-edge).
  m.begin_frame();
  for (const node n : {node::acquire, node::detect, node::describe,
                       node::match, node::estimate, node::estimate,
                       node::composite, node::frame_end}) {
    m.transition(n);
  }
  EXPECT_EQ(m.violations(), 0u);
  EXPECT_EQ(m.current(), node::frame_end);

  // Anchor frame: no matching, straight to compositing.
  m.begin_frame();
  for (const node n : {node::acquire, node::detect, node::describe,
                       node::composite, node::frame_end}) {
    m.transition(n);
  }
  EXPECT_EQ(m.violations(), 0u);

  // Discarded frame: matching fails, frame ends without compositing.
  m.begin_frame();
  for (const node n : {node::acquire, node::detect, node::describe,
                       node::match, node::frame_end}) {
    m.transition(n);
  }
  EXPECT_EQ(m.violations(), 0u);
}

TEST(Cfcss, IllegalTransitionThrowsAndCounts) {
  using resil::cfcss::node;
  resil::cfcss::monitor m;
  m.begin_frame();
  m.transition(node::acquire);
  try {
    m.transition(node::composite);  // acquire is not a predecessor
    FAIL() << "illegal transition not flagged";
  } catch (const detected_error& e) {
    EXPECT_EQ(e.kind(), detect_kind::control_flow);
  }
  EXPECT_EQ(m.violations(), 1u);

  // begin_frame re-seeds the signature: the next frame checks cleanly.
  m.begin_frame();
  m.transition(node::acquire);
  m.transition(node::detect);
  EXPECT_EQ(m.violations(), 1u);
}

TEST(Cfcss, SkippingAStageIsDetected) {
  using resil::cfcss::node;
  resil::cfcss::monitor m;
  m.begin_frame();
  EXPECT_THROW(m.transition(node::detect), detected_error);  // skipped acquire
}

TEST(Cfcss, InterproceduralFrameChainSpansFrameBoundaries) {
  using resil::cfcss::node;
  resil::cfcss::monitor m;

  // First frame of the run: no predecessor yet, enter_frame re-seeds.
  m.enter_frame();
  for (const node n : {node::acquire, node::detect, node::describe,
                       node::match, node::estimate, node::composite,
                       node::frame_end}) {
    m.transition(n);
  }
  // Second frame: entry is now a *checked* frame_end -> frame_begin edge.
  m.enter_frame();
  EXPECT_EQ(m.violations(), 0u);
  EXPECT_EQ(m.current(), node::frame_begin);

  // Consuming the prefetch ring signs frame_begin -> prefetch -> acquire.
  m.transition(node::prefetch);
  m.transition(node::acquire);
  EXPECT_EQ(m.violations(), 0u);

  // But the ring cannot be consumed mid-frame: prefetch's only legal
  // predecessor is frame_begin.
  EXPECT_THROW(m.transition(node::prefetch), detected_error);
  EXPECT_EQ(m.violations(), 1u);
}

TEST(Cfcss, RecoveryReanchorsTheSignatureChain) {
  using resil::cfcss::node;
  resil::cfcss::monitor m;
  m.enter_frame();
  m.transition(node::acquire);
  // A contained failure mid-frame presumes G corrupt: enter_recovery
  // re-seeds at the recover node instead of checking a transition.
  m.enter_recovery();
  EXPECT_EQ(m.current(), node::recover);
  // The retry's frame entry is then the checked recover -> frame_begin
  // edge, and the re-attempted frame walks cleanly.
  m.enter_frame();
  for (const node n : {node::acquire, node::detect, node::describe,
                       node::match, node::frame_end}) {
    m.transition(n);
  }
  EXPECT_EQ(m.violations(), 0u);
}

// ---------------------------------------------------------------------------
// HAFT-style replication
// ---------------------------------------------------------------------------

TEST(Replication, RunsOnceWithoutASession) {
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};  // replication mask empty
  int calls = 0;
  EXPECT_EQ(resil::replicated(pipeline::stage_id::estimate,
                              [&] { ++calls; return 7; }, int_eq),
            7);
  EXPECT_EQ(calls, 1);
}

TEST(Replication, MaskSelectsStages) {
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};
  resil::tls.replicate_mask = pipeline::stage_bit(pipeline::stage_id::match);
  EXPECT_TRUE(resil::stage_replicated(pipeline::stage_id::match));
  EXPECT_FALSE(resil::stage_replicated(pipeline::stage_id::estimate));
  int calls = 0;
  // A stage outside the mask runs once, unchecked.
  EXPECT_EQ(resil::replicated(pipeline::stage_id::estimate,
                              [&] { ++calls; return 7; }, int_eq),
            7);
  EXPECT_EQ(calls, 1);
}

TEST(Replication, AgreementReturnsFirstResult) {
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};
  resil::tls.replicate_mask = pipeline::replicable_stage_mask();
  int calls = 0;
  EXPECT_EQ(resil::replicated(pipeline::stage_id::estimate,
                              [&] { ++calls; return 7; }, int_eq),
            7);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(resil::tls.report.replica_divergences, 0u);
}

TEST(Replication, DivergenceThrowsDetectedError) {
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};
  resil::tls.replicate_mask = pipeline::replicable_stage_mask();
  int calls = 0;
  try {
    (void)resil::replicated(pipeline::stage_id::estimate,
                            [&] { return calls++; }, int_eq);
    FAIL() << "divergence not flagged";
  } catch (const detected_error& e) {
    EXPECT_EQ(e.kind(), detect_kind::replica_divergence);
  }
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(resil::tls.report.replica_divergences, 1u);
  EXPECT_FALSE(resil::tls.in_replica);  // reset even on the throwing path
}

TEST(Replication, NestedCallsDoNotMultiplyCost) {
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};
  resil::tls.replicate_mask = pipeline::replicable_stage_mask();
  int inner_calls = 0;
  const int v = resil::replicated(
      pipeline::stage_id::estimate,
      [&] {
        return resil::replicated(pipeline::stage_id::estimate,
                                 [&] { ++inner_calls; return 2; }, int_eq);
      },
      int_eq);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(inner_calls, 2);  // once per outer replica, not 4x
}

// ---------------------------------------------------------------------------
// Per-stage watchdog
// ---------------------------------------------------------------------------

TEST(StageScope, BudgetTripIsADetectedStageHang) {
  rt::session session;
  rt::stage_scope meter(16);
  try {
    for (int i = 0; i < 64; ++i) (void)rt::g64(i);
    FAIL() << "stage budget did not trip";
  } catch (const detected_error& e) {
    EXPECT_EQ(e.kind(), detect_kind::stage_hang);
  }
  // The trip disarms the stage meter so unwinding/recovery code cannot
  // re-raise from its own hooks.
  EXPECT_EQ(rt::tls.stage_budget, ~0ULL);
}

TEST(StageScope, ZeroBudgetMeansUnlimited) {
  rt::session session;
  rt::stage_scope meter(0);
  for (int i = 0; i < 1000; ++i) (void)rt::g64(i);
  SUCCEED();
}

TEST(StageScope, NestingRestoresEnclosingMeter) {
  rt::session session;
  rt::stage_scope outer(1'000'000);
  for (int i = 0; i < 10; ++i) (void)rt::g64(i);
  const std::uint64_t outer_steps = rt::tls.stage_steps;
  {
    rt::stage_scope inner(500);
    for (int i = 0; i < 20; ++i) (void)rt::g64(i);
  }
  // The enclosing stage also paid for the nested stage's steps.
  EXPECT_EQ(rt::tls.stage_steps, outer_steps + 20);
  EXPECT_EQ(rt::tls.stage_budget, 1'000'000u);
}

TEST(StageScope, GlobalWatchdogStillRaisesHangError) {
  rt::fault_plan plan;
  plan.target = ~0ULL;  // never fires
  rt::session session(plan, /*step_budget=*/16);
  rt::stage_scope meter(1'000'000);  // stage budget is not the limiter here
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) (void)rt::g64(i);
      },
      hang_error);
}

// ---------------------------------------------------------------------------
// Recovery boundary (resil::attempt) — incl. the rt unwind regression tests
// ---------------------------------------------------------------------------

TEST(Attempt, ContainsCrashAndRestoresUnwindState) {
  rt::session session;
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};
  const auto failure = resil::attempt([&] {
    // Simulate a kernel that corrupted thread state and then died without
    // running its RAII cleanup path.
    rt::tls.cur = rt::fn::warp;
    rt::tls.stage_steps = 123456;
    rt::tls.stage_budget = 7;
    throw crash_error(crash_kind::segfault, "injected wild pointer");
  });
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, resil::failure_kind::crash_segfault);
  // S1 regression: the boundary re-asserts the pre-attempt scope and stage
  // meter, so the retry does not inherit mid-kernel attribution state.
  EXPECT_EQ(rt::tls.cur, rt::fn::other);
  EXPECT_EQ(rt::tls.stage_steps, 0u);
  EXPECT_EQ(rt::tls.stage_budget, ~0ULL);
  EXPECT_EQ(resil::tls.report.crashes_contained, 1u);
}

TEST(Attempt, RetryAfterFiredInjectionDoesNotReplayTheFault) {
  rt::fault_plan plan;
  plan.cls = rt::reg_class::gpr;
  plan.target = 3;  // fires on the fourth GPR hook
  plan.bit = 40;
  rt::session session(plan);
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};

  const auto failure = resil::attempt([&] {
    for (int i = 0; i < 8; ++i) (void)rt::g64(i);
    if (!rt::tls.fired) return;  // plan must have fired by now
    throw crash_error(crash_kind::abort, "corrupted state tripped an assert");
  });
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, resil::failure_kind::crash_abort);
  // Injection bookkeeping survives the boundary: the fault is spent, not
  // re-armed (a transient strikes once).
  EXPECT_TRUE(rt::tls.fired);
  EXPECT_FALSE(rt::tls.armed);
  // The retry therefore sees clean values end to end.
  std::int64_t sum = 0;
  for (int i = 0; i < 8; ++i) sum += rt::g64(1);
  EXPECT_EQ(sum, 8);
}

TEST(Attempt, GlobalHangPassesThrough) {
  rt::fault_plan plan;
  plan.target = ~0ULL;
  rt::session session(plan, /*step_budget=*/16);
  EXPECT_THROW((void)resil::attempt([&] {
                 for (int i = 0; i < 64; ++i) (void)rt::g64(i);
               }),
               hang_error);
}

TEST(Attempt, LibraryBugsAreNotSwallowed) {
  rt::session session;  // no plan armed: fired stays false
  EXPECT_THROW((void)resil::attempt([] { throw std::logic_error("bug"); }),
               std::logic_error);
  EXPECT_THROW(
      (void)resil::attempt([] { throw invalid_argument("precondition"); }),
      invalid_argument);
}

TEST(Attempt, SuccessReturnsNullopt) {
  EXPECT_FALSE(resil::attempt([] {}).has_value());
}

// ---------------------------------------------------------------------------
// Hardening configuration plumbing
// ---------------------------------------------------------------------------

TEST(Hardening, LevelNamesRoundTrip) {
  using resil::hardening_level;
  for (const auto level :
       {hardening_level::off, hardening_level::detectors,
        hardening_level::cfcss, hardening_level::full}) {
    EXPECT_EQ(resil::parse_hardening_level(resil::hardening_level_name(level)),
              level);
  }
  EXPECT_THROW((void)resil::parse_hardening_level("bogus"), invalid_argument);
}

TEST(Hardening, DeriveStageBudgetsScalesGoldenProfile) {
  const auto source = video::make_input(video::input_id::input1, 6);
  rt::counters golden;
  {
    rt::session session;
    (void)app::summarize(*source, app::pipeline_config{});
    golden = session.stats();
  }
  const auto budgets = resil::derive_stage_budgets(golden, 6);
  EXPECT_GE(budgets.extract, 1024u);
  EXPECT_GE(budgets.align, 1024u);
  EXPECT_GE(budgets.composite, 1024u);
  // A generous multiple of the mean per-frame cost, not the whole run.
  EXPECT_LT(budgets.extract, (golden.fn_total(rt::fn::fast_detect) +
                              golden.fn_total(rt::fn::orb_describe)) *
                                 100);

  const auto none = resil::derive_stage_budgets(golden, 0);
  EXPECT_EQ(none.extract, 0u);  // 0 frames -> unlimited budgets
}

TEST(Hardening, SessionPublishesAndRestores) {
  resil_state_guard guard;
  resil::tls = resil::runtime_state{};
  resil::clear_last_run_report();
  resil::hardening_config config;
  config.level = resil::hardening_level::full;
  {
    resil::session session(config);
    EXPECT_TRUE(resil::tls.active);
    EXPECT_EQ(resil::tls.replicate_mask, pipeline::geometry_stage_mask());
    ASSERT_NE(resil::tls.monitor, nullptr);
    ++resil::tls.report.retries;
  }
  EXPECT_FALSE(resil::tls.active);
  EXPECT_EQ(resil::tls.monitor, nullptr);
  EXPECT_EQ(resil::last_run_report().retries, 1u);
  resil::clear_last_run_report();
  EXPECT_EQ(resil::last_run_report().retries, 0u);
}

// ---------------------------------------------------------------------------
// Hardened pipeline, end to end
// ---------------------------------------------------------------------------

app::pipeline_config hardened_config(const video::video_source& source,
                                     resil::hardening_level level) {
  app::pipeline_config config;
  config.hardening.level = level;
  rt::session profile;
  const auto golden = app::summarize(source, app::pipeline_config{}).panorama;
  config.hardening.stage_budgets =
      resil::derive_stage_budgets(profile.stats(), source.frame_count());
  config.hardening.calibration = fault::calibrate_detectors({golden});
  return config;
}

TEST(HardenedPipeline, FaultFreeRunMatchesUnhardenedOutput) {
  const auto source = video::make_input(video::input_id::input1, 8);
  const auto config = hardened_config(*source, resil::hardening_level::full);

  const auto unhardened = app::summarize(*source, app::pipeline_config{});
  const auto hardened = app::summarize(*source, config);
  EXPECT_EQ(hardened.panorama, unhardened.panorama);
  EXPECT_EQ(hardened.stats.frames_stitched, unhardened.stats.frames_stitched);

  // Fault-free: nothing to detect, nothing to recover.
  EXPECT_EQ(hardened.recovery.faults_detected(), 0u);
  EXPECT_EQ(hardened.recovery.retries, 0u);
  EXPECT_EQ(hardened.recovery.frames_degraded, 0u);
  EXPECT_TRUE(hardened.recovery.output_checked);
  EXPECT_EQ(hardened.recovery.output_verdict,
            fault::detection_verdict::clean);
}

TEST(HardenedPipeline, CampaignContainsCrashesAndRecovers) {
  const auto source = video::make_input(video::input_id::input1, 8);
  const auto config = hardened_config(*source, resil::hardening_level::full);

  fault::campaign_config campaign;
  campaign.cls = rt::reg_class::gpr;
  campaign.injections = 60;
  campaign.threads = 1;
  const auto result = fault::run_campaign(
      [&] { return app::summarize(*source, config).panorama; }, campaign);

  const auto& r = result.rates;
  EXPECT_EQ(r.experiments, 60u);
  // Every simulated crash is contained by the frame-level boundary.
  EXPECT_EQ(r.crash_segfault + r.crash_abort, 0u);
  // A healthy share of would-be crashes shows up as detected outcomes.
  EXPECT_GT(r.detected_recovered + r.detected_degraded, 0u);
  // Recovered means recovered: those runs reproduced the golden output, so
  // their records carry detection and retry evidence instead.
  for (const auto& record : result.records) {
    if (record.result == fault::outcome::detected_recovered ||
        record.result == fault::outcome::detected_degraded) {
      EXPECT_GT(record.detections, 0u);
    }
    if (record.result == fault::outcome::masked && record.fired) {
      EXPECT_EQ(record.detections, 0u);
    }
  }
}

TEST(HardenedPipeline, UnhardenedCampaignReportsNoDetections) {
  const auto source = video::make_input(video::input_id::input1, 6);
  fault::campaign_config campaign;
  campaign.cls = rt::reg_class::gpr;
  campaign.injections = 20;
  campaign.threads = 1;
  const auto result = fault::run_campaign(
      [&] {
        return app::summarize(*source, app::pipeline_config{}).panorama;
      },
      campaign);
  EXPECT_EQ(result.rates.detected_recovered, 0u);
  EXPECT_EQ(result.rates.detected_degraded, 0u);
  for (const auto& record : result.records) {
    EXPECT_EQ(record.detections, 0u);
    EXPECT_EQ(record.retries, 0u);
  }
}

/// A source whose frame 0 fails on every acquisition attempt — the worst
/// case for the recovery ladder, because with no stitched reference there
/// is no motion model to dead-reckon with.
class dead_frame_zero_source final : public video::video_source {
 public:
  explicit dead_frame_zero_source(const video::video_source& inner)
      : inner_(inner) {}
  [[nodiscard]] int frame_count() const override {
    return inner_.frame_count();
  }
  [[nodiscard]] int frame_width() const override {
    return inner_.frame_width();
  }
  [[nodiscard]] int frame_height() const override {
    return inner_.frame_height();
  }
  [[nodiscard]] img::image_u8 frame(int index) const override {
    if (index == 0) {
      throw crash_error(crash_kind::segfault, "dead frame 0 (test)");
    }
    return inner_.frame(index);
  }

 private:
  const video::video_source& inner_;
};

TEST(HardenedPipeline, FrameZeroRetryExhaustionSkipsWithoutDeadReckoning) {
  const auto inner = video::make_input(video::input_id::input1, 6);
  const auto config = hardened_config(*inner, resil::hardening_level::full);
  const dead_frame_zero_source source(*inner);

  const auto result = app::summarize(source, config);
  const auto& recovery = result.recovery;
  // Initial attempt + max_frame_retries re-attempts all contained.
  EXPECT_EQ(recovery.crashes_contained,
            1u + static_cast<std::uint32_t>(
                     config.hardening.max_frame_retries));
  EXPECT_EQ(recovery.retries,
            static_cast<std::uint32_t>(config.hardening.max_frame_retries));
  EXPECT_EQ(recovery.frames_recovered, 0u);
  // The ladder falls past retry straight to skip: no reference frame
  // exists yet, so the dead-reckoning step cannot run.
  EXPECT_EQ(recovery.frames_degraded, 1u);
  EXPECT_EQ(recovery.frames_skipped, 1u);
  EXPECT_EQ(result.stats.frames_discarded, 1);
  // Frame 1 anchors instead and the rest of the clip stitches normally.
  EXPECT_EQ(result.stats.frames_stitched, inner->frame_count() - 1);
  EXPECT_FALSE(result.panorama.empty());
}

}  // namespace
}  // namespace vs
