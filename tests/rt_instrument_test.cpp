#include <gtest/gtest.h>

#include <cmath>

#include "rt/instrument.h"

namespace vs::rt {
namespace {

TEST(Instrument, DisabledHooksPassValuesThrough) {
  ASSERT_FALSE(tls.enabled);
  EXPECT_EQ(g64(42), 42);
  EXPECT_EQ(g32(-7), -7);
  EXPECT_EQ(ctrl(1000), 1000);
  EXPECT_DOUBLE_EQ(f64(3.25), 3.25);
  EXPECT_EQ(idx(5, 10), 5u);
}

TEST(Instrument, SessionEnablesAndRestores) {
  {
    session s;
    EXPECT_TRUE(tls.enabled);
  }
  EXPECT_FALSE(tls.enabled);
}

TEST(Instrument, CountsOpsByKind) {
  session s;
  (void)g64(1);
  (void)g64(2);
  (void)f64(1.0);
  (void)idx(0, 4);
  (void)ctrl(9);
  const counters& c = s.stats();
  EXPECT_EQ(c.total(op::int_alu), 2u);
  EXPECT_EQ(c.total(op::fp_alu), 1u);
  EXPECT_EQ(c.total(op::mem), 1u);
  EXPECT_EQ(c.total(op::branch), 1u);
  EXPECT_EQ(c.steps(), 5u);
  EXPECT_EQ(c.gpr_ops(), 4u);
  EXPECT_EQ(c.fpr_ops(), 1u);
}

TEST(Instrument, HookCountsTrackFaultSites) {
  session s;
  (void)g64(1);
  (void)f64(1.0);
  (void)idx(0, 4);
  account(op::int_alu, 1000);  // bulk: no fault sites
  EXPECT_EQ(s.stats().hooks(reg_class::gpr), 2u);
  EXPECT_EQ(s.stats().hooks(reg_class::fpr), 1u);
  EXPECT_EQ(s.stats().total(op::int_alu), 1001u);
}

TEST(Instrument, ScopeAttribution) {
  session s;
  {
    scope warp_scope(fn::warp);
    (void)g64(1);
    {
      scope remap_scope(fn::remap);
      (void)g64(1);
    }
    (void)g64(1);
  }
  (void)g64(1);
  EXPECT_EQ(s.stats().gpr_ops(fn::warp), 2u);
  EXPECT_EQ(s.stats().gpr_ops(fn::remap), 1u);
  EXPECT_EQ(s.stats().gpr_ops(fn::other), 1u);
}

TEST(Instrument, InjectionFlipsPlannedBit) {
  fault_plan plan;
  plan.cls = reg_class::gpr;
  plan.target = 2;  // the third GPR op
  plan.bit = 4;
  session s(plan);
  EXPECT_EQ(g64(0), 0);
  EXPECT_EQ(g64(0), 0);
  EXPECT_EQ(g64(0), 16);  // bit 4 flipped
  EXPECT_EQ(g64(0), 0);   // exactly once
  EXPECT_TRUE(s.fired());
}

TEST(Instrument, InjectionSkipsOtherClass) {
  fault_plan plan;
  plan.cls = reg_class::fpr;
  plan.target = 0;
  plan.bit = 63;  // sign bit of the double
  session s(plan);
  EXPECT_EQ(g64(7), 7);  // GPR hook unaffected by FPR plan
  EXPECT_DOUBLE_EQ(f64(1.0), -1.0);
  EXPECT_TRUE(s.fired());
}

TEST(Instrument, G32FlipAboveBit31IsMaskedByTruncation) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 40;  // above the int's 32 bits
  session s(plan);
  EXPECT_EQ(g32(123), 123);
  EXPECT_TRUE(s.fired());  // flip applied to the register image, then dead
}

TEST(Instrument, ScopedInjectionOnlyFiresInScope) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 0;
  plan.scoped = true;
  plan.scope = fn::warp;
  plan.scope_b = fn::warp;
  session s(plan);
  EXPECT_EQ(g64(0), 0);  // out of scope: no fire, no match count
  {
    scope in(fn::warp);
    EXPECT_EQ(g64(0), 1);  // first in-scope op fires
  }
  EXPECT_TRUE(s.fired());
}

TEST(Instrument, ScopedInjectionSecondScopeAccepted) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 1;
  plan.scoped = true;
  plan.scope = fn::warp;
  plan.scope_b = fn::remap;
  session s(plan);
  {
    scope in(fn::remap);
    EXPECT_EQ(g64(0), 2);
  }
  EXPECT_TRUE(s.fired());
}

TEST(Instrument, IdxInBounds) {
  session s;
  EXPECT_EQ(idx(0, 8), 0u);
  EXPECT_EQ(idx(7, 8), 7u);
}

TEST(Instrument, IdxOutOfBoundsWithoutInjectionIsLogicError) {
  session s;
  EXPECT_THROW((void)idx(8, 8), std::logic_error);
  EXPECT_THROW((void)idx(-1, 8), std::logic_error);
}

TEST(Instrument, IdxNearMissWrapsAfterInjectionFired) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 3;  // 5 ^ 8 = 13, out of bounds but within slack
  session s(plan);
  const std::size_t at = idx(5, 8);
  EXPECT_TRUE(s.fired());
  EXPECT_LT(at, 8u);  // wrapped to a mapped (wrong) location
  EXPECT_EQ(at, 13u % 8u);
}

TEST(Instrument, IdxFarMissSegfaults) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 30;  // way beyond slack
  session s(plan);
  try {
    (void)idx(5, 8);
    FAIL() << "expected crash_error";
  } catch (const crash_error& e) {
    EXPECT_EQ(e.kind(), crash_kind::segfault);
  }
}

TEST(Instrument, IdxNegativeFarMissAborts) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 63;  // sign flip -> large negative
  session s(plan);
  try {
    (void)idx(5, 8);
    FAIL() << "expected crash_error";
  } catch (const crash_error& e) {
    EXPECT_EQ(e.kind(), crash_kind::abort);
  }
}

TEST(Instrument, AllocSizeWithinCapOk) {
  session s;
  EXPECT_EQ(alloc_size(100, 1000), 100u);
}

TEST(Instrument, AllocSizeBeyondCapWithoutInjectionIsLogicError) {
  session s;
  EXPECT_THROW((void)alloc_size(2000, 1000), std::logic_error);
}

TEST(Instrument, AllocSizeBeyondCapAfterInjectionAborts) {
  fault_plan plan;
  plan.target = 0;
  plan.bit = 62;
  session s(plan);
  (void)g64(1);  // fire the injection on an unrelated value
  ASSERT_TRUE(s.fired());
  try {
    (void)alloc_size(1 << 20, 1000);
    FAIL() << "expected crash_error";
  } catch (const crash_error& e) {
    EXPECT_EQ(e.kind(), crash_kind::abort);
  }
}

TEST(Instrument, WatchdogRaisesHang) {
  fault_plan plan;
  plan.target = ~0ULL;  // never fires
  session s(plan, /*step_budget=*/100);
  EXPECT_THROW(
      {
        for (int i = 0; i < 200; ++i) (void)g64(i);
      },
      hang_error);
}

TEST(Instrument, FprFlipOnDoubleMantissaIsSmall) {
  fault_plan plan;
  plan.cls = reg_class::fpr;
  plan.target = 0;
  plan.bit = 0;  // lowest mantissa bit
  session s(plan);
  const double v = f64(1.0);
  EXPECT_NE(v, 1.0);
  EXPECT_NEAR(v, 1.0, 1e-15);
}

TEST(Instrument, FprFlipOnExponentIsLarge) {
  fault_plan plan;
  plan.cls = reg_class::fpr;
  plan.target = 0;
  plan.bit = 62;  // top exponent bit
  session s(plan);
  const double v = f64(1.0);
  EXPECT_TRUE(std::abs(v) > 1e100 || std::abs(v) < 1e-100);
}

TEST(Instrument, FnNamesAreDistinct) {
  for (int a = 0; a < fn_count; ++a) {
    for (int b = a + 1; b < fn_count; ++b) {
      EXPECT_STRNE(fn_name(static_cast<fn>(a)), fn_name(static_cast<fn>(b)));
    }
  }
}

TEST(Instrument, NestedSessionRestoresOuterCounters) {
  session outer;
  (void)g64(1);
  {
    session inner;
    (void)g64(1);
    (void)g64(1);
    EXPECT_EQ(inner.stats().gpr_ops(), 2u);
  }
  EXPECT_EQ(tls.c.gpr_ops(), 1u);  // outer state restored
}

TEST(Instrument, AccountRespectsWatchdog) {
  fault_plan plan;
  plan.target = ~0ULL;
  session s(plan, /*step_budget=*/500);
  EXPECT_THROW(account(op::mem, 1000), hang_error);
}

}  // namespace
}  // namespace vs::rt
