#include <gtest/gtest.h>

#include "core/error.h"
#include "image/draw.h"
#include "track/motion.h"
#include "track/tracker.h"

namespace vs::track {
namespace {

img::image_u8 textured_frame(int w = 64, int h = 48) {
  img::image_u8 im(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      im.at(x, y) = static_cast<std::uint8_t>((x * 7 + y * 13) % 120 + 60);
    }
  }
  return im;
}

TEST(Motion, NoChangeNoDetections) {
  const auto frame = textured_frame();
  const auto detections =
      detect_motion(frame, frame, geo::mat3::identity());
  EXPECT_TRUE(detections.empty());
}

TEST(Motion, DetectsMovedBlob) {
  auto previous = textured_frame();
  auto current = textured_frame();
  img::fill_rect(previous, 20, 20, 4, 4, img::color{255, 255, 255});
  img::fill_rect(current, 30, 24, 4, 4, img::color{255, 255, 255});
  const auto detections =
      detect_motion(current, previous, geo::mat3::identity());
  ASSERT_GE(detections.size(), 1u);
  // One detection must sit near the object's new position.
  bool found = false;
  for (const auto& d : detections) {
    if (std::abs(d.centroid.x - 31.5) < 3 && std::abs(d.centroid.y - 25.5) < 3) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Motion, CameraMotionIsCompensated) {
  // The whole scene shifts by (5, 0); with the correct inter-frame model
  // the differencing sees nothing.
  const auto previous = textured_frame();
  img::image_u8 current(previous.width(), previous.height(), 1);
  for (int y = 0; y < current.height(); ++y) {
    for (int x = 0; x < current.width(); ++x) {
      current.at(x, y) = previous.sample_clamped(x + 5, y);
    }
  }
  // prev -> cur maps prev pixel p to p - 5.
  const auto detections =
      detect_motion(current, previous, geo::mat3::translation(-5.0, 0.0));
  EXPECT_TRUE(detections.empty());
}

TEST(Motion, MinAreaFiltersSinglePixels) {
  auto previous = textured_frame();
  auto current = previous;
  current.at(30, 30) = 255;  // single-pixel change
  motion_params params;
  params.min_area = 3;
  params.majority_filter = false;
  const auto detections =
      detect_motion(current, previous, geo::mat3::identity(), params);
  EXPECT_TRUE(detections.empty());
}

TEST(Motion, MaxAreaFiltersGlobalChange) {
  const auto previous = textured_frame();
  img::image_u8 current(previous.width(), previous.height(), 1, 255);
  motion_params params;
  params.majority_filter = false;
  const auto detections =
      detect_motion(current, previous, geo::mat3::identity(), params);
  EXPECT_TRUE(detections.empty());  // one huge component, over max_area
}

TEST(Motion, Majority3DenoisesAndKeepsBlobs) {
  img::image_u8 mask(16, 16, 1);
  mask.at(3, 3) = 255;  // isolated pixel: removed
  img::fill_rect(mask, 8, 8, 4, 4, img::color{255, 255, 255});  // kept
  const auto cleaned = majority3(mask);
  EXPECT_EQ(cleaned.at(3, 3), 0);
  EXPECT_EQ(cleaned.at(9, 9), 255);
}

TEST(Motion, ComponentStatistics) {
  img::image_u8 mask(16, 16, 1);
  img::fill_rect(mask, 4, 6, 3, 2, img::color{255, 255, 255});
  motion_params params;
  params.min_area = 1;
  const auto detections = find_components(mask, mask, params);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].area, 6);
  EXPECT_NEAR(detections[0].centroid.x, 5.0, 1e-9);
  EXPECT_NEAR(detections[0].centroid.y, 6.5, 1e-9);
  EXPECT_EQ(detections[0].bbox, (geo::rect{4, 6, 3, 2}));
}

TEST(Motion, TwoComponentsSeparated) {
  img::image_u8 mask(24, 8, 1);
  img::fill_rect(mask, 2, 2, 3, 3, img::color{255, 255, 255});
  img::fill_rect(mask, 15, 2, 3, 3, img::color{255, 255, 255});
  motion_params params;
  params.min_area = 1;
  EXPECT_EQ(find_components(mask, mask, params).size(), 2u);
}

TEST(Tracker, ConfirmsAfterEnoughHits) {
  tracker t;
  for (int frame = 0; frame < 3; ++frame) {
    t.observe(frame, {{10.0 + frame, 5.0}});
  }
  ASSERT_EQ(t.tracks().size(), 1u);
  EXPECT_EQ(t.tracks()[0].state, track_state::confirmed);
  EXPECT_EQ(t.tracks()[0].hits, 3);
  EXPECT_EQ(t.confirmed_count(), 1u);
}

TEST(Tracker, FollowsMovingObject) {
  tracker t;
  for (int frame = 0; frame < 8; ++frame) {
    t.observe(frame, {{5.0 + 3.0 * frame, 10.0}});
  }
  ASSERT_EQ(t.tracks().size(), 1u);  // one continuous track, no fragmentation
  EXPECT_EQ(t.tracks()[0].path.size(), 8u);
  EXPECT_NEAR(t.tracks()[0].velocity.x, 3.0, 0.5);
}

TEST(Tracker, GateSpawnsNewTrackForFarDetection) {
  tracker_params params;
  params.gate_radius = 5.0;
  tracker t(params);
  t.observe(0, {{10.0, 10.0}});
  t.observe(1, {{40.0, 40.0}});  // far outside the gate
  EXPECT_EQ(t.tracks().size(), 2u);
}

TEST(Tracker, LosesTrackAfterMisses) {
  tracker_params params;
  params.max_misses = 2;
  tracker t(params);
  for (int frame = 0; frame < 3; ++frame) t.observe(frame, {{10.0, 10.0}});
  for (int frame = 3; frame < 7; ++frame) t.observe(frame, {});
  ASSERT_EQ(t.tracks().size(), 1u);
  EXPECT_EQ(t.tracks()[0].state, track_state::lost);
}

TEST(Tracker, TracksTwoObjectsIndependently) {
  tracker t;
  for (int frame = 0; frame < 5; ++frame) {
    t.observe(frame, {{10.0 + frame, 10.0}, {50.0 - frame, 30.0}});
  }
  ASSERT_EQ(t.tracks().size(), 2u);
  EXPECT_EQ(t.confirmed_count(), 2u);
  EXPECT_GT(t.tracks()[0].velocity.x * t.tracks()[1].velocity.x, -2.0);
}

TEST(Tracker, UniqueIds) {
  tracker t;
  t.observe(0, {{0.0, 0.0}, {50.0, 0.0}, {0.0, 50.0}});
  ASSERT_EQ(t.tracks().size(), 3u);
  EXPECT_NE(t.tracks()[0].id, t.tracks()[1].id);
  EXPECT_NE(t.tracks()[1].id, t.tracks()[2].id);
}

}  // namespace
}  // namespace vs::track
