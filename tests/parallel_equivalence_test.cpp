// Two-lane equivalence: the parallel clean lane must produce byte-identical
// results to the sequential instrumented lane, at every pool width and at
// every SIMD level the host supports.
//
// The reference is each kernel run inside an rt::session with no fault armed
// (hooks enabled but value-preserving — the exact stream a fault campaign
// replays).  The candidate is the same kernel with instrumentation off,
// which dispatches to the thread-pool clean lane; each candidate repeats
// across the width x SIMD-level matrix.  Any divergence here would mean the
// production path and the studied path are different programs, so everything
// is compared exactly: pixels, keypoints, descriptors, matches.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "app/pipeline.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "fault/detectors.h"
#include "resil/hardening.h"
#include "features/fast.h"
#include "features/orb.h"
#include "features/pyramid.h"
#include "gate/gate.h"
#include "geometry/warp.h"
#include "match/matcher.h"
#include "pipeline/scheduler.h"
#include "rt/instrument.h"
#include "video/generator.h"

namespace vs {
namespace {

/// Pool widths each clean-lane run is repeated at.  Determinism across
/// widths is the pool's core guarantee; width 1 also exercises the inline
/// path.
constexpr unsigned kWidths[] = {1, 2, 4};

/// Restores the global pool to automatic width when a test exits.
struct pool_width_guard {
  ~pool_width_guard() { core::thread_pool::set_global_threads(0); }
};

/// Restores the process-wide SIMD request when a test exits.
struct simd_level_guard {
  core::simd::level saved = core::simd::requested();
  ~simd_level_guard() { core::simd::set_level(saved); }
};

/// SIMD tiers to sweep: forced-scalar plus the best the host offers.  On a
/// scalar-only host that collapses to one entry.
std::vector<core::simd::level> test_levels() {
  std::vector<core::simd::level> levels = {core::simd::level::scalar};
  if (core::simd::detected() != core::simd::level::scalar) {
    levels.push_back(core::simd::detected());
  }
  return levels;
}

/// "width 2, simd avx2" — failure-message context for matrix sweeps.
std::string matrix_point(unsigned width, core::simd::level l) {
  return "width " + std::to_string(width) + ", simd " +
         core::simd::level_name(l);
}

const video::synthetic_video& clip(video::input_id id) {
  static const auto one = video::make_input(video::input_id::input1, 8);
  static const auto two = video::make_input(video::input_id::input2, 8);
  return id == video::input_id::input1 ? *one : *two;
}

img::image_u8 test_frame(video::input_id id, int index) {
  rt::session session;  // render the reference frame on the instrumented lane
  return clip(id).frame(index);
}

void expect_same_keypoints(const std::vector<feat::keypoint>& a,
                           const std::vector<feat::keypoint>& b,
                           const std::string& at) {
  ASSERT_EQ(a.size(), b.size()) << at;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(feat::keypoint)), 0)
        << "keypoint " << i << " at " << at;
  }
}

/// Runs `candidate` at every pool width x SIMD level, handing each run its
/// matrix coordinates for failure messages.
template <typename Fn>
void for_each_matrix_point(Fn&& candidate) {
  for (const auto level : test_levels()) {
    core::simd::set_level(level);
    for (const unsigned width : kWidths) {
      core::thread_pool::set_global_threads(width);
      candidate(matrix_point(width, level));
    }
  }
}

TEST(ParallelEquivalence, FastDetect) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  const auto gray = test_frame(video::input_id::input1, 3);
  feat::fast_params params;
  std::vector<feat::keypoint> reference;
  {
    rt::session session;
    reference = feat::fast_detect(gray, params);
  }
  for_each_matrix_point([&](const std::string& at) {
    expect_same_keypoints(reference, feat::fast_detect(gray, params), at);
  });
}

TEST(ParallelEquivalence, OrbExtract) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  const auto gray = test_frame(video::input_id::input2, 2);
  feat::orb_params params;
  feat::frame_features reference;
  {
    rt::session session;
    reference = feat::orb_extract(gray, params);
  }
  for_each_matrix_point([&](const std::string& at) {
    const auto clean = feat::orb_extract(gray, params);
    expect_same_keypoints(reference.keypoints, clean.keypoints, at);
    ASSERT_EQ(reference.descriptors.size(), clean.descriptors.size());
    for (std::size_t i = 0; i < reference.descriptors.size(); ++i) {
      EXPECT_EQ(reference.descriptors[i], clean.descriptors[i])
          << "descriptor " << i << " at " << at;
    }
  });
}

TEST(ParallelEquivalence, MatchDescriptorsBothModes) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  feat::frame_features query;
  feat::frame_features train;
  {
    rt::session session;
    query = feat::orb_extract(test_frame(video::input_id::input1, 4),
                              feat::orb_params{});
    train = feat::orb_extract(test_frame(video::input_id::input1, 5),
                              feat::orb_params{});
  }
  ASSERT_FALSE(query.empty());
  ASSERT_FALSE(train.empty());
  for (const auto mode :
       {match::match_mode::ratio_test, match::match_mode::simple}) {
    match::match_params params;
    params.mode = mode;
    std::vector<match::match> reference;
    {
      rt::session session;
      reference = match::match_descriptors(query, train, params);
    }
    for_each_matrix_point([&](const std::string& at) {
      const auto clean = match::match_descriptors(query, train, params);
      ASSERT_EQ(reference.size(), clean.size()) << at;
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].query, clean[i].query) << at;
        EXPECT_EQ(reference[i].train, clean[i].train) << at;
        EXPECT_EQ(reference[i].distance, clean[i].distance) << at;
      }
    });
  }
}

TEST(ParallelEquivalence, WarpPerspective) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  const auto src = test_frame(video::input_id::input2, 1);
  geo::mat3 h = geo::mat3::identity();
  h(0, 0) = 0.98;
  h(0, 1) = 0.05;
  h(0, 2) = 3.5;
  h(1, 0) = -0.04;
  h(1, 1) = 1.02;
  h(1, 2) = -2.25;
  h(2, 0) = 1e-4;
  h(2, 1) = -5e-5;
  const geo::rect out_rect{-8, -8, src.width() + 16, src.height() + 16};
  geo::warped_patch reference;
  {
    rt::session session;
    reference = geo::warp_perspective(src, h, out_rect);
  }
  for_each_matrix_point([&](const std::string& at) {
    const auto clean = geo::warp_perspective(src, h, out_rect);
    EXPECT_EQ(reference.pixels, clean.pixels) << at;
    EXPECT_EQ(reference.valid, clean.valid) << at;
    EXPECT_EQ(reference.x0, clean.x0) << at;
    EXPECT_EQ(reference.y0, clean.y0) << at;
  });
}

TEST(ParallelEquivalence, ResizeBilinear) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  const auto src = test_frame(video::input_id::input1, 0);
  img::image_u8 reference;
  {
    rt::session session;
    reference = feat::resize_bilinear(src, 77, 53);
  }
  for_each_matrix_point([&](const std::string& at) {
    EXPECT_EQ(reference, feat::resize_bilinear(src, 77, 53)) << at;
  });
}

TEST(ParallelEquivalence, SyntheticFrameRendering) {
  const pool_width_guard guard;
  for (const auto id : {video::input_id::input1, video::input_id::input2}) {
    for (const int index : {0, 3, 7}) {
      const auto reference = test_frame(id, index);
      for (const unsigned width : kWidths) {
        core::thread_pool::set_global_threads(width);
        EXPECT_EQ(reference, clip(id).frame(index))
            << video::input_name(id) << " frame " << index << " at pool width "
            << width;
      }
    }
  }
}

void expect_same_summary(const app::summary_result& a,
                         const app::summary_result& b, const std::string& at) {
  EXPECT_EQ(a.panorama, b.panorama) << at;
  ASSERT_EQ(a.mini_panoramas.size(), b.mini_panoramas.size());
  for (std::size_t i = 0; i < a.mini_panoramas.size(); ++i) {
    EXPECT_EQ(a.mini_panoramas[i], b.mini_panoramas[i])
        << "mini-panorama " << i << " at " << at;
  }
  EXPECT_EQ(a.stats.frames_total, b.stats.frames_total);
  EXPECT_EQ(a.stats.frames_dropped_rfd, b.stats.frames_dropped_rfd);
  EXPECT_EQ(a.stats.frames_stitched, b.stats.frames_stitched);
  EXPECT_EQ(a.stats.frames_discarded, b.stats.frames_discarded);
  EXPECT_EQ(a.stats.homography_alignments, b.stats.homography_alignments);
  EXPECT_EQ(a.stats.affine_alignments, b.stats.affine_alignments);
  EXPECT_EQ(a.stats.mini_panoramas, b.stats.mini_panoramas);
  EXPECT_EQ(a.stats.frames_gated_skip, b.stats.frames_gated_skip);
  EXPECT_EQ(a.stats.frames_gated_delta, b.stats.frames_gated_delta);
  EXPECT_EQ(a.stats.keypoints_reused, b.stats.keypoints_reused);
  EXPECT_EQ(a.stats.keypoints_detected, b.stats.keypoints_detected);
  EXPECT_EQ(a.stats.keypoints_matched_on, b.stats.keypoints_matched_on);
  EXPECT_EQ(a.stats.total_matches, b.stats.total_matches);
  ASSERT_EQ(a.placements.size(), b.placements.size());
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].frame_index, b.placements[i].frame_index);
    EXPECT_EQ(a.placements[i].panorama_index, b.placements[i].panorama_index);
  }
}

TEST(ParallelEquivalence, EndToEndBothInputs) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  for (const auto id : {video::input_id::input1, video::input_id::input2}) {
    const auto& source = clip(id);
    app::summary_result reference;
    {
      rt::session session;
      reference = app::summarize(source, app::pipeline_config{});
    }
    for_each_matrix_point([&](const std::string& at) {
      const auto clean = app::summarize(source, app::pipeline_config{});
      expect_same_summary(reference, clean,
                          std::string(video::input_name(id)) + " at " + at);
    });
  }
}

TEST(ParallelEquivalence, EndToEndFullyHardened) {
  const pool_width_guard guard;
  for (const auto id : {video::input_id::input1, video::input_id::input2}) {
    const auto& source = clip(id);

    // Calibrate the hardening from a fault-free profiled run, exactly as
    // the campaign drivers do.
    app::pipeline_config config;
    config.hardening.level = resil::hardening_level::full;
    {
      rt::session profile;
      const auto golden = app::summarize(source, app::pipeline_config{});
      config.hardening.stage_budgets = resil::derive_stage_budgets(
          profile.stats(), source.frame_count());
      config.hardening.calibration =
          fault::calibrate_detectors({golden.panorama});
    }

    app::summary_result reference;
    {
      rt::session session;
      reference = app::summarize(source, config);
    }
    for (const unsigned width : kWidths) {
      core::thread_pool::set_global_threads(width);
      const auto clean = app::summarize(source, config);
      expect_same_summary(reference, clean,
                          "width " + std::to_string(width));
    }

    // Hardening must not perturb the fault-free output either: the clean
    // lane at width 4 still matches the unhardened pipeline.
    const auto unhardened = app::summarize(source, app::pipeline_config{});
    EXPECT_EQ(reference.panorama, unhardened.panorama)
        << video::input_name(id);
  }
}

// The batch axis: the per-stage scheduler (pipeline/scheduler.h) must be
// byte-invisible.  Every batch setting — off (the legacy per-frame future
// ring), fixed sizes, and the width-tracking auto policy — reproduces the
// instrumented-lane reference at every pool width and SIMD level.
TEST(ParallelEquivalence, EndToEndBatchAxis) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  for (const auto id : {video::input_id::input1, video::input_id::input2}) {
    const auto& source = clip(id);
    app::summary_result reference;
    {
      rt::session session;
      reference = app::summarize(source, app::pipeline_config{});
    }
    for (const int batch :
         {pipeline::kBatchOff, 1, 2, 4, pipeline::kBatchAuto}) {
      app::pipeline_config config;
      config.frames_in_flight = 4;
      config.batch = batch;
      for_each_matrix_point([&](const std::string& at) {
        const auto clean = app::summarize(source, config);
        expect_same_summary(reference, clean,
                            std::string(video::input_name(id)) + " batch " +
                                pipeline::batch_name(batch) + " at " + at);
      });
    }
  }
}

// The gate axis: gating changes WHAT is computed (that is its point), but
// it must never change it differently across execution shapes.  For every
// gate level the gated summary — including the skip/delta counters and the
// descriptor-reuse count, which expose the cache's contents — must be
// byte-identical across pool widths x batch {off, auto} x SIMD levels to
// the sequential instrumented-lane reference at the same level.
TEST(ParallelEquivalence, EndToEndGateAxis) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  for (const auto id : {video::input_id::input1, video::input_id::input2}) {
    const auto& source = clip(id);
    for (const auto level : {gate::level::skip, gate::level::roi,
                             gate::level::cache, gate::level::all}) {
      app::pipeline_config gated;
      gated.gate.request = static_cast<int>(level);
      app::summary_result reference;
      {
        rt::session session;
        reference = app::summarize(source, gated);
      }
      for (const int batch : {pipeline::kBatchOff, pipeline::kBatchAuto}) {
        app::pipeline_config config = gated;
        config.frames_in_flight = 4;
        config.batch = batch;
        for_each_matrix_point([&](const std::string& at) {
          const auto clean = app::summarize(source, config);
          expect_same_summary(reference, clean,
                              std::string(video::input_name(id)) + " gate " +
                                  gate::level_name(level) + " batch " +
                                  pipeline::batch_name(batch) + " at " + at);
        });
      }
    }
  }
}

// The full matrix: both inputs x every approximation variant x pool widths
// {1, 2, 4} x SIMD levels {scalar, best available}.  Each cell must
// reproduce the instrumented-lane reference byte for byte.
TEST(ParallelEquivalence, EndToEndApproximateVariants) {
  const pool_width_guard guard;
  const simd_level_guard simd_guard;
  for (const auto id : {video::input_id::input1, video::input_id::input2}) {
    const auto& source = clip(id);
    for (const auto alg : {app::algorithm::vs_rfd, app::algorithm::vs_kds,
                           app::algorithm::vs_sm}) {
      app::pipeline_config config;
      config.approx.alg = alg;
      app::summary_result reference;
      {
        rt::session session;
        reference = app::summarize(source, config);
      }
      for_each_matrix_point([&](const std::string& at) {
        const auto clean = app::summarize(source, config);
        expect_same_summary(
            reference, clean,
            std::string(video::input_name(id)) + " " +
                app::algorithm_name(config.approx.alg) + " at " + at);
      });
    }
  }
}

}  // namespace
}  // namespace vs
