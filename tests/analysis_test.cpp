#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/error.h"
#include "fault/analysis.h"
#include "fault/report.h"

namespace vs::fault {
namespace {

injection_record make_record(outcome result, rt::fn scope, rt::op kind,
                             std::uint32_t bit, bool fired = true) {
  injection_record record;
  record.result = result;
  record.fired_scope = scope;
  record.fired_kind = kind;
  record.plan.bit = bit;
  record.fired = fired;
  record.register_live = fired;
  return record;
}

TEST(SiteBreakdown, GroupsByScopeKindAndBand) {
  std::vector<injection_record> records = {
      make_record(outcome::sdc, rt::fn::warp, rt::op::fp_alu, 3),
      make_record(outcome::sdc, rt::fn::warp, rt::op::fp_alu, 7),
      make_record(outcome::crash_segfault, rt::fn::warp, rt::op::fp_alu, 40),
      make_record(outcome::masked, rt::fn::match, rt::op::int_alu, 3),
  };
  const auto classes = site_breakdown(records);
  ASSERT_EQ(classes.size(), 3u);
  // Largest class first.
  EXPECT_EQ(classes[0].scope, rt::fn::warp);
  EXPECT_EQ(classes[0].bit_band, 0);
  EXPECT_EQ(classes[0].rates.experiments, 2u);
  EXPECT_EQ(classes[0].rates.sdc, 2u);
}

TEST(SiteBreakdown, IgnoresUnfiredRecords) {
  std::vector<injection_record> records = {
      make_record(outcome::masked, rt::fn::warp, rt::op::mem, 0,
                  /*fired=*/false),
  };
  EXPECT_TRUE(site_breakdown(records).empty());
}

TEST(ScopeBreakdown, MergesKindsAndBands) {
  std::vector<injection_record> records = {
      make_record(outcome::sdc, rt::fn::warp, rt::op::fp_alu, 3),
      make_record(outcome::masked, rt::fn::warp, rt::op::mem, 60),
      make_record(outcome::masked, rt::fn::match, rt::op::int_alu, 10),
  };
  const auto scopes = scope_breakdown(records);
  ASSERT_EQ(scopes.size(), 2u);
  EXPECT_EQ(scopes[0].scope, rt::fn::warp);
  EXPECT_EQ(scopes[0].rates.experiments, 2u);
}

TEST(Pruning, PureClassesArePrunable) {
  std::vector<injection_record> records;
  // 10 crashes in one class: pure, prunable.
  for (int i = 0; i < 10; ++i) {
    records.push_back(
        make_record(outcome::crash_segfault, rt::fn::remap, rt::op::mem, 40));
  }
  // A mixed class: not prunable.
  for (int i = 0; i < 5; ++i) {
    records.push_back(make_record(
        i % 2 == 0 ? outcome::masked : outcome::sdc, rt::fn::match,
        rt::op::int_alu, 3));
  }
  const auto estimate = estimate_pruning(records, 0.95);
  EXPECT_EQ(estimate.fired_experiments, 15u);
  EXPECT_EQ(estimate.prunable_experiments, 10u);
  EXPECT_NEAR(estimate.prunable_fraction, 10.0 / 15.0, 1e-12);
}

TEST(Pruning, SmallClassesNeverPrunable) {
  std::vector<injection_record> records = {
      make_record(outcome::masked, rt::fn::warp, rt::op::mem, 1),
      make_record(outcome::masked, rt::fn::warp, rt::op::mem, 2),
  };
  EXPECT_EQ(estimate_pruning(records).prunable_experiments, 0u);
}

TEST(Protection, PartitionsSites) {
  std::vector<injection_record> records = {
      make_record(outcome::masked, rt::fn::warp, rt::op::mem, 1),
      make_record(outcome::crash_segfault, rt::fn::warp, rt::op::mem, 40),
      make_record(outcome::hang, rt::fn::ransac, rt::op::branch, 60),
      make_record(outcome::sdc, rt::fn::remap, rt::op::int_alu, 2),
      make_record(outcome::sdc, rt::fn::remap, rt::op::int_alu, 3),
      make_record(outcome::sdc, rt::fn::remap, rt::op::int_alu, 4),
  };
  // SDC severities: ED 3 (tolerable at 10), ED 50 (not), egregious.
  const std::vector<std::optional<int>> eds = {3, 50, std::nullopt};
  const auto report = analyze_protection(records, eds, 10);
  EXPECT_EQ(report.experiments, 6u);
  EXPECT_NEAR(report.masked_fraction, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(report.detectable_fraction, 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(report.tolerable_fraction, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(report.must_protect_fraction, 2.0 / 6.0, 1e-12);
}

TEST(Protection, HigherToleranceNeedsLessProtection) {
  std::vector<injection_record> records;
  std::vector<std::optional<int>> eds;
  for (int ed = 0; ed < 20; ++ed) {
    records.push_back(
        make_record(outcome::sdc, rt::fn::remap, rt::op::int_alu, 1));
    eds.emplace_back(ed);
  }
  const auto strict = analyze_protection(records, eds, 2);
  const auto loose = analyze_protection(records, eds, 15);
  EXPECT_GT(strict.must_protect_fraction, loose.must_protect_fraction);
}

TEST(Protection, MismatchedEdsThrow) {
  std::vector<injection_record> records = {
      make_record(outcome::sdc, rt::fn::remap, rt::op::int_alu, 1)};
  EXPECT_THROW((void)analyze_protection(records, {}, 10), invalid_argument);
}

TEST(Report, CsvHasHeaderAndRows) {
  campaign_result result;
  result.records.push_back(
      make_record(outcome::crash_abort, rt::fn::warp, rt::op::mem, 63));
  result.records[0].plan.target = 12345;
  const std::string csv = records_to_csv(result);
  EXPECT_NE(csv.find("index,cls,target"), std::string::npos);
  EXPECT_NE(csv.find("12345"), std::string::npos);
  EXPECT_NE(csv.find("Crash(abort)"), std::string::npos);
  EXPECT_NE(csv.find("warpPerspective"), std::string::npos);
}

TEST(Report, JsonContainsRates) {
  campaign_result result;
  result.rates.add(outcome::masked);
  result.rates.add(outcome::sdc);
  const std::string json = rates_to_json(result, "unit");
  EXPECT_NE(json.find("\"label\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"experiments\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sdc_rate\": 0.5"), std::string::npos);
}

TEST(Report, WriteTextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/vs_report_test.txt";
  write_text_file(path, "hello\n");
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "hello");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vs::fault
