// Unit tests for the clean-lane fork-join pool: fixed tiling, coverage,
// error propagation, and the nested-parallelism inline fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/thread_pool.h"

namespace vs::core {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, 7,
                    [&](std::int64_t begin, std::int64_t end, std::size_t) {
                      for (std::int64_t i = begin; i < end; ++i) {
                        hits[static_cast<std::size_t>(i)].fetch_add(1);
                      }
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesIndependentOfWidth) {
  using tile = std::tuple<std::int64_t, std::int64_t, std::size_t>;
  auto tiling_of = [](unsigned threads) {
    thread_pool pool(threads);
    std::mutex m;
    std::vector<tile> tiles;
    pool.parallel_for(3, 250, 17,
                      [&](std::int64_t begin, std::int64_t end,
                          std::size_t chunk) {
                        const std::scoped_lock lock(m);
                        tiles.emplace_back(begin, end, chunk);
                      });
    std::sort(tiles.begin(), tiles.end(),
              [](const tile& a, const tile& b) {
                return std::get<2>(a) < std::get<2>(b);
              });
    return tiles;
  };
  const auto one = tiling_of(1);
  const auto two = tiling_of(2);
  const auto eight = tiling_of(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.size(), thread_pool::chunk_count(3, 250, 17));
  // Chunks must be contiguous, ordered by index, and cover [3, 250).
  std::int64_t expect_begin = 3;
  for (std::size_t c = 0; c < one.size(); ++c) {
    EXPECT_EQ(std::get<0>(one[c]), expect_begin);
    EXPECT_EQ(std::get<2>(one[c]), c);
    expect_begin = std::get<1>(one[c]);
  }
  EXPECT_EQ(expect_begin, 250);
}

TEST(ThreadPool, ChunkCountMatchesCeilDiv) {
  EXPECT_EQ(thread_pool::chunk_count(0, 10, 3), 4u);
  EXPECT_EQ(thread_pool::chunk_count(0, 9, 3), 3u);
  EXPECT_EQ(thread_pool::chunk_count(5, 5, 3), 0u);
  EXPECT_EQ(thread_pool::chunk_count(5, 4, 3), 0u);
  EXPECT_EQ(thread_pool::chunk_count(0, 1, 1000), 1u);
}

TEST(ThreadPool, EmptyRangeNeverInvokesBody) {
  thread_pool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(10, 10, 4,
                    [&](std::int64_t, std::int64_t, std::size_t) { ++calls; });
  pool.parallel_for(10, 3, 4,
                    [&](std::int64_t, std::int64_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, LowestFailingChunkExceptionWins) {
  thread_pool pool(4);
  try {
    pool.parallel_for(0, 64, 4,
                      [&](std::int64_t, std::int64_t, std::size_t chunk) {
                        throw std::runtime_error(std::to_string(chunk));
                      });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
  // The pool must still be usable after a failed loop.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 8, 1,
                    [&](std::int64_t begin, std::int64_t, std::size_t) {
                      sum += static_cast<int>(begin);
                    });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, InlineExecutionStopsAtThrowingChunk) {
  // Inline path (single-threaded pool): sequential semantics exactly — the
  // supervisor's in-process shard attempts rely on nothing after the
  // throwing chunk having executed.
  thread_pool pool(1);
  std::vector<std::size_t> executed;
  try {
    pool.parallel_for(0, 40, 8,
                      [&](std::int64_t, std::int64_t, std::size_t chunk) {
                        if (chunk == 2) {
                          throw std::runtime_error("chunk 2 failed");
                        }
                        executed.push_back(chunk);  // inline == this thread
                      });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2 failed");
  }
  // Chunks 3 and 4 never ran: their side effects are not observed.
  const std::vector<std::size_t> expected = {0, 1};
  EXPECT_EQ(executed, expected);
}

TEST(ThreadPool, ParallelExecutionStopsClaimingAfterFirstError) {
  // Parallel path: chunk 0 is always claimed first (the calling thread's
  // first fetch_add) and throws immediately, so its exception is the one
  // rethrown; every other chunk dawdles long enough that the early-stop
  // check prevents most of the remaining chunks from ever being claimed.
  thread_pool pool(2);
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(0, 64, 1,
                      [&](std::int64_t, std::int64_t, std::size_t chunk) {
                        if (chunk == 0) {
                          throw std::runtime_error("0");
                        }
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                        executed.fetch_add(1);
                      });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
  // Without early stop all 63 non-throwing chunks run; with it, only the
  // few already in flight when chunk 0 recorded its error may finish.
  EXPECT_LT(executed.load(), 63);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(32 * 32);
  pool.parallel_for(0, 32, 2,
                    [&](std::int64_t y0, std::int64_t y1, std::size_t) {
                      for (std::int64_t y = y0; y < y1; ++y) {
                        pool.parallel_for(
                            0, 32, 4,
                            [&](std::int64_t x0, std::int64_t x1,
                                std::size_t) {
                              for (std::int64_t x = x0; x < x1; ++x) {
                                hits[static_cast<std::size_t>(y * 32 + x)]
                                    .fetch_add(1);
                              }
                            });
                      }
                    });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  thread_pool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(0, 40, 8,
                    [&](std::int64_t, std::int64_t, std::size_t chunk) {
                      order.push_back(chunk);  // no lock: inline == this thread
                    });
  const std::vector<std::size_t> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, GlobalWidthOverride) {
  thread_pool::set_global_threads(2);
  EXPECT_EQ(thread_pool::global().thread_count(), 2u);
  thread_pool::set_global_threads(3);
  EXPECT_EQ(thread_pool::global().thread_count(), 3u);
  thread_pool::set_global_threads(0);  // restore automatic width
  EXPECT_GE(thread_pool::global().thread_count(), 1u);
}

}  // namespace
}  // namespace vs::core
