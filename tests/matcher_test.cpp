#include <gtest/gtest.h>

#include "core/error.h"
#include "core/rng.h"
#include "match/matcher.h"

namespace vs::match {
namespace {

feat::descriptor random_descriptor(rng& gen) {
  feat::descriptor d;
  for (auto& word : d.bits) word = gen.next();
  return d;
}

feat::frame_features random_features(std::size_t count, std::uint64_t seed) {
  rng gen(seed);
  feat::frame_features f;
  for (std::size_t i = 0; i < count; ++i) {
    f.keypoints.push_back({static_cast<float>(gen.uniform(100)),
                           static_cast<float>(gen.uniform(100)), 1.0f, 0.0f});
    f.descriptors.push_back(random_descriptor(gen));
  }
  return f;
}

// Flips `bits` random bits of each descriptor (simulating viewing noise).
feat::frame_features perturb(const feat::frame_features& src, int bits,
                             std::uint64_t seed) {
  rng gen(seed);
  feat::frame_features out = src;
  for (auto& d : out.descriptors) {
    for (int b = 0; b < bits; ++b) {
      const auto which = gen.uniform(256);
      d.bits[which >> 6] ^= 1ULL << (which & 63);
    }
  }
  return out;
}

TEST(Matcher, IdenticalSetsMatchOneToOne) {
  const auto features = random_features(20, 5);
  const auto matches =
      match_descriptors(features, features, match_params{});
  ASSERT_EQ(matches.size(), 20u);
  for (const auto& m : matches) {
    EXPECT_EQ(m.query, m.train);
    EXPECT_EQ(m.distance, 0);
  }
}

TEST(Matcher, FindsPerturbedCounterparts) {
  const auto train = random_features(30, 7);
  const auto query = perturb(train, 8, 11);
  const auto matches = match_descriptors(query, train, match_params{});
  EXPECT_GT(matches.size(), 25u);
  for (const auto& m : matches) EXPECT_EQ(m.query, m.train);
}

TEST(Matcher, RatioTestRejectsAmbiguous) {
  // Two identical train descriptors: nearest and second nearest tie, the
  // ratio test must reject the match.
  rng gen(13);
  feat::frame_features train;
  const auto d = random_descriptor(gen);
  for (int i = 0; i < 2; ++i) {
    train.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
    train.descriptors.push_back(d);
  }
  feat::frame_features query;
  query.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
  query.descriptors.push_back(d);
  EXPECT_TRUE(match_descriptors(query, train, match_params{}).empty());
}

TEST(Matcher, SimpleModeAcceptsAmbiguous) {
  rng gen(13);
  feat::frame_features train;
  const auto d = random_descriptor(gen);
  for (int i = 0; i < 2; ++i) {
    train.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
    train.descriptors.push_back(d);
  }
  feat::frame_features query;
  query.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
  query.descriptors.push_back(d);
  match_params params;
  params.mode = match_mode::simple;
  params.max_distance = 32;
  EXPECT_EQ(match_descriptors(query, train, params).size(), 1u);
}

TEST(Matcher, SimpleModeEnforcesDistanceBound) {
  const auto train = random_features(10, 17);
  const auto query = perturb(train, 60, 19);  // far from everything
  match_params params;
  params.mode = match_mode::simple;
  params.max_distance = 10;
  EXPECT_TRUE(match_descriptors(query, train, params).empty());
}

TEST(Matcher, SimpleModeDistanceIsNearestNeighbour) {
  const auto train = random_features(15, 23);
  const auto query = perturb(train, 4, 29);
  match_params params;
  params.mode = match_mode::simple;
  params.max_distance = 40;
  const auto matches = match_descriptors(query, train, params);
  ASSERT_FALSE(matches.empty());
  for (const auto& m : matches) {
    const int d = feat::hamming_distance(
        query.descriptors[static_cast<std::size_t>(m.query)],
        train.descriptors[static_cast<std::size_t>(m.train)]);
    EXPECT_EQ(m.distance, d);
    EXPECT_LE(d, 40);
  }
}

TEST(Matcher, EmptyInputsProduceNoMatches) {
  const auto features = random_features(5, 31);
  EXPECT_TRUE(
      match_descriptors(feat::frame_features{}, features, match_params{})
          .empty());
  EXPECT_TRUE(
      match_descriptors(features, feat::frame_features{}, match_params{})
          .empty());
}

TEST(Matcher, ToPointPairsMapsCoordinates) {
  feat::frame_features query;
  query.keypoints.push_back({1.0f, 2.0f, 1.0f, 0.0f});
  query.descriptors.emplace_back();
  feat::frame_features train;
  train.keypoints.push_back({3.0f, 4.0f, 1.0f, 0.0f});
  train.descriptors.emplace_back();
  const std::vector<match> matches = {{0, 0, 0}};
  const auto pairs = to_point_pairs(matches, query, train);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].src, (geo::vec2{1.0, 2.0}));
  EXPECT_EQ(pairs[0].dst, (geo::vec2{3.0, 4.0}));
}

TEST(Matcher, ToPointPairsRejectsBadIndices) {
  const auto features = random_features(2, 37);
  const std::vector<match> bad = {{0, 5, 0}};
  EXPECT_THROW((void)to_point_pairs(bad, features, features),
               invalid_argument);
}

TEST(Matcher, AtMostOneMatchPerQuery) {
  const auto train = random_features(25, 41);
  const auto query = perturb(train, 6, 43);
  const auto matches = match_descriptors(query, train, match_params{});
  std::vector<bool> seen(query.size(), false);
  for (const auto& m : matches) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(m.query)]);
    seen[static_cast<std::size_t>(m.query)] = true;
  }
}

}  // namespace
}  // namespace vs::match
