#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"
#include "core/simd.h"
#include "match/matcher.h"
#include "match/matcher_simd.h"

namespace vs::match {
namespace {

feat::descriptor random_descriptor(rng& gen) {
  feat::descriptor d;
  for (auto& word : d.bits) word = gen.next();
  return d;
}

feat::frame_features random_features(std::size_t count, std::uint64_t seed) {
  rng gen(seed);
  feat::frame_features f;
  for (std::size_t i = 0; i < count; ++i) {
    f.keypoints.push_back({static_cast<float>(gen.uniform(100)),
                           static_cast<float>(gen.uniform(100)), 1.0f, 0.0f});
    f.descriptors.push_back(random_descriptor(gen));
  }
  return f;
}

// Flips `bits` random bits of each descriptor (simulating viewing noise).
feat::frame_features perturb(const feat::frame_features& src, int bits,
                             std::uint64_t seed) {
  rng gen(seed);
  feat::frame_features out = src;
  for (auto& d : out.descriptors) {
    for (int b = 0; b < bits; ++b) {
      const auto which = gen.uniform(256);
      d.bits[which >> 6] ^= 1ULL << (which & 63);
    }
  }
  return out;
}

TEST(Matcher, IdenticalSetsMatchOneToOne) {
  const auto features = random_features(20, 5);
  const auto matches =
      match_descriptors(features, features, match_params{});
  ASSERT_EQ(matches.size(), 20u);
  for (const auto& m : matches) {
    EXPECT_EQ(m.query, m.train);
    EXPECT_EQ(m.distance, 0);
  }
}

TEST(Matcher, FindsPerturbedCounterparts) {
  const auto train = random_features(30, 7);
  const auto query = perturb(train, 8, 11);
  const auto matches = match_descriptors(query, train, match_params{});
  EXPECT_GT(matches.size(), 25u);
  for (const auto& m : matches) EXPECT_EQ(m.query, m.train);
}

TEST(Matcher, RatioTestRejectsAmbiguous) {
  // Two identical train descriptors: nearest and second nearest tie, the
  // ratio test must reject the match.
  rng gen(13);
  feat::frame_features train;
  const auto d = random_descriptor(gen);
  for (int i = 0; i < 2; ++i) {
    train.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
    train.descriptors.push_back(d);
  }
  feat::frame_features query;
  query.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
  query.descriptors.push_back(d);
  EXPECT_TRUE(match_descriptors(query, train, match_params{}).empty());
}

TEST(Matcher, SimpleModeAcceptsAmbiguous) {
  rng gen(13);
  feat::frame_features train;
  const auto d = random_descriptor(gen);
  for (int i = 0; i < 2; ++i) {
    train.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
    train.descriptors.push_back(d);
  }
  feat::frame_features query;
  query.keypoints.push_back({0.0f, 0.0f, 1.0f, 0.0f});
  query.descriptors.push_back(d);
  match_params params;
  params.mode = match_mode::simple;
  params.max_distance = 32;
  EXPECT_EQ(match_descriptors(query, train, params).size(), 1u);
}

TEST(Matcher, SimpleModeEnforcesDistanceBound) {
  const auto train = random_features(10, 17);
  const auto query = perturb(train, 60, 19);  // far from everything
  match_params params;
  params.mode = match_mode::simple;
  params.max_distance = 10;
  EXPECT_TRUE(match_descriptors(query, train, params).empty());
}

TEST(Matcher, SimpleModeDistanceIsNearestNeighbour) {
  const auto train = random_features(15, 23);
  const auto query = perturb(train, 4, 29);
  match_params params;
  params.mode = match_mode::simple;
  params.max_distance = 40;
  const auto matches = match_descriptors(query, train, params);
  ASSERT_FALSE(matches.empty());
  for (const auto& m : matches) {
    const int d = feat::hamming_distance(
        query.descriptors[static_cast<std::size_t>(m.query)],
        train.descriptors[static_cast<std::size_t>(m.train)]);
    EXPECT_EQ(m.distance, d);
    EXPECT_LE(d, 40);
  }
}

TEST(Matcher, EmptyInputsProduceNoMatches) {
  const auto features = random_features(5, 31);
  EXPECT_TRUE(
      match_descriptors(feat::frame_features{}, features, match_params{})
          .empty());
  EXPECT_TRUE(
      match_descriptors(features, feat::frame_features{}, match_params{})
          .empty());
}

TEST(Matcher, ToPointPairsMapsCoordinates) {
  feat::frame_features query;
  query.keypoints.push_back({1.0f, 2.0f, 1.0f, 0.0f});
  query.descriptors.emplace_back();
  feat::frame_features train;
  train.keypoints.push_back({3.0f, 4.0f, 1.0f, 0.0f});
  train.descriptors.emplace_back();
  const std::vector<match> matches = {{0, 0, 0}};
  const auto pairs = to_point_pairs(matches, query, train);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].src, (geo::vec2{1.0, 2.0}));
  EXPECT_EQ(pairs[0].dst, (geo::vec2{3.0, 4.0}));
}

TEST(Matcher, ToPointPairsRejectsBadIndices) {
  const auto features = random_features(2, 37);
  const std::vector<match> bad = {{0, 5, 0}};
  EXPECT_THROW((void)to_point_pairs(bad, features, features),
               invalid_argument);
}

TEST(Matcher, AtMostOneMatchPerQuery) {
  const auto train = random_features(25, 41);
  const auto query = perturb(train, 6, 43);
  const auto matches = match_descriptors(query, train, match_params{});
  std::vector<bool> seen(query.size(), false);
  for (const auto& m : matches) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(m.query)]);
    seen[static_cast<std::size_t>(m.query)] = true;
  }
}

// The early-exit distance must honour its contract for every bound, not
// just bounds that happen to fall on a word boundary:
// bounded(a, b, k) == min(exact, k + 1).
TEST(Matcher, BoundedDistanceClampsAtEveryBound) {
  rng gen(47);
  for (int pair = 0; pair < 64; ++pair) {
    const auto a = random_descriptor(gen);
    auto b = random_descriptor(gen);
    if (pair % 4 == 0) b = a;  // exercise the distance-zero corner
    const int exact = feat::hamming_distance(a, b);
    for (const int bound : {0, 1, 17, 63, 64, 65, 127, 128, 200, 255, 256}) {
      EXPECT_EQ(feat::hamming_distance_bounded(a, b, bound),
                std::min(exact, bound + 1))
          << "pair " << pair << " bound " << bound << " exact " << exact;
    }
  }
}

// The vectorized candidate scans must reproduce the scalar 2-NN / 1-NN
// bookkeeping exactly, including first-of-tie index selection.
TEST(Matcher, SimdScansMatchScalarBookkeeping) {
  const auto level = core::simd::detected();
  const auto scan2 = simd::select_scan2(level);
  const auto scan1 = simd::select_scan1(level);
  if (scan2 == nullptr && scan1 == nullptr) {
    GTEST_SKIP() << "host has no vectorized scans";
  }
  rng gen(53);
  // Sizes straddle the block widths (4-wide AVX2, 2-wide SSE4) plus tails.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 33u, 100u}) {
    std::vector<feat::descriptor> train;
    for (std::size_t i = 0; i < n; ++i) train.push_back(random_descriptor(gen));
    if (n >= 8) train[6] = train[2];  // force an exact tie
    for (int trial = 0; trial < 8; ++trial) {
      const auto q = trial == 0 && n > 2 ? train[2] : random_descriptor(gen);
      simd::best2 want;
      for (std::size_t i = 0; i < n; ++i) {
        const int d = feat::hamming_distance(q, train[i]);
        if (d < want.best) {
          want.second = want.best;
          want.best = d;
          want.best_index = i;
        } else if (d < want.second) {
          want.second = d;
        }
      }
      if (scan2 != nullptr) {
        const auto got = scan2(q, train.data(), n);
        EXPECT_EQ(got.best, want.best);
        EXPECT_EQ(got.second, want.second);
        EXPECT_EQ(got.best_index, want.best_index);
      }
      if (scan1 != nullptr) {
        const auto got = scan1(q, train.data(), n);
        EXPECT_EQ(got.best, want.best);
        EXPECT_EQ(got.best_index, want.best_index);
      }
    }
  }
}

}  // namespace
}  // namespace vs::match
