// Tests for symptom-based detectors and the extra image metrics.
#include <gtest/gtest.h>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "fault/detectors.h"
#include "quality/metrics_extra.h"

namespace vs {
namespace {

img::image_u8 textured(int w, int h, std::uint64_t salt = 1) {
  img::image_u8 im(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::uint64_t state = salt * 777 + static_cast<std::uint64_t>(y) * 977 +
                            static_cast<std::uint64_t>(x);
      im.at(x, y) = static_cast<std::uint8_t>(splitmix64(state) % 180 + 40);
    }
  }
  return im;
}

// ---------------------------------------------------------------------------
// Symptom detectors
// ---------------------------------------------------------------------------

TEST(Detectors, CalibrationAveragesGoldens) {
  const auto calibration = fault::calibrate_detectors(
      {textured(100, 60), textured(120, 60)});
  EXPECT_EQ(calibration.width, 110);
  EXPECT_EQ(calibration.height, 60);
  EXPECT_GT(calibration.mean_intensity, 40.0);
  EXPECT_GT(calibration.nonzero_fraction, 0.95);
}

TEST(Detectors, CalibrationRejectsEmptySet) {
  EXPECT_THROW((void)fault::calibrate_detectors({}), invalid_argument);
}

TEST(Detectors, CleanOutputPasses) {
  const auto golden = textured(100, 60);
  const auto calibration = fault::calibrate_detectors({golden});
  EXPECT_EQ(fault::run_detectors(textured(100, 60, 2), calibration),
            fault::detection_verdict::clean);
}

TEST(Detectors, GeometryCheckCatchesWildDimensions) {
  const auto calibration = fault::calibrate_detectors({textured(100, 60)});
  EXPECT_EQ(fault::run_detectors(textured(300, 60), calibration),
            fault::detection_verdict::geometry);
  EXPECT_EQ(fault::run_detectors(img::image_u8{}, calibration),
            fault::detection_verdict::geometry);
}

TEST(Detectors, CoverageCheckCatchesBlankedOutput) {
  const auto calibration = fault::calibrate_detectors({textured(100, 60)});
  img::image_u8 mostly_black(100, 60, 1, 0);
  for (int x = 0; x < 20; ++x) mostly_black.at(x, 0) = 100;
  EXPECT_EQ(fault::run_detectors(mostly_black, calibration),
            fault::detection_verdict::coverage);
}

TEST(Detectors, IntensityCheckCatchesSaturation) {
  const auto calibration = fault::calibrate_detectors({textured(100, 60)});
  img::image_u8 blown(100, 60, 1, 250);
  EXPECT_EQ(fault::run_detectors(blown, calibration),
            fault::detection_verdict::intensity);
}

TEST(Detectors, SummaryCountsByCheck) {
  const auto golden = textured(100, 60);
  const auto calibration = fault::calibrate_detectors({golden});
  std::vector<img::image_u8> sdcs;
  sdcs.push_back(textured(100, 60, 9));     // clean (silent SDC)
  sdcs.push_back(textured(20, 60));         // geometry
  sdcs.push_back(img::image_u8(100, 60, 1, 250));  // intensity
  const auto summary = fault::evaluate_detectors(sdcs, calibration);
  EXPECT_EQ(summary.sdcs, 3u);
  EXPECT_EQ(summary.detected, 2u);
  EXPECT_EQ(summary.by_geometry, 1u);
  EXPECT_EQ(summary.by_intensity, 1u);
  EXPECT_NEAR(summary.coverage(), 2.0 / 3.0, 1e-12);
}

TEST(Detectors, AllBlackOutputFlaggedByCoverage) {
  const auto calibration = fault::calibrate_detectors({textured(100, 60)});
  const img::image_u8 black(100, 60, 1, 0);
  EXPECT_EQ(fault::run_detectors(black, calibration),
            fault::detection_verdict::coverage);
}

TEST(Detectors, GeometrySlackBoundaryExactIsClean) {
  // Uniform golden: calibrated width 100, height 80, mean 100, coverage 1.
  const auto calibration =
      fault::calibrate_detectors({img::image_u8(100, 80, 1, 100)});
  // |150 - 100| / 100 == dimension_slack exactly: checks use strict >, so a
  // boundary-exact output must stay clean...
  EXPECT_EQ(fault::run_detectors(img::image_u8(150, 80, 1, 100), calibration),
            fault::detection_verdict::clean);
  // ...while one pixel past the envelope is flagged.
  EXPECT_EQ(fault::run_detectors(img::image_u8(151, 80, 1, 100), calibration),
            fault::detection_verdict::geometry);
}

TEST(Detectors, IntensitySlackBoundaryExactIsClean) {
  const auto calibration =
      fault::calibrate_detectors({img::image_u8(100, 80, 1, 100)});
  // |135 - 100| / 100 == intensity_slack exactly.
  EXPECT_EQ(fault::run_detectors(img::image_u8(100, 80, 1, 135), calibration),
            fault::detection_verdict::clean);
  EXPECT_EQ(fault::run_detectors(img::image_u8(100, 80, 1, 136), calibration),
            fault::detection_verdict::intensity);
}

TEST(Detectors, CoverageSlackBoundaryExactIsClean) {
  const auto calibration =
      fault::calibrate_detectors({img::image_u8(100, 80, 1, 100)});
  // 4800 of 8000 pixels nonzero == nonzero_fraction * (1 - coverage_slack)
  // exactly; value 167 keeps the mean inside the intensity envelope so only
  // the coverage check is in play.
  img::image_u8 boundary(100, 80, 1, 0);
  int painted = 0;
  for (int y = 0; y < 80 && painted < 4800; ++y) {
    for (int x = 0; x < 100 && painted < 4800; ++x) {
      boundary.at(x, y) = 167;
      ++painted;
    }
  }
  EXPECT_EQ(fault::run_detectors(boundary, calibration),
            fault::detection_verdict::clean);
  boundary.at(99, 47) = 0;  // last painted pixel: one under the floor now
  EXPECT_EQ(fault::run_detectors(boundary, calibration),
            fault::detection_verdict::coverage);
}

TEST(Detectors, VerdictNamesDistinct) {
  EXPECT_STRNE(
      fault::detection_verdict_name(fault::detection_verdict::clean),
      fault::detection_verdict_name(fault::detection_verdict::geometry));
}

// ---------------------------------------------------------------------------
// PSNR / SSIM
// ---------------------------------------------------------------------------

TEST(Psnr, IdenticalIsCapped) {
  const auto im = textured(32, 32);
  EXPECT_DOUBLE_EQ(quality::psnr(im, im), 99.0);
}

TEST(Psnr, KnownMse) {
  img::image_u8 a(10, 10, 1, 100);
  img::image_u8 b(10, 10, 1, 110);  // mse = 100
  EXPECT_NEAR(quality::psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0),
              1e-9);
}

TEST(Psnr, MoreNoiseLowerPsnr) {
  const auto golden = textured(32, 32);
  auto mild = golden;
  auto severe = golden;
  rng gen(3);
  for (int i = 0; i < 20; ++i) {
    mild[gen.uniform(mild.size())] ^= 0x10;
    severe[gen.uniform(severe.size())] ^= 0xF0;
  }
  EXPECT_GT(quality::psnr(golden, mild), quality::psnr(golden, severe));
}

TEST(Psnr, ShapeMismatchThrows) {
  EXPECT_THROW((void)quality::psnr(textured(8, 8), textured(9, 8)),
               invalid_argument);
}

TEST(Ssim, IdenticalIsOne) {
  const auto im = textured(32, 32);
  EXPECT_NEAR(quality::ssim(im, im), 1.0, 1e-12);
}

TEST(Ssim, UncorrelatedIsLow) {
  EXPECT_LT(quality::ssim(textured(32, 32, 1), textured(32, 32, 2)), 0.3);
}

TEST(Ssim, GlobalBrightnessShiftScoresHigherThanScramble) {
  const auto golden = textured(32, 32);
  auto brighter = golden;
  for (std::size_t i = 0; i < brighter.size(); ++i) {
    brighter[i] = static_cast<std::uint8_t>(std::min(255, brighter[i] + 25));
  }
  EXPECT_GT(quality::ssim(golden, brighter),
            quality::ssim(golden, textured(32, 32, 7)));
}

TEST(Ssim, RejectsBadArguments) {
  EXPECT_THROW((void)quality::ssim(textured(8, 8), textured(9, 8)),
               invalid_argument);
  EXPECT_THROW((void)quality::ssim(textured(8, 8), textured(8, 8), 1),
               invalid_argument);
  EXPECT_THROW((void)quality::ssim(textured(4, 4), textured(4, 4), 8),
               invalid_argument);
}

}  // namespace
}  // namespace vs
