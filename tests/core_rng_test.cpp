#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "core/rng.h"

namespace vs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  rng a(42);
  rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  rng gen(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(gen.uniform(17), 17u);
}

TEST(Rng, UniformZeroBoundIsZero) {
  rng gen(7);
  EXPECT_EQ(gen.uniform(0), 0u);
}

TEST(Rng, UniformInInclusiveRange) {
  rng gen(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = gen.uniform_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InHalfOpenUnit) {
  rng gen(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = gen.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyZeroMeanUnitVariance) {
  rng gen(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = gen.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  rng gen(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.chance(0.0));
    EXPECT_TRUE(gen.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  rng parent(5);
  rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent.next() == child.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  rng gen(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = gen.sample_without_replacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (auto v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  rng gen(23);
  const auto sample = gen.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsKGreaterThanN) {
  rng gen(29);
  EXPECT_THROW(gen.sample_without_replacement(3, 4), invalid_argument);
}

TEST(Splitmix, DeterministicAndAdvancesState) {
  std::uint64_t s1 = 99;
  std::uint64_t s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 99u);
}

}  // namespace
}  // namespace vs
