// Unit tests of the real-time gating subsystem (src/gate/): the frame
// gate's decision values and thresholds, ROI mask geometry, descriptor
// cache bounds and determinism, level plumbing, and the recovery contract
// (gated state must not survive a retry or a dead-reckoned frame).
#include <gtest/gtest.h>

#include <cmath>

#include "app/pipeline.h"
#include "fault/detectors.h"
#include "gate/change.h"
#include "gate/desc_cache.h"
#include "gate/extrapolate.h"
#include "gate/gate.h"
#include "geometry/mat3.h"
#include "geometry/warp.h"
#include "resil/hardening.h"
#include "rt/instrument.h"
#include "video/generator.h"

namespace vs {
namespace {

// ---------------------------------------------------------------------------
// Level plumbing.
// ---------------------------------------------------------------------------

TEST(GateLevel, ParsesEveryNameCaseInsensitively) {
  EXPECT_EQ(gate::parse_level("off"), gate::level::off);
  EXPECT_EQ(gate::parse_level("SKIP"), gate::level::skip);
  EXPECT_EQ(gate::parse_level("Roi"), gate::level::roi);
  EXPECT_EQ(gate::parse_level("cache"), gate::level::cache);
  EXPECT_EQ(gate::parse_level("all"), gate::level::all);
  EXPECT_THROW((void)gate::parse_level("everything"), invalid_argument);
  for (int l = 0; l < gate::level_count; ++l) {
    const auto level = static_cast<gate::level>(l);
    EXPECT_EQ(gate::parse_level(gate::level_name(level)), level);
  }
}

TEST(GateLevel, MechanismArmingMatrix) {
  using gate::level;
  EXPECT_FALSE(gate::skip_enabled(level::off));
  EXPECT_FALSE(gate::roi_enabled(level::off));
  EXPECT_FALSE(gate::cache_enabled(level::off));
  EXPECT_TRUE(gate::skip_enabled(level::skip));
  EXPECT_FALSE(gate::roi_enabled(level::skip));
  EXPECT_TRUE(gate::roi_enabled(level::roi));
  EXPECT_FALSE(gate::cache_enabled(level::roi));
  // cache implies the ROI machinery: reuse needs restricted extraction.
  EXPECT_TRUE(gate::roi_enabled(level::cache));
  EXPECT_TRUE(gate::cache_enabled(level::cache));
  EXPECT_TRUE(gate::skip_enabled(level::all));
  EXPECT_TRUE(gate::roi_enabled(level::all));
  EXPECT_TRUE(gate::cache_enabled(level::all));
}

TEST(GateLevel, ResolvePrefersExplicitConfigOverProcessRequest) {
  EXPECT_EQ(gate::resolve(static_cast<int>(gate::level::roi)),
            gate::level::roi);
  EXPECT_EQ(gate::resolve(gate::kLevelInherit), gate::requested_level());
}

// ---------------------------------------------------------------------------
// Frame gate: decision values and thresholds.
// ---------------------------------------------------------------------------

img::image_u8 gradient_frame(int w, int h, int shift_x) {
  img::image_u8 frame(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // Texture with structure at several scales so a shifted copy is
      // unambiguous to the translation search.
      const int sx = x + shift_x;
      frame.at(x, y) = static_cast<std::uint8_t>(
          (sx * 7 + y * 13 + ((sx / 9) * 31 ^ (y / 7) * 17)) & 0xff);
    }
  }
  return frame;
}

TEST(FrameGate, IdenticalThumbsScoreZeroWithZeroShift) {
  const auto frame = gradient_frame(64, 48, 0);
  const auto thumb = gate::make_thumb(frame, 4);
  const auto stats = gate::change_score(thumb, thumb, 3, 4);
  EXPECT_EQ(stats.score, 0.0);
  EXPECT_EQ(stats.raw, 0.0);
  EXPECT_EQ(stats.shift_x, 0);
  EXPECT_EQ(stats.shift_y, 0);
}

TEST(FrameGate, TranslationSearchRecoversTheShift) {
  // Shift the underlying texture by exactly 2 thumb pixels (8 full-res
  // pixels at factor 4): compensated score must drop to ~0 and the shift
  // must be reported in full-resolution pixels.
  const auto ref = gate::make_thumb(gradient_frame(128, 96, 0), 4);
  const auto cur = gate::make_thumb(gradient_frame(128, 96, 8), 4);
  const auto stats = gate::change_score(cur, ref, 3, 4);
  EXPECT_EQ(stats.shift_x, -8);  // content moved 8px left in cur
  EXPECT_EQ(stats.shift_y, 0);
  EXPECT_LT(stats.score, stats.raw);
  EXPECT_LT(stats.score, 2.0);
  EXPECT_GT(stats.raw, 10.0);
}

TEST(FrameGate, CleanRecomputationIsBitwiseIdentical) {
  const auto ref = gate::make_thumb(gradient_frame(128, 96, 0), 4);
  const auto cur = gate::make_thumb(gradient_frame(128, 96, 5), 4);
  const auto hooked = [&] {
    rt::session session;  // hooks live but value-preserving
    return gate::change_score(cur, ref, 6, 4);
  }();
  const auto clean = gate::change_score_clean(cur, ref, 6, 4);
  EXPECT_EQ(hooked, clean);
}

TEST(FrameGate, MismatchedGeometryScoresMaximallyDifferent) {
  const auto a = gate::make_thumb(gradient_frame(64, 48, 0), 4);
  const auto b = gate::make_thumb(gradient_frame(32, 48, 0), 4);
  const auto stats = gate::change_score(a, b, 3, 4);
  EXPECT_EQ(stats.score, 255.0);
  EXPECT_EQ(stats.raw, 255.0);
}

TEST(FrameGate, ClassifyAppliesThresholdsAndAvailability) {
  gate::gate_config cfg;
  cfg.skip_residual = 10.0;
  cfg.skip_motion_px = 8.0;
  cfg.delta_residual = 20.0;

  gate::change_stats still;  // low residual, tiny motion
  still.score = 2.0;
  still.shift_x = 4;
  EXPECT_EQ(gate::classify(still, cfg, true, true), gate::frame_class::skip);
  // Same values with skip unavailable fall through to delta.
  EXPECT_EQ(gate::classify(still, cfg, false, true),
            gate::frame_class::delta);
  EXPECT_EQ(gate::classify(still, cfg, false, false),
            gate::frame_class::full);

  gate::change_stats moving;  // consistent content but too much motion
  moving.score = 6.0;
  moving.shift_x = 12;
  EXPECT_EQ(gate::classify(moving, cfg, true, true),
            gate::frame_class::delta);

  gate::change_stats changed;  // view change: high residual however shifted
  changed.score = 40.0;
  EXPECT_EQ(gate::classify(changed, cfg, true, true),
            gate::frame_class::full);
}

// ---------------------------------------------------------------------------
// Motion extrapolator: ROI geometry and alignment refinement.
// ---------------------------------------------------------------------------

TEST(RoiPlan, PureTranslationLeavesOneFreshStrip) {
  // Current frame content sits 10px left of the reference: the overlap
  // misses the rightmost 10 columns, which must come back as exactly one
  // full-height fresh strip.
  const geo::mat3 cur_to_prev = geo::mat3::translation(10.0, 0.0);
  const auto plan = gate::predict_roi(cur_to_prev, 128, 96);
  ASSERT_TRUE(plan.valid);
  EXPECT_EQ(plan.overlap.x0, 0);
  EXPECT_EQ(plan.overlap.w, 118);
  EXPECT_EQ(plan.overlap.h, 96);
  ASSERT_EQ(plan.fresh.size(), 1u);
  EXPECT_EQ(plan.fresh[0].x0, 118);
  EXPECT_EQ(plan.fresh[0].w, 10);
  EXPECT_EQ(plan.fresh[0].y0, 0);
  EXPECT_EQ(plan.fresh[0].h, 96);
}

TEST(RoiPlan, DiagonalMotionYieldsDisjointStripsCoveringTheComplement) {
  const geo::mat3 cur_to_prev = geo::mat3::translation(-7.0, 5.0);
  const auto plan = gate::predict_roi(cur_to_prev, 128, 96);
  ASSERT_TRUE(plan.valid);
  long long fresh_area = 0;
  for (const auto& r : plan.fresh) fresh_area += 1LL * r.w * r.h;
  for (std::size_t i = 0; i < plan.fresh.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.fresh.size(); ++j) {
      EXPECT_TRUE(
          geo::rect_intersect(plan.fresh[i], plan.fresh[j]).empty())
          << "strips " << i << " and " << j << " overlap";
    }
    EXPECT_TRUE(geo::rect_intersect(plan.fresh[i], plan.overlap).empty());
  }
  EXPECT_EQ(fresh_area + 1LL * plan.overlap.w * plan.overlap.h,
            128LL * 96LL);
}

TEST(RoiExtract, KeypointsStayInsideTheRequestedRects) {
  const auto clip = video::make_input(video::input_id::input2, 4);
  const auto frame = clip->frame(0);
  feat::orb_params params;
  const std::vector<geo::rect> rois = {{96, 0, 32, 96}};
  const auto features = gate::extract_roi(frame, rois, params, 20);
  EXPECT_GT(features.size(), 0u);
  for (const auto& kp : features.keypoints) {
    EXPECT_GE(kp.x, 96.0f);
    EXPECT_LT(kp.x, 128.0f);
  }
}

TEST(Extrapolate, RefinesAnOffsetPriorOntoTheTrueTranslation) {
  // prev and cur are views of the same texture, cur shifted 6px right of
  // prev (i.e. cur -> prev maps x to x + 6).  Hand the extrapolator a
  // prior that is 3px off: the search must land on the true model.
  const auto prev = gradient_frame(128, 96, 0);
  const auto cur = gradient_frame(128, 96, 6);
  gate::gate_config cfg;
  cfg.search_radius = 5;
  cfg.sample_step = 4;
  const geo::mat3 prior = geo::mat3::translation(3.0, 0.0);
  const auto extra = gate::extrapolate_alignment(cur, prev, prior, cfg);
  ASSERT_TRUE(extra.valid);
  EXPECT_NEAR(extra.residual, 0.0, 1e-9);
  const geo::vec2 mapped = extra.delta.apply({10.0, 10.0});
  EXPECT_NEAR(mapped.x, 16.0, 1e-9);
  EXPECT_NEAR(mapped.y, 10.0, 1e-9);
}

TEST(Extrapolate, RejectsWhenTheResidualStaysHigh) {
  // Uncorrelated textures: no translation explains the difference.
  const auto prev = gradient_frame(128, 96, 0);
  auto cur = gradient_frame(128, 96, 0);
  for (int y = 0; y < cur.height(); ++y) {
    for (int x = 0; x < cur.width(); ++x) {
      cur.at(x, y) = static_cast<std::uint8_t>(255 - cur.at(x, y));
    }
  }
  gate::gate_config cfg;
  const auto extra =
      gate::extrapolate_alignment(cur, prev, geo::mat3::identity(), cfg);
  EXPECT_FALSE(extra.valid);
}

// ---------------------------------------------------------------------------
// Descriptor cache: bounds, eviction order, rebase aging.
// ---------------------------------------------------------------------------

feat::frame_features features_at(std::initializer_list<float> xs) {
  feat::frame_features f;
  std::uint8_t tone = 1;
  for (const float x : xs) {
    feat::keypoint kp;
    kp.x = x;
    kp.y = 50.0f;
    f.keypoints.push_back(kp);
    feat::descriptor d;
    d.bits[0] = tone++;
    f.descriptors.push_back(d);
  }
  return f;
}

TEST(DescCache, CapacityEvictsOldestStampsFirst) {
  gate::desc_cache cache(3, 10);
  cache.insert(features_at({30.0f, 40.0f}));
  cache.insert(features_at({50.0f, 60.0f}));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  const auto snap = cache.snapshot();
  ASSERT_EQ(snap.keypoints.size(), 3u);
  // 30 (the oldest stamp) was evicted; survivors keep insertion order.
  EXPECT_EQ(snap.keypoints[0].x, 40.0f);
  EXPECT_EQ(snap.keypoints[1].x, 50.0f);
  EXPECT_EQ(snap.keypoints[2].x, 60.0f);
}

TEST(DescCache, SameCellReplacementPrefersTheFreshMeasurement) {
  gate::desc_cache cache(8, 10);
  cache.insert(features_at({30.0f}));
  const auto first = cache.snapshot();
  ASSERT_EQ(first.descriptors.size(), 1u);
  // A re-detection of (almost) the same position replaces the old entry
  // instead of duplicating the cell.
  feat::frame_features again = features_at({30.4f});
  again.descriptors[0].bits[0] = 99;
  cache.insert(again);
  EXPECT_EQ(cache.size(), 1u);
  const auto snap = cache.snapshot();
  EXPECT_EQ(snap.descriptors[0].bits[0], 99u);
}

TEST(DescCache, RebaseWarpsDropsAndAges) {
  gate::desc_cache cache(16, 2);
  cache.insert(features_at({30.0f, 120.0f}));
  // Shift everything 20px right on a 128px frame with a 17px border: the
  // 120px entry leaves the usable area and is dropped (not an eviction).
  cache.rebase(geo::mat3::translation(20.0, 0.0), 128, 96, 17);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 0u);
  auto snap = cache.snapshot();
  EXPECT_EQ(snap.keypoints[0].x, 50.0f);
  // max_age = 2: the survivor dies of old age on the third rebase.
  cache.rebase(geo::mat3::identity(), 128, 96, 17);
  EXPECT_EQ(cache.size(), 1u);
  cache.rebase(geo::mat3::identity(), 128, 96, 17);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DescCache, RefillResetsContentsButKeepsEvictionCount) {
  gate::desc_cache cache(2, 10);
  cache.insert(features_at({10.0f, 20.0f, 30.0f}));
  EXPECT_EQ(cache.evictions(), 1u);
  cache.refill(features_at({40.0f}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.snapshot().keypoints[0].x, 40.0f);
}

// ---------------------------------------------------------------------------
// End-to-end: gating levels against the exact pipeline.
// ---------------------------------------------------------------------------

const video::synthetic_video& clip2() {
  static const auto clip = video::make_input(video::input_id::input2, 8);
  return *clip;
}

TEST(GatePipeline, OffIsBitIdenticalToTheDefaultConfig) {
  app::pipeline_config base;
  app::pipeline_config off;
  off.gate.request = static_cast<int>(gate::level::off);
  const auto a = app::summarize(clip2(), base);
  const auto b = app::summarize(clip2(), off);
  EXPECT_EQ(a.panorama, b.panorama);
  EXPECT_EQ(a.stats.frames_gated_skip, 0);
  EXPECT_EQ(b.stats.frames_gated_skip, 0);
  EXPECT_EQ(b.stats.frames_gated_delta, 0);
  EXPECT_EQ(b.stats.keypoints_reused, 0u);
}

TEST(GatePipeline, AllElidesWorkAndStitchesEveryFrame) {
  app::pipeline_config config;
  config.gate.request = static_cast<int>(gate::level::all);
  const auto gated = app::summarize(clip2(), config);
  EXPECT_GT(gated.stats.frames_gated_skip, 0);
  EXPECT_EQ(gated.stats.frames_stitched + gated.stats.frames_discarded +
                gated.stats.frames_dropped_rfd,
            gated.stats.frames_total);
  // Skipped frames still land a placement (they ride the previous one).
  EXPECT_EQ(gated.placements.size(),
            static_cast<std::size_t>(gated.stats.frames_stitched));
}

TEST(GatePipeline, SkipLevelNeverTouchesRoiOrCache) {
  app::pipeline_config config;
  config.gate.request = static_cast<int>(gate::level::skip);
  const auto r = app::summarize(clip2(), config);
  EXPECT_EQ(r.stats.frames_gated_delta, 0);
  EXPECT_EQ(r.stats.keypoints_reused, 0u);
}

TEST(GatePipeline, GatedStateIsInvalidatedByRecovery) {
  // Arm a fault that detonates inside a mid-run frame under full hardening:
  // the recovery retry must invalidate the gated state (counted in
  // run_stats) instead of trusting a classification computed from the
  // corrupted attempt.
  app::pipeline_config config;
  config.gate.request = static_cast<int>(gate::level::all);
  config.hardening.level = resil::hardening_level::full;
  {
    app::pipeline_config profile = config;
    profile.hardening = resil::hardening_config{};
    rt::session session;
    const auto golden = app::summarize(clip2(), profile);
    config.hardening.stage_budgets = resil::derive_stage_budgets(
        session.stats(), clip2().frame_count());
    config.hardening.calibration =
        fault::calibrate_detectors({golden.panorama});
  }
  rt::fault_plan plan;
  plan.cls = rt::reg_class::gpr;
  plan.target = 400000;  // lands mid-run, well past the gate's warmup
  plan.bit = 62;
  rt::session session(plan);
  const auto r = app::summarize(clip2(), config);
  ASSERT_TRUE(session.fired());
  ASSERT_GT(r.recovery.retries, 0u);
  EXPECT_GT(r.stats.gate_invalidations, 0);
}

}  // namespace
}  // namespace vs
