// Additional edge-case coverage across modules: arithmetic operators,
// montage channel promotion, report formatting, instrument bulk paths.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "fault/report.h"
#include "geometry/mat3.h"
#include "image/pixel.h"
#include "perf/model.h"
#include "rt/instrument.h"
#include "stitch/compositor.h"

namespace vs {
namespace {

TEST(Mat3Extra, ScalarMultiplyScalesAllEntries) {
  const geo::mat3 m = geo::mat3::identity() * 3.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Mat3Extra, AdditionIsElementwise) {
  const geo::mat3 sum = geo::mat3::identity() + geo::mat3::identity();
  EXPECT_DOUBLE_EQ(sum(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(sum(0, 2), 0.0);
}

TEST(Mat3Extra, AffineConstructorLaysOutRows) {
  const geo::mat3 m = geo::mat3::affine(1, 2, 3, 4, 5, 6);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 2), 1.0);
}

TEST(MontageExtra, PromotesGrayPanelsIntoRgb) {
  img::image_u8 gray(3, 2, 1, 50);
  img::image_u8 rgb(2, 2, 3);
  rgb.at(0, 0, 0) = 200;
  const auto out = stitch::montage({gray, rgb}, 1);
  EXPECT_EQ(out.channels(), 3);
  EXPECT_EQ(out.at(0, 0, 0), 50);
  EXPECT_EQ(out.at(0, 0, 2), 50);  // replicated gray
  EXPECT_EQ(out.at(4, 0, 0), 200);
}

TEST(ReportExtra, EmptyCampaignCsvIsHeaderOnly) {
  fault::campaign_result result;
  const auto csv = fault::records_to_csv(result);
  EXPECT_EQ(csv,
            "index,cls,target,bit,reg_id,live,fired,outcome,scope,kind,stage,"
            "detections,replica_divergences,retries,frames_degraded\n");
}

TEST(ReportExtra, JsonRatesOfEmptyCampaignAreZero) {
  fault::campaign_result result;
  const auto json = fault::rates_to_json(result, "empty");
  EXPECT_NE(json.find("\"experiments\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"crash_rate\": 0"), std::string::npos);
}

TEST(ReportExtra, ReplicaDivergencesSurviveCsvAndJson) {
  fault::campaign_result result;
  fault::injection_record r;
  r.fired = true;
  r.result = fault::outcome::detected_recovered;
  r.detections = 2;
  r.replica_divergences = 3;
  r.retries = 1;
  result.records.push_back(r);
  result.rates.experiments = 1;
  const auto csv = fault::records_to_csv(result);
  // ...,detections,replica_divergences,retries,frames_degraded
  EXPECT_NE(csv.find(",2,3,1,0\n"), std::string::npos);
  const auto json = fault::rates_to_json(result, "w");
  EXPECT_NE(json.find("\"replica_divergences\": 3"), std::string::npos);
}

TEST(InstrumentExtra, F32FlipWorksOnPromotedDouble) {
  rt::fault_plan plan;
  plan.cls = rt::reg_class::fpr;
  plan.target = 0;
  plan.bit = 63;  // sign
  rt::session s(plan);
  EXPECT_FLOAT_EQ(rt::f32(2.5f), -2.5f);
}

TEST(InstrumentExtra, CtrlCountsAsBranch) {
  rt::session s;
  (void)rt::ctrl(10);
  EXPECT_EQ(s.stats().total(rt::op::branch), 1u);
}

TEST(InstrumentExtra, OpNamesDistinct) {
  EXPECT_STRNE(rt::op_name(rt::op::int_alu), rt::op_name(rt::op::mem));
  EXPECT_STRNE(rt::op_name(rt::op::branch), rt::op_name(rt::op::fp_alu));
}

TEST(PerfExtra, CountersFnTotalSumsKinds) {
  rt::counters c;
  c.by_fn[static_cast<int>(rt::fn::warp)][0] = 3;
  c.by_fn[static_cast<int>(rt::fn::warp)][3] = 4;
  EXPECT_EQ(c.fn_total(rt::fn::warp), 7u);
  EXPECT_EQ(c.gpr_ops(rt::fn::warp), 3u);
  EXPECT_EQ(c.fpr_ops(rt::fn::warp), 4u);
}

TEST(RngExtra, UniformRealWithinRange) {
  rng gen(5);
  for (int i = 0; i < 200; ++i) {
    const double v = gen.uniform_real(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngExtra, UniformDistributionIsRoughlyFlat) {
  rng gen(17);
  int buckets[8] = {};
  constexpr int draws = 8000;
  for (int i = 0; i < draws; ++i) ++buckets[gen.uniform(8)];
  for (int b = 0; b < 8; ++b) {
    EXPECT_NEAR(buckets[b], draws / 8, draws / 8 / 3);
  }
}

TEST(PixelExtra, SaturateFloatOverload) {
  EXPECT_EQ(img::saturate_u8(-1.5f), 0);
  EXPECT_EQ(img::saturate_u8(127.6f), 128);
  EXPECT_EQ(img::saturate_u8(300.0f), 255);
}

}  // namespace
}  // namespace vs
