#include <gtest/gtest.h>

#include "core/error.h"
#include "geometry/warp.h"

namespace vs::geo {
namespace {

img::image_u8 gradient_image(int w, int h) {
  img::image_u8 im(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      im.at(x, y) = static_cast<std::uint8_t>((x * 13 + y * 29) % 256);
    }
  }
  return im;
}

TEST(Rect, UnionCoversBoth) {
  const rect a{0, 0, 4, 4};
  const rect b{2, 3, 4, 4};
  const rect u = rect_union(a, b);
  EXPECT_EQ(u, (rect{0, 0, 6, 7}));
}

TEST(Rect, UnionWithEmptyIsIdentity) {
  const rect a{1, 2, 3, 4};
  EXPECT_EQ(rect_union(a, rect{}), a);
  EXPECT_EQ(rect_union(rect{}, a), a);
}

TEST(Rect, IntersectOverlap) {
  const rect a{0, 0, 4, 4};
  const rect b{2, 2, 4, 4};
  EXPECT_EQ(rect_intersect(a, b), (rect{2, 2, 2, 2}));
}

TEST(Rect, IntersectDisjointIsEmpty) {
  const rect a{0, 0, 2, 2};
  const rect b{5, 5, 2, 2};
  EXPECT_TRUE(rect_intersect(a, b).empty());
}

TEST(Rect, Area) {
  EXPECT_EQ((rect{0, 0, 3, 4}).area(), 12);
  EXPECT_EQ(rect{}.area(), 0);
}

TEST(ProjectedBounds, IdentityCoversImage) {
  const auto bounds = projected_bounds(mat3::identity(), 10, 8);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(*bounds, (rect{0, 0, 10, 8}));
}

TEST(ProjectedBounds, TranslationShifts) {
  const auto bounds = projected_bounds(mat3::translation(5.0, -3.0), 10, 8);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->x0, 5);
  EXPECT_EQ(bounds->y0, -3);
}

TEST(ProjectedBounds, RejectsAbsurdCoordinates) {
  const auto bounds =
      projected_bounds(mat3::translation(1e9, 0.0), 10, 8, 1e7);
  EXPECT_FALSE(bounds.has_value());
}

TEST(ProjectedBounds, RejectsEmptyImage) {
  EXPECT_FALSE(projected_bounds(mat3::identity(), 0, 5).has_value());
}

TEST(Warp, IdentityReproducesInterior) {
  const auto src = gradient_image(16, 12);
  const auto patch =
      warp_perspective(src, mat3::identity(), rect{0, 0, 16, 12});
  // Interior pixels (where the 2x2 stencil fits) must match exactly; the
  // +0.5 pixel-center convention keeps the sample on the source grid.
  int checked = 0;
  for (int y = 0; y < 11; ++y) {
    for (int x = 0; x < 15; ++x) {
      if (patch.valid.at(x, y)) {
        EXPECT_EQ(patch.pixels.at(x, y), src.at(x, y))
            << "at " << x << "," << y;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(Warp, IntegerTranslationShiftsContent) {
  const auto src = gradient_image(16, 12);
  const auto patch =
      warp_perspective(src, mat3::translation(4.0, 2.0), rect{0, 0, 20, 14});
  EXPECT_TRUE(patch.valid.at(6, 5));
  EXPECT_EQ(patch.pixels.at(6, 5), src.at(2, 3));
}

TEST(Warp, PixelsOutsidePreimageAreInvalid) {
  const auto src = gradient_image(8, 8);
  const auto patch =
      warp_perspective(src, mat3::translation(100.0, 0.0), rect{0, 0, 8, 8});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) EXPECT_EQ(patch.valid.at(x, y), 0);
  }
}

TEST(Warp, SingularHomographyProducesNothing) {
  const auto src = gradient_image(8, 8);
  const mat3 singular(1, 0, 0, 2, 0, 0, 0, 0, 1);
  const auto patch = warp_perspective(src, singular, rect{0, 0, 8, 8});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) EXPECT_EQ(patch.valid.at(x, y), 0);
  }
}

TEST(Warp, EmptySourceThrows) {
  EXPECT_THROW(
      (void)warp_perspective(img::image_u8{}, mat3::identity(),
                             rect{0, 0, 4, 4}),
      invalid_argument);
}

TEST(Warp, PatchCarriesDestinationOrigin) {
  const auto src = gradient_image(8, 8);
  const auto patch =
      warp_perspective(src, mat3::identity(), rect{3, -2, 6, 6});
  EXPECT_EQ(patch.x0, 3);
  EXPECT_EQ(patch.y0, -2);
  EXPECT_EQ(patch.pixels.width(), 6);
  EXPECT_EQ(patch.pixels.height(), 6);
}

TEST(Warp, RgbChannelsWarpedIndependently) {
  img::image_u8 src(8, 8, 3);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      src.at(x, y, 0) = static_cast<std::uint8_t>(x * 30);
      src.at(x, y, 1) = static_cast<std::uint8_t>(y * 30);
      src.at(x, y, 2) = 7;
    }
  }
  const auto patch =
      warp_perspective(src, mat3::identity(), rect{0, 0, 8, 8});
  EXPECT_TRUE(patch.valid.at(3, 2));
  EXPECT_EQ(patch.pixels.at(3, 2, 0), src.at(3, 2, 0));
  EXPECT_EQ(patch.pixels.at(3, 2, 1), src.at(3, 2, 1));
  EXPECT_EQ(patch.pixels.at(3, 2, 2), 7);
}

TEST(SampleBilinear, ExactAtGridPoints) {
  const auto src = gradient_image(8, 8);
  const auto v = sample_bilinear(src, 3.0, 4.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, src.at(3, 4));
}

TEST(SampleBilinear, InterpolatesMidpoint) {
  img::image_u8 src(3, 1, 1);
  src.at(0, 0) = 0;
  src.at(1, 0) = 0;  // row y=0 only; need 2 rows for the stencil
  img::image_u8 tall(3, 3, 1);
  tall.at(0, 0) = 0;
  tall.at(1, 0) = 100;
  tall.at(0, 1) = 0;
  tall.at(1, 1) = 100;
  const auto v = sample_bilinear(tall, 0.5, 0.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, 50, 2);  // fixed-point rounding tolerance
}

TEST(SampleBilinear, OutOfDomainReturnsNullopt) {
  const auto src = gradient_image(8, 8);
  EXPECT_FALSE(sample_bilinear(src, -0.5, 2.0).has_value());
  EXPECT_FALSE(sample_bilinear(src, 7.5, 2.0).has_value());
  EXPECT_FALSE(sample_bilinear(src, 2.0, 7.5).has_value());
}

TEST(SampleBilinear, BadChannelReturnsNullopt) {
  const auto src = gradient_image(8, 8);
  EXPECT_FALSE(sample_bilinear(src, 2.0, 2.0, 1).has_value());
}

}  // namespace
}  // namespace vs::geo
