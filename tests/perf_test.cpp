#include <gtest/gtest.h>

#include "perf/profiler.h"

namespace vs::perf {
namespace {

rt::counters make_counters() {
  rt::counters c;
  c.by_fn[static_cast<int>(rt::fn::warp)][static_cast<int>(rt::op::fp_alu)] =
      1000;
  c.by_fn[static_cast<int>(rt::fn::remap)][static_cast<int>(rt::op::mem)] =
      500;
  c.by_fn[static_cast<int>(rt::fn::match)][static_cast<int>(rt::op::int_alu)] =
      400;
  c.by_fn[static_cast<int>(rt::fn::other)][static_cast<int>(rt::op::branch)] =
      100;
  return c;
}

TEST(PerfModel, InstructionCountSumsAllKinds) {
  const auto report = evaluate(make_counters());
  EXPECT_EQ(report.instructions, 2000u);
}

TEST(PerfModel, CyclesWeightedByKind) {
  cost_model model;
  model.int_alu_cpo = 1.0;
  model.mem_cpo = 2.0;
  model.branch_cpo = 3.0;
  model.fp_alu_cpo = 4.0;
  const auto report = evaluate(make_counters(), model);
  EXPECT_DOUBLE_EQ(report.cycles, 400.0 + 1000.0 + 300.0 + 4000.0);
}

TEST(PerfModel, IpcIsInstructionsPerCycle) {
  const auto report = evaluate(make_counters());
  EXPECT_DOUBLE_EQ(report.ipc,
                   static_cast<double>(report.instructions) / report.cycles);
}

TEST(PerfModel, EnergyIsPowerTimesTime) {
  cost_model model;
  const auto report = evaluate(make_counters(), model);
  EXPECT_DOUBLE_EQ(report.energy_joules,
                   report.time_seconds * model.power_watts);
  EXPECT_DOUBLE_EQ(report.time_seconds,
                   report.cycles / (model.frequency_ghz * 1e9));
}

TEST(PerfModel, EmptyCountersProduceZeroes) {
  const auto report = evaluate(rt::counters{});
  EXPECT_EQ(report.instructions, 0u);
  EXPECT_DOUBLE_EQ(report.cycles, 0.0);
  EXPECT_DOUBLE_EQ(report.ipc, 0.0);
}

TEST(PerfModel, NormalizedGuardsZeroBaseline) {
  EXPECT_DOUBLE_EQ(normalized(5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(normalized(5.0, 0.0), 0.0);
}

TEST(Profiler, EntriesSortedByCycles) {
  const auto profile = function_profile(make_counters());
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GE(profile[i - 1].cycles, profile[i].cycles);
  }
}

TEST(Profiler, FractionsSumToOne) {
  const auto profile = function_profile(make_counters());
  double sum = 0.0;
  for (const auto& entry : profile) sum += entry.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Profiler, OmitsIdleFunctions) {
  const auto profile = function_profile(make_counters());
  for (const auto& entry : profile) {
    EXPECT_NE(entry.function, rt::fn::fast_detect);
    EXPECT_GT(entry.ops, 0u);
  }
}

TEST(Profiler, OpencvFractionExcludesDecodeAndOther) {
  const auto profile = function_profile(make_counters());
  const double opencv = opencv_fraction(profile);
  EXPECT_GT(opencv, 0.0);
  EXPECT_LT(opencv, 1.0);  // the `other` branch ops are outside OpenCV
}

TEST(Profiler, WarpFractionCoversBothHotFunctions) {
  cost_model model;
  model.int_alu_cpo = model.mem_cpo = model.branch_cpo = model.fp_alu_cpo =
      1.0;
  const auto profile = function_profile(make_counters(), model);
  EXPECT_NEAR(warp_fraction(profile), 1500.0 / 2000.0, 1e-12);
}

}  // namespace
}  // namespace vs::perf
