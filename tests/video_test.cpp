#include <gtest/gtest.h>

#include "core/error.h"
#include "video/generator.h"

namespace vs::video {
namespace {

TEST(Scene, DeterministicForSameParams) {
  landscape_params params;
  params.width = 128;
  params.height = 96;
  EXPECT_EQ(generate_landscape(params), generate_landscape(params));
}

TEST(Scene, DifferentSeedsDiffer) {
  landscape_params a;
  a.width = 128;
  a.height = 96;
  landscape_params b = a;
  b.seed = a.seed + 1;
  EXPECT_FALSE(generate_landscape(a) == generate_landscape(b));
}

TEST(Scene, HasRequestedDimensions) {
  landscape_params params;
  params.width = 200;
  params.height = 100;
  const auto scene = generate_landscape(params);
  EXPECT_EQ(scene.width(), 200);
  EXPECT_EQ(scene.height(), 100);
  EXPECT_EQ(scene.channels(), 1);
}

TEST(Scene, HasContrast) {
  landscape_params params;
  params.width = 256;
  params.height = 192;
  const auto scene = generate_landscape(params);
  int lo = 255;
  int hi = 0;
  for (std::size_t i = 0; i < scene.size(); ++i) {
    lo = std::min<int>(lo, scene[i]);
    hi = std::max<int>(hi, scene[i]);
  }
  EXPECT_GT(hi - lo, 120);  // speckles/buildings give strong contrast
}

TEST(Scene, ValueNoiseInRange) {
  for (int i = 0; i < 200; ++i) {
    const double v = value_noise(9, i * 3.7, i * 1.3, 4);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 255.0);
  }
}

TEST(Path, GeneratesRequestedFrames) {
  const auto path = generate_path(input2_path(25), 1024, 768, 1);
  EXPECT_EQ(path.size(), 25u);
}

TEST(Path, StaysInsideMargins) {
  path_params params = input1_path(200);
  const auto path = generate_path(params, 1024, 768, 7);
  for (const auto& p : path) {
    EXPECT_GE(p.x, params.margin - 1.0);
    EXPECT_LE(p.x, 1024 - params.margin + 1.0);
    EXPECT_GE(p.y, params.margin - 1.0);
    EXPECT_LE(p.y, 768 - params.margin + 1.0);
  }
}

TEST(Path, Input1HasViewJumps) {
  const auto path = generate_path(input1_path(60), 1024, 768, 3);
  double max_step = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    max_step = std::max(max_step, geo::distance({path[i].x, path[i].y},
                                                {path[i - 1].x, path[i - 1].y}));
  }
  EXPECT_GT(max_step, 100.0);  // teleporting scene cuts
}

TEST(Path, Input2IsSmooth) {
  const auto path = generate_path(input2_path(60), 1024, 768, 3);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LT(geo::distance({path[i].x, path[i].y},
                            {path[i - 1].x, path[i - 1].y}),
              30.0);
  }
}

TEST(Path, RejectsNonPositiveFrames) {
  EXPECT_THROW((void)generate_path(path_params{.frames = 0}, 512, 512, 1),
               invalid_argument);
}

TEST(Camera, PoseMapsFrameCenterToPosition) {
  pose p;
  p.x = 100.0;
  p.y = 50.0;
  p.angle = 0.7;
  p.zoom = 1.2;
  const auto m = pose_to_scene(p, 64, 48);
  const auto center = m.apply({32.0, 24.0});
  EXPECT_NEAR(center.x, 100.0, 1e-9);
  EXPECT_NEAR(center.y, 50.0, 1e-9);
}

TEST(Camera, ZoomScalesFootprint) {
  pose p;
  p.x = 0.0;
  p.y = 0.0;
  p.zoom = 2.0;
  const auto m = pose_to_scene(p, 64, 48);
  const auto a = m.apply({0.0, 24.0});
  const auto b = m.apply({64.0, 24.0});
  EXPECT_NEAR(geo::distance(a, b), 128.0, 1e-9);
}

TEST(SyntheticVideo, FramesAreDeterministic) {
  const auto clip = make_input(input_id::input2, 6);
  EXPECT_EQ(clip->frame(3), clip->frame(3));
}

TEST(SyntheticVideo, FrameDimensionsMatch) {
  const auto clip = make_input(input_id::input1, 4);
  const auto frame = clip->frame(0);
  EXPECT_EQ(frame.width(), clip->frame_width());
  EXPECT_EQ(frame.height(), clip->frame_height());
  EXPECT_EQ(frame.channels(), 1);
  EXPECT_EQ(clip->frame_count(), 4);
}

TEST(SyntheticVideo, FrameIndexValidated) {
  const auto clip = make_input(input_id::input2, 4);
  EXPECT_THROW((void)clip->frame(-1), invalid_argument);
  EXPECT_THROW((void)clip->frame(4), invalid_argument);
}

TEST(SyntheticVideo, ConsecutiveFramesOverlapButDiffer) {
  const auto clip = make_input(input_id::input2, 6);
  const auto a = clip->frame(0);
  const auto b = clip->frame(1);
  EXPECT_FALSE(a == b);
  // Not wildly different either: the camera moved a few pixels.
  EXPECT_LT(img::mean_abs_diff(a, b), 80.0);
}

TEST(SyntheticVideo, ReplicasChangeThePath) {
  const auto a = make_input(input_id::input2, 5, 0);
  const auto b = make_input(input_id::input2, 5, 1);
  EXPECT_FALSE(a->frame(2) == b->frame(2));
}

TEST(SyntheticVideo, Input1HasLargerViewChangesThanInput2) {
  // Property behind the whole evaluation: Input 1's view changes (fast
  // camera + scene cuts) dwarf Input 2's smooth drift.  Compare per-frame
  // camera displacement, normalized by frame size.
  const auto clip1 = make_input(input_id::input1, 16);
  const auto clip2 = make_input(input_id::input2, 16);
  auto max_step = [](const synthetic_video& clip) {
    double worst = 0.0;
    const auto& path = clip.path();
    for (std::size_t i = 1; i < path.size(); ++i) {
      worst = std::max(worst, geo::distance({path[i].x, path[i].y},
                                            {path[i - 1].x, path[i - 1].y}));
    }
    return worst;
  };
  EXPECT_GT(max_step(*clip1), max_step(*clip2) * 2.0);
}

TEST(SyntheticVideo, RejectsBadStability) {
  clip_params params;
  params.clutter_stability = 1.5;
  EXPECT_THROW((void)synthetic_video(params), invalid_argument);
}

TEST(FrameList, ServesStoredFrames) {
  std::vector<img::image_u8> frames(3, img::image_u8(8, 6, 1, 9));
  frames[1].at(0, 0) = 42;
  frame_list list(frames);
  EXPECT_EQ(list.frame_count(), 3);
  EXPECT_EQ(list.frame_width(), 8);
  EXPECT_EQ(list.frame(1).at(0, 0), 42);
}

TEST(FrameList, RejectsEmptyAndInconsistent) {
  EXPECT_THROW((void)frame_list(std::vector<img::image_u8>{}),
               invalid_argument);
  std::vector<img::image_u8> bad;
  bad.emplace_back(8, 6, 1);
  bad.emplace_back(9, 6, 1);
  EXPECT_THROW((void)frame_list(std::move(bad)), invalid_argument);
}

}  // namespace
}  // namespace vs::video
