#include <gtest/gtest.h>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "quality/metric.h"
#include "quality/sdc.h"

namespace vs::quality {
namespace {

img::image_u8 textured(int w, int h, std::uint64_t salt = 0) {
  // Hash-based texture: aperiodic, so translation searches have a unique
  // optimum (a linear ramp pattern would alias).
  img::image_u8 im(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::uint64_t state = salt * 1315423911ull +
                            static_cast<std::uint64_t>(y) * 2654435761ull +
                            static_cast<std::uint64_t>(x);
      im.at(x, y) = static_cast<std::uint8_t>(splitmix64(state) % 200 + 30);
    }
  }
  return im;
}

TEST(Metric, IdenticalImagesScoreZero) {
  const auto im = textured(32, 24);
  const auto result = compare_images(im, im);
  EXPECT_DOUBLE_EQ(result.relative_l2_norm, 0.0);
  ASSERT_TRUE(result.ed.has_value());
  EXPECT_EQ(*result.ed, 0);
  EXPECT_FALSE(result.egregious);
}

TEST(Metric, SmallPixelDifferencesBelowThresholdIgnored) {
  const auto golden = textured(32, 24);
  auto faulty = golden;
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    faulty[i] = static_cast<std::uint8_t>(faulty[i] + 20);  // all < 128 diff
  }
  EXPECT_DOUBLE_EQ(relative_l2_norm(golden, faulty, 128), 0.0);
}

TEST(Metric, LargeDifferencesCounted) {
  const auto golden = textured(16, 16);
  auto faulty = golden;
  // Push the pixel to whichever extreme is >128 away from its value.
  faulty.at(5, 5) = golden.at(5, 5) < 128 ? 255 : 0;
  EXPECT_GT(relative_l2_norm(golden, faulty, 128), 0.0);
}

TEST(Metric, ThresholdIsStrict) {
  img::image_u8 golden(2, 1, 1, 0);
  img::image_u8 faulty(2, 1, 1, 0);
  faulty.at(0, 0) = 128;  // exactly the threshold: not counted
  EXPECT_DOUBLE_EQ(relative_l2_norm(golden, faulty, 128), 0.0);
  faulty.at(0, 0) = 129;
  EXPECT_GT(relative_l2_norm(golden, faulty, 128), 0.0);
}

TEST(Metric, EdIsFloorOfNorm) {
  // Construct a case with a known norm: golden all 100, faulty differs in
  // k pixels by 255 -> norm = 100 * sqrt(k * 255^2) / sqrt(n * 100^2).
  img::image_u8 golden(10, 10, 1, 100);
  auto faulty = golden;
  for (int i = 0; i < 3; ++i) faulty.at(i, 0) = 0;  // diff 100 < 128: ignored
  auto result = compare_images(golden, faulty, metric_config{
                                                   .align_search_radius = 0});
  EXPECT_EQ(*result.ed, 0);

  faulty = golden;
  faulty.at(0, 0) = 255;
  faulty.at(1, 0) = 255;  // two diffs of 155
  const double expected =
      100.0 * std::sqrt(2.0 * 155 * 155) / std::sqrt(100.0 * 100 * 100);
  result = compare_images(golden, faulty,
                          metric_config{.align_search_radius = 0});
  EXPECT_NEAR(result.relative_l2_norm, expected, 1e-9);
  EXPECT_EQ(*result.ed, static_cast<int>(expected));
}

TEST(Metric, EgregiousAboveHundred) {
  img::image_u8 golden(4, 4, 1, 10);
  img::image_u8 faulty(4, 4, 1, 240);
  const auto result = compare_images(golden, faulty,
                                     metric_config{.align_search_radius = 0});
  EXPECT_TRUE(result.egregious);
  EXPECT_FALSE(result.ed.has_value());
}

TEST(Metric, AlignmentRemovesPureTranslation) {
  const auto golden = textured(48, 32);
  // Faulty = golden shifted by (3, 2): hugely different pixel-wise, but the
  // corrective alignment must recover it almost perfectly.
  img::image_u8 faulty(48, 32, 1);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 48; ++x) {
      faulty.at(x, y) = golden.sample_clamped(x + 3, y + 2);
    }
  }
  const auto unaligned = compare_images(golden, faulty,
                                        metric_config{.align_search_radius = 0});
  const auto aligned = compare_images(golden, faulty);
  EXPECT_LT(aligned.relative_l2_norm, unaligned.relative_l2_norm);
  // f(x) == g(x + 3): sampling f at x - 3 realigns it with g.
  EXPECT_EQ(aligned.align_dx, -3);
  EXPECT_EQ(aligned.align_dy, -2);
}

TEST(Metric, DifferentSizesArePadded) {
  const auto golden = textured(30, 20);
  const auto faulty = textured(24, 26);
  const auto result = compare_images(golden, faulty);
  EXPECT_GE(result.relative_l2_norm, 0.0);  // no throw, sane result
}

TEST(Metric, EmptyImagesCompareEqual) {
  const auto result = compare_images(img::image_u8{}, img::image_u8{});
  EXPECT_EQ(*result.ed, 0);
}

TEST(Metric, PadToExtends) {
  const auto im = textured(4, 3);
  const auto padded = pad_to(im, 6, 5);
  EXPECT_EQ(padded.width(), 6);
  EXPECT_EQ(padded.height(), 5);
  EXPECT_EQ(padded.at(2, 2), im.at(2, 2));
  EXPECT_EQ(padded.at(5, 4), 0);
}

TEST(Metric, PadToRejectsShrinking) {
  EXPECT_THROW((void)pad_to(textured(4, 4), 3, 4), invalid_argument);
}

TEST(Metric, AbsdiffImage) {
  img::image_u8 a(2, 1, 1, 10);
  img::image_u8 b(2, 1, 1, 250);
  const auto diff = absdiff_image(a, b);
  EXPECT_EQ(diff.at(0, 0), 240);
}

TEST(Metric, ThresholdDiffImageBinarizes) {
  img::image_u8 a(2, 1, 1, 0);
  img::image_u8 b(2, 1, 1, 0);
  b.at(0, 0) = 200;
  b.at(1, 0) = 50;
  const auto t = threshold_diff_image(a, b, 128);
  EXPECT_EQ(t.at(0, 0), 255);
  EXPECT_EQ(t.at(1, 0), 0);
}

TEST(Metric, RelativeNormShapeMismatchThrows) {
  EXPECT_THROW((void)relative_l2_norm(textured(4, 4), textured(5, 4), 128),
               invalid_argument);
}

TEST(EdCdf, CumulativePercentages) {
  std::vector<sdc_quality> sdcs;
  for (int ed : {0, 0, 3, 7, 7, 12}) {
    quality_result q;
    q.relative_l2_norm = ed + 0.5;
    q.ed = ed;
    sdcs.push_back({q});
  }
  const auto cdf = build_ed_cdf(sdcs, 20);
  EXPECT_EQ(cdf.total_sdcs, 6u);
  EXPECT_NEAR(cdf.percent_at(0), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(cdf.percent_at(7), 100.0 * 5 / 6, 1e-9);
  EXPECT_NEAR(cdf.percent_at(20), 100.0, 1e-9);
  EXPECT_EQ(cdf.ed_for_percent(80.0).value(), 7);
}

TEST(EdCdf, EgregiousSdcsNeverReachHundred) {
  std::vector<sdc_quality> sdcs;
  quality_result benign;
  benign.ed = 1;
  quality_result egregious;
  egregious.egregious = true;
  sdcs.push_back({benign});
  sdcs.push_back({egregious});
  const auto cdf = build_ed_cdf(sdcs, 10);
  EXPECT_EQ(cdf.egregious, 1u);
  EXPECT_NEAR(cdf.percent_at(10), 50.0, 1e-9);
  EXPECT_FALSE(cdf.ed_for_percent(90.0).has_value());
}

TEST(EdCdf, EmptyInput) {
  const auto cdf = build_ed_cdf({}, 10);
  EXPECT_EQ(cdf.total_sdcs, 0u);
  EXPECT_DOUBLE_EQ(cdf.percent_at(5), 0.0);
}

TEST(EdCdf, NegativeMaxEdThrows) {
  EXPECT_THROW((void)build_ed_cdf({}, -1), invalid_argument);
}

}  // namespace
}  // namespace vs::quality
