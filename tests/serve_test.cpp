// End-to-end tests of the summarization service: byte-identity against
// one-shot app::summarize at concurrency, admission control (backpressure,
// draining, deadlines, priority), pool-budget ceilings, stats, and a
// garbage-spraying client that must not hurt anyone.
#include "serve/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "app/pipeline.h"
#include "fault/wire.h"
#include "serve/client.h"
#include "serve/job_journal.h"
#include "serve/respawn.h"
#include "supervise/journal.h"
#include "video/generator.h"

namespace vs::serve {
namespace {

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/vs_serve_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// A server on its own thread; drains and joins on destruction.
class server_fixture {
 public:
  explicit server_fixture(server_config config) : server_(std::move(config)) {
    server_.start();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~server_fixture() { shutdown(); }

  void shutdown() {
    if (thread_.joinable()) {
      server_.request_drain();
      thread_.join();
    }
  }

  server& get() { return server_; }

 private:
  server server_;
  std::thread thread_;
};

server_config quick_config(const std::string& socket_path) {
  server_config config;
  config.socket_path = socket_path;
  config.queue_capacity = 16;
  config.runners = 2;
  config.pool_budget = 2;
  return config;
}

app::summary_result reference_run(const job_request& request) {
  const auto source = video::make_input(request.input, request.frames);
  app::pipeline_config config;
  config.approx.alg = request.alg;
  config.hardening.level = request.hardening;
  return app::summarize(*source, config);
}

TEST(Serve, ServedMontageIsByteIdenticalToOneShotSummarize) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));
  client c(path, 120.0);

  for (const auto input : {video::input_id::input1, video::input_id::input2}) {
    for (const auto alg : {app::algorithm::vs, app::algorithm::vs_rfd,
                           app::algorithm::vs_kds, app::algorithm::vs_sm}) {
      job_request request;
      request.input = input;
      request.alg = alg;
      request.frames = 8;
      const auto outcome = c.submit(request);
      ASSERT_TRUE(outcome.accepted.has_value());
      ASSERT_TRUE(outcome.complete.has_value());

      const auto reference = reference_run(request);
      EXPECT_TRUE(outcome.complete->montage == reference.panorama)
          << "montage diverged for alg " << static_cast<int>(alg);
      EXPECT_EQ(outcome.complete->panorama_hash,
                fault::wire::hash_image(reference.panorama));
      EXPECT_EQ(outcome.complete->stats.frames_stitched,
                reference.stats.frames_stitched);
      EXPECT_EQ(outcome.complete->stats.mini_panoramas,
                reference.stats.mini_panoramas);
    }
  }
}

TEST(Serve, StreamedMiniPanoramasMatchTheResultInOrder) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));
  client c(path, 120.0);

  job_request request;
  request.input = video::input_id::input1;
  request.alg = app::algorithm::vs;
  request.frames = 10;
  std::vector<int> streamed_indices;
  const auto outcome = c.submit(request, [&](const panorama_msg& m) {
    streamed_indices.push_back(m.index);
  });
  ASSERT_TRUE(outcome.complete.has_value());

  const auto reference = reference_run(request);
  ASSERT_EQ(outcome.panoramas.size(), reference.mini_panoramas.size());
  for (std::size_t i = 0; i < outcome.panoramas.size(); ++i) {
    EXPECT_EQ(outcome.panoramas[i].index, static_cast<int>(i));
    EXPECT_TRUE(outcome.panoramas[i].image == reference.mini_panoramas[i]);
  }
  EXPECT_EQ(streamed_indices.size(), outcome.panoramas.size());
}

TEST(Serve, HardenedJobsMatchTheirHardenedReference) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));
  client c(path, 120.0);

  job_request request;
  request.input = video::input_id::input2;
  request.alg = app::algorithm::vs;
  request.frames = 8;
  request.hardening = resil::hardening_level::cfcss;
  const auto outcome = c.submit(request);
  ASSERT_TRUE(outcome.complete.has_value());
  const auto reference = reference_run(request);
  EXPECT_TRUE(outcome.complete->montage == reference.panorama);
}

TEST(Serve, ByteIdenticalUnderConcurrentMixedClients) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<char> match(kClients, 0);  // char: vector<bool> bits race
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      job_request request;
      request.input = i % 2 == 0 ? video::input_id::input1
                                 : video::input_id::input2;
      request.alg = i % 2 == 0 ? app::algorithm::vs_rfd
                               : app::algorithm::vs_sm;
      request.frames = 8;
      client c(path, 120.0);
      const auto outcome = c.submit(request);
      if (!outcome.complete) return;
      match[i] =
          outcome.complete->montage == reference_run(request).panorama ? 1
                                                                       : 0;
    });
  }
  for (auto& t : clients) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(match[i]) << "client " << i;
  }

  // The shared-budget acceptance bound: 4 concurrent jobs never leased
  // more slots than the configured budget of 2.
  const auto stats = fixture.get().stats();
  EXPECT_LE(stats.pool_peak_in_use, stats.pool_budget);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients));
}

TEST(Serve, IsolatedJobsAreByteIdenticalToo) {
  const std::string path = unique_socket_path();
  auto config = quick_config(path);
  config.isolate = true;
  config.job_timeout_s = 120.0;
  server_fixture fixture(std::move(config));
  client c(path, 120.0);

  job_request request;
  request.input = video::input_id::input1;
  request.alg = app::algorithm::vs_kds;
  request.frames = 8;
  const auto outcome = c.submit(request);
  ASSERT_TRUE(outcome.complete.has_value());
  EXPECT_TRUE(outcome.complete->montage == reference_run(request).panorama);
}

TEST(Serve, FullQueueRejectsWithRetryAfterHint) {
  const std::string path = unique_socket_path();
  server_config config;
  config.socket_path = path;
  config.queue_capacity = 1;
  config.runners = 1;
  config.pool_budget = 1;
  server_fixture fixture(std::move(config));

  // Occupy the single runner with a long job, then flood it with four
  // concurrent quick submits: with capacity 1 only one can be queued while
  // the runner is busy, so at least one rejection must appear, and every
  // queue_full rejection must carry a retry hint.
  std::thread busy([&] {
    job_request request;
    request.frames = 60;
    client c(path, 120.0);
    (void)c.submit(request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::atomic<int> rejections{0};
  std::atomic<int> missing_hints{0};
  std::vector<std::thread> flood;
  for (int i = 0; i < 4; ++i) {
    flood.emplace_back([&] {
      job_request request;
      request.frames = 8;
      client c(path, 120.0);
      const auto outcome = c.submit(request);
      if (outcome.rejected &&
          outcome.rejected->reason == reject_reason::queue_full) {
        ++rejections;
        if (outcome.rejected->retry_after_ms == 0) ++missing_hints;
      }
    });
  }
  for (auto& t : flood) t.join();
  busy.join();
  EXPECT_GT(rejections.load(), 0);
  EXPECT_EQ(missing_hints.load(), 0);
  EXPECT_GT(fixture.get().stats().rejected, 0u);
}

TEST(Serve, DrainingServerRejectsNewWorkButFinishesAcceptedWork) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));

  // A job accepted before the drain signal must complete normally.
  std::thread accepted_job([&] {
    job_request request;
    request.frames = 20;
    client c(path, 120.0);
    const auto outcome = c.submit(request);
    EXPECT_TRUE(outcome.complete.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture.get().request_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // New submissions during the drain are refused with the right reason
  // (the server may already have fully drained and closed the socket, in
  // which case connect itself fails — also a correct refusal).
  job_request late;
  late.frames = 8;
  client c(path, 120.0);
  try {
    const auto outcome = c.submit(late);
    ASSERT_TRUE(outcome.rejected.has_value());
    EXPECT_EQ(outcome.rejected->reason, reject_reason::draining);
  } catch (const io_error&) {
  }
  accepted_job.join();
}

TEST(Serve, QueuedDeadlineExpiryFailsWithHangTaxonomy) {
  const std::string path = unique_socket_path();
  server_config config;
  config.socket_path = path;
  config.queue_capacity = 8;
  config.runners = 1;
  config.pool_budget = 1;
  server_fixture fixture(std::move(config));

  // Wedge the single runner, then queue a job whose deadline lapses while
  // it waits.
  std::thread busy([&] {
    job_request request;
    request.frames = 60;
    client c(path, 120.0);
    (void)c.submit(request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  job_request doomed;
  doomed.frames = 8;
  doomed.deadline_ms = 1;
  client c(path, 120.0);
  const auto outcome = c.submit(doomed);
  busy.join();
  if (outcome.failed) {
    EXPECT_EQ(outcome.failed->failure, fault::outcome::hang);
  } else {
    // The busy job can finish first on a fast machine; then the deadline
    // was met and completing was correct.
    EXPECT_TRUE(outcome.complete.has_value());
  }
}

TEST(Serve, InteractiveJobsOvertakeBatchJobsInTheQueue) {
  const std::string path = unique_socket_path();
  server_config config;
  config.socket_path = path;
  config.queue_capacity = 8;
  config.runners = 1;
  config.pool_budget = 1;
  server_fixture fixture(std::move(config));

  // Wedge the runner so both probes are queued, then: batch first,
  // interactive second.  The interactive one must finish first.
  std::thread busy([&] {
    job_request request;
    request.frames = 60;
    client c(path, 120.0);
    (void)c.submit(request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::atomic<int> finish_order{0};
  std::atomic<int> batch_finished_at{-1};
  std::atomic<int> interactive_finished_at{-1};
  std::thread batch([&] {
    job_request request;
    request.frames = 8;
    request.priority = priority_class::batch;
    client c(path, 120.0);
    if (c.submit(request).complete) batch_finished_at = finish_order++;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread interactive([&] {
    job_request request;
    request.frames = 8;
    request.priority = priority_class::interactive;
    client c(path, 120.0);
    if (c.submit(request).complete) interactive_finished_at = finish_order++;
  });

  busy.join();
  batch.join();
  interactive.join();
  ASSERT_GE(batch_finished_at.load(), 0);
  ASSERT_GE(interactive_finished_at.load(), 0);
  EXPECT_LT(interactive_finished_at.load(), batch_finished_at.load());
}

TEST(Serve, StatsReflectServedWork) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));
  client c(path, 120.0);

  job_request request;
  request.frames = 8;
  ASSERT_TRUE(c.submit(request).complete.has_value());
  ASSERT_TRUE(c.submit(request).complete.has_value());

  const auto wire_stats = c.stats();
  EXPECT_EQ(wire_stats.completed, 2u);
  EXPECT_EQ(wire_stats.failed, 0u);
  EXPECT_EQ(wire_stats.latency.count, 2u);
  EXPECT_GT(wire_stats.latency.p50_ms, 0.0);
  EXPECT_GE(wire_stats.latency.max_ms, wire_stats.latency.p50_ms);
  EXPECT_FALSE(wire_stats.draining);

  const auto local = fixture.get().stats();
  EXPECT_EQ(local.completed, wire_stats.completed);
}

TEST(Serve, GarbageSprayingClientDoesNotDisturbTheService) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));

  // Connect raw and spray junk (including a torn frame prefix), then
  // vanish.  The server must drop us without crashing.
  {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string junk = "\x56\x53\x46\x31 not actually a frame \xFF\xFF";
    (void)::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL);
    const std::string torn = encode_frame(2, "torn").substr(0, 10);
    (void)::send(fd, torn.data(), torn.size(), MSG_NOSIGNAL);
    ::close(fd);
  }

  // A well-formed job right after must be served normally.
  client c(path, 120.0);
  job_request request;
  request.frames = 8;
  const auto outcome = c.submit(request);
  ASSERT_TRUE(outcome.complete.has_value());
  EXPECT_TRUE(outcome.complete->montage == reference_run(request).panorama);
}

TEST(Serve, MalformedSubmitPayloadIsRejectedAsBadRequest) {
  const std::string path = unique_socket_path();
  server_fixture fixture(quick_config(path));

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // A validly framed submit whose payload fails field validation
  // (algorithm code 99).
  const std::string bad = encode_frame(
      static_cast<std::uint16_t>(msg_type::submit), "J 0 99 8 0 1 0 0");
  ASSERT_EQ(::send(fd, bad.data(), bad.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bad.size()));

  frame_decoder decoder;
  char buf[4096];
  std::optional<frame> reply;
  while (!reply) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    decoder.feed(buf, static_cast<std::size_t>(n));
    reply = decoder.next();
  }
  ::close(fd);
  ASSERT_EQ(reply->type, static_cast<std::uint16_t>(msg_type::rejected));
  const auto rejected = parse_rejected(reply->payload);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->reason, reject_reason::bad_request);
}

// --- crash-only serving: journal replay, dedupe, drain deferral ---

bool wait_for_path(const std::string& path, double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (::access(path.c_str(), F_OK) == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// A supervised server (respawn_supervisor on its own thread); SIGKILLing
/// the child via kill() exercises the full crash -> respawn -> replay path.
class supervised_fixture {
 public:
  explicit supervised_fixture(server_config config) {
    config_.server = std::move(config);
    config_.stable_uptime_s = 0.2;
    config_.max_consecutive_failures = 20;
    config_.backoff.base_delay_ms = 10.0;
    config_.backoff.max_delay_ms = 100.0;
    supervisor_ = std::make_unique<respawn_supervisor>(config_);
    thread_ = std::thread([this] { (void)supervisor_->run(); });
  }
  ~supervised_fixture() { shutdown(); }

  void shutdown() {
    if (thread_.joinable()) {
      supervisor_->request_shutdown();
      thread_.join();
    }
  }

  respawn_supervisor& get() { return *supervisor_; }

 private:
  respawn_config config_;
  std::unique_ptr<respawn_supervisor> supervisor_;
  std::thread thread_;
};

TEST(ServeRestart, SigkillWithQueuedJobsReplaysByteIdentically) {
  const std::string path = unique_socket_path();
  const std::string journal = path + ".journal";
  auto config = quick_config(path);
  config.journal_path = journal;
  config.runners = 1;  // serialize jobs so the kill lands on a real queue
  supervised_fixture fixture(std::move(config));
  ASSERT_TRUE(wait_for_path(path, 10.0));

  constexpr int kJobs = 4;
  std::vector<std::thread> clients;
  std::vector<char> ok(kJobs, 0);
  std::atomic<int> reconnected{0};
  for (int i = 0; i < kJobs; ++i) {
    clients.emplace_back([&, i] {
      job_request request;
      request.input = i % 2 == 0 ? video::input_id::input1
                                 : video::input_id::input2;
      request.alg = i % 2 == 0 ? app::algorithm::vs : app::algorithm::vs_rfd;
      request.frames = 8;
      request.client_key = "restart-" + std::to_string(i);
      resilient_policy policy;
      policy.backoff.max_attempts = 12;
      policy.backoff.base_delay_ms = 20.0;
      policy.backoff.max_delay_ms = 300.0;
      client c(path, 120.0);
      const auto outcome = c.submit_resilient(request, policy);
      if (!outcome.complete) return;
      if (outcome.reconnects > 0) ++reconnected;
      ok[i] = outcome.complete->montage == reference_run(request).panorama
                  ? 1
                  : 0;
    });
  }

  // Kill once the burst is admitted and the first job is mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  fixture.get().kill_child();

  for (auto& t : clients) t.join();
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_TRUE(ok[i]) << "job " << i
                       << " lost or diverged across the restart";
  }

  fixture.shutdown();
  std::remove(journal.c_str());
}

TEST(ServeRestart, DuplicateClientKeyExecutesOnce) {
  const std::string path = unique_socket_path();
  const std::string journal = path + ".journal";
  auto config = quick_config(path);
  config.journal_path = journal;
  server_fixture fixture(std::move(config));
  client c(path, 120.0);

  job_request request;
  request.input = video::input_id::input1;
  request.alg = app::algorithm::vs;
  request.frames = 8;
  request.client_key = "dup-key";
  const auto first = c.submit(request);
  ASSERT_TRUE(first.complete.has_value());

  // Same key again: the server adopts the settled sink and replays the
  // buffered stream — no second execution.
  const auto second = c.submit(request);
  ASSERT_TRUE(second.complete.has_value());
  EXPECT_TRUE(second.complete->montage == first.complete->montage);
  EXPECT_EQ(second.complete->panorama_hash, first.complete->panorama_hash);
  EXPECT_EQ(fixture.get().stats().completed, 1u);

  fixture.shutdown();
  std::remove(journal.c_str());
}

TEST(ServeRestart, ReplayOfCompletedJobIsANoOp) {
  const std::string path = unique_socket_path();
  const std::string journal = path + ".journal";

  // Hand-write a journal claiming job 1 accepted AND settled, job 2 only
  // accepted: a correct boot replays exactly job 2.
  job_request req;
  req.input = video::input_id::input1;
  req.alg = app::algorithm::vs;
  req.frames = 8;
  {
    supervise::journal_writer writer;
    writer.open(journal, /*truncate=*/true);
    writer.append(job_journal_header_payload("serve"));
    req.client_key = "done-already";
    writer.append(accepted_payload(1, req));
    writer.append(settled_payload(1, true, fault::outcome::masked, 0x1234));
    req.client_key = "still-pending";
    writer.append(accepted_payload(2, req));
  }

  auto config = quick_config(path);
  config.journal_path = journal;
  server_fixture fixture(std::move(config));
  client c(path, 120.0);

  EXPECT_EQ(c.stats().replayed, 1u);
  // The replayed job runs to completion without any client attached...
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline &&
         c.stats().completed < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto stats = c.stats();
  EXPECT_EQ(stats.completed, 1u);  // job 2 only; job 1 never re-executed
  EXPECT_EQ(stats.journal_depth, 0u);

  // ...and a client showing up late under the pending key adopts the
  // finished result instead of triggering a second execution.
  req.client_key = "still-pending";
  const auto adopted = c.submit(req);
  ASSERT_TRUE(adopted.complete.has_value());
  EXPECT_TRUE(adopted.complete->montage == reference_run(req).panorama);
  EXPECT_EQ(fixture.get().stats().completed, 1u);

  fixture.shutdown();
  std::remove(journal.c_str());
}

TEST(ServeRestart, DrainDefersRejectedJobsToTheJournal) {
  const std::string path = unique_socket_path();
  const std::string journal = path + ".journal";
  {
    server_config config;
    config.socket_path = path;
    config.journal_path = journal;
    config.queue_capacity = 8;
    config.runners = 1;
    config.pool_budget = 1;
    server_fixture fixture(std::move(config));

    // Wedge the runner so the drain has something to wait for, then ask
    // for the drain and submit a latecomer: it must be rejected with
    // `draining` AND journaled as a deferred G line.
    std::thread busy([&] {
      job_request request;
      request.frames = 40;
      client c(path, 120.0);
      (void)c.submit(request);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    fixture.get().request_drain();

    job_request late;
    late.input = video::input_id::input2;
    late.frames = 8;
    late.client_key = "deferred-job";
    client c(path, 120.0);
    try {
      const auto outcome = c.submit(late);
      ASSERT_TRUE(outcome.rejected.has_value());
      EXPECT_EQ(outcome.rejected->reason, reject_reason::draining);
    } catch (const io_error&) {
      // Drain finished first and the socket is gone: no deferral to test.
      busy.join();
      fixture.shutdown();
      std::remove(journal.c_str());
      GTEST_SKIP() << "server drained before the late submit connected";
    }
    busy.join();
    fixture.shutdown();
  }

  const auto state = load_job_journal(journal);
  ASSERT_EQ(state.deferred.size(), 1u);
  EXPECT_EQ(state.deferred[0].client_key, "deferred-job");

  // Next boot re-admits the deferred job and completes it.
  auto config = quick_config(path);
  config.journal_path = journal;
  server_fixture fixture(std::move(config));
  client c(path, 120.0);
  EXPECT_EQ(c.stats().replayed, 1u);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline &&
         c.stats().completed < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(c.stats().completed, 1u);
  fixture.shutdown();
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace vs::serve
