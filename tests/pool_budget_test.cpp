// Shared worker-slot budget (core/pool_budget.h): grant arithmetic, FIFO
// fairness, RAII release, and — the invariant the serving and fleet layers
// depend on — a live-thread ceiling under concurrent leaseholders.
#include "core/pool_budget.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace vs::core {
namespace {

TEST(PoolArbiter, ExplicitBudgetIsRespected) {
  pool_arbiter arbiter(3);
  EXPECT_EQ(arbiter.budget(), 3u);
  EXPECT_EQ(arbiter.in_use(), 0u);
}

TEST(PoolArbiter, AutoBudgetIsAtLeastOne) {
  pool_arbiter arbiter(0);
  EXPECT_GE(arbiter.budget(), 1u);
}

TEST(PoolArbiter, GrantsUpToMaxWhenFree) {
  pool_arbiter arbiter(4);
  pool_lease lease = arbiter.acquire(1, 3);
  EXPECT_TRUE(static_cast<bool>(lease));
  EXPECT_EQ(lease.width(), 3u);
  EXPECT_EQ(arbiter.in_use(), 3u);
}

TEST(PoolArbiter, GrantClampsToFreeSlots) {
  pool_arbiter arbiter(4);
  pool_lease big = arbiter.acquire(1, 3);
  pool_lease rest = arbiter.acquire(1, 4);  // only 1 slot left
  EXPECT_EQ(rest.width(), 1u);
  EXPECT_EQ(arbiter.in_use(), 4u);
}

TEST(PoolArbiter, RequestsClampToBudget) {
  pool_arbiter arbiter(2);
  pool_lease lease = arbiter.acquire(8, 16);  // both above budget
  EXPECT_EQ(lease.width(), 2u);
}

TEST(PoolArbiter, ReleaseReturnsSlots) {
  pool_arbiter arbiter(2);
  {
    pool_lease lease = arbiter.acquire(1, 2);
    EXPECT_EQ(arbiter.in_use(), 2u);
  }
  EXPECT_EQ(arbiter.in_use(), 0u);
  EXPECT_EQ(arbiter.peak_in_use(), 2u);  // high-water survives release
}

TEST(PoolArbiter, MoveTransfersOwnership) {
  pool_arbiter arbiter(2);
  pool_lease a = arbiter.acquire(1, 2);
  pool_lease b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(b.width(), 2u);
  EXPECT_EQ(arbiter.in_use(), 2u);
  b.release();
  EXPECT_EQ(arbiter.in_use(), 0u);
}

TEST(PoolArbiter, TryAcquireFailsWhenBusy) {
  pool_arbiter arbiter(2);
  pool_lease all = arbiter.acquire(2, 2);
  pool_lease none = arbiter.try_acquire(1, 1);
  EXPECT_FALSE(static_cast<bool>(none));
  all.release();
  pool_lease now = arbiter.try_acquire(1, 1);
  EXPECT_TRUE(static_cast<bool>(now));
}

TEST(PoolArbiter, AcquireBlocksUntilSlotsFree) {
  pool_arbiter arbiter(1);
  pool_lease held = arbiter.acquire(1, 1);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    pool_lease lease = arbiter.acquire(1, 1);
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  held.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(PoolArbiter, LeasePoolMatchesWidth) {
  pool_arbiter arbiter(3);
  pool_lease lease = arbiter.acquire(1, 3);
  EXPECT_EQ(lease.pool().thread_count(), lease.width());
}

TEST(PoolArbiter, PoolScopeRoutesCurrentToLeasedPool) {
  pool_arbiter arbiter(2);
  pool_lease lease = arbiter.acquire(1, 2);
  {
    const pool_scope scope(lease.pool());
    EXPECT_EQ(&thread_pool::current(), &lease.pool());
  }
  EXPECT_EQ(&thread_pool::current(), &thread_pool::global());
}

// The acceptance invariant: M=4 concurrent jobs against a budget of N
// never have more than N live worker threads between them.  Every thread
// that executes chunk bodies — leaseholder or pool worker — bumps a live
// counter; the high-water mark must stay within the budget.
TEST(PoolArbiter, LiveThreadsNeverExceedBudgetUnderConcurrentJobs) {
  constexpr unsigned kBudget = 3;
  constexpr int kJobs = 4;
  pool_arbiter arbiter(kBudget);

  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  const auto enter = [&] {
    const int now = ++live;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
  };

  std::vector<std::thread> jobs;
  for (int j = 0; j < kJobs; ++j) {
    jobs.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        pool_lease lease = arbiter.acquire(1, kBudget);
        lease.pool().parallel_for(
            0, 64, 4, [&](std::int64_t, std::int64_t, std::size_t) {
              enter();
              std::this_thread::sleep_for(std::chrono::microseconds(200));
              --live;
            });
      }
    });
  }
  for (auto& t : jobs) t.join();

  EXPECT_LE(peak.load(), static_cast<int>(kBudget));
  EXPECT_LE(arbiter.peak_in_use(), kBudget);
  EXPECT_EQ(arbiter.in_use(), 0u);
}

// FIFO fairness: with the budget fully leased and two queued acquirers,
// slots go to the earlier arrival first.
TEST(PoolArbiter, QueuedAcquirersAreServedInArrivalOrder) {
  pool_arbiter arbiter(1);
  pool_lease held = arbiter.acquire(1, 1);

  std::atomic<int> order{0};
  std::atomic<int> first_got{-1};
  std::atomic<int> second_got{-1};

  std::thread first([&] {
    pool_lease lease = arbiter.acquire(1, 1);
    first_got = order++;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread second([&] {
    pool_lease lease = arbiter.acquire(1, 1);
    second_got = order++;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  held.release();
  first.join();
  second.join();
  EXPECT_LT(first_got.load(), second_got.load());
}

}  // namespace
}  // namespace vs::core
