// Property-based sweeps (TEST_P) over the geometric and pipeline invariants
// the reproduction depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "app/pipeline.h"
#include "core/rng.h"
#include "geometry/homography.h"
#include "geometry/ransac.h"
#include "geometry/warp.h"
#include "quality/metric.h"
#include "video/generator.h"

namespace vs {
namespace {

// ---------------------------------------------------------------------------
// Homography estimation under noise: the estimator must degrade gracefully.
// ---------------------------------------------------------------------------

class HomographyNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(HomographyNoiseSweep, RecoversWithinNoiseBound) {
  const double sigma = GetParam();
  const geo::mat3 truth =
      geo::mat3::translation(8.0, -5.0) * geo::mat3::rotation(0.2);
  rng gen(101);
  std::vector<geo::point_pair> pairs;
  for (int i = 0; i < 40; ++i) {
    const geo::vec2 p{gen.uniform_real(0, 128), gen.uniform_real(0, 96)};
    geo::vec2 q = truth.apply(p);
    q.x += gen.normal() * sigma;
    q.y += gen.normal() * sigma;
    pairs.push_back({p, q});
  }
  const auto estimate = geo::estimate_homography(pairs);
  ASSERT_TRUE(estimate.has_value());
  // Residual of the estimate scales with the noise, never explodes.
  double worst = 0.0;
  for (const auto& pair : pairs) {
    worst = std::max(worst, geo::reprojection_error(*estimate, pair));
  }
  EXPECT_LT(worst, 1e-6 + 6.0 * sigma);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, HomographyNoiseSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0, 2.0));

// ---------------------------------------------------------------------------
// Warp round trip: warping by H then by H^-1 reproduces interior content.
// ---------------------------------------------------------------------------

class WarpRoundTrip : public ::testing::TestWithParam<geo::mat3> {};

TEST_P(WarpRoundTrip, ForwardThenInverseIsNearIdentity) {
  const geo::mat3 h = GetParam();
  img::image_u8 src(48, 40, 1);
  for (int y = 0; y < 40; ++y) {
    for (int x = 0; x < 48; ++x) {
      std::uint64_t state = static_cast<std::uint64_t>(y) * 131 + x;
      src.at(x, y) = static_cast<std::uint8_t>(splitmix64(state) % 200 + 20);
    }
  }
  const auto bounds = geo::projected_bounds(h, 48, 40);
  ASSERT_TRUE(bounds.has_value());
  const auto forward = geo::warp_perspective(src, h, *bounds);

  const auto inverse = h.inverse();
  ASSERT_TRUE(inverse.has_value());
  // Map the forward patch back into source coordinates.  The patch's pixel
  // (x, y) sits at world (x + x0, y + y0); account for that offset.
  const geo::mat3 back =
      (*inverse) *
      geo::mat3::translation(static_cast<double>(forward.x0),
                             static_cast<double>(forward.y0));
  const auto round =
      geo::warp_perspective(forward.pixels, back, geo::rect{0, 0, 48, 40});

  // Interior pixels that survived both valid masks must match within the
  // double-interpolation blur.
  int checked = 0;
  long long error_sum = 0;
  for (int y = 4; y < 36; ++y) {
    for (int x = 4; x < 44; ++x) {
      if (!round.valid.at(x, y)) continue;
      error_sum += std::abs(static_cast<int>(round.pixels.at(x, y)) -
                            static_cast<int>(src.at(x, y)));
      ++checked;
    }
  }
  ASSERT_GT(checked, 200);
  // White-noise texture is the worst case for double bilinear resampling
  // (neighbouring pixels are uncorrelated); ~30 mean absolute error is the
  // expected blur floor, anything wildly above it means misregistration.
  EXPECT_LT(static_cast<double>(error_sum) / checked, 36.0);
}

INSTANTIATE_TEST_SUITE_P(
    Transforms, WarpRoundTrip,
    ::testing::Values(geo::mat3::translation(5.0, 3.0),
                      geo::mat3::rotation(0.15),
                      geo::mat3::scaling(1.2, 1.2),
                      geo::mat3::translation(-4.0, 2.0) *
                          geo::mat3::rotation(-0.3)));

// ---------------------------------------------------------------------------
// RANSAC seed sweep: the recovered model must be stable across seeds.
// ---------------------------------------------------------------------------

class RansacSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RansacSeedSweep, ModelIndependentOfSeed) {
  const geo::mat3 truth = geo::mat3::translation(7.0, 1.0);
  rng gen(55);
  std::vector<geo::point_pair> pairs;
  for (int i = 0; i < 30; ++i) {
    const geo::vec2 p{gen.uniform_real(0, 128), gen.uniform_real(0, 96)};
    pairs.push_back({p, truth.apply(p)});
  }
  for (int i = 0; i < 10; ++i) {
    pairs.push_back({{gen.uniform_real(0, 128), gen.uniform_real(0, 96)},
                     {gen.uniform_real(0, 128), gen.uniform_real(0, 96)}});
  }
  geo::ransac_params params;
  params.min_inliers = 25;
  const auto fit = geo::ransac_homography(pairs, params, GetParam());
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->model.projective_distance(truth), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RansacSeedSweep,
                         ::testing::Values(1u, 7u, 99u, 12345u));

// ---------------------------------------------------------------------------
// Pipeline fuzz: arbitrary (sane) configurations must never crash, and the
// frame accounting invariant must always hold.
// ---------------------------------------------------------------------------

struct fuzz_case {
  app::algorithm alg;
  double rfd;
  double kds;
  int sm;
  int discard_limit;
  std::uint64_t seed;
};

class PipelineFuzz : public ::testing::TestWithParam<fuzz_case> {};

TEST_P(PipelineFuzz, AccountingInvariantHolds) {
  const auto& fuzz = GetParam();
  static const auto source = video::make_input(video::input_id::input1, 10);
  app::pipeline_config config;
  config.approx.alg = fuzz.alg;
  config.approx.rfd_drop_fraction = fuzz.rfd;
  config.approx.kds_keypoint_fraction = fuzz.kds;
  config.approx.sm_max_distance = fuzz.sm;
  config.discard_limit = fuzz.discard_limit;
  config.seed = fuzz.seed;
  const auto result = app::summarize(*source, config);
  EXPECT_EQ(result.stats.frames_stitched + result.stats.frames_discarded +
                result.stats.frames_dropped_rfd,
            result.stats.frames_total);
  EXPECT_EQ(result.placements.size(),
            static_cast<std::size_t>(result.stats.frames_stitched));
  EXPECT_EQ(result.mini_panoramas.size(), result.panorama_bounds.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineFuzz,
    ::testing::Values(fuzz_case{app::algorithm::vs, 0.0, 1.0, 30, 2, 1},
                      fuzz_case{app::algorithm::vs_rfd, 0.5, 1.0, 30, 0, 2},
                      fuzz_case{app::algorithm::vs_rfd, 1.0, 1.0, 30, 2, 3},
                      fuzz_case{app::algorithm::vs_kds, 0.0, 0.05, 30, 1, 4},
                      fuzz_case{app::algorithm::vs_kds, 0.0, 0.9, 30, 5, 5},
                      fuzz_case{app::algorithm::vs_sm, 0.0, 1.0, 1, 2, 6},
                      fuzz_case{app::algorithm::vs_sm, 0.0, 1.0, 256, 2, 7}));

// ---------------------------------------------------------------------------
// Quality metric properties.
// ---------------------------------------------------------------------------

class MetricThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricThresholdSweep, NormMonotoneInThreshold) {
  // Raising the pixel threshold can only lower (or keep) the norm.
  img::image_u8 golden(24, 24, 1, 120);
  img::image_u8 faulty(24, 24, 1, 120);
  rng gen(11);
  for (int i = 0; i < 40; ++i) {
    faulty.at(static_cast<int>(gen.uniform(24)),
              static_cast<int>(gen.uniform(24))) =
        static_cast<std::uint8_t>(gen.uniform(256));
  }
  const int threshold = GetParam();
  const double at_threshold =
      quality::relative_l2_norm(golden, faulty, threshold);
  const double above = quality::relative_l2_norm(golden, faulty, threshold + 32);
  EXPECT_GE(at_threshold, above);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MetricThresholdSweep,
                         ::testing::Values(0, 32, 64, 128, 192));

// ---------------------------------------------------------------------------
// Fault determinism across the approximation variants.
// ---------------------------------------------------------------------------

class VariantDeterminism : public ::testing::TestWithParam<app::algorithm> {};

TEST_P(VariantDeterminism, SummarizeIsPure) {
  static const auto source = video::make_input(video::input_id::input2, 8);
  app::pipeline_config config;
  config.approx.alg = GetParam();
  const auto a = app::summarize(*source, config);
  const auto b = app::summarize(*source, config);
  EXPECT_EQ(a.panorama, b.panorama);
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantDeterminism,
                         ::testing::Values(app::algorithm::vs,
                                           app::algorithm::vs_rfd,
                                           app::algorithm::vs_kds,
                                           app::algorithm::vs_sm));

}  // namespace
}  // namespace vs
