#include <gtest/gtest.h>

#include "fault/campaign.h"
#include "fault/coverage.h"

namespace vs::fault {
namespace {

// A tiny deterministic workload with representative fault-site structure:
// guarded reads, integer data flow, a control value, and saturated output.
img::image_u8 tiny_workload() {
  img::image_u8 out(8, 8, 1);
  static const img::image_u8 source = [] {
    img::image_u8 im(8, 8, 1);
    for (std::size_t i = 0; i < im.size(); ++i) {
      im[i] = static_cast<std::uint8_t>(i * 3);
    }
    return im;
  }();
  const auto limit = static_cast<std::int64_t>(rt::ctrl(8));
  for (std::int64_t y = 0; y < limit; ++y) {
    for (std::int64_t x = 0; x < 8; ++x) {
      const std::size_t at =
          rt::idx(y * 8 + x, source.size());
      const int v = rt::g32(source[at] * 2);
      const double scaled = rt::f64(static_cast<double>(v) * 0.5);
      out[rt::idx(y * 8 + x, out.size())] =
          static_cast<std::uint8_t>(std::min(255.0, std::max(0.0, scaled)));
    }
  }
  return out;
}

campaign_config quick_config(int injections = 200) {
  campaign_config config;
  config.injections = injections;
  config.seed = 99;
  config.threads = 1;
  return config;
}

TEST(Campaign, GoldenMatchesDirectExecution) {
  const auto direct = tiny_workload();
  const auto result = run_campaign(tiny_workload, quick_config(4));
  EXPECT_EQ(result.golden, direct);
}

TEST(Campaign, RecordsOneResultPerInjection) {
  const auto result = run_campaign(tiny_workload, quick_config(150));
  EXPECT_EQ(result.records.size(), 150u);
  EXPECT_EQ(result.rates.experiments, 150u);
}

TEST(Campaign, DeterministicAcrossRuns) {
  const auto a = run_campaign(tiny_workload, quick_config(100));
  const auto b = run_campaign(tiny_workload, quick_config(100));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].result, b.records[i].result) << "record " << i;
    EXPECT_EQ(a.records[i].plan.target, b.records[i].plan.target);
  }
}

TEST(Campaign, ProducesMultipleOutcomeKinds) {
  auto config = quick_config(400);
  config.liveness.gpr_live = 1.0;  // every strike hits a live value
  const auto result = run_campaign(tiny_workload, config);
  EXPECT_GT(result.rates.masked, 0u);
  EXPECT_GT(result.rates.sdc, 0u);
  EXPECT_GT(result.rates.crash_segfault, 0u);
}

TEST(Campaign, RatesSumToExperiments) {
  const auto result = run_campaign(tiny_workload, quick_config(250));
  const auto& r = result.rates;
  EXPECT_EQ(r.masked + r.sdc + r.crash_segfault + r.crash_abort + r.hang,
            r.experiments);
}

TEST(Campaign, ZeroLivenessMasksEverything) {
  auto config = quick_config(100);
  config.liveness.gpr_live = 0.0;
  const auto result = run_campaign(tiny_workload, config);
  EXPECT_EQ(result.rates.masked, 100u);
  for (const auto& record : result.records) {
    EXPECT_FALSE(record.register_live);
  }
}

TEST(Campaign, FprCampaignTargetsFpValues) {
  auto config = quick_config(200);
  config.cls = rt::reg_class::fpr;
  config.liveness.fpr_live = 1.0;
  const auto result = run_campaign(tiny_workload, config);
  // FP corruption flows through the clamp: mix of masked and SDC, but the
  // guarded-address crashes of GPR campaigns cannot happen here.
  EXPECT_EQ(result.rates.crash_segfault, 0u);
  EXPECT_GT(result.rates.sdc, 0u);
  EXPECT_GT(result.rates.masked, 0u);
}

TEST(Campaign, HangDetectedViaWatchdog) {
  auto config = quick_config(500);
  config.liveness.gpr_live = 1.0;
  config.step_budget_factor = 5.0;
  const auto result = run_campaign(tiny_workload, config);
  // The control-value site (loop bound) occasionally produces runaways.
  // With 500 experiments over ~300 sites we expect at least one.
  EXPECT_GT(result.rates.hang + result.rates.crash_segfault +
                result.rates.crash_abort,
            0u);
}

TEST(Campaign, SdcOutputsRetainedWhenRequested) {
  auto config = quick_config(300);
  config.liveness.gpr_live = 1.0;
  config.keep_sdc_outputs = true;
  const auto result = run_campaign(tiny_workload, config);
  EXPECT_EQ(result.sdc_outputs.size(), result.rates.sdc);
  for (const auto& [index, image] : result.sdc_outputs) {
    EXPECT_EQ(result.records[index].result, outcome::sdc);
    EXPECT_FALSE(image == result.golden);
  }
}

TEST(Campaign, ParallelExecutionMatchesSequential) {
  auto sequential = quick_config(120);
  auto parallel = quick_config(120);
  parallel.threads = 4;
  const auto a = run_campaign(tiny_workload, sequential);
  const auto b = run_campaign(tiny_workload, parallel);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].result, b.records[i].result);
  }
}

TEST(Campaign, ConvergenceIsPrefixConsistent) {
  const auto result = run_campaign(tiny_workload, quick_config(200));
  const auto curves = result.convergence({50, 100, 200});
  ASSERT_EQ(curves.size(), 3u);
  EXPECT_EQ(curves[0].experiments, 50u);
  EXPECT_EQ(curves[1].experiments, 100u);
  EXPECT_EQ(curves[2].experiments, 200u);
  // The final checkpoint equals the campaign totals.
  EXPECT_EQ(curves[2].masked, result.rates.masked);
  EXPECT_EQ(curves[2].sdc, result.rates.sdc);
}

TEST(Campaign, ScopedCampaignRequiresScopeOps) {
  auto config = quick_config(10);
  config.scoped = true;
  config.scope = rt::fn::warp;  // tiny_workload has no warp scope
  config.include_remap_scope = false;
  EXPECT_THROW((void)run_campaign(tiny_workload, config), invalid_argument);
}

TEST(Campaign, ScopedCampaignFiresInScope) {
  auto scoped_workload = [] {
    img::image_u8 out(4, 4, 1);
    {
      rt::scope in(rt::fn::warp);
      for (int i = 0; i < 16; ++i) {
        out[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(rt::g32(i * 10));
      }
    }
    for (int i = 0; i < 100; ++i) (void)rt::g64(i);  // out-of-scope noise
    return out;
  };
  auto config = quick_config(100);
  config.scoped = true;
  config.scope = rt::fn::warp;
  config.include_remap_scope = false;
  config.liveness.gpr_live = 1.0;
  const auto result = run_campaign(scoped_workload, config);
  // In-scope values feed the output directly: flips within the low 8 bits
  // (1/8 of the 64-bit register) corrupt the stored u8; higher bits are
  // truncated away (masked).
  EXPECT_GT(result.rates.sdc, 4u);
  EXPECT_EQ(result.rates.crash_segfault, 0u);
}

TEST(Campaign, NegativeInjectionCountThrows) {
  auto config = quick_config(-1);
  EXPECT_THROW((void)run_campaign(tiny_workload, config), invalid_argument);
}

TEST(OutcomeRates, RateComputation) {
  outcome_rates rates;
  rates.add(outcome::masked);
  rates.add(outcome::masked);
  rates.add(outcome::sdc);
  rates.add(outcome::crash_segfault);
  EXPECT_DOUBLE_EQ(rates.rate(outcome::masked), 0.5);
  EXPECT_DOUBLE_EQ(rates.rate(outcome::sdc), 0.25);
  EXPECT_DOUBLE_EQ(rates.crash_rate(), 0.25);
}

TEST(OutcomeRates, EmptyRatesAreZero) {
  outcome_rates rates;
  EXPECT_DOUBLE_EQ(rates.rate(outcome::sdc), 0.0);
  EXPECT_DOUBLE_EQ(rates.crash_rate(), 0.0);
}

TEST(OutcomeNames, Distinct) {
  EXPECT_STRNE(outcome_name(outcome::masked), outcome_name(outcome::sdc));
  EXPECT_STRNE(outcome_name(outcome::crash_segfault),
               outcome_name(outcome::crash_abort));
}

TEST(Coverage, HistogramsCountPlans) {
  const auto result = run_campaign(tiny_workload, quick_config(320));
  const auto coverage = analyze_coverage(result.records, 32);
  std::size_t total = 0;
  for (auto v : coverage.per_register) total += v;
  EXPECT_EQ(total, 320u);
  total = 0;
  for (auto v : coverage.per_bit) total += v;
  EXPECT_EQ(total, 320u);
}

TEST(Coverage, LargeCampaignIsRoughlyUniform) {
  const auto result = run_campaign(tiny_workload, quick_config(640));
  const auto coverage = analyze_coverage(result.records, 32);
  // Sampling floor for 640 draws over 32 bins is CV ~ sqrt(32/640) ~ 0.22.
  EXPECT_LT(coverage.register_cv, 0.5);
  EXPECT_LT(coverage.bit_cv, 0.6);
}

TEST(Coverage, CoefficientOfVariation) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5, 5, 5, 5}), 0.0);
  EXPECT_GT(coefficient_of_variation({0, 10}), 0.9);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
}

TEST(RunOneInjection, LibraryPreconditionAfterInjectionIsAbort) {
  // Corrupted state hitting an internal precondition is classified as the
  // application aborting, not rethrown out of the campaign.
  auto work = [] {
    const int v = rt::g32(5);
    if (v != 5) throw invalid_argument("internal precondition violated");
    img::image_u8 out(2, 2, 1);
    out.at(0, 0) = static_cast<std::uint8_t>(v);
    return out;
  };
  rt::fault_plan plan;
  plan.target = 0;
  plan.bit = 1;  // 5 ^ 2 = 7: precondition trips
  const auto golden = [&] {
    rt::session s;
    return work();
  }();
  const auto record = run_one_injection(work, plan, ~0ULL, golden, nullptr);
  EXPECT_EQ(record.result, outcome::crash_abort);
  EXPECT_TRUE(record.fired);
}

TEST(RunOneInjection, PreconditionWithoutInjectionStillPropagates) {
  auto broken = []() -> img::image_u8 {
    throw invalid_argument("bug: always throws");
  };
  rt::fault_plan plan;
  plan.target = ~0ULL;  // never fires
  EXPECT_THROW(
      (void)run_one_injection(broken, plan, ~0ULL, img::image_u8{}, nullptr),
      invalid_argument);
}

TEST(RunOneInjection, RecordsFiredScopeAndKind) {
  auto work = [] {
    img::image_u8 out(2, 2, 1);
    rt::scope in(rt::fn::match);
    out.at(0, 0) = static_cast<std::uint8_t>(rt::g32(9));
    return out;
  };
  rt::fault_plan plan;
  plan.target = 0;
  plan.bit = 0;
  const auto golden = [&] {
    rt::session s;
    return work();
  }();
  const auto record = run_one_injection(work, plan, ~0ULL, golden, nullptr);
  EXPECT_TRUE(record.fired);
  EXPECT_EQ(record.fired_scope, rt::fn::match);
  EXPECT_EQ(record.fired_kind, rt::op::int_alu);
}

TEST(RunOneInjection, ClassifiesMaskWhenNothingFires) {
  rt::fault_plan plan;
  plan.target = ~0ULL;  // beyond any op count: never fires
  const auto golden = tiny_workload();
  const auto record =
      run_one_injection(tiny_workload, plan, ~0ULL, golden, nullptr);
  EXPECT_EQ(record.result, outcome::masked);
  EXPECT_FALSE(record.fired);
}

}  // namespace
}  // namespace vs::fault
