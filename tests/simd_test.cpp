// core::simd dispatch layer: parsing, naming, and clamping semantics.
#include <gtest/gtest.h>

#include "core/simd.h"

namespace vs::core::simd {
namespace {

/// Restores the process-wide request when a test exits.
struct request_guard {
  level saved = requested();
  ~request_guard() { set_level(saved); }
};

TEST(Simd, ParseRecognizesEveryTier) {
  EXPECT_EQ(parse_level("scalar"), level::scalar);
  EXPECT_EQ(parse_level("sse4"), level::sse4);
  EXPECT_EQ(parse_level("avx2"), level::avx2);
}

TEST(Simd, ParseAutoMeansBest) {
  EXPECT_EQ(parse_level("auto"), level::avx2);
}

TEST(Simd, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_level("").has_value());
  EXPECT_FALSE(parse_level("avx512").has_value());
  EXPECT_FALSE(parse_level("SCALAR").has_value());
  EXPECT_FALSE(parse_level("sse4 ").has_value());
}

TEST(Simd, NamesRoundTripThroughParse) {
  for (const auto l : {level::scalar, level::sse4, level::avx2}) {
    const auto parsed = parse_level(level_name(l));
    ASSERT_TRUE(parsed.has_value()) << level_name(l);
    EXPECT_EQ(*parsed, l);
  }
}

TEST(Simd, ActiveClampsRequestToDetected) {
  const request_guard guard;
  // Requesting below the host's capability always wins...
  set_level(level::scalar);
  EXPECT_EQ(active(), level::scalar);
  // ...and requesting at or above it clamps to what the host can run.
  set_level(level::avx2);
  EXPECT_EQ(active(), detected());
  EXPECT_LE(active(), detected());
}

TEST(Simd, DetectedIsStable) {
  EXPECT_EQ(detected(), detected());
}

}  // namespace
}  // namespace vs::core::simd
