#include <gtest/gtest.h>
#include <cmath>

#include "core/error.h"
#include "image/image.h"
#include "image/pixel.h"

namespace vs::img {
namespace {

TEST(Image, DefaultIsEmpty) {
  image_u8 im;
  EXPECT_TRUE(im.empty());
  EXPECT_EQ(im.width(), 0);
  EXPECT_EQ(im.height(), 0);
}

TEST(Image, ConstructionZeroInitializes) {
  image_u8 im(4, 3, 1);
  EXPECT_EQ(im.size(), 12u);
  for (std::size_t i = 0; i < im.size(); ++i) EXPECT_EQ(im[i], 0);
}

TEST(Image, ConstructionWithFill) {
  image_u8 im(2, 2, 3, 7);
  for (std::size_t i = 0; i < im.size(); ++i) EXPECT_EQ(im[i], 7);
}

TEST(Image, RejectsBadChannelCount) {
  EXPECT_THROW(image_u8(2, 2, 2), invalid_argument);
  EXPECT_THROW(image_u8(-1, 2, 1), invalid_argument);
}

TEST(Image, AtReadsAndWritesInterleaved) {
  image_u8 im(3, 2, 3);
  im.at(2, 1, 1) = 99;
  EXPECT_EQ(im.at(2, 1, 1), 99);
  EXPECT_EQ(im.data()[im.offset(2, 1, 1)], 99);
}

TEST(Image, InBounds) {
  image_u8 im(3, 2, 1);
  EXPECT_TRUE(im.in_bounds(0, 0));
  EXPECT_TRUE(im.in_bounds(2, 1));
  EXPECT_FALSE(im.in_bounds(3, 1));
  EXPECT_FALSE(im.in_bounds(0, 2));
  EXPECT_FALSE(im.in_bounds(-1, 0));
}

TEST(Image, SampleClampedAtEdges) {
  image_u8 im(2, 2, 1);
  im.at(0, 0) = 10;
  im.at(1, 1) = 20;
  EXPECT_EQ(im.sample_clamped(-5, -5), 10);
  EXPECT_EQ(im.sample_clamped(9, 9), 20);
}

TEST(Image, EqualityIsDeep) {
  image_u8 a(2, 2, 1);
  image_u8 b(2, 2, 1);
  EXPECT_EQ(a, b);
  b.at(1, 1) = 1;
  EXPECT_FALSE(a == b);
}

TEST(Image, ToGrayLumaWeights) {
  image_u8 rgb(1, 1, 3);
  rgb.at(0, 0, 0) = 255;  // pure red
  const image_u8 gray = to_gray(rgb);
  EXPECT_NEAR(gray.at(0, 0), 76, 1);  // 0.299 * 255
}

TEST(Image, ToGrayOnGrayIsIdentity) {
  image_u8 gray(2, 2, 1, 42);
  EXPECT_EQ(to_gray(gray), gray);
}

TEST(Image, GrayToRgbReplicates) {
  image_u8 gray(1, 1, 1, 42);
  const image_u8 rgb = gray_to_rgb(gray);
  EXPECT_EQ(rgb.channels(), 3);
  EXPECT_EQ(rgb.at(0, 0, 0), 42);
  EXPECT_EQ(rgb.at(0, 0, 1), 42);
  EXPECT_EQ(rgb.at(0, 0, 2), 42);
}

TEST(Image, DownscaleByTwo) {
  image_u8 im(4, 4, 1);
  im.at(0, 0) = 10;
  im.at(2, 0) = 20;
  const image_u8 half = downscale(im, 2);
  EXPECT_EQ(half.width(), 2);
  EXPECT_EQ(half.height(), 2);
  EXPECT_EQ(half.at(0, 0), 10);
  EXPECT_EQ(half.at(1, 0), 20);
}

TEST(Image, DownscaleByOneIsIdentity) {
  image_u8 im(3, 3, 1, 5);
  EXPECT_EQ(downscale(im, 1), im);
}

TEST(Image, DownscaleRejectsNonPositiveFactor) {
  image_u8 im(3, 3, 1);
  EXPECT_THROW(downscale(im, 0), invalid_argument);
}

TEST(Image, BoxBlurFlatStaysFlat) {
  image_u8 im(5, 5, 1, 100);
  const image_u8 blurred = box_blur3(im);
  for (std::size_t i = 0; i < blurred.size(); ++i) {
    EXPECT_EQ(blurred[i], 100);
  }
}

TEST(Image, BoxBlurSpreadsImpulse) {
  image_u8 im(5, 5, 1);
  im.at(2, 2) = 90;
  const image_u8 blurred = box_blur3(im);
  EXPECT_EQ(blurred.at(2, 2), 10);  // 90/9
  EXPECT_EQ(blurred.at(1, 1), 10);
  EXPECT_EQ(blurred.at(0, 0), 0);
}

TEST(Image, MeanAbsDiff) {
  image_u8 a(2, 1, 1);
  image_u8 b(2, 1, 1);
  a.at(0, 0) = 10;
  b.at(1, 0) = 30;
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 20.0);
}

TEST(Image, MeanAbsDiffShapeMismatchThrows) {
  image_u8 a(2, 1, 1);
  image_u8 b(1, 2, 1);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 0.0);  // same element count: legal
  image_u8 c(3, 1, 1);
  EXPECT_THROW((void)mean_abs_diff(a, c), invalid_argument);
}

TEST(Image, CountDiffPixels) {
  image_u8 a(3, 1, 1);
  image_u8 b(3, 1, 1);
  b.at(0, 0) = 200;  // above threshold
  b.at(1, 0) = 5;    // below threshold
  EXPECT_EQ(count_diff_pixels(a, b, 128), 1u);
  EXPECT_EQ(count_diff_pixels(a, b, 1), 2u);
}

struct saturate_case {
  double in;
  std::uint8_t expected;
};

class SaturateU8 : public ::testing::TestWithParam<saturate_case> {};

TEST_P(SaturateU8, ClampsAndRounds) {
  EXPECT_EQ(saturate_u8(GetParam().in), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Values, SaturateU8,
    ::testing::Values(saturate_case{-1.0, 0}, saturate_case{-1e300, 0},
                      saturate_case{0.0, 0}, saturate_case{0.4, 0},
                      saturate_case{0.6, 1}, saturate_case{127.5, 128},
                      saturate_case{255.0, 255}, saturate_case{255.4, 255},
                      saturate_case{300.0, 255}, saturate_case{1e300, 255},
                      saturate_case{std::nan(""), 0}));

TEST(SaturateU8, IntOverloadClamps) {
  EXPECT_EQ(saturate_u8(-5), 0);
  EXPECT_EQ(saturate_u8(256), 255);
  EXPECT_EQ(saturate_u8(100), 100);
}

TEST(AbsDiffU8, Symmetric) {
  EXPECT_EQ(absdiff_u8(10, 250), 240);
  EXPECT_EQ(absdiff_u8(250, 10), 240);
  EXPECT_EQ(absdiff_u8(7, 7), 0);
}

}  // namespace
}  // namespace vs::img
