// Quickstart: generate a synthetic aerial clip, run the VS pipeline on it,
// and save the summary panorama.
//
//   $ ./quickstart [output.pgm]

#include <cstdio>

#include "app/pipeline.h"
#include "image/image_io.h"
#include "video/generator.h"

int main(int argc, char** argv) {
  using namespace vs;
  const std::string output = argc > 1 ? argv[1] : "quickstart_panorama.pgm";

  // 1. A frame source.  Input 2 is the smooth-flight VIRAT stand-in; 24
  //    frames keeps this instant.
  const auto source = video::make_input(video::input_id::input2, 24);
  std::printf("clip: %d frames of %dx%d\n", source->frame_count(),
              source->frame_width(), source->frame_height());

  // 2. The baseline (precise) pipeline configuration.
  app::pipeline_config config;

  // 3. Run the summarization.
  const auto result = app::summarize(*source, config);

  std::printf("stitched %d/%d frames into %d mini-panorama(s); "
              "%d discarded\n",
              result.stats.frames_stitched, result.stats.frames_total,
              result.stats.mini_panoramas, result.stats.frames_discarded);
  std::printf("panorama: %dx%d\n", result.panorama.width(),
              result.panorama.height());

  // 4. Save the output.
  img::save_pnm(result.panorama, output);
  std::printf("saved %s\n", output.c_str());
  return 0;
}
