// Approximation-knob explorer: sweeps each approximation's knob and prints
// the performance / output-quality tradeoff curve — the design-space view
// behind the paper's fixed operating points (RFD 10%, KDS 1/3, SM bounded).
//
//   $ ./approx_explorer [input1|input2] [frames]

#include <cstdio>
#include <cstring>
#include <string>

#include "app/pipeline.h"
#include "perf/model.h"
#include "quality/metric.h"
#include "rt/instrument.h"
#include "video/generator.h"

namespace {

using namespace vs;

struct sweep_point {
  double knob = 0.0;
  double time_ratio = 1.0;
  double ed = 0.0;
  int stitched = 0;
};

sweep_point run_point(const video::video_source& source,
                      const app::pipeline_config& config, double knob,
                      const img::image_u8& golden, double baseline_time) {
  rt::session session;
  const auto result = app::summarize(source, config);
  const auto perf = perf::evaluate(session.stats());
  const auto quality = quality::compare_images(golden, result.panorama);
  sweep_point point;
  point.knob = knob;
  point.time_ratio =
      baseline_time > 0 ? perf.time_seconds / baseline_time : 1.0;
  point.ed = quality.ed ? static_cast<double>(*quality.ed) : 101.0;
  point.stitched = result.stats.frames_stitched;
  return point;
}

void print_point(const sweep_point& p) {
  std::printf("  knob %6.3f: time %5.2fx, ED vs baseline %5.0f, "
              "frames kept %d\n",
              p.knob, p.time_ratio, p.ed, p.stitched);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vs;
  const auto input = (argc > 1 && std::strcmp(argv[1], "input2") == 0)
                         ? video::input_id::input2
                         : video::input_id::input1;
  const int frames = argc > 2 ? std::atoi(argv[2]) : 40;

  const auto source = video::make_input(input, frames);
  std::printf("exploring approximations on %s (%d frames)\n",
              video::input_name(input), frames);

  img::image_u8 golden;
  double baseline_time = 0.0;
  {
    rt::session session;
    golden = app::summarize(*source, app::pipeline_config{}).panorama;
    baseline_time = perf::evaluate(session.stats()).time_seconds;
  }

  std::printf("\nVS_RFD: drop fraction sweep\n");
  for (const double fraction : {0.05, 0.10, 0.20, 0.35}) {
    app::pipeline_config config;
    config.approx.alg = app::algorithm::vs_rfd;
    config.approx.rfd_drop_fraction = fraction;
    print_point(run_point(*source, config, fraction, golden, baseline_time));
  }

  std::printf("\nVS_KDS: keypoint fraction sweep\n");
  for (const double fraction : {0.75, 0.5, 1.0 / 3.0, 0.2}) {
    app::pipeline_config config;
    config.approx.alg = app::algorithm::vs_kds;
    config.approx.kds_keypoint_fraction = fraction;
    print_point(run_point(*source, config, fraction, golden, baseline_time));
  }

  std::printf("\nVS_SM: distance bound sweep\n");
  for (const int bound : {20, 30, 40, 64}) {
    app::pipeline_config config;
    config.approx.alg = app::algorithm::vs_sm;
    config.approx.sm_max_distance = bound;
    print_point(run_point(*source, config, bound, golden, baseline_time));
  }

  std::printf(
      "\nThe paper's operating points: RFD 0.10, KDS 1/3, SM bounded 1-NN.\n");
  return 0;
}
