// UAV survey mission: the paper's end-to-end scenario.
//
// Generates both evaluation inputs (the VIRAT stand-ins), runs the baseline
// VS pipeline and all three approximations on each, reports the Section
// IV-A statistics, and saves every output panorama (the Fig 6 panels) as
// PGM files.
//
//   $ ./uav_survey [output_dir] [frames]

#include <cstdio>
#include <string>

#include "app/pipeline.h"
#include "image/image_io.h"
#include "perf/model.h"
#include "quality/metric.h"
#include "rt/instrument.h"
#include "video/generator.h"

int main(int argc, char** argv) {
  using namespace vs;
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const int frames = argc > 2 ? std::atoi(argv[2]) : 48;

  const app::algorithm variants[] = {
      app::algorithm::vs, app::algorithm::vs_rfd, app::algorithm::vs_kds,
      app::algorithm::vs_sm};

  for (const auto input : {video::input_id::input1, video::input_id::input2}) {
    const auto source = video::make_input(input, frames);
    std::printf("\n=== %s: %d frames of %dx%d ===\n",
                video::input_name(input), source->frame_count(),
                source->frame_width(), source->frame_height());

    img::image_u8 baseline_panorama;
    double baseline_time = 0.0;
    for (const auto alg : variants) {
      app::pipeline_config config;
      config.approx.alg = alg;

      rt::session session;
      const auto result = app::summarize(*source, config);
      const auto perf = perf::evaluate(session.stats());
      if (alg == app::algorithm::vs) {
        baseline_panorama = result.panorama;
        baseline_time = perf.time_seconds;
      }

      const auto quality =
          quality::compare_images(baseline_panorama, result.panorama);
      std::printf(
          "%-7s stitched %2d/%2d (drop %d, discard %2d) in %d mini-panorama"
          "(s); time %.2f ms (%.2fx); vs baseline ED %s\n",
          app::algorithm_name(alg), result.stats.frames_stitched,
          result.stats.frames_total, result.stats.frames_dropped_rfd,
          result.stats.frames_discarded, result.stats.mini_panoramas,
          perf.time_seconds * 1e3,
          baseline_time > 0 ? perf.time_seconds / baseline_time : 1.0,
          quality.ed ? std::to_string(*quality.ed).c_str() : ">100");

      const std::string path = out_dir + "/survey_" +
                               video::input_name(input) + "_" +
                               app::algorithm_name(alg) + ".pgm";
      img::save_pnm(result.panorama, path);
      std::printf("        saved %s (%dx%d)\n", path.c_str(),
                  result.panorama.width(), result.panorama.height());
    }
  }
  return 0;
}
