// Run a fault-injection campaign from the command line — the AFI workflow
// of Section V in miniature.
//
//   $ ./fault_campaign [algorithm] [gpr|fpr] [injections] [frames]
//         [--harden[=LEVEL]] [--replicate=STAGES] [--gate=LEVEL]
//         [--gate-sweep] [--jobs=N] [--isolate]
//         [--journal=PATH] [--resume] [--timeout=SECONDS]
//
// Example: ./fault_campaign VS_RFD gpr 500 20
//          ./fault_campaign VS gpr 50 10 --harden        (full hardening)
//          ./fault_campaign VS gpr 50 10 --harden=cfcss
//          ./fault_campaign VS gpr 50 10 --harden --replicate=all
//          ./fault_campaign VS gpr 100 20 --gate=all     (gated workload)
//          ./fault_campaign VS gpr 100 20 --gate-sweep   (Fig 10/11 analog)
//          ./fault_campaign VS gpr 300 20 --jobs=4 --isolate \
//              --journal=campaign.journal --resume
//
// --gate=LEVEL runs the campaign against the gated workload (the gated
// state is part of the fault surface: the change score, the chosen shift,
// the classification branch and the extrapolation search are all hook
// sites).  --gate-sweep runs a campaign per gate level across the full
// scenario matrix (Inputs 1-3) and prints one outcome-distribution table
// per input — the gating analog of the paper's per-approximation Fig 10/11
// comparison.
//
// With --harden the workload runs under the src/resil/ containment
// subsystem: stage budgets and output-detector envelopes are calibrated
// from one fault-free profiled run first.  --replicate overrides the
// level's default per-stage dual-execution mask (off, geometry, all, or a
// comma-separated stage list — see `vs stages`).
//
// Any of --jobs/--isolate/--journal/--resume engages the process-isolated
// supervisor (src/supervise/): experiments shard across workers,
// --isolate forks one process per shard attempt (real crash/hang
// containment), --journal checkpoints completed work so --resume continues
// an interrupted campaign.  The outcome distribution is bit-identical to
// the plain run at any job count.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "app/pipeline.h"
#include "fault/campaign.h"
#include "fault/coverage.h"
#include "fault/detectors.h"
#include "gate/gate.h"
#include "pipeline/stage.h"
#include "quality/sdc.h"
#include "resil/hardening.h"
#include "rt/instrument.h"
#include "supervise/supervisor.h"
#include "video/generator.h"

int main(int argc, char** argv) {
  using namespace vs;
  std::vector<std::string> positional;
  std::string harden_level;
  std::string replicate_spec;
  bool replicate_set = false;
  int gate_request = gate::kLevelInherit;
  bool gate_sweep = false;
  supervise::supervisor_config super;
  bool supervised = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--harden", 8) == 0 &&
        (argv[i][8] == '\0' || argv[i][8] == '=')) {
      harden_level = argv[i][8] == '=' ? argv[i] + 9 : "full";
    } else if (std::strncmp(argv[i], "--replicate=", 12) == 0) {
      replicate_spec = argv[i] + 12;
      replicate_set = true;
    } else if (std::strncmp(argv[i], "--gate=", 7) == 0) {
      gate_request = static_cast<int>(gate::parse_level(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--gate-sweep") == 0) {
      gate_sweep = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      super.jobs = std::atoi(argv[i] + 7);
      supervised = true;
    } else if (std::strcmp(argv[i], "--isolate") == 0) {
      super.isolate = true;
      supervised = true;
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      super.journal_path = argv[i] + 10;
      supervised = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      super.resume = true;
      supervised = true;
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      super.shard_timeout_s = std::atof(argv[i] + 10);
      supervised = true;
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  const std::string alg_name = !positional.empty() ? positional[0] : "VS";
  const bool fpr = positional.size() > 1 && positional[1] == "fpr";
  const int injections =
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 300;
  const int frames =
      positional.size() > 3 ? std::atoi(positional[3].c_str()) : 20;

  if (gate_sweep) {
    // Per-gate-level outcome distributions across the scenario matrix: the
    // gating analog of the paper's per-approximation resiliency comparison
    // (Figs 10/11).  Each cell is its own campaign against the gated
    // workload — the golden (and therefore the SDC verdicts) is the gated
    // fault-free output, so a row measures how the approximation itself
    // tolerates faults, not how far gating drifts from exact.
    const std::vector<gate::level> levels = {
        gate::level::off, gate::level::skip, gate::level::roi,
        gate::level::cache, gate::level::all};
    for (const auto input :
         {video::input_id::input1, video::input_id::input2,
          video::input_id::input3}) {
      const auto source = video::make_input(input, frames);
      std::printf("\n%s: %s, %d injections/level, %d frames%s\n",
                  video::input_name(input), fpr ? "FPR" : "GPR", injections,
                  frames,
                  harden_level.empty() ? "" : (", hardening=" + harden_level)
                                                  .c_str());
      std::printf("%8s %8s %8s %8s %8s %9s %9s %10s\n", "gate", "masked",
                  "crash", "sdc", "hang", "det(rec)", "det(deg)",
                  "egregious");
      for (const auto level : levels) {
        app::pipeline_config config;
        config.approx.alg = app::parse_algorithm(alg_name);
        config.gate.request = static_cast<int>(level);
        if (!harden_level.empty()) {
          config.hardening.level = resil::parse_hardening_level(harden_level);
          if (replicate_set) {
            config.hardening.replicate_stages =
                pipeline::parse_replicate_stages(replicate_spec);
          }
          app::pipeline_config profile_config = config;
          profile_config.hardening = resil::hardening_config{};
          rt::session profile;
          const img::image_u8 golden =
              app::summarize(*source, profile_config).panorama;
          config.hardening.stage_budgets =
              resil::derive_stage_budgets(profile.stats(), frames);
          config.hardening.calibration = fault::calibrate_detectors({golden});
        }
        fault::campaign_config campaign;
        campaign.cls = fpr ? rt::reg_class::fpr : rt::reg_class::gpr;
        campaign.injections = injections;
        const auto result = fault::run_campaign(
            [&] { return app::summarize(*source, config).panorama; },
            campaign);
        std::size_t egregious = 0;
        for (const auto& [index, faulty] : result.sdc_outputs) {
          (void)index;
          if (quality::compare_images(result.golden, faulty).egregious) {
            ++egregious;
          }
        }
        const auto& r = result.rates;
        std::printf("%8s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %8.2f%% %8.2f%% %10zu\n",
                    gate::level_name(level),
                    100.0 * r.rate(fault::outcome::masked),
                    100.0 * r.crash_rate(),
                    100.0 * r.rate(fault::outcome::sdc),
                    100.0 * r.rate(fault::outcome::hang),
                    100.0 * r.rate(fault::outcome::detected_recovered),
                    100.0 * r.rate(fault::outcome::detected_degraded),
                    egregious);
      }
    }
    return 0;
  }

  app::pipeline_config config;
  config.approx.alg = app::parse_algorithm(alg_name);
  config.gate.request = gate_request;
  const auto source = video::make_input(video::input_id::input1, frames);

  if (!harden_level.empty()) {
    config.hardening.level = resil::parse_hardening_level(harden_level);
    if (replicate_set) {
      config.hardening.replicate_stages =
          pipeline::parse_replicate_stages(replicate_spec);
    }
    // Calibrate stage budgets and the output-detector envelope from one
    // fault-free profiled (unhardened) run.
    app::pipeline_config profile_config = config;
    profile_config.hardening = resil::hardening_config{};
    rt::session profile;
    const img::image_u8 golden =
        app::summarize(*source, profile_config).panorama;
    config.hardening.stage_budgets =
        resil::derive_stage_budgets(profile.stats(), frames);
    config.hardening.calibration = fault::calibrate_detectors({golden});
  }

  std::printf("campaign: %s, %s, %d injections, %d-frame Input1 clip%s%s\n",
              app::algorithm_name(config.approx.alg), fpr ? "FPR" : "GPR",
              injections, frames,
              harden_level.empty() ? "" : ", hardening=",
              harden_level.c_str());
  if (gate_request != gate::kLevelInherit) {
    std::printf("gating: %s\n",
                gate::level_name(static_cast<gate::level>(gate_request)));
  }
  if (!harden_level.empty()) {
    std::printf("replication: %s\n",
                pipeline::replicate_stages_name(
                    resil::replication_mask(config.hardening))
                    .c_str());
  }

  fault::campaign_config campaign;
  campaign.cls = fpr ? rt::reg_class::fpr : rt::reg_class::gpr;
  campaign.injections = injections;
  // The supervisor does not ship SDC images across worker pipes.
  campaign.keep_sdc_outputs = !supervised;

  const fault::workload work = [&] {
    return app::summarize(*source, config).panorama;
  };
  fault::campaign_result result;
  supervise::shard_stats stats;
  if (supervised) {
    super.workload_label =
        alg_name + (fpr ? "/fpr" : "/gpr") + "/f" + std::to_string(frames) +
        (harden_level.empty() ? "" : "/" + harden_level) +
        (replicate_set ? "/r=" + replicate_spec : "") +
        (gate_request == gate::kLevelInherit
             ? ""
             : std::string("/gate=") +
                   gate::level_name(static_cast<gate::level>(gate_request)));
    auto sharded = supervise::run_sharded_campaign(work, campaign, super);
    result = std::move(sharded.campaign);
    stats = std::move(sharded.stats);
  } else {
    result = fault::run_campaign(work, campaign);
  }

  const auto& r = result.rates;
  std::printf("\noutcomes over %zu experiments:\n", r.experiments);
  std::printf("  masked          %6.2f%%\n",
              100.0 * r.rate(fault::outcome::masked));
  std::printf("  crash           %6.2f%%  (segfault %zu, abort %zu)\n",
              100.0 * r.crash_rate(), r.crash_segfault, r.crash_abort);
  std::printf("  sdc             %6.2f%%\n",
              100.0 * r.rate(fault::outcome::sdc));
  std::printf("  hang            %6.2f%%\n",
              100.0 * r.rate(fault::outcome::hang));
  if (!harden_level.empty()) {
    std::printf("  detected(rec)   %6.2f%%  (fault caught, output == golden)\n",
                100.0 * r.rate(fault::outcome::detected_recovered));
    std::printf("  detected(deg)   %6.2f%%  (fault caught, output degraded)\n",
                100.0 * r.rate(fault::outcome::detected_degraded));
  }

  if (supervised) {
    std::printf(
        "\nsupervisor: %zu shards (%zu resumed), %zu records recovered, "
        "%zu retries, %zu worker crashes, %zu watchdog kills, "
        "%zu quarantined\n",
        stats.shards_total, stats.shards_resumed, stats.records_recovered,
        stats.retries, stats.worker_crashes, stats.worker_timeouts,
        stats.quarantined.size());
  }

  // SDC severity, as Section V-D defines it.
  std::vector<quality::sdc_quality> sdcs;
  for (const auto& [index, faulty] : result.sdc_outputs) {
    (void)index;
    sdcs.push_back({quality::compare_images(result.golden, faulty)});
  }
  const auto cdf = quality::build_ed_cdf(sdcs);
  if (cdf.total_sdcs > 0) {
    std::printf("\nSDC egregiousness (%zu SDCs, %zu egregious):\n",
                cdf.total_sdcs, cdf.egregious);
    for (int ed : {0, 1, 2, 5, 10, 20, 50, 100}) {
      std::printf("  ED <= %3d: %5.1f%%\n", ed, cdf.percent_at(ed));
    }
  }

  const auto coverage = fault::analyze_coverage(result.records);
  std::printf("\ncoverage: register CV %.3f, bit CV %.3f\n",
              coverage.register_cv, coverage.bit_cv);
  return 0;
}
