// Run a fault-injection campaign from the command line — the AFI workflow
// of Section V in miniature.
//
//   $ ./fault_campaign [algorithm] [gpr|fpr] [injections] [frames]
//
// Example: ./fault_campaign VS_RFD gpr 500 20

#include <cstdio>
#include <cstring>
#include <string>

#include "app/pipeline.h"
#include "fault/campaign.h"
#include "fault/coverage.h"
#include "quality/sdc.h"
#include "video/generator.h"

int main(int argc, char** argv) {
  using namespace vs;
  const std::string alg_name = argc > 1 ? argv[1] : "VS";
  const bool fpr = argc > 2 && std::strcmp(argv[2], "fpr") == 0;
  const int injections = argc > 3 ? std::atoi(argv[3]) : 300;
  const int frames = argc > 4 ? std::atoi(argv[4]) : 20;

  app::pipeline_config config;
  config.approx.alg = app::parse_algorithm(alg_name);
  const auto source = video::make_input(video::input_id::input1, frames);

  std::printf("campaign: %s, %s, %d injections, %d-frame Input1 clip\n",
              app::algorithm_name(config.approx.alg), fpr ? "FPR" : "GPR",
              injections, frames);

  fault::campaign_config campaign;
  campaign.cls = fpr ? rt::reg_class::fpr : rt::reg_class::gpr;
  campaign.injections = injections;
  campaign.keep_sdc_outputs = true;

  const auto result = fault::run_campaign(
      [&] { return app::summarize(*source, config).panorama; }, campaign);

  const auto& r = result.rates;
  std::printf("\noutcomes over %zu experiments:\n", r.experiments);
  std::printf("  masked          %6.2f%%\n",
              100.0 * r.rate(fault::outcome::masked));
  std::printf("  crash           %6.2f%%  (segfault %zu, abort %zu)\n",
              100.0 * r.crash_rate(), r.crash_segfault, r.crash_abort);
  std::printf("  sdc             %6.2f%%\n",
              100.0 * r.rate(fault::outcome::sdc));
  std::printf("  hang            %6.2f%%\n",
              100.0 * r.rate(fault::outcome::hang));

  // SDC severity, as Section V-D defines it.
  std::vector<quality::sdc_quality> sdcs;
  for (const auto& [index, faulty] : result.sdc_outputs) {
    (void)index;
    sdcs.push_back({quality::compare_images(result.golden, faulty)});
  }
  const auto cdf = quality::build_ed_cdf(sdcs);
  if (cdf.total_sdcs > 0) {
    std::printf("\nSDC egregiousness (%zu SDCs, %zu egregious):\n",
                cdf.total_sdcs, cdf.egregious);
    for (int ed : {0, 1, 2, 5, 10, 20, 50, 100}) {
      std::printf("  ED <= %3d: %5.1f%%\n", ed, cdf.percent_at(ed));
    }
  }

  const auto coverage = fault::analyze_coverage(result.records);
  std::printf("\ncoverage: register CV %.3f, bit CV %.3f\n",
              coverage.register_cv, coverage.bit_cv);
  return 0;
}
