# Empty dependencies file for fig11a_resiliency_approx.
# This may be replaced when dependencies are built.
