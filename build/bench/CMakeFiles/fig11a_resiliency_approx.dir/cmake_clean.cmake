file(REMOVE_RECURSE
  "CMakeFiles/fig11a_resiliency_approx.dir/fig11a_resiliency_approx.cpp.o"
  "CMakeFiles/fig11a_resiliency_approx.dir/fig11a_resiliency_approx.cpp.o.d"
  "fig11a_resiliency_approx"
  "fig11a_resiliency_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_resiliency_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
