file(REMOVE_RECURSE
  "CMakeFiles/fig10_resiliency_vs.dir/fig10_resiliency_vs.cpp.o"
  "CMakeFiles/fig10_resiliency_vs.dir/fig10_resiliency_vs.cpp.o.d"
  "fig10_resiliency_vs"
  "fig10_resiliency_vs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_resiliency_vs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
