# Empty dependencies file for fig10_resiliency_vs.
# This may be replaced when dependencies are built.
