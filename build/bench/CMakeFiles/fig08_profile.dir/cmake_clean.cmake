file(REMOVE_RECURSE
  "CMakeFiles/fig08_profile.dir/fig08_profile.cpp.o"
  "CMakeFiles/fig08_profile.dir/fig08_profile.cpp.o.d"
  "fig08_profile"
  "fig08_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
