# Empty dependencies file for fig08_profile.
# This may be replaced when dependencies are built.
