file(REMOVE_RECURSE
  "CMakeFiles/fig13_metric_demo.dir/fig13_metric_demo.cpp.o"
  "CMakeFiles/fig13_metric_demo.dir/fig13_metric_demo.cpp.o.d"
  "fig13_metric_demo"
  "fig13_metric_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_metric_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
