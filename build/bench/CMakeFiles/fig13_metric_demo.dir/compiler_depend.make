# Empty compiler generated dependencies file for fig13_metric_demo.
# This may be replaced when dependencies are built.
