file(REMOVE_RECURSE
  "CMakeFiles/fig12_sdc_quality.dir/fig12_sdc_quality.cpp.o"
  "CMakeFiles/fig12_sdc_quality.dir/fig12_sdc_quality.cpp.o.d"
  "fig12_sdc_quality"
  "fig12_sdc_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sdc_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
