# Empty dependencies file for fig11b_wp_hot_function.
# This may be replaced when dependencies are built.
