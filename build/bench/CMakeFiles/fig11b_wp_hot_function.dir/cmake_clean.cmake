file(REMOVE_RECURSE
  "CMakeFiles/fig11b_wp_hot_function.dir/fig11b_wp_hot_function.cpp.o"
  "CMakeFiles/fig11b_wp_hot_function.dir/fig11b_wp_hot_function.cpp.o.d"
  "fig11b_wp_hot_function"
  "fig11b_wp_hot_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_wp_hot_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
