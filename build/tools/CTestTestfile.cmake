# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_summarize "/root/repo/build/tools/vs" "summarize" "input2" "VS_KDS" "10" "/root/repo/build/tools/cli_pano.pgm")
set_tests_properties(cli_summarize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/vs" "profile" "input2" "10")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_events "/root/repo/build/tools/vs" "events" "input2" "10" "/root/repo/build/tools/cli_events.ppm")
set_tests_properties(cli_events PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_inject "/root/repo/build/tools/vs" "inject" "input2" "gpr" "40" "--json=/root/repo/build/tools/cli_rates.json")
set_tests_properties(cli_inject PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/vs" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
