# Empty compiler generated dependencies file for vs_cli.
# This may be replaced when dependencies are built.
