file(REMOVE_RECURSE
  "CMakeFiles/vs_cli.dir/vs_cli.cpp.o"
  "CMakeFiles/vs_cli.dir/vs_cli.cpp.o.d"
  "vs"
  "vs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
