# Empty compiler generated dependencies file for vs_tests.
# This may be replaced when dependencies are built.
