
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/vs_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/core_rng_test.cpp" "tests/CMakeFiles/vs_tests.dir/core_rng_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/core_rng_test.cpp.o.d"
  "/root/repo/tests/coverage_extra_test.cpp" "tests/CMakeFiles/vs_tests.dir/coverage_extra_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/coverage_extra_test.cpp.o.d"
  "/root/repo/tests/detectors_metrics_test.cpp" "tests/CMakeFiles/vs_tests.dir/detectors_metrics_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/detectors_metrics_test.cpp.o.d"
  "/root/repo/tests/draw_test.cpp" "tests/CMakeFiles/vs_tests.dir/draw_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/draw_test.cpp.o.d"
  "/root/repo/tests/events_test.cpp" "tests/CMakeFiles/vs_tests.dir/events_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/events_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/vs_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/vs_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/vs_tests.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/features_test.cpp.o.d"
  "/root/repo/tests/geometry_test.cpp" "tests/CMakeFiles/vs_tests.dir/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/geometry_test.cpp.o.d"
  "/root/repo/tests/homography_test.cpp" "tests/CMakeFiles/vs_tests.dir/homography_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/homography_test.cpp.o.d"
  "/root/repo/tests/image_io_test.cpp" "tests/CMakeFiles/vs_tests.dir/image_io_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/image_io_test.cpp.o.d"
  "/root/repo/tests/image_test.cpp" "tests/CMakeFiles/vs_tests.dir/image_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/image_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/vs_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/matcher_test.cpp" "tests/CMakeFiles/vs_tests.dir/matcher_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/matcher_test.cpp.o.d"
  "/root/repo/tests/perf_test.cpp" "tests/CMakeFiles/vs_tests.dir/perf_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/perf_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/vs_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/vs_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/quality_test.cpp" "tests/CMakeFiles/vs_tests.dir/quality_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/quality_test.cpp.o.d"
  "/root/repo/tests/rt_instrument_test.cpp" "tests/CMakeFiles/vs_tests.dir/rt_instrument_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/rt_instrument_test.cpp.o.d"
  "/root/repo/tests/stitch_test.cpp" "tests/CMakeFiles/vs_tests.dir/stitch_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/stitch_test.cpp.o.d"
  "/root/repo/tests/track_test.cpp" "tests/CMakeFiles/vs_tests.dir/track_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/track_test.cpp.o.d"
  "/root/repo/tests/video_test.cpp" "tests/CMakeFiles/vs_tests.dir/video_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/video_test.cpp.o.d"
  "/root/repo/tests/warp_test.cpp" "tests/CMakeFiles/vs_tests.dir/warp_test.cpp.o" "gcc" "tests/CMakeFiles/vs_tests.dir/warp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vscore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
