
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/events.cpp" "src/CMakeFiles/vscore.dir/app/events.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/app/events.cpp.o.d"
  "/root/repo/src/app/pipeline.cpp" "src/CMakeFiles/vscore.dir/app/pipeline.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/app/pipeline.cpp.o.d"
  "/root/repo/src/app/wp.cpp" "src/CMakeFiles/vscore.dir/app/wp.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/app/wp.cpp.o.d"
  "/root/repo/src/core/log.cpp" "src/CMakeFiles/vscore.dir/core/log.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/core/log.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/CMakeFiles/vscore.dir/core/rng.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/core/rng.cpp.o.d"
  "/root/repo/src/fault/analysis.cpp" "src/CMakeFiles/vscore.dir/fault/analysis.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/fault/analysis.cpp.o.d"
  "/root/repo/src/fault/campaign.cpp" "src/CMakeFiles/vscore.dir/fault/campaign.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/fault/campaign.cpp.o.d"
  "/root/repo/src/fault/coverage.cpp" "src/CMakeFiles/vscore.dir/fault/coverage.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/fault/coverage.cpp.o.d"
  "/root/repo/src/fault/detectors.cpp" "src/CMakeFiles/vscore.dir/fault/detectors.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/fault/detectors.cpp.o.d"
  "/root/repo/src/fault/model.cpp" "src/CMakeFiles/vscore.dir/fault/model.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/fault/model.cpp.o.d"
  "/root/repo/src/fault/report.cpp" "src/CMakeFiles/vscore.dir/fault/report.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/fault/report.cpp.o.d"
  "/root/repo/src/features/fast.cpp" "src/CMakeFiles/vscore.dir/features/fast.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/features/fast.cpp.o.d"
  "/root/repo/src/features/harris.cpp" "src/CMakeFiles/vscore.dir/features/harris.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/features/harris.cpp.o.d"
  "/root/repo/src/features/keypoint.cpp" "src/CMakeFiles/vscore.dir/features/keypoint.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/features/keypoint.cpp.o.d"
  "/root/repo/src/features/orb.cpp" "src/CMakeFiles/vscore.dir/features/orb.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/features/orb.cpp.o.d"
  "/root/repo/src/features/pyramid.cpp" "src/CMakeFiles/vscore.dir/features/pyramid.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/features/pyramid.cpp.o.d"
  "/root/repo/src/geometry/affine.cpp" "src/CMakeFiles/vscore.dir/geometry/affine.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/geometry/affine.cpp.o.d"
  "/root/repo/src/geometry/homography.cpp" "src/CMakeFiles/vscore.dir/geometry/homography.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/geometry/homography.cpp.o.d"
  "/root/repo/src/geometry/linalg.cpp" "src/CMakeFiles/vscore.dir/geometry/linalg.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/geometry/linalg.cpp.o.d"
  "/root/repo/src/geometry/mat3.cpp" "src/CMakeFiles/vscore.dir/geometry/mat3.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/geometry/mat3.cpp.o.d"
  "/root/repo/src/geometry/ransac.cpp" "src/CMakeFiles/vscore.dir/geometry/ransac.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/geometry/ransac.cpp.o.d"
  "/root/repo/src/geometry/warp.cpp" "src/CMakeFiles/vscore.dir/geometry/warp.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/geometry/warp.cpp.o.d"
  "/root/repo/src/image/draw.cpp" "src/CMakeFiles/vscore.dir/image/draw.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/image/draw.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/CMakeFiles/vscore.dir/image/image.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/image/image.cpp.o.d"
  "/root/repo/src/image/image_io.cpp" "src/CMakeFiles/vscore.dir/image/image_io.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/image/image_io.cpp.o.d"
  "/root/repo/src/match/matcher.cpp" "src/CMakeFiles/vscore.dir/match/matcher.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/match/matcher.cpp.o.d"
  "/root/repo/src/perf/model.cpp" "src/CMakeFiles/vscore.dir/perf/model.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/perf/model.cpp.o.d"
  "/root/repo/src/perf/profiler.cpp" "src/CMakeFiles/vscore.dir/perf/profiler.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/perf/profiler.cpp.o.d"
  "/root/repo/src/quality/metric.cpp" "src/CMakeFiles/vscore.dir/quality/metric.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/quality/metric.cpp.o.d"
  "/root/repo/src/quality/metrics_extra.cpp" "src/CMakeFiles/vscore.dir/quality/metrics_extra.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/quality/metrics_extra.cpp.o.d"
  "/root/repo/src/quality/sdc.cpp" "src/CMakeFiles/vscore.dir/quality/sdc.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/quality/sdc.cpp.o.d"
  "/root/repo/src/rt/instrument.cpp" "src/CMakeFiles/vscore.dir/rt/instrument.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/rt/instrument.cpp.o.d"
  "/root/repo/src/stitch/compositor.cpp" "src/CMakeFiles/vscore.dir/stitch/compositor.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/stitch/compositor.cpp.o.d"
  "/root/repo/src/stitch/stitcher.cpp" "src/CMakeFiles/vscore.dir/stitch/stitcher.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/stitch/stitcher.cpp.o.d"
  "/root/repo/src/track/motion.cpp" "src/CMakeFiles/vscore.dir/track/motion.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/track/motion.cpp.o.d"
  "/root/repo/src/track/tracker.cpp" "src/CMakeFiles/vscore.dir/track/tracker.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/track/tracker.cpp.o.d"
  "/root/repo/src/video/camera.cpp" "src/CMakeFiles/vscore.dir/video/camera.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/video/camera.cpp.o.d"
  "/root/repo/src/video/generator.cpp" "src/CMakeFiles/vscore.dir/video/generator.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/video/generator.cpp.o.d"
  "/root/repo/src/video/recorded.cpp" "src/CMakeFiles/vscore.dir/video/recorded.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/video/recorded.cpp.o.d"
  "/root/repo/src/video/scene.cpp" "src/CMakeFiles/vscore.dir/video/scene.cpp.o" "gcc" "src/CMakeFiles/vscore.dir/video/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
