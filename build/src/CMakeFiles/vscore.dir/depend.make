# Empty dependencies file for vscore.
# This may be replaced when dependencies are built.
