file(REMOVE_RECURSE
  "libvscore.a"
)
