# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "/root/repo/build/examples/qs.pgm")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_approx_explorer "/root/repo/build/examples/approx_explorer" "input2" "12")
set_tests_properties(example_approx_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_campaign "/root/repo/build/examples/fault_campaign" "VS" "gpr" "30" "10")
set_tests_properties(example_fault_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
