file(REMOVE_RECURSE
  "CMakeFiles/approx_explorer.dir/approx_explorer.cpp.o"
  "CMakeFiles/approx_explorer.dir/approx_explorer.cpp.o.d"
  "approx_explorer"
  "approx_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
