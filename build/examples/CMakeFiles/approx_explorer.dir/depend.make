# Empty dependencies file for approx_explorer.
# This may be replaced when dependencies are built.
