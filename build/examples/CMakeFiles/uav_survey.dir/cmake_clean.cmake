file(REMOVE_RECURSE
  "CMakeFiles/uav_survey.dir/uav_survey.cpp.o"
  "CMakeFiles/uav_survey.dir/uav_survey.cpp.o.d"
  "uav_survey"
  "uav_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uav_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
