# Empty compiler generated dependencies file for uav_survey.
# This may be replaced when dependencies are built.
