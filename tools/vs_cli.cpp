// vs — the command-line front end of the library.
//
// A global --simd=scalar|sse4|avx2|auto flag (any position) selects the
// clean lane's vector tier; a global --batch=off|K|auto flag selects the
// clean lane's stage-batching axis.  Output is byte-identical at every
// level of both.  A global --gate=off|skip|roi|cache|all flag arms the
// real-time gating subsystem (src/gate/) — a deliberate temporal
// approximation, so unlike --simd/--batch it changes the output; off (the
// default) is bit-identical to an ungated build.
//
//   vs generate  <input1|input2|input3> <frames> <out_dir>        write clip frames
//   vs summarize <input1|input2|input3> [VS|VS_RFD|VS_KDS|VS_SM] [frames] [out.pgm]
//   vs events    <input1|input2|input3> [frames] [out.ppm]        tracked summary
//   vs inject    <input1|input2|input3> <gpr|fpr> <injections> [algorithm]
//                [--csv=path] [--json=path] [--jobs=N] [--isolate]
//                [--journal=path] [--resume] [--timeout=S]
//   vs quality   <golden.pgm> <faulty.pgm>                 Section V-D metric
//   vs profile   <input1|input2|input3> [frames]                  Fig 8 breakdown
//   vs stages                                              stage registry dump
//   vs resil     <input1|input2|input3> [algorithm] [frames]      hardened run +
//                [--level=off|detectors|cfcss|full]        recovery report
//                [--retries=N] [--no-motion-reuse] [--budget-factor=F]
//   vs fleet     <input1|input2|input3> [algorithms...] [--frames=N] [--jobs=N]
//                [--isolate] [--timeout=S] [--budget=N]    multi-clip workers
//                [--csv=path] [--json=path]                streamed reports
//   vs serve     <socket> [--queue=N] [--runners=N] [--budget=N]
//                [--isolate] [--timeout=S] [--report=path] summarization
//                                                          service
//   vs submit    <socket> <input1|input2|input3> [algorithm] [frames] [out.pgm]
//                [--hardening=L] [--priority=interactive|batch]
//                [--deadline=MS] [--threads=N] [--stream-dir=DIR]
//   vs submit    <socket> --stats                          server snapshot

#include <csignal>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "app/events.h"
#include "app/pipeline.h"
#include "core/simd.h"
#include "fault/analysis.h"
#include "gate/gate.h"
#include "fault/detectors.h"
#include "fault/report.h"
#include "image/image_io.h"
#include "perf/profiler.h"
#include "pipeline/scheduler.h"
#include "pipeline/stage.h"
#include "resil/cfcss.h"
#include "quality/metric.h"
#include "resil/runtime.h"
#include "serve/campaign.h"
#include "serve/client.h"
#include "serve/respawn.h"
#include "serve/server.h"
#include "supervise/supervisor.h"
#include "video/generator.h"

namespace {

using namespace vs;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: vs [--simd=scalar|sse4|avx2|auto] [--batch=off|K|auto]\n"
      "          [--gate=off|skip|roi|cache|all] <command> ...\n"
      "  vs generate  <input1|input2|input3> <frames> <out_dir>\n"
      "  vs summarize <input1|input2|input3> [algorithm] [frames] [out.pgm]\n"
      "  vs events    <input1|input2|input3> [frames] [out.ppm]\n"
      "  vs inject    <input1|input2|input3> <gpr|fpr> <injections> [algorithm]\n"
      "               [--harden[=LEVEL]] [--replicate=STAGES]\n"
      "               [--csv=path] [--json=path] [--jobs=N] [--isolate]\n"
      "               [--journal=path] [--resume] [--timeout=S]\n"
      "               [--serve] [--serve-kill=N] [--frames=N]\n"
      "  vs quality   <golden.pnm> <faulty.pnm>\n"
      "  vs profile   <input1|input2|input3> [frames]\n"
      "  vs stages\n"
      "  vs resil     <input1|input2|input3> [algorithm] [frames]\n"
      "               [--level=off|detectors|cfcss|full] [--retries=N]\n"
      "               [--replicate=off|geometry|all|stage,...]\n"
      "               [--no-motion-reuse] [--budget-factor=F]\n"
      "  vs fleet     <input1|input2|input3> [algorithms...] [--frames=N]\n"
      "               [--jobs=N] [--isolate] [--timeout=S] [--budget=N]\n"
      "               [--csv=path] [--json=path] [--socket=PATH]\n"
      "               [--retries=N]\n"
      "  vs serve     <socket> [--queue=N] [--runners=N] [--budget=N]\n"
      "               [--isolate] [--timeout=S] [--report=path]\n"
      "               [--lookahead=N] [--journal=path] [--supervised]\n"
      "               [--pidfile=path] [--stall-timeout=S]\n"
      "               [--max-respawns=N]\n"
      "  vs submit    <socket> <input1|input2|input3> [algorithm] [frames]\n"
      "               [out.pgm] [--hardening=off|detectors|cfcss|full]\n"
      "               [--priority=interactive|batch] [--deadline=MS]\n"
      "               [--threads=N] [--stream-dir=DIR] [--id=KEY]\n"
      "               [--retries=N]\n"
      "  vs submit    <socket> --stats\n");
  std::exit(2);
}

video::input_id parse_input(const std::string& name) {
  if (name == "input1") return video::input_id::input1;
  if (name == "input2") return video::input_id::input2;
  if (name == "input3") return video::input_id::input3;
  usage();
}

int cmd_generate(int argc, char** argv) {
  if (argc < 5) usage();
  const auto input = parse_input(argv[2]);
  const int frames = std::atoi(argv[3]);
  const std::string out_dir = argv[4];
  const auto source = video::make_input(input, frames);
  for (int i = 0; i < source->frame_count(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "/frame_%04d.pgm", i);
    img::save_pnm(source->frame(i), out_dir + name);
  }
  std::printf("wrote %d frames (%dx%d) to %s\n", source->frame_count(),
              source->frame_width(), source->frame_height(), out_dir.c_str());
  return 0;
}

int cmd_summarize(int argc, char** argv) {
  if (argc < 3) usage();
  const auto input = parse_input(argv[2]);
  app::pipeline_config config;
  if (argc > 3) config.approx.alg = app::parse_algorithm(argv[3]);
  const int frames = argc > 4 ? std::atoi(argv[4]) : 48;
  const std::string out = argc > 5 ? argv[5] : "panorama.pgm";

  const auto source = video::make_input(input, frames);
  const auto result = app::summarize(*source, config);
  std::printf(
      "%s on %s: stitched %d/%d (dropped %d, discarded %d) into %d "
      "mini-panorama(s); %zu keypoints; %d homography / %d affine\n",
      app::algorithm_name(config.approx.alg), video::input_name(input),
      result.stats.frames_stitched, result.stats.frames_total,
      result.stats.frames_dropped_rfd, result.stats.frames_discarded,
      result.stats.mini_panoramas, result.stats.keypoints_detected,
      result.stats.homography_alignments, result.stats.affine_alignments);
  img::save_pnm(result.panorama, out);
  std::printf("saved %s (%dx%d)\n", out.c_str(), result.panorama.width(),
              result.panorama.height());
  return 0;
}

int cmd_events(int argc, char** argv) {
  if (argc < 3) usage();
  const auto input = parse_input(argv[2]);
  const int frames = argc > 3 ? std::atoi(argv[3]) : 48;
  const std::string out = argc > 4 ? argv[4] : "events.ppm";

  const auto source = video::make_input(input, frames);
  const auto summary = app::summarize_events(*source, app::pipeline_config{});
  std::size_t confirmed = 0;
  std::size_t total = 0;
  for (const auto& pano_tracks : summary.tracks) {
    total += pano_tracks.size();
    for (const auto& track : pano_tracks) {
      confirmed += track.state == track::track_state::confirmed ? 1u : 0u;
    }
  }
  std::printf("%d motion detections -> %zu tracks (%zu confirmed) across %d "
              "mini-panorama(s)\n",
              summary.detections_total, total, confirmed,
              summary.coverage.stats.mini_panoramas);
  img::save_pnm(summary.annotated, out);
  std::printf("saved %s (%dx%d)\n", out.c_str(), summary.annotated.width(),
              summary.annotated.height());
  return 0;
}

int cmd_inject(int argc, char** argv) {
  if (argc < 5) usage();
  const auto input = parse_input(argv[2]);
  const bool fpr = std::strcmp(argv[3], "fpr") == 0;
  const int injections = std::atoi(argv[4]);

  app::pipeline_config config;
  std::string csv_path;
  std::string json_path;
  std::string harden_level;
  std::string replicate_spec;
  bool replicate_set = false;
  supervise::supervisor_config super;
  bool supervised = false;
  bool serve_campaign = false;
  int serve_kill = 0;
  int serve_frames = 12;
  for (int i = 5; i < argc; ++i) {
    if (std::strncmp(argv[i], "--harden", 8) == 0 &&
        (argv[i][8] == '\0' || argv[i][8] == '=')) {
      harden_level = argv[i][8] == '=' ? argv[i] + 9 : "full";
    } else if (std::strncmp(argv[i], "--replicate=", 12) == 0) {
      replicate_spec = argv[i] + 12;
      replicate_set = true;
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      super.jobs = std::atoi(argv[i] + 7);
      supervised = true;
    } else if (std::strcmp(argv[i], "--isolate") == 0) {
      super.isolate = true;
      supervised = true;
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      super.journal_path = argv[i] + 10;
      supervised = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      super.resume = true;
      supervised = true;
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      super.shard_timeout_s = std::atof(argv[i] + 10);
      supervised = true;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_campaign = true;
    } else if (std::strncmp(argv[i], "--serve-kill=", 13) == 0) {
      serve_kill = std::atoi(argv[i] + 13);
      serve_campaign = true;
    } else if (std::strncmp(argv[i], "--frames=", 9) == 0) {
      serve_frames = std::atoi(argv[i] + 9);
    } else {
      config.approx.alg = app::parse_algorithm(argv[i]);
    }
  }

  // Serve-layer campaign: same planned injections, but fired through a
  // resident supervised server and classified from the client's chair
  // (serve/campaign.h).
  if (serve_campaign) {
    serve::serve_campaign_config sc;
    sc.input = input;
    sc.alg = config.approx.alg;
    sc.frames = serve_frames;
    sc.cls = fpr ? rt::reg_class::fpr : rt::reg_class::gpr;
    sc.injections = injections;
    sc.kill_every = serve_kill;
    const auto result = serve::run_serve_campaign(sc);
    std::printf("golden %016llx over %llu %s op(s), step budget %llu\n",
                static_cast<unsigned long long>(result.golden_hash),
                static_cast<unsigned long long>(result.total_ops),
                fpr ? "fpr" : "gpr",
                static_cast<unsigned long long>(result.step_budget));
    std::printf("%s", result.to_string().c_str());
    if (!json_path.empty()) {
      char hash[24];
      std::snprintf(hash, sizeof(hash), "%016llx",
                    static_cast<unsigned long long>(result.golden_hash));
      fault::write_text_file(
          json_path,
          std::string("{\"input\": \"") + video::input_name(input) +
              "\", \"algorithm\": \"" +
              app::algorithm_name(config.approx.alg) + "\", \"class\": \"" +
              (fpr ? "fpr" : "gpr") +
              "\", \"injections\": " + std::to_string(injections) +
              ", \"kill_every\": " + std::to_string(serve_kill) +
              ", \"golden_hash\": \"" + hash + "\", \"server_restarts\": " +
              std::to_string(result.server_restarts) +
              ", \"completed\": " + std::to_string(result.counts[0]) +
              ", \"completed_after_restart\": " +
              std::to_string(result.counts[1]) +
              ", \"rejected\": " + std::to_string(result.counts[2]) +
              ", \"lost\": " + std::to_string(result.counts[3]) +
              ", \"sdc_delivered\": " + std::to_string(result.sdc_visible) +
              "}\n");
      std::printf("wrote %s\n", json_path.c_str());
    }
    return result.counts[static_cast<int>(serve::client_outcome::lost)] ==
                   0
               ? 0
               : 1;
  }

  const auto source = video::make_input(input, 20);
  if (!harden_level.empty()) {
    config.hardening.level = resil::parse_hardening_level(harden_level);
    if (replicate_set) {
      config.hardening.replicate_stages =
          pipeline::parse_replicate_stages(replicate_spec);
    }
    // Calibrate budgets and detector envelopes from one fault-free
    // profiled run, as cmd_resil does.
    app::pipeline_config profile_config = config;
    profile_config.hardening = resil::hardening_config{};
    rt::session profile;
    const auto golden = app::summarize(*source, profile_config).panorama;
    config.hardening.stage_budgets =
        resil::derive_stage_budgets(profile.stats(), 20);
    config.hardening.calibration = fault::calibrate_detectors({golden});
    std::printf("hardening: level=%s replication=%s\n",
                resil::hardening_level_name(config.hardening.level),
                pipeline::replicate_stages_name(
                    resil::replication_mask(config.hardening))
                    .c_str());
  }
  fault::campaign_config campaign;
  campaign.cls = fpr ? rt::reg_class::fpr : rt::reg_class::gpr;
  campaign.injections = injections;
  const fault::workload work = [&] {
    return app::summarize(*source, config).panorama;
  };
  fault::campaign_result result;
  if (supervised) {
    super.workload_label = std::string(video::input_name(input)) + "/" +
                           app::algorithm_name(config.approx.alg) +
                           (fpr ? "/fpr" : "/gpr") +
                           (harden_level.empty() ? "" : "/" + harden_level) +
                           (replicate_set ? "/r=" + replicate_spec : "");
    auto sharded = supervise::run_sharded_campaign(work, campaign, super);
    result = std::move(sharded.campaign);
    const auto& st = sharded.stats;
    std::printf(
        "supervisor: %zu shards (%zu resumed), %zu records recovered, "
        "%zu retries, %zu worker crashes, %zu watchdog kills, "
        "%zu quarantined\n",
        st.shards_total, st.shards_resumed, st.records_recovered, st.retries,
        st.worker_crashes, st.worker_timeouts, st.quarantined.size());
  } else {
    result = fault::run_campaign(work, campaign);
  }

  std::printf("%s\n", result.rates.to_string().c_str());
  const auto scopes = fault::scope_breakdown(result.records);
  std::printf("fired injections by function:\n");
  for (const auto& cls : scopes) {
    std::printf("  %-20s n=%-5zu mask=%.0f%% crash=%.0f%% sdc=%.0f%%\n",
                rt::fn_name(cls.scope), cls.rates.experiments,
                100.0 * cls.rates.rate(fault::outcome::masked),
                100.0 * cls.rates.crash_rate(),
                100.0 * cls.rates.rate(fault::outcome::sdc));
  }
  std::printf("fired injections by pipeline stage:\n");
  for (const auto& cls : fault::stage_breakdown(result.records)) {
    std::printf("  %-18s n=%-5zu mask=%.0f%% crash=%.0f%% sdc=%.0f%%\n",
                cls.stage == pipeline::stage_id::count_
                    ? "(outside graph)"
                    : pipeline::stage_name(cls.stage),
                cls.rates.experiments,
                100.0 * cls.rates.rate(fault::outcome::masked),
                100.0 * cls.rates.crash_rate(),
                100.0 * cls.rates.rate(fault::outcome::sdc));
  }
  const auto pruning = fault::estimate_pruning(result.records);
  std::printf("Relyzer-style pruning: %.0f%% of fired experiments fall in "
              ">=95%%-pure site classes\n",
              100.0 * pruning.prunable_fraction);

  if (!csv_path.empty()) {
    fault::write_text_file(csv_path, fault::records_to_csv(result));
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    fault::write_text_file(
        json_path,
        fault::rates_to_json(result, app::algorithm_name(config.approx.alg)));
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int cmd_quality(int argc, char** argv) {
  if (argc < 4) usage();
  const auto golden = img::load_pnm(argv[2]);
  const auto faulty = img::load_pnm(argv[3]);
  const auto q = quality::compare_images(golden, faulty);
  std::printf("relative_l2_norm = %.3f%%\n", q.relative_l2_norm);
  if (q.egregious) {
    std::printf("egregious (no ED; must be protected)\n");
  } else {
    std::printf("ED = %d (alignment dx=%d dy=%d)\n", *q.ed, q.align_dx,
                q.align_dy);
  }
  return 0;
}

int cmd_profile(int argc, char** argv) {
  if (argc < 3) usage();
  const auto input = parse_input(argv[2]);
  const int frames = argc > 3 ? std::atoi(argv[3]) : 48;
  const auto source = video::make_input(input, frames);
  rt::session session;
  (void)app::summarize(*source, app::pipeline_config{});
  const auto profile = perf::function_profile(session.stats());
  for (const auto& entry : profile) {
    std::printf("%-20s %6.1f%%\n", rt::fn_name(entry.function),
                100.0 * entry.fraction);
  }
  std::printf("%-20s %6.1f%%\n", "OpenCV total",
              100.0 * perf::opencv_fraction(profile));
  std::printf("%-20s %6.1f%%\n", "warpPerspective",
              100.0 * perf::warp_fraction(profile));
  std::printf("by pipeline stage:\n");
  for (const auto& entry : perf::stage_profile(session.stats())) {
    std::printf("  %-18s %6.1f%%\n",
                entry.stage == pipeline::stage_id::count_
                    ? "(outside graph)"
                    : pipeline::stage_name(entry.stage),
                100.0 * entry.fraction);
  }
  return 0;
}

int cmd_stages() {
  std::printf("simd: detected=%s active=%s (override with --simd=LEVEL or "
              "VS_SIMD)\n",
              core::simd::level_name(core::simd::detected()),
              core::simd::level_name(core::simd::active()));
  std::printf("batching: request=%s (override with --batch=off|K|auto or "
              "VS_BATCH)\n",
              pipeline::batch_name(pipeline::requested_batch()).c_str());
  std::printf("gating: request=%s (override with --gate=LEVEL or "
              "VS_GATE)\n\n",
              gate::level_name(gate::requested_level()));
  std::printf("%-10s %-12s %-18s %-8s %-6s %-6s %-6s %-8s %-10s %-9s %s\n",
              "stage", "budget", "cfcss signature", "scope?", "ahead",
              "clean", "batch?", "queue", "replica", "gate?", "rt scopes");
  for (const auto& stage : pipeline::stage_registry()) {
    std::string scopes;
    for (const rt::fn f : stage.scopes) {
      if (f == rt::fn::count_) continue;
      if (!scopes.empty()) scopes += ",";
      scopes += rt::fn_name(f);
    }
    const bool batchable = pipeline::stage_batchable(stage);
    const char* gated = stage.gate_skip
                            ? (stage.gate_roi ? "skip+roi" : "skip")
                            : (stage.gate_roi ? "roi" : "-");
    std::printf("%-10s %-12s 0x%016llx %-8s %-6s %-6s %-6s %-8s %-10s %-9s "
                "%s\n",
                stage.name, pipeline::budget_key_name(stage.budget),
                static_cast<unsigned long long>(
                    resil::cfcss::static_signature(stage.node)),
                stage.opens_scope ? "opens" : "fused",
                stage.prefetchable ? "yes" : "no",
                stage.clean_lane ? "yes" : "no", batchable ? "yes" : "no",
                batchable ? pipeline::stage_name(stage.batch_queue) : "-",
                stage.replicable ? pipeline::dual_check_name(stage.check)
                                 : "-",
                gated, scopes.c_str());
  }
  std::printf(
      "\n'ahead' stages form the clean lane's prefetchable frame prefix; "
      "'fused' stages\nride inside the previous stage's watchdog scope.  "
      "The estimate transition is\nmarked inside the alignment cascade, not "
      "by the executor.\n'batch?' stages enter the stage scheduler's work "
      "queues; 'queue' names the\nqueue their work rides in (describe is "
      "fused into detect's queue).\n'replica' is the stage's dual-execution "
      "contract (--replicate / hardening full):\nrecompute stages re-run "
      "and compare structurally, checksum stages digest the\nproduced "
      "buffer.\n'gate?' is what the gating subsystem may elide: 'skip' "
      "stages are skipped\nentirely on gated-out frames, 'roi' stages run "
      "restricted (ROI extraction /\nextrapolated alignment) on delta "
      "frames.\n");
  return 0;
}

int cmd_resil(int argc, char** argv) {
  if (argc < 3) usage();
  const auto input = parse_input(argv[2]);

  app::pipeline_config config;
  config.hardening.level = resil::hardening_level::full;
  int frames = 48;
  double budget_factor = 25.0;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--level=", 8) == 0) {
      config.hardening.level = resil::parse_hardening_level(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      config.hardening.max_frame_retries = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--replicate=", 12) == 0) {
      config.hardening.replicate_stages =
          pipeline::parse_replicate_stages(argv[i] + 12);
    } else if (std::strcmp(argv[i], "--no-motion-reuse") == 0) {
      config.hardening.reuse_last_motion = false;
    } else if (std::strncmp(argv[i], "--budget-factor=", 16) == 0) {
      budget_factor = std::atof(argv[i] + 16);
    } else if (std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
      frames = std::atoi(argv[i]);
    } else {
      config.approx.alg = app::parse_algorithm(argv[i]);
    }
  }

  const auto source = video::make_input(input, frames);

  // Calibrate the hardening from one fault-free profiled run, exactly as a
  // deployed system would (no golden knowledge at run time).
  if (config.hardening.enabled()) {
    app::pipeline_config profile_config = config;
    profile_config.hardening = resil::hardening_config{};
    rt::session profile;
    const auto golden = app::summarize(*source, profile_config).panorama;
    config.hardening.stage_budgets =
        resil::derive_stage_budgets(profile.stats(), frames, budget_factor);
    config.hardening.calibration = fault::calibrate_detectors({golden});
  }

  const auto result = app::summarize(*source, config);
  const auto& rec = result.recovery;
  std::printf("hardened run: %s on %s, %d frames, level=%s, retries=%d, "
              "replicate=%s, motion-reuse=%s\n",
              app::algorithm_name(config.approx.alg), video::input_name(input),
              frames, resil::hardening_level_name(config.hardening.level),
              config.hardening.max_frame_retries,
              pipeline::replicate_stages_name(
                  resil::replication_mask(config.hardening))
                  .c_str(),
              config.hardening.reuse_last_motion ? "on" : "off");
  std::printf("  stitched %d/%d frames into %d mini-panorama(s)\n",
              result.stats.frames_stitched, result.stats.frames_total,
              result.stats.mini_panoramas);
  std::printf("recovery report:\n");
  std::printf("  crashes contained    %u\n", rec.crashes_contained);
  std::printf("  stage hangs          %u\n", rec.stage_hangs);
  std::printf("  cfcss violations     %u\n", rec.cfcss_violations);
  std::printf("  replica divergences  %u\n", rec.replica_divergences);
  std::printf("  frame retries        %u\n", rec.retries);
  std::printf("  frames recovered     %u\n", rec.frames_recovered);
  std::printf("  frames degraded      %u (skipped %u)\n", rec.frames_degraded,
              rec.frames_skipped);
  std::printf("  panoramas dropped    %u\n", rec.panoramas_dropped);
  if (rec.output_checked) {
    std::printf("  output detectors     %s\n",
                fault::detection_verdict_name(rec.output_verdict));
  }
  return 0;
}

int cmd_fleet(int argc, char** argv) {
  if (argc < 3) usage();
  const auto input = parse_input(argv[2]);

  supervise::supervisor_config super;
  super.jobs = 2;
  int frames = 20;
  std::string csv_path;
  std::string json_path;
  std::string socket_path;
  int fleet_retries = 0;
  std::vector<app::algorithm> algorithms;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--frames=", 9) == 0) {
      frames = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      super.jobs = std::atoi(argv[i] + 7);
    } else if (std::strcmp(argv[i], "--isolate") == 0) {
      super.isolate = true;
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      super.shard_timeout_s = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      super.pool_budget = static_cast<unsigned>(std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--socket=", 9) == 0) {
      socket_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      fleet_retries = std::atoi(argv[i] + 10);
    } else {
      algorithms.push_back(app::parse_algorithm(argv[i]));
    }
  }
  if (algorithms.empty()) {
    algorithms = {app::algorithm::vs, app::algorithm::vs_rfd,
                  app::algorithm::vs_kds, app::algorithm::vs_sm};
  }

  std::vector<supervise::clip_job> jobs;
  for (const app::algorithm alg : algorithms) {
    jobs.push_back({input, alg, frames});
  }

  // Streamed reports: one flushed row the moment each clip settles, not a
  // buffered dump after the fleet — kill the fleet mid-run and the files
  // hold every outcome that had completed.
  fault::report_stream csv;
  fault::report_stream jsonl;
  if (!csv_path.empty()) {
    csv.open(csv_path,
             "clip,input,algorithm,frames,completed,outcome,panorama_hash,"
             "frames_stitched,mini_panoramas,wall_ms,attempts");
  }
  if (!json_path.empty()) jsonl.open(json_path, "");
  const supervise::clip_observer observer =
      [&](std::size_t index, const supervise::clip_job& job,
          const supervise::clip_result& r) {
        char hash[24];
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(r.panorama_hash));
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.3f", r.wall_ms);
        const char* outcome =
            r.completed ? "completed" : fault::outcome_name(r.failure);
        if (csv.active()) {
          csv.append(std::to_string(index) + ',' +
                     video::input_name(job.input) + ',' +
                     app::algorithm_name(job.alg) + ',' +
                     std::to_string(job.frames) + ',' +
                     (r.completed ? "1," : "0,") + outcome + ',' + hash +
                     ',' + std::to_string(r.frames_stitched) + ',' +
                     std::to_string(r.mini_panoramas) + ',' + wall + ',' +
                     std::to_string(r.attempts));
        }
        if (jsonl.active()) {
          jsonl.append(std::string("{\"clip\": ") + std::to_string(index) +
                       ", \"input\": \"" + video::input_name(job.input) +
                       "\", \"algorithm\": \"" +
                       app::algorithm_name(job.alg) +
                       "\", \"frames\": " + std::to_string(job.frames) +
                       ", \"completed\": " +
                       (r.completed ? "true" : "false") +
                       ", \"outcome\": \"" + outcome +
                       "\", \"panorama_hash\": \"" + hash +
                       "\", \"frames_stitched\": " +
                       std::to_string(r.frames_stitched) +
                       ", \"mini_panoramas\": " +
                       std::to_string(r.mini_panoramas) +
                       ", \"wall_ms\": " + wall +
                       ", \"attempts\": " + std::to_string(r.attempts) +
                       "}");
        }
      };

  std::vector<supervise::clip_result> results;
  if (!socket_path.empty()) {
    // Serve-backed fleet: each clip is a resilient submission to a running
    // server instead of a local forked worker.  Idempotency keys make the
    // retries safe; results are synthesized into the same clip_result rows
    // so the streamed reports and summary below are format-identical.
    results.resize(jobs.size());
    std::vector<std::thread> threads;
    threads.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      threads.emplace_back([&, i] {
        serve::job_request request;
        request.input = jobs[i].input;
        request.alg = jobs[i].alg;
        request.frames = jobs[i].frames;
        request.client_key =
            "fleet-" + std::to_string(static_cast<long>(::getpid())) + "-" +
            std::to_string(i);
        serve::resilient_policy policy;
        if (fleet_retries > 0) policy.backoff.max_attempts = fleet_retries;
        serve::client c(socket_path, /*receive_timeout_s=*/300.0);
        const auto t0 = std::chrono::steady_clock::now();
        const serve::submit_outcome out = c.submit_resilient(request, policy);
        supervise::clip_result r;
        r.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        r.attempts = out.attempts;
        if (out.complete) {
          r.completed = true;
          r.panorama_hash = out.complete->panorama_hash;
          r.frames_stitched = out.complete->stats.frames_stitched;
          r.mini_panoramas = out.complete->stats.mini_panoramas;
        } else if (out.failed) {
          r.failure = out.failed->failure;
        } else {
          // Rejected or Lost: nothing ran to completion on our behalf.
          r.failure = fault::outcome::crash_abort;
        }
        results[i] = r;
      });
    }
    for (auto& t : threads) t.join();
    // The observer contract is serialized delivery; invoke it in clip
    // order after the joins rather than racing from worker threads.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      observer(i, jobs[i], results[i]);
    }
  } else {
    results = supervise::run_clip_fleet(jobs, super, observer);
  }
  if (!csv_path.empty()) std::printf("wrote %s\n", csv_path.c_str());
  if (!json_path.empty()) std::printf("wrote %s\n", json_path.c_str());

  int failed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (r.completed) {
      std::printf(
          "%-7s %s: panorama %016llx, %d frame(s) in %d mini-panorama(s), "
          "%.0f ms, %d attempt(s)\n",
          app::algorithm_name(jobs[i].alg), video::input_name(input),
          static_cast<unsigned long long>(r.panorama_hash), r.frames_stitched,
          r.mini_panoramas, r.wall_ms, r.attempts);
    } else {
      ++failed;
      std::printf("%-7s %s: FAILED (%s) after %d attempt(s)\n",
                  app::algorithm_name(jobs[i].alg), video::input_name(input),
                  fault::outcome_name(r.failure), r.attempts);
    }
  }
  return failed == 0 ? 0 : 1;
}

// SIGTERM/SIGINT must start a graceful drain, not kill the process: the
// handler only touches request_drain(), which is a single write(2) on the
// server's self-pipe (async-signal-safe by construction).
serve::server* g_serve_instance = nullptr;

extern "C" void handle_drain_signal(int) {
  if (g_serve_instance != nullptr) g_serve_instance->request_drain();
}

// Supervised mode: SIGTERM/SIGINT stop the SUPERVISOR (which SIGTERMs the
// child so it drains); the child generation installs its own drain handler
// post-fork (serve/respawn.cpp).
serve::respawn_supervisor* g_respawn_instance = nullptr;

extern "C" void handle_supervisor_signal(int) {
  if (g_respawn_instance != nullptr) g_respawn_instance->request_shutdown();
}

int cmd_serve(int argc, char** argv) {
  if (argc < 3) usage();
  serve::server_config config;
  config.socket_path = argv[2];
  bool supervised = false;
  serve::respawn_config respawn;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--queue=", 8) == 0) {
      config.queue_capacity =
          static_cast<std::size_t>(std::atoi(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--runners=", 10) == 0) {
      config.runners = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      config.pool_budget = static_cast<unsigned>(std::atoi(argv[i] + 9));
    } else if (std::strcmp(argv[i], "--isolate") == 0) {
      config.isolate = true;
    } else if (std::strncmp(argv[i], "--timeout=", 10) == 0) {
      config.job_timeout_s = std::atof(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      config.report_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--lookahead=", 12) == 0) {
      config.lookahead = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      config.journal_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--supervised") == 0) {
      supervised = true;
    } else if (std::strncmp(argv[i], "--pidfile=", 10) == 0) {
      respawn.pidfile = argv[i] + 10;
      supervised = true;
    } else if (std::strncmp(argv[i], "--stall-timeout=", 16) == 0) {
      respawn.stall_timeout_s = std::atof(argv[i] + 16);
      supervised = true;
    } else if (std::strncmp(argv[i], "--max-respawns=", 15) == 0) {
      respawn.max_consecutive_failures = std::atoi(argv[i] + 15);
      supervised = true;
    } else {
      usage();
    }
  }

  if (supervised) {
    respawn.server = config;
    serve::respawn_supervisor supervisor(respawn);
    g_respawn_instance = &supervisor;
    std::signal(SIGTERM, handle_supervisor_signal);
    std::signal(SIGINT, handle_supervisor_signal);
    const auto stats = supervisor.run();
    g_respawn_instance = nullptr;
    std::printf(
        "supervisor: %llu generation(s), %llu crash(es), %llu hang(s), "
        "%llu failure(s)%s%s\n",
        static_cast<unsigned long long>(stats.generations),
        static_cast<unsigned long long>(stats.crashes),
        static_cast<unsigned long long>(stats.hangs),
        static_cast<unsigned long long>(stats.failures),
        stats.clean_exit ? ", clean exit" : "",
        stats.gave_up ? ", GAVE UP" : "");
    return stats.clean_exit ? 0 : 1;
  }

  serve::server server(config);
  server.start();
  g_serve_instance = &server;
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  server.run();
  g_serve_instance = nullptr;

  const auto s = server.stats();
  std::printf("served %llu job(s) (%llu failed, %llu rejected); "
              "latency p50 %.0f ms, p95 %.0f ms, p99 %.0f ms\n",
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.rejected),
              s.latency.p50_ms, s.latency.p95_ms, s.latency.p99_ms);
  return 0;
}

int cmd_submit(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string socket_path = argv[2];

  if (std::strcmp(argv[3], "--stats") == 0) {
    serve::client c(socket_path, 30.0);
    const auto s = c.stats();
    std::printf(
        "queue %llu, in-flight %llu, completed %llu, rejected %llu, "
        "failed %llu%s\n",
        static_cast<unsigned long long>(s.queue_depth),
        static_cast<unsigned long long>(s.in_flight),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.failed),
        s.draining ? " (draining)" : "");
    std::printf("pool: %llu/%llu slot(s) leased (peak %llu)\n",
                static_cast<unsigned long long>(s.pool_in_use),
                static_cast<unsigned long long>(s.pool_budget),
                static_cast<unsigned long long>(s.pool_peak_in_use));
    std::printf("crash-only: %llu restart(s), journal depth %llu, "
                "%llu job(s) replayed at boot\n",
                static_cast<unsigned long long>(s.restarts),
                static_cast<unsigned long long>(s.journal_depth),
                static_cast<unsigned long long>(s.replayed));
    std::printf("latency over %zu job(s): mean %.0f ms, p50 %.0f ms, "
                "p95 %.0f ms, p99 %.0f ms, max %.0f ms\n",
                s.latency.count, s.latency.mean_ms, s.latency.p50_ms,
                s.latency.p95_ms, s.latency.p99_ms, s.latency.max_ms);
    return 0;
  }

  serve::job_request request;
  request.input = parse_input(argv[3]);
  std::string out = "panorama.pgm";
  std::string stream_dir;
  bool resilient = false;
  int retries = 0;
  int positional = 0;
  for (int i = 4; i < argc; ++i) {
    if (std::strncmp(argv[i], "--hardening=", 12) == 0) {
      request.hardening = resil::parse_hardening_level(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--id=", 5) == 0) {
      request.client_key = argv[i] + 5;
      resilient = true;
    } else if (std::strncmp(argv[i], "--retries=", 10) == 0) {
      retries = std::atoi(argv[i] + 10);
      resilient = true;
    } else if (std::strncmp(argv[i], "--priority=", 11) == 0) {
      const std::string p = argv[i] + 11;
      if (p == "interactive") {
        request.priority = serve::priority_class::interactive;
      } else if (p == "batch") {
        request.priority = serve::priority_class::batch;
      } else {
        usage();
      }
    } else if (std::strncmp(argv[i], "--deadline=", 11) == 0) {
      request.deadline_ms =
          static_cast<std::uint64_t>(std::atoll(argv[i] + 11));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      request.max_threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--stream-dir=", 13) == 0) {
      stream_dir = argv[i] + 13;
    } else if (positional == 0 &&
               !std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
      request.alg = app::parse_algorithm(argv[i]);
      ++positional;
    } else if (positional <= 1 &&
               std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
      request.frames = std::atoi(argv[i]);
      positional = 2;
    } else {
      out = argv[i];
      positional = 3;
    }
  }

  serve::client c(socket_path, 300.0);
  const auto on_mini = [&](const serve::panorama_msg& m) {
    std::printf("streamed mini-panorama %d (%dx%d)\n", m.index,
                m.image.width(), m.image.height());
    if (!stream_dir.empty()) {
      char name[64];
      std::snprintf(name, sizeof(name), "/mini_%04d.pgm", m.index);
      img::save_pnm(m.image, stream_dir + name);
    }
  };
  serve::submit_outcome outcome;
  if (resilient) {
    // Crash-tolerant path: reconnect with backoff under an idempotency
    // key; a resubmission adopts the journaled job instead of re-running.
    serve::resilient_policy policy;
    if (retries > 0) policy.backoff.max_attempts = retries;
    outcome = c.submit_resilient(request, policy, on_mini);
    if (outcome.reconnects > 0) {
      std::printf("reconnected %d time(s) over %d attempt(s)\n",
                  outcome.reconnects, outcome.attempts);
    }
    if (!outcome.complete && !outcome.failed && !outcome.rejected) {
      std::printf("LOST: no terminal reply after %d attempt(s)\n",
                  outcome.attempts);
      return 4;
    }
  } else {
    outcome = c.submit(request, on_mini);
  }

  if (outcome.rejected) {
    std::printf("rejected: %s (queue depth %llu, retry after %llu ms)\n",
                serve::reject_reason_name(outcome.rejected->reason),
                static_cast<unsigned long long>(
                    outcome.rejected->queue_depth),
                static_cast<unsigned long long>(
                    outcome.rejected->retry_after_ms));
    return 3;
  }
  if (outcome.failed) {
    std::printf("job %llu FAILED (%s): %s\n",
                static_cast<unsigned long long>(outcome.failed->job_id),
                fault::outcome_name(outcome.failed->failure),
                outcome.failed->message.c_str());
    return 1;
  }
  const auto& done = *outcome.complete;
  std::printf(
      "%s on %s: stitched %d/%d (dropped %d, discarded %d) into %d "
      "mini-panorama(s); %zu keypoints; %d homography / %d affine\n",
      app::algorithm_name(request.alg), video::input_name(request.input),
      done.stats.frames_stitched, done.stats.frames_total,
      done.stats.frames_dropped_rfd, done.stats.frames_discarded,
      done.stats.mini_panoramas, done.stats.keypoints_detected,
      done.stats.homography_alignments, done.stats.affine_alignments);
  img::save_pnm(done.montage, out);
  std::printf("saved %s (%dx%d)\n", out.c_str(), done.montage.width(),
              done.montage.height());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global --simd=LEVEL / --batch=SPEC / --gate=LEVEL flags: consumed here,
  // before command dispatch, so every command sees the requested clean-lane
  // SIMD tier, stage-batching axis and gating level.  The flags win over
  // the VS_SIMD / VS_BATCH / VS_GATE environment variables.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--simd=", 7) == 0) {
      const auto parsed = vs::core::simd::parse_level(arg + 7);
      if (!parsed) {
        std::fprintf(stderr,
                     "error: --simd expects scalar|sse4|avx2|auto, got %s\n",
                     arg + 7);
        return 2;
      }
      vs::core::simd::set_level(*parsed);
      continue;
    }
    if (std::strncmp(arg, "--batch=", 8) == 0) {
      try {
        vs::pipeline::set_batch(vs::pipeline::parse_batch(arg + 8));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: --batch: %s\n", e.what());
        return 2;
      }
      continue;
    }
    if (std::strncmp(arg, "--gate=", 7) == 0) {
      try {
        vs::gate::set_level(vs::gate::parse_level(arg + 7));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: --gate: %s\n", e.what());
        return 2;
      }
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;
  if (argc < 2) usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "summarize") return cmd_summarize(argc, argv);
    if (command == "events") return cmd_events(argc, argv);
    if (command == "inject") return cmd_inject(argc, argv);
    if (command == "quality") return cmd_quality(argc, argv);
    if (command == "profile") return cmd_profile(argc, argv);
    if (command == "stages") return cmd_stages();
    if (command == "resil") return cmd_resil(argc, argv);
    if (command == "fleet") return cmd_fleet(argc, argv);
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "submit") return cmd_submit(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
