#include "rt/instrument.h"

#include <string>

namespace vs::rt {

thread_local constinit state tls VS_RT_TLS_MODEL;

const char* fn_name(fn f) noexcept {
  switch (f) {
    case fn::other:
      return "other";
    case fn::video_decode:
      return "video_decode";
    case fn::fast_detect:
      return "fast_detect";
    case fn::orb_describe:
      return "orb_describe";
    case fn::match:
      return "match";
    case fn::ransac:
      return "ransac";
    case fn::homography:
      return "homography";
    case fn::warp:
      return "warpPerspective";
    case fn::remap:
      return "remapBilinear";
    case fn::stitch:
      return "stitch";
    case fn::quality:
      return "quality";
    case fn::gate:
      return "gate";
    case fn::count_:
      break;
  }
  return "?";
}

const char* op_name(op k) noexcept {
  switch (k) {
    case op::int_alu:
      return "int_alu";
    case op::mem:
      return "mem";
    case op::branch:
      return "branch";
    case op::fp_alu:
      return "fp_alu";
    case op::count_:
      break;
  }
  return "?";
}

namespace detail {

void raise_hang() {
  throw hang_error("step budget exceeded (watchdog): execution hangs");
}

void raise_stage_hang() {
  // Disarm the meter before throwing: the unwind path (and any diagnostic
  // code run by a recovery boundary) executes hooks of its own, which must
  // not re-raise out of a destructor.
  tls.stage_budget = ~0ULL;
  throw detected_error(detect_kind::stage_hang,
                       "stage step budget exceeded (per-stage watchdog)");
}

void raise_segfault(std::int64_t index, std::size_t bound) {
  throw crash_error(crash_kind::segfault,
                    "guarded access fault: index " + std::to_string(index) +
                        " outside buffer of " + std::to_string(bound) +
                        " elements");
}

void raise_logic_oob(std::int64_t index, std::size_t bound) {
  throw std::logic_error(
      "out-of-bounds access without an injected fault (library bug): index " +
      std::to_string(index) + ", bound " + std::to_string(bound));
}

}  // namespace detail

session::session() : saved_(tls) {
  tls = state{};
  tls.enabled = true;
}

session::session(const fault_plan& plan, std::uint64_t step_budget)
    : saved_(tls) {
  tls = state{};
  tls.enabled = true;
  tls.armed = true;
  tls.cls = plan.cls;
  tls.scoped = plan.scoped;
  tls.scope = plan.scope;
  tls.scope_b = plan.scope_b;
  tls.target = plan.target;
  tls.bit = plan.bit;
  tls.step_budget = step_budget;
}

session::~session() { tls = saved_; }

}  // namespace vs::rt
