// Runtime instrumentation: the "virtual register file" layer.
//
// This header is the substitution for the paper's AFI tool (Application Fault
// Injection on an IBM POWER machine).  AFI flips one bit of one architectural
// register (GPR or FPR) at one random execution cycle of the unmodified
// binary.  We cannot touch architectural registers portably, so the compute
// kernels of this library route their live values through the inline hooks
// below.  Each hook
//
//   * represents one (or a small batch of) dynamic instruction(s) of a given
//     operation kind, attributed to the currently active function scope
//     (used for the Fig-8 execution profile and the perf/energy model), and
//   * is a potential fault site: when a fault plan is armed and the hook's
//     dynamic index matches the planned injection cycle, the value passing
//     through has one bit flipped, exactly once per run.
//
// Crash behaviour is reproduced by guarded address arithmetic (idx / ptr
// hooks): an injected index that lands far outside its buffer raises
// crash_error(segfault) — the analog of SIGSEGV — while a near miss silently
// reads a wrong-but-mapped location (as real hardware would).  Hang behaviour
// is reproduced by a step-budget watchdog.  Everything else runs to
// completion and is classified Mask or SDC by output comparison.
//
// All hooks compile to a single predictable branch when instrumentation is
// disabled, so normal library use pays close to nothing.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

#include "core/error.h"

namespace vs::rt {

/// Function scopes for attribution.  Mirrors the granularity of the paper's
/// perf profile (Fig 8) and the hot-function study (Fig 11b).
enum class fn : std::uint8_t {
  other = 0,
  video_decode,   ///< frame acquisition / synthetic generation
  fast_detect,    ///< FAST corner detection
  orb_describe,   ///< orientation + rBRIEF descriptor extraction
  match,          ///< brute-force descriptor matching
  ransac,         ///< RANSAC model estimation loop
  homography,     ///< DLT / affine solve
  warp,           ///< warpPerspective coordinate computation (hot function)
  remap,          ///< remapBilinear pixel interpolation (hot function)
  stitch,         ///< panorama compositing / blending
  quality,        ///< output quality metric (not part of the measured app)
  gate,           ///< frame-gate change score / motion extrapolation
  count_          ///< sentinel
};
inline constexpr int fn_count = static_cast<int>(fn::count_);

/// Human-readable scope name (for profiles and reports).
const char* fn_name(fn f) noexcept;

/// Dynamic-operation kinds.  int_alu/mem/branch ops flow through GPRs;
/// fp_alu ops flow through FPRs — this is what decides which injection
/// campaign (GPR vs. FPR) can target a given hook.
enum class op : std::uint8_t { int_alu = 0, mem, branch, fp_alu, count_ };
inline constexpr int op_count = static_cast<int>(op::count_);

const char* op_name(op k) noexcept;

/// Register class targeted by an injection, as in the paper.
enum class reg_class : std::uint8_t { gpr = 0, fpr = 1 };
inline constexpr int reg_class_count = 2;

/// Per-scope, per-kind dynamic operation counters.
struct counters {
  std::uint64_t by_fn[fn_count][op_count] = {};
  /// Actual fault-site hooks executed, per scope and register class.  The
  /// bulk-accounted ops above model the cost of homogeneous instruction
  /// streams; the hooks are the representative sample of live values that
  /// injections can strike.  Campaigns draw targets over these.
  std::uint64_t hooks_by_fn[fn_count][2] = {};

  [[nodiscard]] std::uint64_t total(op k) const noexcept {
    std::uint64_t sum = 0;
    for (int f = 0; f < fn_count; ++f) sum += by_fn[f][static_cast<int>(k)];
    return sum;
  }
  [[nodiscard]] std::uint64_t fn_total(fn f) const noexcept {
    std::uint64_t sum = 0;
    for (int k = 0; k < op_count; ++k) sum += by_fn[static_cast<int>(f)][k];
    return sum;
  }
  /// GPR-class dynamic ops (int_alu + mem + branch), optionally in one scope.
  [[nodiscard]] std::uint64_t gpr_ops() const noexcept {
    return total(op::int_alu) + total(op::mem) + total(op::branch);
  }
  [[nodiscard]] std::uint64_t gpr_ops(fn f) const noexcept {
    const auto* row = by_fn[static_cast<int>(f)];
    return row[0] + row[1] + row[2];
  }
  /// FPR-class dynamic ops, optionally in one scope.
  [[nodiscard]] std::uint64_t fpr_ops() const noexcept {
    return total(op::fp_alu);
  }
  [[nodiscard]] std::uint64_t fpr_ops(fn f) const noexcept {
    return by_fn[static_cast<int>(f)][static_cast<int>(op::fp_alu)];
  }
  [[nodiscard]] std::uint64_t steps() const noexcept {
    return gpr_ops() + fpr_ops();
  }

  /// Fault-site hook counts (what campaigns draw injection targets over).
  [[nodiscard]] std::uint64_t hooks(reg_class cls) const noexcept {
    std::uint64_t sum = 0;
    for (int f = 0; f < fn_count; ++f) {
      sum += hooks_by_fn[f][static_cast<int>(cls)];
    }
    return sum;
  }
  [[nodiscard]] std::uint64_t hooks(reg_class cls, fn f) const noexcept {
    return hooks_by_fn[static_cast<int>(f)][static_cast<int>(cls)];
  }
};

/// One planned injection: flip `bit` of the value flowing through the
/// `target`-th dynamic op of class `cls` (optionally restricted to ops inside
/// `scope`).  `reg_id` is bookkeeping for the coverage histogram (Fig 9b):
/// the architectural register the flipped value is deemed to occupy.
struct fault_plan {
  reg_class cls = reg_class::gpr;
  std::uint64_t target = 0;
  std::uint32_t bit = 0;  ///< 0..63
  std::uint32_t reg_id = 0;
  bool scoped = false;
  fn scope = fn::other;
  fn scope_b = fn::other;  ///< second accepted scope (set equal to `scope`
                           ///< when only one function is targeted)
};

/// Thread-local instrumentation state.  One pipeline run == one session on
/// one thread; campaigns may run many sessions on parallel threads.
struct state {
  bool enabled = false;

  // --- attribution ---
  fn cur = fn::other;
  counters c;

  // --- injection ---
  bool armed = false;
  reg_class cls = reg_class::gpr;
  bool scoped = false;
  fn scope = fn::other;
  fn scope_b = fn::other;
  std::uint64_t match_count = 0;  ///< dynamic index within the targeted class
  std::uint64_t target = ~0ULL;
  std::uint32_t bit = 0;
  bool fired = false;  ///< the planned flip has been applied
  fn fired_scope = fn::other;  ///< scope of the hook that fired
  op fired_kind = op::int_alu; ///< op kind of the hook that fired

  // --- watchdog ---
  std::uint64_t steps = 0;
  std::uint64_t step_budget = ~0ULL;

  // --- per-stage watchdog (hardening; see src/resil/) ---
  // A stage_scope grants each pipeline stage its own step allowance so one
  // corrupted loop bound is flagged within the stage it corrupts instead of
  // only after burning the whole run's global budget — and so a frame retry
  // starts from a fresh allowance instead of inheriting a nearly-exhausted
  // one.  ~0ULL (the default) means no stage is being metered.
  std::uint64_t stage_steps = 0;
  std::uint64_t stage_budget = ~0ULL;

  // --- guarded-memory policy ---
  // An out-of-bounds access within `mem_slack` elements of the buffer reads a
  // wrapped (wrong but mapped) location; farther out raises segfault.  2^14
  // elements approximates the page-scale slack a heap buffer enjoys.
  std::uint64_t mem_slack = 1ULL << 14;
};

// constinit: the state is constant-initialized, so no TLS init-on-first-use
// wrapper function is emitted for cross-TU accesses.  Besides saving a call
// per access, this is what lets the ASan+UBSan CI job run clean: UBSan's
// -fsanitize=null instruments every member access routed through the
// wrapper's returned pointer, and the wrapper itself is the only place a
// null could (in principle) appear.
//
// tls_model("local-exec"): the library is only ever linked statically into
// executables, so the most direct TLS access sequence is always legal.  It
// is also load-bearing under UBSan: for the default initial-exec model GCC
// 12 emits `add tls@gottpoff(%rip),%reg; je <null-abort>` — the null check
// consumes the add's flags — and GNU ld's IE->LE relaxation rewrites that
// add into an lea, which sets no flags, so the je reads stale flags and
// aborts with a spurious "member access within null pointer".  Local-exec
// needs no relaxation, so the flag dependency survives.
#if defined(__GNUC__) || defined(__clang__)
#define VS_RT_TLS_MODEL __attribute__((tls_model("local-exec")))
#else
#define VS_RT_TLS_MODEL
#endif
extern thread_local constinit state tls VS_RT_TLS_MODEL;

/// Whether this thread is executing on the instrumented lane (an rt session
/// is active, hooks are live).  The two-lane kernel dispatch and the
/// pipeline's frame scheduler key off this one predicate.
[[nodiscard]] inline bool instrumented() noexcept { return tls.enabled; }

namespace detail {
[[noreturn]] void raise_hang();
[[noreturn]] void raise_stage_hang();
[[noreturn]] void raise_segfault(std::int64_t index, std::size_t bound);
[[noreturn]] void raise_logic_oob(std::int64_t index, std::size_t bound);

inline bool injection_matches(state& s, reg_class cls) noexcept {
  if (!s.armed || s.cls != cls) return false;
  if (s.scoped && s.cur != s.scope && s.cur != s.scope_b) return false;
  return s.match_count++ == s.target;
}

inline void bump(state& s, op k) {
  ++s.c.by_fn[static_cast<int>(s.cur)][static_cast<int>(k)];
  const int cls = k == op::fp_alu ? 1 : 0;
  ++s.c.hooks_by_fn[static_cast<int>(s.cur)][cls];
  if (++s.steps >= s.step_budget) raise_hang();
  if (++s.stage_steps >= s.stage_budget) raise_stage_hang();
}
}  // namespace detail

/// GPR hook for a 64-bit integer value (the register image of any integer
/// the kernels compute with — indices are sign-extended as on a 64-bit ISA).
inline std::int64_t g64(std::int64_t v, op k = op::int_alu) {
  state& s = tls;
  if (!s.enabled) return v;
  detail::bump(s, k);
  if (detail::injection_matches(s, reg_class::gpr)) {
    s.armed = false;
    s.fired = true;
    s.fired_scope = s.cur;
    s.fired_kind = k;
    v = static_cast<std::int64_t>(static_cast<std::uint64_t>(v) ^
                                  (1ULL << s.bit));
  }
  return v;
}

/// GPR hook for an `int`-typed value.  The value still occupies a 64-bit
/// register (sign-extended); flips of bits 32..63 corrupt the register image
/// and matter wherever the full register feeds address arithmetic, but are
/// naturally masked when the consumer truncates back to 32 bits — exactly
/// the architectural behaviour that produces masking on real hardware.
inline int g32(int v, op k = op::int_alu) {
  state& s = tls;
  if (!s.enabled) return v;
  detail::bump(s, k);
  if (detail::injection_matches(s, reg_class::gpr)) {
    s.armed = false;
    s.fired = true;
    s.fired_scope = s.cur;
    s.fired_kind = k;
    const auto reg = static_cast<std::uint64_t>(static_cast<std::int64_t>(v)) ^
                     (1ULL << s.bit);
    v = static_cast<int>(static_cast<std::uint32_t>(reg));
  }
  return v;
}

/// GPR hook tagging a control value (loop bound / branch operand).
inline std::int64_t ctrl(std::int64_t v) { return g64(v, op::branch); }

/// FPR hook for a double value: a flip is applied to the IEEE-754 bit image.
inline double f64(double v) {
  state& s = tls;
  if (!s.enabled) return v;
  detail::bump(s, op::fp_alu);
  if (detail::injection_matches(s, reg_class::fpr)) {
    s.armed = false;
    s.fired = true;
    s.fired_scope = s.cur;
    s.fired_kind = op::fp_alu;
    v = std::bit_cast<double>(std::bit_cast<std::uint64_t>(v) ^
                              (1ULL << s.bit));
  }
  return v;
}

/// FPR hook for a float value held in a 64-bit FPR (as on POWER, where
/// singles occupy a double-width register): flips above bit 31 of the single
/// image land in the register's unused/expanded bits and are modelled on the
/// promoted double.
inline float f32(float v) { return static_cast<float>(f64(v)); }

/// Guarded load index: the GPR hook for address arithmetic.  Counts as a
/// memory op; the (possibly corrupted) index is bounds-policed:
///   in [0, n)                         -> used as is
///   within mem_slack of the buffer    -> wrapped (wrong but mapped read)
///   far positive                      -> crash_error(segfault)
///   far negative                      -> crash_error(abort): libraries
///                                        assert on negative sizes/indices
///                                        (CV_Assert-style), which is the
///                                        paper's "library abort" crash
/// Out-of-bounds without a fired injection is a library bug and raises
/// logic_error so tests catch it.
inline std::size_t idx(std::int64_t i, std::size_t n) {
  state& s = tls;
  if (s.enabled) {
    detail::bump(s, op::mem);
    if (detail::injection_matches(s, reg_class::gpr)) {
      s.armed = false;
      s.fired = true;
      s.fired_scope = s.cur;
      s.fired_kind = op::mem;
      i = static_cast<std::int64_t>(static_cast<std::uint64_t>(i) ^
                                    (1ULL << s.bit));
    }
  }
  if (i >= 0 && static_cast<std::uint64_t>(i) < n) {
    return static_cast<std::size_t>(i);
  }
  if (!s.fired) detail::raise_logic_oob(i, n);
  const auto slack = static_cast<std::int64_t>(s.mem_slack);
  if (n > 0 && i > -slack &&
      i < static_cast<std::int64_t>(n) + slack) {
    const auto m = static_cast<std::int64_t>(n);
    return static_cast<std::size_t>(((i % m) + m) % m);
  }
  if (i < 0 || i > (std::int64_t{1} << 59)) {
    // Negative or absurd-magnitude offsets indicate a corrupted size/count
    // rather than a plain pointer: libraries validate those and abort
    // (CV_Assert-style) before any dereference happens.
    throw crash_error(crash_kind::abort,
                      "internal assertion: impossible index after injection");
  }
  detail::raise_segfault(i, n);
}

/// Sanity gate for sizes that feed allocations (canvas dimensions computed
/// from homographies, match-list reservations, ...).  A corrupted size that
/// exceeds `cap` raises crash_error(abort) — the analog of the library
/// internal-constraint aborts that make up ~8% of the paper's crashes.
inline std::size_t alloc_size(std::int64_t n, std::size_t cap) {
  state& s = tls;
  if (s.enabled) detail::bump(s, op::int_alu);
  if (n >= 0 && static_cast<std::uint64_t>(n) <= cap) {
    return static_cast<std::size_t>(n);
  }
  if (!s.fired) detail::raise_logic_oob(n, cap);
  throw crash_error(crash_kind::abort,
                    "allocation constraint violated after injection");
}

/// Bulk attribution of `n` dynamic ops of kind `k` without creating a fault
/// site — used for homogeneous inner loops where hooking every iteration
/// would distort runtime by 10x while adding no new fault-site diversity.
/// The per-iteration representative values still pass through real hooks.
inline void account(op k, std::uint64_t n) {
  state& s = tls;
  if (!s.enabled) return;
  s.c.by_fn[static_cast<int>(s.cur)][static_cast<int>(k)] += n;
  s.steps += n;
  if (s.steps >= s.step_budget) detail::raise_hang();
  s.stage_steps += n;
  if (s.stage_steps >= s.stage_budget) detail::raise_stage_hang();
}

/// RAII scope attribution: everything executed while alive is attributed to
/// function `f` (nesting restores the previous scope).
class scope {
 public:
  explicit scope(fn f) noexcept : prev_(tls.cur) { tls.cur = f; }
  ~scope() { tls.cur = prev_; }
  scope(const scope&) = delete;
  scope& operator=(const scope&) = delete;

 private:
  fn prev_;
};

/// RAII per-stage watchdog: meters everything executed while alive against
/// `budget` steps (0 or ~0ULL disables metering).  Exceeding the budget
/// raises detected_error(stage_hang) — a *detected* symptom the frame-level
/// recovery boundary can act on, unlike the global watchdog's hang_error
/// which remains the campaign-level Hang classification.  Nesting restores
/// the enclosing stage's meter (its own elapsed steps keep accumulating).
class stage_scope {
 public:
  explicit stage_scope(std::uint64_t budget) noexcept
      : prev_steps_(tls.stage_steps), prev_budget_(tls.stage_budget) {
    tls.stage_steps = 0;
    tls.stage_budget = budget == 0 ? ~0ULL : budget;
  }
  ~stage_scope() {
    // The enclosing stage also paid for the nested stage's steps.
    tls.stage_steps = prev_steps_ + tls.stage_steps;
    tls.stage_budget = prev_budget_;
  }
  stage_scope(const stage_scope&) = delete;
  stage_scope& operator=(const stage_scope&) = delete;

 private:
  std::uint64_t prev_steps_;
  std::uint64_t prev_budget_;
};

/// RAII lane switch for dual-execution replicas (resil::replicated /
/// verify_replica): disables the hooks while alive, so the replica re-runs
/// a stage through the hook-free clean-lane twins.  That keeps the second
/// execution cheap and keeps it out of the instrumented lane's dynamic-op
/// stream — a replica must neither shift the indices fault plans address
/// nor offer the already-fired injection a second strike.  The clean twins
/// are pinned byte-identical to the instrumented kernels, so a fault-free
/// replica always agrees with a fault-free primary.
class replica_scope {
 public:
  replica_scope() noexcept : prev_(tls.enabled) { tls.enabled = false; }
  ~replica_scope() { tls.enabled = prev_; }
  replica_scope(const replica_scope&) = delete;
  replica_scope& operator=(const replica_scope&) = delete;

 private:
  bool prev_;
};

/// Snapshot of the session-level mutable instrumentation state that a
/// recovery boundary must restore before re-attempting a unit of work whose
/// first attempt unwound mid-kernel: the attribution scope (normally
/// restored by rt::scope destructors, re-asserted here for defence in
/// depth) and the per-stage watchdog meter.  Injection bookkeeping (armed /
/// fired / match_count) is deliberately NOT restored: a transient fault
/// strikes once, so a retry must not re-arm or replay the same flip.
struct unwind_snapshot {
  fn cur = fn::other;
  std::uint64_t stage_steps = 0;
  std::uint64_t stage_budget = ~0ULL;

  static unwind_snapshot capture() noexcept {
    return {tls.cur, tls.stage_steps, tls.stage_budget};
  }
  void restore() const noexcept {
    tls.cur = cur;
    tls.stage_steps = stage_steps;
    tls.stage_budget = stage_budget;
  }
};

/// RAII instrumentation session: clears counters, enables hooks, optionally
/// arms a fault plan and sets a watchdog budget; restores the previous state
/// on destruction.  One session per pipeline run.
class session {
 public:
  session();
  explicit session(const fault_plan& plan,
                   std::uint64_t step_budget = ~0ULL);
  ~session();
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Counters accumulated so far in this session.
  [[nodiscard]] const counters& stats() const noexcept { return tls.c; }
  /// Whether the armed injection was actually applied.
  [[nodiscard]] bool fired() const noexcept { return tls.fired; }

 private:
  state saved_;
};

}  // namespace vs::rt
