#include "features/keypoint.h"

#include <bit>

namespace vs::feat {

int hamming_distance(const descriptor& a, const descriptor& b) noexcept {
  int distance = 0;
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    distance += std::popcount(a.bits[i] ^ b.bits[i]);
  }
  return distance;
}

int hamming_distance_bounded(const descriptor& a, const descriptor& b,
                             int bound) noexcept {
  int distance = 0;
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    distance += std::popcount(a.bits[i] ^ b.bits[i]);
    if (distance > bound) return bound + 1;
  }
  return distance;
}

}  // namespace vs::feat
