#include "features/keypoint.h"

#include <bit>

namespace vs::feat {

int hamming_distance(const descriptor& a, const descriptor& b) noexcept {
  int distance = 0;
  for (std::size_t i = 0; i < a.bits.size(); ++i) {
    distance += std::popcount(a.bits[i] ^ b.bits[i]);
  }
  return distance;
}

int hamming_distance_bounded(const descriptor& a, const descriptor& b,
                             int bound) noexcept {
  // Explicitly unrolled so the bound is provably re-checked after every
  // 64-bit word — the tightest early exit word-granular accumulation
  // allows.  Each exit returns bound + 1, never the overshooting partial,
  // which is what keeps the min(exact, bound + 1) contract exact.
  int distance = std::popcount(a.bits[0] ^ b.bits[0]);
  if (distance > bound) return bound + 1;
  distance += std::popcount(a.bits[1] ^ b.bits[1]);
  if (distance > bound) return bound + 1;
  distance += std::popcount(a.bits[2] ^ b.bits[2]);
  if (distance > bound) return bound + 1;
  distance += std::popcount(a.bits[3] ^ b.bits[3]);
  if (distance > bound) return bound + 1;
  return distance;
}

}  // namespace vs::feat
