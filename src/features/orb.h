// ORB descriptors: intensity-centroid orientation + rotated BRIEF
// (Rublee et al., ICCV 2011), over FAST keypoints.
#pragma once

#include <vector>

#include "features/fast.h"
#include "features/keypoint.h"
#include "image/image.h"

namespace vs::feat {

struct orb_params {
  fast_params fast;   ///< detector configuration
  int patch_radius = 7;  ///< sampling patch half-size for BRIEF pairs
};

/// Computes the intensity-centroid orientation (radians) of the patch
/// around (x, y).  Exposed for tests.
[[nodiscard]] float intensity_centroid_angle(const img::image_u8& gray, int x,
                                             int y, int radius);

/// Computes the 256-bit rotated-BRIEF descriptor of one oriented keypoint.
[[nodiscard]] descriptor orb_describe_one(const img::image_u8& gray,
                                          const keypoint& kp,
                                          int patch_radius);

/// Detects FAST keypoints and describes them with ORB.
/// The one-stop feature extractor used by the VS pipeline.
[[nodiscard]] frame_features orb_extract(const img::image_u8& gray,
                                         const orb_params& params);

}  // namespace vs::feat
