// ORB descriptors: intensity-centroid orientation + rotated BRIEF
// (Rublee et al., ICCV 2011), over FAST keypoints.
#pragma once

#include <vector>

#include "features/fast.h"
#include "features/keypoint.h"
#include "image/image.h"

namespace vs::feat {

struct orb_params {
  fast_params fast;   ///< detector configuration
  int patch_radius = 7;  ///< sampling patch half-size for BRIEF pairs
};

/// Computes the intensity-centroid orientation (radians) of the patch
/// around (x, y).  Exposed for tests.
[[nodiscard]] float intensity_centroid_angle(const img::image_u8& gray, int x,
                                             int y, int radius);

/// Computes the 256-bit rotated-BRIEF descriptor of one oriented keypoint.
[[nodiscard]] descriptor orb_describe_one(const img::image_u8& gray,
                                          const keypoint& kp,
                                          int patch_radius);

/// Detects FAST keypoints and describes them with ORB.
/// The one-stop feature extractor used by the VS pipeline.
[[nodiscard]] frame_features orb_extract(const img::image_u8& gray,
                                         const orb_params& params);

/// Dual-execution check of an extraction product (the detect/describe
/// stages' replication contract): re-derives every reported keypoint's
/// score, quantized orientation, and descriptor *at its stored
/// coordinates* on the hook-free lane and compares against the stored
/// fields.  The full-frame corner search is not repeated — scoring a few
/// hundred keypoints is O(keypoints) against the detector's O(pixels) — so
/// a fault that invents a well-formed keypoint the search would never have
/// emitted can escape, but any fault that perturbs a stored coordinate,
/// score, angle, or descriptor bit of a real detection diverges (the score
/// is recomputed at the stored position, so corrupt coordinates mismatch
/// too).  Returns false on the first disagreement.  Intended to run inside
/// a replica context.
[[nodiscard]] bool orb_verify_features(const img::image_u8& gray,
                                       const frame_features& features,
                                       const orb_params& params);

}  // namespace vs::feat
