// Keypoint and descriptor types shared by detection and matching.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vs::feat {

/// A detected corner with its FAST score and ORB orientation.
struct keypoint {
  float x = 0.0f;
  float y = 0.0f;
  float score = 0.0f;  ///< FAST corner score (sum of absolute differences)
  float angle = 0.0f;  ///< orientation in radians (intensity centroid)
};

/// 256-bit binary descriptor (rotated BRIEF), stored as 4 words.
struct descriptor {
  std::array<std::uint64_t, 4> bits = {};

  bool operator==(const descriptor&) const = default;
};

/// Hamming distance between two 256-bit descriptors (0..256).
[[nodiscard]] int hamming_distance(const descriptor& a,
                                   const descriptor& b) noexcept;

/// Hamming distance with early exit: returns bound + 1 as soon as the
/// partial distance exceeds `bound`.  This is what makes VS_SM's bounded
/// 1-NN search cheaper than the full 2-NN ratio-test search.
[[nodiscard]] int hamming_distance_bounded(const descriptor& a,
                                           const descriptor& b,
                                           int bound) noexcept;

/// Keypoints plus their descriptors for one frame.
struct frame_features {
  std::vector<keypoint> keypoints;
  std::vector<descriptor> descriptors;

  [[nodiscard]] std::size_t size() const noexcept { return keypoints.size(); }
  [[nodiscard]] bool empty() const noexcept { return keypoints.empty(); }
};

}  // namespace vs::feat
