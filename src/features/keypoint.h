// Keypoint and descriptor types shared by detection and matching.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vs::feat {

/// A detected corner with its FAST score and ORB orientation.
struct keypoint {
  float x = 0.0f;
  float y = 0.0f;
  float score = 0.0f;  ///< FAST corner score (sum of absolute differences)
  float angle = 0.0f;  ///< orientation in radians (intensity centroid)

  // Exact comparison: detection is deterministic and byte-identical across
  // lanes, so dual-execution checks compare bit patterns, not tolerances.
  bool operator==(const keypoint&) const = default;
};

/// 256-bit binary descriptor (rotated BRIEF), stored as 4 words.
///
/// The word array is 32-byte aligned so a descriptor is exactly one aligned
/// AVX2 lane: contiguous std::vector<descriptor> storage is then a dense
/// array of aligned 256-bit rows the SIMD Hamming scans can load with
/// aligned moves (over-aligned types get correctly aligned heap storage
/// from operator new since C++17).
struct descriptor {
  alignas(32) std::array<std::uint64_t, 4> bits = {};

  bool operator==(const descriptor&) const = default;
};

// The SIMD matcher indexes descriptor arrays as raw 32-byte rows; any
// padding or alignment drift would silently desynchronize those loads.
static_assert(sizeof(descriptor) == 32, "descriptor must be exactly 256 bits");
static_assert(alignof(descriptor) == 32, "descriptor rows must be one AVX2 lane");
static_assert(sizeof(descriptor[2]) == 64, "descriptor arrays must be dense");

/// Hamming distance between two 256-bit descriptors (0..256).
[[nodiscard]] int hamming_distance(const descriptor& a,
                                   const descriptor& b) noexcept;

/// Hamming distance with early exit, checked after every 64-bit word:
/// returns bound + 1 as soon as the partial distance exceeds `bound`, and
/// the exact distance otherwise.  Equivalently:
///
///     hamming_distance_bounded(a, b, k) ==
///         min(hamming_distance(a, b), k + 1)   for any k >= 0
///
/// so any bound >= 256 degenerates to the unbounded distance.  This
/// contract is what makes the bounded 2-NN/1-NN scans output-identical to
/// full scans (every clipped value is rejected by the same comparisons that
/// would reject the exact one) while VS_SM's bounded 1-NN search stays
/// cheaper than the full ratio-test search.
[[nodiscard]] int hamming_distance_bounded(const descriptor& a,
                                           const descriptor& b,
                                           int bound) noexcept;

/// Keypoints plus their descriptors for one frame.
struct frame_features {
  std::vector<keypoint> keypoints;
  std::vector<descriptor> descriptors;

  [[nodiscard]] std::size_t size() const noexcept { return keypoints.size(); }
  [[nodiscard]] bool empty() const noexcept { return keypoints.empty(); }

  bool operator==(const frame_features&) const = default;
};

}  // namespace vs::feat
