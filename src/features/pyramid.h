// Image pyramids and multi-scale ORB extraction.
//
// ORB proper detects on a scale pyramid (factor ~1.2, 8 levels) so matching
// survives zoom changes.  The calibrated experiments in this reproduction
// run single-scale (orb_params defaults) — the synthetic inputs bound their
// zoom range — but the pyramid path is provided (and tested) for real
// footage with stronger scale variation.
#pragma once

#include <vector>

#include "features/orb.h"
#include "image/image.h"

namespace vs::feat {

struct pyramid_level {
  img::image_u8 image;
  double scale = 1.0;  ///< base-image coords = level coords * scale
};

struct pyramid_params {
  int levels = 4;
  double scale_factor = 1.25;  ///< per-level downscale
  int min_dimension = 48;      ///< stop before either side shrinks below
};

/// Builds the pyramid: level 0 is the input; each subsequent level is the
/// previous one smoothed (3x3 box) and resampled by 1/scale_factor.
[[nodiscard]] std::vector<pyramid_level> build_pyramid(
    const img::image_u8& gray, const pyramid_params& params = {});

/// Bilinear resize to an explicit size (used by the pyramid; exposed as a
/// general imaging utility).
[[nodiscard]] img::image_u8 resize_bilinear(const img::image_u8& src,
                                            int width, int height);

/// Multi-scale ORB: detects and describes per level, mapping keypoint
/// coordinates back to base-image coordinates.  With levels == 1 this is
/// exactly orb_extract.
[[nodiscard]] frame_features orb_extract_pyramid(
    const img::image_u8& gray, const orb_params& params,
    const pyramid_params& pyramid = {});

}  // namespace vs::feat
