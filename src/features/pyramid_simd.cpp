#include "features/pyramid_simd.h"

#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace vs::feat::simd {

#if defined(__x86_64__)

namespace {

constexpr int inter_bits = 5;
constexpr int inter_scale = 1 << inter_bits;
constexpr int inter_round = 1 << (2 * inter_bits - 1);

__attribute__((target("avx2"))) void resize_row_avx2(
    const std::uint8_t* src, int sw, int sh, double sx_ratio, double sy_ratio,
    int y, int width, std::uint8_t* out_row) {
  // Row coordinate: one scalar evaluation, shared by every column — the
  // identical expression the scalar lane computes per pixel.
  const double v_cap = sh - 1.001;
  const double v = (y + 0.5) * sy_ratio - 0.5;
  const double vc = v < 0.0 ? 0.0 : (v_cap < v ? v_cap : v);
  const auto fy = static_cast<int>(vc * inter_scale);
  const int iy = fy >> inter_bits;
  const int wy = fy & (inter_scale - 1);
  const std::uint8_t* row0 = src + static_cast<std::ptrdiff_t>(iy) * sw;
  const std::uint8_t* row1 = row0 + sw;

  const double u_cap_s = sw - 1.001;
  const __m256d u_cap = _mm256_set1_pd(u_cap_s);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d ratio = _mm256_set1_pd(sx_ratio);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d scale = _mm256_set1_pd(static_cast<double>(inter_scale));
  const __m128i wy_v = _mm_set1_epi32(wy);
  const __m128i iwy_v = _mm_set1_epi32(inter_scale - wy);
  const __m128i ff = _mm_set1_epi32(0xff);

  int x = 0;
  for (; x + 4 <= width; x += 4) {
    // u = max(0, min((x + 0.5) * ratio - 0.5, cap)) — min/max_pd return
    // the same representable double as std::min/std::max here (no NaNs,
    // and u is never -0.0, so the tie behaviour is value-identical).
    const __m128i xi = _mm_add_epi32(_mm_set1_epi32(x),
                                     _mm_setr_epi32(0, 1, 2, 3));
    const __m256d xd = _mm256_cvtepi32_pd(xi);
    __m256d u = _mm256_sub_pd(_mm256_mul_pd(_mm256_add_pd(xd, half), ratio),
                              half);
    u = _mm256_max_pd(_mm256_min_pd(u, u_cap), zero);
    const __m128i fx = _mm256_cvttpd_epi32(_mm256_mul_pd(u, scale));
    const __m128i ix = _mm_srai_epi32(fx, inter_bits);
    const __m128i wx = _mm_and_si128(fx, _mm_set1_epi32(inter_scale - 1));

    // Every lane is in-domain (ix <= sw-2, iy <= sh-2), so both 16-bit tap
    // pairs load unconditionally.
    alignas(16) std::int32_t ix_arr[4];
    alignas(16) std::int32_t top_arr[4];
    alignas(16) std::int32_t bot_arr[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(ix_arr), ix);
    for (int lane = 0; lane < 4; ++lane) {
      std::uint16_t top_pair;
      std::uint16_t bot_pair;
      std::memcpy(&top_pair, row0 + ix_arr[lane], sizeof(top_pair));
      std::memcpy(&bot_pair, row1 + ix_arr[lane], sizeof(bot_pair));
      top_arr[lane] = top_pair;
      bot_arr[lane] = bot_pair;
    }
    const __m128i top = _mm_load_si128(reinterpret_cast<__m128i*>(top_arr));
    const __m128i bot = _mm_load_si128(reinterpret_cast<__m128i*>(bot_arr));
    const __m128i p00 = _mm_and_si128(top, ff);
    const __m128i p10 = _mm_and_si128(_mm_srli_epi32(top, 8), ff);
    const __m128i p01 = _mm_and_si128(bot, ff);
    const __m128i p11 = _mm_and_si128(_mm_srli_epi32(bot, 8), ff);

    const __m128i iwx = _mm_sub_epi32(_mm_set1_epi32(inter_scale), wx);
    __m128i acc = _mm_add_epi32(
        _mm_mullo_epi32(p00, _mm_mullo_epi32(iwx, iwy_v)),
        _mm_mullo_epi32(p10, _mm_mullo_epi32(wx, iwy_v)));
    acc = _mm_add_epi32(acc, _mm_mullo_epi32(p01, _mm_mullo_epi32(iwx, wy_v)));
    acc = _mm_add_epi32(acc, _mm_mullo_epi32(p11, _mm_mullo_epi32(wx, wy_v)));
    acc = _mm_srai_epi32(_mm_add_epi32(acc, _mm_set1_epi32(inter_round)),
                         2 * inter_bits);

    // Four results in [0, 255]: pack to bytes and store.
    const __m128i packed = _mm_packus_epi16(_mm_packus_epi32(acc, acc), acc);
    const int bytes = _mm_cvtsi128_si32(packed);
    std::memcpy(out_row + x, &bytes, 4);
  }

  for (; x < width; ++x) {
    const double u_raw = (x + 0.5) * sx_ratio - 0.5;
    const double capped = u_cap_s < u_raw ? u_cap_s : u_raw;
    const double uc = capped < 0.0 ? 0.0 : capped;
    const auto fx = static_cast<int>(uc * inter_scale);
    const int ix = fx >> inter_bits;
    const int wx = fx & (inter_scale - 1);
    const int acc = row0[ix] * ((inter_scale - wx) * (inter_scale - wy)) +
                    row0[ix + 1] * (wx * (inter_scale - wy)) +
                    row1[ix] * ((inter_scale - wx) * wy) +
                    row1[ix + 1] * (wx * wy);
    out_row[x] =
        static_cast<std::uint8_t>((acc + inter_round) >> (2 * inter_bits));
  }
}

}  // namespace

#endif  // __x86_64__

resize_row_fn select_resize_row(core::simd::level l, int sw, int sh) noexcept {
#if defined(__x86_64__)
  if (sw >= 2 && sh >= 2 && l >= core::simd::level::avx2) {
    return &resize_row_avx2;
  }
#else
  (void)l;
  (void)sw;
  (void)sh;
#endif
  return nullptr;
}

}  // namespace vs::feat::simd
