#include "features/harris.h"

#include "core/error.h"
#include "rt/instrument.h"

namespace vs::feat {

namespace {

// Sobel gradients at (x, y) via clamped sampling.
inline void sobel(const img::image_u8& gray, int x, int y, double& gx,
                  double& gy) {
  const auto p = [&](int dx, int dy) {
    return static_cast<double>(gray.sample_clamped(x + dx, y + dy));
  };
  gx = (p(1, -1) + 2.0 * p(1, 0) + p(1, 1)) -
       (p(-1, -1) + 2.0 * p(-1, 0) + p(-1, 1));
  gy = (p(-1, 1) + 2.0 * p(0, 1) + p(1, 1)) -
       (p(-1, -1) + 2.0 * p(0, -1) + p(1, -1));
}

}  // namespace

double harris_response(const img::image_u8& gray, int x, int y, int radius,
                       double k) {
  if (gray.channels() != 1) throw invalid_argument("harris: need gray");
  rt::scope attributed(rt::fn::fast_detect);
  double sum_xx = 0.0;
  double sum_yy = 0.0;
  double sum_xy = 0.0;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      double gx = 0.0;
      double gy = 0.0;
      sobel(gray, x + dx, y + dy, gx, gy);
      sum_xx += gx * gx;
      sum_yy += gy * gy;
      sum_xy += gx * gy;
    }
  }
  const auto window = static_cast<std::uint64_t>(2 * radius + 1);
  rt::account(rt::op::int_alu, window * window * 12);
  rt::account(rt::op::fp_alu, window * window * 6);
  const double det = sum_xx * sum_yy - sum_xy * sum_xy;
  const double trace = sum_xx + sum_yy;
  // Normalized so values are comparable across window sizes.
  const double norm = static_cast<double>(window * window) * 255.0;
  return (det - k * trace * trace) / (norm * norm);
}

}  // namespace vs::feat
