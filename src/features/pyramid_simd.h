// Vectorized bilinear-resize rows for the clean lane.
//
// resize_bilinear's per-pixel work is a pure function of (x, y): clamp the
// source coordinate, fixed-point bilinear from a 2x2 neighbourhood.  The
// row coordinate collapses to one scalar prefix per row, and the column
// expression — (x + 0.5) * ratio - 0.5, the min/max clamps, the truncating
// fixed-point convert, the integer tap blend — evaluates four lanes at a
// time with the exact IEEE operation the scalar path performs, so output
// bytes are identical at every SIMD level.
#pragma once

#include <cstdint>

#include "core/simd.h"

namespace vs::feat::simd {

/// One destination row: src is a single-channel sw x sh image with
/// sw, sh >= 2 (the clamps then always land strictly inside the
/// interpolation domain, matching the scalar always-valid sample path).
using resize_row_fn = void (*)(const std::uint8_t* src, int sw, int sh,
                               double sx_ratio, double sy_ratio, int y,
                               int width, std::uint8_t* out_row);

/// Kernel for `l` on an sw x sh source, or nullptr (scalar rows).
[[nodiscard]] resize_row_fn select_resize_row(core::simd::level l, int sw,
                                              int sh) noexcept;

}  // namespace vs::feat::simd
