#include "features/fast.h"

#include <algorithm>

#include <vector>

#include "core/dispatch.h"
#include "core/error.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "features/fast_simd.h"
#include "features/harris.h"
#include "rt/instrument.h"

namespace vs::feat {

namespace {

// Bresenham circle of radius 3: the 16 segment-test offsets, in order.
constexpr int circle_dx[16] = {0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3, -3, -3, -2, -1};
constexpr int circle_dy[16] = {-3, -3, -2, -1, 0, 1, 2, 3, 3, 3, 2, 1, 0, -1, -2, -3};
constexpr int segment_length = 9;  // FAST-9

// Classifies circle pixel i against center p with threshold t:
// +1 brighter, -1 darker, 0 similar.
inline int classify(int value, int center, int threshold) {
  if (value >= center + threshold) return 1;
  if (value <= center - threshold) return -1;
  return 0;
}

// True when >= segment_length contiguous circle pixels share `sign`.
bool has_contiguous_arc(const int (&cls)[16], int sign) {
  int run = 0;
  // Scan twice around the circle to handle wrap-around runs.
  for (int i = 0; i < 32; ++i) {
    if (cls[i & 15] == sign) {
      if (++run >= segment_length) return true;
    } else {
      run = 0;
    }
  }
  return false;
}

// Clean lane: band-parallel detection without fault-site hooks.  The
// arithmetic mirrors the instrumented lane below exactly (the hooks are
// value-preserving when disabled), the fixed row tiling makes the result
// independent of the worker count, and the per-band keypoint vectors are
// concatenated in band order so the final list matches the sequential
// raster order byte for byte.
constexpr std::int64_t row_band = 16;

std::vector<keypoint> fast_detect_clean(const img::image_u8& gray,
                                        const fast_params& params) {
  const int border = std::max(3, params.border);
  const int w = gray.width();
  const int h = gray.height();
  if (w <= 2 * border || h <= 2 * border) return {};
  const int threshold = std::max(1, params.threshold);

  img::basic_image<float> scores(w, h, 1);
  const std::uint8_t* data = gray.data();
  auto& pool = core::thread_pool::current();

  // Score pass: rows are independent; each band writes disjoint rows.  The
  // compass pre-test vectorizes (exact saturating byte math, so the
  // candidate set is identical at every SIMD level); survivors run the
  // unchanged scalar arc/score computation in ascending column order.
  const auto compass =
      feat::simd::select_compass_row(core::simd::active());
  pool.parallel_for(
      border, h - border, row_band,
      [&](std::int64_t y0, std::int64_t y1, std::size_t) {
        std::vector<std::uint8_t> candidate;
        if (compass != nullptr) candidate.resize(static_cast<std::size_t>(w));
        for (std::int64_t y = y0; y < y1; ++y) {
          const std::int64_t row = y * w;
          if (compass != nullptr) {
            compass(data, row, w, border, w - border, threshold,
                    candidate.data());
          }
          for (int x = border; x < w - border; ++x) {
            if (compass != nullptr) {
              if (candidate[static_cast<std::size_t>(x)] == 0) continue;
            } else {
              const std::int64_t center_off = row + x;
              const int center = data[center_off];
              const int top = data[center_off - 3 * w];
              const int bottom = data[center_off + 3 * w];
              const int left = data[center_off - 3];
              const int right = data[center_off + 3];
              int extreme = 0;
              extreme += classify(top, center, threshold) != 0;
              extreme += classify(bottom, center, threshold) != 0;
              extreme += classify(left, center, threshold) != 0;
              extreme += classify(right, center, threshold) != 0;
              if (extreme < 2) continue;
            }
            const int score =
                fast_score(gray, x, static_cast<int>(y), threshold);
            if (score <= 0) continue;
            scores.at(x, static_cast<int>(y)) =
                params.score == corner_score::harris
                    ? static_cast<float>(
                          1e6 * harris_response(gray, x, static_cast<int>(y)))
                    : static_cast<float>(score);
          }
        }
      });

  // Collection pass: non-max suppression reads the (now frozen) score map;
  // per-band outputs concatenated in band order reproduce raster order.
  const std::size_t bands =
      core::thread_pool::chunk_count(border, h - border, row_band);
  std::vector<std::vector<keypoint>> band_found(bands);
  pool.parallel_for(
      border, h - border, row_band,
      [&](std::int64_t y0, std::int64_t y1, std::size_t band) {
        auto& out = band_found[band];
        for (int y = static_cast<int>(y0); y < y1; ++y) {
          for (int x = border; x < w - border; ++x) {
            const float s = scores.at(x, y);
            if (s <= 0.0f) continue;
            if (params.nonmax_suppression) {
              bool is_max = true;
              for (int dy = -1; dy <= 1 && is_max; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                  if (dx == 0 && dy == 0) continue;
                  const float neighbour = scores.at(x + dx, y + dy);
                  if (neighbour > s ||
                      (neighbour == s && (dy < 0 || (dy == 0 && dx < 0)))) {
                    is_max = false;
                    break;
                  }
                }
              }
              if (!is_max) continue;
            }
            out.push_back(keypoint{static_cast<float>(x),
                                   static_cast<float>(y), s, 0.0f});
          }
        }
      });

  std::vector<keypoint> found;
  std::size_t total = 0;
  for (const auto& band : band_found) total += band.size();
  found.reserve(total);
  for (const auto& band : band_found) {
    found.insert(found.end(), band.begin(), band.end());
  }

  std::stable_sort(found.begin(), found.end(),
                   [](const keypoint& a, const keypoint& b) {
                     return a.score > b.score;
                   });
  const auto cap = rt::alloc_size(params.max_keypoints, 1 << 20);
  if (found.size() > cap) found.resize(cap);
  return found;
}

}  // namespace

int fast_score(const img::image_u8& gray, int x, int y, int threshold) {
  const int center = gray.at(x, y);
  int cls[16];
  int sum_bright = 0;
  int sum_dark = 0;
  for (int i = 0; i < 16; ++i) {
    const int v = gray.at(x + circle_dx[i], y + circle_dy[i]);
    cls[i] = classify(v, center, threshold);
    if (cls[i] > 0) sum_bright += v - center - threshold;
    if (cls[i] < 0) sum_dark += center - threshold - v;
  }
  const bool bright = has_contiguous_arc(cls, 1);
  const bool dark = has_contiguous_arc(cls, -1);
  if (!bright && !dark) return 0;
  if (bright && !dark) return sum_bright;
  if (dark && !bright) return sum_dark;
  return std::max(sum_bright, sum_dark);
}

namespace {

std::vector<keypoint> fast_detect_instrumented(const img::image_u8& gray,
                                               const fast_params& params) {
  rt::scope attributed(rt::fn::fast_detect);

  const int border = std::max(3, params.border);
  const int w = gray.width();
  const int h = gray.height();
  if (w <= 2 * border || h <= 2 * border) return {};

  // The detection threshold lives in a register across the whole scan: a
  // single GPR fault site covers it.
  const int threshold =
      std::max(1, rt::g32(params.threshold));

  img::basic_image<float> scores(w, h, 1);
  const std::uint8_t* data = gray.data();
  const std::size_t n = gray.size();

  for (int y = border; y < h - border; ++y) {
    // Row bound: a long-lived control register for the whole scan line.
    const auto row_end = static_cast<std::int64_t>(rt::ctrl(w - border));
    for (std::int64_t x = border; x < row_end; ++x) {
      // High-speed test: of the 4 compass pixels, at least 3 must differ for
      // a FAST-9 corner to be possible (standard early-exit).  Every read
      // goes through guarded address arithmetic: a corrupted row bound or
      // offset becomes a wild (wrapped or faulting) load, not silent UB.
      const std::int64_t center_off = static_cast<std::int64_t>(y) * w + x;
      const int center = data[rt::idx(center_off, n)];
      const int top =
          data[rt::idx(center_off - 3 * static_cast<std::int64_t>(w), n)];
      const int bottom =
          data[rt::idx(center_off + 3 * static_cast<std::int64_t>(w), n)];
      const int left = data[rt::idx(center_off - 3, n)];
      const int right = data[rt::idx(center_off + 3, n)];
      int extreme = 0;
      extreme += classify(top, center, threshold) != 0;
      extreme += classify(bottom, center, threshold) != 0;
      extreme += classify(left, center, threshold) != 0;
      extreme += classify(right, center, threshold) != 0;
      rt::account(rt::op::int_alu, 10);
      // A 9-of-16 contiguous arc always covers at least 2 of the 4 compass
      // points (FAST-9 quick test; 3-of-4 is only valid for FAST-12).
      if (extreme < 2) continue;
      if (x >= w - border) continue;  // only reachable via a corrupted bound
      const int score =
          fast_score(gray, static_cast<int>(x), y, threshold);
      rt::account(rt::op::int_alu, 48);
      if (score <= 0) continue;
      scores.at(static_cast<int>(x), y) =
          params.score == corner_score::harris
              ? static_cast<float>(
                    1e6 * harris_response(gray, static_cast<int>(x), y))
              : static_cast<float>(score);
    }
    rt::account(rt::op::branch, static_cast<std::uint64_t>(w));
  }

  std::vector<keypoint> found;
  for (int y = border; y < h - border; ++y) {
    for (int x = border; x < w - border; ++x) {
      const float s = scores.at(x, y);
      if (s <= 0.0f) continue;
      if (params.nonmax_suppression) {
        bool is_max = true;
        for (int dy = -1; dy <= 1 && is_max; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const float neighbour = scores.at(x + dx, y + dy);
            // Strict on earlier raster positions keeps exactly one of a tie.
            if (neighbour > s ||
                (neighbour == s && (dy < 0 || (dy == 0 && dx < 0)))) {
              is_max = false;
              break;
            }
          }
        }
        if (!is_max) continue;
      }
      found.push_back(keypoint{static_cast<float>(x), static_cast<float>(y),
                               s, 0.0f});
    }
  }
  rt::account(rt::op::branch, found.size() * 9);

  std::stable_sort(found.begin(), found.end(),
                   [](const keypoint& a, const keypoint& b) {
                     return a.score > b.score;
                   });
  const auto cap = rt::alloc_size(params.max_keypoints, 1 << 20);
  if (found.size() > cap) found.resize(cap);
  return found;
}

}  // namespace

std::vector<keypoint> fast_detect(const img::image_u8& gray,
                                  const fast_params& params) {
  if (gray.channels() != 1) throw invalid_argument("fast_detect: need gray");
  return core::dispatch(
      [&] { return fast_detect_clean(gray, params); },
      [&] { return fast_detect_instrumented(gray, params); });
}

}  // namespace vs::feat
