// Harris corner response — the scoring ORB uses to rank FAST candidates
// (Rublee et al. §3.1: "FAST does not produce a measure of cornerness ...
// we employ the Harris corner measure to order the FAST keypoints").
//
// Off by default in this reproduction (the calibrated experiments use the
// segment-test score); enable via fast_params::score.
#pragma once

#include "image/image.h"

namespace vs::feat {

/// Harris corner response at (x, y): det(M) - k * trace(M)^2 over a
/// (2*radius+1)^2 window of Sobel gradients.  Positive for corners,
/// negative for edges, ~0 for flat regions.
[[nodiscard]] double harris_response(const img::image_u8& gray, int x, int y,
                                     int radius = 3, double k = 0.04);

}  // namespace vs::feat
