// Vectorized FAST-9 compass pre-test for the clean lane.
//
// The clean-lane score pass spends most of its time rejecting non-corners:
// of the four compass pixels on the radius-3 circle, at least two must
// differ from the center by >= threshold before the full 16-pixel
// contiguous-arc test is worth running.  These kernels evaluate that
// pre-test for 32 (AVX2) or 16 (SSE4) columns at once with saturating
// unsigned arithmetic — exact integer math, so the candidate set is
// identical to the scalar classify() chain — and the caller runs the
// unchanged scalar arc/score computation on the surviving columns only.
#pragma once

#include <cstdint>

#include "core/simd.h"

namespace vs::feat::simd {

/// Fills mask[x] for x in [x0, x1) with 255 when column x of row `row_off`
/// (= y * width elements into `data`) passes the compass pre-test, else 0.
/// Requires x0 >= 3, x1 <= width - 3, and rows y +/- 3 inside the image —
/// the same preconditions the scalar border loop already guarantees.
using compass_row_fn = void (*)(const std::uint8_t* data, std::int64_t row_off,
                                int width, int x0, int x1, int threshold,
                                std::uint8_t* mask);

/// Kernel for `l`, or nullptr when the tier has none (scalar pre-test).
[[nodiscard]] compass_row_fn select_compass_row(core::simd::level l) noexcept;

}  // namespace vs::feat::simd
