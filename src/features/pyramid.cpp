#include "features/pyramid.h"

#include <algorithm>
#include <cmath>

#include "core/dispatch.h"
#include "core/error.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "features/pyramid_simd.h"
#include "geometry/warp.h"
#include "rt/instrument.h"

namespace vs::feat {

img::image_u8 resize_bilinear(const img::image_u8& src, int width,
                              int height) {
  if (src.empty() || width <= 0 || height <= 0) {
    throw invalid_argument("resize_bilinear: bad arguments");
  }
  if (src.channels() != 1) {
    throw invalid_argument("resize_bilinear: grayscale only");
  }
  img::image_u8 out(width, height, 1);
  const double sx = static_cast<double>(src.width()) / width;
  const double sy = static_cast<double>(src.height()) / height;
  // Per-pixel work is pure, so the clean lane runs the same body tiled over
  // row bands; the instrumented lane keeps the sequential scan.
  const auto resize_rows = [&](int y0, int y1) {
    for (int y = y0; y < y1; ++y) {
      for (int x = 0; x < width; ++x) {
        const double u = std::min((x + 0.5) * sx - 0.5,
                                  src.width() - 1.001);
        const double v = std::min((y + 0.5) * sy - 0.5,
                                  src.height() - 1.001);
        const auto sample =
            geo::sample_bilinear(src, std::max(0.0, u), std::max(0.0, v));
        out.at(x, y) = sample ? *sample : src.sample_clamped(
                                              static_cast<int>(u),
                                              static_cast<int>(v));
      }
    }
  };
  core::dispatch(
      [&] {
        // The SIMD row kernel evaluates the identical per-pixel expression
        // tree four lanes wide; bytes match the scalar rows exactly.
        const simd::resize_row_fn row_fn = simd::select_resize_row(
            core::simd::active(), src.width(), src.height());
        core::thread_pool::current().parallel_for(
            0, height, 16, [&](std::int64_t y0, std::int64_t y1, std::size_t) {
              if (row_fn != nullptr) {
                for (int y = static_cast<int>(y0); y < y1; ++y) {
                  row_fn(src.data(), src.width(), src.height(), sx, sy, y,
                         width, out.data() + static_cast<std::size_t>(y) *
                                                 static_cast<std::size_t>(width));
                }
              } else {
                resize_rows(static_cast<int>(y0), static_cast<int>(y1));
              }
            });
      },
      [&] {
        resize_rows(0, height);
        rt::account(rt::op::fp_alu,
                    static_cast<std::uint64_t>(width) * height * 4);
      });
  return out;
}

std::vector<pyramid_level> build_pyramid(const img::image_u8& gray,
                                         const pyramid_params& params) {
  if (gray.channels() != 1) throw invalid_argument("build_pyramid: need gray");
  if (params.levels < 1 || params.scale_factor <= 1.0) {
    throw invalid_argument("build_pyramid: levels >= 1, factor > 1 required");
  }
  std::vector<pyramid_level> pyramid;
  pyramid.push_back({gray, 1.0});
  for (int level = 1; level < params.levels; ++level) {
    const double scale = std::pow(params.scale_factor, level);
    const int w = static_cast<int>(std::lround(gray.width() / scale));
    const int h = static_cast<int>(std::lround(gray.height() / scale));
    if (w < params.min_dimension || h < params.min_dimension) break;
    // Smooth before resampling to avoid aliasing the high frequencies.
    pyramid.push_back(
        {resize_bilinear(img::box_blur3(pyramid.back().image), w, h),
         static_cast<double>(gray.width()) / w});
  }
  return pyramid;
}

frame_features orb_extract_pyramid(const img::image_u8& gray,
                                   const orb_params& params,
                                   const pyramid_params& pyramid_config) {
  const auto pyramid = build_pyramid(gray, pyramid_config);
  frame_features combined;
  for (const auto& level : pyramid) {
    const auto features = orb_extract(level.image, params);
    for (std::size_t i = 0; i < features.size(); ++i) {
      keypoint kp = features.keypoints[i];
      kp.x = static_cast<float>(kp.x * level.scale);
      kp.y = static_cast<float>(kp.y * level.scale);
      combined.keypoints.push_back(kp);
      combined.descriptors.push_back(features.descriptors[i]);
    }
  }
  return combined;
}

}  // namespace vs::feat
