#include "features/orb.h"

#include <algorithm>
#include <cmath>

#include "core/dispatch.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "features/harris.h"
#include "rt/instrument.h"

namespace vs::feat {

namespace {

constexpr int pattern_size = 256;

// The BRIEF sampling pattern: 256 point pairs inside the patch.  Generated
// once, deterministically, from an isotropic Gaussian clipped to the patch
// square (the construction Calonder's BRIEF used; ORB's learned pattern is
// equivalent for this reproduction and not redistributable as data).
struct brief_pattern {
  float ax[pattern_size];
  float ay[pattern_size];
  float bx[pattern_size];
  float by[pattern_size];
};

const brief_pattern& pattern_for_radius(int radius) {
  static const brief_pattern pattern = [] {
    brief_pattern p{};
    rng gen(0x0b5e55ed5eedULL);
    constexpr int build_radius = 1024;  // normalized; scaled at sample time
    const double sigma = build_radius / 2.0;
    auto clip = [&](double v) {
      return std::clamp(v, -static_cast<double>(build_radius),
                        static_cast<double>(build_radius));
    };
    for (int i = 0; i < pattern_size; ++i) {
      p.ax[i] = static_cast<float>(clip(gen.normal() * sigma) / build_radius);
      p.ay[i] = static_cast<float>(clip(gen.normal() * sigma) / build_radius);
      p.bx[i] = static_cast<float>(clip(gen.normal() * sigma) / build_radius);
      p.by[i] = static_cast<float>(clip(gen.normal() * sigma) / build_radius);
    }
    return p;
  }();
  (void)radius;
  return pattern;
}

}  // namespace

float intensity_centroid_angle(const img::image_u8& gray, int x, int y,
                               int radius) {
  rt::scope attributed(rt::fn::orb_describe);
  const std::uint8_t* data = gray.data();
  const std::size_t n = gray.size();
  const int w = gray.width();
  std::int64_t m01 = 0;
  std::int64_t m10 = 0;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy > radius * radius) continue;
      const std::int64_t off =
          static_cast<std::int64_t>(y + dy) * w + (x + dx);
      const int v = data[rt::idx(off, n)];
      m10 += static_cast<std::int64_t>(dx) * v;
      m01 += static_cast<std::int64_t>(dy) * v;
    }
  }
  rt::account(rt::op::int_alu,
              static_cast<std::uint64_t>((2 * radius + 1) * (2 * radius + 1)) *
                  4);
  // The moments feed an FPR op (atan2): one representative FP fault site.
  const double angle =
      std::atan2(rt::f64(static_cast<double>(m01)),
                 static_cast<double>(rt::g64(m10)));
  rt::account(rt::op::fp_alu, 6);
  return static_cast<float>(angle);
}

namespace {

// Pre-rotated integer sampling offsets for every orientation bin, as OpenCV
// does with its precomputed pattern tables: the per-keypoint cost is then
// two guarded loads and a compare per pair, with no per-pair trigonometry.
struct rotated_pattern {
  std::int16_t ax[pattern_size];
  std::int16_t ay[pattern_size];
  std::int16_t bx[pattern_size];
  std::int16_t by[pattern_size];
};

constexpr int orientation_bins = 30;

const rotated_pattern& rotated_for(int bin, int patch_radius) {
  // The pattern is scale-fixed per process (one patch radius in practice);
  // built lazily once for the first radius seen (magic-static, thread-safe).
  static const int built_radius = patch_radius;
  static const std::array<rotated_pattern, orientation_bins> bins = [] {
    std::array<rotated_pattern, orientation_bins> out{};
    const brief_pattern& pat = pattern_for_radius(built_radius);
    for (int b = 0; b < orientation_bins; ++b) {
      const double angle = 2.0 * 3.14159265358979323846 * b / orientation_bins;
      const double c = std::cos(angle);
      const double s = std::sin(angle);
      for (int i = 0; i < pattern_size; ++i) {
        const double scale = built_radius;
        out[b].ax[i] = static_cast<std::int16_t>(
            std::lround((pat.ax[i] * c - pat.ay[i] * s) * scale));
        out[b].ay[i] = static_cast<std::int16_t>(
            std::lround((pat.ax[i] * s + pat.ay[i] * c) * scale));
        out[b].bx[i] = static_cast<std::int16_t>(
            std::lround((pat.bx[i] * c - pat.by[i] * s) * scale));
        out[b].by[i] = static_cast<std::int16_t>(
            std::lround((pat.bx[i] * s + pat.by[i] * c) * scale));
      }
    }
    return out;
  }();
  return bins[static_cast<std::size_t>(bin % orientation_bins)];
}

// Clean lane: hook-free twins of the per-keypoint kernels.  Same arithmetic
// as the instrumented versions (whose hooks are value-preserving when
// disabled), with direct loads instead of guarded address arithmetic.

float intensity_centroid_angle_clean(const img::image_u8& gray, int x, int y,
                                     int radius) {
  const std::uint8_t* data = gray.data();
  const int w = gray.width();
  std::int64_t m01 = 0;
  std::int64_t m10 = 0;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy > radius * radius) continue;
      const int v = data[static_cast<std::int64_t>(y + dy) * w + (x + dx)];
      m10 += static_cast<std::int64_t>(dx) * v;
      m01 += static_cast<std::int64_t>(dy) * v;
    }
  }
  return static_cast<float>(
      std::atan2(static_cast<double>(m01), static_cast<double>(m10)));
}

descriptor orb_describe_one_clean(const img::image_u8& gray,
                                  const keypoint& kp, int patch_radius) {
  constexpr double two_pi = 2.0 * 3.14159265358979323846;
  const double positive = kp.angle < 0 ? kp.angle + two_pi : kp.angle;
  const int bin = static_cast<int>(positive / two_pi * orientation_bins + 0.5) %
                  orientation_bins;
  const rotated_pattern& pat = rotated_for(bin, patch_radius);

  const std::uint8_t* data = gray.data();
  const int w = gray.width();
  const auto cx = static_cast<int>(kp.x);
  const auto cy = static_cast<int>(kp.y);

  descriptor d;
  for (int i = 0; i < pattern_size; ++i) {
    const std::int64_t off_a =
        static_cast<std::int64_t>(cy + pat.ay[i]) * w + (cx + pat.ax[i]);
    const std::int64_t off_b =
        static_cast<std::int64_t>(cy + pat.by[i]) * w + (cx + pat.bx[i]);
    if (data[off_a] < data[off_b]) {
      d.bits[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
    }
  }
  return d;
}

// Clean lane of the full extraction: detection dispatches to its own clean
// lane, then orientation + description fan out over keypoint chunks.  Each
// chunk writes disjoint slots of the pre-sized outputs, so the result is
// identical to the sequential in-order loop.
frame_features orb_extract_clean(const img::image_u8& gray,
                                 const orb_params& params) {
  fast_params fp = params.fast;
  fp.border = std::max(fp.border, params.patch_radius * 2 + 2);

  frame_features out;
  out.keypoints = fast_detect(gray, fp);
  const img::image_u8 smooth = img::box_blur3(gray);
  out.descriptors.resize(out.keypoints.size());

  constexpr double two_pi = 2.0 * 3.14159265358979323846;
  constexpr int angle_bins = 30;
  core::thread_pool::current().parallel_for(
      0, static_cast<std::int64_t>(out.keypoints.size()), 32,
      [&](std::int64_t i0, std::int64_t i1, std::size_t) {
        for (std::int64_t i = i0; i < i1; ++i) {
          auto& kp = out.keypoints[static_cast<std::size_t>(i)];
          const float raw = intensity_centroid_angle_clean(
              gray, static_cast<int>(kp.x), static_cast<int>(kp.y),
              params.patch_radius);
          const double positive = raw < 0 ? raw + two_pi : raw;
          const int bin =
              static_cast<int>(positive / two_pi * angle_bins + 0.5) %
              angle_bins;
          kp.angle = static_cast<float>(bin * two_pi / angle_bins);
          out.descriptors[static_cast<std::size_t>(i)] =
              orb_describe_one_clean(smooth, kp, params.patch_radius);
        }
      });
  return out;
}

}  // namespace

descriptor orb_describe_one(const img::image_u8& gray, const keypoint& kp,
                            int patch_radius) {
  rt::scope attributed(rt::fn::orb_describe);
  constexpr double two_pi = 2.0 * 3.14159265358979323846;
  const double positive = kp.angle < 0 ? kp.angle + two_pi : kp.angle;
  const int bin = static_cast<int>(positive / two_pi * orientation_bins + 0.5) %
                  orientation_bins;
  const rotated_pattern& pat = rotated_for(bin, patch_radius);

  const std::uint8_t* data = gray.data();
  const std::size_t n = gray.size();
  const int w = gray.width();
  const auto cx = static_cast<int>(kp.x);
  const auto cy = static_cast<int>(kp.y);

  descriptor d;
  for (int i = 0; i < pattern_size; ++i) {
    const std::int64_t off_a =
        static_cast<std::int64_t>(cy + pat.ay[i]) * w + (cx + pat.ax[i]);
    const std::int64_t off_b =
        static_cast<std::int64_t>(cy + pat.by[i]) * w + (cx + pat.bx[i]);
    const std::uint8_t va = data[rt::idx(off_a, n)];
    const std::uint8_t vb = data[rt::idx(off_b, n)];
    if (va < vb) {
      d.bits[static_cast<std::size_t>(i >> 6)] |= 1ULL << (i & 63);
    }
  }
  rt::account(rt::op::int_alu, pattern_size * 4);
  // The packed descriptor words are long-lived register values while the
  // frame is matched; expose each as a GPR fault site once.
  for (auto& word : d.bits) {
    word = static_cast<std::uint64_t>(
        rt::g64(static_cast<std::int64_t>(word)));
  }
  return d;
}

namespace {

frame_features orb_extract_instrumented(const img::image_u8& gray,
                                        const orb_params& params) {
  fast_params fp = params.fast;
  fp.border = std::max(fp.border, params.patch_radius * 2 + 2);

  frame_features out;
  out.keypoints = fast_detect(gray, fp);
  out.descriptors.reserve(out.keypoints.size());
  // Describe on a smoothed image (detection stays on the raw one): BRIEF
  // comparisons on an unsmoothed image are flipped by sensor noise.
  const img::image_u8 smooth = [&] {
    rt::scope attributed(rt::fn::orb_describe);
    rt::account(rt::op::int_alu,
                static_cast<std::uint64_t>(gray.width()) * gray.height() * 4);
    rt::account(rt::op::mem,
                static_cast<std::uint64_t>(gray.width()) * gray.height() * 2);
    return img::box_blur3(gray);
  }();
  // ORB quantizes orientation (OpenCV uses ~12 degree steps via its
  // precomputed pattern tables); quantizing here keeps descriptors of the
  // same physical corner bit-identical under small orientation jitter.
  constexpr double two_pi = 2.0 * 3.14159265358979323846;
  constexpr int angle_bins = 30;
  for (auto& kp : out.keypoints) {
    const float raw = intensity_centroid_angle(
        gray, static_cast<int>(kp.x), static_cast<int>(kp.y),
        params.patch_radius);
    const double positive = raw < 0 ? raw + two_pi : raw;
    const int bin =
        static_cast<int>(positive / two_pi * angle_bins + 0.5) % angle_bins;
    kp.angle = static_cast<float>(bin * two_pi / angle_bins);
    out.descriptors.push_back(
        orb_describe_one(smooth, kp, params.patch_radius));
  }
  return out;
}

}  // namespace

frame_features orb_extract(const img::image_u8& gray,
                           const orb_params& params) {
  if (gray.channels() != 1) throw invalid_argument("orb_extract: need gray");
  return core::dispatch(
      [&] { return orb_extract_clean(gray, params); },
      [&] { return orb_extract_instrumented(gray, params); });
}

bool orb_verify_features(const img::image_u8& gray,
                         const frame_features& features,
                         const orb_params& params) {
  if (features.keypoints.size() != features.descriptors.size()) return false;
  if (features.keypoints.size() >
      static_cast<std::size_t>(std::max(0, params.fast.max_keypoints))) {
    return false;
  }
  if (features.keypoints.empty()) return true;

  // Mirror the extractor's effective detection window exactly: any stored
  // coordinate outside it cannot be a genuine detection, and rejecting it
  // here keeps the clean-lane reloads below in bounds.
  const int border =
      std::max(3, std::max(params.fast.border, params.patch_radius * 2 + 2));
  const int w = gray.width();
  const int h = gray.height();
  const int threshold = std::max(1, params.fast.threshold);
  const img::image_u8 smooth = img::box_blur3(gray);
  constexpr double two_pi = 2.0 * 3.14159265358979323846;

  for (std::size_t i = 0; i < features.keypoints.size(); ++i) {
    const keypoint& kp = features.keypoints[i];
    const int x = static_cast<int>(kp.x);
    const int y = static_cast<int>(kp.y);
    // FAST emits integral positions; a fractional (or NaN) coordinate can
    // only come from a fault.
    if (static_cast<float>(x) != kp.x || static_cast<float>(y) != kp.y) {
      return false;
    }
    if (x < border || y < border || x >= w - border || y >= h - border) {
      return false;
    }
    const float score =
        params.fast.score == corner_score::harris
            ? static_cast<float>(1e6 * harris_response(gray, x, y))
            : static_cast<float>(fast_score(gray, x, y, threshold));
    if (score != kp.score || !(score > 0.0f)) return false;
    const float raw =
        intensity_centroid_angle_clean(gray, x, y, params.patch_radius);
    const double positive = raw < 0 ? raw + two_pi : raw;
    const int bin =
        static_cast<int>(positive / two_pi * orientation_bins + 0.5) %
        orientation_bins;
    if (kp.angle != static_cast<float>(bin * two_pi / orientation_bins)) {
      return false;
    }
    if (!(orb_describe_one_clean(smooth, kp, params.patch_radius) ==
          features.descriptors[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace vs::feat
