#include "features/fast_simd.h"

#include <algorithm>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace vs::feat::simd {

namespace {

// Scalar tail shared by both tiers: the same arithmetic as the kernels, one
// column at a time (and the same answers as the scalar classify() chain).
inline void compass_tail(const std::uint8_t* data, std::int64_t row_off,
                         int width, int x0, int x1, int threshold,
                         std::uint8_t* mask) {
  for (int x = x0; x < x1; ++x) {
    const std::int64_t center_off = row_off + x;
    const int center = data[center_off];
    const int probes[4] = {data[center_off - 3 * width],
                           data[center_off + 3 * width],
                           data[center_off - 3], data[center_off + 3]};
    int extreme = 0;
    for (const int v : probes) {
      extreme += (v >= center + threshold || v <= center - threshold) ? 1 : 0;
    }
    mask[x] = extreme >= 2 ? 255 : 0;
  }
}

#if defined(__x86_64__)

// |v - center| >= t on unsigned bytes: max of the two saturating
// differences, then a >= compare via max-equality (t is clamped to [1,255]
// by the caller; a byte difference can never reach a threshold above 255).
__attribute__((target("avx2"))) inline __m256i differs_avx2(
    __m256i v, __m256i center, __m256i t) noexcept {
  const __m256i diff = _mm256_max_epu8(_mm256_subs_epu8(v, center),
                                       _mm256_subs_epu8(center, v));
  return _mm256_cmpeq_epi8(_mm256_max_epu8(diff, t), diff);
}

__attribute__((target("avx2"))) void compass_row_avx2(
    const std::uint8_t* data, std::int64_t row_off, int width, int x0, int x1,
    int threshold, std::uint8_t* mask) {
  if (threshold > 255) {
    // A byte can never differ by more than 255: no column passes.
    std::fill(mask + x0, mask + x1, std::uint8_t{0});
    return;
  }
  const __m256i t = _mm256_set1_epi8(static_cast<char>(threshold));
  const __m256i minus_one = _mm256_set1_epi8(-1);
  int x = x0;
  for (; x + 32 <= x1; x += 32) {
    const std::uint8_t* center_ptr = data + row_off + x;
    const __m256i center =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(center_ptr));
    const __m256i top = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(center_ptr - 3 * width));
    const __m256i bottom = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(center_ptr + 3 * width));
    const __m256i left =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(center_ptr - 3));
    const __m256i right =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(center_ptr + 3));
    // Each compare is 0x00/0xff == 0/-1 per byte; summing four gives
    // -extreme, and extreme >= 2 is (-1 > sum) in signed bytes.
    const __m256i sum = _mm256_add_epi8(
        _mm256_add_epi8(differs_avx2(top, center, t),
                        differs_avx2(bottom, center, t)),
        _mm256_add_epi8(differs_avx2(left, center, t),
                        differs_avx2(right, center, t)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + x),
                        _mm256_cmpgt_epi8(minus_one, sum));
  }
  compass_tail(data, row_off, width, x, x1, threshold, mask);
}

__attribute__((target("sse4.2"))) inline __m128i differs_sse4(
    __m128i v, __m128i center, __m128i t) noexcept {
  const __m128i diff =
      _mm_max_epu8(_mm_subs_epu8(v, center), _mm_subs_epu8(center, v));
  return _mm_cmpeq_epi8(_mm_max_epu8(diff, t), diff);
}

__attribute__((target("sse4.2"))) void compass_row_sse4(
    const std::uint8_t* data, std::int64_t row_off, int width, int x0, int x1,
    int threshold, std::uint8_t* mask) {
  if (threshold > 255) {
    std::fill(mask + x0, mask + x1, std::uint8_t{0});
    return;
  }
  const __m128i t = _mm_set1_epi8(static_cast<char>(threshold));
  const __m128i minus_one = _mm_set1_epi8(-1);
  int x = x0;
  for (; x + 16 <= x1; x += 16) {
    const std::uint8_t* center_ptr = data + row_off + x;
    const __m128i center =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(center_ptr));
    const __m128i top = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(center_ptr - 3 * width));
    const __m128i bottom = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(center_ptr + 3 * width));
    const __m128i left =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(center_ptr - 3));
    const __m128i right =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(center_ptr + 3));
    const __m128i sum = _mm_add_epi8(
        _mm_add_epi8(differs_sse4(top, center, t),
                     differs_sse4(bottom, center, t)),
        _mm_add_epi8(differs_sse4(left, center, t),
                     differs_sse4(right, center, t)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mask + x),
                     _mm_cmpgt_epi8(minus_one, sum));
  }
  compass_tail(data, row_off, width, x, x1, threshold, mask);
}

#endif  // __x86_64__

}  // namespace

compass_row_fn select_compass_row(core::simd::level l) noexcept {
#if defined(__x86_64__)
  if (l >= core::simd::level::avx2) return &compass_row_avx2;
  if (l >= core::simd::level::sse4) return &compass_row_sse4;
#else
  (void)l;
#endif
  return nullptr;
}

}  // namespace vs::feat::simd
