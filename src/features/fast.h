// FAST (Features from Accelerated Segment Test) corner detection —
// Rosten & Drummond's FAST-9/16 variant, as used by the VS application.
#pragma once

#include <vector>

#include "features/keypoint.h"
#include "image/image.h"

namespace vs::feat {

/// How detected corners are scored (for NMS and strongest-first ranking).
enum class corner_score {
  segment_test,  ///< FAST's own SAD score (this reproduction's default)
  harris,        ///< Harris response, as ORB proper ranks FAST corners
};

struct fast_params {
  int threshold = 10;        ///< intensity delta for the segment test
  int max_keypoints = 300;   ///< keep the strongest N after NMS
  bool nonmax_suppression = true;
  int border = 17;           ///< keep-out margin (descriptor patch + 1)
  corner_score score = corner_score::segment_test;
};

/// Detects FAST-9 corners on a grayscale image.  Keypoints are returned
/// strongest-first; ties broken by raster order for determinism.
[[nodiscard]] std::vector<keypoint> fast_detect(const img::image_u8& gray,
                                                const fast_params& params);

/// Segment-test score of a single pixel (0 when not a corner).  Exposed for
/// tests and for the detector's own scoring.
[[nodiscard]] int fast_score(const img::image_u8& gray, int x, int y,
                             int threshold);

}  // namespace vs::feat
