#include "track/motion.h"

#include <algorithm>
#include <vector>

#include "core/error.h"
#include "geometry/warp.h"
#include "image/pixel.h"
#include "rt/instrument.h"

namespace vs::track {

img::image_u8 majority3(const img::image_u8& mask) {
  img::image_u8 out(mask.width(), mask.height(), 1);
  for (int y = 0; y < mask.height(); ++y) {
    for (int x = 0; x < mask.width(); ++x) {
      int votes = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          votes += mask.sample_clamped(x + dx, y + dy) > 0 ? 1 : 0;
        }
      }
      out.at(x, y) = votes >= 5 ? 255 : 0;
    }
  }
  return out;
}

img::image_u8 change_mask(const img::image_u8& current,
                          const img::image_u8& previous,
                          const geo::mat3& prev_to_cur,
                          const motion_params& params) {
  if (current.channels() != 1 || previous.channels() != 1) {
    throw invalid_argument("change_mask: grayscale frames required");
  }
  // Warp the previous frame into current-frame coordinates so only true
  // scene motion (not camera motion) survives the difference.
  const geo::rect frame_rect{0, 0, current.width(), current.height()};
  const auto warped = geo::warp_perspective(previous, prev_to_cur, frame_rect);

  img::image_u8 mask(current.width(), current.height(), 1);
  const int border = std::max(0, params.border);
  for (int y = border; y < current.height() - border; ++y) {
    for (int x = border; x < current.width() - border; ++x) {
      if (warped.valid.at(x, y) == 0) continue;
      const int diff = img::absdiff_u8(current.at(x, y),
                                       warped.pixels.at(x, y));
      if (diff > params.diff_threshold) mask.at(x, y) = 255;
    }
    rt::account(rt::op::int_alu,
                static_cast<std::uint64_t>(current.width()) * 3);
  }
  return params.majority_filter ? majority3(mask) : mask;
}

std::vector<detection> find_components(const img::image_u8& mask,
                                       const img::image_u8& reference,
                                       const motion_params& params) {
  if (mask.width() != reference.width() ||
      mask.height() != reference.height()) {
    throw invalid_argument("find_components: shape mismatch");
  }
  const int w = mask.width();
  const int h = mask.height();
  std::vector<int> labels(static_cast<std::size_t>(w) * h, -1);
  std::vector<detection> detections;

  std::vector<std::size_t> stack;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t seed = static_cast<std::size_t>(y) * w + x;
      if (mask[seed] == 0 || labels[seed] >= 0) continue;

      // Flood fill (4-connectivity) collecting component statistics.
      const int label = static_cast<int>(detections.size());
      stack.assign(1, seed);
      labels[seed] = label;
      long long sum_x = 0;
      long long sum_y = 0;
      long long sum_strength = 0;
      int min_x = x;
      int max_x = x;
      int min_y = y;
      int max_y = y;
      int area = 0;
      while (!stack.empty()) {
        const std::size_t at = stack.back();
        stack.pop_back();
        const int cx = static_cast<int>(at % static_cast<std::size_t>(w));
        const int cy = static_cast<int>(at / static_cast<std::size_t>(w));
        ++area;
        sum_x += cx;
        sum_y += cy;
        sum_strength += reference[at];
        min_x = std::min(min_x, cx);
        max_x = std::max(max_x, cx);
        min_y = std::min(min_y, cy);
        max_y = std::max(max_y, cy);
        const int nx[4] = {cx - 1, cx + 1, cx, cx};
        const int ny[4] = {cy, cy, cy - 1, cy + 1};
        for (int k = 0; k < 4; ++k) {
          if (nx[k] < 0 || ny[k] < 0 || nx[k] >= w || ny[k] >= h) continue;
          const std::size_t neighbour =
              static_cast<std::size_t>(ny[k]) * w + nx[k];
          if (mask[neighbour] == 0 || labels[neighbour] >= 0) continue;
          labels[neighbour] = label;
          stack.push_back(neighbour);
        }
      }

      if (area < params.min_area || area > params.max_area) continue;
      detection d;
      d.area = area;
      d.centroid = {static_cast<double>(sum_x) / area,
                    static_cast<double>(sum_y) / area};
      d.bbox = {min_x, min_y, max_x - min_x + 1, max_y - min_y + 1};
      d.strength = static_cast<double>(sum_strength) / area;
      detections.push_back(d);
    }
  }
  rt::account(rt::op::mem, static_cast<std::uint64_t>(w) * h / 4);
  return detections;
}

std::vector<detection> detect_motion(const img::image_u8& current,
                                     const img::image_u8& previous,
                                     const geo::mat3& prev_to_cur,
                                     const motion_params& params) {
  const auto mask = change_mask(current, previous, prev_to_cur, params);
  return find_components(mask, mask, params);
}

}  // namespace vs::track
