// Multi-object tracking over motion detections — the "detection,
// recognition and tracking of moving objects" element of the paper's event
// summarization (Fig 2).
//
// A deliberately classic design: constant-velocity prediction, greedy
// gated nearest-neighbour association, tentative/confirmed/lost lifecycle.
// Tracks live in the mini-panorama's anchor coordinate system so they can
// be overlaid directly on the coverage summary.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/mat3.h"
#include "track/motion.h"

namespace vs::track {

enum class track_state : std::uint8_t {
  tentative,  ///< seen, not yet confirmed
  confirmed,  ///< hit in >= confirm_hits frames
  lost,       ///< missed in > max_misses consecutive frames
};

/// One tracked object.  `path` holds the associated detection centroids in
/// anchor (panorama) coordinates, one entry per frame where it was seen.
struct object_track {
  int id = 0;
  track_state state = track_state::tentative;
  geo::vec2 position;  ///< latest position (anchor coords)
  geo::vec2 velocity;  ///< per-frame displacement estimate
  std::vector<geo::vec2> path;
  int hits = 0;
  int misses = 0;
  int last_frame = -1;
};

struct tracker_params {
  double gate_radius = 10.0;     ///< association gate (anchor px)
  int confirm_hits = 3;          ///< hits to promote tentative -> confirmed
  int max_misses = 3;            ///< consecutive misses before lost
  double velocity_smoothing = 0.5;  ///< EMA factor for velocity updates
};

/// Online tracker: feed each frame's detections (already transformed to
/// anchor coordinates) in order.
class tracker {
 public:
  explicit tracker(const tracker_params& params = {});

  /// Advances one frame: predicts every live track, associates detections
  /// greedily (nearest first) within the gate, spawns tentative tracks for
  /// the leftovers, and ages out misses.
  void observe(int frame_index, const std::vector<geo::vec2>& detections);

  /// All tracks ever created (including lost ones, for the overlay).
  [[nodiscard]] const std::vector<object_track>& tracks() const noexcept {
    return tracks_;
  }

  /// Currently confirmed (alive) track count.
  [[nodiscard]] std::size_t confirmed_count() const;

 private:
  tracker_params params_;
  std::vector<object_track> tracks_;
  int next_id_ = 1;
};

}  // namespace vs::track
