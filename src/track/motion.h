// Moving-object detection for event summarization (the second half of the
// paper's Fig 2 workflow).
//
// Detection is alignment-compensated frame differencing: the previous frame
// is warped into the current frame's coordinates using the inter-frame
// model the coverage pipeline already estimated, the absolute difference is
// thresholded and cleaned with a majority filter, and connected components
// above a minimum area become detections.  On the synthetic inputs the
// relocating clutter points (vehicles, people) are exactly what this finds.
#pragma once

#include <vector>

#include "geometry/mat3.h"
#include "geometry/warp.h"
#include "image/image.h"

namespace vs::track {

/// One moving-object detection in frame coordinates.
struct detection {
  geo::vec2 centroid;
  geo::rect bbox;       ///< tight bounding box (frame coords)
  int area = 0;         ///< changed pixels in the component
  double strength = 0;  ///< mean absolute difference over the component
};

struct motion_params {
  int diff_threshold = 48;   ///< |cur - warped prev| that counts as change
  int min_area = 3;          ///< components smaller than this are noise
  int max_area = 400;        ///< larger blobs are parallax/misalignment
  int border = 6;            ///< ignore a margin (warp edge artifacts)
  bool majority_filter = true;  ///< 3x3 majority vote denoising
};

/// Change mask between `current` and `previous` warped through
/// `prev_to_cur` (pixels are 255 where motion was detected).
[[nodiscard]] img::image_u8 change_mask(const img::image_u8& current,
                                        const img::image_u8& previous,
                                        const geo::mat3& prev_to_cur,
                                        const motion_params& params);

/// Connected components (4-connectivity) of a binary mask, filtered by the
/// area band, returned as detections.  `reference` provides the strength
/// values (use the raw difference image).
[[nodiscard]] std::vector<detection> find_components(
    const img::image_u8& mask, const img::image_u8& reference,
    const motion_params& params);

/// One-call detector: change_mask + find_components.
[[nodiscard]] std::vector<detection> detect_motion(
    const img::image_u8& current, const img::image_u8& previous,
    const geo::mat3& prev_to_cur, const motion_params& params = {});

/// 3x3 binary majority filter (exposed for tests).
[[nodiscard]] img::image_u8 majority3(const img::image_u8& mask);

}  // namespace vs::track
