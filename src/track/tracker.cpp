#include "track/tracker.h"

#include <algorithm>
#include <limits>

#include "rt/instrument.h"

namespace vs::track {

tracker::tracker(const tracker_params& params) : params_(params) {}

void tracker::observe(int frame_index,
                      const std::vector<geo::vec2>& detections) {
  // Predict every live track forward one frame.
  for (auto& track : tracks_) {
    if (track.state == track_state::lost) continue;
    track.position = track.position + track.velocity;
  }

  // Greedy gated nearest-neighbour association: repeatedly take the
  // globally closest (track, detection) pair within the gate.
  std::vector<bool> detection_used(detections.size(), false);
  std::vector<bool> track_updated(tracks_.size(), false);
  for (;;) {
    double best = params_.gate_radius;
    std::size_t best_track = tracks_.size();
    std::size_t best_detection = detections.size();
    for (std::size_t t = 0; t < tracks_.size(); ++t) {
      if (tracks_[t].state == track_state::lost || track_updated[t]) continue;
      for (std::size_t d = 0; d < detections.size(); ++d) {
        if (detection_used[d]) continue;
        const double dist = geo::distance(tracks_[t].position, detections[d]);
        if (dist < best) {
          best = dist;
          best_track = t;
          best_detection = d;
        }
      }
    }
    if (best_track == tracks_.size()) break;

    object_track& track = tracks_[best_track];
    const geo::vec2 observed = detections[best_detection];
    const geo::vec2 step = observed - (track.path.empty()
                                           ? observed
                                           : track.path.back());
    const double a = params_.velocity_smoothing;
    track.velocity = track.velocity * (1.0 - a) + step * a;
    track.position = observed;
    track.path.push_back(observed);
    track.last_frame = frame_index;
    track.misses = 0;
    ++track.hits;
    if (track.state == track_state::tentative &&
        track.hits >= params_.confirm_hits) {
      track.state = track_state::confirmed;
    }
    track_updated[best_track] = true;
    detection_used[best_detection] = true;
  }
  rt::account(rt::op::fp_alu, tracks_.size() * detections.size() * 4);

  // Age unmatched tracks.
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    auto& track = tracks_[t];
    if (track.state == track_state::lost || track_updated[t]) continue;
    if (++track.misses > params_.max_misses) track.state = track_state::lost;
  }

  // Spawn tentative tracks from unclaimed detections.
  for (std::size_t d = 0; d < detections.size(); ++d) {
    if (detection_used[d]) continue;
    object_track track;
    track.id = next_id_++;
    track.position = detections[d];
    track.path.push_back(detections[d]);
    track.hits = 1;
    track.last_frame = frame_index;
    tracks_.push_back(std::move(track));
  }
}

std::size_t tracker::confirmed_count() const {
  std::size_t count = 0;
  for (const auto& track : tracks_) {
    count += track.state == track_state::confirmed ? 1u : 0u;
  }
  return count;
}

}  // namespace vs::track
