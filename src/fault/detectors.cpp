#include "fault/detectors.h"

#include <cmath>

#include "core/error.h"

namespace vs::fault {

namespace {

struct image_stats {
  double mean = 0.0;
  double nonzero = 0.0;
};

image_stats measure(const img::image_u8& image) {
  image_stats stats;
  if (image.empty()) return stats;
  std::uint64_t sum = 0;
  std::uint64_t nonzero = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    sum += image[i];
    nonzero += image[i] > 8 ? 1u : 0u;
  }
  stats.mean = static_cast<double>(sum) / static_cast<double>(image.size());
  stats.nonzero =
      static_cast<double>(nonzero) / static_cast<double>(image.size());
  return stats;
}

}  // namespace

detector_calibration calibrate_detectors(
    const std::vector<img::image_u8>& golden_outputs) {
  if (golden_outputs.empty()) {
    throw invalid_argument("calibrate_detectors: no golden outputs");
  }
  detector_calibration calibration;
  double mean_sum = 0.0;
  double nonzero_sum = 0.0;
  for (const auto& golden : golden_outputs) {
    calibration.width += golden.width();
    calibration.height += golden.height();
    const auto stats = measure(golden);
    mean_sum += stats.mean;
    nonzero_sum += stats.nonzero;
  }
  const auto n = static_cast<double>(golden_outputs.size());
  calibration.width = static_cast<int>(calibration.width / n);
  calibration.height = static_cast<int>(calibration.height / n);
  calibration.mean_intensity = mean_sum / n;
  calibration.nonzero_fraction = nonzero_sum / n;
  return calibration;
}

const char* detection_verdict_name(detection_verdict verdict) noexcept {
  switch (verdict) {
    case detection_verdict::clean:
      return "clean";
    case detection_verdict::geometry:
      return "geometry";
    case detection_verdict::coverage:
      return "coverage";
    case detection_verdict::intensity:
      return "intensity";
  }
  return "?";
}

detection_verdict run_detectors(const img::image_u8& output,
                                const detector_calibration& calibration) {
  // Geometry: output size within (1 +- slack) of the calibrated size.
  const double w_ratio =
      calibration.width > 0
          ? std::abs(output.width() - calibration.width) /
                static_cast<double>(calibration.width)
          : 1.0;
  const double h_ratio =
      calibration.height > 0
          ? std::abs(output.height() - calibration.height) /
                static_cast<double>(calibration.height)
          : 1.0;
  if (output.empty() || w_ratio > calibration.dimension_slack ||
      h_ratio > calibration.dimension_slack) {
    return detection_verdict::geometry;
  }

  const auto stats = measure(output);
  if (calibration.nonzero_fraction > 0.0 &&
      stats.nonzero <
          calibration.nonzero_fraction * (1.0 - calibration.coverage_slack)) {
    return detection_verdict::coverage;
  }
  if (calibration.mean_intensity > 0.0) {
    const double deviation =
        std::abs(stats.mean - calibration.mean_intensity) /
        calibration.mean_intensity;
    if (deviation > calibration.intensity_slack) {
      return detection_verdict::intensity;
    }
  }
  return detection_verdict::clean;
}

detection_summary evaluate_detectors(
    const std::vector<img::image_u8>& sdc_outputs,
    const detector_calibration& calibration) {
  detection_summary summary;
  summary.sdcs = sdc_outputs.size();
  for (const auto& output : sdc_outputs) {
    switch (run_detectors(output, calibration)) {
      case detection_verdict::clean:
        break;
      case detection_verdict::geometry:
        ++summary.detected;
        ++summary.by_geometry;
        break;
      case detection_verdict::coverage:
        ++summary.detected;
        ++summary.by_coverage;
        break;
      case detection_verdict::intensity:
        ++summary.detected;
        ++summary.by_intensity;
        break;
    }
  }
  return summary;
}

}  // namespace vs::fault
