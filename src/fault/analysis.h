// Fault-site analysis beyond raw outcome rates.
//
// Two analyses the paper points at but leaves open:
//  * a Relyzer-flavoured site breakdown (Hari et al., ASPLOS 2012 — the
//    paper's Section V-A "left to future work"): group injections into
//    equivalence classes (function scope, operation kind, bit band) and
//    estimate per-class outcome profiles, which is what lets a smart
//    campaign prune equivalent sites instead of sampling blindly;
//  * the protection-cost analysis of Section VI-D: given SDC severities,
//    how many error sites actually need (expensive) protection once
//    crashes are covered by cheap symptom detectors and benign SDCs are
//    tolerated up to an ED budget.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.h"
#include "pipeline/stage.h"
#include "quality/sdc.h"

namespace vs::fault {

/// Outcome profile of one site equivalence class.
struct site_class {
  rt::fn scope = rt::fn::other;
  rt::op kind = rt::op::int_alu;
  int bit_band = 0;  ///< bit / 16 (0..3)
  outcome_rates rates;
};

/// Groups fired injections by (scope, op kind, 16-bit band) and returns
/// per-class outcome rates, most-populated classes first.  Dead-register
/// and never-fired experiments are excluded (they are masked by
/// construction and carry no site information).
[[nodiscard]] std::vector<site_class> site_breakdown(
    const std::vector<injection_record>& records);

/// Per-scope outcome rates (a coarser view of the same grouping).
[[nodiscard]] std::vector<site_class> scope_breakdown(
    const std::vector<injection_record>& records);

/// Outcome profile of one pipeline stage (fired scopes rolled up through
/// the stage registry; scopes outside the per-frame graph aggregate under
/// stage_id::count_).
struct stage_class {
  pipeline::stage_id stage = pipeline::stage_id::count_;
  outcome_rates rates;
};

/// Groups fired injections by the pipeline stage that owns their scope —
/// the coarsest, most actionable view of where the vulnerable sites live
/// (which stage to protect first), most-populated stages first.
[[nodiscard]] std::vector<stage_class> stage_breakdown(
    const std::vector<injection_record>& records);

/// Relyzer-style pruning estimate: with per-class profiles available, how
/// many of the `budget` experiments would a stratified campaign need to
/// reach the same confidence as `records` — i.e. the fraction of
/// experiments that landed in classes whose outcome is (nearly)
/// deterministic (>= `purity` of one outcome) and could be predicted
/// instead of run.
struct pruning_estimate {
  std::size_t fired_experiments = 0;
  std::size_t prunable_experiments = 0;  ///< in >= purity-pure classes
  double prunable_fraction = 0.0;
};
[[nodiscard]] pruning_estimate estimate_pruning(
    const std::vector<injection_record>& records, double purity = 0.95);

/// Protection-cost analysis (Section VI-D): fractions of error sites by
/// the cheapest mechanism that covers them at an ED tolerance.
struct protection_report {
  std::size_t experiments = 0;
  double masked_fraction = 0.0;      ///< no action needed
  double detectable_fraction = 0.0;  ///< crash/hang: symptom detectors
  double tolerable_fraction = 0.0;   ///< SDC with ED <= tolerance
  double must_protect_fraction = 0.0;  ///< SDC beyond tolerance / egregious
};

/// `sdc_eds` must align with the campaign's SDC outputs in order (one
/// entry per SDC record, nullopt = egregious).
[[nodiscard]] protection_report analyze_protection(
    const std::vector<injection_record>& records,
    const std::vector<std::optional<int>>& sdc_eds, int ed_tolerance);

}  // namespace vs::fault
