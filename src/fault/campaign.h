// Statistical fault-injection campaigns (the AFI driver + Fault Monitor).
//
// A campaign measures a golden run of a workload, then performs N
// independent experiments, each injecting one single-bit flip into the
// virtual register file at a uniformly random dynamic operation, and
// classifies every experiment as Mask / SDC / Crash / Hang exactly as the
// paper's Fault Monitor does (run-to-completion + output comparison).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fault/model.h"
#include "image/image.h"

namespace vs::fault {

/// A workload is any deterministic computation producing an image output
/// (the full VS pipeline, an approximate variant, or the WP toy benchmark).
using workload = std::function<img::image_u8()>;

struct campaign_config {
  static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

  rt::reg_class cls = rt::reg_class::gpr;
  int injections = 1000;      ///< the paper's per-class experiment count
  std::uint64_t seed = 2018;  ///< derives every experiment's plan
  liveness_model liveness;
  double step_budget_factor = 25.0;  ///< hang watchdog: x golden steps
  bool scoped = false;               ///< restrict injections to hot functions
  rt::fn scope = rt::fn::warp;       ///< primary scope when scoped
  bool include_remap_scope = true;   ///< also target remapBilinear ops
  bool keep_sdc_outputs = false;     ///< retain faulty images for ED analysis
  int threads = 0;                   ///< 0 = hardware concurrency

  /// Range restriction: execute only experiments [range_first, range_first +
  /// range_count) of the `injections`-experiment campaign.  Every
  /// experiment's plan is still derived from (seed, index) exactly as in the
  /// full campaign, so range-restricted runs merged in experiment order are
  /// bit-identical to one full run — this is what lets the supervisor
  /// (src/supervise/) shard a campaign across worker processes.
  /// range_count == npos means "through the last experiment".
  std::size_t range_first = 0;
  std::size_t range_count = npos;
};

struct campaign_result {
  outcome_rates rates;
  std::vector<injection_record> records;  ///< in experiment order
  img::image_u8 golden;
  rt::counters golden_counters;
  /// Faulty outputs of SDC experiments (when keep_sdc_outputs), paired with
  /// the index of their record.
  std::vector<std::pair<std::size_t, img::image_u8>> sdc_outputs;

  /// Running outcome rates after the first k experiments, for k in
  /// `checkpoints` — the Fig 9a convergence curves.
  [[nodiscard]] std::vector<outcome_rates> convergence(
      const std::vector<std::size_t>& checkpoints) const;
};

/// The campaign-wide measurements every experiment classifies against: one
/// golden (fault-free, instrumented) run of the workload.  Shard workers
/// inherit this from the supervisor instead of re-measuring it, so every
/// process draws targets over the same op count and compares against the
/// same golden image.
struct campaign_setup {
  img::image_u8 golden;
  rt::counters golden_counters;
  std::uint64_t total_ops = 0;    ///< in-scope fault sites of config.cls
  std::uint64_t step_budget = 0;  ///< hang watchdog budget
};

/// Performs the golden run and derives the fault-site count and watchdog
/// budget.  Throws invalid_argument when the workload executes no dynamic
/// ops of the targeted class.
[[nodiscard]] campaign_setup measure_golden(const workload& work,
                                            const campaign_config& config);

/// One experiment's planned injection plus its architectural-liveness roll.
struct experiment_plan {
  rt::fault_plan plan;
  bool register_live = false;  ///< false => masked without execution
};

/// Derives experiment `index`'s plan.  A pure function of (config, total_ops,
/// index) — the same index yields the same plan in every process, which is
/// the determinism contract sharded campaigns rely on.
[[nodiscard]] experiment_plan plan_experiment(const campaign_config& config,
                                              std::uint64_t total_ops,
                                              std::size_t index);

/// Plans and executes experiment `index` against `setup`, returning its
/// record (dead-register strikes classify as masked without running).
[[nodiscard]] injection_record run_experiment(const workload& work,
                                              const campaign_config& config,
                                              const campaign_setup& setup,
                                              std::size_t index,
                                              img::image_u8* faulty_out =
                                                  nullptr);

/// Runs a campaign.  Deterministic given (workload determinism, config).
/// Experiments run on `threads` parallel workers; results are identical to
/// the sequential order regardless of thread count.
[[nodiscard]] campaign_result run_campaign(const workload& work,
                                           const campaign_config& config);

/// Classifies a single planned injection against a known golden output.
/// Exposed for tests; run_campaign uses the same logic.
[[nodiscard]] injection_record run_one_injection(
    const workload& work, const rt::fault_plan& plan,
    std::uint64_t step_budget, const img::image_u8& golden,
    img::image_u8* faulty_out = nullptr);

}  // namespace vs::fault
