// Machine-readable exports of campaign results (CSV and a minimal JSON),
// so downstream analysis (plots, spreadsheets) doesn't have to scrape the
// benchmark harnesses' console tables.
#pragma once

#include <string>

#include "fault/campaign.h"

namespace vs::fault {

/// CSV with one row per experiment:
/// index,cls,target,bit,reg_id,live,fired,outcome,scope,kind
[[nodiscard]] std::string records_to_csv(const campaign_result& result);

/// Compact JSON object with the aggregate rates and campaign metadata.
[[nodiscard]] std::string rates_to_json(const campaign_result& result,
                                        const std::string& label);

/// Writes `text` to `path` (throws io_error on failure).
void write_text_file(const std::string& path, const std::string& text);

}  // namespace vs::fault
