// Machine-readable exports of campaign results (CSV and a minimal JSON),
// so downstream analysis (plots, spreadsheets) doesn't have to scrape the
// benchmark harnesses' console tables.
#pragma once

#include <fstream>
#include <string>

#include "fault/campaign.h"

namespace vs::fault {

/// CSV with one row per experiment:
/// index,cls,target,bit,reg_id,live,fired,outcome,scope,kind
[[nodiscard]] std::string records_to_csv(const campaign_result& result);

/// Compact JSON object with the aggregate rates and campaign metadata.
[[nodiscard]] std::string rates_to_json(const campaign_result& result,
                                        const std::string& label);

/// Writes `text` to `path` (throws io_error on failure).
void write_text_file(const std::string& path, const std::string& text);

/// Streaming row-oriented report writer: header once, then one flushed line
/// per outcome *as it arrives*.  This is how `vs fleet` and the
/// summarization server feed per-clip/per-job results into reports without
/// buffering the whole run — after a SIGKILL the file holds every outcome
/// that had settled, mirroring the journal's crash-consistency story.
/// Works for CSV (open with a comma-separated header) and JSON lines (open
/// with an empty header and append one object per row).
class report_stream {
 public:
  report_stream() = default;  ///< inactive: append() is a no-op

  /// Opens `path` truncating; writes `header` + '\n' when non-empty.
  /// Throws io_error on failure.
  void open(const std::string& path, const std::string& header);
  [[nodiscard]] bool active() const noexcept { return out_.is_open(); }

  /// Appends one row and flushes it to disk.
  void append(const std::string& row);

 private:
  std::ofstream out_;
};

}  // namespace vs::fault
