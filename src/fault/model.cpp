#include "fault/model.h"

#include <sstream>

namespace vs::fault {

const char* outcome_name(outcome o) noexcept {
  switch (o) {
    case outcome::masked:
      return "Masked";
    case outcome::sdc:
      return "SDC";
    case outcome::crash_segfault:
      return "Crash(segfault)";
    case outcome::crash_abort:
      return "Crash(abort)";
    case outcome::hang:
      return "Hang";
    case outcome::detected_recovered:
      return "Detected(recovered)";
    case outcome::detected_degraded:
      return "Detected(degraded)";
  }
  return "?";
}

void outcome_rates::add(outcome o) noexcept {
  ++experiments;
  switch (o) {
    case outcome::masked:
      ++masked;
      break;
    case outcome::sdc:
      ++sdc;
      break;
    case outcome::crash_segfault:
      ++crash_segfault;
      break;
    case outcome::crash_abort:
      ++crash_abort;
      break;
    case outcome::hang:
      ++hang;
      break;
    case outcome::detected_recovered:
      ++detected_recovered;
      break;
    case outcome::detected_degraded:
      ++detected_degraded;
      break;
  }
}

double outcome_rates::rate(outcome o) const noexcept {
  if (experiments == 0) return 0.0;
  std::size_t n = 0;
  switch (o) {
    case outcome::masked:
      n = masked;
      break;
    case outcome::sdc:
      n = sdc;
      break;
    case outcome::crash_segfault:
      n = crash_segfault;
      break;
    case outcome::crash_abort:
      n = crash_abort;
      break;
    case outcome::hang:
      n = hang;
      break;
    case outcome::detected_recovered:
      n = detected_recovered;
      break;
    case outcome::detected_degraded:
      n = detected_degraded;
      break;
  }
  return static_cast<double>(n) / static_cast<double>(experiments);
}

double outcome_rates::crash_rate() const noexcept {
  if (experiments == 0) return 0.0;
  return static_cast<double>(crash_segfault + crash_abort) /
         static_cast<double>(experiments);
}

double outcome_rates::detected_rate() const noexcept {
  if (experiments == 0) return 0.0;
  return static_cast<double>(detected_recovered + detected_degraded) /
         static_cast<double>(experiments);
}

std::string outcome_rates::to_string() const {
  std::ostringstream out;
  out << "n=" << experiments << " mask=" << rate(outcome::masked) * 100.0
      << "% sdc=" << rate(outcome::sdc) * 100.0
      << "% crash=" << crash_rate() * 100.0
      << "% hang=" << rate(outcome::hang) * 100.0 << "%";
  if (detected_recovered + detected_degraded > 0) {
    out << " detected=" << detected_rate() * 100.0 << "% (recovered "
        << detected_recovered << ", degraded " << detected_degraded << ")";
  }
  return out.str();
}

}  // namespace vs::fault
