// Error-site coverage analysis (Fig 9b): are the planned injections
// uniformly distributed over registers and bit positions?
#pragma once

#include <vector>

#include "fault/model.h"

namespace vs::fault {

struct coverage_report {
  std::vector<std::size_t> per_register;  ///< injections per register id
  std::vector<std::size_t> per_bit;       ///< injections per bit 0..63
  double register_cv = 0.0;  ///< coefficient of variation across registers
  double bit_cv = 0.0;       ///< coefficient of variation across bits
};

/// Histograms the plans of a campaign's records.
[[nodiscard]] coverage_report analyze_coverage(
    const std::vector<injection_record>& records, int register_count = 32);

/// Coefficient of variation (stddev / mean) of a histogram; 0 for empty.
[[nodiscard]] double coefficient_of_variation(
    const std::vector<std::size_t>& histogram);

}  // namespace vs::fault
