// Symptom-based SDC detectors (SWAT-style, Li et al. ASPLOS'08 — the
// "low cost symptom-based detectors" of the paper's Section V-D).
//
// Crashes and hangs announce themselves; the hard outcomes are SDCs.  This
// module simulates cheap application-level output checks that convert a
// fraction of SDCs into detected errors without golden knowledge:
//
//   * geometry check   — output dimensions within an expected envelope
//                        (panorama geometry is predictable from the mission)
//   * coverage check   — fraction of non-background pixels above a floor
//   * intensity check  — output mean within the scene's plausible band
//
// Each check knows nothing about the golden image; its reference envelope
// is calibrated from fault-free runs (as a deployed system would do).
#pragma once

#include <string>
#include <vector>

#include "image/image.h"

namespace vs::fault {

/// Reference envelope calibrated from fault-free outputs.
struct detector_calibration {
  int width = 0;
  int height = 0;
  double mean_intensity = 0.0;
  double nonzero_fraction = 0.0;

  /// Tolerances (fractions of the calibrated values).
  double dimension_slack = 0.5;
  double intensity_slack = 0.35;
  double coverage_slack = 0.4;
};

/// Builds the envelope from one (or the average of several) golden outputs.
[[nodiscard]] detector_calibration calibrate_detectors(
    const std::vector<img::image_u8>& golden_outputs);

/// Which check (if any) flags an output as corrupted.
enum class detection_verdict {
  clean,        ///< passes every check (an SDC stays silent)
  geometry,     ///< dimensions outside the envelope
  coverage,     ///< too little content
  intensity,    ///< brightness outside the envelope
};

[[nodiscard]] const char* detection_verdict_name(
    detection_verdict verdict) noexcept;

/// Runs the checks on one output image.
[[nodiscard]] detection_verdict run_detectors(
    const img::image_u8& output, const detector_calibration& calibration);

/// Aggregate over a set of SDC outputs: how many would the cheap checks
/// have caught (turning an undetectable SDC into a detected error)?
struct detection_summary {
  std::size_t sdcs = 0;
  std::size_t detected = 0;
  std::size_t by_geometry = 0;
  std::size_t by_coverage = 0;
  std::size_t by_intensity = 0;

  [[nodiscard]] double coverage() const noexcept {
    return sdcs > 0 ? static_cast<double>(detected) /
                          static_cast<double>(sdcs)
                    : 0.0;
  }
};

[[nodiscard]] detection_summary evaluate_detectors(
    const std::vector<img::image_u8>& sdc_outputs,
    const detector_calibration& calibration);

}  // namespace vs::fault
