#include "fault/coverage.h"

#include <cmath>

namespace vs::fault {

double coefficient_of_variation(const std::vector<std::size_t>& histogram) {
  if (histogram.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t v : histogram) sum += static_cast<double>(v);
  const double mean = sum / static_cast<double>(histogram.size());
  if (mean == 0.0) return 0.0;
  double variance = 0.0;
  for (std::size_t v : histogram) {
    const double d = static_cast<double>(v) - mean;
    variance += d * d;
  }
  variance /= static_cast<double>(histogram.size());
  return std::sqrt(variance) / mean;
}

coverage_report analyze_coverage(const std::vector<injection_record>& records,
                                 int register_count) {
  coverage_report report;
  report.per_register.assign(static_cast<std::size_t>(register_count), 0);
  report.per_bit.assign(64, 0);
  for (const auto& r : records) {
    if (r.plan.reg_id < report.per_register.size()) {
      ++report.per_register[r.plan.reg_id];
    }
    if (r.plan.bit < 64) ++report.per_bit[r.plan.bit];
  }
  report.register_cv = coefficient_of_variation(report.per_register);
  report.bit_cv = coefficient_of_variation(report.per_bit);
  return report;
}

}  // namespace vs::fault
