#include "fault/campaign.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/error.h"
#include "core/log.h"
#include "core/rng.h"
#include "resil/runtime.h"

namespace vs::fault {

namespace {

// In-scope fault-site count for the campaign's register class.  Targets
// are drawn over executed hooks (the values injections can actually
// strike), not over the bulk-accounted cost model ops.
std::uint64_t class_ops(const rt::counters& c, const campaign_config& cfg) {
  if (!cfg.scoped) return c.hooks(cfg.cls);
  std::uint64_t sites = c.hooks(cfg.cls, cfg.scope);
  if (cfg.include_remap_scope && cfg.scope != rt::fn::remap) {
    sites += c.hooks(cfg.cls, rt::fn::remap);
  }
  return sites;
}

}  // namespace

injection_record run_one_injection(const workload& work,
                                   const rt::fault_plan& plan,
                                   std::uint64_t step_budget,
                                   const img::image_u8& golden,
                                   img::image_u8* faulty_out) {
  injection_record record;
  record.plan = plan;
  record.register_live = true;
  resil::clear_last_run_report();
  {
    rt::session session(plan, step_budget);
    try {
      img::image_u8 output = work();
      record.fired = session.fired();
      if (output == golden) {
        record.result = outcome::masked;
      } else {
        record.result = outcome::sdc;
        if (faulty_out != nullptr) *faulty_out = std::move(output);
      }
      // Recovery-aware reclassification (hardened workloads only; the
      // report is all-zero otherwise).  A fired fault whose run shows any
      // detection evidence is no longer silent: golden-equal output means
      // the containment machinery recovered it, anything else means it
      // degraded gracefully but flagged the damage.
      const resil::run_report& recovery = resil::last_run_report();
      record.detections = recovery.faults_detected() +
                          (recovery.output_flagged() ? 1u : 0u);
      record.replica_divergences = recovery.replica_divergences;
      record.retries = recovery.retries;
      record.frames_degraded = recovery.frames_degraded;
      if (record.fired && recovery.any_detection()) {
        record.result = record.result == outcome::masked
                            ? outcome::detected_recovered
                            : outcome::detected_degraded;
      }
    } catch (const detected_error&) {
      // A detection escaped every recovery boundary (possible only for
      // faults striking outside the per-frame sandbox).  Detected, not
      // recovered: the run produced no output.
      record.fired = true;
      record.result = outcome::detected_degraded;
      record.detections =
          std::max<std::uint32_t>(1, resil::last_run_report().faults_detected());
      record.replica_divergences =
          resil::last_run_report().replica_divergences;
    } catch (const crash_error& e) {
      record.fired = true;
      record.result = e.kind() == crash_kind::segfault
                          ? outcome::crash_segfault
                          : outcome::crash_abort;
    } catch (const hang_error&) {
      record.fired = true;
      record.result = outcome::hang;
    } catch (const invalid_argument&) {
      // A library precondition tripped.  After a fired injection that is
      // corrupted state hitting an internal assert — an abort.  Without
      // one it is a genuine bug and must not be swallowed.
      if (!rt::tls.fired) throw;
      record.fired = true;
      record.result = outcome::crash_abort;
    } catch (const std::logic_error&) {
      // A guarded access failed without an injected fault: that is a
      // library bug, not a fault outcome — never swallow it.
      throw;
    } catch (const std::exception&) {
      // Any other exception escaping the workload after an injection is
      // the application aborting on a violated internal invariant.
      record.fired = true;
      record.result = outcome::crash_abort;
    }
    // Where the flip landed (valid when record.fired): read before the
    // session restores the previous thread state.
    record.fired_scope = rt::tls.fired_scope;
    record.fired_kind = rt::tls.fired_kind;
  }
  return record;
}

campaign_setup measure_golden(const workload& work,
                              const campaign_config& config) {
  campaign_setup setup;
  {
    rt::session session;
    setup.golden = work();
    setup.golden_counters = session.stats();
    setup.total_ops = class_ops(setup.golden_counters, config);
    const double budget = static_cast<double>(setup.golden_counters.steps()) *
                          config.step_budget_factor;
    setup.step_budget =
        budget < 1e18 ? static_cast<std::uint64_t>(budget) : ~0ULL;
  }
  if (setup.total_ops == 0) {
    throw invalid_argument(
        "campaign: workload executed no dynamic ops of the targeted class");
  }
  return setup;
}

experiment_plan plan_experiment(const campaign_config& config,
                                std::uint64_t total_ops, std::size_t index) {
  std::uint64_t stream =
      config.seed + 0x1000 * static_cast<std::uint64_t>(index);
  rng gen(splitmix64(stream));
  experiment_plan p;
  p.plan.cls = config.cls;
  p.plan.target = gen.uniform(total_ops);
  p.plan.bit = static_cast<std::uint32_t>(gen.uniform(64));
  p.plan.reg_id = static_cast<std::uint32_t>(
      gen.uniform(static_cast<std::uint64_t>(config.liveness.register_count)));
  p.plan.scoped = config.scoped;
  p.plan.scope = config.scope;
  p.plan.scope_b = config.scoped && config.include_remap_scope
                       ? rt::fn::remap
                       : config.scope;
  p.register_live = gen.chance(config.liveness.live_probability(config.cls));
  return p;
}

injection_record run_experiment(const workload& work,
                                const campaign_config& config,
                                const campaign_setup& setup, std::size_t index,
                                img::image_u8* faulty_out) {
  const experiment_plan p = plan_experiment(config, setup.total_ops, index);
  if (!p.register_live) {
    // Dead-register strike: architecturally masked without execution.
    injection_record record;
    record.plan = p.plan;
    record.register_live = false;
    record.result = outcome::masked;
    return record;
  }
  return run_one_injection(work, p.plan, setup.step_budget, setup.golden,
                           faulty_out);
}

campaign_result run_campaign(const workload& work,
                             const campaign_config& config) {
  if (config.injections < 0) throw invalid_argument("campaign: injections < 0");

  campaign_result result;

  // --- golden run -------------------------------------------------------
  campaign_setup setup = measure_golden(work, config);
  result.golden_counters = setup.golden_counters;

  // --- resolve the experiment range --------------------------------------
  const auto n = static_cast<std::size_t>(config.injections);
  const std::size_t first = std::min(config.range_first, n);
  const std::size_t last =
      config.range_count == campaign_config::npos ||
              config.range_count > n - first
          ? n
          : first + config.range_count;
  const std::size_t m = last - first;
  std::vector<injection_record> records(m);
  std::vector<img::image_u8> faulty(config.keep_sdc_outputs ? m : 0);

  // --- execute (parallel, deterministic results) -------------------------
  // Plans are derived per experiment inside the worker (plan_experiment is a
  // pure function of index), so order and thread count never matter.
  std::atomic<std::size_t> cursor{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= m) return;
      records[i] = run_experiment(
          work, config, setup, first + i,
          config.keep_sdc_outputs ? &faulty[i] : nullptr);
    }
  };

  unsigned thread_count = config.threads > 0
                              ? static_cast<unsigned>(config.threads)
                              : std::thread::hardware_concurrency();
  if (thread_count == 0) thread_count = 1;
  thread_count = std::min<unsigned>(thread_count, 64);
  if (thread_count <= 1 || m < 2) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  // --- aggregate ----------------------------------------------------------
  result.golden = std::move(setup.golden);
  for (std::size_t i = 0; i < m; ++i) {
    result.rates.add(records[i].result);
    if (config.keep_sdc_outputs && records[i].result == outcome::sdc) {
      result.sdc_outputs.emplace_back(i, std::move(faulty[i]));
    }
  }
  result.records = std::move(records);
  log::info("campaign done: ", result.rates.to_string());
  return result;
}

std::vector<outcome_rates> campaign_result::convergence(
    const std::vector<std::size_t>& checkpoints) const {
  std::vector<outcome_rates> curves;
  curves.reserve(checkpoints.size());
  outcome_rates running;
  std::size_t next = 0;
  for (std::size_t count : checkpoints) {
    while (next < records.size() && next < count) {
      running.add(records[next].result);
      ++next;
    }
    curves.push_back(running);
  }
  return curves;
}

}  // namespace vs::fault
