#include "fault/wire.h"

#include <charconv>
#include <cstdio>
#include <vector>

namespace vs::fault::wire {

namespace {

constexpr std::uint32_t kFnvOffset32 = 2166136261u;
constexpr std::uint32_t kFnvPrime32 = 16777619u;
constexpr std::uint64_t kFnvOffset64 = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime64 = 1099511628211ULL;

std::vector<std::string_view> split(std::string_view payload) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    while (pos < payload.size() && payload[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < payload.size() && payload[end] != ' ') ++end;
    if (end > pos) tokens.push_back(payload.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

std::optional<std::uint64_t> parse_u64(std::string_view token) {
  std::uint64_t value = 0;
  const auto* first = token.data();
  const auto* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<bool> parse_bool(std::string_view token) {
  const auto v = parse_u64(token);
  if (!v || *v > 1) return std::nullopt;
  return *v == 1;
}

}  // namespace

std::uint32_t checksum(std::string_view payload) noexcept {
  std::uint32_t h = kFnvOffset32;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime32;
  }
  return h;
}

std::string seal(std::string_view payload) {
  char tag[16];
  std::snprintf(tag, sizeof(tag), " ~%08x", checksum(payload));
  return std::string(payload) + tag;
}

std::optional<std::string> unseal(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const std::size_t tag = line.rfind(" ~");
  if (tag == std::string_view::npos) return std::nullopt;
  const std::string_view payload = line.substr(0, tag);
  const std::string_view crc = line.substr(tag + 2);
  if (crc.size() != 8) return std::nullopt;
  std::uint32_t stated = 0;
  const auto [ptr, ec] =
      std::from_chars(crc.data(), crc.data() + crc.size(), stated, 16);
  if (ec != std::errc{} || ptr != crc.data() + crc.size()) return std::nullopt;
  if (stated != checksum(payload)) return std::nullopt;
  if (payload.find('\n') != std::string_view::npos) return std::nullopt;
  return std::string(payload);
}

std::string record_payload(std::size_t index, const injection_record& r) {
  std::string out = "R ";
  const auto append = [&out](std::uint64_t v) {
    out += std::to_string(v);
    out += ' ';
  };
  append(index);
  append(static_cast<std::uint64_t>(r.plan.cls));
  append(r.plan.target);
  append(r.plan.bit);
  append(r.plan.reg_id);
  append(r.plan.scoped ? 1 : 0);
  append(static_cast<std::uint64_t>(r.plan.scope));
  append(static_cast<std::uint64_t>(r.plan.scope_b));
  append(r.register_live ? 1 : 0);
  append(r.fired ? 1 : 0);
  append(static_cast<std::uint64_t>(r.result));
  append(static_cast<std::uint64_t>(r.fired_scope));
  append(static_cast<std::uint64_t>(r.fired_kind));
  append(r.detections);
  append(r.replica_divergences);
  append(r.retries);
  out += std::to_string(r.frames_degraded);
  return out;
}

std::optional<parsed_record> parse_record(std::string_view payload) {
  const auto tokens = split(payload);
  // 17 tokens: legacy journal rows without the replica_divergences field
  // (pre-replication-registry checkpoints resume with the count at 0).
  if ((tokens.size() != 17 && tokens.size() != 18) || tokens[0] != "R") {
    return std::nullopt;
  }
  const bool has_replica = tokens.size() == 18;

  const auto index = parse_u64(tokens[1]);
  const auto cls = parse_u64(tokens[2]);
  const auto target = parse_u64(tokens[3]);
  const auto bit = parse_u64(tokens[4]);
  const auto reg_id = parse_u64(tokens[5]);
  const auto scoped = parse_bool(tokens[6]);
  const auto scope = parse_u64(tokens[7]);
  const auto scope_b = parse_u64(tokens[8]);
  const auto live = parse_bool(tokens[9]);
  const auto fired = parse_bool(tokens[10]);
  const auto result = parse_u64(tokens[11]);
  const auto fired_scope = parse_u64(tokens[12]);
  const auto fired_kind = parse_u64(tokens[13]);
  const auto detections = parse_u64(tokens[14]);
  const auto replica =
      has_replica ? parse_u64(tokens[15]) : std::optional<std::uint64_t>(0);
  const auto retries = parse_u64(tokens[has_replica ? 16 : 15]);
  const auto degraded = parse_u64(tokens[has_replica ? 17 : 16]);

  if (!index || !cls || !target || !bit || !reg_id || !scoped || !scope ||
      !scope_b || !live || !fired || !result || !fired_scope || !fired_kind ||
      !detections || !replica || !retries || !degraded) {
    return std::nullopt;
  }
  if (*cls >= rt::reg_class_count || *bit >= 64 ||
      *scope >= static_cast<std::uint64_t>(rt::fn_count) ||
      *scope_b >= static_cast<std::uint64_t>(rt::fn_count) ||
      *result > static_cast<std::uint64_t>(outcome::detected_degraded) ||
      *fired_scope >= static_cast<std::uint64_t>(rt::fn_count) ||
      *fired_kind >= static_cast<std::uint64_t>(rt::op_count) ||
      *reg_id > 0xFFFFFFFFULL || *detections > 0xFFFFFFFFULL ||
      *replica > 0xFFFFFFFFULL || *retries > 0xFFFFFFFFULL ||
      *degraded > 0xFFFFFFFFULL) {
    return std::nullopt;
  }

  parsed_record out;
  out.index = static_cast<std::size_t>(*index);
  injection_record& r = out.record;
  r.plan.cls = static_cast<rt::reg_class>(*cls);
  r.plan.target = *target;
  r.plan.bit = static_cast<std::uint32_t>(*bit);
  r.plan.reg_id = static_cast<std::uint32_t>(*reg_id);
  r.plan.scoped = *scoped;
  r.plan.scope = static_cast<rt::fn>(*scope);
  r.plan.scope_b = static_cast<rt::fn>(*scope_b);
  r.register_live = *live;
  r.fired = *fired;
  r.result = static_cast<outcome>(*result);
  r.fired_scope = static_cast<rt::fn>(*fired_scope);
  r.fired_kind = static_cast<rt::op>(*fired_kind);
  r.detections = static_cast<std::uint32_t>(*detections);
  r.replica_divergences = static_cast<std::uint32_t>(*replica);
  r.retries = static_cast<std::uint32_t>(*retries);
  r.frames_degraded = static_cast<std::uint32_t>(*degraded);
  return out;
}

std::uint64_t hash_image(const img::image_u8& image) noexcept {
  std::uint64_t h = kFnvOffset64;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= kFnvPrime64;
    }
  };
  mix(static_cast<std::uint64_t>(image.width()));
  mix(static_cast<std::uint64_t>(image.height()));
  mix(static_cast<std::uint64_t>(image.channels()));
  const std::uint8_t* data = image.data();
  for (std::size_t i = 0; i < image.size(); ++i) {
    h ^= data[i];
    h *= kFnvPrime64;
  }
  return h;
}

}  // namespace vs::fault::wire
