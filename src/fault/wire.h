// Checksummed line-oriented (de)serialization of campaign records — the
// wire format shared by the supervisor's worker pipes and the append-only
// campaign journal (src/supervise/).
//
// Every payload travels as one text line of space-separated fields sealed
// with a trailing FNV-1a checksum token ("~xxxxxxxx").  A reader first
// validates the seal, then parses fields with full range checks, so a line
// truncated by a SIGKILL mid-write or overwritten with garbage is rejected
// as a unit instead of producing a half-parsed record.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "fault/model.h"
#include "image/image.h"

namespace vs::fault::wire {

/// FNV-1a over the payload bytes (the seal appended by `seal`).
[[nodiscard]] std::uint32_t checksum(std::string_view payload) noexcept;

/// `payload` + " ~crc32hex".  The payload must not contain newlines.
[[nodiscard]] std::string seal(std::string_view payload);

/// Validates and strips the seal; nullopt for truncated/garbled lines.
[[nodiscard]] std::optional<std::string> unseal(std::string_view line);

/// Serializes one experiment record (unsealed payload, "R" tag first):
///   R index cls target bit reg_id scoped scope scope_b live fired outcome
///     fired_scope fired_kind detections replica_divergences retries
///     frames_degraded
[[nodiscard]] std::string record_payload(std::size_t index,
                                         const injection_record& record);

struct parsed_record {
  std::size_t index = 0;
  injection_record record;
};

/// Parses a record payload (already unsealed).  Every enum field is range
/// checked; nullopt on any malformed field.
[[nodiscard]] std::optional<parsed_record> parse_record(
    std::string_view payload);

/// FNV-1a 64 over an image's shape and pixels — the summary fingerprint
/// workers report instead of shipping whole panoramas across the pipe.
[[nodiscard]] std::uint64_t hash_image(const img::image_u8& image) noexcept;

}  // namespace vs::fault::wire
