#include "fault/analysis.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "core/error.h"

namespace vs::fault {

namespace {

std::vector<site_class> group_records(
    const std::vector<injection_record>& records, bool use_kind,
    bool use_band) {
  std::map<std::tuple<int, int, int>, site_class> classes;
  for (const auto& record : records) {
    if (!record.fired) continue;
    const int scope = static_cast<int>(record.fired_scope);
    const int kind = use_kind ? static_cast<int>(record.fired_kind) : 0;
    const int band = use_band ? static_cast<int>(record.plan.bit / 16) : 0;
    auto& cls = classes[{scope, kind, band}];
    cls.scope = record.fired_scope;
    cls.kind = record.fired_kind;
    cls.bit_band = band;
    cls.rates.add(record.result);
  }
  std::vector<site_class> out;
  out.reserve(classes.size());
  for (auto& [key, cls] : classes) {
    (void)key;
    out.push_back(cls);
  }
  std::sort(out.begin(), out.end(), [](const site_class& a,
                                       const site_class& b) {
    return a.rates.experiments > b.rates.experiments;
  });
  return out;
}

}  // namespace

std::vector<site_class> site_breakdown(
    const std::vector<injection_record>& records) {
  return group_records(records, /*use_kind=*/true, /*use_band=*/true);
}

std::vector<site_class> scope_breakdown(
    const std::vector<injection_record>& records) {
  return group_records(records, /*use_kind=*/false, /*use_band=*/false);
}

std::vector<stage_class> stage_breakdown(
    const std::vector<injection_record>& records) {
  std::map<int, stage_class> classes;
  for (const auto& record : records) {
    if (!record.fired) continue;
    const pipeline::stage_id stage = pipeline::stage_of(record.fired_scope);
    auto& cls = classes[static_cast<int>(stage)];
    cls.stage = stage;
    cls.rates.add(record.result);
  }
  std::vector<stage_class> out;
  out.reserve(classes.size());
  for (auto& [key, cls] : classes) {
    (void)key;
    out.push_back(cls);
  }
  std::sort(out.begin(), out.end(),
            [](const stage_class& a, const stage_class& b) {
              return a.rates.experiments > b.rates.experiments;
            });
  return out;
}

pruning_estimate estimate_pruning(const std::vector<injection_record>& records,
                                  double purity) {
  pruning_estimate estimate;
  const auto classes = site_breakdown(records);
  for (const auto& cls : classes) {
    estimate.fired_experiments += cls.rates.experiments;
    const std::size_t dominant = std::max(
        {cls.rates.masked, cls.rates.sdc,
         cls.rates.crash_segfault + cls.rates.crash_abort, cls.rates.hang});
    // A class only predicts reliably once it has a few samples.
    if (cls.rates.experiments >= 5 &&
        static_cast<double>(dominant) >=
            purity * static_cast<double>(cls.rates.experiments)) {
      estimate.prunable_experiments += cls.rates.experiments;
    }
  }
  estimate.prunable_fraction =
      estimate.fired_experiments > 0
          ? static_cast<double>(estimate.prunable_experiments) /
                static_cast<double>(estimate.fired_experiments)
          : 0.0;
  return estimate;
}

protection_report analyze_protection(
    const std::vector<injection_record>& records,
    const std::vector<std::optional<int>>& sdc_eds, int ed_tolerance) {
  protection_report report;
  report.experiments = records.size();
  if (records.empty()) return report;

  std::size_t masked = 0;
  std::size_t detectable = 0;
  std::size_t tolerable = 0;
  std::size_t must_protect = 0;
  std::size_t sdc_cursor = 0;
  for (const auto& record : records) {
    switch (record.result) {
      case outcome::masked:
        ++masked;
        break;
      case outcome::crash_segfault:
      case outcome::crash_abort:
      case outcome::hang:
        // Symptom-based detectors catch these cheaply (Section V-D).
        ++detectable;
        break;
      case outcome::detected_recovered:
      case outcome::detected_degraded:
        // Already caught (and handled) by the hardening in the run itself.
        ++detectable;
        break;
      case outcome::sdc: {
        if (sdc_cursor >= sdc_eds.size()) {
          throw invalid_argument(
              "analyze_protection: fewer EDs than SDC records");
        }
        const auto& ed = sdc_eds[sdc_cursor++];
        if (ed.has_value() && *ed <= ed_tolerance) {
          ++tolerable;
        } else {
          ++must_protect;
        }
        break;
      }
    }
  }
  const auto n = static_cast<double>(records.size());
  report.masked_fraction = masked / n;
  report.detectable_fraction = detectable / n;
  report.tolerable_fraction = tolerable / n;
  report.must_protect_fraction = must_protect / n;
  return report;
}

}  // namespace vs::fault
