// Fault-outcome taxonomy and campaign configuration.
#pragma once

#include <cstdint>
#include <string>

#include "rt/instrument.h"

namespace vs::fault {

/// The paper's four outcomes, with Crash split into its two observed causes
/// (segfault ~92% / abort ~8% of crashes in the paper's data), extended
/// with the recovery-aware pair produced by hardened runs (src/resil/):
/// a detection that the containment machinery turned into a golden-equal
/// output is `detected_recovered`; one that left the output altered (frame
/// skipped, dead-reckoned placement, dropped mini-panorama) but flagged is
/// `detected_degraded`.  Unhardened campaigns never produce either.
enum class outcome : std::uint8_t {
  masked,             ///< output identical to golden
  sdc,                ///< output differs (Silent Data Corruption)
  crash_segfault,     ///< memory-access violation
  crash_abort,        ///< library/application constraint abort
  hang,               ///< watchdog expired
  detected_recovered, ///< hardened: fault detected, output == golden
  detected_degraded,  ///< hardened: fault detected, output degraded
};

[[nodiscard]] const char* outcome_name(outcome o) noexcept;
[[nodiscard]] inline bool is_crash(outcome o) noexcept {
  return o == outcome::crash_segfault || o == outcome::crash_abort;
}
[[nodiscard]] inline bool is_detected(outcome o) noexcept {
  return o == outcome::detected_recovered || o == outcome::detected_degraded;
}

/// Architectural liveness model.
//
// AFI flips a bit of a random architectural register at a random cycle; the
// flip only matters when that register holds a value that is still read
// before its next write.  Our hooks see the values that *are* live, so the
// probability that the struck register is one of them is modelled
// explicitly: per class, the expected fraction of the 32-register file with
// a live-and-consumed value at a random cycle.  GPRs in this pointer/index
// heavy integer application carry long-lived bases, bounds and cursors
// (high fraction); FPRs are idle outside the floating-point phases and are
// rapidly overwritten inside them (low fraction).  A "dead" strike is a
// Mask by definition.  The defaults are calibration constants chosen once
// against the paper's baseline VS profile (see DESIGN.md section 5) and are
// deliberately NOT per-variant: every algorithm/input is measured under the
// same register model, so cross-variant differences emerge from execution.
struct liveness_model {
  double gpr_live = 0.55;
  double fpr_live = 0.02;
  int register_count = 32;  ///< per class, as on POWER (Fig 9b histograms)

  [[nodiscard]] double live_probability(rt::reg_class cls) const noexcept {
    return cls == rt::reg_class::gpr ? gpr_live : fpr_live;
  }
};

/// One injection experiment's record.
struct injection_record {
  rt::fault_plan plan;
  bool register_live = false;  ///< liveness roll; false => masked (dead)
  bool fired = false;          ///< the flip was applied during execution
  outcome result = outcome::masked;
  rt::fn fired_scope = rt::fn::other;      ///< where the flip landed
  rt::op fired_kind = rt::op::int_alu;     ///< what kind of op it struck
  /// Hardened campaigns only: what the containment machinery did during
  /// this run (all zero when the workload runs unhardened).
  std::uint32_t detections = 0;     ///< detector firings (any mechanism)
  std::uint32_t replica_divergences = 0;  ///< dual-execution disagreements
  std::uint32_t retries = 0;        ///< frame retries spent
  std::uint32_t frames_degraded = 0;
};

/// Aggregate rates over a set of records (fractions in [0, 1]).
struct outcome_rates {
  std::size_t experiments = 0;
  std::size_t masked = 0;
  std::size_t sdc = 0;
  std::size_t crash_segfault = 0;
  std::size_t crash_abort = 0;
  std::size_t hang = 0;
  std::size_t detected_recovered = 0;
  std::size_t detected_degraded = 0;

  void add(outcome o) noexcept;
  [[nodiscard]] double rate(outcome o) const noexcept;
  [[nodiscard]] double crash_rate() const noexcept;
  [[nodiscard]] double detected_rate() const noexcept;
  [[nodiscard]] std::string to_string() const;
};

}  // namespace vs::fault
