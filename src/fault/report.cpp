#include "fault/report.h"

#include <fstream>
#include <sstream>

#include "core/error.h"
#include "pipeline/stage.h"

namespace vs::fault {

namespace {
// Pipeline stage owning the fired scope, or "-" for injections that struck
// outside the per-frame stage graph (quality metrics, glue, never fired).
const char* fired_stage_name(rt::fn scope) noexcept {
  const pipeline::stage_id stage = pipeline::stage_of(scope);
  return stage == pipeline::stage_id::count_ ? "-"
                                             : pipeline::stage_name(stage);
}
}  // namespace

std::string records_to_csv(const campaign_result& result) {
  std::ostringstream out;
  out << "index,cls,target,bit,reg_id,live,fired,outcome,scope,kind,stage,"
         "detections,replica_divergences,retries,frames_degraded\n";
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& r = result.records[i];
    out << i << ','
        << (r.plan.cls == rt::reg_class::gpr ? "gpr" : "fpr") << ','
        << r.plan.target << ',' << r.plan.bit << ',' << r.plan.reg_id << ','
        << (r.register_live ? 1 : 0) << ',' << (r.fired ? 1 : 0) << ','
        << outcome_name(r.result) << ',' << rt::fn_name(r.fired_scope) << ','
        << rt::op_name(r.fired_kind) << ',' << fired_stage_name(r.fired_scope)
        << ',' << r.detections << ',' << r.replica_divergences << ','
        << r.retries << ',' << r.frames_degraded << '\n';
  }
  return out.str();
}

std::string rates_to_json(const campaign_result& result,
                          const std::string& label) {
  const auto& r = result.rates;
  std::uint64_t replica_divergences = 0;
  for (const auto& record : result.records) {
    replica_divergences += record.replica_divergences;
  }
  std::ostringstream out;
  out << "{\n"
      << "  \"label\": \"" << label << "\",\n"
      << "  \"experiments\": " << r.experiments << ",\n"
      << "  \"masked\": " << r.masked << ",\n"
      << "  \"sdc\": " << r.sdc << ",\n"
      << "  \"crash_segfault\": " << r.crash_segfault << ",\n"
      << "  \"crash_abort\": " << r.crash_abort << ",\n"
      << "  \"hang\": " << r.hang << ",\n"
      << "  \"detected_recovered\": " << r.detected_recovered << ",\n"
      << "  \"detected_degraded\": " << r.detected_degraded << ",\n"
      << "  \"replica_divergences\": " << replica_divergences << ",\n"
      << "  \"mask_rate\": " << r.rate(outcome::masked) << ",\n"
      << "  \"sdc_rate\": " << r.rate(outcome::sdc) << ",\n"
      << "  \"crash_rate\": " << r.crash_rate() << ",\n"
      << "  \"hang_rate\": " << r.rate(outcome::hang) << ",\n"
      << "  \"detected_rate\": " << r.detected_rate() << "\n"
      << "}\n";
  return out.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) throw io_error("write_text_file: cannot open " + path);
  out << text;
  if (!out) throw io_error("write_text_file: write failed for " + path);
}

void report_stream::open(const std::string& path, const std::string& header) {
  out_.open(path, std::ios::trunc);
  if (!out_) throw io_error("report_stream: cannot open " + path);
  if (!header.empty()) out_ << header << '\n';
  out_.flush();
}

void report_stream::append(const std::string& row) {
  if (!out_.is_open()) return;
  out_ << row << '\n';
  out_.flush();
}

}  // namespace vs::fault
