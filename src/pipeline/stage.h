// The per-frame stage graph as a first-class runtime object.
//
// The paper's unit of work — acquire -> detect -> describe -> match ->
// estimate -> composite — is the organizing concept of every result this
// repository reproduces, and every cross-cutting subsystem needs its own
// view of it: resil::cfcss signs its nodes, the per-stage watchdog budgets
// its step allowances, the profiler attributes rt::fn scopes to it, and the
// two-lane scheduler decides which prefix may run ahead of the stitch
// point.  This registry is the one shared description those subsystems
// consume; src/resil, src/perf, src/fault and the frame_executor all derive
// their stage knowledge from here instead of keeping parallel hand-written
// lists that drift apart.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "resil/cfcss.h"
#include "rt/instrument.h"

namespace vs::resil {
struct stage_budget_config;  // resil/hardening.h
}

namespace vs::pipeline {

/// Stable identifiers of the per-frame stages, in canonical dataflow order.
enum class stage_id : std::uint8_t {
  acquire = 0,  ///< frame acquisition / synthetic decode
  gate,         ///< frame-gate classification (skip / delta / full); a
                ///< no-op passthrough unless a gate level is active
  detect,       ///< FAST corner detection (enters feature extraction)
  describe,     ///< ORB description (finishes feature extraction)
  match,        ///< brute-force descriptor matching
  estimate,     ///< RANSAC model cascade (homography -> affine)
  composite,    ///< warp + blend into the open mini-panorama
  count_,
};
inline constexpr int stage_count = static_cast<int>(stage_id::count_);

/// Which per-frame watchdog allowance meters a stage.  Budgets are coarser
/// than stages: extraction shares one allowance across detect+describe and
/// alignment shares one across match+estimate, exactly as
/// resil::stage_budget_config groups them (a stage flagged inside either
/// half still names the work that corrupted it).
enum class budget_key : std::uint8_t {
  acquire = 0,
  gate,
  extract,
  align,
  composite,
  count_,
};
inline constexpr int budget_key_count = static_cast<int>(budget_key::count_);

[[nodiscard]] const char* budget_key_name(budget_key key) noexcept;

/// How a stage verifies its HAFT-style dual execution when selective
/// replication includes it (resil::replicated / resil::verify_replica).
enum class dual_check : std::uint8_t {
  none = 0,   ///< the stage cannot dual-execute
  recompute,  ///< pure value stage: run twice, compare results structurally
  checksum,   ///< buffer-producing stage: re-run the producer on the clean
              ///< lane, compare output digests (the buffer itself is kept
              ///< from the primary execution)
};

[[nodiscard]] const char* dual_check_name(dual_check check) noexcept;

/// One stage of the per-frame graph: everything the cross-cutting
/// subsystems need to know about it, declared once.
struct stage_desc {
  stage_id id = stage_id::count_;
  const char* name = "?";
  /// CFCSS node whose signature transition marks entry into the stage.
  resil::cfcss::node node = resil::cfcss::node::count_;
  /// Watchdog allowance the stage runs under (hardened runs only).
  budget_key budget = budget_key::count_;
  /// Whether the frame_executor opens a fresh rt::stage_scope on entry.
  /// Fused stages (describe, estimate) ride inside the previous stage's
  /// scope — they share its budget, so re-opening would grant corrupted
  /// loop bounds a second allowance and shift hardened step accounting.
  bool opens_scope = false;
  /// Whether the CFCSS transition is driven by the executor.  `estimate`
  /// is marked inside stitch::align_frames (the cascade decides at run
  /// time whether estimation is reached at all), so the executor must not
  /// mark it a second time.
  bool executor_marked = false;
  /// rt::fn attribution scopes belonging to this stage (rt::fn::count_ =
  /// unused slot).  This is the mapping perf's stage profile, resil's
  /// budget derivation and fault's stage-attributed reports share.
  rt::fn scopes[3] = {rt::fn::count_, rt::fn::count_, rt::fn::count_};
  /// Clean-lane scheduling: stages up to and including the last
  /// prefetchable one form the frame prefix that may run ahead of the
  /// stitch point (they are pure functions of the frame index).
  bool prefetchable = false;
  /// Whether the stage's kernels have a hook-free parallel twin.
  bool clean_lane = false;
  /// Whether the stage can opt into selective replication (dual execution
  /// with divergence detection).  Every replicable stage names the check
  /// contract its dual execution uses in `check`.
  bool replicable = false;
  /// The dual-execution comparison contract (dual_check::none unless
  /// `replicable`).
  dual_check check = dual_check::none;
  /// Batched scheduling: which stage's work queue carries this stage's
  /// prefetched work in the clean lane's stage_scheduler.  Fused stages
  /// ride the queue of the stage they fuse into (describe rides detect's
  /// queue, mirroring opens_scope); count_ = not batchable — the stage
  /// runs at the stitch point and never enters a queue.
  stage_id batch_queue = stage_id::count_;
  /// Real-time gating (src/gate/): whether an active frame gate may elide
  /// this stage entirely on a skip-classified frame...
  bool gate_skip = false;
  /// ...and whether a delta-classified frame runs it restricted (ROI
  /// extraction / extrapolated alignment) instead of in full.
  bool gate_roi = false;
};

/// Whether a stage's work can enter a scheduler queue (prefetchable stages
/// only; the rest run at the stitch point).
[[nodiscard]] inline bool stage_batchable(const stage_desc& s) noexcept {
  return s.batch_queue != stage_id::count_;
}

/// The canonical stage graph, in dataflow order.
[[nodiscard]] std::span<const stage_desc> stage_registry() noexcept;

/// Descriptor lookup (must not be called with count_).
[[nodiscard]] const stage_desc& stage_info(stage_id id) noexcept;

[[nodiscard]] const char* stage_name(stage_id id) noexcept;

/// The stage owning an rt::fn attribution scope, or stage_id::count_ for
/// scopes outside the per-frame graph (other / quality).  This is what
/// stage-attributes a fired injection's scope in campaign reports.
[[nodiscard]] stage_id stage_of(rt::fn f) noexcept;

/// The budget allowance a key selects from a stage_budget_config.
[[nodiscard]] std::uint64_t budget_value(
    const resil::stage_budget_config& budgets, budget_key key) noexcept;

// --- selective-replication stage masks -----------------------------------
// A replication mask has bit i set when stage_id i dual-executes.  The mask
// is the unit the hardening config, the CLI --replicate axis, and the
// frontier bench all speak.

[[nodiscard]] constexpr std::uint32_t stage_bit(stage_id s) noexcept {
  return 1u << static_cast<int>(s);
}

/// Mask of every stage whose registry entry is replicable.
[[nodiscard]] std::uint32_t replicable_stage_mask() noexcept;

/// The legacy HAFT set: geometry model estimation only (what hardening
/// level `full` enabled before replication became a per-stage attribute).
[[nodiscard]] std::uint32_t geometry_stage_mask() noexcept;

/// Parses a --replicate specification into a stage mask:
///   "off" / "none"    -> 0
///   "geometry"        -> geometry_stage_mask()
///   "all"             -> replicable_stage_mask()
///   "a,b,..."         -> union of the named stages (case-insensitive)
/// Throws invalid_argument on unknown stage names or non-replicable stages.
[[nodiscard]] std::uint32_t parse_replicate_stages(const std::string& spec);

/// Canonical spelling of a mask ("off", "geometry", "all", or the
/// comma-separated stage list) — inverse of parse_replicate_stages.
[[nodiscard]] std::string replicate_stages_name(std::uint32_t mask);

}  // namespace vs::pipeline
