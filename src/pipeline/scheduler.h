// stage_scheduler — per-stage batched work queues, the clean lane's
// execution core behind the frame_executor.
//
// The seed executor prefetched whole-frame prefixes as k independent
// futures: one helper thread per in-flight frame, each running
// acquire -> detect -> describe end to end.  On wide machines that shape
// starves the pool whenever per-frame work is small (each helper keeps its
// kernels inline), and in the serving front end every admitted job span its
// own helpers with no way to coalesce work across jobs.
//
// The scheduler replaces the ring's production side with per-stage work
// queues keyed by (job, frame):
//
//   * submit() enqueues a frame ticket at the acquire queue and hands the
//     consumer a future; the prefetchable registry stages name the queue
//     their work rides in (stage_desc::batch_queue — describe is fused into
//     detect's queue, exactly as the executor fuses their stage scopes);
//   * one dispatcher thread forms batches: it scans the queues in REVERSE
//     dataflow order (extraction before admission, so in-flight frames
//     finish first and queue memory stays bounded by the executors'
//     lookahead depths), pops up to batch_limit() items, and issues ONE
//     core::thread_pool::run_tasks dispatch over the batch — k frames' FAST
//     pyramids in one fan-out instead of k private helper threads;
//   * an item whose step throws is EVICTED from its batch: its ticket is
//     poisoned (future::get rethrows at the consumer, inside the acquire
//     stage guard, where the recovery boundary contains it exactly like the
//     ring's poisoned future) while the batch's other items complete and
//     advance untouched.  The consumer's retry then recomputes inline,
//     bypassing the queues — identical to the ring's retry contract.
//
// Determinism: each frame's stage work is a pure function of the frame
// index, each run_tasks task is exactly one chunk of the pool's fixed
// tiling, and tickets are fulfilled per frame — so consumption order,
// chunk shapes and therefore every output byte are identical at any batch
// size, any pool width, and any interleaving of jobs in the queues.  The
// instrumented lane never touches the scheduler at all.
//
// Serving: one scheduler is shared across every admitted job, so deep
// admission queues batch frames from different clips into one dispatch.
// Batches run under non-blocking core::pool_arbiter leases — the runner
// threads hold blocking leases for whole jobs while they wait on tickets,
// so a blocking acquire here could deadlock the fleet; when no slots are
// free the batch runs inline on the dispatcher thread (a bounded,
// transient extra lane of compute that keeps tickets flowing).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "features/keypoint.h"
#include "image/image.h"
#include "pipeline/stage.h"

namespace vs::core {
class pool_arbiter;
class thread_pool;
}  // namespace vs::core

namespace vs::pipeline {

/// What the prefetchable stage prefix (acquire + detect + describe)
/// produces for one frame.
struct frame_work {
  img::image_u8 frame;
  feat::frame_features features;
};

// --- the --batch axis -----------------------------------------------------
// kBatchOff selects the legacy per-frame future ring (one detached helper
// per in-flight frame, the seed executor's shape — kept as the bisection
// and CI forcing axis).  kBatchAuto sizes batches to the dispatch width.
// A fixed k in [1, kBatchMax] caps every dispatch at k frames.
// kBatchInherit defers to the process-wide request.

inline constexpr int kBatchInherit = -2;
inline constexpr int kBatchOff = -1;
inline constexpr int kBatchAuto = 0;
inline constexpr int kBatchMax = 256;

/// Parses a --batch / VS_BATCH specification: "off", "auto", or a batch
/// size in [1, kBatchMax].  Throws invalid_argument listing the valid
/// values (the --replicate error-message convention).
[[nodiscard]] int parse_batch(const std::string& spec);

/// Canonical spelling of a batch value ("off", "auto", "inherit", or the
/// number) — inverse of parse_batch for its outputs.
[[nodiscard]] std::string batch_name(int batch);

/// Installs a process-wide request (the --batch flag).
void set_batch(int batch) noexcept;

/// The process-wide batch request: set_batch() if called, else VS_BATCH
/// (an unrecognized value fails closed to "off" — the legacy ring is the
/// conservative configuration), else auto.
[[nodiscard]] int requested_batch() noexcept;

/// Resolves a config/executor batch knob: kBatchInherit defers to
/// requested_batch(); anything else passes through.
[[nodiscard]] int resolve_batch(int batch) noexcept;

/// Live counters over a scheduler's lifetime (relaxed reads; exact once the
/// producers quiesce).
struct scheduler_stats {
  std::uint64_t jobs = 0;            ///< attach() calls
  std::uint64_t frames = 0;          ///< tickets submitted
  std::uint64_t batches = 0;         ///< grouped dispatches issued
  std::uint64_t peak_batch = 0;      ///< widest batch dispatched
  std::uint64_t inline_batches = 0;  ///< ran on the dispatcher (no lease free)
  std::uint64_t evicted = 0;         ///< items poisoned out of a batch
};

class stage_scheduler {
 public:
  using acquire_step = std::function<img::image_u8()>;
  using extract_step =
      std::function<feat::frame_features(const img::image_u8&)>;

  struct options {
    /// kBatchAuto or a fixed size in [1, kBatchMax].  (kBatchOff never
    /// reaches a scheduler: an executor asked to run batch=off keeps the
    /// legacy ring and constructs none.)
    int batch = kBatchAuto;
    /// Fixed dispatch pool (standalone summarize: the executor passes the
    /// pool its own kernels dispatch to, so a leased-width job keeps its
    /// batches on the leased pool).  Ignored when `arbiter` is set.
    core::thread_pool* pool = nullptr;
    /// Leased dispatch (serving): every batch runs under a NON-BLOCKING
    /// try_acquire lease; no free slots -> the batch runs inline on the
    /// dispatcher thread.  Blocking would deadlock: runner threads hold
    /// their job leases while waiting on tickets only this thread resolves.
    core::pool_arbiter* arbiter = nullptr;
  };

  explicit stage_scheduler(const options& opt);
  /// Drains every queued item (poisoning is not an option for work whose
  /// consumer may still hold a ticket), then joins the dispatcher.
  ~stage_scheduler();
  stage_scheduler(const stage_scheduler&) = delete;
  stage_scheduler& operator=(const stage_scheduler&) = delete;

  /// Registers a producer (one executor run) and returns its job key.
  [[nodiscard]] std::uint64_t attach() noexcept;

  /// Enqueues (job, frame) at the acquire queue and returns the ticket its
  /// consumer waits on.  Each step runs exactly once, inside a grouped
  /// dispatch; an exception from either step poisons the ticket (eviction —
  /// the batch's other items still complete) and rethrows at get().
  [[nodiscard]] std::future<frame_work> submit(std::uint64_t job, int frame,
                                               acquire_step acquire,
                                               extract_step extract);

  /// Most frames one dispatch may take: the fixed size, or the dispatch
  /// width (arbiter budget / pool width) under auto.
  [[nodiscard]] int batch_limit() const noexcept;

  [[nodiscard]] scheduler_stats stats() const noexcept;

 private:
  struct item {
    std::uint64_t job = 0;
    int frame = -1;
    acquire_step acquire;
    extract_step extract;
    img::image_u8 image;  ///< produced by the acquire step
    std::promise<frame_work> done;
    std::exception_ptr error;  ///< set by a throwing step (-> eviction)
  };

  void dispatcher_loop();
  /// Runs one batch at `stage` via a grouped dispatch and returns the
  /// items advancing to the next queue (acquire -> detect; a detect item
  /// fulfilled its ticket instead).
  [[nodiscard]] std::vector<std::unique_ptr<item>> run_batch(
      stage_id stage, std::vector<std::unique_ptr<item>> batch);
  void dispatch(std::span<const std::function<void()>> tasks);
  [[nodiscard]] bool have_work_locked() const noexcept;

  const options opt_;
  /// Width-1 pool backing inline fallback dispatches: run_tasks on it runs
  /// the batch sequentially on the dispatcher with the nested-parallelism
  /// guard held, so kernels inside a fallback batch cannot escape to the
  /// process-wide pool behind the arbiter's back.
  std::unique_ptr<core::thread_pool> inline_pool_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Work queues in dataflow order; only the registry's batch_queue owners
  /// (acquire, detect) are ever populated.
  std::deque<std::unique_ptr<item>> queues_[stage_count];

  std::atomic<std::uint64_t> next_job_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> peak_batch_{0};
  std::atomic<std::uint64_t> inline_batches_{0};
  std::atomic<std::uint64_t> evicted_{0};

  std::thread dispatcher_;  ///< last member: joined before queues die
};

}  // namespace vs::pipeline
