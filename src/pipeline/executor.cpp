#include "pipeline/executor.h"

#include <algorithm>
#include <utility>

#include "core/thread_pool.h"

namespace vs::pipeline {

frame_executor::frame_executor(const resil::hardening_config& hardening,
                               int frame_count, int frames_in_flight,
                               acquire_fn acquire, detect_fn detect,
                               verify_fn verify, int batch,
                               stage_scheduler* scheduler, bool acquire_only)
    : hardening_(hardening),
      hardened_(hardening.enabled()),
      frame_count_(frame_count),
      depth_(std::max(0, frames_in_flight)),
      batch_(resolve_batch(batch)),
      acquire_only_(acquire_only),
      // The instrumented lane never prefetches: acquisition must stay
      // inline so its hooks keep their position in the dynamic-instruction
      // stream the fault plans address.
      overlap_(!rt::instrumented() && depth_ > 0 && frame_count > 1),
      acquire_(std::move(acquire)),
      detect_(std::move(detect)),
      verify_(std::move(verify)) {
  if (overlap_ && batch_ != kBatchOff) {
    if (scheduler != nullptr) {
      scheduler_ = scheduler;
    } else {
      stage_scheduler::options opt;
      opt.batch = batch_;
      // Batches dispatch to the pool this run's own kernels use, so a job
      // under a leased-width pool (core/pool_budget.h) keeps its batched
      // prefetch on the lease instead of escaping to the process-wide pool.
      opt.pool = &core::thread_pool::current();
      owned_scheduler_ = std::make_unique<stage_scheduler>(opt);
      scheduler_ = owned_scheduler_.get();
    }
    job_ = scheduler_->attach();
  }
}

frame_executor::~frame_executor() {
  for (slot& s : ring_) {
    if (s.work.valid()) s.work.wait();
  }
}

frame_executor::stage_guard::stage_guard(const frame_executor& exec,
                                         stage_id s) {
  const stage_desc& desc = stage_info(s);
  if (exec.hardened_ && desc.opens_scope) {
    scope_.emplace(budget_value(exec.hardening_.stage_budgets, desc.budget));
  }
  resil::mark(desc.node);
}

frame_work frame_executor::produce(int index) const {
  frame_work w;
  w.frame = acquire_(index);
  if (!acquire_only_) w.features = detect_(w.frame);
  return w;
}

void frame_executor::check_extract_replica(const frame_work& work) const {
  // detect and describe are fused in one extraction call, so either
  // stage's replication bit dual-executes the pair; a divergence is
  // attributed to the stage whose bit requested the check.
  const bool detect_on = resil::stage_replicated(stage_id::detect);
  if (!detect_on && !resil::stage_replicated(stage_id::describe)) return;
  const stage_id blame = detect_on ? stage_id::detect : stage_id::describe;
  if (verify_) {
    // Per-keypoint scoring verification: O(keypoints) instead of the
    // detector's O(pixels) full-frame search, so dual-executing the
    // extraction pair costs a fraction of the primary run.
    resil::verify_checked(blame,
                          [&] { return verify_(work.frame, work.features); });
    return;
  }
  resil::verify_recomputed(blame, work.features,
                           [&] { return detect_(work.frame); },
                           std::equal_to<feat::frame_features>());
}

void frame_executor::drain_stale(int index) {
  while (!ring_.empty() && ring_.front().index < index) {
    if (ring_.front().work.valid()) ring_.front().work.wait();
    ring_.pop_front();
  }
}

void frame_executor::top_up(int index) {
  const int horizon = std::min(frame_count_, index + 1 + depth_);
  if (next_prefetch_ <= index) next_prefetch_ = index + 1;
  if (scheduler_ != nullptr) {
    // Batched production: each frame becomes a (job, frame) ticket in the
    // scheduler's acquire queue; the dispatcher groups queued tickets —
    // across jobs, under serving — into one pool dispatch per stage.  The
    // consumption side below is identical to the ring's, so ordering,
    // CFCSS marks and retry semantics don't move.
    while (next_prefetch_ < horizon) {
      const int i = next_prefetch_++;
      stage_scheduler::extract_step extract;
      if (!acquire_only_) {
        extract = [this](const img::image_u8& frame) {
          return detect_(frame);
        };
      }
      ring_.push_back({i, scheduler_->submit(
                              job_, i, [this, i] { return acquire_(i); },
                              std::move(extract))});
    }
    return;
  }
  // Legacy per-frame ring (--batch=off): one detached helper per in-flight
  // frame.  Helpers inherit the submitting thread's pool override, so a job
  // running under a leased-width pool (core/pool_budget.h) keeps its
  // prefetched kernels on the leased pool instead of escaping to the
  // process-wide one.
  core::thread_pool* pool = core::thread_pool::current_override();
  while (next_prefetch_ < horizon) {
    const int i = next_prefetch_++;
    ring_.push_back({i, std::async(std::launch::async, [this, i, pool] {
                       if (pool == nullptr) return produce(i);
                       const core::pool_scope scope(*pool);
                       return produce(i);
                     })});
  }
}

frame_work frame_executor::obtain(int index) {
  if (overlap_ && !retrying_) {
    drain_stale(index);
    if (!ring_.empty() && ring_.front().index == index) {
      // Interprocedural CFCSS: consuming the ring signs through the
      // prefetch node, so control flow that jumps out of (or into) the
      // prefetched path is caught by the acquire transition's fan-in.
      resil::mark(resil::cfcss::node::prefetch);
      std::future<frame_work> work = std::move(ring_.front().work);
      ring_.pop_front();
      frame_work w;
      {
        // A poisoned prefetch (the helper's acquisition or extraction
        // threw) rethrows here, inside the acquire stage, where the
        // recovery boundary contains it like an inline failure.
        const stage_guard g = enter(stage_id::acquire);
        w = work.get();
      }
      if (!acquire_only_) {
        const stage_guard g = enter(stage_id::detect);
        mark(stage_id::describe);
        check_extract_replica(w);
      }
      top_up(index);
      return w;
    }
  }
  // Inline: the instrumented lane, depth 0, the ring's cold start, or a
  // recovery retry recomputing a consumed slot.
  frame_work w;
  {
    const stage_guard g = enter(stage_id::acquire);
    w.frame = acquire_(index);
  }
  if (!acquire_only_) {
    const stage_guard g = enter(stage_id::detect);
    w.features = detect_(w.frame);
    mark(stage_id::describe);
    check_extract_replica(w);
  }
  if (overlap_ && !retrying_) top_up(index);
  return w;
}

}  // namespace vs::pipeline
