#include "pipeline/scheduler.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "core/error.h"
#include "core/pool_budget.h"
#include "core/thread_pool.h"

namespace vs::pipeline {

// --- the --batch axis -----------------------------------------------------

int parse_batch(const std::string& spec) {
  std::string lower;
  lower.reserve(spec.size());
  for (char c : spec) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower.empty() || lower == "auto") return kBatchAuto;
  if (lower == "off" || lower == "none") return kBatchOff;
  const bool digits =
      std::all_of(lower.begin(), lower.end(),
                  [](char c) { return std::isdigit(c) != 0; });
  if (digits) {
    const long v = std::strtol(lower.c_str(), nullptr, 10);
    if (v >= 1 && v <= kBatchMax) return static_cast<int>(v);
  }
  throw invalid_argument("unknown batch size: " + spec +
                         " (expected off, auto, or a batch size 1.." +
                         std::to_string(kBatchMax) + ")");
}

std::string batch_name(int batch) {
  if (batch == kBatchInherit) return "inherit";
  if (batch == kBatchOff) return "off";
  if (batch == kBatchAuto) return "auto";
  return std::to_string(batch);
}

namespace {
std::atomic<int> g_batch_flag{kBatchInherit};
}  // namespace

void set_batch(int batch) noexcept {
  g_batch_flag.store(batch, std::memory_order_relaxed);
}

int requested_batch() noexcept {
  // The environment is read once: VS_BATCH is a process-launch axis (the CI
  // forcing jobs), not something to toggle mid-run.
  static const int env_value = [] {
    if (const char* env = std::getenv("VS_BATCH")) {
      try {
        return parse_batch(env);
      } catch (...) {
        // An unrecognized VS_BATCH is a configuration error; fail closed to
        // the legacy ring rather than silently batching.
        return kBatchOff;
      }
    }
    return kBatchAuto;
  }();
  const int flag = g_batch_flag.load(std::memory_order_relaxed);
  return flag == kBatchInherit ? env_value : flag;
}

int resolve_batch(int batch) noexcept {
  return batch == kBatchInherit ? requested_batch() : batch;
}

// --- stage_scheduler ------------------------------------------------------

namespace {

constexpr int qidx(stage_id s) noexcept { return static_cast<int>(s); }

void bump_peak(std::atomic<std::uint64_t>& peak, std::uint64_t value) {
  std::uint64_t seen = peak.load(std::memory_order_relaxed);
  while (seen < value &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

stage_scheduler::stage_scheduler(const options& opt)
    : opt_(opt), inline_pool_(std::make_unique<core::thread_pool>(1)) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

stage_scheduler::~stage_scheduler() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::uint64_t stage_scheduler::attach() noexcept {
  return next_job_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::future<frame_work> stage_scheduler::submit(std::uint64_t job, int frame,
                                                acquire_step acquire,
                                                extract_step extract) {
  auto it = std::make_unique<item>();
  it->job = job;
  it->frame = frame;
  it->acquire = std::move(acquire);
  it->extract = std::move(extract);
  std::future<frame_work> ticket = it->done.get_future();
  frames_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(m_);
    queues_[qidx(stage_id::acquire)].push_back(std::move(it));
  }
  cv_.notify_one();
  return ticket;
}

int stage_scheduler::batch_limit() const noexcept {
  if (opt_.batch > 0) return std::min(opt_.batch, kBatchMax);
  unsigned width = 1;
  if (opt_.arbiter != nullptr) {
    width = opt_.arbiter->budget();
  } else if (opt_.pool != nullptr) {
    width = opt_.pool->thread_count();
  }
  return static_cast<int>(
      std::clamp<unsigned>(width, 1u, static_cast<unsigned>(kBatchMax)));
}

scheduler_stats stage_scheduler::stats() const noexcept {
  scheduler_stats s;
  s.jobs = next_job_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.peak_batch = peak_batch_.load(std::memory_order_relaxed);
  s.inline_batches = inline_batches_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  return s;
}

bool stage_scheduler::have_work_locked() const noexcept {
  for (const auto& q : queues_) {
    if (!q.empty()) return true;
  }
  return false;
}

void stage_scheduler::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(m_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || have_work_locked(); });
    if (!have_work_locked()) {
      if (stop_) return;  // drained: only exit with empty queues
      continue;
    }
    // Reverse dataflow order: drain extraction before admitting more
    // acquires, so frames already in flight complete first and queued
    // memory stays bounded by the producers' lookahead depths.
    stage_id stage = stage_id::acquire;
    for (int s = stage_count - 1; s >= 0; --s) {
      if (!queues_[s].empty()) {
        stage = static_cast<stage_id>(s);
        break;
      }
    }
    auto& queue = queues_[qidx(stage)];
    const auto limit = static_cast<std::size_t>(batch_limit());
    std::vector<std::unique_ptr<item>> batch;
    batch.reserve(std::min(queue.size(), limit));
    while (!queue.empty() && batch.size() < limit) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
    }
    lock.unlock();
    batches_.fetch_add(1, std::memory_order_relaxed);
    bump_peak(peak_batch_, batch.size());
    std::vector<std::unique_ptr<item>> advanced =
        run_batch(stage, std::move(batch));
    lock.lock();
    if (!advanced.empty()) {
      auto& next_queue = queues_[qidx(stage_id::detect)];
      for (auto& it : advanced) next_queue.push_back(std::move(it));
    }
  }
}

std::vector<std::unique_ptr<stage_scheduler::item>> stage_scheduler::run_batch(
    stage_id stage, std::vector<std::unique_ptr<item>> batch) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(batch.size());
  for (auto& slot : batch) {
    item* it = slot.get();
    tasks.push_back([it, stage] {
      try {
        if (stage == stage_id::acquire) {
          it->image = it->acquire();
          // Acquire-only tickets (a gated executor: extraction moves to the
          // stitch point, behind the frame-gate classification) complete
          // here instead of advancing to the detect queue.
          if (!it->extract) {
            it->done.set_value(frame_work{std::move(it->image), {}});
          }
        } else {
          feat::frame_features features = it->extract(it->image);
          it->done.set_value(
              frame_work{std::move(it->image), std::move(features)});
        }
      } catch (...) {
        it->error = std::current_exception();
      }
    });
  }
  dispatch(tasks);
  std::vector<std::unique_ptr<item>> advanced;
  advanced.reserve(batch.size());
  for (auto& slot : batch) {
    if (slot->error != nullptr) {
      // Eviction: poison only this ticket.  The consumer's get() rethrows
      // inside its acquire stage guard — the recovery boundary contains it
      // like an inline failure and the retry recomputes inline, exactly the
      // ring's contract.  The batch's other items were untouched.
      evicted_.fetch_add(1, std::memory_order_relaxed);
      slot->done.set_exception(slot->error);
      continue;
    }
    if (stage == stage_id::acquire && slot->extract) {
      advanced.push_back(std::move(slot));
    }
  }
  return advanced;
}

void stage_scheduler::dispatch(std::span<const std::function<void()>> tasks) {
  if (opt_.arbiter != nullptr) {
    core::pool_lease lease = opt_.arbiter->try_acquire(
        1, static_cast<unsigned>(tasks.size()));
    if (lease) {
      lease.pool().run_tasks(tasks);
      return;
    }
    // Every slot is leased to running jobs whose consumers are waiting on
    // tickets only this thread resolves: run the batch inline rather than
    // block.  inline_pool_ holds the nested-parallelism guard so kernels
    // inside the batch cannot escape the budget via the process-wide pool.
    inline_batches_.fetch_add(1, std::memory_order_relaxed);
    inline_pool_->run_tasks(tasks);
    return;
  }
  core::thread_pool* pool =
      opt_.pool != nullptr ? opt_.pool : inline_pool_.get();
  pool->run_tasks(tasks);
}

}  // namespace vs::pipeline
