// frame_executor — the one pipeline spine that drives a frame through the
// stage graph and owns every cross-cutting concern declaratively:
//
//   * CFCSS transitions   — entering a stage marks its registry node;
//   * watchdog budgets    — a stage that opens_scope runs under its
//                           budget_key's rt::stage_scope allowance;
//   * recovery boundary   — run_frame wraps the whole frame in
//                           resil::attempt with snapshot/restore and the
//                           retry -> degrade policy ladder;
//   * lane selection      — the instrumented lane executes every stage
//                           inline (fault plans address injections by
//                           dynamic-op index, so acquisition must keep its
//                           position in the hook stream), while the clean
//                           lane feeds the prefetchable stage prefix
//                           (acquire/detect/describe) of frames t+1..t+k
//                           into a stage_scheduler's per-stage batch queues
//                           (or, at --batch=off, onto legacy per-frame
//                           helper threads) while frame t is matched and
//                           composited;
//   * profiling           — attribution scopes stay inside the kernels,
//                           but the registry's fn->stage mapping is what
//                           perf and fault reports aggregate by.
//
// The scheduling invariant: prefetched stages are pure functions of the
// frame index, consumed strictly in stitch order, so the summary is
// byte-identical at any in-flight depth — and the instrumented lane never
// prefetches, so its hook stream is bit-for-bit the one the campaigns
// measured.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>

#include "features/keypoint.h"
#include "image/image.h"
#include "pipeline/scheduler.h"
#include "pipeline/stage.h"
#include "resil/hardening.h"
#include "resil/recovery.h"
#include "resil/runtime.h"
#include "rt/instrument.h"

namespace vs::pipeline {

class frame_executor {
 public:
  using acquire_fn = std::function<img::image_u8(int)>;
  using detect_fn = std::function<feat::frame_features(const img::image_u8&)>;
  /// Cheap dual check of an extraction product: true when every reported
  /// keypoint's derived fields re-verify against the frame (the
  /// per-keypoint scoring contract — see feat::orb_verify_features).
  using verify_fn =
      std::function<bool(const img::image_u8&, const feat::frame_features&)>;

  /// `hardening` must outlive the executor (it is the pipeline_config's).
  /// `frames_in_flight` bounds the clean-lane lookahead ring; the
  /// instrumented lane ignores it and runs strictly inline.  When `verify`
  /// is provided the extraction stages' replication check uses it instead
  /// of a full recompute-and-compare of `detect`.
  ///
  /// `batch` selects the clean lane's production side: kBatchOff keeps the
  /// legacy one-future-per-frame ring; anything else routes prefetch
  /// through a stage_scheduler's per-stage batch queues (kBatchInherit
  /// defers to --batch / VS_BATCH).  `scheduler` shares an external
  /// scheduler (the serving front end's cross-job queues); when null and
  /// batching is on the executor owns a private one dispatching to the
  /// pool its own kernels use.  Output is byte-identical along the whole
  /// axis: tickets are consumed in stitch order either way.
  ///
  /// `acquire_only` degrades the prefetchable prefix to frame acquisition
  /// (gated runs: whether — and over which ROI — extraction happens is
  /// decided per frame at the stitch point, behind the gate stage, so it
  /// cannot run ahead).  obtain() then returns frames with empty features
  /// and the caller drives extraction through enter(detect) + extract() +
  /// mark(describe) + check_extract().
  frame_executor(const resil::hardening_config& hardening, int frame_count,
                 int frames_in_flight, acquire_fn acquire, detect_fn detect,
                 verify_fn verify = {}, int batch = kBatchInherit,
                 stage_scheduler* scheduler = nullptr,
                 bool acquire_only = false);
  /// Drains every in-flight prefetch before the frame source can die.
  ~frame_executor();
  frame_executor(const frame_executor&) = delete;
  frame_executor& operator=(const frame_executor&) = delete;

  /// RAII stage entry: opens the stage's watchdog allowance (hardened runs,
  /// opens_scope stages only) and drives its CFCSS transition — in that
  /// order, so the transition's own signature update is metered against the
  /// stage it enters, exactly as the hand-threaded pipeline did.
  class stage_guard {
   public:
    stage_guard(const frame_executor& exec, stage_id s);
    stage_guard(const stage_guard&) = delete;
    stage_guard& operator=(const stage_guard&) = delete;

   private:
    std::optional<rt::stage_scope> scope_;
  };

  /// Enters stage `s` for the current block.
  [[nodiscard]] stage_guard enter(stage_id s) const {
    return stage_guard(*this, s);
  }

  /// Fused stage transition: CFCSS mark only, inside the enclosing stage's
  /// open allowance (describe rides in detect's scope).
  void mark(stage_id s) const { resil::mark(stage_info(s).node); }

  /// Marks the frame_end CFCSS node closing the per-frame graph.
  void end_frame() const { resil::mark(resil::cfcss::node::frame_end); }

  /// Runs the prefetchable stage prefix for `index` and returns its
  /// products.  Clean lane: consumes the in-flight ring (draining slots of
  /// frames the policy skipped) and tops it up to the lookahead depth.
  /// Instrumented lane, depth 0, or a recovery retry: computes inline.
  [[nodiscard]] frame_work obtain(int index);

  /// Re-acquires a frame for the degraded placement path: always inline,
  /// never touches the ring, launches nothing.
  [[nodiscard]] img::image_u8 reacquire(int index) const {
    return acquire_(index);
  }

  /// Runs the extraction callback inline (acquire-only mode: the caller
  /// owns the detect stage guard and the describe mark).
  [[nodiscard]] feat::frame_features extract(const img::image_u8& frame) const {
    return detect_(frame);
  }

  /// Dual-execution check of an extraction product the caller produced at
  /// the stitch point (acquire-only mode).  Call inside the detect stage
  /// guard, on freshly extracted features only — reused/cached descriptors
  /// intentionally differ from a re-derivation against the current frame.
  void check_extract(const frame_work& work) const {
    check_extract_replica(work);
  }

  /// Whether the current obtain() call is a recovery retry (gated callers
  /// must invalidate learned state before trusting it on a retry).
  [[nodiscard]] bool retrying() const noexcept { return retrying_; }

  /// The frame-level recovery boundary over one frame's unit of work:
  /// re-seeds the CFCSS monitor, attempts `body`, and on a contained
  /// failure restores `st` from a pre-attempt snapshot and walks the
  /// policy ladder (retry max_frame_retries times, then `degrade`).
  /// Unhardened runs execute `body` directly with zero overhead.
  template <class State, class Body, class Degrade>
  void run_frame(State& st, Body&& body, Degrade&& degrade) {
    const auto attempt_body = [&] {
      // Interprocedural CFCSS: frame entry is a checked transition from the
      // previous frame's exit (or from the recovery node on a retry), so
      // the signature chain spans frame boundaries instead of re-seeding.
      if (resil::tls.monitor != nullptr) resil::tls.monitor->enter_frame();
      body();
    };
    if (!hardened_) {
      attempt_body();
      return;
    }
    const State snapshot = st;
    bool failed_once = false;
    int retries_left = hardening_.max_frame_retries;
    for (;;) {
      const auto failure = resil::attempt(attempt_body);
      if (!failure) {
        if (failed_once) ++resil::tls.report.frames_recovered;
        retrying_ = false;
        return;
      }
      st = snapshot;
      failed_once = true;
      // The signature register is presumed corrupt on the exception path:
      // re-anchor the chain at the recover node, from which the retry's
      // frame entry is a checked edge.
      if (resil::tls.monitor != nullptr) resil::tls.monitor->enter_recovery();
      // The failed attempt already consumed (or poisoned) this frame's
      // prefetch slot; obtain() must bypass the ring and recompute inline
      // rather than dequeue a later frame's work.
      retrying_ = true;
      if (retries_left-- > 0) {
        ++resil::tls.report.retries;
        continue;
      }
      degrade();
      retrying_ = false;
      return;
    }
  }

  /// Whether the clean-lane lookahead is active this run.
  [[nodiscard]] bool overlapping() const noexcept { return overlap_; }
  [[nodiscard]] int frames_in_flight() const noexcept { return depth_; }
  /// Whether prefetch rides stage_scheduler batch queues (vs the legacy
  /// per-frame future ring, or no lookahead at all).
  [[nodiscard]] bool batched() const noexcept { return scheduler_ != nullptr; }
  /// The resolved batch knob this run executes under.
  [[nodiscard]] int batch() const noexcept { return batch_; }

 private:
  /// The whole prefetchable prefix composed, as helper threads run it.
  [[nodiscard]] frame_work produce(int index) const;
  /// Dual-execution check of the extraction stages (selective
  /// replication): per-keypoint scoring verification when a verify_fn was
  /// supplied, full recompute-compare otherwise.  No-op unless the
  /// session's replication mask includes detect or describe.  Called
  /// inside the detect stage guard so a divergence is detected — and
  /// budgeted — in the stage it implicates.  (Acquire has no check: it is
  /// the I/O boundary, outside the sphere of replication.)
  void check_extract_replica(const frame_work& work) const;
  /// Finishes and discards slots of frames consumption skipped past
  /// (RFD-dropped frames): the helper thread reads the source, so the slot
  /// must complete before it dies.
  void drain_stale(int index);
  /// Schedules the prefix of frames index+1 .. index+depth.  Monotonic:
  /// a frame is scheduled at most once per run, so a retry can never
  /// double-schedule work the first attempt already launched.
  void top_up(int index);

  const resil::hardening_config& hardening_;
  const bool hardened_;
  const int frame_count_;
  const int depth_;
  const int batch_;  ///< resolved batch knob (kBatchOff / kBatchAuto / k)
  const bool acquire_only_;
  const bool overlap_;
  bool retrying_ = false;
  acquire_fn acquire_;
  detect_fn detect_;
  verify_fn verify_;

  /// Private scheduler when batching is on and none was shared.  Declared
  /// before ring_ and destroyed after the destructor body drains it, so
  /// every ticket resolves while the dispatcher is still alive.
  std::unique_ptr<stage_scheduler> owned_scheduler_;
  stage_scheduler* scheduler_ = nullptr;  ///< null = legacy ring / inline
  std::uint64_t job_ = 0;                 ///< scheduler job key

  struct slot {
    int index = -1;
    std::future<frame_work> work;
  };
  std::deque<slot> ring_;  ///< in-flight frames, ascending index
  int next_prefetch_ = 0;  ///< first frame index never scheduled
};

}  // namespace vs::pipeline
