#include "pipeline/stage.h"

#include <cctype>

#include "core/error.h"
#include "resil/hardening.h"

namespace vs::pipeline {

namespace {

using resil::cfcss::node;

// Replication contracts: composite's product is a pixel buffer (the warped
// patch), so its dual execution compares digests of a clean-lane
// recomputation; detect/describe/match/estimate produce structured values
// (keypoints, descriptors, matches, models) that are checked after a
// second execution — full for match/estimate, per-keypoint scoring for the
// extraction pair (the corner search itself is not re-run; every reported
// keypoint's score, orientation, and descriptor are re-derived at its
// coordinates, so a fault that perturbs any stored field diverges).
// Acquire sits *outside* the sphere of replication (the SWIFT/HAFT
// convention): it is the I/O boundary, and a general video decoder cannot
// be re-invoked for the same frame without re-seeking the stream.
// Composite is replicable even though blending mutates the canvas: the
// checked product is the warped patch the blend consumes, computed
// *before* any canvas mutation.
// The gate stage is the one stitch-point stage *inside* the prefetchable
// prefix: classification consumes the previous processed frame's state, so
// it can never run ahead, and when a gate level is active the executor
// degrades its prefetch to acquire-only (extraction moves behind the
// classification).  Its dual execution recomputes the change score hook-free
// and compares bitwise (dual_check::recompute).
constexpr stage_desc kRegistry[stage_count] = {
    {stage_id::acquire, "acquire", node::acquire, budget_key::acquire,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::video_decode, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/true, /*clean_lane=*/true,
     /*replicable=*/false, dual_check::none,
     /*batch_queue=*/stage_id::acquire,
     /*gate_skip=*/false, /*gate_roi=*/false},
    {stage_id::gate, "gate", node::gate, budget_key::gate,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::gate, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/false, /*clean_lane=*/false,
     /*replicable=*/true, dual_check::recompute,
     /*batch_queue=*/stage_id::count_,
     /*gate_skip=*/false, /*gate_roi=*/false},
    {stage_id::detect, "detect", node::detect, budget_key::extract,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::fast_detect, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/true, /*clean_lane=*/true,
     /*replicable=*/true, dual_check::recompute,
     /*batch_queue=*/stage_id::detect,
     /*gate_skip=*/true, /*gate_roi=*/true},
    {stage_id::describe, "describe", node::describe, budget_key::extract,
     /*opens_scope=*/false, /*executor_marked=*/true,
     {rt::fn::orb_describe, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/true, /*clean_lane=*/true,
     /*replicable=*/true, dual_check::recompute,
     /*batch_queue=*/stage_id::detect,
     /*gate_skip=*/true, /*gate_roi=*/true},
    {stage_id::match, "match", node::match, budget_key::align,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::match, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/false, /*clean_lane=*/true,
     /*replicable=*/true, dual_check::recompute,
     /*batch_queue=*/stage_id::count_,
     /*gate_skip=*/true, /*gate_roi=*/true},
    {stage_id::estimate, "estimate", node::estimate, budget_key::align,
     /*opens_scope=*/false, /*executor_marked=*/false,
     {rt::fn::ransac, rt::fn::homography, rt::fn::count_},
     /*prefetchable=*/false, /*clean_lane=*/false,
     /*replicable=*/true, dual_check::recompute,
     /*batch_queue=*/stage_id::count_,
     /*gate_skip=*/true, /*gate_roi=*/true},
    {stage_id::composite, "composite", node::composite, budget_key::composite,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::warp, rt::fn::remap, rt::fn::stitch},
     /*prefetchable=*/false, /*clean_lane=*/true,
     /*replicable=*/true, dual_check::checksum,
     /*batch_queue=*/stage_id::count_,
     /*gate_skip=*/true, /*gate_roi=*/false},
};

}  // namespace

const char* budget_key_name(budget_key key) noexcept {
  switch (key) {
    case budget_key::acquire:
      return "acquire";
    case budget_key::gate:
      return "gate";
    case budget_key::extract:
      return "extract";
    case budget_key::align:
      return "align";
    case budget_key::composite:
      return "composite";
    case budget_key::count_:
      break;
  }
  return "?";
}

std::span<const stage_desc> stage_registry() noexcept { return kRegistry; }

const stage_desc& stage_info(stage_id id) noexcept {
  return kRegistry[static_cast<int>(id)];
}

const char* stage_name(stage_id id) noexcept {
  return id == stage_id::count_ ? "?" : stage_info(id).name;
}

stage_id stage_of(rt::fn f) noexcept {
  for (const stage_desc& stage : kRegistry) {
    for (const rt::fn scope : stage.scopes) {
      if (scope != rt::fn::count_ && scope == f) return stage.id;
    }
  }
  return stage_id::count_;
}

const char* dual_check_name(dual_check check) noexcept {
  switch (check) {
    case dual_check::none:
      return "none";
    case dual_check::recompute:
      return "recompute";
    case dual_check::checksum:
      return "checksum";
  }
  return "?";
}

std::uint32_t replicable_stage_mask() noexcept {
  std::uint32_t mask = 0;
  for (const stage_desc& stage : kRegistry) {
    if (stage.replicable) mask |= stage_bit(stage.id);
  }
  return mask;
}

std::uint32_t geometry_stage_mask() noexcept {
  return stage_bit(stage_id::estimate);
}

std::uint32_t parse_replicate_stages(const std::string& spec) {
  std::string lower;
  lower.reserve(spec.size());
  for (char c : spec) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower.empty() || lower == "off" || lower == "none") return 0;
  if (lower == "geometry") return geometry_stage_mask();
  if (lower == "all") return replicable_stage_mask();

  std::uint32_t mask = 0;
  std::size_t begin = 0;
  while (begin <= lower.size()) {
    const std::size_t comma = lower.find(',', begin);
    const std::string name =
        lower.substr(begin, comma == std::string::npos ? comma : comma - begin);
    begin = comma == std::string::npos ? lower.size() + 1 : comma + 1;
    if (name.empty()) continue;
    bool found = false;
    for (const stage_desc& stage : kRegistry) {
      if (name == stage.name) {
        if (!stage.replicable) {
          throw invalid_argument("stage is not replicable: " + name);
        }
        mask |= stage_bit(stage.id);
        found = true;
        break;
      }
    }
    if (!found) {
      throw invalid_argument(
          "unknown stage in replicate list: " + name +
          " (expected off, geometry, all, or a comma-separated list of "
          "gate, detect, describe, match, estimate, composite)");
    }
  }
  return mask;
}

std::string replicate_stages_name(std::uint32_t mask) {
  if (mask == 0) return "off";
  if (mask == geometry_stage_mask()) return "geometry";
  if (mask == replicable_stage_mask()) return "all";
  std::string name;
  for (const stage_desc& stage : kRegistry) {
    if ((mask & stage_bit(stage.id)) == 0) continue;
    if (!name.empty()) name.push_back(',');
    name += stage.name;
  }
  return name;
}

std::uint64_t budget_value(const resil::stage_budget_config& budgets,
                           budget_key key) noexcept {
  switch (key) {
    case budget_key::acquire:
      return budgets.acquire;
    case budget_key::gate:
      return budgets.gate;
    case budget_key::extract:
      return budgets.extract;
    case budget_key::align:
      return budgets.align;
    case budget_key::composite:
      return budgets.composite;
    case budget_key::count_:
      break;
  }
  return 0;
}

}  // namespace vs::pipeline
