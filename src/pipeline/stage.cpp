#include "pipeline/stage.h"

#include "resil/hardening.h"

namespace vs::pipeline {

namespace {

using resil::cfcss::node;

constexpr stage_desc kRegistry[stage_count] = {
    {stage_id::acquire, "acquire", node::acquire, budget_key::acquire,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::video_decode, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/true, /*clean_lane=*/true},
    {stage_id::detect, "detect", node::detect, budget_key::extract,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::fast_detect, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/true, /*clean_lane=*/true},
    {stage_id::describe, "describe", node::describe, budget_key::extract,
     /*opens_scope=*/false, /*executor_marked=*/true,
     {rt::fn::orb_describe, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/true, /*clean_lane=*/true},
    {stage_id::match, "match", node::match, budget_key::align,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::match, rt::fn::count_, rt::fn::count_},
     /*prefetchable=*/false, /*clean_lane=*/true},
    {stage_id::estimate, "estimate", node::estimate, budget_key::align,
     /*opens_scope=*/false, /*executor_marked=*/false,
     {rt::fn::ransac, rt::fn::homography, rt::fn::count_},
     /*prefetchable=*/false, /*clean_lane=*/false},
    {stage_id::composite, "composite", node::composite, budget_key::composite,
     /*opens_scope=*/true, /*executor_marked=*/true,
     {rt::fn::warp, rt::fn::remap, rt::fn::stitch},
     /*prefetchable=*/false, /*clean_lane=*/true},
};

}  // namespace

const char* budget_key_name(budget_key key) noexcept {
  switch (key) {
    case budget_key::acquire:
      return "acquire";
    case budget_key::extract:
      return "extract";
    case budget_key::align:
      return "align";
    case budget_key::composite:
      return "composite";
    case budget_key::count_:
      break;
  }
  return "?";
}

std::span<const stage_desc> stage_registry() noexcept { return kRegistry; }

const stage_desc& stage_info(stage_id id) noexcept {
  return kRegistry[static_cast<int>(id)];
}

const char* stage_name(stage_id id) noexcept {
  return id == stage_id::count_ ? "?" : stage_info(id).name;
}

stage_id stage_of(rt::fn f) noexcept {
  for (const stage_desc& stage : kRegistry) {
    for (const rt::fn scope : stage.scopes) {
      if (scope != rt::fn::count_ && scope == f) return stage.id;
    }
  }
  return stage_id::count_;
}

std::uint64_t budget_value(const resil::stage_budget_config& budgets,
                           budget_key key) noexcept {
  switch (key) {
    case budget_key::acquire:
      return budgets.acquire;
    case budget_key::extract:
      return budgets.extract;
    case budget_key::align:
      return budgets.align;
    case budget_key::composite:
      return budgets.composite;
    case budget_key::count_:
      break;
  }
  return 0;
}

}  // namespace vs::pipeline
