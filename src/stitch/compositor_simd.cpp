#include "stitch/compositor_simd.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace vs::stitch::simd {

#if defined(__x86_64__)

namespace {

__attribute__((target("avx2"))) void blend_row_avx2(
    const std::uint8_t* patch_px, const std::uint8_t* patch_valid,
    std::uint8_t* dst, std::uint8_t* cov, std::size_t at0, int width,
    std::vector<std::size_t>& seams) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i two = _mm256_set1_epi8(2);
  int x = 0;
  for (; x + 32 <= width; x += 32) {
    const __m256i valid = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(patch_valid + x));
    // active lanes: patch_valid != 0 (compare-to-zero, then invert by
    // using it as the "keep destination" side of the blends).
    const __m256i skip = _mm256_cmpeq_epi8(valid, zero);
    if (_mm256_movemask_epi8(skip) == -1) continue;

    const __m256i old_cov = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cov + at0 + x));
    // Seam candidates: active lanes whose coverage was exactly 1, pushed
    // in ascending column order — the scalar discovery order.
    const __m256i was_one = _mm256_andnot_si256(
        skip, _mm256_cmpeq_epi8(old_cov, one));
    auto seam_bits =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(was_one));
    while (seam_bits != 0) {
      const int lane = __builtin_ctz(seam_bits);
      seams.push_back(at0 + static_cast<std::size_t>(x + lane));
      seam_bits &= seam_bits - 1;
    }

    const __m256i px = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(patch_px + x));
    const __m256i old_dst = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(dst + at0 + x));
    // blendv picks the second operand where the mask byte's high bit is
    // set; `skip` is 0xff on inactive lanes, so those keep their old byte.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + at0 + x),
                        _mm256_blendv_epi8(px, old_dst, skip));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cov + at0 + x),
                        _mm256_blendv_epi8(two, old_cov, skip));
  }
  for (; x < width; ++x) {
    if (patch_valid[x] == 0) continue;
    const std::size_t at = at0 + static_cast<std::size_t>(x);
    if (cov[at] == 1) seams.push_back(at);
    dst[at] = patch_px[x];
    cov[at] = 2;
  }
}

__attribute__((target("avx2"))) void demote_avx2(std::uint8_t* mask,
                                                 std::size_t count) {
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i two = _mm256_set1_epi8(2);
  std::size_t i = 0;
  for (; i + 32 <= count; i += 32) {
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const __m256i is_two = _mm256_cmpeq_epi8(m, two);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mask + i),
                        _mm256_blendv_epi8(m, one, is_two));
  }
  for (; i < count; ++i) {
    if (mask[i] == 2) mask[i] = 1;
  }
}

}  // namespace

#endif  // __x86_64__

blend_row_fn select_blend_row(core::simd::level l) noexcept {
#if defined(__x86_64__)
  if (l >= core::simd::level::avx2) return &blend_row_avx2;
#else
  (void)l;
#endif
  return nullptr;
}

demote_fn select_demote(core::simd::level l) noexcept {
#if defined(__x86_64__)
  if (l >= core::simd::level::avx2) return &demote_avx2;
#else
  (void)l;
#endif
  return nullptr;
}

}  // namespace vs::stitch::simd
