// Panorama canvas: an auto-growing destination surface that warped frames
// are composited onto.
//
// Compositing is overwrite-ordered (later frames paint over earlier ones
// where their valid masks overlap).  This matches the VS algorithm's
// behaviour and is what produces the paper's compositional masking: a
// corrupted region written by one frame can be stitched over — and thereby
// masked — by a later overlapping frame (Section VI-C).
#pragma once

#include "geometry/warp.h"
#include "image/image.h"

namespace vs::stitch {

class compositor {
 public:
  /// Creates an empty canvas.  `max_pixels` caps growth; exceeding it
  /// reports failure so the caller can close the current mini-panorama.
  explicit compositor(std::size_t max_pixels = 4u << 20);

  /// Grows the canvas to cover `world_rect` (world = frame-0 coordinates).
  /// Returns false when that would exceed the pixel cap (canvas unchanged).
  bool ensure(const geo::rect& world_rect);

  /// Composites a warped patch (positioned in world coordinates).  The
  /// canvas must already cover the patch (call ensure first).
  /// With `gain_compensate`, the patch's intensities are scaled so its mean
  /// over the overlap region matches the canvas's (classic exposure
  /// compensation; evens out auto-gain flicker between frames).
  void blend(const geo::warped_patch& patch, bool gain_compensate = false);

  /// Seam feathering: one corrective sweep over the whole canvas that
  /// box-smooths pixels on the boundary between the most recent patch and
  /// older content.  This is the per-frame "corrective action to avoid
  /// blurs and distortions" of Section III-A — and the source of the
  /// polynomial (frames x canvas-area) complexity the paper credits for
  /// VS_RFD's large execution-time gains (Section IV-A).
  void feather_seams();

  /// True if nothing has been composited yet.
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  /// World rectangle currently covered by the canvas.
  [[nodiscard]] geo::rect bounds() const noexcept { return bounds_; }

  /// Tight world rectangle of pixels actually written (what render() crops
  /// to).  Empty rect when nothing has been composited.
  [[nodiscard]] geo::rect content_bounds() const;

  /// Fraction of canvas pixels covered by at least one frame.
  [[nodiscard]] double coverage() const;

  /// The composited image, cropped to the covered bounding box (pixels
  /// never painted are 0).  Returns an empty image when nothing landed.
  [[nodiscard]] img::image_u8 render() const;

 private:
  // Clean-lane (parallel, hook-free) twins of the hot compositing passes,
  // dispatched when instrumentation is off.  Byte-identical output.
  void blend_clean(const geo::warped_patch& patch, bool gain_compensate);
  void blend_instrumented(const geo::warped_patch& patch,
                          bool gain_compensate);
  void feather_seams_clean();
  void feather_seams_instrumented();

  std::size_t max_pixels_;
  geo::rect bounds_;
  img::image_u8 pixels_;
  img::image_u8 mask_;   ///< 0 = never written, 1 = old content, 2 = newest
  std::vector<std::size_t> seam_candidates_;  ///< overwrites in latest blend
};

/// Lays out images left-to-right (top-aligned, `gap` background columns
/// between them) into one montage — the "global panorama" assembled from
/// mini-panoramas that the application emits as its output.
[[nodiscard]] img::image_u8 montage(const std::vector<img::image_u8>& images,
                                    int gap = 4);

}  // namespace vs::stitch
