// Pairwise frame alignment and mini-panorama construction.
//
// align_frames implements the model cascade of Section III-A: try a RANSAC
// homography; when too few matches survive, fall back to a RANSAC affine
// estimate; when even that is unsupported, report failure so the pipeline
// discards the frame.
#pragma once

#include <optional>

#include "features/keypoint.h"
#include "geometry/ransac.h"
#include "match/matcher.h"
#include "stitch/compositor.h"

namespace vs::stitch {

struct alignment_params {
  geo::ransac_params homography;
  geo::ransac_params affine;
  std::size_t min_matches_homography = 7;   ///< matches needed to attempt H
  std::size_t min_matches_affine = 6;        ///< matches needed to attempt A
  double max_scale = 4.0;  ///< plausibility bound on the model's scale

  // Motion prior: the largest credible inter-frame camera displacement, in
  // pixels of frame-center motion.  Video stitchers bound their match
  // search by the expected frame-to-frame motion; a model that implies a
  // jump beyond it is rejected as a mismatch.  This is what turns a
  // dropped frame (doubled displacement) into additional discarded frames
  // on the fast-moving input (the paper's Section IV-A cascade).
  double max_motion = 28.0;

  alignment_params() {
    homography.inlier_threshold = 2.5;
    homography.min_inliers = 6;
    homography.max_iterations = 64;
    affine.inlier_threshold = 2.5;
    affine.min_inliers = 5;
    affine.max_iterations = 48;
  }
};

enum class model_kind { homography, affine };

struct alignment {
  geo::mat3 transform;  ///< maps current-frame coords to previous-frame coords
  model_kind kind = model_kind::homography;
  std::size_t matches = 0;
  std::size_t inliers = 0;
};

/// Aligns `current` to `previous` given their features.  Returns nullopt
/// when no plausible model is supported (the frame-discard path).
[[nodiscard]] std::optional<alignment> align_frames(
    const feat::frame_features& current, const feat::frame_features& previous,
    const match::match_params& match_params, const alignment_params& params,
    std::uint64_t seed);

/// Accumulates aligned frames into one mini-panorama anchored at its first
/// frame's coordinate system.
class mini_panorama_builder {
 public:
  explicit mini_panorama_builder(std::size_t max_pixels = 4u << 20,
                                 bool gain_compensation = false);

  /// Warps `frame` through `frame_to_anchor` and composites it.  Returns
  /// false (frame not added) when the projection is implausible or the
  /// canvas would exceed its cap.
  bool add_frame(const img::image_u8& frame, const geo::mat3& frame_to_anchor);

  [[nodiscard]] int frames_added() const noexcept { return frames_added_; }
  [[nodiscard]] bool empty() const noexcept { return frames_added_ == 0; }

  /// Renders the composited mini-panorama (empty image when no frames).
  [[nodiscard]] img::image_u8 render() const;

  /// World rectangle of the rendered content (anchor coordinates).
  [[nodiscard]] geo::rect content_bounds() const {
    return canvas_.content_bounds();
  }

 private:
  compositor canvas_;
  bool gain_compensation_ = false;
  int frames_added_ = 0;
};

}  // namespace vs::stitch
