#include "stitch/stitcher.h"

#include <functional>

#include "geometry/affine.h"
#include "geometry/homography.h"
#include "resil/runtime.h"
#include "rt/instrument.h"

namespace vs::stitch {

std::optional<alignment> align_frames(const feat::frame_features& current,
                                      const feat::frame_features& previous,
                                      const match::match_params& match_params,
                                      const alignment_params& params,
                                      std::uint64_t seed) {
  // Selective replication (dual_check::recompute): matching is a pure
  // function of the two feature sets, so the replica re-runs it on the
  // clean lane and compares the accepted correspondences element-wise.
  const auto matches = resil::replicated(
      pipeline::stage_id::match,
      [&] { return match::match_descriptors(current, previous, match_params); },
      std::equal_to<std::vector<match::match>>());
  const auto pairs = match::to_point_pairs(matches, current, previous);

  // The match count is the control value the cascade branches on.
  const auto n_matches = static_cast<std::size_t>(
      rt::ctrl(static_cast<std::int64_t>(pairs.size())));

  // Motion-prior gate: the displacement the model implies for the frame
  // center must stay within the expected inter-frame motion.
  const auto within_motion_prior = [&](const geo::mat3& model) {
    const geo::vec2 center{64.0, 48.0};
    const geo::vec2 moved = model.apply(center);
    return geo::distance(center, moved) <= params.max_motion;
  };

  if (n_matches >= params.min_matches_homography) {
    resil::mark(resil::cfcss::node::estimate);
    if (const auto fit = geo::ransac_homography(pairs, params.homography,
                                                seed)) {
      if (geo::plausible_homography(fit->model, params.max_scale) &&
          within_motion_prior(fit->model)) {
        return alignment{fit->model, model_kind::homography, pairs.size(),
                         fit->inlier_count};
      }
    }
  }
  if (n_matches >= params.min_matches_affine) {
    resil::mark(resil::cfcss::node::estimate);
    if (const auto fit = geo::ransac_affine(pairs, params.affine, seed ^ 1)) {
      if (geo::plausible_homography(fit->model, params.max_scale) &&
          within_motion_prior(fit->model)) {
        return alignment{fit->model, model_kind::affine, pairs.size(),
                         fit->inlier_count};
      }
    }
  }
  return std::nullopt;
}

namespace {

std::uint64_t patch_digest(const geo::warped_patch& patch) {
  return img::digest(patch.pixels) ^ (img::digest(patch.valid) * 31u) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(patch.x0))
          << 32) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(patch.y0));
}

}  // namespace

mini_panorama_builder::mini_panorama_builder(std::size_t max_pixels,
                                             bool gain_compensation)
    : canvas_(max_pixels), gain_compensation_(gain_compensation) {}

bool mini_panorama_builder::add_frame(const img::image_u8& frame,
                                      const geo::mat3& frame_to_anchor) {
  if (!geo::plausible_homography(frame_to_anchor, 8.0)) return false;
  const auto bounds =
      geo::projected_bounds(frame_to_anchor, frame.width(), frame.height(),
                            /*coord_limit=*/32768.0);
  if (!bounds || bounds->empty()) return false;
  if (!canvas_.ensure(*bounds)) return false;

  // As in cv::warpPerspective(frame, dst, H, dsize = panorama size): every
  // frame is warped over the full panorama extent (the invoker walks every
  // destination pixel; only those whose preimage lands in the frame are
  // produced).  This is what makes WarpPerspective the dominant cost of the
  // application (Fig 8) and per-frame cost grow with panorama size — the
  // polynomial complexity in frames the paper cites (Section IV-A).
  auto patch = geo::warp_perspective(frame, frame_to_anchor, canvas_.bounds());
  // Selective replication (dual_check::checksum): the checked product is
  // the warped patch the blend consumes, re-warped on the clean lane and
  // compared by digest *before* the canvas mutates — blending and
  // feathering cannot re-run, so the check sits at the last pure point of
  // the stage.
  resil::verify_replica(
      pipeline::stage_id::composite, [&] { return patch_digest(patch); },
      [&] {
        return patch_digest(
            geo::warp_perspective(frame, frame_to_anchor, canvas_.bounds()));
      });
  canvas_.blend(patch, gain_compensation_);
  canvas_.feather_seams();
  ++frames_added_;
  return true;
}

img::image_u8 mini_panorama_builder::render() const { return canvas_.render(); }

}  // namespace vs::stitch
