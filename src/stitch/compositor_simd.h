// Vectorized compositor rows for the clean lane.
//
// The blend paint pass is a masked byte copy: where the warped patch is
// valid, the canvas pixel takes the patch byte and the coverage byte becomes
// 2, and lanes whose coverage was 1 are recorded as seam candidates in
// ascending column order.  All of it is byte-wise integer work, so a SIMD
// row produces exactly the scalar bytes and the identical seam-candidate
// sequence.  The feather demotion (coverage 2 -> 1) is the same shape.
//
// Kernels assume the caller has already proven the whole row in-bounds on
// the canvas; rows that fail that check take the scalar path, which keeps
// the out-of-bounds logic trap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/simd.h"

namespace vs::stitch::simd {

/// One paint row at unit gain: for each x in [0, width) with
/// patch_valid[x] != 0, append at0 + x to seams if cov[at0 + x] == 1
/// (ascending x), then dst[at0 + x] = patch_px[x] and cov[at0 + x] = 2.
using blend_row_fn = void (*)(const std::uint8_t* patch_px,
                              const std::uint8_t* patch_valid,
                              std::uint8_t* dst, std::uint8_t* cov,
                              std::size_t at0, int width,
                              std::vector<std::size_t>& seams);

/// Demote the newest generation: mask[i] == 2 becomes 1 over [0, count).
using demote_fn = void (*)(std::uint8_t* mask, std::size_t count);

/// Kernels for `l`, or nullptr (scalar loops).
[[nodiscard]] blend_row_fn select_blend_row(core::simd::level l) noexcept;
[[nodiscard]] demote_fn select_demote(core::simd::level l) noexcept;

}  // namespace vs::stitch::simd
