#include "stitch/compositor.h"

#include <algorithm>

#include "core/dispatch.h"
#include "core/error.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "image/pixel.h"
#include "rt/instrument.h"
#include "stitch/compositor_simd.h"

namespace vs::stitch {

compositor::compositor(std::size_t max_pixels) : max_pixels_(max_pixels) {}

bool compositor::ensure(const geo::rect& world_rect) {
  if (world_rect.empty()) return true;
  const geo::rect merged =
      pixels_.empty() ? world_rect : geo::rect_union(bounds_, world_rect);
  if (merged == bounds_ && !pixels_.empty()) return true;
  const auto area = merged.area();
  if (area <= 0 || static_cast<std::size_t>(area) > max_pixels_) return false;

  rt::scope attributed(rt::fn::stitch);
  const auto w = rt::alloc_size(merged.w, 1 << 20);
  const auto h = rt::alloc_size(merged.h, 1 << 20);
  img::image_u8 new_pixels(static_cast<int>(w), static_cast<int>(h), 1);
  img::image_u8 new_mask(static_cast<int>(w), static_cast<int>(h), 1);

  if (!pixels_.empty()) {
    // Blit the old canvas into its position inside the grown one.
    const int off_x = bounds_.x0 - merged.x0;
    const int off_y = bounds_.y0 - merged.y0;
    core::dispatch(
        [&] {
          // Clean lane: rows land in disjoint destination rows.
          core::thread_pool::current().parallel_for(
              0, pixels_.height(), 64,
              [&](std::int64_t y0, std::int64_t y1, std::size_t) {
                for (int y = static_cast<int>(y0); y < y1; ++y) {
                  for (int x = 0; x < pixels_.width(); ++x) {
                    new_pixels.at(x + off_x, y + off_y) = pixels_.at(x, y);
                    new_mask.at(x + off_x, y + off_y) = mask_.at(x, y);
                  }
                }
              });
        },
        [&] {
          for (int y = 0; y < pixels_.height(); ++y) {
            for (int x = 0; x < pixels_.width(); ++x) {
              new_pixels.at(x + off_x, y + off_y) = pixels_.at(x, y);
              new_mask.at(x + off_x, y + off_y) = mask_.at(x, y);
            }
            // Row blits are wide vector copies: ~1 dynamic op per 4 pixels.
            rt::account(rt::op::mem,
                        static_cast<std::uint64_t>(pixels_.width()) / 4);
          }
        });
  }
  pixels_ = std::move(new_pixels);
  mask_ = std::move(new_mask);
  bounds_ = merged;
  return true;
}

void compositor::blend(const geo::warped_patch& patch, bool gain_compensate) {
  if (patch.pixels.empty()) return;
  core::dispatch([&] { blend_clean(patch, gain_compensate); },
                 [&] { blend_instrumented(patch, gain_compensate); });
}

void compositor::blend_instrumented(const geo::warped_patch& patch,
                                    bool gain_compensate) {
  rt::scope attributed(rt::fn::stitch);
  if (pixels_.empty()) {
    throw invalid_argument("compositor::blend: ensure() the canvas first");
  }
  const std::size_t n = pixels_.size();
  std::uint8_t* dst = pixels_.data();
  std::uint8_t* cov = mask_.data();

  // Exposure compensation: match the patch's mean to the canvas's over the
  // overlap region, clamped to a modest gain range.
  double gain = 1.0;
  if (gain_compensate) {
    double sum_patch = 0.0;
    double sum_canvas = 0.0;
    std::size_t overlap = 0;
    for (int y = 0; y < patch.pixels.height(); ++y) {
      const std::int64_t row_base =
          (static_cast<std::int64_t>(patch.y0 - bounds_.y0 + y)) *
              pixels_.width() +
          (patch.x0 - bounds_.x0);
      for (int x = 0; x < patch.pixels.width(); ++x) {
        if (patch.valid.at(x, y) == 0) continue;
        const std::size_t at = rt::idx(row_base + x, n);
        if (cov[at] == 0) continue;
        sum_patch += patch.pixels.at(x, y);
        sum_canvas += dst[at];
        ++overlap;
      }
    }
    if (overlap > 64 && sum_patch > 0.0) {
      gain = std::clamp(sum_canvas / sum_patch, 0.7, 1.4);
    }
    rt::account(rt::op::fp_alu, overlap);
  }

  for (int y = 0; y < patch.pixels.height(); ++y) {
    // The destination row base is address arithmetic in flight — a guarded
    // GPR fault site per row.
    const std::int64_t row_base =
        (static_cast<std::int64_t>(patch.y0 - bounds_.y0 + y)) *
            pixels_.width() +
        (patch.x0 - bounds_.x0);
    for (int x = 0; x < patch.pixels.width(); ++x) {
      if (patch.valid.at(x, y) == 0) continue;
      const std::size_t at = rt::idx(row_base + x, n);
      if (cov[at] == 1) seam_candidates_.push_back(at);  // overwrites old
      dst[at] = gain == 1.0
                    ? patch.pixels.at(x, y)
                    : img::saturate_u8(gain * patch.pixels.at(x, y));
      cov[at] = 2;  // newest generation (feather_seams demotes it to 1)
    }
    rt::account(rt::op::mem, static_cast<std::uint64_t>(patch.pixels.width()));
    rt::account(rt::op::branch,
                static_cast<std::uint64_t>(patch.pixels.width()));
  }
}

void compositor::blend_clean(const geo::warped_patch& patch,
                             bool gain_compensate) {
  if (pixels_.empty()) {
    throw invalid_argument("compositor::blend: ensure() the canvas first");
  }
  const std::size_t n = pixels_.size();
  std::uint8_t* dst = pixels_.data();
  std::uint8_t* cov = mask_.data();

  // Gain estimation stays sequential: it is a light pass, and keeping the
  // floating-point accumulation order identical to the instrumented lane is
  // what keeps the blended bytes identical.
  double gain = 1.0;
  if (gain_compensate) {
    double sum_patch = 0.0;
    double sum_canvas = 0.0;
    std::size_t overlap = 0;
    for (int y = 0; y < patch.pixels.height(); ++y) {
      const std::int64_t row_base =
          (static_cast<std::int64_t>(patch.y0 - bounds_.y0 + y)) *
              pixels_.width() +
          (patch.x0 - bounds_.x0);
      for (int x = 0; x < patch.pixels.width(); ++x) {
        if (patch.valid.at(x, y) == 0) continue;
        const auto at = static_cast<std::size_t>(row_base + x);
        if (cov[at] == 0) continue;
        sum_patch += patch.pixels.at(x, y);
        sum_canvas += dst[at];
        ++overlap;
      }
    }
    if (overlap > 64 && sum_patch > 0.0) {
      gain = std::clamp(sum_canvas / sum_patch, 0.7, 1.4);
    }
  }

  // Paint pass: patch rows map to disjoint canvas rows, so row bands fan
  // out; per-band seam-candidate lists concatenated in band order reproduce
  // the sequential discovery order that feather_seams depends on.
  const int patch_h = patch.pixels.height();
  const int patch_w = patch.pixels.width();
  constexpr std::int64_t blend_band = 32;
  const std::size_t bands =
      core::thread_pool::chunk_count(0, patch_h, blend_band);
  std::vector<std::vector<std::size_t>> band_seams(bands);
  // Unit gain (the default) is a masked byte copy, so it has a SIMD row
  // kernel; rows only use it once proven in-bounds, which keeps the scalar
  // path's library-bug trap for the unreachable overflow case.
  const simd::blend_row_fn blend_row =
      gain == 1.0 && patch.pixels.channels() == 1 &&
              patch.valid.channels() == 1
          ? simd::select_blend_row(core::simd::active())
          : nullptr;
  core::thread_pool::current().parallel_for(
      0, patch_h, blend_band,
      [&](std::int64_t y0, std::int64_t y1, std::size_t band) {
        auto& seams = band_seams[band];
        for (int y = static_cast<int>(y0); y < y1; ++y) {
          const std::int64_t row_base =
              (static_cast<std::int64_t>(patch.y0 - bounds_.y0 + y)) *
                  pixels_.width() +
              (patch.x0 - bounds_.x0);
          if (blend_row != nullptr && row_base >= 0 &&
              static_cast<std::size_t>(row_base) + patch_w <= n) {
            const auto row = static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(patch_w);
            blend_row(patch.pixels.data() + row, patch.valid.data() + row,
                      dst, cov, static_cast<std::size_t>(row_base), patch_w,
                      seams);
            continue;
          }
          for (int x = 0; x < patch_w; ++x) {
            if (patch.valid.at(x, y) == 0) continue;
            const auto at = static_cast<std::size_t>(row_base + x);
            // Unreachable after ensure(); same library-bug trap as rt::idx.
            if (at >= n) rt::detail::raise_logic_oob(row_base + x, n);
            if (cov[at] == 1) seams.push_back(at);  // overwrites old
            dst[at] = gain == 1.0
                          ? patch.pixels.at(x, y)
                          : img::saturate_u8(gain * patch.pixels.at(x, y));
            cov[at] = 2;  // newest generation
          }
        }
      });
  for (const auto& seams : band_seams) {
    seam_candidates_.insert(seam_candidates_.end(), seams.begin(),
                            seams.end());
  }
}

void compositor::feather_seams() {
  if (pixels_.empty()) return;
  core::dispatch([&] { feather_seams_clean(); },
                 [&] { feather_seams_instrumented(); });
}

void compositor::feather_seams_instrumented() {
  rt::scope attributed(rt::fn::stitch);
  const int w = pixels_.width();
  const int h = pixels_.height();
  const std::size_t n = pixels_.size();
  const std::uint8_t* cov = mask_.data();
  std::uint8_t* dst = pixels_.data();

  // Smooth every overwrite-boundary pixel (recorded during blend) whose
  // neighbourhood still contains older content, with the mean of its
  // written 3x3 neighbours.
  for (const std::size_t at : seam_candidates_) {
    const int x = static_cast<int>(at % static_cast<std::size_t>(w));
    const int y = static_cast<int>(at / static_cast<std::size_t>(w));
    const bool seam =
        (x > 0 && cov[at - 1] == 1) || (x + 1 < w && cov[at + 1] == 1) ||
        (y > 0 && cov[at - static_cast<std::size_t>(w)] == 1) ||
        (y + 1 < h && cov[at + static_cast<std::size_t>(w)] == 1);
    if (!seam) continue;
    int sum = 0;
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = x + dx;
        const int ny = y + dy;
        if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
        const std::size_t neighbour = rt::idx(
            static_cast<std::int64_t>(ny) * w + nx, n);
        if (cov[neighbour] == 0) continue;
        sum += dst[neighbour];
        ++count;
      }
    }
    if (count > 0) {
      dst[at] = static_cast<std::uint8_t>((sum + count / 2) / count);
    }
  }
  rt::account(rt::op::int_alu, seam_candidates_.size() * 6);
  rt::account(rt::op::branch, seam_candidates_.size() * 2);

  // The newest generation becomes old content.
  for (const std::size_t at : seam_candidates_) mask_[at] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask_[i] == 2) mask_[i] = 1;
  }
  rt::account(rt::op::mem, n / 8);
  seam_candidates_.clear();
}

void compositor::feather_seams_clean() {
  const int w = pixels_.width();
  const int h = pixels_.height();
  const std::size_t n = pixels_.size();
  const std::uint8_t* cov = mask_.data();
  std::uint8_t* dst = pixels_.data();

  // The smoothing sweep stays sequential: a seam pixel's 3x3 mean may read
  // neighbours smoothed earlier in the candidate list, so iteration order
  // is part of the output.  It only visits boundary pixels — the O(canvas)
  // work is the generation demotion below, which does fan out.
  for (const std::size_t at : seam_candidates_) {
    const int x = static_cast<int>(at % static_cast<std::size_t>(w));
    const int y = static_cast<int>(at / static_cast<std::size_t>(w));
    const bool seam =
        (x > 0 && cov[at - 1] == 1) || (x + 1 < w && cov[at + 1] == 1) ||
        (y > 0 && cov[at - static_cast<std::size_t>(w)] == 1) ||
        (y + 1 < h && cov[at + static_cast<std::size_t>(w)] == 1);
    if (!seam) continue;
    int sum = 0;
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = x + dx;
        const int ny = y + dy;
        if (nx < 0 || ny < 0 || nx >= w || ny >= h) continue;
        const auto neighbour =
            static_cast<std::size_t>(ny) * static_cast<std::size_t>(w) +
            static_cast<std::size_t>(nx);
        if (cov[neighbour] == 0) continue;
        sum += dst[neighbour];
        ++count;
      }
    }
    if (count > 0) {
      dst[at] = static_cast<std::uint8_t>((sum + count / 2) / count);
    }
  }

  for (const std::size_t at : seam_candidates_) mask_[at] = 1;
  std::uint8_t* mask_data = mask_.data();
  const simd::demote_fn demote = simd::select_demote(core::simd::active());
  core::thread_pool::current().parallel_for(
      0, static_cast<std::int64_t>(n), 1 << 16,
      [&](std::int64_t i0, std::int64_t i1, std::size_t) {
        if (demote != nullptr) {
          demote(mask_data + i0, static_cast<std::size_t>(i1 - i0));
          return;
        }
        for (std::int64_t i = i0; i < i1; ++i) {
          if (mask_data[i] == 2) mask_data[i] = 1;
        }
      });
  seam_candidates_.clear();
}

double compositor::coverage() const {
  if (mask_.empty()) return 0.0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < mask_.size(); ++i) covered += mask_[i] ? 1u : 0u;
  return static_cast<double>(covered) / static_cast<double>(mask_.size());
}

geo::rect compositor::content_bounds() const {
  if (pixels_.empty()) return {};
  int min_x = pixels_.width();
  int min_y = pixels_.height();
  int max_x = -1;
  int max_y = -1;
  for (int y = 0; y < mask_.height(); ++y) {
    for (int x = 0; x < mask_.width(); ++x) {
      if (mask_.at(x, y)) {
        min_x = std::min(min_x, x);
        min_y = std::min(min_y, y);
        max_x = std::max(max_x, x);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (max_x < min_x) return {};
  return {bounds_.x0 + min_x, bounds_.y0 + min_y, max_x - min_x + 1,
          max_y - min_y + 1};
}

img::image_u8 compositor::render() const {
  const geo::rect content = content_bounds();
  if (content.empty()) return {};
  const int min_x = content.x0 - bounds_.x0;
  const int min_y = content.y0 - bounds_.y0;
  img::image_u8 out(content.w, content.h, 1);
  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      out.at(x, y) = pixels_.at(x + min_x, y + min_y);
    }
  }
  return out;
}

img::image_u8 montage(const std::vector<img::image_u8>& images, int gap) {
  int total_w = 0;
  int max_h = 0;
  int count = 0;
  int channels = 1;
  for (const auto& im : images) {
    if (im.empty()) continue;
    total_w += im.width();
    max_h = std::max(max_h, im.height());
    channels = std::max(channels, im.channels());
    ++count;
  }
  if (count == 0) return {};
  total_w += gap * (count - 1);

  rt::scope attributed(rt::fn::stitch);
  img::image_u8 out(total_w, max_h, channels);
  int cursor = 0;
  for (const auto& im : images) {
    if (im.empty()) continue;
    for (int y = 0; y < im.height(); ++y) {
      for (int x = 0; x < im.width(); ++x) {
        for (int c = 0; c < channels; ++c) {
          // Grayscale panels replicate into RGB montages.
          out.at(cursor + x, y, c) =
              im.at(x, y, std::min(c, im.channels() - 1));
        }
      }
      rt::account(rt::op::mem, static_cast<std::uint64_t>(im.width()));
    }
    cursor += im.width() + gap;
  }
  return out;
}

}  // namespace vs::stitch
