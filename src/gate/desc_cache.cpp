#include "gate/desc_cache.h"

#include <algorithm>
#include <cmath>

namespace vs::gate {

namespace {

// Position cells quantize to whole pixels: two entries whose warped
// positions round to the same pixel describe the same image structure, and
// the fresher measurement supersedes the staler one.
struct cell {
  int x;
  int y;
  bool operator==(const cell&) const = default;
};

cell cell_of(const feat::keypoint& kp) noexcept {
  return {static_cast<int>(std::lround(kp.x)),
          static_cast<int>(std::lround(kp.y))};
}

}  // namespace

void desc_cache::configure(std::size_t capacity, int max_age) {
  capacity_ = capacity;
  max_age_ = max_age;
  reset();
}

void desc_cache::reset() {
  entries_.clear();
  next_stamp_ = 0;
  evictions_ = 0;
}

void desc_cache::rebase(const geo::mat3& prev_to_cur, int width, int height,
                        int border) {
  std::vector<entry> kept;
  kept.reserve(entries_.size());
  for (entry& e : entries_) {
    if (e.age + 1 > max_age_) continue;
    const geo::vec2 p = prev_to_cur.apply({e.kp.x, e.kp.y});
    if (!(p.x >= border && p.x < width - border && p.y >= border &&
          p.y < height - border)) {
      continue;  // left the usable area (or mapped to non-finite)
    }
    e.kp.x = static_cast<float>(p.x);
    e.kp.y = static_cast<float>(p.y);
    ++e.age;
    kept.push_back(e);
  }
  entries_ = std::move(kept);
}

void desc_cache::insert(const feat::frame_features& fresh) {
  const std::size_t n =
      std::min(fresh.keypoints.size(), fresh.descriptors.size());
  for (std::size_t i = 0; i < n; ++i) {
    const cell c = cell_of(fresh.keypoints[i]);
    for (std::size_t j = 0; j < entries_.size(); ++j) {
      if (cell_of(entries_[j].kp) == c) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(j));
        break;
      }
    }
    entries_.push_back(
        {fresh.keypoints[i], fresh.descriptors[i], 0, next_stamp_++});
  }
  while (entries_.size() > capacity_) {
    entries_.erase(entries_.begin());  // oldest stamp first
    ++evictions_;
  }
}

void desc_cache::refill(const feat::frame_features& full) {
  const std::uint64_t evicted = evictions_;
  reset();
  evictions_ = evicted;
  insert(full);
}

feat::frame_features desc_cache::snapshot() const {
  feat::frame_features out;
  out.keypoints.reserve(entries_.size());
  out.descriptors.reserve(entries_.size());
  for (const entry& e : entries_) {
    out.keypoints.push_back(e.kp);
    out.descriptors.push_back(e.desc);
  }
  return out;
}

}  // namespace vs::gate
