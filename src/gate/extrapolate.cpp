#include "gate/extrapolate.h"

#include <cmath>
#include <cstdlib>

#include "rt/instrument.h"

namespace vs::gate {

roi_plan predict_roi(const geo::mat3& cur_to_prev, int width, int height) {
  roi_plan plan;
  const auto inv = cur_to_prev.inverse();
  if (!inv) return plan;
  // The previous frame's footprint in current-frame coordinates is the
  // image of its rect under the prev -> cur mapping.
  const auto footprint = geo::projected_bounds(*inv, width, height);
  if (!footprint) return plan;
  const geo::rect frame{0, 0, width, height};
  plan.overlap = geo::rect_intersect(frame, *footprint);
  if (plan.overlap.empty()) return plan;
  plan.valid = true;

  // Complement strips, disjoint by construction: full-height left/right,
  // then top/bottom limited to the overlap's column span.
  const int ox0 = plan.overlap.x0;
  const int ox1 = plan.overlap.x0 + plan.overlap.w;
  const int oy0 = plan.overlap.y0;
  const int oy1 = plan.overlap.y0 + plan.overlap.h;
  const auto push = [&](int x0, int y0, int w, int h) {
    const geo::rect r{x0, y0, w, h};
    if (!r.empty()) plan.fresh.push_back(r);
  };
  push(0, 0, ox0, height);
  push(ox1, 0, width - ox1, height);
  push(ox0, 0, ox1 - ox0, oy0);
  push(ox0, oy1, ox1 - ox0, height - oy1);
  return plan;
}

feat::frame_features extract_roi(const img::image_u8& frame,
                                 const std::vector<geo::rect>& rois,
                                 const feat::orb_params& params, int margin) {
  feat::frame_features out;
  const geo::rect bounds{0, 0, frame.width(), frame.height()};
  for (const geo::rect& roi : rois) {
    const geo::rect padded = geo::rect_intersect(
        bounds, {roi.x0 - margin, roi.y0 - margin, roi.w + 2 * margin,
                 roi.h + 2 * margin});
    if (padded.empty()) continue;
    img::image_u8 crop(padded.w, padded.h, 1);
    for (int y = 0; y < padded.h; ++y) {
      for (int x = 0; x < padded.w; ++x) {
        crop.at(x, y) = frame.at(padded.x0 + x, padded.y0 + y);
      }
    }
    const feat::frame_features found = feat::orb_extract(crop, params);
    for (std::size_t i = 0; i < found.keypoints.size(); ++i) {
      feat::keypoint kp = found.keypoints[i];
      kp.x += static_cast<float>(padded.x0);
      kp.y += static_cast<float>(padded.y0);
      if (kp.x < static_cast<float>(roi.x0) ||
          kp.x >= static_cast<float>(roi.x0 + roi.w) ||
          kp.y < static_cast<float>(roi.y0) ||
          kp.y >= static_cast<float>(roi.y0 + roi.h)) {
        continue;  // belongs to a neighbouring rect (or the pad ring)
      }
      out.keypoints.push_back(kp);
      out.descriptors.push_back(found.descriptors[i]);
    }
  }
  return out;
}

extrapolation extrapolate_alignment(const img::image_u8& cur,
                                    const img::image_u8& prev,
                                    const geo::mat3& last_delta,
                                    const gate_config& cfg) {
  rt::scope attributed(rt::fn::gate);
  extrapolation ex;
  if (cur.empty() || prev.empty()) return ex;
  const int w = cur.width();
  const int h = cur.height();
  const int step = std::max(1, cfg.sample_step);

  // Precompute the sparse grid: the current pixel and its constant-velocity
  // mapped position in the previous frame (rounded once — the search then
  // only shifts integers).
  struct sample {
    int value;
    int mx;
    int my;
  };
  std::vector<sample> grid;
  grid.reserve(static_cast<std::size_t>((w / step + 1) * (h / step + 1)));
  for (int y = step / 2; y < h; y += step) {
    for (int x = step / 2; x < w; x += step) {
      const geo::vec2 m =
          last_delta.apply({static_cast<double>(x), static_cast<double>(y)});
      if (!std::isfinite(m.x) || !std::isfinite(m.y)) continue;
      grid.push_back({int(cur.at(x, y)), static_cast<int>(std::lround(m.x)),
                      static_cast<int>(std::lround(m.y))});
    }
  }

  const int r = std::max(0, cfg.search_radius);
  long long best_sum = 0;
  int best_count = 0;
  int best_ox = 0;
  int best_oy = 0;
  bool have_best = false;
  for (int oy = -r; oy <= r; ++oy) {
    for (int ox = -r; ox <= r; ++ox) {
      long long sum = 0;
      int count = 0;
      for (const sample& s : grid) {
        const int px = s.mx + ox;
        const int py = s.my + oy;
        if (!prev.in_bounds(px, py)) continue;
        sum += std::abs(s.value - int(prev.at(px, py)));
        ++count;
      }
      if (count < cfg.min_samples) continue;
      // Compare mean residuals without division: sum/count < best/bestc.
      if (!have_best ||
          sum * static_cast<long long>(best_count) <
              best_sum * static_cast<long long>(count)) {
        have_best = true;
        best_sum = sum;
        best_count = count;
        best_ox = ox;
        best_oy = oy;
      }
    }
  }
  rt::account(rt::op::int_alu,
              grid.size() * static_cast<std::uint64_t>((2 * r + 1)) *
                  static_cast<std::uint64_t>((2 * r + 1)) * 4);
  rt::account(rt::op::mem, grid.size() *
                               static_cast<std::uint64_t>((2 * r + 1)) *
                               static_cast<std::uint64_t>((2 * r + 1)));
  if (!have_best) return ex;

  // The chosen correction and its residual are live decision values.
  best_ox = rt::g32(best_ox);
  best_oy = rt::g32(best_oy);
  ex.residual = rt::f64(static_cast<double>(best_sum) /
                        static_cast<double>(best_count));
  if (!(ex.residual <= cfg.max_residual)) return ex;
  ex.delta = geo::mat3::translation(best_ox, best_oy) * last_delta;
  ex.valid = true;
  return ex;
}

feat::frame_features rebase_features(const feat::frame_features& prev,
                                     const geo::mat3& prev_to_cur, int width,
                                     int height, int border) {
  feat::frame_features out;
  const std::size_t n =
      std::min(prev.keypoints.size(), prev.descriptors.size());
  for (std::size_t i = 0; i < n; ++i) {
    const geo::vec2 p =
        prev_to_cur.apply({prev.keypoints[i].x, prev.keypoints[i].y});
    if (!(p.x >= border && p.x < width - border && p.y >= border &&
          p.y < height - border)) {
      continue;
    }
    feat::keypoint kp = prev.keypoints[i];
    kp.x = static_cast<float>(p.x);
    kp.y = static_cast<float>(p.y);
    out.keypoints.push_back(kp);
    out.descriptors.push_back(prev.descriptors[i]);
  }
  return out;
}

}  // namespace vs::gate
