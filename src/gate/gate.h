// Real-time frame gating: the adaptive-approximation axis.
//
// The gate subsystem opens a throughput-first operating point built from
// three temporal approximations (arXiv 1901.09287, arXiv 1605.08470):
//
//   * a frame gate (gate/change.h) scoring cheap downsampled inter-frame
//     difference and classifying frames as skip / delta / full,
//   * a motion extrapolator (gate/extrapolate.h) predicting the overlap of
//     the next frame from the last inter-frame model, refining it with a
//     small translation search, and restricting FAST/ORB to newly-revealed
//     image area,
//   * a descriptor cache (gate/desc_cache.h) carrying keypoints and
//     descriptors across overlapping frames.
//
// Gating is an approximation in the paper's own sense, so it is a
// first-class variant axis exactly like --simd and --batch: a process-wide
// requested level (--gate flag beats the VS_GATE environment variable;
// unknown environment values fail closed to off), a per-run override in
// app::pipeline_config, and default **off** so every golden — campaign
// distributions, serve outputs, batch/SIMD equivalence matrices — is
// byte-identical to an ungated build.
//
// The gated state (reference thumb, last change score, skip/delta streaks,
// cache entries) is part of the fault surface: it lives inside the
// recovery boundary's per-frame snapshot, and a retry or dead-reckoned
// frame invalidates it (see runtime_state::invalidate) so a corrupted
// classification cannot outlive the frame that produced it.
#pragma once

#include <cstdint>
#include <string>

#include "gate/desc_cache.h"
#include "image/image.h"

namespace vs::gate {

/// Gate levels: which temporal approximations are armed.  skip / roi /
/// cache arm one mechanism each (the campaign's ablation axis); all arms
/// every mechanism (the real-time operating point).  The cache level
/// implies the ROI machinery — cached descriptors are refreshed from
/// newly-revealed area, so reuse without restriction has nothing to reuse.
enum class level : std::uint8_t {
  off = 0,  ///< gating disabled: bit-identical to an ungated build
  skip,     ///< frame gate only: near-duplicates reuse the last placement
  roi,      ///< motion extrapolation + ROI-restricted extraction only
  cache,    ///< descriptor reuse (includes the ROI machinery)
  all,      ///< every mechanism armed
  count_,
};
inline constexpr int level_count = static_cast<int>(level::count_);

/// pipeline_config sentinel: defer to the process-wide requested level.
inline constexpr int kLevelInherit = -1;

[[nodiscard]] const char* level_name(level l) noexcept;

/// Parses "off" / "skip" / "roi" / "cache" / "all" (case-insensitive).
/// Throws invalid_argument otherwise.
[[nodiscard]] level parse_level(const std::string& spec);

/// Process-wide requested level (the --gate flag).  Like set_simd_level /
/// set_batch: call once at startup before pipelines are constructed.
void set_level(level l) noexcept;

/// The process-wide request: the --gate flag if set, else VS_GATE (read
/// once; unknown values fail closed to off), else off.
[[nodiscard]] level requested_level() noexcept;

/// Resolves a pipeline_config request (kLevelInherit or a level ordinal)
/// against the process-wide request.
[[nodiscard]] level resolve(int request) noexcept;

/// Which mechanisms a level arms.
[[nodiscard]] constexpr bool skip_enabled(level l) noexcept {
  return l == level::skip || l == level::all;
}
[[nodiscard]] constexpr bool roi_enabled(level l) noexcept {
  return l == level::roi || l == level::cache || l == level::all;
}
[[nodiscard]] constexpr bool cache_enabled(level l) noexcept {
  return l == level::cache || l == level::all;
}

/// Tunables of the gating subsystem, carried by app::pipeline_config.
struct gate_config {
  int request = kLevelInherit;  ///< level ordinal, or kLevelInherit

  // --- frame gate (gate/change.h) ---
  int thumb_factor = 4;   ///< downsample factor of the change thumbs
  int thumb_search = 6;   ///< translation search radius (thumb pixels)
  /// Motion-compensated thumb MAD at or below this reads as "same content,
  /// merely shifted" — required for skip, together with the motion bound.
  double skip_residual = 18.0;
  /// Measured shift magnitude (full-res pixels) at or below this means the
  /// canvas gains almost nothing from processing the frame.
  double skip_motion_px = 16.0;
  /// Compensated MAD at or below this admits restricted processing; the
  /// full-resolution extrapolation check (max_residual) is authoritative.
  double delta_residual = 20.0;
  int max_consecutive_skips = 2;   ///< bound accumulated placement reuse
  int max_consecutive_deltas = 3;  ///< force a full refresh of the model

  // --- motion extrapolator (gate/extrapolate.h) ---
  int search_radius = 6;      ///< translation-correction search (pixels)
  int sample_step = 6;        ///< residual sample grid stride
  double max_residual = 24.0; ///< mean |diff| above this rejects the model
  int min_samples = 32;       ///< fewer valid residual samples rejects too
  int roi_margin = 20;        ///< ROI crop padding (>= FAST border)

  // --- descriptor cache (gate/desc_cache.h) ---
  std::size_t cache_capacity = 400;
  int cache_max_age = 4;
};

/// The gated per-run state.  Owned by the app pipeline's sequential state
/// (inside the recovery boundary's snapshot/restore), never shared across
/// threads.
struct runtime_state {
  img::image_u8 ref_thumb;     ///< thumb of the last *processed* frame
  img::image_u8 ref_frame;     ///< pixels of the last *aligned* frame (the
                               ///< extrapolator refines against them)
  bool have_ref = false;
  double last_score = 0.0;     ///< most recent change score
  int consecutive_skips = 0;
  int consecutive_deltas = 0;
  desc_cache cache;

  /// Forgets everything the gate learned (recovery retries, dead-reckoned
  /// frames and re-anchors must not trust gated state computed before the
  /// failure).  The cache keeps its capacity configuration.
  void invalidate() {
    ref_thumb = img::image_u8{};
    ref_frame = img::image_u8{};
    have_ref = false;
    last_score = 0.0;
    consecutive_skips = 0;
    consecutive_deltas = 0;
    cache.reset();
  }
};

}  // namespace vs::gate
