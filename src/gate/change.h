// The frame gate: cheap downsampled inter-frame change detection
// (arXiv 1901.09287 §summarization-on-commodity-hardware).  A block-mean
// thumbnail of every acquired frame is compared against the thumbnail of
// the last *processed* frame with a small translation search (the clips
// are aerial pans — raw differencing would read steady camera motion as
// total change).  The search yields two decision values:
//
//   * the motion-compensated mean absolute difference (scene consistency:
//     low means the view is the same content, merely shifted),
//   * the best-matching shift (motion magnitude since the last processed
//     frame, in full-resolution pixels — and the translation prior the
//     extrapolator refines, which is how delta frames bridge the gap
//     across any number of skipped frames).
//
// Classification: small shift + low residual => skip (the canvas already
// shows this content), low residual alone => delta (restricted
// processing), anything else => full.
//
// The score runs in the instrumented lane under rt::fn::gate — the
// accumulated difference, the chosen shift and the classification branch
// are fault sites like any stage kernel, which is the whole point: the
// campaign measures what a strike on the gating decision does to the
// summary.
#pragma once

#include "gate/gate.h"
#include "image/image.h"

namespace vs::gate {

/// Frame classes in increasing processing cost.
enum class frame_class : std::uint8_t {
  skip = 0,  ///< near-duplicate: reuse the previous stitch placement
  delta,     ///< restricted processing (extrapolated alignment, ROI extract)
  full,      ///< the exact pipeline
};

[[nodiscard]] const char* frame_class_name(frame_class c) noexcept;

/// Block-mean downsampled thumbnail (`factor` x `factor` blocks, integer
/// arithmetic).  Deterministic and hook-free: the thumb is data movement;
/// the score below is the gated decision value.
[[nodiscard]] img::image_u8 make_thumb(const img::image_u8& frame,
                                       int factor);

/// The frame gate's decision values.  `score` is the motion-compensated
/// thumb MAD; `raw` the uncompensated (zero-shift) MAD; `shift_x/y` the
/// best-matching displacement of the reference content in the current
/// frame, already scaled to full-resolution pixels (reference -> current
/// motion; the extrapolation prior is its inverse).
struct change_stats {
  double score = 255.0;
  double raw = 255.0;
  int shift_x = 0;
  int shift_y = 0;
  friend bool operator==(const change_stats&, const change_stats&) = default;
};

/// Translation-searched thumb difference, computed in the instrumented
/// lane (rt::fn::gate scope; per-row g32 hooks on the zero-shift pass,
/// g32 on the chosen shift, final f64 on the compensated score).  The
/// search covers shifts in [-radius, radius]^2 thumb pixels, row-major
/// first-minimum tie-break (exact integer cross-multiplied mean compare),
/// and `factor` converts the winning shift to full-resolution pixels.
/// Mismatched geometry scores maximally different.
[[nodiscard]] change_stats change_score(const img::image_u8& cur,
                                        const img::image_u8& ref, int radius,
                                        int factor);

/// Hook-free recomputation of change_score (the gate stage's
/// dual-execution recompute contract): bitwise-identical integer
/// accumulation and the same final divisions.
[[nodiscard]] change_stats change_score_clean(const img::image_u8& cur,
                                              const img::image_u8& ref,
                                              int radius, int factor);

/// Classifies the decision values against the configured thresholds.
/// `can_skip` and `can_delta` gate the cheap classes on mechanism
/// availability (level, reference/motion state, streak bounds); the
/// classification branch flows through an rt::ctrl hook.
[[nodiscard]] frame_class classify(const change_stats& stats,
                                   const gate_config& cfg, bool can_skip,
                                   bool can_delta);

}  // namespace vs::gate
