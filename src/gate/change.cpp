#include "gate/change.h"

#include <cmath>
#include <cstdlib>

#include "rt/instrument.h"

namespace vs::gate {
namespace {

/// One shifted-window absolute-difference pass: sums |cur[p + o] - ref[p]|
/// over the overlap of the two thumbs.  Pure integer arithmetic, shared by
/// the hooked and the clean lane so their accumulations are bitwise
/// identical.
struct diff_sum {
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
};

diff_sum shifted_diff(const img::image_u8& cur, const img::image_u8& ref,
                      int ox, int oy) {
  diff_sum d;
  const int w = ref.width();
  const int h = ref.height();
  const int y0 = std::max(0, -oy);
  const int y1 = std::min(h, h - oy);
  const int x0 = std::max(0, -ox);
  const int x1 = std::min(w, w - ox);
  for (int y = y0; y < y1; ++y) {
    const std::size_t ref_base = ref.offset(0, y);
    const std::size_t cur_base = cur.offset(0, y + oy);
    for (int x = x0; x < x1; ++x) {
      d.sum += std::uint64_t(std::abs(int(cur[cur_base + std::size_t(x + ox)]) -
                                      int(ref[ref_base + std::size_t(x)])));
    }
  }
  d.count = std::uint64_t(std::max(0, y1 - y0)) *
            std::uint64_t(std::max(0, x1 - x0));
  return d;
}

/// True when mean(a) < mean(b), compared exactly (cross-multiplied — the
/// overlap windows differ in size across shifts, so the raw sums are not
/// comparable directly).
bool mean_less(const diff_sum& a, const diff_sum& b) {
  if (a.count == 0) return false;
  if (b.count == 0) return true;
  // Sums fit 8 bits x thumb area (< 2^20), counts < 2^20: no overflow.
  return a.sum * b.count < b.sum * a.count;
}

template <bool Hooked>
change_stats score_impl(const img::image_u8& cur, const img::image_u8& ref,
                        int radius, int factor) {
  change_stats stats;
  if (cur.width() != ref.width() || cur.height() != ref.height() ||
      cur.empty()) {
    return stats;
  }
  radius = std::max(0, radius);
  const int w = ref.width();
  const int h = ref.height();

  // Zero-shift pass first: it is the legacy change score, and in the
  // instrumented lane its per-row partials are live register values — the
  // gate's densest fault sites.
  diff_sum raw;
  if constexpr (Hooked) {
    std::int64_t sum = 0;
    for (int y = 0; y < h; ++y) {
      int row = 0;
      const std::size_t base = ref.offset(0, y);
      for (int x = 0; x < w; ++x) {
        row += std::abs(int(cur[base + std::size_t(x)]) -
                        int(ref[base + std::size_t(x)]));
      }
      sum += rt::g32(row);
      rt::account(rt::op::int_alu, static_cast<std::uint64_t>(w) * 3);
      rt::account(rt::op::mem, static_cast<std::uint64_t>(w) * 2);
    }
    raw.sum = std::uint64_t(rt::g64(sum));
    raw.count = std::uint64_t(w) * std::uint64_t(h);
  } else {
    raw = shifted_diff(cur, ref, 0, 0);
  }
  stats.raw = static_cast<double>(raw.sum) / static_cast<double>(raw.count);

  // Translation search, row-major order, strict-less so the first minimum
  // wins deterministically.  The zero shift participates via the pass
  // above (same integers either lane).
  diff_sum best = raw;
  int best_ox = 0;
  int best_oy = 0;
  for (int oy = -radius; oy <= radius; ++oy) {
    for (int ox = -radius; ox <= radius; ++ox) {
      if (ox == 0 && oy == 0) continue;
      const diff_sum d = shifted_diff(cur, ref, ox, oy);
      if constexpr (Hooked) {
        rt::account(rt::op::int_alu,
                    static_cast<std::uint64_t>(d.count) * 3);
        rt::account(rt::op::mem, static_cast<std::uint64_t>(d.count) * 2);
      }
      if (mean_less(d, best)) {
        best = d;
        best_ox = ox;
        best_oy = oy;
      }
    }
  }
  if constexpr (Hooked) {
    // The chosen shift and the compensated score are the gated decision
    // values: single-strike targets that steer skip/delta/full.
    best_ox = int(rt::g32(best_ox));
    best_oy = int(rt::g32(best_oy));
  }
  stats.shift_x = best_ox * factor;
  stats.shift_y = best_oy * factor;
  stats.score = best.count == 0 ? 255.0
                                : static_cast<double>(best.sum) /
                                      static_cast<double>(best.count);
  if constexpr (Hooked) stats.score = rt::f64(stats.score);
  return stats;
}

}  // namespace

const char* frame_class_name(frame_class c) noexcept {
  switch (c) {
    case frame_class::skip:
      return "skip";
    case frame_class::delta:
      return "delta";
    case frame_class::full:
      return "full";
  }
  return "?";
}

img::image_u8 make_thumb(const img::image_u8& frame, int factor) {
  if (factor < 1) factor = 1;
  const int tw = std::max(1, frame.width() / factor);
  const int th = std::max(1, frame.height() / factor);
  img::image_u8 thumb(tw, th, 1);
  for (int ty = 0; ty < th; ++ty) {
    for (int tx = 0; tx < tw; ++tx) {
      unsigned sum = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          sum += frame.sample_clamped(tx * factor + dx, ty * factor + dy);
        }
      }
      thumb.at(tx, ty) = static_cast<std::uint8_t>(
          sum / static_cast<unsigned>(factor * factor));
    }
  }
  rt::account(rt::op::mem, frame.size());
  rt::account(rt::op::int_alu, frame.size());
  return thumb;
}

change_stats change_score(const img::image_u8& cur, const img::image_u8& ref,
                          int radius, int factor) {
  rt::scope attributed(rt::fn::gate);
  return score_impl<true>(cur, ref, radius, factor);
}

change_stats change_score_clean(const img::image_u8& cur,
                                const img::image_u8& ref, int radius,
                                int factor) {
  return score_impl<false>(cur, ref, radius, factor);
}

frame_class classify(const change_stats& stats, const gate_config& cfg,
                     bool can_skip, bool can_delta) {
  // The thresholds are compared on the instrumented lane: the chosen class
  // ordinal rides an rt::ctrl hook, so an injection can flip the decision
  // itself — the gate's control-flow contribution to the fault surface.
  frame_class cls = frame_class::full;
  const double motion2 = double(stats.shift_x) * double(stats.shift_x) +
                         double(stats.shift_y) * double(stats.shift_y);
  const double skip_motion2 = cfg.skip_motion_px * cfg.skip_motion_px;
  if (can_skip && stats.score <= cfg.skip_residual &&
      motion2 <= skip_motion2) {
    cls = frame_class::skip;
  } else if (can_delta && stats.score <= cfg.delta_residual) {
    cls = frame_class::delta;
  }
  const auto flipped =
      static_cast<frame_class>(rt::ctrl(static_cast<std::int64_t>(cls)));
  return flipped <= frame_class::full ? flipped : frame_class::full;
}

}  // namespace vs::gate
