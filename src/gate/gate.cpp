#include "gate/gate.h"

#include <atomic>
#include <cctype>
#include <cstdlib>

#include "core/error.h"

namespace vs::gate {

const char* level_name(level l) noexcept {
  switch (l) {
    case level::off:
      return "off";
    case level::skip:
      return "skip";
    case level::roi:
      return "roi";
    case level::cache:
      return "cache";
    case level::all:
      return "all";
    case level::count_:
      break;
  }
  return "?";
}

level parse_level(const std::string& spec) {
  std::string lower;
  lower.reserve(spec.size());
  for (char c : spec) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower.empty() || lower == "off" || lower == "none") return level::off;
  if (lower == "skip") return level::skip;
  if (lower == "roi") return level::roi;
  if (lower == "cache") return level::cache;
  if (lower == "all") return level::all;
  throw invalid_argument("unknown gate level: " + spec +
                         " (expected off, skip, roi, cache, all)");
}

namespace {
std::atomic<int> g_level_flag{kLevelInherit};
}  // namespace

void set_level(level l) noexcept {
  g_level_flag.store(static_cast<int>(l), std::memory_order_relaxed);
}

level requested_level() noexcept {
  // The environment is read once: VS_GATE is a process-launch axis (CI
  // forcing jobs), not something to toggle mid-run.
  static const level env_value = [] {
    if (const char* env = std::getenv("VS_GATE")) {
      try {
        return parse_level(env);
      } catch (...) {
        // An unrecognized VS_GATE is a configuration error; fail closed to
        // the exact (ungated) pipeline rather than silently approximating.
        return level::off;
      }
    }
    return level::off;
  }();
  const int flag = g_level_flag.load(std::memory_order_relaxed);
  return flag == kLevelInherit ? env_value : static_cast<level>(flag);
}

level resolve(int request) noexcept {
  if (request == kLevelInherit) return requested_level();
  if (request < 0 || request >= level_count) return level::off;
  return static_cast<level>(request);
}

}  // namespace vs::gate
