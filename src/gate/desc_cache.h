// Cross-frame descriptor cache (feature-based video compression idea,
// arXiv 1605.08470): keypoints and descriptors extracted on one frame are
// carried into the next overlapping frame by warping their positions
// through the estimated inter-frame motion, so restricted (delta) frames
// only extract features in newly-revealed image area and reuse the cached
// ones for the shared region.
//
// Determinism contract: the cache is mutated only at the stitch point of
// the sequential frame loop, entries are kept in insertion-stamp order,
// dedup is by quantized warped position (newest wins), and eviction drops
// the oldest stamp first — so cache contents, and therefore everything
// matched against them, are byte-identical across pool widths, batch modes
// and SIMD levels.  The cache is plain copyable state: the recovery
// boundary snapshots and restores it with the rest of the per-frame state,
// and invalidation on retry/dead-reckon is a reset().
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.h"
#include "geometry/mat3.h"

namespace vs::gate {

class desc_cache {
 public:
  desc_cache() = default;
  desc_cache(std::size_t capacity, int max_age)
      : capacity_(capacity), max_age_(max_age) {}

  /// Re-arms the bounds and drops every entry.
  void configure(std::size_t capacity, int max_age);

  /// Drops every entry (bounds keep their configuration).
  void reset();

  /// Carries the cache across one frame step: every entry's position is
  /// mapped through `prev_to_cur`; entries leaving the usable area
  /// ([border, dim - border) on both axes), exceeding max_age, or whose
  /// position cannot be mapped are dropped.  Ages every survivor by one.
  void rebase(const geo::mat3& prev_to_cur, int width, int height,
              int border);

  /// Inserts freshly extracted features at age 0.  An existing entry in
  /// the same quantized position cell is replaced (the fresh measurement
  /// wins); when the capacity bound is exceeded the oldest stamps are
  /// evicted first.
  void insert(const feat::frame_features& fresh);

  /// reset() + insert(): a fully processed frame re-seeds the cache.
  void refill(const feat::frame_features& full);

  /// All live entries as a feature set, in insertion-stamp order.
  [[nodiscard]] feat::frame_features snapshot() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] int max_age() const noexcept { return max_age_; }
  /// Entries dropped by capacity eviction since configure()/reset().
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct entry {
    feat::keypoint kp;       // position in the *current* frame's coordinates
    feat::descriptor desc;
    int age = 0;             // frames since extraction
    std::uint64_t stamp = 0; // insertion order (eviction key)
  };

  std::vector<entry> entries_;  // ascending stamp order
  std::size_t capacity_ = 400;
  int max_age_ = 4;
  std::uint64_t next_stamp_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vs::gate
