// The motion extrapolator: predicts where the previous frame's content
// lands in the next frame from the last estimated inter-frame model,
// refines the prediction with a small translation-correction search against
// the actual pixels, and derives the ROI decomposition that restricts
// FAST/ORB to newly-revealed image area (arXiv 1605.08470's feature-reuse
// idea applied to the stitching front-end).
//
// Conventions: an inter-frame model ("delta") maps current-frame
// coordinates to previous-frame coordinates, exactly like
// stitch::alignment::transform.  Constant-velocity extrapolation assumes
// the next frame's delta approximately equals the last one; the refinement
// search corrects the residual acceleration with a translation.
#pragma once

#include <vector>

#include "features/orb.h"
#include "gate/gate.h"
#include "geometry/warp.h"
#include "image/image.h"

namespace vs::gate {

/// The ROI decomposition of a frame under a predicted inter-frame model.
struct roi_plan {
  bool valid = false;           ///< model invertible and overlap plausible
  geo::rect overlap;            ///< area predicted covered by the previous frame
  std::vector<geo::rect> fresh; ///< <= 4 disjoint newly-revealed rects
};

/// Splits the `width` x `height` frame into the region the previous frame
/// is predicted to cover under `cur_to_prev` and the complement strips
/// (left / right / top / bottom, disjoint, in that deterministic order).
/// Invalid when the model cannot be inverted, projects absurdly, or leaves
/// no overlap (a full re-extraction is the only correct answer then).
[[nodiscard]] roi_plan predict_roi(const geo::mat3& cur_to_prev, int width,
                                   int height);

/// ROI-restricted extraction: each rect is padded by `margin` (clamped to
/// the frame), cropped, extracted with the ordinary full-precision
/// extractor, offset back into frame coordinates, and filtered to the
/// unpadded rect.  With margin >= the FAST border every kept keypoint's
/// descriptor support lies strictly inside the crop, so descriptors are
/// byte-identical to full-frame extraction at the same coordinates.
[[nodiscard]] feat::frame_features extract_roi(
    const img::image_u8& frame, const std::vector<geo::rect>& rois,
    const feat::orb_params& params, int margin);

/// A refined inter-frame model from extrapolation.
struct extrapolation {
  bool valid = false;
  geo::mat3 delta;       ///< refined current -> previous model
  double residual = 0.0; ///< mean |pixel diff| at the accepted correction
};

/// Refines `last_delta` against the actual frames: searches translation
/// corrections in [-search_radius, search_radius]^2 minimizing the mean
/// absolute difference between `cur` sampled on a sparse grid and `prev`
/// at the corrected mapped positions.  Deterministic tie-break (first
/// minimum in row-major offset order).  Invalid when too few grid points
/// land inside `prev` or the best residual exceeds max_residual — callers
/// must fall back to full processing.  Instrumented under rt::fn::gate.
[[nodiscard]] extrapolation extrapolate_alignment(const img::image_u8& cur,
                                                  const img::image_u8& prev,
                                                  const geo::mat3& last_delta,
                                                  const gate_config& cfg);

/// Carries a feature set across one frame step: positions are mapped
/// through `prev_to_cur`; keypoints leaving [border, dim - border) are
/// dropped, descriptors ride along unchanged.  The roi-level (cacheless)
/// reuse path.
[[nodiscard]] feat::frame_features rebase_features(
    const feat::frame_features& prev, const geo::mat3& prev_to_cur,
    int width, int height, int border);

}  // namespace vs::gate
