// Vectorized grayscale perspective-remap rows for the clean lane.
//
// The clean warp keeps the instrumented lane's incremental row evaluation
// (numerators and denominator advance by repeated addition — a serial
// floating-point chain that is part of the byte-identical contract).  To
// vectorize without changing a single rounding, the row is split in two:
// the caller materializes the incremental chains into per-row buffers with
// the same scalar additions, and this kernel then evaluates the per-pixel
// expression tree — 1/den, num*inv, the preimage guard, the fixed-point
// bilinear taps — four pixels at a time.  Every vector op is the IEEE
// operation the scalar twin performs lane by lane (div, mul, compare,
// truncating convert), so scalar and SIMD rows produce identical bytes.
#pragma once

#include <cstdint>

#include "core/simd.h"

namespace vs::geo::simd {

/// One destination row.  num_x/num_y hold `out_w` incremental numerator
/// values; den holds `out_w + 1` (den[x] is the value 1/den is taken at,
/// den[x + 1] the already-incremented value the preimage guard tests —
/// preserving the scalar lane's quirk).  src is a single-channel image of
/// src_w x src_h; dst_row/valid_row are the out_w-wide destination rows.
using warp_row_fn = void (*)(const double* num_x, const double* num_y,
                             const double* den, int out_w, double max_sx,
                             double max_sy, const std::uint8_t* src, int src_w,
                             std::uint8_t* dst_row, std::uint8_t* valid_row);

/// Kernel for `l` on `channels`-channel sources, or nullptr (scalar row).
[[nodiscard]] warp_row_fn select_warp_row(core::simd::level l,
                                          int channels) noexcept;

}  // namespace vs::geo::simd
