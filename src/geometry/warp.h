// warpPerspective / remapBilinear — the hot functions of the VS application.
//
// The paper's profile (Fig 8) attributes 54.4% of execution time to
// WarpPerspectiveInvoker; its hot-function case study (Figs 11b) injects
// faults exclusively inside warpPerspectiveInvoker and remapBilinear.  This
// module reproduces the OpenCV structure: an invoker that computes source
// coordinates per destination pixel in double precision (rt::fn::warp), and
// a fixed-point bilinear remap (rt::fn::remap) that interpolates 8-bit
// pixels with 5-bit fractional weights and saturates the result.
#pragma once

#include <optional>

#include "geometry/mat3.h"
#include "image/image.h"

namespace vs::geo {

/// Integer pixel rectangle (half-open: [x0, x0+w) x [y0, y0+h)).
struct rect {
  int x0 = 0;
  int y0 = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] bool empty() const noexcept { return w <= 0 || h <= 0; }
  [[nodiscard]] long long area() const noexcept {
    return empty() ? 0 : static_cast<long long>(w) * h;
  }
  bool operator==(const rect&) const = default;
};

/// Union of two rects (empty rects are identity).
[[nodiscard]] rect rect_union(const rect& a, const rect& b) noexcept;

/// Intersection (may be empty).
[[nodiscard]] rect rect_intersect(const rect& a, const rect& b) noexcept;

/// Axis-aligned integer bounds of the four src-image corners mapped through
/// `h`.  nullopt when any corner maps to a non-finite / absurd coordinate
/// (|coord| > coord_limit) — the stitcher discards such frames.
[[nodiscard]] std::optional<rect> projected_bounds(
    const mat3& h, int width, int height, double coord_limit = 1e7);

/// A warped image fragment positioned at (x0, y0) in destination space.
/// `valid` is a per-pixel coverage mask (255 = pixel was produced).
struct warped_patch {
  img::image_u8 pixels;
  img::image_u8 valid;
  int x0 = 0;
  int y0 = 0;
};

/// Warps `src` through homography `h` into the destination rectangle
/// `out_rect` using inverse mapping + fixed-point bilinear interpolation.
/// Pixels whose preimage falls outside `src` are left zero with valid == 0.
/// Works for 1- and 3-channel images.
[[nodiscard]] warped_patch warp_perspective(const img::image_u8& src,
                                            const mat3& h,
                                            const rect& out_rect);

/// Bilinear sample of `src` at floating-point coordinates using the same
/// fixed-point arithmetic as warp_perspective.  Returns nullopt outside the
/// interpolation domain.  Exposed for tests and the quality module.
[[nodiscard]] std::optional<std::uint8_t> sample_bilinear(
    const img::image_u8& src, double x, double y, int channel = 0);

}  // namespace vs::geo
