// Affine transform estimation — the fallback model the VS pipeline uses when
// too few matches survive for a full homography (Section III-A of the paper).
#pragma once

#include <optional>
#include <span>

#include "geometry/mat3.h"
#include "geometry/vec2.h"

namespace vs::geo {

inline constexpr std::size_t affine_min_pairs = 3;

/// Least-squares affine estimate (6 unknowns) from >= 3 correspondences.
/// Returns nullopt for degenerate (collinear) configurations.
[[nodiscard]] std::optional<mat3> estimate_affine(
    std::span<const point_pair> pairs);

/// Rigid-ish similarity estimate (4 unknowns: scale, rotation, translation)
/// from >= 2 correspondences.  Used by tests and by the quality metric's
/// global-alignment step.
[[nodiscard]] std::optional<mat3> estimate_similarity(
    std::span<const point_pair> pairs);

}  // namespace vs::geo
