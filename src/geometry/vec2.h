// 2-D point/vector type used across features, matching and geometry.
#pragma once

#include <cmath>

namespace vs::geo {

struct vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr vec2() = default;
  constexpr vec2(double px, double py) : x(px), y(py) {}

  constexpr vec2 operator+(vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr vec2 operator-(vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr vec2 operator/(double s) const { return {x / s, y / s}; }

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] constexpr double dot(vec2 o) const { return x * o.x + y * o.y; }

  constexpr bool operator==(const vec2&) const = default;
};

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(vec2 a, vec2 b) { return (a - b).norm(); }

/// A correspondence between a point in the source image and a point in the
/// destination image (the unit RANSAC and the solvers operate on).
struct point_pair {
  vec2 src;
  vec2 dst;
};

}  // namespace vs::geo
