#include "geometry/warp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dispatch.h"
#include "core/error.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "geometry/warp_simd.h"
#include "image/pixel.h"
#include "rt/instrument.h"

namespace vs::geo {

namespace {

// OpenCV-compatible fixed-point interpolation parameters.
constexpr int inter_bits = 5;
constexpr int inter_scale = 1 << inter_bits;          // 32
constexpr int inter_round = 1 << (2 * inter_bits - 1);  // rounding bias

}  // namespace

rect rect_union(const rect& a, const rect& b) noexcept {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const int x0 = std::min(a.x0, b.x0);
  const int y0 = std::min(a.y0, b.y0);
  const int x1 = std::max(a.x0 + a.w, b.x0 + b.w);
  const int y1 = std::max(a.y0 + a.h, b.y0 + b.h);
  return {x0, y0, x1 - x0, y1 - y0};
}

rect rect_intersect(const rect& a, const rect& b) noexcept {
  const int x0 = std::max(a.x0, b.x0);
  const int y0 = std::max(a.y0, b.y0);
  const int x1 = std::min(a.x0 + a.w, b.x0 + b.w);
  const int y1 = std::min(a.y0 + a.h, b.y0 + b.h);
  if (x1 <= x0 || y1 <= y0) return {};
  return {x0, y0, x1 - x0, y1 - y0};
}

std::optional<rect> projected_bounds(const mat3& h, int width, int height,
                                     double coord_limit) {
  if (width <= 0 || height <= 0) return std::nullopt;
  const vec2 corners[4] = {{0.0, 0.0},
                           {static_cast<double>(width), 0.0},
                           {0.0, static_cast<double>(height)},
                           {static_cast<double>(width),
                            static_cast<double>(height)}};
  double min_x = 1e300;
  double min_y = 1e300;
  double max_x = -1e300;
  double max_y = -1e300;
  for (const vec2 c : corners) {
    const vec2 p = h.apply(c);
    if (!std::isfinite(p.x) || !std::isfinite(p.y) ||
        std::abs(p.x) > coord_limit || std::abs(p.y) > coord_limit) {
      return std::nullopt;
    }
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const int x0 = static_cast<int>(std::floor(min_x));
  const int y0 = static_cast<int>(std::floor(min_y));
  const int x1 = static_cast<int>(std::ceil(max_x));
  const int y1 = static_cast<int>(std::ceil(max_y));
  return rect{x0, y0, x1 - x0, y1 - y0};
}

namespace {

// remapBilinear: fixed-point interpolation of one pixel.  `fx`/`fy` are the
// integer source coordinates scaled by inter_scale.  The source reads go
// through guarded address arithmetic (rt::idx) so an injected index fault
// behaves like a real wild load; the accumulated value passes one GPR data
// site before saturation.
inline std::uint8_t remap_one(const img::image_u8& src, int sx, int sy,
                              int wx, int wy, int channel) {
  const int ch = src.channels();
  const auto stride = static_cast<std::int64_t>(src.width()) * ch;
  const std::int64_t base =
      static_cast<std::int64_t>(sy) * stride +
      static_cast<std::int64_t>(sx) * ch + channel;
  const std::size_t n = src.size();
  const std::uint8_t* d = src.data();
  const int p00 = d[rt::idx(base, n)];
  const int p10 = d[rt::idx(base + ch, n)];
  const int p01 = d[rt::idx(base + stride, n)];
  const int p11 = d[rt::idx(base + stride + ch, n)];
  const int w00 = (inter_scale - wx) * (inter_scale - wy);
  const int w10 = wx * (inter_scale - wy);
  const int w01 = (inter_scale - wx) * wy;
  const int w11 = wx * wy;
  const int acc = rt::g32(p00 * w00 + p10 * w10 + p01 * w01 + p11 * w11);
  rt::account(rt::op::int_alu, 10);
  return img::saturate_u8((acc + inter_round) >> (2 * inter_bits));
}

// Clean lane of remapBilinear: identical fixed-point math, direct loads.
inline std::uint8_t remap_one_clean(const img::image_u8& src, int sx, int sy,
                                    int wx, int wy, int channel) {
  const int ch = src.channels();
  const auto stride = static_cast<std::int64_t>(src.width()) * ch;
  const std::int64_t base = static_cast<std::int64_t>(sy) * stride +
                            static_cast<std::int64_t>(sx) * ch + channel;
  const std::uint8_t* d = src.data();
  const int p00 = d[base];
  const int p10 = d[base + ch];
  const int p01 = d[base + stride];
  const int p11 = d[base + stride + ch];
  const int w00 = (inter_scale - wx) * (inter_scale - wy);
  const int w10 = wx * (inter_scale - wy);
  const int w01 = (inter_scale - wx) * wy;
  const int w11 = wx * wy;
  const int acc = p00 * w00 + p10 * w10 + p01 * w01 + p11 * w11;
  return img::saturate_u8((acc + inter_round) >> (2 * inter_bits));
}

// Clean lane: the destination rows are independent (each recomputes its
// incremental numerators from the row coordinate, exactly as the sequential
// invoker does), so the warp tiles over row bands.  Per-row floating-point
// evaluation order matches the instrumented lane operation for operation —
// including the quirk that the preimage guard tests the already-incremented
// denominator — so the patch is bit-identical.  With a SIMD row kernel
// available, each row's incremental chains are materialized into buffers by
// the same scalar additions and the per-pixel expression tree runs four
// lanes at a time (IEEE div/mul/compare are lane-exact, the interpolation
// is integer), which keeps the bytes identical at every SIMD level.
void warp_rows_clean(const img::image_u8& src, const mat3& m,
                     const rect& out_rect, warped_patch& out) {
  const int channels = src.channels();
  const double max_sx = src.width() - 1.0;
  const double max_sy = src.height() - 1.0;
  const int out_h = out.pixels.height();
  const int out_w = out.pixels.width();
  std::uint8_t* valid_data = out.valid.data();
  std::uint8_t* pixel_data = out.pixels.data();
  const simd::warp_row_fn row_fn =
      simd::select_warp_row(core::simd::active(), channels);

  core::thread_pool::current().parallel_for(
      0, out_h, 8, [&](std::int64_t y0, std::int64_t y1, std::size_t) {
        std::vector<double> buf_num_x;
        std::vector<double> buf_num_y;
        std::vector<double> buf_den;
        if (row_fn != nullptr) {
          buf_num_x.resize(static_cast<std::size_t>(out_w));
          buf_num_y.resize(static_cast<std::size_t>(out_w));
          buf_den.resize(static_cast<std::size_t>(out_w) + 1);
        }
        for (int y = static_cast<int>(y0); y < y1; ++y) {
          const double dy = out_rect.y0 + y;
          double num_x = m(0, 0) * out_rect.x0 + m(0, 1) * dy + m(0, 2);
          double num_y = m(1, 0) * out_rect.x0 + m(1, 1) * dy + m(1, 2);
          double den = m(2, 0) * out_rect.x0 + m(2, 1) * dy + m(2, 2);
          if (row_fn != nullptr) {
            // Materialize the incremental chains (identical additions in
            // identical order), then hand the row to the SIMD kernel.
            for (int x = 0; x < out_w; ++x) {
              buf_num_x[static_cast<std::size_t>(x)] = num_x;
              buf_num_y[static_cast<std::size_t>(x)] = num_y;
              buf_den[static_cast<std::size_t>(x)] = den;
              num_x += m(0, 0);
              num_y += m(1, 0);
              den += m(2, 0);
            }
            buf_den[static_cast<std::size_t>(out_w)] = den;
            const std::size_t row =
                static_cast<std::size_t>(y) * static_cast<std::size_t>(out_w);
            row_fn(buf_num_x.data(), buf_num_y.data(), buf_den.data(), out_w,
                   max_sx, max_sy, src.data(), src.width(), pixel_data + row,
                   valid_data + row);
            continue;
          }
          for (int x = 0; x < out_w; ++x) {
            const double inv_den = den != 0.0 ? 1.0 / den : 0.0;
            const double sx = num_x * inv_den;
            const double sy = num_y * inv_den;
            num_x += m(0, 0);
            num_y += m(1, 0);
            den += m(2, 0);
            if (den == 0.0 || !(sx >= 0.0) || !(sy >= 0.0) || sx >= max_sx ||
                sy >= max_sy) {
              continue;
            }
            const auto fx = static_cast<int>(sx * inter_scale);
            const auto fy = static_cast<int>(sy * inter_scale);
            const int ix = fx >> inter_bits;
            const int iy = fy >> inter_bits;
            const int wx = fx & (inter_scale - 1);
            const int wy = fy & (inter_scale - 1);
            const std::size_t dst =
                static_cast<std::size_t>(y) * out_w + static_cast<std::size_t>(x);
            for (int c = 0; c < channels; ++c) {
              pixel_data[dst * channels + c] =
                  remap_one_clean(src, ix, iy, wx, wy, c);
            }
            valid_data[dst] = 255;
          }
        }
      });
}

void warp_rows_instrumented(const img::image_u8& src, const mat3& m,
                            const rect& out_rect, warped_patch& out);

}  // namespace

warped_patch warp_perspective(const img::image_u8& src, const mat3& h,
                              const rect& out_rect) {
  if (src.empty()) throw invalid_argument("warp_perspective: empty source");
  const auto inv = h.inverse();

  // Canvas allocation goes through the abort gate: a corrupted dimension
  // that demands an absurd buffer is the paper's "library abort" crash.
  constexpr std::size_t max_pixels = std::size_t{1} << 26;  // 64M elements
  const std::size_t w =
      rt::alloc_size(out_rect.w, 1 << 20);
  const std::size_t hgt =
      rt::alloc_size(out_rect.h, 1 << 20);
  rt::alloc_size(static_cast<std::int64_t>(w) * static_cast<std::int64_t>(hgt) *
                     src.channels(),
                 max_pixels);

  warped_patch out;
  out.x0 = out_rect.x0;
  out.y0 = out_rect.y0;
  out.pixels = img::image_u8(static_cast<int>(w), static_cast<int>(hgt),
                             src.channels());
  out.valid = img::image_u8(static_cast<int>(w), static_cast<int>(hgt), 1);
  if (!inv) return out;  // singular homography: nothing lands

  core::dispatch(
      [&] { warp_rows_clean(src, *inv, out_rect, out); },
      [&] { warp_rows_instrumented(src, *inv, out_rect, out); });
  return out;
}

namespace {

// Instrumented lane of the warp: the same incremental row evaluation as the
// clean lane, with every register-resident value routed through its rt::
// fault site.
void warp_rows_instrumented(const img::image_u8& src, const mat3& m,
                            const rect& out_rect, warped_patch& out) {
  rt::scope warp_scope(rt::fn::warp);
  const int channels = src.channels();
  // Interpolation domain: [0, width-1) x [0, height-1) so that the 2x2
  // neighbourhood is fully inside the image.
  const double max_sx = src.width() - 1.0;
  const double max_sy = src.height() - 1.0;

  const int out_h = out.pixels.height();
  const int out_w = out.pixels.width();
  const std::size_t out_n = out.valid.size();
  std::uint8_t* valid_data = out.valid.data();
  std::uint8_t* pixel_data = out.pixels.data();
  for (int y = 0; y < out_h; ++y) {
    // Integer-coordinate convention, as cv::warpPerspective: destination
    // pixel (x, y) maps through H^-1 directly (keypoints and homographies
    // use the same convention, so warped content lands where the estimated
    // model says it does).
    const double dy = out_rect.y0 + y;
    // Incremental evaluation along the row, as warpPerspectiveInvoker does:
    // numerators and denominator are linear in x.
    double num_x = m(0, 0) * out_rect.x0 + m(0, 1) * dy + m(0, 2);
    double num_y = m(1, 0) * out_rect.x0 + m(1, 1) * dy + m(1, 2);
    double den = m(2, 0) * out_rect.x0 + m(2, 1) * dy + m(2, 2);
    // The row's iteration bound lives in a register for the whole row — a
    // control fault site; a corrupted bound overruns the row, which the
    // guarded destination writes below convert into a wild store or, when
    // the preimage check keeps skipping, a watchdog hang.
    const auto row_limit =
        static_cast<std::int64_t>(rt::ctrl(out_w));
    for (std::int64_t x = 0; x < row_limit; ++x) {
      // The induction variable itself is register-resident: expose it as a
      // (sparse) control fault site.  A backward-corrupted x re-runs the
      // row until the watchdog declares a hang; a forward-corrupted x
      // truncates the row.
      if ((x & 255) == 255) x = rt::ctrl(x);
      const double inv_den = den != 0.0 ? 1.0 / den : 0.0;
      // Source coordinates are the FPR fault sites of the hot function.
      const double sx = rt::f64(num_x * inv_den);
      const double sy = rt::f64(num_y * inv_den);
      rt::account(rt::op::fp_alu, 12);  // incl. the per-pixel divide
      num_x += m(0, 0);
      num_y += m(1, 0);
      den += m(2, 0);
      if (den == 0.0 || !(sx >= 0.0) || !(sy >= 0.0) || sx >= max_sx ||
          sy >= max_sy) {
        continue;  // preimage outside the interpolation domain
      }
      rt::scope remap_scope(rt::fn::remap);
      const auto fx = static_cast<int>(sx * inter_scale);
      const auto fy = static_cast<int>(sy * inter_scale);
      const int ix = fx >> inter_bits;
      const int iy = fy >> inter_bits;
      const int wx = fx & (inter_scale - 1);
      const int wy = fy & (inter_scale - 1);
      const std::size_t dst =
          rt::idx(static_cast<std::int64_t>(y) * out_w + x, out_n);
      for (int c = 0; c < channels; ++c) {
        pixel_data[dst * channels + c] = remap_one(src, ix, iy, wx, wy, c);
      }
      valid_data[dst] = 255;
      rt::account(rt::op::mem, 2);
    }
    rt::account(rt::op::branch, static_cast<std::uint64_t>(out_w));
  }
}

}  // namespace

std::optional<std::uint8_t> sample_bilinear(const img::image_u8& src, double x,
                                            double y, int channel) {
  if (src.empty() || channel < 0 || channel >= src.channels()) {
    return std::nullopt;
  }
  if (!(x >= 0.0) || !(y >= 0.0) || x >= src.width() - 1.0 ||
      y >= src.height() - 1.0) {
    return std::nullopt;
  }
  const auto fx = static_cast<int>(x * inter_scale);
  const auto fy = static_cast<int>(y * inter_scale);
  return remap_one(src, fx >> inter_bits, fy >> inter_bits,
                   fx & (inter_scale - 1), fy & (inter_scale - 1), channel);
}

}  // namespace vs::geo
