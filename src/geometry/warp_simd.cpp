#include "geometry/warp_simd.h"

#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace vs::geo::simd {

#if defined(__x86_64__)

namespace {

// OpenCV-compatible fixed-point parameters (mirrors warp.cpp).
constexpr int inter_bits = 5;
constexpr int inter_scale = 1 << inter_bits;
constexpr int inter_round = 1 << (2 * inter_bits - 1);

__attribute__((target("avx2"))) void warp_row_avx2(
    const double* num_x, const double* num_y, const double* den, int out_w,
    double max_sx, double max_sy, const std::uint8_t* src, int src_w,
    std::uint8_t* dst_row, std::uint8_t* valid_row) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d scale = _mm256_set1_pd(static_cast<double>(inter_scale));
  const __m256d vmax_sx = _mm256_set1_pd(max_sx);
  const __m256d vmax_sy = _mm256_set1_pd(max_sy);
  int x = 0;
  for (; x + 4 <= out_w; x += 4) {
    const __m256d dn = _mm256_loadu_pd(den + x);
    const __m256d dn_next = _mm256_loadu_pd(den + x + 1);
    // inv = den != 0 ? 1/den : 0 — the div runs on every lane (no trap;
    // a zero lane yields inf) and the blend discards it, so each lane is
    // exactly the scalar ternary.
    const __m256d inv = _mm256_blendv_pd(_mm256_div_pd(one, dn), zero,
                                         _mm256_cmp_pd(dn, zero, _CMP_EQ_OQ));
    const __m256d sx = _mm256_mul_pd(_mm256_loadu_pd(num_x + x), inv);
    const __m256d sy = _mm256_mul_pd(_mm256_loadu_pd(num_y + x), inv);
    // valid = den' != 0 && sx >= 0 && sy >= 0 && sx < max_sx && sy < max_sy.
    // The ordered GE compares reject NaN coordinates exactly like the
    // scalar !(sx >= 0.0) guard; NEQ is unordered so a NaN denominator
    // passes that clause as it does the scalar den' == 0.0 test.
    __m256d valid = _mm256_cmp_pd(dn_next, zero, _CMP_NEQ_UQ);
    valid = _mm256_and_pd(valid, _mm256_cmp_pd(sx, zero, _CMP_GE_OQ));
    valid = _mm256_and_pd(valid, _mm256_cmp_pd(sy, zero, _CMP_GE_OQ));
    valid = _mm256_and_pd(valid, _mm256_cmp_pd(sx, vmax_sx, _CMP_LT_OQ));
    valid = _mm256_and_pd(valid, _mm256_cmp_pd(sy, vmax_sy, _CMP_LT_OQ));
    const int vm = _mm256_movemask_pd(valid);
    if (vm == 0) continue;

    // Truncating convert == static_cast<int>; garbage in masked lanes is
    // never read.  Valid lanes are non-negative, so the arithmetic shift
    // and mask match the scalar >> and &.
    const __m128i fx = _mm256_cvttpd_epi32(_mm256_mul_pd(sx, scale));
    const __m128i fy = _mm256_cvttpd_epi32(_mm256_mul_pd(sy, scale));
    const __m128i ix = _mm_srai_epi32(fx, inter_bits);
    const __m128i iy = _mm_srai_epi32(fy, inter_bits);
    const __m128i wx = _mm_and_si128(fx, _mm_set1_epi32(inter_scale - 1));
    const __m128i wy = _mm_and_si128(fy, _mm_set1_epi32(inter_scale - 1));
    const __m128i base =
        _mm_add_epi32(_mm_mullo_epi32(iy, _mm_set1_epi32(src_w)), ix);

    // The 2x2 taps load as two 16-bit pairs per lane (p00|p10, p01|p11) —
    // in-bounds by the guard (ix <= src_w-2, iy <= src_h-2) and never past
    // the allocation, unlike a 32-bit gather at the image's last rows.
    alignas(16) std::int32_t base_arr[4];
    alignas(16) std::int32_t top_arr[4] = {0, 0, 0, 0};
    alignas(16) std::int32_t bot_arr[4] = {0, 0, 0, 0};
    _mm_store_si128(reinterpret_cast<__m128i*>(base_arr), base);
    for (int lane = 0; lane < 4; ++lane) {
      if ((vm & (1 << lane)) == 0) continue;
      const std::uint8_t* p = src + base_arr[lane];
      std::uint16_t top_pair;
      std::uint16_t bot_pair;
      std::memcpy(&top_pair, p, sizeof(top_pair));
      std::memcpy(&bot_pair, p + src_w, sizeof(bot_pair));
      top_arr[lane] = top_pair;  // little-endian: low byte is p00/p01
      bot_arr[lane] = bot_pair;
    }
    const __m128i top = _mm_load_si128(reinterpret_cast<__m128i*>(top_arr));
    const __m128i bot = _mm_load_si128(reinterpret_cast<__m128i*>(bot_arr));
    const __m128i ff = _mm_set1_epi32(0xff);
    const __m128i p00 = _mm_and_si128(top, ff);
    const __m128i p10 = _mm_and_si128(_mm_srli_epi32(top, 8), ff);
    const __m128i p01 = _mm_and_si128(bot, ff);
    const __m128i p11 = _mm_and_si128(_mm_srli_epi32(bot, 8), ff);

    const __m128i full = _mm_set1_epi32(inter_scale);
    const __m128i iwx = _mm_sub_epi32(full, wx);
    const __m128i iwy = _mm_sub_epi32(full, wy);
    __m128i acc = _mm_add_epi32(
        _mm_mullo_epi32(p00, _mm_mullo_epi32(iwx, iwy)),
        _mm_mullo_epi32(p10, _mm_mullo_epi32(wx, iwy)));
    acc = _mm_add_epi32(acc, _mm_mullo_epi32(p01, _mm_mullo_epi32(iwx, wy)));
    acc = _mm_add_epi32(acc, _mm_mullo_epi32(p11, _mm_mullo_epi32(wx, wy)));
    // Weights sum to inter_scale^2, so the rounded shift already lands in
    // [0, 255] — the scalar saturate_u8 is the identity here.
    acc = _mm_srai_epi32(_mm_add_epi32(acc, _mm_set1_epi32(inter_round)),
                         2 * inter_bits);

    alignas(16) std::int32_t res_arr[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(res_arr), acc);
    for (int lane = 0; lane < 4; ++lane) {
      if ((vm & (1 << lane)) == 0) continue;
      dst_row[x + lane] = static_cast<std::uint8_t>(res_arr[lane]);
      valid_row[x + lane] = 255;
    }
  }

  // Scalar tail: the same buffered expression tree, one lane at a time.
  for (; x < out_w; ++x) {
    const double dn = den[x];
    const double inv = dn != 0.0 ? 1.0 / dn : 0.0;
    const double sx = num_x[x] * inv;
    const double sy = num_y[x] * inv;
    if (den[x + 1] == 0.0 || !(sx >= 0.0) || !(sy >= 0.0) || sx >= max_sx ||
        sy >= max_sy) {
      continue;
    }
    const auto fx = static_cast<int>(sx * inter_scale);
    const auto fy = static_cast<int>(sy * inter_scale);
    const int ix = fx >> inter_bits;
    const int iy = fy >> inter_bits;
    const int wx = fx & (inter_scale - 1);
    const int wy = fy & (inter_scale - 1);
    const std::uint8_t* p = src + static_cast<std::ptrdiff_t>(iy) * src_w + ix;
    const int acc = p[0] * ((inter_scale - wx) * (inter_scale - wy)) +
                    p[1] * (wx * (inter_scale - wy)) +
                    p[src_w] * ((inter_scale - wx) * wy) +
                    p[src_w + 1] * (wx * wy);
    dst_row[x] =
        static_cast<std::uint8_t>((acc + inter_round) >> (2 * inter_bits));
    valid_row[x] = 255;
  }
}

}  // namespace

#endif  // __x86_64__

warp_row_fn select_warp_row(core::simd::level l, int channels) noexcept {
#if defined(__x86_64__)
  if (channels == 1 && l >= core::simd::level::avx2) return &warp_row_avx2;
#else
  (void)l;
  (void)channels;
#endif
  return nullptr;
}

}  // namespace vs::geo::simd
