#include "geometry/mat3.h"

#include <cmath>

namespace vs::geo {

mat3 mat3::rotation(double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {c, -s, 0, s, c, 0, 0, 0, 1};
}

mat3 mat3::rotation_about(double radians, vec2 center) {
  return translation(center.x, center.y) * rotation(radians) *
         translation(-center.x, -center.y);
}

mat3 mat3::operator*(const mat3& o) const {
  mat3 r;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double sum = 0.0;
      for (int k = 0; k < 3; ++k) sum += (*this)(i, k) * o(k, j);
      r(i, j) = sum;
    }
  }
  return r;
}

mat3 mat3::operator*(double s) const {
  mat3 r = *this;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) r(i, j) *= s;
  }
  return r;
}

mat3 mat3::operator+(const mat3& o) const {
  mat3 r = *this;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) r(i, j) += o(i, j);
  }
  return r;
}

double mat3::det() const {
  const auto& m = *this;
  return m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) -
         m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0)) +
         m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0));
}

std::optional<mat3> mat3::inverse(double eps) const {
  const double d = det();
  if (!std::isfinite(d) || std::abs(d) < eps) return std::nullopt;
  const auto& m = *this;
  const double inv_d = 1.0 / d;
  mat3 r;
  r(0, 0) = (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1)) * inv_d;
  r(0, 1) = (m(0, 2) * m(2, 1) - m(0, 1) * m(2, 2)) * inv_d;
  r(0, 2) = (m(0, 1) * m(1, 2) - m(0, 2) * m(1, 1)) * inv_d;
  r(1, 0) = (m(1, 2) * m(2, 0) - m(1, 0) * m(2, 2)) * inv_d;
  r(1, 1) = (m(0, 0) * m(2, 2) - m(0, 2) * m(2, 0)) * inv_d;
  r(1, 2) = (m(0, 2) * m(1, 0) - m(0, 0) * m(1, 2)) * inv_d;
  r(2, 0) = (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0)) * inv_d;
  r(2, 1) = (m(0, 1) * m(2, 0) - m(0, 0) * m(2, 1)) * inv_d;
  r(2, 2) = (m(0, 0) * m(1, 1) - m(0, 1) * m(1, 0)) * inv_d;
  return r;
}

vec2 mat3::apply(vec2 p) const {
  const auto& m = *this;
  const double w = m(2, 0) * p.x + m(2, 1) * p.y + m(2, 2);
  const double x = m(0, 0) * p.x + m(0, 1) * p.y + m(0, 2);
  const double y = m(1, 0) * p.x + m(1, 1) * p.y + m(1, 2);
  if (std::abs(w) < 1e-12) {
    constexpr double far = 1e15;
    return {x >= 0 ? far : -far, y >= 0 ? far : -far};
  }
  return {x / w, y / w};
}

void mat3::normalize() {
  const double w = (*this)(2, 2);
  if (std::abs(w) < 1e-300) return;
  const double inv = 1.0 / w;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) (*this)(i, j) *= inv;
  }
}

bool mat3::is_affine(double eps) const {
  const auto& m = *this;
  return std::abs(m(2, 0)) < eps && std::abs(m(2, 1)) < eps &&
         std::abs(m(2, 2) - 1.0) < eps;
}

double mat3::projective_distance(const mat3& o) const {
  mat3 a = *this;
  mat3 b = o;
  a.normalize();
  b.normalize();
  double worst = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

}  // namespace vs::geo
