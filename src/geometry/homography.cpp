#include "geometry/homography.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/error.h"
#include "geometry/linalg.h"
#include "resil/runtime.h"
#include "rt/instrument.h"

namespace vs::geo {

namespace {

struct normalization {
  mat3 transform;  ///< maps raw points to normalized points
  std::vector<vec2> points;
};

// Bitwise replica comparison: replicas are deterministic over identical
// inputs, so any difference is a detected fault, not numerical noise.
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool bits_equal(const normalization& a, const normalization& b) {
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (!bits_equal(a.transform(r, c), b.transform(r, c))) return false;
    }
  }
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (!bits_equal(a.points[i].x, b.points[i].x) ||
        !bits_equal(a.points[i].y, b.points[i].y)) {
      return false;
    }
  }
  return true;
}

// Hartley normalization: translate centroid to origin, scale mean distance
// to sqrt(2).  Greatly improves the conditioning of the DLT system.
normalization normalize_points(std::span<const point_pair> pairs, bool src) {
  rt::scope attributed(rt::fn::homography);
  normalization out;
  out.points.reserve(pairs.size());
  double cx = 0.0;
  double cy = 0.0;
  for (const auto& p : pairs) {
    const vec2 q = src ? p.src : p.dst;
    cx += q.x;
    cy += q.y;
  }
  const auto n = static_cast<double>(pairs.size());
  cx /= n;
  cy /= n;
  double mean_dist = 0.0;
  for (const auto& p : pairs) {
    const vec2 q = src ? p.src : p.dst;
    mean_dist += std::hypot(q.x - cx, q.y - cy);
  }
  mean_dist /= n;
  rt::account(rt::op::fp_alu, 8 * pairs.size());
  const double scale = mean_dist > 1e-12 ? std::sqrt(2.0) / mean_dist : 1.0;
  out.transform = mat3::scaling(scale, scale) * mat3::translation(-cx, -cy);
  for (const auto& p : pairs) {
    const vec2 q = src ? p.src : p.dst;
    out.points.push_back({(q.x - cx) * scale, (q.y - cy) * scale});
  }
  return out;
}

}  // namespace

std::optional<mat3> estimate_homography(std::span<const point_pair> pairs) {
  if (pairs.size() < homography_min_pairs) return std::nullopt;
  rt::scope attributed(rt::fn::homography);

  // HAFT-style replication (active under full hardening only): corrupted
  // normalization poisons every row of the DLT system at once.
  const auto replicated_normalize = [&](bool src) {
    return resil::replicated(
        pipeline::stage_id::estimate,
        [&] { return normalize_points(pairs, src); },
        [](const normalization& a, const normalization& b) {
          return bits_equal(a, b);
        });
  };
  const normalization src_norm = replicated_normalize(/*src=*/true);
  const normalization dst_norm = replicated_normalize(/*src=*/false);

  // Each correspondence contributes two rows of the linear system in the 8
  // unknowns (h00..h21), with h22 fixed at 1:
  //   [x y 1 0 0 0 -x*u -y*u] h = u
  //   [0 0 0 x y 1 -x*v -y*v] h = v
  const std::size_t rows = 2 * pairs.size();
  std::vector<double> a(rows * 8, 0.0);
  std::vector<double> b(rows, 0.0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Route the coordinates feeding the solver through FPR fault sites: a
    // flipped bit here corrupts the estimated model exactly the way a
    // register strike during matrix assembly would.
    const double x = rt::f64(src_norm.points[i].x);
    const double y = rt::f64(src_norm.points[i].y);
    const double u = rt::f64(dst_norm.points[i].x);
    const double v = rt::f64(dst_norm.points[i].y);
    double* r0 = &a[(2 * i) * 8];
    double* r1 = &a[(2 * i + 1) * 8];
    r0[0] = x;
    r0[1] = y;
    r0[2] = 1.0;
    r0[6] = -x * u;
    r0[7] = -y * u;
    b[2 * i] = u;
    r1[3] = x;
    r1[4] = y;
    r1[5] = 1.0;
    r1[6] = -x * v;
    r1[7] = -y * v;
    b[2 * i + 1] = v;
  }
  rt::account(rt::op::fp_alu, 24 * pairs.size());

  const auto h = solve_least_squares(a, b, rows, 8);
  rt::account(rt::op::fp_alu, 8 * 8 * rows + 8 * 8 * 8 / 3);
  if (!h) return std::nullopt;

  const mat3 normalized((*h)[0], (*h)[1], (*h)[2], (*h)[3], (*h)[4], (*h)[5],
                        (*h)[6], (*h)[7], 1.0);

  // Denormalize: H = T_dst^-1 * Hn * T_src.
  const auto dst_inv = dst_norm.transform.inverse();
  if (!dst_inv) return std::nullopt;
  mat3 result = (*dst_inv) * normalized * src_norm.transform;
  result.normalize();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (!std::isfinite(result(i, j))) return std::nullopt;
    }
  }
  return result;
}

double reprojection_error(const mat3& h, const point_pair& p) {
  const vec2 mapped = h.apply(p.src);
  const double dx = rt::f64(mapped.x - p.dst.x);
  const double dy = rt::f64(mapped.y - p.dst.y);
  rt::account(rt::op::fp_alu, 12);
  return std::sqrt(dx * dx + dy * dy);
}

bool plausible_homography(const mat3& h, double limit) {
  if (!h.is_affine(0.02)) {
    // Strong perspective components flip or fold the plane; reject models
    // whose projective terms would map the frame across the horizon.
    const double p = std::abs(h(2, 0)) + std::abs(h(2, 1));
    if (p > 0.02) return false;
  }
  // Scale of the linear part via its singular-value bounds (cheap proxy:
  // column norms of the 2x2 block).
  const double c0 = std::hypot(h(0, 0), h(1, 0));
  const double c1 = std::hypot(h(0, 1), h(1, 1));
  const double det2 = h(0, 0) * h(1, 1) - h(0, 1) * h(1, 0);
  if (det2 <= 0.0) return false;  // reflection or collapse
  const double lo = 1.0 / limit;
  return c0 > lo && c0 < limit && c1 > lo && c1 < limit;
}

}  // namespace vs::geo
