// Small dense linear-algebra kernels (the solvers behind homography and
// affine estimation).  Sized for n <= 16 — no BLAS, no allocation surprises.
#pragma once

#include <optional>
#include <vector>

namespace vs::geo {

/// Solves A x = b in-place for a dense row-major n x n system using Gaussian
/// elimination with partial pivoting.  Returns nullopt for (near-)singular
/// systems.  `a` must have n*n elements and `b` n elements.
[[nodiscard]] std::optional<std::vector<double>> solve_gaussian(
    std::vector<double> a, std::vector<double> b, double pivot_eps = 1e-12);

/// Linear least squares via normal equations: minimizes |A x - b|_2 for a
/// dense row-major rows x cols matrix (rows >= cols).  Returns nullopt when
/// the normal matrix is singular.
[[nodiscard]] std::optional<std::vector<double>> solve_least_squares(
    const std::vector<double>& a, const std::vector<double>& b,
    std::size_t rows, std::size_t cols);

}  // namespace vs::geo
