#include "geometry/affine.h"

#include <cmath>
#include <vector>

#include "geometry/linalg.h"
#include "rt/instrument.h"

namespace vs::geo {

std::optional<mat3> estimate_affine(std::span<const point_pair> pairs) {
  if (pairs.size() < affine_min_pairs) return std::nullopt;
  rt::scope attributed(rt::fn::homography);

  // Two independent 3-unknown least-squares systems (x and y rows share the
  // same design matrix [x y 1]).
  const std::size_t rows = pairs.size();
  std::vector<double> a(rows * 3, 0.0);
  std::vector<double> bx(rows, 0.0);
  std::vector<double> by(rows, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    a[i * 3] = rt::f64(pairs[i].src.x);
    a[i * 3 + 1] = rt::f64(pairs[i].src.y);
    a[i * 3 + 2] = 1.0;
    bx[i] = pairs[i].dst.x;
    by[i] = pairs[i].dst.y;
  }
  rt::account(rt::op::fp_alu, 14 * rows);

  const auto row_x = solve_least_squares(a, bx, rows, 3);
  const auto row_y = solve_least_squares(a, by, rows, 3);
  if (!row_x || !row_y) return std::nullopt;

  mat3 m = mat3::affine((*row_x)[0], (*row_x)[1], (*row_x)[2], (*row_y)[0],
                        (*row_y)[1], (*row_y)[2]);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (!std::isfinite(m(i, j))) return std::nullopt;
    }
  }
  return m;
}

std::optional<mat3> estimate_similarity(std::span<const point_pair> pairs) {
  if (pairs.size() < 2) return std::nullopt;
  rt::scope attributed(rt::fn::homography);

  // Unknowns (a, b, tx, ty) for [a -b tx; b a ty].  Each pair contributes:
  //   a*x - b*y + tx = u
  //   b*x + a*y + ty = v
  const std::size_t rows = 2 * pairs.size();
  std::vector<double> a(rows * 4, 0.0);
  std::vector<double> b(rows, 0.0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const double x = pairs[i].src.x;
    const double y = pairs[i].src.y;
    double* r0 = &a[(2 * i) * 4];
    double* r1 = &a[(2 * i + 1) * 4];
    r0[0] = x;
    r0[1] = -y;
    r0[2] = 1.0;
    b[2 * i] = pairs[i].dst.x;
    r1[0] = y;
    r1[1] = x;
    r1[3] = 1.0;
    b[2 * i + 1] = pairs[i].dst.y;
  }
  rt::account(rt::op::fp_alu, 10 * pairs.size());

  const auto sol = solve_least_squares(a, b, rows, 4);
  if (!sol) return std::nullopt;
  const double ca = (*sol)[0];
  const double cb = (*sol)[1];
  if (!std::isfinite(ca) || !std::isfinite(cb)) return std::nullopt;
  return mat3::affine(ca, -cb, (*sol)[2], cb, ca, (*sol)[3]);
}

}  // namespace vs::geo
