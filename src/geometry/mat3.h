// 3x3 double matrix for planar projective transforms (homographies).
#pragma once

#include <array>
#include <optional>

#include "geometry/vec2.h"

namespace vs::geo {

class mat3 {
 public:
  /// Zero matrix.
  constexpr mat3() = default;

  /// Row-major construction.
  constexpr mat3(double a, double b, double c, double d, double e, double f,
                 double g, double h, double i)
      : m_{a, b, c, d, e, f, g, h, i} {}

  [[nodiscard]] static constexpr mat3 identity() {
    return {1, 0, 0, 0, 1, 0, 0, 0, 1};
  }
  [[nodiscard]] static constexpr mat3 translation(double tx, double ty) {
    return {1, 0, tx, 0, 1, ty, 0, 0, 1};
  }
  [[nodiscard]] static constexpr mat3 scaling(double sx, double sy) {
    return {sx, 0, 0, 0, sy, 0, 0, 0, 1};
  }
  /// Rotation by `radians` counter-clockwise about the origin.
  [[nodiscard]] static mat3 rotation(double radians);
  /// Rotation about an arbitrary center point.
  [[nodiscard]] static mat3 rotation_about(double radians, vec2 center);
  /// Affine matrix from the 6 coefficients [a b tx; c d ty; 0 0 1].
  [[nodiscard]] static constexpr mat3 affine(double a, double b, double tx,
                                             double c, double d, double ty) {
    return {a, b, tx, c, d, ty, 0, 0, 1};
  }

  double& operator()(int row, int col) { return m_[row * 3 + col]; }
  double operator()(int row, int col) const { return m_[row * 3 + col]; }

  [[nodiscard]] mat3 operator*(const mat3& o) const;
  [[nodiscard]] mat3 operator*(double s) const;
  [[nodiscard]] mat3 operator+(const mat3& o) const;

  /// Determinant.
  [[nodiscard]] double det() const;

  /// Inverse via adjugate; nullopt when |det| is below `eps`.
  [[nodiscard]] std::optional<mat3> inverse(double eps = 1e-12) const;

  /// Applies the projective transform to a point (divides by w).
  /// Points mapped near the plane at infinity (|w| < 1e-12) are sent to a
  /// large sentinel coordinate instead of dividing by zero.
  [[nodiscard]] vec2 apply(vec2 p) const;

  /// Scales the matrix so that m(2,2) == 1 (no-op when |m22| < eps).
  void normalize();

  /// True when the bottom row is (0, 0, 1) within `eps` — i.e. affine.
  [[nodiscard]] bool is_affine(double eps = 1e-9) const;

  /// Max absolute element-wise difference to another matrix, after both are
  /// normalized to m22 == 1 (projective equality test).
  [[nodiscard]] double projective_distance(const mat3& o) const;

  bool operator==(const mat3&) const = default;

 private:
  std::array<double, 9> m_ = {};
};

}  // namespace vs::geo
