#include "geometry/linalg.h"

#include <cmath>

#include "core/error.h"

namespace vs::geo {

std::optional<std::vector<double>> solve_gaussian(std::vector<double> a,
                                                  std::vector<double> b,
                                                  double pivot_eps) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw invalid_argument("solve_gaussian: shape");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: swap in the row with the largest magnitude pivot.
    std::size_t pivot = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double mag = std::abs(a[row * n + col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (!(best > pivot_eps)) return std::nullopt;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[pivot * n + j]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a[row * n + j] -= factor * a[col * n + j];
      }
      b[row] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a[i * n + j] * x[j];
    x[i] = sum / a[i * n + i];
    if (!std::isfinite(x[i])) return std::nullopt;
  }
  return x;
}

std::optional<std::vector<double>> solve_least_squares(
    const std::vector<double>& a, const std::vector<double>& b,
    std::size_t rows, std::size_t cols) {
  if (a.size() != rows * cols || b.size() != rows || rows < cols) {
    throw invalid_argument("solve_least_squares: shape");
  }
  // Normal equations: (A^T A) x = A^T b.
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> atb(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = &a[r * cols];
    for (std::size_t i = 0; i < cols; ++i) {
      atb[i] += row[i] * b[r];
      for (std::size_t j = i; j < cols; ++j) ata[i * cols + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < cols; ++i) {
    for (std::size_t j = 0; j < i; ++j) ata[i * cols + j] = ata[j * cols + i];
  }
  return solve_gaussian(std::move(ata), std::move(atb));
}

}  // namespace vs::geo
