// RANSAC (Fischler & Bolles 1981) over point correspondences — the robust
// wrapper the pipeline uses around the homography / affine estimators.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/rng.h"
#include "geometry/mat3.h"
#include "geometry/vec2.h"

namespace vs::geo {

struct ransac_params {
  std::size_t sample_size = 4;     ///< correspondences per hypothesis
  int max_iterations = 200;        ///< hypothesis budget
  double inlier_threshold = 3.0;   ///< reprojection error in pixels
  double confidence = 0.995;       ///< adaptive early-exit confidence
  std::size_t min_inliers = 8;     ///< reject models supported by fewer
};

struct ransac_result {
  mat3 model;
  std::vector<bool> inlier_mask;
  std::size_t inlier_count = 0;
  int iterations_run = 0;
};

/// Fits `estimator` robustly to `pairs`.  `estimator` maps a minimal sample
/// to a model (nullopt on degeneracy); `error` scores one correspondence
/// against a model.  Deterministic given `seed`.  Returns nullopt when no
/// model reaches min_inliers.
[[nodiscard]] std::optional<ransac_result> ransac_fit(
    std::span<const point_pair> pairs, const ransac_params& params,
    const std::function<std::optional<mat3>(std::span<const point_pair>)>&
        estimator,
    const std::function<double(const mat3&, const point_pair&)>& error,
    std::uint64_t seed);

/// Convenience: RANSAC homography with least-squares refit on the inliers
/// (matching cv::findHomography(..., CV_RANSAC) behaviour).
[[nodiscard]] std::optional<ransac_result> ransac_homography(
    std::span<const point_pair> pairs, const ransac_params& params,
    std::uint64_t seed);

/// Convenience: RANSAC affine with least-squares refit on the inliers.
[[nodiscard]] std::optional<ransac_result> ransac_affine(
    std::span<const point_pair> pairs, const ransac_params& params,
    std::uint64_t seed);

}  // namespace vs::geo
