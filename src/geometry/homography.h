// Homography (planar projective) estimation from point correspondences.
//
// Implements the normalized direct linear transform with the h22 == 1
// parameterization: 8 unknowns solved by least squares over the 2n
// linearized constraint rows — the same estimator cv::findHomography uses
// inside its RANSAC loop.
#pragma once

#include <optional>
#include <span>

#include "geometry/mat3.h"
#include "geometry/vec2.h"

namespace vs::geo {

/// Minimum correspondences for a homography (4) and affine (3) estimate.
inline constexpr std::size_t homography_min_pairs = 4;

/// Estimates H such that dst ~ H * src from >= 4 correspondences.
/// Input points are Hartley-normalized (centroid 0, mean distance sqrt(2))
/// for conditioning.  Returns nullopt for degenerate configurations
/// (collinear samples, near-singular systems).
[[nodiscard]] std::optional<mat3> estimate_homography(
    std::span<const point_pair> pairs);

/// Symmetric measure of how far `h` moves `p.src` from `p.dst` (forward
/// reprojection error in destination pixels).
[[nodiscard]] double reprojection_error(const mat3& h, const point_pair& p);

/// True when H keeps a unit square's orientation and does not collapse or
/// explode scale beyond [1/limit, limit] — the plausibility gate the
/// stitcher applies before accepting a model.
[[nodiscard]] bool plausible_homography(const mat3& h, double limit = 4.0);

}  // namespace vs::geo
