#include "geometry/ransac.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "geometry/affine.h"
#include "geometry/homography.h"
#include "rt/instrument.h"

namespace vs::geo {

namespace {

// Adaptive iteration bound: enough hypotheses to hit an all-inlier sample
// with the requested confidence given the observed inlier ratio.
int adaptive_iterations(double confidence, double inlier_ratio,
                        std::size_t sample_size, int cap) {
  if (inlier_ratio <= 0.0) return cap;
  const double p_good = std::pow(inlier_ratio, static_cast<double>(sample_size));
  if (p_good >= 1.0 - 1e-12) return 1;
  const double denom = std::log(1.0 - p_good);
  if (denom >= -1e-12) return cap;
  const double n = std::log(std::max(1e-12, 1.0 - confidence)) / denom;
  if (!(n > 0.0)) return cap;
  return std::min(cap, static_cast<int>(std::ceil(n)));
}

}  // namespace

std::optional<ransac_result> ransac_fit(
    std::span<const point_pair> pairs, const ransac_params& params,
    const std::function<std::optional<mat3>(std::span<const point_pair>)>&
        estimator,
    const std::function<double(const mat3&, const point_pair&)>& error,
    std::uint64_t seed) {
  rt::scope attributed(rt::fn::ransac);
  if (params.sample_size == 0) throw invalid_argument("ransac: sample_size 0");
  if (pairs.size() < params.sample_size ||
      pairs.size() < params.min_inliers) {
    return std::nullopt;
  }

  rng sampler(seed);
  ransac_result best;
  best.inlier_mask.assign(pairs.size(), false);

  std::vector<point_pair> sample(params.sample_size);
  std::vector<bool> mask(pairs.size(), false);

  // The iteration bound is a control value: a fault here either starves the
  // search (few iterations -> worse/absent model) or inflates it (watchdog
  // eventually declares a hang) — mirroring a loop-bound register strike.
  int limit = static_cast<int>(rt::ctrl(params.max_iterations));
  int iter = 0;
  for (; iter < limit; ++iter) {
    // Loop counter in a register: a corrupted value rewinds (-> watchdog
    // hang) or fast-forwards (-> starved search) the hypothesis loop.
    iter = static_cast<int>(rt::ctrl(iter));
    if (iter < 0) continue;  // rewound: keep iterating
    const auto indices =
        sampler.sample_without_replacement(pairs.size(), params.sample_size);
    for (std::size_t i = 0; i < params.sample_size; ++i) {
      sample[i] = pairs[indices[i]];
    }
    const auto model = estimator(sample);
    rt::account(rt::op::int_alu, 6 * params.sample_size);
    if (!model) continue;

    std::size_t inliers = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const bool in = error(*model, pairs[i]) <= params.inlier_threshold;
      mask[i] = in;
      inliers += in ? 1u : 0u;
    }
    rt::account(rt::op::branch, pairs.size());

    if (inliers > best.inlier_count) {
      best.inlier_count = inliers;
      best.model = *model;
      best.inlier_mask = mask;
      const double ratio =
          static_cast<double>(inliers) / static_cast<double>(pairs.size());
      limit = std::min(
          limit, iter + 1 + adaptive_iterations(params.confidence, ratio,
                                                params.sample_size,
                                                params.max_iterations));
    }
  }
  best.iterations_run = iter;

  if (best.inlier_count < params.min_inliers) return std::nullopt;
  return best;
}

namespace {

std::optional<ransac_result> refit_on_inliers(
    std::span<const point_pair> pairs, ransac_result result,
    const std::function<std::optional<mat3>(std::span<const point_pair>)>&
        estimator) {
  std::vector<point_pair> inliers;
  inliers.reserve(result.inlier_count);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (result.inlier_mask[i]) inliers.push_back(pairs[i]);
  }
  if (const auto refined = estimator(inliers)) result.model = *refined;
  return result;
}

}  // namespace

std::optional<ransac_result> ransac_homography(std::span<const point_pair> pairs,
                                               const ransac_params& params,
                                               std::uint64_t seed) {
  ransac_params p = params;
  p.sample_size = homography_min_pairs;
  auto estimator = [](std::span<const point_pair> s) {
    return estimate_homography(s);
  };
  auto error = [](const mat3& m, const point_pair& pair) {
    return reprojection_error(m, pair);
  };
  auto result = ransac_fit(pairs, p, estimator, error, seed);
  if (!result) return std::nullopt;
  return refit_on_inliers(pairs, std::move(*result), estimator);
}

std::optional<ransac_result> ransac_affine(std::span<const point_pair> pairs,
                                           const ransac_params& params,
                                           std::uint64_t seed) {
  ransac_params p = params;
  p.sample_size = affine_min_pairs;
  auto estimator = [](std::span<const point_pair> s) {
    return estimate_affine(s);
  };
  auto error = [](const mat3& m, const point_pair& pair) {
    return reprojection_error(m, pair);
  };
  auto result = ransac_fit(pairs, p, estimator, error, seed);
  if (!result) return std::nullopt;
  return refit_on_inliers(pairs, std::move(*result), estimator);
}

}  // namespace vs::geo
