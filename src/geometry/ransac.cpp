#include "geometry/ransac.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "core/error.h"
#include "geometry/affine.h"
#include "geometry/homography.h"
#include "resil/runtime.h"
#include "rt/instrument.h"

namespace vs::geo {

namespace {

// Bitwise (not tolerance-based) comparison for replica checking: the two
// replicas are the same deterministic computation over the same inputs, so
// any difference at all means a fault struck one of them.
bool bits_equal(const mat3& a, const mat3& b) {
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (std::bit_cast<std::uint64_t>(a(r, c)) !=
          std::bit_cast<std::uint64_t>(b(r, c))) {
        return false;
      }
    }
  }
  return true;
}

bool bits_equal(const std::optional<mat3>& a, const std::optional<mat3>& b) {
  if (a.has_value() != b.has_value()) return false;
  return !a.has_value() || bits_equal(*a, *b);
}

// Adaptive iteration bound: enough hypotheses to hit an all-inlier sample
// with the requested confidence given the observed inlier ratio.
int adaptive_iterations(double confidence, double inlier_ratio,
                        std::size_t sample_size, int cap) {
  if (inlier_ratio <= 0.0) return cap;
  const double p_good = std::pow(inlier_ratio, static_cast<double>(sample_size));
  if (p_good >= 1.0 - 1e-12) return 1;
  const double denom = std::log(1.0 - p_good);
  if (denom >= -1e-12) return cap;
  const double n = std::log(std::max(1e-12, 1.0 - confidence)) / denom;
  if (!(n > 0.0)) return cap;
  return std::min(cap, static_cast<int>(std::ceil(n)));
}

}  // namespace

std::optional<ransac_result> ransac_fit(
    std::span<const point_pair> pairs, const ransac_params& params,
    const std::function<std::optional<mat3>(std::span<const point_pair>)>&
        estimator,
    const std::function<double(const mat3&, const point_pair&)>& error,
    std::uint64_t seed) {
  rt::scope attributed(rt::fn::ransac);
  if (params.sample_size == 0) throw invalid_argument("ransac: sample_size 0");
  if (pairs.size() < params.sample_size ||
      pairs.size() < params.min_inliers) {
    return std::nullopt;
  }

  rng sampler(seed);
  ransac_result best;
  best.inlier_mask.assign(pairs.size(), false);

  std::vector<point_pair> sample(params.sample_size);

  // The iteration bound is a control value: a fault here either starves the
  // search (few iterations -> worse/absent model) or inflates it (watchdog
  // eventually declares a hang) — mirroring a loop-bound register strike.
  int limit = static_cast<int>(rt::ctrl(params.max_iterations));
  int iter = 0;
  for (; iter < limit; ++iter) {
    // Loop counter in a register: a corrupted value rewinds (-> watchdog
    // hang) or fast-forwards (-> starved search) the hypothesis loop.
    iter = static_cast<int>(rt::ctrl(iter));
    if (iter < 0) continue;  // rewound: keep iterating
    const auto indices =
        sampler.sample_without_replacement(pairs.size(), params.sample_size);
    for (std::size_t i = 0; i < params.sample_size; ++i) {
      sample[i] = pairs[indices[i]];
    }
    // HAFT-style selective replication (hardened runs only): the model fit
    // reads its inputs through FPR fault sites, so a register strike here is
    // the canonical silent-geometry-corruption path.  Dual execution turns
    // it into a detected (and frame-retriable) error.
    const auto model = resil::replicated(
        pipeline::stage_id::estimate,
        [&] { return estimator(sample); },
        [](const std::optional<mat3>& a, const std::optional<mat3>& b) {
          return bits_equal(a, b);
        });
    rt::account(rt::op::int_alu, 6 * params.sample_size);
    if (!model) continue;

    struct score_result {
      std::vector<bool> mask;
      std::size_t inliers = 0;
    };
    // Scoring too: every reprojection error flows through f64 fault sites,
    // and a corrupted score silently mis-ranks hypotheses.
    auto scored = resil::replicated(
        pipeline::stage_id::estimate,
        [&] {
          score_result s;
          s.mask.assign(pairs.size(), false);
          for (std::size_t i = 0; i < pairs.size(); ++i) {
            const bool in = error(*model, pairs[i]) <= params.inlier_threshold;
            s.mask[i] = in;
            s.inliers += in ? 1u : 0u;
          }
          rt::account(rt::op::branch, pairs.size());
          return s;
        },
        [](const score_result& a, const score_result& b) {
          return a.inliers == b.inliers && a.mask == b.mask;
        });
    const std::size_t inliers = scored.inliers;

    if (inliers > best.inlier_count) {
      best.inlier_count = inliers;
      best.model = *model;
      best.inlier_mask = std::move(scored.mask);
      const double ratio =
          static_cast<double>(inliers) / static_cast<double>(pairs.size());
      limit = std::min(
          limit, iter + 1 + adaptive_iterations(params.confidence, ratio,
                                                params.sample_size,
                                                params.max_iterations));
    }
  }
  best.iterations_run = iter;

  if (best.inlier_count < params.min_inliers) return std::nullopt;
  return best;
}

namespace {

std::optional<ransac_result> refit_on_inliers(
    std::span<const point_pair> pairs, ransac_result result,
    const std::function<std::optional<mat3>(std::span<const point_pair>)>&
        estimator) {
  std::vector<point_pair> inliers;
  inliers.reserve(result.inlier_count);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (result.inlier_mask[i]) inliers.push_back(pairs[i]);
  }
  const auto refined = resil::replicated(
      pipeline::stage_id::estimate,
      [&] { return estimator(inliers); },
      [](const std::optional<mat3>& a, const std::optional<mat3>& b) {
        return bits_equal(a, b);
      });
  if (refined) result.model = *refined;
  return result;
}

}  // namespace

std::optional<ransac_result> ransac_homography(std::span<const point_pair> pairs,
                                               const ransac_params& params,
                                               std::uint64_t seed) {
  ransac_params p = params;
  p.sample_size = homography_min_pairs;
  auto estimator = [](std::span<const point_pair> s) {
    return estimate_homography(s);
  };
  auto error = [](const mat3& m, const point_pair& pair) {
    return reprojection_error(m, pair);
  };
  auto result = ransac_fit(pairs, p, estimator, error, seed);
  if (!result) return std::nullopt;
  return refit_on_inliers(pairs, std::move(*result), estimator);
}

std::optional<ransac_result> ransac_affine(std::span<const point_pair> pairs,
                                           const ransac_params& params,
                                           std::uint64_t seed) {
  ransac_params p = params;
  p.sample_size = affine_min_pairs;
  auto estimator = [](std::span<const point_pair> s) {
    return estimate_affine(s);
  };
  auto error = [](const mat3& m, const point_pair& pair) {
    return reprojection_error(m, pair);
  };
  auto result = ransac_fit(pairs, p, estimator, error, seed);
  if (!result) return std::nullopt;
  return refit_on_inliers(pairs, std::move(*result), estimator);
}

}  // namespace vs::geo
