// Client side of the summarization service (`vs submit`).
//
// One connection per request, mirroring the server: connect, handshake,
// submit one clip job, then consume the streamed response — each
// mini-panorama as the server closes it, then the final montage — through
// an optional callback.  The returned submit_outcome holds everything a
// caller needs to reproduce the one-shot `vs summarize` behaviour
// byte-for-byte: the montage in `complete->montage` is the same image
// summarize() returns in summary_result::panorama.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace vs::serve {

/// Everything one submission produced.  Exactly one of `accepted` /
/// `rejected` is set; when accepted, exactly one of `complete` / `failed`
/// is set (unless the connection died mid-stream, which surfaces as an
/// io_error from submit()).
struct submit_outcome {
  std::optional<job_accepted> accepted;
  std::optional<job_rejected> rejected;
  std::optional<job_complete> complete;
  std::optional<job_failed> failed;
  std::vector<panorama_msg> panoramas;  ///< streamed minis, index order
};

class client {
 public:
  /// `receive_timeout_s` bounds each wait for server bytes (0 = forever).
  explicit client(std::string socket_path, double receive_timeout_s = 0.0);

  /// Submits one job and consumes the whole response stream.  `on_panorama`
  /// (optional) fires per streamed mini-panorama, before submit() returns —
  /// the streaming hook `vs submit` uses to write partial summaries as
  /// they land.  Throws io_error when the socket cannot be reached or the
  /// server vanishes mid-stream.
  [[nodiscard]] submit_outcome submit(
      const job_request& request,
      const std::function<void(const panorama_msg&)>& on_panorama = {});

  /// Fetches the server's live stats snapshot.  Throws io_error on
  /// connection failure or a garbled reply.
  [[nodiscard]] stats_reply stats();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }

 private:
  [[nodiscard]] int connect_and_hello();

  std::string socket_path_;
  double receive_timeout_s_;
};

}  // namespace vs::serve
