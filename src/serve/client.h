// Client side of the summarization service (`vs submit`).
//
// One connection per request, mirroring the server: connect, handshake,
// submit one clip job, then consume the streamed response — each
// mini-panorama as the server closes it, then the final montage — through
// an optional callback.  The returned submit_outcome holds everything a
// caller needs to reproduce the one-shot `vs summarize` behaviour
// byte-for-byte: the montage in `complete->montage` is the same image
// summarize() returns in summary_result::panorama.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/retry.h"
#include "serve/protocol.h"

namespace vs::serve {

/// Everything one submission produced.  Exactly one of `accepted` /
/// `rejected` is set; when accepted, exactly one of `complete` / `failed`
/// is set (unless the connection died mid-stream, which surfaces as an
/// io_error from submit()).
///
/// submit_resilient() relaxes the "exactly one" contract in one direction:
/// after exhausting its attempt budget it can return with NONE of
/// complete/failed/rejected set — the client-visible Lost outcome of the
/// serve-layer fault campaign (serve/campaign.h).
struct submit_outcome {
  std::optional<job_accepted> accepted;
  std::optional<job_rejected> rejected;
  std::optional<job_complete> complete;
  std::optional<job_failed> failed;
  std::vector<panorama_msg> panoramas;  ///< streamed minis, index order
  int attempts = 1;    ///< submissions tried (resilient path)
  int reconnects = 0;  ///< reconnects after a dead/unreachable server
};

/// Knobs for submit_resilient().  The backoff's max_attempts bounds total
/// submissions (connect failures and mid-stream deaths both consume one);
/// deterministic jitter keeps a reconnecting fleet from stampeding the
/// freshly respawned server.
struct resilient_policy {
  core::backoff_policy backoff;
  /// Sleep at least the server's queue-full retry_after hint, when given.
  bool honor_retry_after = true;
};

class client {
 public:
  /// `receive_timeout_s` bounds each wait for server bytes (0 = forever).
  explicit client(std::string socket_path, double receive_timeout_s = 0.0);

  /// Submits one job and consumes the whole response stream.  `on_panorama`
  /// (optional) fires per streamed mini-panorama, before submit() returns —
  /// the streaming hook `vs submit` uses to write partial summaries as
  /// they land.  Throws io_error when the socket cannot be reached or the
  /// server vanishes mid-stream.
  [[nodiscard]] submit_outcome submit(
      const job_request& request,
      const std::function<void(const panorama_msg&)>& on_panorama = {});

  /// Crash-tolerant submit: reconnect-with-backoff around submit(), keyed
  /// by a client-supplied idempotency id so a resubmission after a server
  /// crash adopts the journaled job instead of re-executing it
  /// (serve/server.h, "crash-only serving").  An empty request.client_key
  /// gets a process-unique one.  Retries connect failures, mid-stream
  /// deaths, and queue_full/draining rejections (sleeping the server's
  /// retry_after hint when longer than the backoff).  Minis already
  /// streamed on a previous attempt are not re-delivered to `on_panorama`.
  /// Returns the terminal outcome, or — attempts exhausted with no
  /// terminal reply — an outcome with neither complete, failed, nor
  /// rejected set: the job is Lost from this client's point of view.
  [[nodiscard]] submit_outcome submit_resilient(
      job_request request, const resilient_policy& policy = {},
      const std::function<void(const panorama_msg&)>& on_panorama = {});

  /// Fetches the server's live stats snapshot.  Throws io_error on
  /// connection failure or a garbled reply.
  [[nodiscard]] stats_reply stats();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return socket_path_;
  }

 private:
  [[nodiscard]] int connect_and_hello();

  std::string socket_path_;
  double receive_timeout_s_;
};

}  // namespace vs::serve
