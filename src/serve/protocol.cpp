#include "serve/protocol.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <limits>
#include <vector>

namespace vs::serve {

namespace {

// Latencies cross the wire as integer microseconds so parsing never touches
// floating point; 1 us of quantization is noise against millisecond jobs.
std::uint64_t ms_to_us(double ms) {
  if (ms <= 0.0) return 0;
  return static_cast<std::uint64_t>(ms * 1000.0 + 0.5);
}

double us_to_ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), " %llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

void append_image(std::string& out, const img::image_u8& image) {
  append_u64(out, static_cast<std::uint64_t>(image.width()));
  append_u64(out, static_cast<std::uint64_t>(image.height()));
  append_u64(out, static_cast<std::uint64_t>(image.channels()));
  out.push_back('\n');
  out.append(reinterpret_cast<const char*>(image.data()), image.size());
}

std::vector<std::string_view> split(std::string_view header) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < header.size()) {
    while (pos < header.size() && header[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < header.size() && header[end] != ' ') ++end;
    if (end > pos) tokens.push_back(header.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

std::optional<std::uint64_t> parse_u64(std::string_view token) {
  std::uint64_t value = 0;
  const auto* first = token.data();
  const auto* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64_max(std::string_view token,
                                           std::uint64_t max) {
  const auto v = parse_u64(token);
  if (!v || *v > max) return std::nullopt;
  return v;
}

std::optional<int> parse_int(std::string_view token) {
  const auto v = parse_u64_max(
      token, static_cast<std::uint64_t>(std::numeric_limits<int>::max()));
  if (!v) return std::nullopt;
  return static_cast<int>(*v);
}

// Splits an image-bearing payload at the first '\n': header tokens before,
// raw pixels after.  The pixel byte count must equal w*h*c exactly.
struct image_payload {
  std::vector<std::string_view> tokens;
  std::string_view pixels;
};

std::optional<image_payload> split_image_payload(std::string_view payload) {
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) return std::nullopt;
  image_payload out;
  out.tokens = split(payload.substr(0, nl));
  out.pixels = payload.substr(nl + 1);
  return out;
}

// Reconstructs an image from (w, h, c) tokens + pixel bytes.  Dimensions
// are bounded by the frame payload cap, so a garbled header can't trigger
// a giant allocation before the byte-count cross-check rejects it.
std::optional<img::image_u8> parse_image(std::string_view w_tok,
                                         std::string_view h_tok,
                                         std::string_view c_tok,
                                         std::string_view pixels) {
  const auto w = parse_u64_max(w_tok, kMaxFramePayload);
  const auto h = parse_u64_max(h_tok, kMaxFramePayload);
  const auto c = parse_u64_max(c_tok, 3);
  // basic_image only models 1- and 3-channel layouts (its ctor throws on
  // anything else; parsers never throw).
  if (!w || !h || !c || (*c != 1 && *c != 3)) return std::nullopt;
  const std::uint64_t expected = *w * *h * *c;
  if (expected != pixels.size()) return std::nullopt;
  if (*w == 0 || *h == 0) {
    if (expected != 0) return std::nullopt;
    return img::image_u8();
  }
  img::image_u8 image(static_cast<int>(*w), static_cast<int>(*h),
                      static_cast<int>(*c));
  std::copy(pixels.begin(), pixels.end(),
            reinterpret_cast<char*>(image.data()));
  return image;
}

std::string sanitize_token(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back((c == ' ' || c == '\n' || c == '\r') ? '_' : c);
  }
  if (out.empty()) out.push_back('_');
  return out;
}

}  // namespace

std::vector<std::string_view> split_fields(std::string_view header) {
  return split(header);
}

const char* priority_name(priority_class p) noexcept {
  return p == priority_class::interactive ? "interactive" : "batch";
}

const char* reject_reason_name(reject_reason r) noexcept {
  switch (r) {
    case reject_reason::queue_full: return "queue_full";
    case reject_reason::draining: return "draining";
    case reject_reason::bad_request: return "bad_request";
    case reject_reason::version: return "version";
  }
  return "unknown";
}

std::string encode_hello(const hello_msg& m) {
  std::string p = "H";
  append_u64(p, m.version);
  return encode_frame(static_cast<std::uint16_t>(msg_type::hello), p);
}

std::string encode_submit(const job_request& m) {
  std::string p = "J";
  p += request_fields_payload(m);
  return encode_frame(static_cast<std::uint16_t>(msg_type::submit), p);
}

std::string request_fields_payload(const job_request& m) {
  std::string p;
  append_u64(p, static_cast<std::uint64_t>(m.input));
  append_u64(p, static_cast<std::uint64_t>(m.alg));
  append_u64(p, static_cast<std::uint64_t>(m.frames));
  append_u64(p, static_cast<std::uint64_t>(m.hardening));
  append_u64(p, static_cast<std::uint64_t>(m.priority));
  append_u64(p, m.deadline_ms);
  append_u64(p, m.max_threads);
  p.push_back(' ');
  p += m.client_key.empty()
           ? "-"
           : sanitize_token(m.client_key.substr(0, kMaxClientKey));
  append_u64(p, m.fault.armed ? 1 : 0);
  append_u64(p, static_cast<std::uint64_t>(m.fault.cls));
  append_u64(p, m.fault.target);
  append_u64(p, m.fault.bit);
  append_u64(p, m.fault.step_budget);
  return p;
}

std::optional<job_request> parse_request_fields(
    const std::vector<std::string_view>& tokens) {
  // Legacy 7-field requests (pre-crash-only clients) parse with an empty
  // key and no armed fault; current requests carry 13 fields.
  if (tokens.size() != 7 && tokens.size() != 13) return std::nullopt;
  const auto input = parse_u64_max(tokens[0], 2);
  const auto alg = parse_u64_max(
      tokens[1], static_cast<std::uint64_t>(app::algorithm::vs_sm));
  const auto frames = parse_int(tokens[2]);
  const auto hardening = parse_u64_max(
      tokens[3], static_cast<std::uint64_t>(resil::hardening_level::full));
  const auto priority = parse_u64_max(tokens[4], 1);
  const auto deadline = parse_u64(tokens[5]);
  const auto threads = parse_u64_max(tokens[6], 256);
  if (!input || !alg || !frames || !hardening || !priority || !deadline ||
      !threads) {
    return std::nullopt;
  }
  job_request m;
  m.input = static_cast<video::input_id>(*input);
  m.alg = static_cast<app::algorithm>(*alg);
  m.frames = *frames;
  m.hardening = static_cast<resil::hardening_level>(*hardening);
  m.priority = static_cast<priority_class>(*priority);
  m.deadline_ms = *deadline;
  m.max_threads = static_cast<unsigned>(*threads);
  if (tokens.size() == 7) return m;
  if (tokens[7].size() > kMaxClientKey) return std::nullopt;
  if (tokens[7] != "-") m.client_key = std::string(tokens[7]);
  const auto armed = parse_u64_max(tokens[8], 1);
  const auto cls = parse_u64_max(tokens[9], rt::reg_class_count - 1);
  const auto target = parse_u64(tokens[10]);
  const auto bit = parse_u64_max(tokens[11], 63);
  const auto budget = parse_u64(tokens[12]);
  if (!armed || !cls || !target || !bit || !budget) return std::nullopt;
  m.fault.armed = *armed == 1;
  m.fault.cls = static_cast<rt::reg_class>(*cls);
  m.fault.target = *target;
  m.fault.bit = static_cast<std::uint32_t>(*bit);
  m.fault.step_budget = *budget;
  return m;
}

std::string encode_accepted(const job_accepted& m) {
  std::string p = "A";
  append_u64(p, m.job_id);
  append_u64(p, m.queue_depth);
  return encode_frame(static_cast<std::uint16_t>(msg_type::accepted), p);
}

std::string encode_rejected(const job_rejected& m) {
  std::string p = "R";
  append_u64(p, static_cast<std::uint64_t>(m.reason));
  append_u64(p, m.retry_after_ms);
  append_u64(p, m.queue_depth);
  return encode_frame(static_cast<std::uint16_t>(msg_type::rejected), p);
}

std::string encode_panorama(const panorama_msg& m) {
  return encode_panorama(m.job_id, m.index, m.image);
}

std::string encode_panorama(std::uint64_t job_id, int index,
                            const img::image_u8& image) {
  std::string p = "P";
  append_u64(p, job_id);
  append_u64(p, static_cast<std::uint64_t>(index));
  append_image(p, image);
  return encode_frame(static_cast<std::uint16_t>(msg_type::panorama), p);
}

std::string encode_complete(const job_complete& m) {
  std::string p = "C";
  append_u64(p, m.job_id);
  append_u64(p, static_cast<std::uint64_t>(m.stats.frames_total));
  append_u64(p, static_cast<std::uint64_t>(m.stats.frames_dropped_rfd));
  append_u64(p, static_cast<std::uint64_t>(m.stats.frames_stitched));
  append_u64(p, static_cast<std::uint64_t>(m.stats.frames_discarded));
  append_u64(p, static_cast<std::uint64_t>(m.stats.homography_alignments));
  append_u64(p, static_cast<std::uint64_t>(m.stats.affine_alignments));
  append_u64(p, static_cast<std::uint64_t>(m.stats.mini_panoramas));
  append_u64(p, m.stats.keypoints_detected);
  append_u64(p, m.stats.keypoints_matched_on);
  append_u64(p, m.stats.total_matches);
  append_u64(p, m.detections);
  append_u64(p, m.retries);
  append_u64(p, m.frames_degraded);
  append_u64(p, m.wall_us);
  append_u64(p, m.panorama_hash);
  append_image(p, m.montage);
  return encode_frame(static_cast<std::uint16_t>(msg_type::complete), p);
}

std::string encode_failed(const job_failed& m) {
  std::string p = "F";
  append_u64(p, m.job_id);
  append_u64(p, static_cast<std::uint64_t>(m.failure));
  p.push_back(' ');
  p += sanitize_token(m.message);
  return encode_frame(static_cast<std::uint16_t>(msg_type::failed), p);
}

std::string encode_stats_request() {
  return encode_frame(static_cast<std::uint16_t>(msg_type::stats_request),
                      "Q");
}

std::string encode_stats_reply(const stats_reply& m) {
  std::string p = "S";
  append_u64(p, m.queue_depth);
  append_u64(p, m.in_flight);
  append_u64(p, m.completed);
  append_u64(p, m.rejected);
  append_u64(p, m.failed);
  append_u64(p, m.draining ? 1 : 0);
  append_u64(p, m.pool_budget);
  append_u64(p, m.pool_in_use);
  append_u64(p, m.pool_peak_in_use);
  append_u64(p, m.restarts);
  append_u64(p, m.journal_depth);
  append_u64(p, m.replayed);
  append_u64(p, static_cast<std::uint64_t>(m.latency.count));
  append_u64(p, ms_to_us(m.latency.mean_ms));
  append_u64(p, ms_to_us(m.latency.p50_ms));
  append_u64(p, ms_to_us(m.latency.p90_ms));
  append_u64(p, ms_to_us(m.latency.p95_ms));
  append_u64(p, ms_to_us(m.latency.p99_ms));
  append_u64(p, ms_to_us(m.latency.max_ms));
  return encode_frame(static_cast<std::uint16_t>(msg_type::stats_reply), p);
}

std::optional<hello_msg> parse_hello(std::string_view payload) {
  const auto tokens = split(payload);
  if (tokens.size() != 2 || tokens[0] != "H") return std::nullopt;
  const auto version = parse_u64_max(
      tokens[1], std::numeric_limits<std::uint32_t>::max());
  if (!version) return std::nullopt;
  hello_msg m;
  m.version = static_cast<std::uint32_t>(*version);
  return m;
}

std::optional<job_request> parse_submit(std::string_view payload) {
  auto tokens = split(payload);
  if (tokens.empty() || tokens[0] != "J") return std::nullopt;
  tokens.erase(tokens.begin());
  return parse_request_fields(tokens);
}

std::optional<job_accepted> parse_accepted(std::string_view payload) {
  const auto tokens = split(payload);
  if (tokens.size() != 3 || tokens[0] != "A") return std::nullopt;
  const auto id = parse_u64(tokens[1]);
  const auto depth = parse_u64(tokens[2]);
  if (!id || !depth) return std::nullopt;
  return job_accepted{*id, *depth};
}

std::optional<job_rejected> parse_rejected(std::string_view payload) {
  const auto tokens = split(payload);
  if (tokens.size() != 4 || tokens[0] != "R") return std::nullopt;
  const auto reason = parse_u64_max(
      tokens[1], static_cast<std::uint64_t>(reject_reason::version));
  const auto retry = parse_u64(tokens[2]);
  const auto depth = parse_u64(tokens[3]);
  if (!reason || !retry || !depth) return std::nullopt;
  job_rejected m;
  m.reason = static_cast<reject_reason>(*reason);
  m.retry_after_ms = *retry;
  m.queue_depth = *depth;
  return m;
}

std::optional<panorama_msg> parse_panorama(std::string_view payload) {
  const auto parts = split_image_payload(payload);
  if (!parts || parts->tokens.size() != 6 || parts->tokens[0] != "P") {
    return std::nullopt;
  }
  const auto id = parse_u64(parts->tokens[1]);
  const auto index = parse_int(parts->tokens[2]);
  if (!id || !index) return std::nullopt;
  auto image = parse_image(parts->tokens[3], parts->tokens[4],
                           parts->tokens[5], parts->pixels);
  if (!image) return std::nullopt;
  panorama_msg m;
  m.job_id = *id;
  m.index = *index;
  m.image = std::move(*image);
  return m;
}

std::optional<job_complete> parse_complete(std::string_view payload) {
  const auto parts = split_image_payload(payload);
  if (!parts || parts->tokens.size() != 20 || parts->tokens[0] != "C") {
    return std::nullopt;
  }
  const auto& t = parts->tokens;
  const auto id = parse_u64(t[1]);
  const auto frames_total = parse_int(t[2]);
  const auto dropped = parse_int(t[3]);
  const auto stitched = parse_int(t[4]);
  const auto discarded = parse_int(t[5]);
  const auto homography = parse_int(t[6]);
  const auto affine = parse_int(t[7]);
  const auto minis = parse_int(t[8]);
  const auto kp_detected = parse_u64(t[9]);
  const auto kp_matched = parse_u64(t[10]);
  const auto matches = parse_u64(t[11]);
  const auto detections = parse_u64_max(
      t[12], std::numeric_limits<std::uint32_t>::max());
  const auto retries = parse_u64_max(
      t[13], std::numeric_limits<std::uint32_t>::max());
  const auto degraded = parse_u64_max(
      t[14], std::numeric_limits<std::uint32_t>::max());
  const auto wall = parse_u64(t[15]);
  const auto hash = parse_u64(t[16]);
  if (!id || !frames_total || !dropped || !stitched || !discarded ||
      !homography || !affine || !minis || !kp_detected || !kp_matched ||
      !matches || !detections || !retries || !degraded || !wall || !hash) {
    return std::nullopt;
  }
  auto montage = parse_image(t[17], t[18], t[19], parts->pixels);
  if (!montage) return std::nullopt;
  job_complete m;
  m.job_id = *id;
  m.stats.frames_total = *frames_total;
  m.stats.frames_dropped_rfd = *dropped;
  m.stats.frames_stitched = *stitched;
  m.stats.frames_discarded = *discarded;
  m.stats.homography_alignments = *homography;
  m.stats.affine_alignments = *affine;
  m.stats.mini_panoramas = *minis;
  m.stats.keypoints_detected = *kp_detected;
  m.stats.keypoints_matched_on = *kp_matched;
  m.stats.total_matches = *matches;
  m.detections = static_cast<std::uint32_t>(*detections);
  m.retries = static_cast<std::uint32_t>(*retries);
  m.frames_degraded = static_cast<std::uint32_t>(*degraded);
  m.wall_us = *wall;
  m.panorama_hash = *hash;
  m.montage = std::move(*montage);
  return m;
}

std::optional<job_failed> parse_failed(std::string_view payload) {
  const auto tokens = split(payload);
  if (tokens.size() != 4 || tokens[0] != "F") return std::nullopt;
  const auto id = parse_u64(tokens[1]);
  const auto failure = parse_u64_max(
      tokens[2], static_cast<std::uint64_t>(fault::outcome::detected_degraded));
  if (!id || !failure) return std::nullopt;
  job_failed m;
  m.job_id = *id;
  m.failure = static_cast<fault::outcome>(*failure);
  m.message = std::string(tokens[3]);
  return m;
}

std::optional<stats_reply> parse_stats_reply(std::string_view payload) {
  const auto tokens = split(payload);
  if (tokens.size() != 20 || tokens[0] != "S") return std::nullopt;
  std::uint64_t v[19];
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const auto parsed = parse_u64(tokens[i]);
    if (!parsed) return std::nullopt;
    v[i - 1] = *parsed;
  }
  if (v[5] > 1) return std::nullopt;
  stats_reply m;
  m.queue_depth = v[0];
  m.in_flight = v[1];
  m.completed = v[2];
  m.rejected = v[3];
  m.failed = v[4];
  m.draining = v[5] == 1;
  m.pool_budget = v[6];
  m.pool_in_use = v[7];
  m.pool_peak_in_use = v[8];
  m.restarts = v[9];
  m.journal_depth = v[10];
  m.replayed = v[11];
  m.latency.count = static_cast<std::size_t>(v[12]);
  m.latency.mean_ms = us_to_ms(v[13]);
  m.latency.p50_ms = us_to_ms(v[14]);
  m.latency.p90_ms = us_to_ms(v[15]);
  m.latency.p95_ms = us_to_ms(v[16]);
  m.latency.p99_ms = us_to_ms(v[17]);
  m.latency.max_ms = us_to_ms(v[18]);
  return m;
}

}  // namespace vs::serve
