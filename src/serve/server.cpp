#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "core/error.h"
#include "core/log.h"
#include "fault/wire.h"
#include "supervise/fork_runner.h"
#include "video/generator.h"

namespace vs::serve {

namespace {

/// How many settled idempotency keys stay resolvable after completion: a
/// duplicate submit inside this window replays the buffered result stream
/// instead of re-executing.  Older keys fall off and a late duplicate
/// re-executes — harmless, because the pipeline is deterministic and the
/// journal dedupes by server id, not key.
constexpr std::size_t kCompletedCacheCap = 32;

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// EINTR-safe full send.  MSG_NOSIGNAL: a vanished client must surface as
/// EPIPE, not take the server down with SIGPIPE.  Returns false once the
/// peer is gone — the job keeps running (results still count in stats and
/// the report log), only the streaming stops.
bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void set_recv_timeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

fault::outcome outcome_of(const std::exception& e) {
  if (const auto* crash = dynamic_cast<const crash_error*>(&e)) {
    return crash->kind() == crash_kind::segfault
               ? fault::outcome::crash_segfault
               : fault::outcome::crash_abort;
  }
  if (dynamic_cast<const hang_error*>(&e) != nullptr) {
    return fault::outcome::hang;
  }
  return fault::outcome::crash_abort;
}

/// The pipeline run shared by both execution modes: byte-identical to
/// `vs summarize` because the config is built the same way (defaults plus
/// the requested variant/hardening), the leased pool only changes *who*
/// computes each fixed chunk, and the batched prefetch is consumed in
/// stitch order (scheduler tickets are per-frame promises, so which
/// dispatch produced a frame never shows in the bytes).  With batching on,
/// `scheduler` is the server's shared cross-job queue set and `lookahead`
/// frames per job ride it; with batching off both drop to the strictly
/// inline pre-batching shape where every live thread is a leased slot.
app::summary_result run_job_pipeline(
    const job_request& request, core::thread_pool& pool,
    const std::function<void(int, const img::image_u8&)>& on_mini,
    pipeline::stage_scheduler* scheduler, int lookahead, int batch) {
  const auto source = video::make_input(request.input, request.frames);
  app::pipeline_config config;
  config.approx.alg = request.alg;
  config.hardening.level = request.hardening;
  config.frames_in_flight = batch == pipeline::kBatchOff ? 0 : lookahead;
  config.batch = batch;
  config.scheduler = scheduler;
  config.on_mini_panorama = on_mini;
  // Serve-layer fault campaign: arm the journaled injection plan around
  // exactly this job's pipeline run, the same RAII shape the offline
  // campaign uses (fault/campaign.cpp).  Because the plan fields ride the
  // submit frame and the admission journal, a replay after a server crash
  // re-fires the same bit at the same dynamic op.
  std::optional<rt::session> armed;
  if (request.fault.armed) {
    rt::fault_plan plan;
    plan.cls = request.fault.cls;
    plan.target = request.fault.target;
    plan.bit = request.fault.bit;
    armed.emplace(plan, request.fault.step_budget > 0
                            ? request.fault.step_budget
                            : ~0ULL);
  }
  const core::pool_scope scope(pool);
  return app::summarize(*source, config);
}

job_complete make_complete(std::uint64_t job_id,
                           const app::summary_result& result,
                           std::uint64_t wall_us) {
  job_complete c;
  c.job_id = job_id;
  c.stats = result.stats;
  c.detections = result.recovery.faults_detected();
  c.retries = result.recovery.retries;
  c.frames_degraded = result.recovery.frames_degraded;
  c.wall_us = wall_us;
  c.panorama_hash = fault::wire::hash_image(result.panorama);
  c.montage = result.panorama;
  return c;
}

/// De-duplicating mini-panorama relay: under hardening a frame retry can
/// replay a close after state restore, so only monotonically increasing
/// indices leave the server.
class mini_streamer {
 public:
  mini_streamer(std::function<void(const std::string&)> emit,
                std::uint64_t job_id)
      : emit_(std::move(emit)), job_id_(job_id) {}

  void operator()(int index, const img::image_u8& panorama) {
    if (index <= last_) return;
    last_ = index;
    emit_(encode_panorama(job_id_, index, panorama));
  }

 private:
  std::function<void(const std::string&)> emit_;
  std::uint64_t job_id_;
  int last_ = -1;
};

}  // namespace

struct job_sink {
  std::mutex mutex;
  std::uint64_t job_id = 0;
  int fd = -1;  ///< attached client connection; -1 = detached (orphan)
  /// Every frame this job ever emitted, accept first, in send order —
  /// the replay source for an adopting duplicate submit.
  std::vector<std::string> frames;
  bool settled = false;  ///< final complete/failed frame already emitted

  ~job_sink() {
    if (fd >= 0) ::close(fd);
  }

  /// Buffers the frame and mirrors it to the attached connection.  A dead
  /// peer detaches the sink; the job keeps running and the buffer keeps
  /// growing so a later adoption still gets the full stream.
  void emit(const std::string& frame_bytes) {
    const std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(frame_bytes);
    if (fd >= 0 && !send_all(fd, frame_bytes)) {
      ::close(fd);
      fd = -1;
    }
  }

  /// Attaches a (re)submitting client: replaces any previous connection
  /// and replays the entire buffered stream.  For a settled job that is
  /// the complete response; for a live one the connection then receives
  /// every future emit.
  void adopt(int new_fd) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    for (const auto& frame_bytes : frames) {
      if (!send_all(new_fd, frame_bytes)) {
        ::close(new_fd);
        return;
      }
    }
    if (settled) {
      ::close(new_fd);
      return;
    }
    fd = new_fd;
  }

  /// Marks the stream complete and hangs up.  Called after the final
  /// complete/failed frame went through emit().
  void finalize() {
    const std::lock_guard<std::mutex> lock(mutex);
    settled = true;
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

server::server(server_config config)
    : config_(std::move(config)), arbiter_(config_.pool_budget) {
  config_.runners = std::max(1, config_.runners);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.lookahead = std::max(0, config_.lookahead);
  resolved_batch_ = pipeline::resolve_batch(config_.batch);
  if (config_.lookahead == 0) resolved_batch_ = pipeline::kBatchOff;
}

server::~server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  // Runner threads must already be joined (run() joins them); a server
  // destroyed without run() only has idle runners blocked on the cv.
  if (!runners_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      draining_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : runners_) {
      if (t.joinable()) t.join();
    }
  }
}

void server::start() {
  // Bind under a temporary name and rename() into place only after
  // listen() succeeds: the advertised path then appears already-listening,
  // so a client that sees the socket file can never land in the
  // bind-to-listen window and take a spurious ECONNREFUSED.
  const std::string staging = config_.socket_path + ".tmp";
  sockaddr_un addr{};
  if (config_.socket_path.empty() ||
      staging.size() >= sizeof(addr.sun_path)) {
    throw io_error("serve: socket path empty or too long for sun_path: " +
                   config_.socket_path);
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw io_error("serve: socket() failed: " +
                   std::string(std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, staging.c_str(), staging.size() + 1);
  (void)::unlink(staging.c_str());  // stale socket from a crash
  (void)::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0 ||
      ::rename(staging.c_str(), config_.socket_path.c_str()) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    (void)::unlink(staging.c_str());
    throw io_error("serve: cannot listen on " + config_.socket_path + ": " +
                   why);
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw io_error("serve: pipe() failed: " +
                   std::string(std::strerror(errno)));
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  (void)::fcntl(wake_rd_, F_SETFD, FD_CLOEXEC);
  (void)::fcntl(wake_wr_, F_SETFD, FD_CLOEXEC);
  // The accept loop drains the wake pipe after poll(); non-blocking so the
  // drain read can't wedge the loop once the pipe is empty.
  (void)::fcntl(wake_rd_, F_SETFL, O_NONBLOCK);

  if (!config_.report_path.empty()) {
    report_.open(config_.report_path,
                 "job_id,input,algorithm,frames,hardening,priority,outcome,"
                 "wall_ms");
  }

  // Crash-only serving: compact the admission journal down to its
  // unfinished tail, re-enqueue that tail as detached jobs (their clients
  // re-attach by idempotency key), and keep the journal open for this
  // boot's A/D/G appends.  Runs before the runner threads exist, so the
  // replayed queue is complete before anything executes.
  if (!config_.journal_path.empty()) {
    const std::vector<journaled_job> replay =
        compact_job_journal(config_.journal_path, "serve");
    journal_.open(config_.journal_path, /*truncate=*/false);
    const std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& entry : replay) {
      next_job_id_ = std::max(next_job_id_, entry.id + 1);
      (void)enqueue_locked(entry.id, entry.request, -1);
    }
    replayed_ = replay.size();
    journal_depth_ = replay.size();
    if (!replay.empty()) {
      log::info("serve: replayed " + std::to_string(replay.size()) +
                " unfinished job(s) from " + config_.journal_path);
    }
  }

  // Cross-job stage batching: every in-process job feeds the same per-stage
  // queues, so frames from different admitted clips coalesce into single
  // pool dispatches.  Batches lease dispatch width from the same arbiter the
  // runners lease job width from — non-blocking, so scheduler progress never
  // depends on a runner releasing its lease.  Isolate mode skips the shared
  // scheduler (jobs run in forked children, which own private ones).
  if (resolved_batch_ != pipeline::kBatchOff && !config_.isolate) {
    pipeline::stage_scheduler::options opt;
    opt.batch = resolved_batch_;
    opt.arbiter = &arbiter_;
    scheduler_ = std::make_unique<pipeline::stage_scheduler>(opt);
  }

  for (int i = 0; i < config_.runners; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }

  log::info("serve: listening on " + config_.socket_path + " (" +
                  std::to_string(config_.runners) + " runners, budget " +
                  std::to_string(arbiter_.budget()) + " slots" +
                  (config_.isolate ? ", isolated" : "") + ", batch " +
                  pipeline::batch_name(resolved_batch_) + ")");
}

void server::request_drain() noexcept {
  // Only async-signal-safe calls here: this runs inside SIGTERM handlers.
  if (wake_wr_ >= 0) {
    const char byte = 'd';
    ssize_t n;
    do {
      n = ::write(wake_wr_, &byte, 1);
    } while (n < 0 && errno == EINTR);
  }
}

void server::run() {
  for (;;) {
    // Heartbeat hook: the supervisor shell (serve/respawn.h) pulses its
    // liveness line from here, so a wedged accept loop reads as a stall.
    if (config_.on_tick) config_.on_tick();
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_rd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, 100);
    if (ready < 0 && errno != EINTR) break;

    if (ready > 0 && (fds[1].revents & POLLIN) != 0) {
      char sink[16];
      while (::read(wake_rd_, sink, sizeof(sink)) > 0) {
      }
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        if (!draining_) {
          draining_ = true;
          log::info("serve: drain requested — finishing " +
                          std::to_string(in_flight_ + interactive_.size() +
                                         batch_.size()) +
                          " accepted job(s), rejecting new work");
        }
      }
      work_cv_.notify_all();
    }

    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) handle_connection(fd);
    }

    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      if (draining_ && interactive_.empty() && batch_.empty() &&
          in_flight_ == 0) {
        break;
      }
    }
  }

  work_cv_.notify_all();
  for (auto& t : runners_) {
    if (t.joinable()) t.join();
  }
  runners_.clear();
  // Unlink before closing: once the path is gone no new connect can start,
  // and a final non-blocking sweep politely rejects the clients already
  // queued in the listen backlog instead of leaving them to take an RST
  // when the fd closes.
  (void)::unlink(config_.socket_path.c_str());
  (void)::fcntl(listen_fd_, F_SETFL, O_NONBLOCK);
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    handle_connection(fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::uint64_t deferred = 0;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    deferred = deferred_;
  }
  log::info("serve: drained, socket closed" +
            (deferred > 0 ? " (" + std::to_string(deferred) +
                                " rejected job(s) deferred to journal)"
                          : std::string()));
}

void server::handle_connection(int fd) {
  set_recv_timeout(fd, config_.handshake_timeout_s);
  frame_decoder decoder;
  bool fd_owned = true;
  char buf[4096];

  while (fd_owned) {
    std::optional<frame> f = decoder.next();
    if (!f) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // EOF, timeout, or error: drop the connection
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }

    switch (static_cast<msg_type>(f->type)) {
      case msg_type::hello: {
        const auto hello = parse_hello(f->payload);
        if (!hello || hello->version != kProtocolVersion) {
          job_rejected r;
          r.reason = reject_reason::version;
          (void)send_all(fd, encode_rejected(r));
          fd_owned = false;  // terminal: close below
          ::close(fd);
          return;
        }
        (void)send_all(fd, encode_hello(hello_msg{}));
        continue;  // await the actual request
      }
      case msg_type::stats_request: {
        (void)send_all(fd, encode_stats_reply(stats()));
        ::close(fd);
        return;
      }
      case msg_type::submit: {
        const auto request = parse_submit(f->payload);
        if (!request) {
          job_rejected r;
          r.reason = reject_reason::bad_request;
          (void)send_all(fd, encode_rejected(r));
          ::close(fd);
          return;
        }
        admit_or_reject(fd, *request, fd_owned);
        if (fd_owned) ::close(fd);
        return;
      }
      default:
        // A frame we validated but don't speak: protocol confusion, drop.
        ::close(fd);
        return;
    }
  }
  ::close(fd);
}

std::uint64_t server::retry_after_ms_locked() const {
  // Backpressure hint: how long until a queue slot should free up, from
  // observed SERVICE time (a cold server guesses 250 ms).  Using total
  // latency here was the 16-client collapse: total includes the queue wait,
  // so the deeper the backlog the longer rejected clients were told to stay
  // away, and the server drained its queue and idled while every client
  // slept out an estimate inflated by the very congestion it measured.
  // Service time under concurrent runners already amortizes slot
  // contention, so queue-depth/runners waves of it approximate the drain.
  const auto snap = service_latency_.snapshot();
  const double per_job = snap.count > 0 ? snap.mean_ms : 250.0;
  const double waves =
      static_cast<double>(interactive_.size() + batch_.size() + 1) /
      static_cast<double>(config_.runners);
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(per_job * waves + 0.5));
}

server::pending_job server::enqueue_locked(std::uint64_t id,
                                           const job_request& request,
                                           int fd) {
  pending_job job;
  job.id = id;
  job.request = request;
  job.sink = std::make_shared<job_sink>();
  job.sink->job_id = id;
  job.sink->fd = fd;
  job.admitted = clock::now();
  const std::size_t depth = interactive_.size() + batch_.size();
  if (!request.client_key.empty()) by_key_[request.client_key] = job.sink;
  if (request.priority == priority_class::interactive) {
    interactive_.push_back(job);
  } else {
    batch_.push_back(job);
  }
  // The accept frame rides the sink like every other frame, so an
  // adopting duplicate submit replays a complete, well-formed stream.
  job_accepted accepted;
  accepted.job_id = id;
  accepted.queue_depth = depth;
  job.sink->emit(encode_accepted(accepted));
  return job;
}

void server::admit_or_reject(int fd, const job_request& request,
                             bool& fd_owned) {
  // Idempotent resubmission: a key we already know adopts the existing
  // job's buffered stream — never a second execution.  Checked before the
  // drain gate so a client chasing its pre-crash job can still collect
  // its result from a draining server.
  if (!request.client_key.empty()) {
    std::shared_ptr<job_sink> existing;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = by_key_.find(request.client_key);
      if (it != by_key_.end()) existing = it->second;
    }
    if (existing) {
      existing->adopt(fd);
      fd_owned = false;  // the sink owns the connection now
      return;
    }
  }

  job_rejected rejection;
  bool rejected = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    const std::size_t depth = interactive_.size() + batch_.size();
    if (draining_) {
      rejection.reason = reject_reason::draining;
      rejection.queue_depth = depth;
      rejected = true;
      ++rejected_;
      // Deferred, not dropped: the journal re-admits this submit on the
      // next boot, so a SIGTERM drain loses no offered work either.
      if (!config_.journal_path.empty()) {
        journal_.append(deferred_payload(request));
        ++deferred_;
      }
    } else if (depth >= config_.queue_capacity) {
      rejection.reason = reject_reason::queue_full;
      rejection.retry_after_ms = retry_after_ms_locked();
      rejection.queue_depth = depth;
      rejected = true;
      ++rejected_;
    } else {
      const std::uint64_t id = next_job_id_++;
      // Durability before acknowledgement: the A line is flushed to the
      // journal before the accept frame can reach the client, so every
      // accepted job survives any later crash.
      if (!config_.journal_path.empty()) {
        journal_.append(accepted_payload(id, request));
        ++journal_depth_;
      }
      (void)enqueue_locked(id, request, fd);
      fd_owned = false;  // the job's sink owns the connection now
    }
  }
  if (rejected) {
    (void)send_all(fd, encode_rejected(rejection));
    return;  // fd_owned stays true: caller closes
  }
  work_cv_.notify_one();
}

void server::runner_loop() {
  for (;;) {
    pending_job job;
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_cv_.wait(lock, [this] {
        return draining_ || !interactive_.empty() || !batch_.empty();
      });
      if (interactive_.empty() && batch_.empty()) {
        if (draining_) return;
        continue;
      }
      auto& queue = interactive_.empty() ? batch_ : interactive_;
      job = std::move(queue.front());
      queue.pop_front();
      ++in_flight_;
    }
    execute_job(std::move(job));
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      --in_flight_;
    }
  }
}

void server::execute_job(pending_job job) {
  const log::scoped_tag tag("job " + std::to_string(job.id));

  // A deadline that lapsed while the job sat in the queue maps to the Hang
  // taxonomy without spending any pool budget on it.
  if (job.request.deadline_ms > 0) {
    const double waited = ms_between(job.admitted, clock::now());
    if (waited >= static_cast<double>(job.request.deadline_ms)) {
      job_failed f;
      f.job_id = job.id;
      f.failure = fault::outcome::hang;
      f.message = "deadline_expired_in_queue";
      job.sink->emit(encode_failed(f));
      {
        const std::lock_guard<std::mutex> lock(state_mutex_);
        ++failed_;
      }
      settle(job, "hang", waited, /*completed=*/false, fault::outcome::hang,
             0);
      return;
    }
  }

  // Lease worker slots from the shared budget: a fair share of the budget
  // across the runner fleet, clamped by the client's own thread cap.  The
  // lease (not hardware concurrency) sizes every pool this job runs on.
  unsigned want = std::max(
      1u, arbiter_.budget() / static_cast<unsigned>(config_.runners));
  if (job.request.max_threads > 0) {
    want = std::min(want, job.request.max_threads);
  }
  core::pool_lease lease = arbiter_.acquire(1, want);

  if (config_.isolate) {
    run_isolated(job, lease);
  } else {
    run_in_process(job, lease);
  }
}

void server::run_in_process(const pending_job& job,
                            core::pool_lease& lease) {
  const auto t0 = clock::now();
  try {
    mini_streamer stream(
        [sink = job.sink](const std::string& frame_bytes) {
          sink->emit(frame_bytes);
        },
        job.id);
    const app::summary_result result =
        run_job_pipeline(job.request, lease.pool(), std::ref(stream),
                         scheduler_.get(), config_.lookahead,
                         resolved_batch_);
    const auto wall_us = static_cast<std::uint64_t>(
        ms_between(t0, clock::now()) * 1000.0);
    // Account the job before the final send: the moment the client reads
    // the complete frame, a follow-up stats request must already see it.
    const double total_ms = ms_between(job.admitted, clock::now());
    latency_.record(total_ms);
    service_latency_.record(ms_between(t0, clock::now()));
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      ++completed_;
    }
    const job_complete done = make_complete(job.id, result, wall_us);
    job.sink->emit(encode_complete(done));
    settle(job, "completed", total_ms, /*completed=*/true,
           fault::outcome::masked, done.panorama_hash);
  } catch (const std::exception& e) {
    job_failed f;
    f.job_id = job.id;
    f.failure = outcome_of(e);
    f.message = e.what();
    job.sink->emit(encode_failed(f));
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      ++failed_;
    }
    settle(job, fault::outcome_name(f.failure),
           ms_between(job.admitted, clock::now()), /*completed=*/false,
           f.failure, 0);
    log::warn(std::string("serve: job failed in-process: ") +
                    e.what());
  }
}

void server::run_isolated(const pending_job& job, core::pool_lease& lease) {
  // The forked child runs the pipeline on its own pool of the leased width
  // (the parent holds the lease while the child lives, so the budget still
  // bounds live workers host-wide) and streams result frames up the pipe;
  // the parent validates them through a frame_decoder and relays them to
  // the client.  The remaining deadline becomes the fork watchdog.
  double timeout_s = config_.job_timeout_s;
  if (job.request.deadline_ms > 0) {
    const double remaining_s =
        (static_cast<double>(job.request.deadline_ms) -
         ms_between(job.admitted, clock::now())) /
        1000.0;
    timeout_s = timeout_s > 0 ? std::min(timeout_s, remaining_s)
                              : remaining_s;
  }

  const job_request request = job.request;
  const std::uint64_t id = job.id;
  const unsigned width = std::max(1u, lease.width());
  // The forked worker owns a private scheduler on its own pool (batching
  // within the job); the parent's shared one cannot cross the process
  // boundary.
  const int lookahead = config_.lookahead;
  const int batch = resolved_batch_;

  frame_decoder decoder;
  bool saw_complete = false;
  bool saw_failed = false;
  std::uint64_t delivered_hash = 0;
  const auto t0 = clock::now();

  const supervise::fork_ending ending = supervise::run_forked(
      [request, id, width, lookahead, batch](int wfd) {
        try {
          core::thread_pool pool(width);
          mini_streamer stream(
              [wfd](const std::string& frame_bytes) {
                supervise::child_write(wfd, frame_bytes.data(),
                                       frame_bytes.size());
              },
              id);
          const auto child_t0 = clock::now();
          const app::summary_result result = run_job_pipeline(
              request, pool, std::ref(stream), nullptr, lookahead, batch);
          const auto wall_us = static_cast<std::uint64_t>(
              ms_between(child_t0, clock::now()) * 1000.0);
          const std::string done =
              encode_complete(make_complete(id, result, wall_us));
          supervise::child_write(wfd, done.data(), done.size());
          _exit(0);
        } catch (const std::exception& e) {
          job_failed f;
          f.job_id = id;
          f.failure = outcome_of(e);
          f.message = e.what();
          const std::string frame_bytes = encode_failed(f);
          supervise::child_write(wfd, frame_bytes.data(),
                                 frame_bytes.size());
          _exit(3);
        } catch (...) {
          _exit(3);
        }
      },
      timeout_s,
      [&](const char* data, std::size_t size) {
        decoder.feed(data, size);
        while (const auto f = decoder.next()) {
          if (f->type == static_cast<std::uint16_t>(msg_type::complete)) {
            saw_complete = true;
            if (const auto done = parse_complete(f->payload)) {
              delivered_hash = done->panorama_hash;
            }
            // Account before relaying: once the client reads this frame, a
            // follow-up stats request must already see the job completed.
            latency_.record(ms_between(job.admitted, clock::now()));
            service_latency_.record(ms_between(t0, clock::now()));
            const std::lock_guard<std::mutex> lock(state_mutex_);
            ++completed_;
          }
          if (f->type == static_cast<std::uint16_t>(msg_type::failed)) {
            saw_failed = true;
          }
          job.sink->emit(encode_frame(f->type, f->payload));
        }
      });

  const double total_ms = ms_between(job.admitted, clock::now());
  if (!saw_complete) {
    // The child never delivered a result: classify its death and tell the
    // client ourselves (unless the child already reported its own failure).
    job_failed f;
    f.job_id = job.id;
    switch (ending.how) {
      case supervise::fork_ending::kind::timeout:
        f.failure = fault::outcome::hang;
        f.message = "watchdog_timeout";
        break;
      case supervise::fork_ending::kind::signal:
        f.failure = supervise::classify_signal(ending.sig);
        f.message = "worker_signal_" + std::to_string(ending.sig);
        break;
      default:
        f.failure = fault::outcome::crash_abort;
        f.message = "worker_failed";
        break;
    }
    if (!saw_failed) job.sink->emit(encode_failed(f));
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      ++failed_;
    }
    settle(job, fault::outcome_name(f.failure), total_ms,
           /*completed=*/false, f.failure, 0);
    return;
  }
  settle(job, "completed", total_ms, /*completed=*/true,
         fault::outcome::masked, delivered_hash);
}

void server::settle(const pending_job& job, const char* outcome,
                    double wall_ms, bool completed, fault::outcome failure,
                    std::uint64_t panorama_hash) {
  // Durable settlement first: once the D line is flushed, a crash between
  // here and the client's read replays nothing (the journal knows the job
  // is done), and the buffered sink still serves the result to a
  // resubmitting client.
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    if (!config_.journal_path.empty()) {
      journal_.append(
          settled_payload(job.id, completed, failure, panorama_hash));
      if (journal_depth_ > 0) --journal_depth_;
    }
  }
  job.sink->finalize();
  // Keep the settled key resolvable for a bounded window so a duplicate
  // submit replays the buffered stream instead of re-executing; evict the
  // oldest settled keys beyond the cap (an evicted duplicate re-executes,
  // which determinism makes byte-identical anyway).
  if (!job.request.client_key.empty()) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    cache_order_.push_back(job.request.client_key);
    while (cache_order_.size() > kCompletedCacheCap) {
      const auto it = by_key_.find(cache_order_.front());
      cache_order_.pop_front();
      if (it != by_key_.end()) {
        bool done;
        {
          const std::lock_guard<std::mutex> sink_lock(it->second->mutex);
          done = it->second->settled;
        }
        // Only settled sinks leave the index: a live key under re-use
        // (evicted then resubmitted) keeps deduping until it settles.
        if (done) by_key_.erase(it);
      }
    }
  }
  const std::lock_guard<std::mutex> lock(report_mutex_);
  if (!report_.active()) return;
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.3f", wall_ms);
  report_.append(std::to_string(job.id) + ',' +
                 video::input_name(job.request.input) + ',' +
                 app::algorithm_name(job.request.alg) + ',' +
                 std::to_string(job.request.frames) + ',' +
                 resil::hardening_level_name(job.request.hardening) + ',' +
                 priority_name(job.request.priority) + ',' + outcome + ',' +
                 wall);
}

stats_reply server::stats() const {
  stats_reply s;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    s.queue_depth = interactive_.size() + batch_.size();
    s.in_flight = in_flight_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.failed = failed_;
    s.draining = draining_;
    s.restarts = config_.restarts;
    s.journal_depth = journal_depth_;
    s.replayed = replayed_;
  }
  s.pool_budget = arbiter_.budget();
  s.pool_in_use = arbiter_.in_use();
  s.pool_peak_in_use = arbiter_.peak_in_use();
  s.latency = latency_.snapshot();
  return s;
}

}  // namespace vs::serve
