// The long-running summarization service behind `vs serve`.
//
// One Unix-domain socket, one connection per request.  A connection either
// asks for a stats snapshot or submits one clip job; an admitted job's
// connection stays open while the server streams each mini-panorama the
// moment the pipeline closes it, then the final montage + run statistics.
// The response to a given job is byte-identical to what a one-shot
// `vs summarize` of the same (input, variant, frames, hardening) produces,
// at any concurrency — jobs run under worker-slot leases from one shared
// core::pool_arbiter, so M concurrent clips on an N-slot budget never run
// more than N live worker threads, and the kernels' fixed chunk tiling
// makes the pixels independent of the width actually granted.
//
// Admission is a bounded two-class priority queue (interactive overtakes
// batch, FIFO within a class).  A full queue rejects with a retry-after
// hint derived from observed job latency — backpressure, not buffering.
// Per-job deadlines ride the existing watchdog machinery: in isolate mode
// the remaining deadline becomes the forked worker's wall-clock SIGKILL
// watchdog (supervise/fork_runner.h); in-process, a job whose deadline
// lapses while queued fails with the Hang taxonomy before it starts (true
// mid-run preemption requires the process boundary).
//
// SIGTERM maps to request_drain() (async-signal-safe): the server stops
// admitting (rejects carry reason `draining`), finishes everything already
// accepted, then run() returns.  Drained results are byte-identical to
// undisturbed runs — the CI smoke job (ci/check_serve_gate.sh) SIGTERMs a
// live server mid-stream and cmp's every drained montage against one-shot
// references.
//
// Crash-only serving (DESIGN.md §5j): with `journal_path` set, every
// admission is appended to a durable, checksummed journal
// (serve/job_journal.h) BEFORE the client's accept frame is sent, and
// every settlement appends a matching D line.  On start() the journal is
// compacted and the unfinished tail re-enqueued as orphan jobs (no client
// connection yet); a client that resubmits under its idempotency key
// adopts the orphan's buffered result stream instead of re-executing.
// Queued jobs refused during a drain are journaled as deferred (G lines)
// and re-admitted on the next boot, so a SIGTERM loses nothing either.
// The supervisor shell (serve/respawn.h) restarts a crashed server around
// this journal; because app::summarize is deterministic, a replayed job's
// montage is byte-identical to the one the dead server would have sent
// (ci/check_restart_gate.sh SIGKILLs a loaded server and cmp's every
// eventually-delivered montage against one-shot references).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pool_budget.h"
#include "fault/report.h"
#include "perf/latency.h"
#include "pipeline/scheduler.h"
#include "serve/job_journal.h"
#include "serve/protocol.h"
#include "supervise/journal.h"

namespace vs::serve {

struct server_config {
  std::string socket_path;      ///< AF_UNIX path (must fit sun_path)
  std::size_t queue_capacity = 8;  ///< admitted-but-not-started bound
  int runners = 2;              ///< concurrent job executors
  unsigned pool_budget = 0;     ///< shared worker-slot budget; 0 = auto
  bool isolate = false;         ///< fork one worker process per job
  /// Isolate-mode watchdog for jobs that carry no deadline; <= 0 = off.
  double job_timeout_s = 0.0;
  /// How long a freshly accepted connection may dawdle before its first
  /// request frame arrives.
  double handshake_timeout_s = 5.0;
  /// Streaming per-job CSV log (fault::report_stream); empty = off.
  std::string report_path;
  /// Clean-lane stage batching across admitted jobs: every in-process job
  /// feeds its prefetchable stage prefix into ONE shared stage_scheduler,
  /// so deep admission queues batch frames from different clips into
  /// single pool dispatches (isolate mode gives each forked worker a
  /// private scheduler instead).  pipeline::kBatchInherit defers to
  /// --batch / VS_BATCH; kBatchOff restores the strictly-inline serving
  /// path of the per-frame era.
  int batch = pipeline::kBatchInherit;
  /// Per-job clean-lane lookahead depth feeding the shared stage queues
  /// (pipeline_config::frames_in_flight); 0 disables prefetch like the
  /// pre-batching server.  Only effective when batching is on.
  int lookahead = 2;
  /// Durable admission journal (serve/job_journal.h); empty = volatile
  /// queue, the pre-crash-only behavior.
  std::string journal_path;
  /// Supervisor respawn generation, surfaced in stats_reply.restarts
  /// (0 = first boot or unsupervised).
  std::uint64_t restarts = 0;
  /// Called once per accept-loop iteration (<= ~100 ms cadence) from the
  /// run() thread; the supervisor shell uses it as the heartbeat source.
  std::function<void()> on_tick;
};

/// Per-job result conduit: buffers every frame the job ever emitted
/// (accept included) and mirrors them to the attached client connection,
/// if any.  A job replayed from the journal starts detached (fd -1); a
/// client resubmitting under the same idempotency key adopts the sink and
/// receives the full buffered stream — which is exactly why a duplicate
/// submit never re-executes.  Defined in server.cpp.
struct job_sink;

class server {
 public:
  explicit server(server_config config);
  ~server();
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Binds the socket, starts the runner threads.  Throws io_error when
  /// the path is unusable.
  void start();

  /// Accept loop.  Blocks until a drain completes; start() first.
  void run();

  /// Initiates graceful drain.  Async-signal-safe (one write(2) on a
  /// self-pipe) — safe to call from a SIGTERM handler or another thread.
  void request_drain() noexcept;

  /// Live snapshot of queue/pool/latency state (also served on the wire).
  [[nodiscard]] stats_reply stats() const;

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }

 private:
  struct pending_job {
    std::uint64_t id = 0;
    job_request request;
    /// Result conduit; owns the client connection (detached for jobs
    /// replayed from the journal until their client resubmits).
    std::shared_ptr<job_sink> sink;
    std::chrono::steady_clock::time_point admitted;
  };

  void handle_connection(int fd);
  void admit_or_reject(int fd, const job_request& request, bool& fd_owned);
  void runner_loop();
  void execute_job(pending_job job);
  void run_in_process(const pending_job& job, core::pool_lease& lease);
  void run_isolated(const pending_job& job, core::pool_lease& lease);
  /// Journals the D line, finalizes the sink, rotates the completed-key
  /// cache, and appends the per-job report row.
  void settle(const pending_job& job, const char* outcome, double wall_ms,
              bool completed, fault::outcome failure,
              std::uint64_t panorama_hash);
  /// Creates the sink + queue entry for one admission (journal replay or
  /// live submit).  Caller holds state_mutex_.
  pending_job enqueue_locked(std::uint64_t id, const job_request& request,
                             int fd);
  [[nodiscard]] std::uint64_t retry_after_ms_locked() const;

  server_config config_;
  core::pool_arbiter arbiter_;
  perf::latency_recorder latency_;
  /// Service time (lease acquired -> result delivered), excluding queue
  /// wait: what the retry-after backpressure hint is derived from.  Total
  /// latency includes the queue wait itself, so under load it would
  /// over-estimate by the very backlog the hint meters.
  perf::latency_recorder service_latency_;
  /// Shared cross-job stage scheduler (in-process, batching on).  Created
  /// in start(); destroyed after every runner joined, so no executor
  /// ticket can outlive its dispatcher.
  std::unique_ptr<pipeline::stage_scheduler> scheduler_;
  int resolved_batch_ = pipeline::kBatchOff;  ///< start() resolves config

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  mutable std::mutex state_mutex_;
  std::condition_variable work_cv_;
  std::deque<pending_job> interactive_;
  std::deque<pending_job> batch_;
  bool draining_ = false;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t in_flight_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_ = 0;

  /// Admission journal writer (guarded by state_mutex_; A/G lines are
  /// appended under the same critical section that mutates the queue, so
  /// the durable record can never lag the volatile one).
  supervise::journal_writer journal_;
  std::uint64_t journal_depth_ = 0;  ///< journaled accepted-not-settled
  std::uint64_t replayed_ = 0;       ///< jobs re-enqueued at this boot
  std::uint64_t deferred_ = 0;       ///< drain-time G lines this run
  /// Idempotency index: client key -> sink of the live or recently
  /// completed job under that key (guarded by state_mutex_).
  std::map<std::string, std::shared_ptr<job_sink>> by_key_;
  /// FIFO of settled keys still held in by_key_ for duplicate-replay;
  /// bounded (kCompletedCacheCap in server.cpp), oldest evicted first.
  std::deque<std::string> cache_order_;

  std::mutex report_mutex_;
  fault::report_stream report_;

  std::vector<std::thread> runners_;
};

}  // namespace vs::serve
