// Serve-layer fault campaign: the paper's AFI methodology pointed at the
// *service* instead of the bare pipeline (`vs inject --serve`).
//
// Each experiment submits one clip job to a resident, supervised,
// isolate-mode server with a journaled injection plan riding the submit
// frame (protocol.h fault_spec): the forked worker arms the plan around
// its pipeline run exactly as the offline campaign does, so the fault
// physics are identical — what changes is the observer.  The offline
// campaign classifies from inside the fault monitor (Masked / SDC /
// Crash / Hang); here every experiment is classified from the CLIENT's
// chair, the serving analog of the paper's Fig 10/11 user-visible
// taxonomy:
//
//   Completed                the submission returned a result first try
//   Completed-after-restart  the result arrived, but only after at least
//                            one reconnect (server crashed / was killed
//                            and the journal + idempotency key recovered
//                            the job)
//   Rejected                 the server answered, and the answer was a
//                            terminal refusal or an explicit failure
//                            report (the contained crash/hang taxonomy)
//   Lost                     no terminal reply within the client's
//                            attempt budget
//
// SDC stays observable end to end: a Completed montage whose hash differs
// from the golden hash is a silently corrupt result that crossed the
// service boundary undetected.
//
// With kill_every > 0 the campaign doubles as a crash drill: every N-th
// experiment SIGKILLs the server child mid-job, exercising respawn +
// journal replay under fire.  Determinism caveat: experiment *plans* are
// the same pure function of (seed, total_ops, index) the offline campaign
// uses, but kill timing is wall-clock, so the split between Completed and
// Completed-after-restart is scenario-dependent even though the set of
// delivered montage hashes is not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/config.h"
#include "rt/instrument.h"
#include "video/generator.h"

namespace vs::serve {

/// Client-visible fate of one serve-layer experiment.
enum class client_outcome : std::uint8_t {
  completed = 0,
  completed_after_restart = 1,
  rejected = 2,
  lost = 3,
};
inline constexpr int client_outcome_count = 4;

[[nodiscard]] const char* client_outcome_name(client_outcome o) noexcept;

struct serve_campaign_config {
  video::input_id input = video::input_id::input1;
  app::algorithm alg = app::algorithm::vs;
  int frames = 12;
  rt::reg_class cls = rt::reg_class::gpr;
  int injections = 48;
  std::uint64_t seed = 2018;
  double step_budget_factor = 25.0;
  /// SIGKILL the server child mid-job on every N-th experiment; 0 = never.
  int kill_every = 0;
  int runners = 2;           ///< server runner threads
  unsigned pool_budget = 0;  ///< server worker-slot budget; 0 = auto
  int client_attempts = 8;   ///< resilient-submit budget per experiment
  /// Socket/journal paths; empty = unique /tmp defaults per process.
  std::string socket_path;
  std::string journal_path;
};

/// One experiment, classified from the client's chair.
struct serve_experiment {
  std::size_t index = 0;
  client_outcome outcome = client_outcome::lost;
  bool fault_armed = false;  ///< false = dead-register strike, ran clean
  bool sdc = false;          ///< delivered montage hash != golden hash
  int attempts = 0;
  int reconnects = 0;
  double wall_ms = 0.0;
};

struct serve_campaign_result {
  std::uint64_t golden_hash = 0;
  std::uint64_t total_ops = 0;
  std::uint64_t step_budget = 0;
  std::uint64_t counts[client_outcome_count] = {0, 0, 0, 0};
  std::uint64_t sdc_visible = 0;      ///< corrupt montages delivered
  std::uint64_t server_restarts = 0;  ///< supervisor generations - 1
  std::vector<serve_experiment> records;

  [[nodiscard]] std::string to_string() const;
};

/// Runs the campaign: boots a supervised isolate-mode server, fires every
/// experiment through submit_resilient, classifies client-visibly, shuts
/// the supervisor down.  Throws on setup failures (socket, golden run).
[[nodiscard]] serve_campaign_result run_serve_campaign(
    const serve_campaign_config& config);

}  // namespace vs::serve
