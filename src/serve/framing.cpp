#include "serve/framing.h"

#include "fault/wire.h"

namespace vs::serve {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint16_t get_u16(const char* p) noexcept {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<unsigned char>(p[1]) << 8));
}

std::uint32_t get_u32(const char* p) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
          << 24);
}

// The checksum seals everything after the magic: type, flags, length, and
// the payload bytes, hashed as one contiguous stream.
std::uint32_t frame_checksum(std::uint16_t type, std::uint16_t flags,
                             std::uint32_t length,
                             std::string_view payload) {
  std::string sealed;
  sealed.reserve(8 + payload.size());
  put_u16(sealed, type);
  put_u16(sealed, flags);
  put_u32(sealed, length);
  sealed.append(payload.data(), payload.size());
  return fault::wire::checksum(sealed);
}

}  // namespace

std::string encode_frame(std::uint16_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  put_u32(out, kFrameMagic);
  put_u16(out, type);
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, frame_checksum(type, 0,
                              static_cast<std::uint32_t>(payload.size()),
                              payload));
  out.append(payload.data(), payload.size());
  return out;
}

void frame_decoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

void frame_decoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer — keeps the
  // decoder O(bytes) without erasing on every frame.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

std::optional<frame> frame_decoder::next() {
  for (;;) {
    compact();
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kFrameHeaderSize) return std::nullopt;
    const char* p = buffer_.data() + consumed_;

    if (get_u32(p) != kFrameMagic) {
      ++consumed_;
      ++skipped_;
      continue;
    }
    const std::uint16_t type = get_u16(p + 4);
    const std::uint16_t flags = get_u16(p + 6);
    const std::uint32_t length = get_u32(p + 8);
    const std::uint32_t stated = get_u32(p + 12);
    if (flags != 0 || length > kMaxFramePayload) {
      // Implausible header: likely a stray magic inside garbage.  Skip one
      // byte, not the whole claimed frame — the claimed length is exactly
      // the field we don't trust.
      ++consumed_;
      ++skipped_;
      continue;
    }
    if (available < kFrameHeaderSize + length) return std::nullopt;
    const std::string_view payload(p + kFrameHeaderSize, length);
    if (frame_checksum(type, flags, length, payload) != stated) {
      ++consumed_;
      ++skipped_;
      continue;
    }
    frame out;
    out.type = type;
    out.payload.assign(payload.data(), payload.size());
    consumed_ += kFrameHeaderSize + length;
    return out;
  }
}

}  // namespace vs::serve
