#include "serve/respawn.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <thread>

#include "core/error.h"
#include "core/log.h"
#include "fault/wire.h"
#include "supervise/fork_runner.h"

namespace vs::serve {

namespace {

using clock = std::chrono::steady_clock;

double seconds_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// The child generation's server, reachable from its drain signal handler.
server* g_child_server = nullptr;

void child_drain_signal(int) {
  if (g_child_server != nullptr) g_child_server->request_drain();
}

/// One server generation, inside the fork.  Leaves through _exit only —
/// the usual forked-child discipline (supervise/fork_runner.h).
[[noreturn]] void child_main(const respawn_config& config,
                             std::uint64_t generation, int wfd) {
  try {
    server_config sc = config.server;
    sc.restarts = generation;
    // Heartbeat: one sealed "B <seq>" line per interval, pulsed from the
    // accept loop so a wedged loop stops beating and takes the watchdog.
    const double interval = std::max(0.01, config.heartbeat_interval_s);
    sc.on_tick = [wfd, interval, last = clock::time_point{},
                  seq = std::uint64_t{0}]() mutable {
      const auto now = clock::now();
      if (last != clock::time_point{} &&
          seconds_between(last, now) < interval) {
        return;
      }
      last = now;
      supervise::child_write_line(wfd, "B " + std::to_string(seq++));
    };

    server srv(std::move(sc));
    g_child_server = &srv;
    // The generation owns its drain: SIGTERM/SIGINT reach the child's
    // process group in CLI use, and the handler must drain THIS server,
    // not whatever the parent had installed pre-fork.
    struct sigaction sa {};
    sa.sa_handler = child_drain_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    srv.start();
    srv.run();
    _exit(0);
  } catch (const std::exception& e) {
    supervise::child_fail(wfd, &e);
  } catch (...) {
    supervise::child_fail(wfd, nullptr);
  }
}

}  // namespace

respawn_supervisor::respawn_supervisor(respawn_config config)
    : config_(std::move(config)) {}

pid_t respawn_supervisor::spawn(std::uint64_t generation, int* pipe_rd) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw io_error("respawn: pipe() failed: " +
                   std::string(std::strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw io_error("respawn: fork() failed: " +
                   std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(config_, generation, fds[1]);
  }
  ::close(fds[1]);
  (void)::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  (void)::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  *pipe_rd = fds[0];
  return pid;
}

void respawn_supervisor::request_shutdown() noexcept {
  shutdown_.store(true, std::memory_order_relaxed);
  const pid_t pid = child_pid_.load(std::memory_order_relaxed);
  if (pid > 0) (void)::kill(pid, SIGTERM);
}

void respawn_supervisor::kill_child() noexcept {
  const pid_t pid = child_pid_.load(std::memory_order_relaxed);
  if (pid > 0) (void)::kill(pid, SIGKILL);
}

respawn_stats respawn_supervisor::run() {
  respawn_stats stats;
  int streak = 0;
  std::string carry;  // partial heartbeat line straddling two reads

  while (!shutdown_.load(std::memory_order_relaxed)) {
    int rd = -1;
    const std::uint64_t generation = stats.generations;
    const pid_t pid = spawn(generation, &rd);
    ++stats.generations;
    child_pid_.store(pid, std::memory_order_relaxed);
    if (!config_.pidfile.empty()) {
      std::ofstream out(config_.pidfile, std::ios::trunc);
      out << pid << '\n';
    }
    log::info("respawn: generation " + std::to_string(generation) +
              " up (pid " + std::to_string(pid) + ")");

    const auto born = clock::now();
    auto last_beat = born;
    carry.clear();
    bool stalled = false;
    bool pipe_open = true;
    int status = 0;

    for (;;) {
      if (pipe_open) {
        pollfd pfd{rd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
          char buf[4096];
          for (;;) {
            const ssize_t n = ::read(rd, buf, sizeof(buf));
            if (n > 0) {
              carry.append(buf, static_cast<std::size_t>(n));
              continue;
            }
            if (n == 0) pipe_open = false;  // child end closed
            break;                          // EOF, EAGAIN, or error
          }
          std::size_t start = 0;
          for (;;) {
            const std::size_t nl = carry.find('\n', start);
            if (nl == std::string::npos) break;
            const std::string_view line(carry.data() + start, nl - start);
            start = nl + 1;
            const auto payload = fault::wire::unseal(line);
            // Any valid heartbeat line proves liveness; a torn one (the
            // child died mid-write) just doesn't count.
            if (payload && !payload->empty() && payload->front() == 'B') {
              last_beat = clock::now();
            }
          }
          carry.erase(0, start);
        }
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }

      const pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) break;

      if (config_.stall_timeout_s > 0 &&
          seconds_between(last_beat, clock::now()) >
              config_.stall_timeout_s) {
        // Heartbeat stall: the accept loop is wedged even though the
        // process lives.  SIGKILL and classify as a hang, the same
        // taxonomy a campaign worker's watchdog timeout gets.
        stalled = true;
        (void)::kill(pid, SIGKILL);
        (void)::waitpid(pid, &status, 0);
        break;
      }
    }
    ::close(rd);
    child_pid_.store(-1, std::memory_order_relaxed);

    const double uptime = seconds_between(born, clock::now());
    const bool clean = !stalled && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0;
    const std::string gen_tag =
        "respawn: generation " + std::to_string(generation);
    if (stalled) {
      ++stats.hangs;
      log::warn(gen_tag + " stalled (no heartbeat for " +
                std::to_string(config_.stall_timeout_s) +
                " s), killed: hang");
    } else if (WIFSIGNALED(status)) {
      ++stats.crashes;
      log::warn(gen_tag + " died on signal " +
                std::to_string(WTERMSIG(status)) + ": " +
                fault::outcome_name(
                    supervise::classify_signal(WTERMSIG(status))));
    } else if (!clean) {
      ++stats.failures;
      log::warn(gen_tag + " exited with status " +
                std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                                 : -1));
    }

    if (clean) {
      stats.clean_exit = true;
      log::info(gen_tag + " drained cleanly, supervision done");
      break;
    }
    if (shutdown_.load(std::memory_order_relaxed)) break;

    // A generation that survived long enough proves the respawn healed
    // something; only quick deaths accumulate toward giving up.
    streak = uptime >= config_.stable_uptime_s ? 1 : streak + 1;
    if (streak > std::max(1, config_.max_consecutive_failures)) {
      stats.gave_up = true;
      log::warn("respawn: " + std::to_string(streak) +
                " consecutive short-lived generations, giving up");
      break;
    }

    const double delay = config_.backoff.delay_ms(streak);
    log::info("respawn: restarting in " +
              std::to_string(static_cast<long long>(delay + 0.5)) +
              " ms (streak " + std::to_string(streak) + ")");
    const auto until =
        clock::now() + std::chrono::duration<double, std::milli>(delay);
    while (clock::now() < until &&
           !shutdown_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return stats;
}

}  // namespace vs::serve
