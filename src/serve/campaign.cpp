#include "serve/campaign.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "app/pipeline.h"
#include "core/log.h"
#include "fault/campaign.h"
#include "fault/wire.h"
#include "serve/client.h"
#include "serve/respawn.h"

namespace vs::serve {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// The same deterministic workload the server's forked worker executes for
/// these (input, alg, frames): batching forced off on both sides so the
/// golden op count and hash match the served runs bit for bit.
fault::workload make_workload(const serve_campaign_config& config) {
  return [config] {
    const auto source = video::make_input(config.input, config.frames);
    app::pipeline_config pc;
    pc.approx.alg = config.alg;
    pc.batch = pipeline::kBatchOff;
    return app::summarize(*source, pc).panorama;
  };
}

bool wait_for_socket(const std::string& path, double timeout_s) {
  const auto deadline =
      clock::now() + std::chrono::duration<double>(timeout_s);
  while (clock::now() < deadline) {
    if (::access(path.c_str(), F_OK) == 0) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

const char* client_outcome_name(client_outcome o) noexcept {
  switch (o) {
    case client_outcome::completed:
      return "completed";
    case client_outcome::completed_after_restart:
      return "completed_after_restart";
    case client_outcome::rejected:
      return "rejected";
    case client_outcome::lost:
      return "lost";
  }
  return "unknown";
}

std::string serve_campaign_result::to_string() const {
  const std::uint64_t total = counts[0] + counts[1] + counts[2] + counts[3];
  std::string out = "serve campaign: " + std::to_string(total) +
                    " experiment(s), " + std::to_string(server_restarts) +
                    " server restart(s)\n";
  for (int i = 0; i < client_outcome_count; ++i) {
    const double pct =
        total > 0 ? 100.0 * static_cast<double>(counts[i]) /
                        static_cast<double>(total)
                  : 0.0;
    char line[96];
    std::snprintf(line, sizeof(line), "  %-24s %6llu  (%5.2f%%)\n",
                  client_outcome_name(static_cast<client_outcome>(i)),
                  static_cast<unsigned long long>(counts[i]), pct);
    out += line;
  }
  out += "  sdc delivered            " + std::to_string(sdc_visible) + "\n";
  return out;
}

serve_campaign_result run_serve_campaign(
    const serve_campaign_config& config) {
  serve_campaign_result result;

  // Golden run + fault-site census, identical to the offline campaign's.
  fault::campaign_config cc;
  cc.cls = config.cls;
  cc.injections = std::max(1, config.injections);
  cc.seed = config.seed;
  cc.step_budget_factor = config.step_budget_factor;
  const fault::campaign_setup setup =
      fault::measure_golden(make_workload(config), cc);
  result.golden_hash = fault::wire::hash_image(setup.golden);
  result.total_ops = setup.total_ops;
  result.step_budget = setup.step_budget;

  const std::string pid_tag = std::to_string(static_cast<long>(::getpid()));
  const std::string socket_path =
      config.socket_path.empty() ? "/tmp/vs_serve_campaign_" + pid_tag +
                                       ".sock"
                                 : config.socket_path;
  const std::string journal_path =
      config.journal_path.empty() ? socket_path + ".journal"
                                  : config.journal_path;

  // Supervised, isolated, journaled server: injections crash only forked
  // workers; deliberate kills crash the whole child and exercise replay.
  respawn_config rc;
  rc.server.socket_path = socket_path;
  rc.server.journal_path = journal_path;
  rc.server.isolate = true;
  rc.server.runners = std::max(1, config.runners);
  rc.server.pool_budget = config.pool_budget;
  rc.server.queue_capacity =
      std::max<std::size_t>(8, static_cast<std::size_t>(config.runners) * 4);
  rc.server.batch = pipeline::kBatchOff;
  rc.server.lookahead = 0;
  rc.stable_uptime_s = 0.2;       // deliberate kills must not exhaust the
  rc.max_consecutive_failures = 50;  // failure budget mid-campaign
  rc.backoff.base_delay_ms = 10.0;
  rc.backoff.max_delay_ms = 100.0;

  respawn_supervisor supervisor(rc);
  std::thread supervisor_thread([&] { (void)supervisor.run(); });
  if (!wait_for_socket(socket_path, 10.0)) {
    supervisor.request_shutdown();
    supervisor_thread.join();
    throw std::runtime_error("serve campaign: server never came up on " +
                             socket_path);
  }

  client cli(socket_path, /*receive_timeout_s=*/30.0);
  resilient_policy policy;
  policy.backoff.max_attempts = std::max(1, config.client_attempts);
  policy.backoff.base_delay_ms = 20.0;
  policy.backoff.max_delay_ms = 250.0;
  policy.backoff.seed = config.seed;

  double mean_wall_ms = 0.0;
  std::uint64_t wall_samples = 0;

  for (std::size_t i = 0;
       i < static_cast<std::size_t>(std::max(1, config.injections)); ++i) {
    const fault::experiment_plan plan =
        fault::plan_experiment(cc, setup.total_ops, i);

    job_request request;
    request.input = config.input;
    request.alg = config.alg;
    request.frames = config.frames;
    request.client_key = "exp-" + pid_tag + "-" + std::to_string(i);
    // A dead-register strike is masked without execution in the offline
    // campaign; here the job still runs (the client wants its montage),
    // just unarmed.
    request.fault.armed = plan.register_live;
    request.fault.cls = plan.plan.cls;
    request.fault.target = plan.plan.target;
    request.fault.bit = plan.plan.bit;
    request.fault.step_budget = setup.step_budget;

    // Crash drill: SIGKILL the server child mid-job on every N-th
    // experiment, roughly half a mean job into the run.
    std::thread killer;
    if (config.kill_every > 0 &&
        (i + 1) % static_cast<std::size_t>(config.kill_every) == 0) {
      const double delay_ms =
          wall_samples > 0 ? std::max(20.0, mean_wall_ms / 2.0) : 150.0;
      killer = std::thread([&supervisor, delay_ms] {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
        supervisor.kill_child();
      });
    }

    const auto t0 = clock::now();
    const submit_outcome out = cli.submit_resilient(request, policy);
    const double wall = ms_between(t0, clock::now());
    if (killer.joinable()) killer.join();

    serve_experiment record;
    record.index = i;
    record.fault_armed = request.fault.armed;
    record.attempts = out.attempts;
    record.reconnects = out.reconnects;
    record.wall_ms = wall;
    if (out.complete) {
      record.outcome = out.reconnects > 0
                           ? client_outcome::completed_after_restart
                           : client_outcome::completed;
      record.sdc = out.complete->panorama_hash != result.golden_hash;
      mean_wall_ms =
          (mean_wall_ms * static_cast<double>(wall_samples) + wall) /
          static_cast<double>(wall_samples + 1);
      ++wall_samples;
    } else if (out.failed || out.rejected) {
      // Rejected = the service ANSWERED: either an admission refusal or
      // the contained failure taxonomy (crash/hang caught at the process
      // boundary and reported).  Either way nothing silently vanished.
      record.outcome = client_outcome::rejected;
    } else {
      record.outcome = client_outcome::lost;
    }
    ++result.counts[static_cast<int>(record.outcome)];
    if (record.sdc) ++result.sdc_visible;
    result.records.push_back(record);
  }

  // The live generation's stats carry its respawn index — the number of
  // restarts the campaign actually caused.
  try {
    result.server_restarts = cli.stats().restarts;
  } catch (const std::exception&) {
    result.server_restarts = 0;  // server already down; taxonomy stands
  }

  supervisor.request_shutdown();
  supervisor_thread.join();
  (void)::unlink(socket_path.c_str());
  (void)::unlink(journal_path.c_str());
  return result;
}

}  // namespace vs::serve
