#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "core/error.h"
#include "serve/framing.h"

namespace vs::serve {

namespace {

/// Closes the fd on every exit path — the response loop has several.
class fd_guard {
 public:
  explicit fd_guard(int fd) noexcept : fd_(fd) {}
  ~fd_guard() {
    if (fd_ >= 0) ::close(fd_);
  }
  fd_guard(const fd_guard&) = delete;
  fd_guard& operator=(const fd_guard&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }

 private:
  int fd_;
};

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw io_error("serve client: send failed: " +
                   std::string(std::strerror(errno)));
  }
}

/// Blocks until the decoder yields the next validated frame.  Throws
/// io_error on EOF/timeout — the server never half-answers a request, so
/// a short stream means it died or we timed out.
frame next_frame(int fd, frame_decoder& decoder) {
  char buf[16384];
  for (;;) {
    if (auto f = decoder.next()) return std::move(*f);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw io_error(n == 0 ? "serve client: server closed mid-stream"
                          : "serve client: recv failed: " +
                                std::string(std::strerror(errno)));
  }
}

/// Process-unique idempotency key for callers that didn't bring one: the
/// pid decorrelates concurrent fleets, the counter decorrelates jobs.
std::string auto_client_key() {
  static std::atomic<std::uint64_t> counter{0};
  return "c" + std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(counter.fetch_add(1));
}

void sleep_backoff(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

client::client(std::string socket_path, double receive_timeout_s)
    : socket_path_(std::move(socket_path)),
      receive_timeout_s_(receive_timeout_s) {}

int client::connect_and_hello() {
  sockaddr_un addr{};
  if (socket_path_.empty() ||
      socket_path_.size() >= sizeof(addr.sun_path)) {
    throw io_error("serve client: bad socket path: " + socket_path_);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw io_error("serve client: socket() failed: " +
                   std::string(std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw io_error("serve client: cannot connect to " + socket_path_ +
                   ": " + why);
  }
  if (receive_timeout_s_ > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(receive_timeout_s_);
    tv.tv_usec = static_cast<suseconds_t>(
        (receive_timeout_s_ - static_cast<double>(tv.tv_sec)) * 1e6);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

submit_outcome client::submit(
    const job_request& request,
    const std::function<void(const panorama_msg&)>& on_panorama) {
  const fd_guard fd(connect_and_hello());
  frame_decoder decoder;

  send_all(fd.get(), encode_hello(hello_msg{}));
  send_all(fd.get(), encode_submit(request));

  submit_outcome outcome;
  for (;;) {
    const frame f = next_frame(fd.get(), decoder);
    switch (static_cast<msg_type>(f.type)) {
      case msg_type::hello:
        continue;  // handshake echo
      case msg_type::rejected: {
        auto m = parse_rejected(f.payload);
        if (!m) throw io_error("serve client: garbled rejected frame");
        outcome.rejected = *m;
        return outcome;
      }
      case msg_type::accepted: {
        auto m = parse_accepted(f.payload);
        if (!m) throw io_error("serve client: garbled accepted frame");
        outcome.accepted = *m;
        continue;
      }
      case msg_type::panorama: {
        auto m = parse_panorama(f.payload);
        if (!m) throw io_error("serve client: garbled panorama frame");
        if (on_panorama) on_panorama(*m);
        outcome.panoramas.push_back(std::move(*m));
        continue;
      }
      case msg_type::complete: {
        auto m = parse_complete(f.payload);
        if (!m) throw io_error("serve client: garbled complete frame");
        outcome.complete = std::move(*m);
        return outcome;
      }
      case msg_type::failed: {
        auto m = parse_failed(f.payload);
        if (!m) throw io_error("serve client: garbled failed frame");
        outcome.failed = std::move(*m);
        return outcome;
      }
      default:
        throw io_error("serve client: unexpected frame type " +
                       std::to_string(f.type));
    }
  }
}

submit_outcome client::submit_resilient(
    job_request request, const resilient_policy& policy,
    const std::function<void(const panorama_msg&)>& on_panorama) {
  if (request.client_key.empty()) request.client_key = auto_client_key();
  const int max_attempts = std::max(1, policy.backoff.max_attempts);
  int reconnects = 0;
  // Highest mini index already handed to on_panorama: a reconnect adopts
  // the server-side sink and replays the whole stream, so earlier minis
  // come down the wire again — deliver each to the caller exactly once.
  int streamed_past = -1;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    submit_outcome out;
    try {
      out = submit(request, [&](const panorama_msg& m) {
        if (m.index <= streamed_past) return;
        streamed_past = m.index;
        if (on_panorama) on_panorama(m);
      });
    } catch (const io_error&) {
      // Server unreachable or died mid-stream: the journaled job (if it
      // was accepted) survives the crash, so back off and resubmit under
      // the same key to adopt it.
      ++reconnects;
      if (attempt < max_attempts) {
        sleep_backoff(policy.backoff.delay_ms(attempt));
      }
      continue;
    }
    out.attempts = attempt;
    out.reconnects = reconnects;
    if (out.complete || out.failed) return out;
    if (out.rejected) {
      const reject_reason reason = out.rejected->reason;
      const bool retryable = reason == reject_reason::queue_full ||
                             reason == reject_reason::draining;
      if (!retryable || attempt == max_attempts) return out;
      double delay = policy.backoff.delay_ms(attempt);
      if (policy.honor_retry_after && out.rejected->retry_after_ms > 0) {
        delay = std::max(
            delay, static_cast<double>(out.rejected->retry_after_ms));
      }
      sleep_backoff(delay);
      continue;
    }
    return out;  // defensive: submit() always sets a terminal field
  }

  // Every attempt died without a terminal reply: the job is Lost from
  // this client's point of view (it may still complete server-side).
  submit_outcome lost;
  lost.attempts = max_attempts;
  lost.reconnects = reconnects;
  return lost;
}

stats_reply client::stats() {
  const fd_guard fd(connect_and_hello());
  frame_decoder decoder;
  send_all(fd.get(), encode_stats_request());
  for (;;) {
    const frame f = next_frame(fd.get(), decoder);
    if (static_cast<msg_type>(f.type) == msg_type::hello) continue;
    if (static_cast<msg_type>(f.type) != msg_type::stats_reply) {
      throw io_error("serve client: unexpected frame type " +
                     std::to_string(f.type));
    }
    const auto m = parse_stats_reply(f.payload);
    if (!m) throw io_error("serve client: garbled stats frame");
    return *m;
  }
}

}  // namespace vs::serve
