#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/error.h"
#include "serve/framing.h"

namespace vs::serve {

namespace {

/// Closes the fd on every exit path — the response loop has several.
class fd_guard {
 public:
  explicit fd_guard(int fd) noexcept : fd_(fd) {}
  ~fd_guard() {
    if (fd_ >= 0) ::close(fd_);
  }
  fd_guard(const fd_guard&) = delete;
  fd_guard& operator=(const fd_guard&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }

 private:
  int fd_;
};

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw io_error("serve client: send failed: " +
                   std::string(std::strerror(errno)));
  }
}

/// Blocks until the decoder yields the next validated frame.  Throws
/// io_error on EOF/timeout — the server never half-answers a request, so
/// a short stream means it died or we timed out.
frame next_frame(int fd, frame_decoder& decoder) {
  char buf[16384];
  for (;;) {
    if (auto f = decoder.next()) return std::move(*f);
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw io_error(n == 0 ? "serve client: server closed mid-stream"
                          : "serve client: recv failed: " +
                                std::string(std::strerror(errno)));
  }
}

}  // namespace

client::client(std::string socket_path, double receive_timeout_s)
    : socket_path_(std::move(socket_path)),
      receive_timeout_s_(receive_timeout_s) {}

int client::connect_and_hello() {
  sockaddr_un addr{};
  if (socket_path_.empty() ||
      socket_path_.size() >= sizeof(addr.sun_path)) {
    throw io_error("serve client: bad socket path: " + socket_path_);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw io_error("serve client: socket() failed: " +
                   std::string(std::strerror(errno)));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw io_error("serve client: cannot connect to " + socket_path_ +
                   ": " + why);
  }
  if (receive_timeout_s_ > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(receive_timeout_s_);
    tv.tv_usec = static_cast<suseconds_t>(
        (receive_timeout_s_ - static_cast<double>(tv.tv_sec)) * 1e6);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

submit_outcome client::submit(
    const job_request& request,
    const std::function<void(const panorama_msg&)>& on_panorama) {
  const fd_guard fd(connect_and_hello());
  frame_decoder decoder;

  send_all(fd.get(), encode_hello(hello_msg{}));
  send_all(fd.get(), encode_submit(request));

  submit_outcome outcome;
  for (;;) {
    const frame f = next_frame(fd.get(), decoder);
    switch (static_cast<msg_type>(f.type)) {
      case msg_type::hello:
        continue;  // handshake echo
      case msg_type::rejected: {
        auto m = parse_rejected(f.payload);
        if (!m) throw io_error("serve client: garbled rejected frame");
        outcome.rejected = *m;
        return outcome;
      }
      case msg_type::accepted: {
        auto m = parse_accepted(f.payload);
        if (!m) throw io_error("serve client: garbled accepted frame");
        outcome.accepted = *m;
        continue;
      }
      case msg_type::panorama: {
        auto m = parse_panorama(f.payload);
        if (!m) throw io_error("serve client: garbled panorama frame");
        if (on_panorama) on_panorama(*m);
        outcome.panoramas.push_back(std::move(*m));
        continue;
      }
      case msg_type::complete: {
        auto m = parse_complete(f.payload);
        if (!m) throw io_error("serve client: garbled complete frame");
        outcome.complete = std::move(*m);
        return outcome;
      }
      case msg_type::failed: {
        auto m = parse_failed(f.payload);
        if (!m) throw io_error("serve client: garbled failed frame");
        outcome.failed = std::move(*m);
        return outcome;
      }
      default:
        throw io_error("serve client: unexpected frame type " +
                       std::to_string(f.type));
    }
  }
}

stats_reply client::stats() {
  const fd_guard fd(connect_and_hello());
  frame_decoder decoder;
  send_all(fd.get(), encode_stats_request());
  for (;;) {
    const frame f = next_frame(fd.get(), decoder);
    if (static_cast<msg_type>(f.type) == msg_type::hello) continue;
    if (static_cast<msg_type>(f.type) != msg_type::stats_reply) {
      throw io_error("serve client: unexpected frame type " +
                     std::to_string(f.type));
    }
    const auto m = parse_stats_reply(f.payload);
    if (!m) throw io_error("serve client: garbled stats frame");
    return *m;
  }
}

}  // namespace vs::serve
