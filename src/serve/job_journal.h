// Durable admission journal for the summarization service — the persistent
// half of crash-only serving (serve/server.h).
//
// Same physical format as the campaign journal (supervise/journal.h): one
// sealed wire payload per line (fault/wire.h), flushed per line, replayed
// through the shared torn-tail-tolerant scanner.  Line kinds:
//
//   H <version> <label>                      journal identity
//   A <id> <request fields...>               job accepted (written BEFORE
//                                            the client's accept frame)
//   D <id> <completed> <outcome> <hash>      job settled (result delivered
//                                            or explicitly failed)
//   G <request fields...>                    queued job deferred: rejected
//                                            with `draining` during a
//                                            SIGTERM drain, to be
//                                            re-admitted on the next boot
//
// The request fields are exactly the submit frame's
// (serve::request_fields_payload), client key and armed fault plan
// included, so a replayed job re-executes byte-identically — and a replayed
// campaign injection re-fires the same bit at the same dynamic op.
//
// Replay rules: an A without a matching D is unfinished and re-enqueues;
// an A with a D is a no-op (never double-executed); G lines become fresh
// admissions.  On startup the server compacts the journal (load → rewrite
// via tmp+rename, so a crash mid-compaction keeps the old file) down to a
// header plus one A line per unfinished job — which also consumes G lines
// exactly once across repeated restarts.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "fault/model.h"
#include "serve/protocol.h"

namespace vs::serve {

inline constexpr int kJobJournalVersion = 1;

/// One journaled admission: the request plus its server-assigned id.
struct journaled_job {
  std::uint64_t id = 0;
  job_request request;
};

/// Everything a job journal reconstructs.
struct job_journal_state {
  bool saw_header = false;
  std::map<std::uint64_t, job_request> accepted;  ///< id -> request
  std::set<std::uint64_t> settled;                ///< ids with a D line
  std::vector<job_request> deferred;              ///< drain-tail G lines
  std::size_t skipped_lines = 0;  ///< torn/garbled/duplicate lines dropped

  /// The replay set: accepted-but-unsettled jobs in admission (id) order,
  /// then the deferred drain tail under fresh ids past the largest
  /// journaled one.  Settled ids never reappear — replay of a completed
  /// job is a no-op.
  [[nodiscard]] std::vector<journaled_job> unfinished() const;

  [[nodiscard]] std::uint64_t max_id() const;
};

// --- line payload builders (sealed + newline-framed by the writer) ---

[[nodiscard]] std::string job_journal_header_payload(std::string_view label);
[[nodiscard]] std::string accepted_payload(std::uint64_t id,
                                           const job_request& request);
[[nodiscard]] std::string settled_payload(std::uint64_t id, bool completed,
                                          fault::outcome failure,
                                          std::uint64_t panorama_hash);
[[nodiscard]] std::string deferred_payload(const job_request& request);

/// Loads a job journal; missing file = empty state; malformed lines are
/// counted and skipped, duplicates (same A id, same D id) are no-ops.
[[nodiscard]] job_journal_state load_job_journal(const std::string& path);

/// Startup compaction: loads `path`, rewrites it (tmp + atomic rename) as
/// header + one A line per unfinished job, and returns that replay set.
/// Original ids are preserved for accepted jobs; the deferred tail gets
/// fresh ids, so G lines are consumed exactly once.  A missing journal
/// compacts to a fresh header-only file.
[[nodiscard]] std::vector<journaled_job> compact_job_journal(
    const std::string& path, std::string_view label);

}  // namespace vs::serve
