// Supervised respawn shell for the summarization service: `vs serve
// --supervised` runs the server as a forked child under this supervisor,
// which restarts it after crashes with capped exponential backoff.
//
// The child pulses sealed heartbeat lines ("B <seq>", fault/wire.h) up the
// supervision pipe from the server's accept loop (server_config::on_tick),
// so a wedged loop reads as a stall and takes the watchdog SIGKILL.  Death
// is classified from the waitpid status exactly like campaign workers
// (supervise::classify_signal): signals count as crashes, a stall-kill as
// a hang, a nonzero exit as a reported failure; exit 0 ends supervision.
// Respawn delays come from core::backoff_policy — deterministic jitter, so
// a given policy always produces the same schedule — and a streak of quick
// deaths beyond max_consecutive_failures gives up instead of spinning.
//
// Queued work crosses the crash through the admission journal
// (serve/job_journal.h): every generation boots with the same journal_path
// and replays the unfinished tail, so a SIGKILL mid-load loses no accepted
// job (ci/check_restart_gate.sh proves it byte-for-byte).
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "core/retry.h"
#include "serve/server.h"

namespace vs::serve {

struct respawn_config {
  server_config server;  ///< what every generation boots with
  /// Cadence of the child's heartbeat lines.
  double heartbeat_interval_s = 0.25;
  /// No heartbeat for this long -> SIGKILL, classified as a hang.
  double stall_timeout_s = 10.0;
  /// Respawn delay schedule (attempt = current quick-death streak).
  core::backoff_policy backoff;
  /// Give up after this many consecutive short-lived generations.
  int max_consecutive_failures = 5;
  /// A generation that lives at least this long resets the streak.
  double stable_uptime_s = 5.0;
  /// Written with the live child's pid each generation (crash drills
  /// SIGKILL `cat pidfile`); empty = off.
  std::string pidfile;
};

struct respawn_stats {
  std::uint64_t generations = 0;  ///< children spawned
  std::uint64_t crashes = 0;      ///< signal deaths
  std::uint64_t hangs = 0;        ///< heartbeat-stall SIGKILLs
  std::uint64_t failures = 0;     ///< nonzero exits
  bool gave_up = false;           ///< failure streak exhausted the budget
  bool clean_exit = false;        ///< child finished a drain (exit 0)
};

class respawn_supervisor {
 public:
  explicit respawn_supervisor(respawn_config config);

  /// Spawn/monitor/respawn loop; returns when the child exits cleanly,
  /// the failure budget is exhausted, or request_shutdown() was called.
  respawn_stats run();

  /// Graceful stop: SIGTERM the live child (it drains) and never respawn.
  /// Async-signal-safe.
  void request_shutdown() noexcept;

  /// Crash drill: SIGKILL the live child (the supervisor restarts it
  /// unless shutdown was requested).  Async-signal-safe.
  void kill_child() noexcept;

  [[nodiscard]] pid_t child_pid() const noexcept {
    return child_pid_.load(std::memory_order_relaxed);
  }

 private:
  pid_t spawn(std::uint64_t generation, int* pipe_rd);

  respawn_config config_;
  std::atomic<pid_t> child_pid_{-1};
  std::atomic<bool> shutdown_{false};
};

}  // namespace vs::serve
