// Message layer of the summarization service, one struct per frame type.
//
// Every message travels as one frame (serve/framing.h).  The payload is a
// wire-style text header of space-separated integer fields — doubles are
// carried as integer microseconds/milliseconds so the codec never parses
// floating point — and image-bearing messages append '\n' plus the raw
// pixel bytes after the header.  Parsers mirror fault/wire.cpp: every field
// is range checked and any malformed payload yields nullopt, never a throw
// and never a half-parsed message.  The frame checksum already seals the
// payload, so there is no inner seal.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "app/config.h"
#include "app/pipeline.h"
#include "fault/model.h"
#include "image/image.h"
#include "perf/latency.h"
#include "rt/instrument.h"
#include "serve/framing.h"
#include "video/generator.h"

namespace vs::serve {

/// Protocol revision carried in the hello handshake (the frame magic pins
/// the framing layout; this pins the message vocabulary on top of it).
inline constexpr std::uint32_t kProtocolVersion = 1;

enum class msg_type : std::uint16_t {
  hello = 1,          ///< both directions: version handshake
  submit = 2,         ///< client -> server: one clip job
  accepted = 3,       ///< server -> client: job admitted, id assigned
  rejected = 4,       ///< server -> client: admission refused, retry-after
  panorama = 5,       ///< server -> client: one mini-panorama, streamed
  complete = 6,       ///< server -> client: stats + final montage
  failed = 7,         ///< server -> client: job died (crash/hang taxonomy)
  stats_request = 8,  ///< client -> server: snapshot request
  stats_reply = 9,    ///< server -> client: queue/pool/latency snapshot
};

/// Admission priority: interactive jobs overtake batch jobs in the queue
/// (FIFO within a class).
enum class priority_class : std::uint8_t { interactive = 0, batch = 1 };

[[nodiscard]] const char* priority_name(priority_class p) noexcept;

/// Why an admission was refused.
enum class reject_reason : std::uint8_t {
  queue_full = 0,   ///< bounded queue at capacity — honor retry_after
  draining = 1,     ///< server is in SIGTERM drain, not admitting
  bad_request = 2,  ///< malformed or out-of-range submit
  version = 3,      ///< hello version mismatch
};

[[nodiscard]] const char* reject_reason_name(reject_reason r) noexcept;

struct hello_msg {
  std::uint32_t version = kProtocolVersion;
};

/// Maximum length of a client idempotency key on the wire (bounds journal
/// line growth from hostile submits).
inline constexpr std::size_t kMaxClientKey = 64;

/// A planned register-file bit flip armed around one job's pipeline run —
/// the serve-layer fault campaign's delivery mechanism (serve/campaign.h).
/// The plan fields are exactly fault::plan_experiment's output, so an
/// injection replayed from the admission journal after a server crash
/// reproduces the same flip at the same dynamic operation.
struct fault_spec {
  bool armed = false;
  rt::reg_class cls = rt::reg_class::gpr;
  std::uint64_t target = 0;       ///< dynamic op index within the class
  std::uint32_t bit = 0;          ///< 0..63
  std::uint64_t step_budget = 0;  ///< hang watchdog steps; 0 = none
};

/// One clip job: the same axes vs summarize takes on the command line,
/// plus the service-only knobs (priority, deadline, thread cap).
struct job_request {
  video::input_id input = video::input_id::input1;
  app::algorithm alg = app::algorithm::vs;
  int frames = 20;
  resil::hardening_level hardening = resil::hardening_level::off;
  priority_class priority = priority_class::batch;
  std::uint64_t deadline_ms = 0;  ///< wall-clock budget; 0 = none
  unsigned max_threads = 0;       ///< cap on the leased width; 0 = fair share
  /// Client-supplied idempotency key; empty = none ("-" on the wire).
  /// Resubmitting under the same key never double-executes: the server
  /// dedupes against queued/running/recently-completed jobs and replays the
  /// buffered result stream instead (server.h, "crash-only serving").
  std::string client_key;
  fault_spec fault;  ///< campaign injection to arm around this run
};

struct job_accepted {
  std::uint64_t job_id = 0;
  std::uint64_t queue_depth = 0;  ///< jobs ahead at admission time
};

struct job_rejected {
  reject_reason reason = reject_reason::queue_full;
  std::uint64_t retry_after_ms = 0;  ///< backpressure hint, 0 = don't retry
  std::uint64_t queue_depth = 0;
};

/// One mini-panorama, pushed the moment the pipeline closes it.
struct panorama_msg {
  std::uint64_t job_id = 0;
  int index = 0;  ///< monotonically increasing per job (replays dropped)
  img::image_u8 image;
};

struct job_complete {
  std::uint64_t job_id = 0;
  app::run_stats stats;
  std::uint32_t detections = 0;       ///< resil::run_report::faults_detected
  std::uint32_t retries = 0;          ///< recovery retries
  std::uint32_t frames_degraded = 0;  ///< recovery degradations
  std::uint64_t wall_us = 0;
  std::uint64_t panorama_hash = 0;  ///< wire::hash_image of the montage
  img::image_u8 montage;
};

struct job_failed {
  std::uint64_t job_id = 0;
  fault::outcome failure = fault::outcome::crash_abort;
  std::string message;  ///< single token, spaces mapped to '_'
};

struct stats_reply {
  std::uint64_t queue_depth = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  bool draining = false;
  std::uint64_t pool_budget = 0;
  std::uint64_t pool_in_use = 0;
  std::uint64_t pool_peak_in_use = 0;
  std::uint64_t restarts = 0;       ///< supervisor respawn generation
  std::uint64_t journal_depth = 0;  ///< journaled accepted-not-settled jobs
  std::uint64_t replayed = 0;       ///< jobs re-enqueued from the journal
  perf::latency_snapshot latency;  ///< per-job wall latency, milliseconds
};

// --- encoders: each returns the complete frame (header + payload) ---

[[nodiscard]] std::string encode_hello(const hello_msg& m);
[[nodiscard]] std::string encode_submit(const job_request& m);
[[nodiscard]] std::string encode_accepted(const job_accepted& m);
[[nodiscard]] std::string encode_rejected(const job_rejected& m);
[[nodiscard]] std::string encode_panorama(const panorama_msg& m);
/// Copy-free variant for streaming callbacks that only borrow the image.
[[nodiscard]] std::string encode_panorama(std::uint64_t job_id, int index,
                                          const img::image_u8& image);
[[nodiscard]] std::string encode_complete(const job_complete& m);
[[nodiscard]] std::string encode_failed(const job_failed& m);
[[nodiscard]] std::string encode_stats_request();
[[nodiscard]] std::string encode_stats_reply(const stats_reply& m);

// --- parsers: take a validated frame's payload; nullopt on any malformed
// field (including image dimensions that disagree with the byte count) ---

[[nodiscard]] std::optional<hello_msg> parse_hello(std::string_view payload);
[[nodiscard]] std::optional<job_request> parse_submit(
    std::string_view payload);
[[nodiscard]] std::optional<job_accepted> parse_accepted(
    std::string_view payload);
[[nodiscard]] std::optional<job_rejected> parse_rejected(
    std::string_view payload);
[[nodiscard]] std::optional<panorama_msg> parse_panorama(
    std::string_view payload);
[[nodiscard]] std::optional<job_complete> parse_complete(
    std::string_view payload);
[[nodiscard]] std::optional<job_failed> parse_failed(
    std::string_view payload);
[[nodiscard]] std::optional<stats_reply> parse_stats_reply(
    std::string_view payload);

// --- shared request-field codec ---
//
// The request's wire fields without the frame tag, shared between the
// submit frame and the admission journal's A/G lines (serve/job_journal.h)
// so a journaled job replays through the same parser that admitted it.

[[nodiscard]] std::vector<std::string_view> split_fields(
    std::string_view header);
[[nodiscard]] std::string request_fields_payload(const job_request& m);
[[nodiscard]] std::optional<job_request> parse_request_fields(
    const std::vector<std::string_view>& tokens);

}  // namespace vs::serve
