// Versioned, length-prefixed binary framing for the summarization service.
//
// The campaign supervisor's wire format (fault/wire.h) is line-oriented
// text — right for journal greppability, wrong for shipping panorama pixels
// (which contain newlines).  The service instead frames every message as
//
//   u32  magic     "VSF1" — protocol identity *and* version in one probe
//   u16  type      message discriminator (serve/protocol.h)
//   u16  flags     reserved, must be 0
//   u32  length    payload byte count
//   u32  checksum  FNV-1a (fault/wire.h) over [type|flags|length|payload]
//   ...  payload   `length` opaque bytes
//
// all little-endian, assembled byte-by-byte so the codec is
// endianness-portable.  The decoder is incremental and self-resynchronizing:
// bytes are fed as they arrive off the socket, and any prefix that fails
// validation — wrong magic, absurd length, checksum mismatch, a frame
// truncated by a dying peer — is skipped one byte at a time until the next
// plausible frame boundary, with the damage tallied in skipped_bytes().
// Garbage never throws and never yields a half-parsed frame; that contract
// is pinned by the shared adversarial round-trip tests
// (tests/wire_fuzz_test.cpp) alongside the supervisor's line decoder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vs::serve {

/// Protocol identity: bump the trailing digit for incompatible layouts.
inline constexpr std::uint32_t kFrameMagic = 0x31465356u;  // "VSF1" in LE
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Upper bound on a payload: comfortably above any montage the pipeline
/// renders (max_panorama_pixels is 4 MiB per mini-panorama), far below
/// anything that would let a corrupted length field allocate the host out
/// of memory.
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

struct frame {
  std::uint16_t type = 0;
  std::string payload;
};

/// Serializes one frame (header + sealed payload bytes).
[[nodiscard]] std::string encode_frame(std::uint16_t type,
                                       std::string_view payload);

/// Incremental decoder over a byte stream.
class frame_decoder {
 public:
  /// Appends raw bytes from the transport.
  void feed(const char* data, std::size_t size);
  void feed(std::string_view bytes) { feed(bytes.data(), bytes.size()); }

  /// Extracts the next validated frame, or nullopt when the buffer holds
  /// no complete valid frame yet.  Invalid prefixes are skipped.
  [[nodiscard]] std::optional<frame> next();

  /// Bytes discarded while resynchronizing (torn frames, garbage).
  [[nodiscard]] std::uint64_t skipped_bytes() const noexcept {
    return skipped_;
  }

  /// Bytes buffered but not yet consumed (a partial frame in flight).
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  void compact();

  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already processed
  std::uint64_t skipped_ = 0;
};

}  // namespace vs::serve
