#include "serve/job_journal.h"

#include <charconv>
#include <cstdio>

#include "core/error.h"
#include "supervise/journal.h"

namespace vs::serve {

namespace {

std::optional<std::uint64_t> parse_u64(std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

std::string sanitize_label(std::string_view label) {
  std::string out(label.empty() ? "serve" : label);
  for (char& c : out) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '~') c = '_';
  }
  return out;
}

}  // namespace

std::vector<journaled_job> job_journal_state::unfinished() const {
  std::vector<journaled_job> out;
  for (const auto& [id, request] : accepted) {
    if (settled.count(id) != 0) continue;
    out.push_back({id, request});
  }
  std::uint64_t next = max_id();
  for (const auto& request : deferred) {
    out.push_back({++next, request});
  }
  return out;
}

std::uint64_t job_journal_state::max_id() const {
  return accepted.empty() ? 0 : accepted.rbegin()->first;
}

std::string job_journal_header_payload(std::string_view label) {
  return "H " + std::to_string(kJobJournalVersion) + ' ' +
         sanitize_label(label);
}

std::string accepted_payload(std::uint64_t id, const job_request& request) {
  return "A " + std::to_string(id) + request_fields_payload(request);
}

std::string settled_payload(std::uint64_t id, bool completed,
                            fault::outcome failure,
                            std::uint64_t panorama_hash) {
  return "D " + std::to_string(id) + ' ' + (completed ? "1" : "0") + ' ' +
         std::to_string(static_cast<int>(failure)) + ' ' +
         std::to_string(panorama_hash);
}

std::string deferred_payload(const job_request& request) {
  return "G" + request_fields_payload(request);
}

job_journal_state load_job_journal(const std::string& path) {
  job_journal_state state;
  state.skipped_lines +=
      supervise::scan_journal_lines(path, [&](std::string_view payload) {
        auto tokens = split_fields(payload);
        if (tokens.empty()) {
          ++state.skipped_lines;
          return;
        }
        const std::string_view tag = tokens[0];
        tokens.erase(tokens.begin());
        if (tag == "H") {
          // Only the first header counts; a duplicate is journal damage.
          const bool valid = tokens.size() == 2 &&
                             parse_u64(tokens[0]) ==
                                 std::optional<std::uint64_t>(
                                     kJobJournalVersion);
          if (valid && !state.saw_header) {
            state.saw_header = true;
          } else {
            ++state.skipped_lines;
          }
        } else if (tag == "A") {
          if (tokens.empty()) {
            ++state.skipped_lines;
            return;
          }
          const auto id = parse_u64(tokens[0]);
          tokens.erase(tokens.begin());
          const auto request = parse_request_fields(tokens);
          // A duplicated A line (same id) is a replayed write, not damage —
          // first admission wins, matching the server's dedupe rule.
          if (id && request && *id > 0) {
            state.accepted.emplace(*id, *request);
          } else {
            ++state.skipped_lines;
          }
        } else if (tag == "D") {
          const bool shape_ok =
              tokens.size() == 4 && parse_u64(tokens[1]).has_value() &&
              parse_u64(tokens[2]).has_value() &&
              parse_u64(tokens[3]).has_value();
          const auto id =
              shape_ok ? parse_u64(tokens[0]) : std::optional<std::uint64_t>{};
          if (shape_ok && id) {
            state.settled.insert(*id);  // duplicates are no-ops
          } else {
            ++state.skipped_lines;
          }
        } else if (tag == "G") {
          const auto request = parse_request_fields(tokens);
          if (request) {
            state.deferred.push_back(*request);
          } else {
            ++state.skipped_lines;
          }
        } else {
          ++state.skipped_lines;
        }
      });
  // A journal without a readable header has no identity; its records could
  // belong to anything (or be pure corruption) — drop them.
  if (!state.saw_header) {
    state.skipped_lines +=
        state.accepted.size() + state.settled.size() + state.deferred.size();
    state.accepted.clear();
    state.settled.clear();
    state.deferred.clear();
  }
  return state;
}

std::vector<journaled_job> compact_job_journal(const std::string& path,
                                               std::string_view label) {
  const job_journal_state state = load_job_journal(path);
  const std::vector<journaled_job> replay = state.unfinished();

  // Rewrite via tmp + rename: a crash at any point during compaction
  // leaves either the old journal or the complete new one, never a mix.
  const std::string tmp = path + ".compact";
  {
    supervise::journal_writer writer;
    writer.open(tmp, /*truncate=*/true);
    writer.append(job_journal_header_payload(label));
    for (const auto& job : replay) {
      writer.append(accepted_payload(job.id, job.request));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    throw io_error("job_journal: cannot rename " + tmp + " over " + path);
  }
  return replay;
}

}  // namespace vs::serve
