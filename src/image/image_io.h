// Netpbm (PGM/PPM) image I/O.
//
// Binary P5 (grayscale) and P6 (RGB) are the storage formats for golden
// outputs, panoramas and diff visualizations.  ASCII P2/P3 are accepted on
// read for hand-written test fixtures.
#pragma once

#include <string>

#include "image/image.h"

namespace vs::img {

/// Writes `img` as binary PGM (1 channel) or PPM (3 channels).
/// Throws io_error on failure.
void save_pnm(const image_u8& img, const std::string& path);

/// Reads a PGM/PPM file (P2, P3, P5 or P6, maxval <= 255).
/// Throws io_error on failure.
[[nodiscard]] image_u8 load_pnm(const std::string& path);

/// In-memory encode/decode (used by tests to round-trip without the
/// filesystem and by the campaign to hash outputs).
[[nodiscard]] std::string encode_pnm(const image_u8& img);
[[nodiscard]] image_u8 decode_pnm(const std::string& bytes);

}  // namespace vs::img
