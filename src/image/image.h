// Dense row-major images with 1 (grayscale) or 3 (RGB) interleaved channels.
//
// This is the pixel container used throughout the pipeline — the stand-in
// for cv::Mat in the paper's OpenCV 2.4.9 implementation.  Element access in
// the public API is bounds-asserted in debug builds; the instrumented
// kernels perform their own guarded address arithmetic through rt::idx so
// injected faults produce realistic memory behaviour.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/error.h"

namespace vs::img {

template <typename T>
class basic_image {
 public:
  basic_image() = default;

  /// Allocates a width x height image with `channels` interleaved channels,
  /// zero-initialized.
  basic_image(int width, int height, int channels = 1, T fill = T{})
      : width_(width), height_(height), channels_(channels) {
    if (width < 0 || height < 0 || (channels != 1 && channels != 3)) {
      throw invalid_argument("basic_image: bad dimensions");
    }
    data_.assign(static_cast<std::size_t>(width) * height * channels, fill);
  }

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int channels() const noexcept { return channels_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  /// Flat element index of (x, y, c).
  [[nodiscard]] std::size_t offset(int x, int y, int c = 0) const noexcept {
    return (static_cast<std::size_t>(y) * width_ + x) * channels_ + c;
  }

  T& at(int x, int y, int c = 0) {
    assert(in_bounds(x, y) && c >= 0 && c < channels_);
    return data_[offset(x, y, c)];
  }
  const T& at(int x, int y, int c = 0) const {
    assert(in_bounds(x, y) && c >= 0 && c < channels_);
    return data_[offset(x, y, c)];
  }

  /// Clamp-to-edge sample (used by detectors near borders).
  [[nodiscard]] T sample_clamped(int x, int y, int c = 0) const {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[offset(x, y, c)];
  }

  /// Raw flat access (tests and metric code).
  T& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool operator==(const basic_image& other) const noexcept {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_ && data_ == other.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 1;
  std::vector<T> data_;
};

using image_u8 = basic_image<std::uint8_t>;
using image_f32 = basic_image<float>;

/// FNV-1a digest over an image's shape and pixel bytes — what the
/// dual-execution checksum checks (resil::verify_replica) compare for
/// buffer-producing stages.  Not cryptographic; a 64-bit accidental
/// collision between a corrupted and a clean buffer is negligible next to
/// the fault rates being measured.
template <class T>
[[nodiscard]] std::uint64_t digest(const basic_image<T>& image) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(image.width()));
  mix(static_cast<std::uint64_t>(image.height()));
  mix(static_cast<std::uint64_t>(image.channels()));
  const auto* bytes = reinterpret_cast<const unsigned char*>(image.data());
  const std::size_t n = image.size() * sizeof(T);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Grayscale conversion (ITU-R BT.601 luma weights, integer arithmetic).
[[nodiscard]] image_u8 to_gray(const image_u8& src);

/// Replicate a single-channel image into RGB.
[[nodiscard]] image_u8 gray_to_rgb(const image_u8& src);

/// Nearest-neighbour downscale by integer factor (the paper's 3x temporal /
/// spatial downsampling analog for stills).
[[nodiscard]] image_u8 downscale(const image_u8& src, int factor);

/// 3x3 box blur (grayscale), edges clamped.  BRIEF-style descriptors require
/// a smoothed image: without it, sensor noise flips comparison bits and
/// destroys matchability (Calonder et al. 2010).
[[nodiscard]] image_u8 box_blur3(const image_u8& src);

/// Mean absolute per-pixel difference between two same-shaped images.
[[nodiscard]] double mean_abs_diff(const image_u8& a, const image_u8& b);

/// Count of pixels whose absolute difference exceeds `threshold` in any
/// channel.
[[nodiscard]] std::size_t count_diff_pixels(const image_u8& a,
                                            const image_u8& b, int threshold);

}  // namespace vs::img
