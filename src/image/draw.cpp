#include "image/draw.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace vs::img {

void put_pixel(image_u8& img, int x, int y, color c) {
  if (!img.in_bounds(x, y)) return;
  if (img.channels() == 1) {
    img.at(x, y) = c.r;
  } else {
    img.at(x, y, 0) = c.r;
    img.at(x, y, 1) = c.g;
    img.at(x, y, 2) = c.b;
  }
}

void draw_line(image_u8& img, int x0, int y0, int x1, int y1, color c) {
  const int dx = std::abs(x1 - x0);
  const int dy = -std::abs(y1 - y0);
  const int sx = x0 < x1 ? 1 : -1;
  const int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    put_pixel(img, x0, y0, c);
    if (x0 == x1 && y0 == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void fill_rect(image_u8& img, int x0, int y0, int w, int h, color c) {
  const int xa = std::max(0, x0);
  const int ya = std::max(0, y0);
  const int xb = std::min(img.width(), x0 + w);
  const int yb = std::min(img.height(), y0 + h);
  for (int y = ya; y < yb; ++y) {
    for (int x = xa; x < xb; ++x) put_pixel(img, x, y, c);
  }
}

void draw_rect(image_u8& img, int x0, int y0, int w, int h, color c) {
  if (w <= 0 || h <= 0) return;
  draw_line(img, x0, y0, x0 + w - 1, y0, c);
  draw_line(img, x0, y0 + h - 1, x0 + w - 1, y0 + h - 1, c);
  draw_line(img, x0, y0, x0, y0 + h - 1, c);
  draw_line(img, x0 + w - 1, y0, x0 + w - 1, y0 + h - 1, c);
}

void fill_circle(image_u8& img, int cx, int cy, int radius, color c) {
  const int r2 = radius * radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy <= r2) put_pixel(img, cx + dx, cy + dy, c);
    }
  }
}

void draw_circle(image_u8& img, int cx, int cy, int radius, color c) {
  int x = radius;
  int y = 0;
  int err = 1 - radius;
  while (x >= y) {
    put_pixel(img, cx + x, cy + y, c);
    put_pixel(img, cx - x, cy + y, c);
    put_pixel(img, cx + x, cy - y, c);
    put_pixel(img, cx - x, cy - y, c);
    put_pixel(img, cx + y, cy + x, c);
    put_pixel(img, cx - y, cy + x, c);
    put_pixel(img, cx + y, cy - x, c);
    put_pixel(img, cx - y, cy - x, c);
    ++y;
    if (err < 0) {
      err += 2 * y + 1;
    } else {
      --x;
      err += 2 * (y - x) + 1;
    }
  }
}

void draw_marker(image_u8& img, int x, int y, int arm, color c) {
  draw_line(img, x - arm, y, x + arm, y, c);
  draw_line(img, x, y - arm, x, y + arm, c);
}

}  // namespace vs::img
