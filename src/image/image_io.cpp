#include "image/image_io.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace vs::img {

namespace {

// Skips whitespace and '#' comments in a PNM header.
void skip_separators(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

int read_header_int(std::istream& in) {
  skip_separators(in);
  int value = 0;
  if (!(in >> value) || value < 0) {
    throw io_error("pnm: malformed header integer");
  }
  return value;
}

}  // namespace

std::string encode_pnm(const image_u8& img) {
  if (img.empty()) throw invalid_argument("encode_pnm: empty image");
  std::ostringstream out;
  out << (img.channels() == 1 ? "P5" : "P6") << "\n"
      << img.width() << " " << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
  return out.str();
}

image_u8 decode_pnm(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  std::string magic;
  in >> magic;
  const bool binary = magic == "P5" || magic == "P6";
  const bool ascii = magic == "P2" || magic == "P3";
  if (!binary && !ascii) throw io_error("pnm: unsupported magic " + magic);
  const int channels = (magic == "P6" || magic == "P3") ? 3 : 1;

  const int width = read_header_int(in);
  const int height = read_header_int(in);
  const int maxval = read_header_int(in);
  if (maxval <= 0 || maxval > 255) throw io_error("pnm: unsupported maxval");
  if (width <= 0 || height <= 0 || width > 1 << 16 || height > 1 << 16) {
    throw io_error("pnm: unreasonable dimensions");
  }

  image_u8 img(width, height, channels);
  if (binary) {
    in.get();  // the single whitespace byte after maxval
    in.read(reinterpret_cast<char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
    if (static_cast<std::size_t>(in.gcount()) != img.size()) {
      throw io_error("pnm: truncated pixel data");
    }
  } else {
    for (std::size_t i = 0; i < img.size(); ++i) {
      int v = 0;
      if (!(in >> v) || v < 0 || v > maxval) {
        throw io_error("pnm: malformed ascii pixel");
      }
      img[i] = static_cast<std::uint8_t>(v);
    }
  }
  return img;
}

void save_pnm(const image_u8& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw io_error("save_pnm: cannot open " + path);
  const std::string bytes = encode_pnm(img);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw io_error("save_pnm: write failed for " + path);
}

image_u8 load_pnm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw io_error("load_pnm: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return decode_pnm(buffer.str());
}

}  // namespace vs::img
