#include "image/image.h"

#include <algorithm>

#include "image/pixel.h"

namespace vs::img {

image_u8 to_gray(const image_u8& src) {
  if (src.channels() == 1) return src;
  image_u8 out(src.width(), src.height(), 1);
  const std::uint8_t* in = src.data();
  std::uint8_t* dst = out.data();
  const std::size_t pixels = static_cast<std::size_t>(src.width()) *
                             src.height();
  for (std::size_t i = 0; i < pixels; ++i) {
    const int r = in[3 * i];
    const int g = in[3 * i + 1];
    const int b = in[3 * i + 2];
    // 0.299 R + 0.587 G + 0.114 B in 15-bit fixed point.
    dst[i] = static_cast<std::uint8_t>((9798 * r + 19235 * g + 3735 * b) >> 15);
  }
  return out;
}

image_u8 gray_to_rgb(const image_u8& src) {
  if (src.channels() == 3) return src;
  image_u8 out(src.width(), src.height(), 3);
  const std::uint8_t* in = src.data();
  std::uint8_t* dst = out.data();
  const std::size_t pixels = static_cast<std::size_t>(src.width()) *
                             src.height();
  for (std::size_t i = 0; i < pixels; ++i) {
    dst[3 * i] = dst[3 * i + 1] = dst[3 * i + 2] = in[i];
  }
  return out;
}

image_u8 downscale(const image_u8& src, int factor) {
  if (factor <= 0) throw invalid_argument("downscale: factor must be >= 1");
  if (factor == 1) return src;
  const int w = std::max(1, src.width() / factor);
  const int h = std::max(1, src.height() / factor);
  image_u8 out(w, h, src.channels());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (int c = 0; c < src.channels(); ++c) {
        out.at(x, y, c) = src.at(x * factor, y * factor, c);
      }
    }
  }
  return out;
}

image_u8 box_blur3(const image_u8& src) {
  if (src.channels() != 1) throw invalid_argument("box_blur3: need gray");
  image_u8 out(src.width(), src.height(), 1);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      int sum = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          sum += src.sample_clamped(x + dx, y + dy);
        }
      }
      out.at(x, y) = static_cast<std::uint8_t>((sum + 4) / 9);
    }
  }
  return out;
}

double mean_abs_diff(const image_u8& a, const image_u8& b) {
  if (a.size() != b.size() || a.size() == 0) {
    throw invalid_argument("mean_abs_diff: shape mismatch or empty");
  }
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += static_cast<std::uint64_t>(absdiff_u8(a[i], b[i]));
  }
  return static_cast<double>(sum) / static_cast<double>(a.size());
}

std::size_t count_diff_pixels(const image_u8& a, const image_u8& b,
                              int threshold) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.channels() != b.channels()) {
    throw invalid_argument("count_diff_pixels: shape mismatch");
  }
  std::size_t count = 0;
  const int ch = a.channels();
  const std::size_t pixels = static_cast<std::size_t>(a.width()) * a.height();
  for (std::size_t i = 0; i < pixels; ++i) {
    for (int c = 0; c < ch; ++c) {
      if (absdiff_u8(a[i * ch + c], b[i * ch + c]) > threshold) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace vs::img
