// Rasterization primitives used by the synthetic-scene generator and by the
// example programs (keypoint / match visualization).
#pragma once

#include "image/image.h"

namespace vs::img {

/// RGB color triple (gray images use .r).
struct color {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
};

/// Sets one pixel if in bounds (no-op outside).
void put_pixel(image_u8& img, int x, int y, color c);

/// Bresenham line segment.
void draw_line(image_u8& img, int x0, int y0, int x1, int y1, color c);

/// Axis-aligned filled rectangle, clipped to the image.
void fill_rect(image_u8& img, int x0, int y0, int w, int h, color c);

/// Axis-aligned 1-px rectangle outline.
void draw_rect(image_u8& img, int x0, int y0, int w, int h, color c);

/// Filled circle (midpoint), clipped.
void fill_circle(image_u8& img, int cx, int cy, int radius, color c);

/// Circle outline.
void draw_circle(image_u8& img, int cx, int cy, int radius, color c);

/// Small "+" marker (used to visualize keypoints).
void draw_marker(image_u8& img, int x, int y, int arm, color c);

}  // namespace vs::img
