// Pixel-level helpers shared by the imaging kernels.
#pragma once

#include <cstdint>

namespace vs::img {

/// OpenCV-style saturating conversion to uint8.  This is the "saturation
/// algorithm" the paper credits with masking most FPR faults: any float
/// result, however corrupted, is clamped into [0, 255] before being stored
/// back into the 8-bit pixel array.
[[nodiscard]] constexpr std::uint8_t saturate_u8(int v) noexcept {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

[[nodiscard]] inline std::uint8_t saturate_u8(double v) noexcept {
  if (!(v > 0.0)) return 0;  // negative and NaN both clamp to 0
  if (v > 255.0) return 255;
  return static_cast<std::uint8_t>(v + 0.5);
}

[[nodiscard]] inline std::uint8_t saturate_u8(float v) noexcept {
  return saturate_u8(static_cast<double>(v));
}

/// Integer absolute difference of two u8 values.
[[nodiscard]] constexpr int absdiff_u8(std::uint8_t a, std::uint8_t b) noexcept {
  return a > b ? a - b : b - a;
}

}  // namespace vs::img
