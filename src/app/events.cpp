#include "app/events.h"

#include "image/draw.h"

namespace vs::app {

img::image_u8 overlay_tracks(const img::image_u8& panorama,
                             const geo::rect& content_bounds,
                             const std::vector<track::object_track>& tracks,
                             bool confirmed_only) {
  img::image_u8 annotated = img::gray_to_rgb(panorama);
  const img::color trail{230, 40, 40};
  const img::color head{255, 220, 40};
  for (const auto& track : tracks) {
    if (confirmed_only && track.state == track::track_state::tentative) {
      continue;
    }
    if (track.path.size() < 2) continue;
    for (std::size_t i = 1; i < track.path.size(); ++i) {
      const auto a = track.path[i - 1];
      const auto b = track.path[i];
      img::draw_line(annotated, static_cast<int>(a.x) - content_bounds.x0,
                     static_cast<int>(a.y) - content_bounds.y0,
                     static_cast<int>(b.x) - content_bounds.x0,
                     static_cast<int>(b.y) - content_bounds.y0, trail);
    }
    const auto last = track.path.back();
    img::draw_rect(annotated, static_cast<int>(last.x) - content_bounds.x0 - 2,
                   static_cast<int>(last.y) - content_bounds.y0 - 2, 5, 5,
                   head);
  }
  return annotated;
}

event_summary summarize_events(const video::video_source& source,
                               const pipeline_config& config,
                               const event_config& events) {
  event_summary summary;
  summary.coverage = summarize(source, config);
  const auto& coverage = summary.coverage;

  summary.tracks.resize(coverage.mini_panoramas.size());

  // Walk the placements per mini-panorama; consecutive placements within
  // one panorama give the inter-frame model needed for motion detection.
  std::vector<track::tracker> trackers(coverage.mini_panoramas.size(),
                                       track::tracker(events.tracking));
  for (std::size_t i = 1; i < coverage.placements.size(); ++i) {
    const auto& prev = coverage.placements[i - 1];
    const auto& cur = coverage.placements[i];
    if (cur.panorama_index != prev.panorama_index || cur.panorama_index < 0) {
      continue;
    }
    // prev_to_cur = cur_to_anchor^-1 * prev_to_anchor.
    const auto cur_inverse = cur.frame_to_anchor.inverse();
    if (!cur_inverse) continue;
    const geo::mat3 prev_to_cur = (*cur_inverse) * prev.frame_to_anchor;

    const auto current = source.frame(cur.frame_index);
    const auto previous = source.frame(prev.frame_index);
    const auto detections =
        track::detect_motion(current, previous, prev_to_cur, events.motion);
    summary.detections_total += static_cast<int>(detections.size());

    // Lift detections into anchor coordinates for the tracker.
    std::vector<geo::vec2> anchored;
    anchored.reserve(detections.size());
    for (const auto& d : detections) {
      anchored.push_back(cur.frame_to_anchor.apply(d.centroid));
    }
    trackers[static_cast<std::size_t>(cur.panorama_index)].observe(
        cur.frame_index, anchored);
  }

  // Collect tracks and build the annotated montage.
  std::vector<img::image_u8> annotated_panos;
  annotated_panos.reserve(coverage.mini_panoramas.size());
  for (std::size_t p = 0; p < coverage.mini_panoramas.size(); ++p) {
    summary.tracks[p] = trackers[p].tracks();
    annotated_panos.push_back(overlay_tracks(
        coverage.mini_panoramas[p], coverage.panorama_bounds[p],
        summary.tracks[p], events.confirmed_only));
  }
  summary.annotated = stitch::montage(annotated_panos);
  return summary;
}

}  // namespace vs::app
