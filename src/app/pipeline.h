// The end-to-end Video Summarization application.
//
// Consumes a frame source, aligns consecutive frames (homography with affine
// fallback), accumulates mini-panoramas — closing one and opening the next
// when the view changes too much for frames to be related — and emits the
// coverage summary: the montage of mini-panoramas that stands for the
// paper's output panorama.
#pragma once

#include <vector>

#include "app/config.h"
#include "geometry/mat3.h"
#include "geometry/warp.h"
#include "image/image.h"
#include "video/generator.h"

namespace vs::app {

/// Per-run statistics (the quantities behind the paper's Section IV-A
/// discussion of why approximations speed Input 1 up more than Input 2).
/// Field order is deliberate: every int precedes every size_t so the
/// struct has no padding bytes (goldens digest it bytewise).
struct run_stats {
  int frames_total = 0;        ///< frames offered by the source
  int frames_dropped_rfd = 0;  ///< dropped up-front by VS_RFD
  int frames_stitched = 0;     ///< landed in some mini-panorama
  int frames_discarded = 0;    ///< dropped for lack of matching key points
  int homography_alignments = 0;
  int affine_alignments = 0;
  int mini_panoramas = 0;
  // Real-time gating (src/gate/; all zero at --gate=off):
  int frames_gated_skip = 0;   ///< near-duplicates riding the last placement
  int frames_gated_delta = 0;  ///< extrapolated alignment + ROI extraction
  int gate_invalidations = 0;  ///< gated state dropped by recovery/re-anchor
  std::size_t keypoints_detected = 0;
  std::size_t keypoints_matched_on = 0;  ///< after KDS subsetting
  std::size_t total_matches = 0;
  std::size_t keypoints_reused = 0;  ///< descriptors carried across frames
};

/// Where one stitched frame landed: which mini-panorama, under what
/// transform, and the content-relative origin of that panorama — enough to
/// map frame coordinates onto the rendered summary (event overlays, Fig 2).
struct frame_placement {
  int frame_index = -1;
  int panorama_index = -1;         ///< index into mini_panoramas
  geo::mat3 frame_to_anchor;       ///< frame coords -> anchor coords
};

/// The application result: the summary image plus statistics.
struct summary_result {
  img::image_u8 panorama;  ///< montage of all mini-panoramas
  std::vector<img::image_u8> mini_panoramas;
  /// Content origin (anchor coords) of each mini-panorama's rendered image.
  std::vector<geo::rect> panorama_bounds;
  std::vector<frame_placement> placements;  ///< one per stitched frame
  run_stats stats;
  /// What the hardening detected and recovered (all zero when
  /// config.hardening is off).  Also published per-thread via
  /// resil::last_run_report() for the campaign driver.
  resil::run_report recovery;
};

/// Runs the VS application (or an approximate variant, per config.approx)
/// over `source`.  Deterministic given (source, config).
[[nodiscard]] summary_result summarize(const video::video_source& source,
                                       const pipeline_config& config);

}  // namespace vs::app
