// Configuration of the end-to-end VS application and its approximations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "features/orb.h"
#include "gate/gate.h"
#include "image/image.h"
#include "match/matcher.h"
#include "pipeline/scheduler.h"
#include "resil/hardening.h"
#include "stitch/stitcher.h"

namespace vs::app {

/// The four algorithm variants evaluated in the paper (Section IV).
enum class algorithm {
  vs,      ///< baseline precise pipeline
  vs_rfd,  ///< Random Frame Dropping (input sampling)
  vs_kds,  ///< Key-point Down-Sampling (selective computation)
  vs_sm,   ///< Simple Matching (algorithmic transformation)
};

[[nodiscard]] const char* algorithm_name(algorithm alg) noexcept;

/// Parses "VS" / "VS_RFD" / "VS_KDS" / "VS_SM" (case-insensitive).
/// Throws invalid_argument on unknown names.
[[nodiscard]] algorithm parse_algorithm(const std::string& name);

/// Approximation knobs (only the knob selected by `alg` is active).
struct approx_config {
  algorithm alg = algorithm::vs;
  double rfd_drop_fraction = 0.10;        ///< paper: up to 10% frames dropped
  double kds_keypoint_fraction = 1.0 / 3.0;  ///< paper: match 1/3 of keypoints
  int sm_max_distance = 30;               ///< paper: fixed distance bound
};

/// Full pipeline configuration.  Defaults reproduce the baseline VS.
struct pipeline_config {
  approx_config approx;
  feat::orb_params orb;
  stitch::alignment_params alignment;
  double match_ratio = 0.75;  ///< Lowe ratio for the baseline 2-NN test
  int discard_limit = 2;  ///< consecutive discards that close a mini-panorama
  std::size_t max_panorama_pixels = 4u << 20;
  /// Exposure compensation between frames while compositing (off in the
  /// calibrated experiments; useful on real footage with auto-gain).
  bool gain_compensation = false;
  std::uint64_t seed = 42;  ///< seeds RANSAC sampling and RFD dropping

  /// Clean-lane frame lookahead: how many frames beyond the one being
  /// stitched may have their prefetchable stage prefix (acquire + detect +
  /// describe) in flight on helper threads.  0 disables the overlap; the
  /// instrumented lane always runs strictly inline whatever this says.
  /// Output is byte-identical at every depth (the prefix is a pure
  /// function of the frame index, consumed in stitch order).
  int frames_in_flight = 2;

  /// Clean-lane stage batching (pipeline/scheduler.h): how many in-flight
  /// frames one per-stage pool dispatch may group.  kBatchOff keeps the
  /// legacy one-future-per-frame ring; kBatchAuto tracks the dispatch
  /// width; kBatchInherit (the default) defers to --batch / VS_BATCH.
  /// Byte-identical along the whole axis, like frames_in_flight.
  int batch = pipeline::kBatchInherit;

  /// External stage scheduler to feed instead of a per-run private one —
  /// the serving front end shares one across admitted jobs so deep queues
  /// batch frames from different clips into single dispatches.  Must
  /// outlive the run.  Null = own scheduler when batching is on.
  pipeline::stage_scheduler* scheduler = nullptr;

  /// Real-time frame gating (src/gate/): the temporal-approximation axis.
  /// gate.request defaults to gate::kLevelInherit, deferring to --gate /
  /// VS_GATE; the resolved default is off, which is bit-identical —
  /// including the instrumented-lane hook stream — to builds without the
  /// subsystem.
  gate::gate_config gate;

  /// Fault containment & recovery (src/resil/).  Off by default: the
  /// unhardened pipeline is bit-identical — including its instrumented-lane
  /// hook stream — to builds without the subsystem.
  resil::hardening_config hardening;

  /// Streaming observer: invoked with (index, rendered image) the moment a
  /// mini-panorama closes, before the run finishes — the hook the serving
  /// front end uses to stream partial summaries to clients.  Purely
  /// observational: the callback sees the same images summarize() returns
  /// in summary_result::mini_panoramas.  Under hardening, a frame retry can
  /// replay a close after state restore, so streaming consumers should drop
  /// indices they have already seen.
  std::function<void(int index, const img::image_u8& panorama)>
      on_mini_panorama;

  /// Derives the matcher configuration implied by the approximation.
  [[nodiscard]] match::match_params matcher() const {
    match::match_params p;
    if (approx.alg == algorithm::vs_sm) {
      p.mode = match::match_mode::simple;
      p.max_distance = approx.sm_max_distance;
    } else {
      p.mode = match::match_mode::ratio_test;
      p.ratio = match_ratio;
    }
    return p;
  }
};

}  // namespace vs::app
