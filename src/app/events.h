// Event summarization (Fig 2's second branch) and the integrated summary.
//
// Runs the coverage pipeline, detects moving objects between consecutive
// stitched frames (alignment-compensated differencing), tracks them per
// mini-panorama in anchor coordinates, and overlays the confirmed tracks on
// the coverage montage — "a comprehensive and concise summarization of a
// whole UAV video" (Section II-A).
#pragma once

#include <vector>

#include "app/pipeline.h"
#include "track/motion.h"
#include "track/tracker.h"

namespace vs::app {

struct event_config {
  track::motion_params motion;
  track::tracker_params tracking;
  bool confirmed_only = true;  ///< overlay only confirmed tracks
};

/// Event summary output.
struct event_summary {
  summary_result coverage;  ///< the coverage summarization result
  /// All tracks, per mini-panorama (anchor coordinates).
  std::vector<std::vector<track::object_track>> tracks;
  /// The integrated summary: coverage montage with tracks drawn over it
  /// (RGB: track polylines in red, current positions boxed).
  img::image_u8 annotated;
  int detections_total = 0;
};

/// Runs coverage + event summarization over `source`.
[[nodiscard]] event_summary summarize_events(const video::video_source& source,
                                             const pipeline_config& config,
                                             const event_config& events = {});

/// Draws tracks (anchor coordinates) onto an RGB copy of a mini-panorama
/// whose rendered content starts at `content_origin`.  Exposed for tests.
[[nodiscard]] img::image_u8 overlay_tracks(
    const img::image_u8& panorama, const geo::rect& content_bounds,
    const std::vector<track::object_track>& tracks, bool confirmed_only);

}  // namespace vs::app
