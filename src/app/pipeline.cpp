#include "app/pipeline.h"

#include <algorithm>
#include <cctype>
#include <future>

#include "core/error.h"
#include "core/rng.h"
#include "rt/instrument.h"

namespace vs::app {

const char* algorithm_name(algorithm alg) noexcept {
  switch (alg) {
    case algorithm::vs:
      return "VS";
    case algorithm::vs_rfd:
      return "VS_RFD";
    case algorithm::vs_kds:
      return "VS_KDS";
    case algorithm::vs_sm:
      return "VS_SM";
  }
  return "?";
}

algorithm parse_algorithm(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "VS") return algorithm::vs;
  if (upper == "VS_RFD" || upper == "RFD") return algorithm::vs_rfd;
  if (upper == "VS_KDS" || upper == "KDS") return algorithm::vs_kds;
  if (upper == "VS_SM" || upper == "SM") return algorithm::vs_sm;
  throw invalid_argument("unknown algorithm: " + name);
}

namespace {

// VS_KDS: match on only a fraction of the keypoints.  Matching cost —
// O(n^2) in keypoints — falls by ~fraction^2.  The subset is chosen as the
// spatially-dominant corners: greedily take the strongest keypoint whose
// distance to every already-kept keypoint is at least a spacing radius.
// Local dominance is far more stable between consecutive frames than a raw
// score ranking (scores jitter with noise and subpixel motion, but the
// strongest corner of a neighbourhood stays the strongest), so the retained
// third keeps supporting alignment most of the time.
feat::frame_features subsample_features(const feat::frame_features& features,
                                        double fraction) {
  if (fraction >= 1.0 || features.empty()) return features;
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(features.size()) * fraction + 0.5));

  feat::frame_features out;
  out.keypoints.reserve(keep);
  out.descriptors.reserve(keep);
  // Pass 1: enforce a spacing radius among the score-ordered keypoints.
  constexpr float spacing2 = 10.0f * 10.0f;
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < features.size() && out.size() < keep; ++i) {
    const auto& kp = features.keypoints[i];
    bool spaced = true;
    for (const auto& kept : out.keypoints) {
      const float dx = kept.x - kp.x;
      const float dy = kept.y - kp.y;
      if (dx * dx + dy * dy < spacing2) {
        spaced = false;
        break;
      }
    }
    if (spaced) {
      out.keypoints.push_back(kp);
      out.descriptors.push_back(features.descriptors[i]);
    } else {
      rejected.push_back(i);
    }
  }
  // Pass 2: top up from the strongest rejected ones if spacing was too
  // aggressive to reach the requested fraction.
  for (std::size_t i = 0; i < rejected.size() && out.size() < keep; ++i) {
    out.keypoints.push_back(features.keypoints[rejected[i]]);
    out.descriptors.push_back(features.descriptors[rejected[i]]);
  }
  rt::account(rt::op::int_alu, features.size() * 8);
  return out;
}

}  // namespace

summary_result summarize(const video::video_source& source,
                         const pipeline_config& config) {
  summary_result result;
  result.stats.frames_total = source.frame_count();

  const match::match_params matcher = config.matcher();
  rng drop_rng(config.seed ^ 0xd20bULL);

  // State of the currently-open mini-panorama.
  stitch::mini_panorama_builder builder(config.max_panorama_pixels,
                                        config.gain_compensation);
  geo::mat3 cumulative = geo::mat3::identity();  // current frame -> anchor
  feat::frame_features prev_features;            // features of last aligned frame
  bool have_reference = false;
  int consecutive_discards = 0;
  std::vector<frame_placement> pending_placements;

  auto record_placement = [&](int frame_index, const geo::mat3& transform) {
    frame_placement placement;
    placement.frame_index = frame_index;
    placement.frame_to_anchor = transform;
    pending_placements.push_back(placement);
  };

  auto close_mini_panorama = [&] {
    if (!builder.empty()) {
      auto pano = builder.render();
      if (!pano.empty()) {
        const int pano_index = result.stats.mini_panoramas;
        for (auto& placement : pending_placements) {
          placement.panorama_index = pano_index;
          result.placements.push_back(placement);
        }
        result.panorama_bounds.push_back(builder.content_bounds());
        result.mini_panoramas.push_back(std::move(pano));
        ++result.stats.mini_panoramas;
      }
    }
    pending_placements.clear();
    builder = stitch::mini_panorama_builder(config.max_panorama_pixels,
                                            config.gain_compensation);
    cumulative = geo::mat3::identity();
    have_reference = false;
    consecutive_discards = 0;
  };

  const int frame_count =
      static_cast<int>(rt::ctrl(source.frame_count()));

  // Clean-lane frame overlap: while frame t is matched and stitched on this
  // thread, frame t+1 is acquired on a helper thread.  Sources are
  // documented thread-safe for concurrent reads, and frame rendering is a
  // pure function of the index, so the overlap cannot change any bytes.
  // The instrumented lane never prefetches: acquisition must stay inline so
  // its hook sequence keeps its position in the dynamic-instruction stream.
  // A prefetched frame that RFD then drops is simply never consumed.
  const bool overlap_acquisition = !rt::tls.enabled && frame_count > 1;
  std::future<img::image_u8> next_frame;
  int next_frame_index = -1;
  auto acquire = [&](int index) {
    img::image_u8 frame;
    if (next_frame_index == index && next_frame.valid()) {
      frame = next_frame.get();
    } else {
      frame = source.frame(index);
    }
    if (overlap_acquisition && index + 1 < frame_count) {
      next_frame_index = index + 1;
      next_frame = std::async(std::launch::async, [&source, i = index + 1] {
        return source.frame(i);
      });
    }
    return frame;
  };

  for (int index = 0; index < frame_count; ++index) {
    // --- VS_RFD: random input sampling ---------------------------------
    // The drop decision is drawn for every frame (whatever the variant) so
    // all variants see identical RNG streams downstream.
    const bool drop = drop_rng.chance(config.approx.rfd_drop_fraction);
    if (config.approx.alg == algorithm::vs_rfd && drop) {
      ++result.stats.frames_dropped_rfd;
      continue;
    }

    const img::image_u8 frame = acquire(index);
    feat::frame_features features = feat::orb_extract(frame, config.orb);
    result.stats.keypoints_detected += features.size();

    // --- VS_KDS: selective computation ----------------------------------
    if (config.approx.alg == algorithm::vs_kds) {
      features =
          subsample_features(features, config.approx.kds_keypoint_fraction);
    }
    result.stats.keypoints_matched_on += features.size();

    if (!have_reference) {
      // First (usable) frame anchors the mini-panorama.
      if (builder.add_frame(frame, geo::mat3::identity())) {
        ++result.stats.frames_stitched;
        record_placement(index, geo::mat3::identity());
        prev_features = std::move(features);
        have_reference = true;
        consecutive_discards = 0;
      } else {
        ++result.stats.frames_discarded;
      }
      continue;
    }

    const auto aligned = stitch::align_frames(
        features, prev_features, matcher, config.alignment,
        config.seed + static_cast<std::uint64_t>(index) * 7919u);

    if (!aligned) {
      ++result.stats.frames_discarded;
      if (++consecutive_discards > config.discard_limit) {
        // The view changed beyond recovery: close this mini-panorama and
        // anchor a new one at the next usable frame.
        close_mini_panorama();
        if (builder.add_frame(frame, geo::mat3::identity())) {
          ++result.stats.frames_stitched;
          --result.stats.frames_discarded;  // it became the new anchor
          record_placement(index, geo::mat3::identity());
          prev_features = std::move(features);
          have_reference = true;
        }
      }
      continue;
    }

    result.stats.total_matches += aligned->matches;
    if (aligned->kind == stitch::model_kind::homography) {
      ++result.stats.homography_alignments;
    } else {
      ++result.stats.affine_alignments;
    }

    const geo::mat3 frame_to_anchor = cumulative * aligned->transform;
    if (builder.add_frame(frame, frame_to_anchor)) {
      cumulative = frame_to_anchor;
      record_placement(index, frame_to_anchor);
      prev_features = std::move(features);
      ++result.stats.frames_stitched;
      consecutive_discards = 0;
    } else {
      // Implausible accumulated drift or canvas overflow: treat like a hard
      // view change.
      ++result.stats.frames_discarded;
      close_mini_panorama();
      if (builder.add_frame(frame, geo::mat3::identity())) {
        ++result.stats.frames_stitched;
        --result.stats.frames_discarded;
        record_placement(index, geo::mat3::identity());
        prev_features = std::move(features);
        have_reference = true;
      }
    }
  }
  close_mini_panorama();

  result.panorama = stitch::montage(result.mini_panoramas);
  return result;
}

}  // namespace vs::app
