#include "app/pipeline.h"

#include <algorithm>
#include <cctype>
#include <future>
#include <optional>

#include "core/error.h"
#include "core/rng.h"
#include "resil/recovery.h"
#include "resil/runtime.h"
#include "rt/instrument.h"

namespace vs::app {

const char* algorithm_name(algorithm alg) noexcept {
  switch (alg) {
    case algorithm::vs:
      return "VS";
    case algorithm::vs_rfd:
      return "VS_RFD";
    case algorithm::vs_kds:
      return "VS_KDS";
    case algorithm::vs_sm:
      return "VS_SM";
  }
  return "?";
}

algorithm parse_algorithm(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "VS") return algorithm::vs;
  if (upper == "VS_RFD" || upper == "RFD") return algorithm::vs_rfd;
  if (upper == "VS_KDS" || upper == "KDS") return algorithm::vs_kds;
  if (upper == "VS_SM" || upper == "SM") return algorithm::vs_sm;
  throw invalid_argument("unknown algorithm: " + name);
}

namespace {

// VS_KDS: match on only a fraction of the keypoints.  Matching cost —
// O(n^2) in keypoints — falls by ~fraction^2.  The subset is chosen as the
// spatially-dominant corners: greedily take the strongest keypoint whose
// distance to every already-kept keypoint is at least a spacing radius.
// Local dominance is far more stable between consecutive frames than a raw
// score ranking (scores jitter with noise and subpixel motion, but the
// strongest corner of a neighbourhood stays the strongest), so the retained
// third keeps supporting alignment most of the time.
feat::frame_features subsample_features(const feat::frame_features& features,
                                        double fraction) {
  if (fraction >= 1.0 || features.empty()) return features;
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(features.size()) * fraction + 0.5));

  feat::frame_features out;
  out.keypoints.reserve(keep);
  out.descriptors.reserve(keep);
  // Pass 1: enforce a spacing radius among the score-ordered keypoints.
  constexpr float spacing2 = 10.0f * 10.0f;
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < features.size() && out.size() < keep; ++i) {
    const auto& kp = features.keypoints[i];
    bool spaced = true;
    for (const auto& kept : out.keypoints) {
      const float dx = kept.x - kp.x;
      const float dy = kept.y - kp.y;
      if (dx * dx + dy * dy < spacing2) {
        spaced = false;
        break;
      }
    }
    if (spaced) {
      out.keypoints.push_back(kp);
      out.descriptors.push_back(features.descriptors[i]);
    } else {
      rejected.push_back(i);
    }
  }
  // Pass 2: top up from the strongest rejected ones if spacing was too
  // aggressive to reach the requested fraction.
  for (std::size_t i = 0; i < rejected.size() && out.size() < keep; ++i) {
    out.keypoints.push_back(features.keypoints[rejected[i]]);
    out.descriptors.push_back(features.descriptors[rejected[i]]);
  }
  rt::account(rt::op::int_alu, features.size() * 8);
  return out;
}

}  // namespace

namespace {

/// Everything one frame of work may mutate, bundled so the recovery
/// boundary can snapshot it with one copy and restore it with one swap.
struct pipeline_state {
  summary_result result;
  stitch::mini_panorama_builder builder;
  geo::mat3 cumulative = geo::mat3::identity();  // current frame -> anchor
  feat::frame_features prev_features;  // features of last aligned frame
  bool have_reference = false;
  int consecutive_discards = 0;
  std::vector<frame_placement> pending_placements;
  /// Last successful inter-frame motion model (degrade step 1 reuses it to
  /// place a failing frame by dead reckoning).
  geo::mat3 last_delta = geo::mat3::identity();
  bool have_last_delta = false;

  pipeline_state(const pipeline_config& config)
      : builder(config.max_panorama_pixels, config.gain_compensation) {}
};

/// Budgeted stage entry: meters the stage under the per-stage watchdog
/// (hardened runs only) and marks the CFCSS transition.  Every branch is
/// hook-free, so the unhardened instrumented lane's dynamic op stream is
/// untouched.
struct stage_meter {
  std::optional<rt::stage_scope> scope;
  stage_meter(bool hardened, std::uint64_t budget, resil::cfcss::node n) {
    if (hardened) scope.emplace(budget);
    resil::mark(n);
  }
};

}  // namespace

summary_result summarize(const video::video_source& source,
                         const pipeline_config& config) {
  const bool hardened = config.hardening.enabled();
  std::optional<resil::session> hardening(std::nullopt);
  if (hardened) hardening.emplace(config.hardening);

  pipeline_state st(config);
  st.result.stats.frames_total = source.frame_count();

  const match::match_params matcher = config.matcher();
  rng drop_rng(config.seed ^ 0xd20bULL);

  auto record_placement = [&](int frame_index, const geo::mat3& transform) {
    frame_placement placement;
    placement.frame_index = frame_index;
    placement.frame_to_anchor = transform;
    st.pending_placements.push_back(placement);
  };

  auto reset_builder = [&] {
    st.pending_placements.clear();
    st.builder = stitch::mini_panorama_builder(config.max_panorama_pixels,
                                               config.gain_compensation);
    st.cumulative = geo::mat3::identity();
    st.have_reference = false;
    st.consecutive_discards = 0;
  };

  auto close_mini_panorama = [&] {
    if (!st.builder.empty()) {
      auto pano = st.builder.render();
      if (!pano.empty()) {
        const int pano_index = st.result.stats.mini_panoramas;
        for (auto& placement : st.pending_placements) {
          placement.panorama_index = pano_index;
          st.result.placements.push_back(placement);
        }
        st.result.panorama_bounds.push_back(st.builder.content_bounds());
        st.result.mini_panoramas.push_back(std::move(pano));
        ++st.result.stats.mini_panoramas;
      }
    }
    reset_builder();
  };

  /// Containment for the mini-panorama close itself: the final render walks
  /// the whole canvas, so corrupted canvas state can crash there.  The
  /// degradation is losing that one mini-panorama, not the summary.
  auto close_mini_panorama_contained = [&] {
    if (!hardened) {
      close_mini_panorama();
      return;
    }
    if (const auto failure = resil::attempt(close_mini_panorama)) {
      ++resil::tls.report.panoramas_dropped;
      ++resil::tls.report.frames_degraded;
      reset_builder();
    }
  };

  const int frame_count =
      static_cast<int>(rt::ctrl(source.frame_count()));

  // Clean-lane frame overlap: while frame t is matched and stitched on this
  // thread, frame t+1 is acquired on a helper thread.  Sources are
  // documented thread-safe for concurrent reads, and frame rendering is a
  // pure function of the index, so the overlap cannot change any bytes.
  // The instrumented lane never prefetches: acquisition must stay inline so
  // its hook sequence keeps its position in the dynamic-instruction stream.
  // A prefetched frame that RFD then drops is simply never consumed.
  const bool overlap_acquisition = !rt::tls.enabled && frame_count > 1;
  std::future<img::image_u8> next_frame;
  int next_frame_index = -1;
  auto acquire = [&](int index) {
    img::image_u8 frame;
    if (next_frame_index == index && next_frame.valid()) {
      frame = next_frame.get();
    } else {
      frame = source.frame(index);
    }
    if (overlap_acquisition && index + 1 < frame_count) {
      next_frame_index = index + 1;
      next_frame = std::async(std::launch::async, [&source, i = index + 1] {
        return source.frame(i);
      });
    }
    return frame;
  };

  const auto& budgets = config.hardening.stage_budgets;

  // --- the per-frame unit of work: detect -> describe -> match ->
  // --- estimate -> composite, exactly the legacy statement order ---------
  auto frame_body = [&](int index) {
    if (resil::tls.monitor != nullptr) resil::tls.monitor->begin_frame();

    img::image_u8 frame;
    {
      const stage_meter meter(hardened, budgets.acquire,
                              resil::cfcss::node::acquire);
      frame = acquire(index);
    }

    feat::frame_features features;
    {
      const stage_meter meter(hardened, budgets.extract,
                              resil::cfcss::node::detect);
      features = feat::orb_extract(frame, config.orb);
      resil::mark(resil::cfcss::node::describe);
    }
    st.result.stats.keypoints_detected += features.size();

    // --- VS_KDS: selective computation ----------------------------------
    if (config.approx.alg == algorithm::vs_kds) {
      features =
          subsample_features(features, config.approx.kds_keypoint_fraction);
    }
    st.result.stats.keypoints_matched_on += features.size();

    if (!st.have_reference) {
      // First (usable) frame anchors the mini-panorama.
      const stage_meter meter(hardened, budgets.composite,
                              resil::cfcss::node::composite);
      if (st.builder.add_frame(frame, geo::mat3::identity())) {
        ++st.result.stats.frames_stitched;
        record_placement(index, geo::mat3::identity());
        st.prev_features = std::move(features);
        st.have_reference = true;
        st.consecutive_discards = 0;
      } else {
        ++st.result.stats.frames_discarded;
      }
      resil::mark(resil::cfcss::node::frame_end);
      return;
    }

    std::optional<stitch::alignment> aligned;
    {
      const stage_meter meter(hardened, budgets.align,
                              resil::cfcss::node::match);
      aligned = stitch::align_frames(
          features, st.prev_features, matcher, config.alignment,
          config.seed + static_cast<std::uint64_t>(index) * 7919u);
    }

    if (!aligned) {
      ++st.result.stats.frames_discarded;
      if (++st.consecutive_discards > config.discard_limit) {
        // The view changed beyond recovery: close this mini-panorama and
        // anchor a new one at the next usable frame.
        const stage_meter meter(hardened, budgets.composite,
                                resil::cfcss::node::composite);
        close_mini_panorama();
        if (st.builder.add_frame(frame, geo::mat3::identity())) {
          ++st.result.stats.frames_stitched;
          --st.result.stats.frames_discarded;  // it became the new anchor
          record_placement(index, geo::mat3::identity());
          st.prev_features = std::move(features);
          st.have_reference = true;
        }
      }
      resil::mark(resil::cfcss::node::frame_end);
      return;
    }

    st.result.stats.total_matches += aligned->matches;
    if (aligned->kind == stitch::model_kind::homography) {
      ++st.result.stats.homography_alignments;
    } else {
      ++st.result.stats.affine_alignments;
    }

    const geo::mat3 frame_to_anchor = st.cumulative * aligned->transform;
    const stage_meter meter(hardened, budgets.composite,
                            resil::cfcss::node::composite);
    if (st.builder.add_frame(frame, frame_to_anchor)) {
      st.cumulative = frame_to_anchor;
      record_placement(index, frame_to_anchor);
      st.prev_features = std::move(features);
      ++st.result.stats.frames_stitched;
      st.consecutive_discards = 0;
      st.last_delta = aligned->transform;
      st.have_last_delta = true;
    } else {
      // Implausible accumulated drift or canvas overflow: treat like a hard
      // view change.
      ++st.result.stats.frames_discarded;
      close_mini_panorama();
      if (st.builder.add_frame(frame, geo::mat3::identity())) {
        ++st.result.stats.frames_stitched;
        --st.result.stats.frames_discarded;
        record_placement(index, geo::mat3::identity());
        st.prev_features = std::move(features);
        st.have_reference = true;
      }
    }
    resil::mark(resil::cfcss::node::frame_end);
  };

  // --- graceful degradation: the bottom rungs of the policy ladder -------
  // Step 1: place the frame by dead reckoning with the last successful
  // motion model (the compositor still paints it, just at its predicted
  // position; the reference features stay those of the last aligned frame,
  // so `cumulative` is deliberately not advanced).  Step 2: close the
  // mini-panorama and skip the frame — persistent corruption in the open
  // panorama's state cannot outlive a re-anchor.
  auto degrade_frame = [&](int index) {
    ++resil::tls.report.frames_degraded;
    if (config.hardening.reuse_last_motion && st.have_reference &&
        st.have_last_delta) {
      const bool placed = !resil::attempt([&] {
        const img::image_u8 frame = acquire(index);
        const geo::mat3 frame_to_anchor = st.cumulative * st.last_delta;
        if (!st.builder.add_frame(frame, frame_to_anchor)) {
          throw crash_error(crash_kind::abort,
                            "degraded placement rejected by compositor");
        }
        record_placement(index, frame_to_anchor);
        ++st.result.stats.frames_stitched;
        st.consecutive_discards = 0;
      });
      if (placed) return;
    }
    ++st.result.stats.frames_discarded;
    ++resil::tls.report.frames_skipped;
    if (const auto failure = resil::attempt(close_mini_panorama)) {
      ++resil::tls.report.panoramas_dropped;
      reset_builder();
    }
  };

  // --- the recovery boundary: retry the frame, then degrade --------------
  auto run_frame = [&](int index) {
    if (!hardened) {
      frame_body(index);
      return;
    }
    const pipeline_state snapshot = st;
    bool failed_once = false;
    int retries_left = config.hardening.max_frame_retries;
    for (;;) {
      const auto failure = resil::attempt([&] { frame_body(index); });
      if (!failure) {
        if (failed_once) ++resil::tls.report.frames_recovered;
        return;
      }
      st = snapshot;
      failed_once = true;
      if (retries_left-- > 0) {
        ++resil::tls.report.retries;
        continue;
      }
      degrade_frame(index);
      return;
    }
  };

  for (int index = 0; index < frame_count; ++index) {
    // --- VS_RFD: random input sampling ---------------------------------
    // The drop decision is drawn for every frame (whatever the variant) so
    // all variants see identical RNG streams downstream — and it is drawn
    // outside the recovery boundary so a frame retry cannot re-roll it.
    const bool drop = drop_rng.chance(config.approx.rfd_drop_fraction);
    if (config.approx.alg == algorithm::vs_rfd && drop) {
      ++st.result.stats.frames_dropped_rfd;
      continue;
    }
    run_frame(index);
  }
  close_mini_panorama_contained();

  if (!hardened) {
    st.result.panorama = stitch::montage(st.result.mini_panoramas);
  } else if (const auto failure = resil::attempt([&] {
               st.result.panorama = stitch::montage(st.result.mini_panoramas);
             })) {
    // Even the montage is contained: an empty summary is a detected,
    // degraded output rather than a dead process.
    ++resil::tls.report.frames_degraded;
    st.result.panorama = img::image_u8{};
  }

  if (hardened && config.hardening.calibration.has_value()) {
    // End-of-run symptom detectors (Section V-D): no golden knowledge, just
    // the calibrated envelope.
    resil::tls.report.output_checked = true;
    resil::tls.report.output_verdict = fault::run_detectors(
        st.result.panorama, *config.hardening.calibration);
  }
  if (hardened) st.result.recovery = hardening->current_report();
  return st.result;
}

}  // namespace vs::app
