#include "app/pipeline.h"

#include <algorithm>
#include <cctype>
#include <optional>

#include "core/error.h"
#include "core/rng.h"
#include "gate/change.h"
#include "gate/extrapolate.h"
#include "pipeline/executor.h"
#include "resil/recovery.h"
#include "resil/runtime.h"
#include "rt/instrument.h"

namespace vs::app {

const char* algorithm_name(algorithm alg) noexcept {
  switch (alg) {
    case algorithm::vs:
      return "VS";
    case algorithm::vs_rfd:
      return "VS_RFD";
    case algorithm::vs_kds:
      return "VS_KDS";
    case algorithm::vs_sm:
      return "VS_SM";
  }
  return "?";
}

algorithm parse_algorithm(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "VS") return algorithm::vs;
  if (upper == "VS_RFD" || upper == "RFD") return algorithm::vs_rfd;
  if (upper == "VS_KDS" || upper == "KDS") return algorithm::vs_kds;
  if (upper == "VS_SM" || upper == "SM") return algorithm::vs_sm;
  throw invalid_argument("unknown algorithm: " + name);
}

namespace {

using pipeline::stage_id;

// VS_KDS: match on only a fraction of the keypoints.  Matching cost —
// O(n^2) in keypoints — falls by ~fraction^2.  The subset is chosen as the
// spatially-dominant corners: greedily take the strongest keypoint whose
// distance to every already-kept keypoint is at least a spacing radius.
// Local dominance is far more stable between consecutive frames than a raw
// score ranking (scores jitter with noise and subpixel motion, but the
// strongest corner of a neighbourhood stays the strongest), so the retained
// third keeps supporting alignment most of the time.
feat::frame_features subsample_features(const feat::frame_features& features,
                                        double fraction) {
  if (fraction >= 1.0 || features.empty()) return features;
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(features.size()) * fraction + 0.5));

  feat::frame_features out;
  out.keypoints.reserve(keep);
  out.descriptors.reserve(keep);
  // Pass 1: enforce a spacing radius among the score-ordered keypoints.
  constexpr float spacing2 = 10.0f * 10.0f;
  std::vector<std::size_t> rejected;
  for (std::size_t i = 0; i < features.size() && out.size() < keep; ++i) {
    const auto& kp = features.keypoints[i];
    bool spaced = true;
    for (const auto& kept : out.keypoints) {
      const float dx = kept.x - kp.x;
      const float dy = kept.y - kp.y;
      if (dx * dx + dy * dy < spacing2) {
        spaced = false;
        break;
      }
    }
    if (spaced) {
      out.keypoints.push_back(kp);
      out.descriptors.push_back(features.descriptors[i]);
    } else {
      rejected.push_back(i);
    }
  }
  // Pass 2: top up from the strongest rejected ones if spacing was too
  // aggressive to reach the requested fraction.
  for (std::size_t i = 0; i < rejected.size() && out.size() < keep; ++i) {
    out.keypoints.push_back(features.keypoints[rejected[i]]);
    out.descriptors.push_back(features.descriptors[rejected[i]]);
  }
  rt::account(rt::op::int_alu, features.size() * 8);
  return out;
}

/// Everything one frame of work may mutate, bundled so the recovery
/// boundary can snapshot it with one copy and restore it with one swap.
struct pipeline_state {
  summary_result result;
  stitch::mini_panorama_builder builder;
  geo::mat3 cumulative = geo::mat3::identity();  // current frame -> anchor
  feat::frame_features prev_features;  // features of last aligned frame
  bool have_reference = false;
  int consecutive_discards = 0;
  std::vector<frame_placement> pending_placements;
  /// Last successful inter-frame motion model (degrade step 1 reuses it to
  /// place a failing frame by dead reckoning).
  geo::mat3 last_delta = geo::mat3::identity();
  bool have_last_delta = false;
  /// Real-time gating state (reference thumb/frame, streaks, descriptor
  /// cache).  Inside the recovery boundary's snapshot like everything else
  /// a frame may mutate; recovery paths additionally invalidate it.
  gate::runtime_state gate;

  pipeline_state(const pipeline_config& config)
      : builder(config.max_panorama_pixels, config.gain_compensation) {
    gate.cache.configure(config.gate.cache_capacity,
                         config.gate.cache_max_age);
  }
};

}  // namespace

summary_result summarize(const video::video_source& source,
                         const pipeline_config& config) {
  const bool hardened = config.hardening.enabled();
  std::optional<resil::session> hardening(std::nullopt);
  if (hardened) hardening.emplace(config.hardening);

  // Real-time gating: resolved once per run (flag/env beaten by an explicit
  // config request).  Off is the exact pipeline, bit-identical — hook
  // stream included — to builds without the gate subsystem.
  const gate::level glevel = gate::resolve(config.gate.request);
  const bool gating = glevel != gate::level::off;

  pipeline_state st(config);
  st.result.stats.frames_total = source.frame_count();

  const match::match_params matcher = config.matcher();
  rng drop_rng(config.seed ^ 0xd20bULL);

  auto record_placement = [&](int frame_index, const geo::mat3& transform) {
    frame_placement placement;
    placement.frame_index = frame_index;
    placement.frame_to_anchor = transform;
    st.pending_placements.push_back(placement);
  };

  auto reset_builder = [&] {
    st.pending_placements.clear();
    st.builder = stitch::mini_panorama_builder(config.max_panorama_pixels,
                                               config.gain_compensation);
    st.cumulative = geo::mat3::identity();
    st.have_reference = false;
    st.consecutive_discards = 0;
  };

  auto close_mini_panorama = [&] {
    if (!st.builder.empty()) {
      auto pano = st.builder.render();
      if (!pano.empty()) {
        const int pano_index = st.result.stats.mini_panoramas;
        for (auto& placement : st.pending_placements) {
          placement.panorama_index = pano_index;
          st.result.placements.push_back(placement);
        }
        st.result.panorama_bounds.push_back(st.builder.content_bounds());
        st.result.mini_panoramas.push_back(std::move(pano));
        ++st.result.stats.mini_panoramas;
        if (config.on_mini_panorama) {
          config.on_mini_panorama(pano_index,
                                  st.result.mini_panoramas.back());
        }
      }
    }
    reset_builder();
  };

  /// Containment for the mini-panorama close itself: the final render walks
  /// the whole canvas, so corrupted canvas state can crash there.  The
  /// degradation is losing that one mini-panorama, not the summary.
  auto close_mini_panorama_contained = [&] {
    if (!hardened) {
      close_mini_panorama();
      return;
    }
    if (const auto failure = resil::attempt(close_mini_panorama)) {
      ++resil::tls.report.panoramas_dropped;
      ++resil::tls.report.frames_degraded;
      reset_builder();
    }
  };

  const int frame_count =
      static_cast<int>(rt::ctrl(source.frame_count()));

  // The stage-graph spine: the executor owns CFCSS transitions, watchdog
  // budgets, the recovery boundary, lane selection, and — clean lane only —
  // the multi-frame lookahead that keeps the prefetchable prefix of frames
  // t+1..t+k in flight while frame t is matched and composited.  What
  // remains below is stage definitions plus mini-panorama policy.
  pipeline::frame_executor exec(
      config.hardening, frame_count, config.frames_in_flight,
      [&source](int index) { return source.frame(index); },
      [&config](const img::image_u8& frame) {
        return feat::orb_extract(frame, config.orb);
      },
      [&config](const img::image_u8& frame,
                const feat::frame_features& features) {
        return feat::orb_verify_features(frame, features, config.orb);
      },
      config.batch, config.scheduler,
      // Gated runs prefetch acquisition only: whether (and over which ROI)
      // extraction happens is decided per frame behind the gate stage.
      /*acquire_only=*/gating);

  // Remembers the frame the reference feature set describes (the
  // extrapolator refines predicted motion against its pixels) and re-seeds
  // the descriptor cache after a full extraction.
  auto note_reference_frame = [&](const img::image_u8& frame) {
    if (!gating || !gate::roi_enabled(glevel)) return;
    st.gate.ref_frame = frame;
    if (gate::cache_enabled(glevel)) st.gate.cache.refill(st.prev_features);
  };

  // --- the per-frame unit of work: acquire -> detect -> describe ->
  // --- match -> estimate -> composite, exactly the legacy statement order -
  auto frame_body = [&](int index) {
    pipeline::frame_work work = exec.obtain(index);

    // --- real-time gating: classify before any extraction ---------------
    gate::frame_class cls = gate::frame_class::full;
    bool delta_mode = false;
    gate::roi_plan plan;
    gate::extrapolation extra;
    if (gating) {
      const auto guard = exec.enter(stage_id::gate);
      if (exec.retrying() && st.gate.have_ref) {
        // A failed attempt may have computed this state from corrupted
        // values; the retry starts from a cold gate.
        st.gate.invalidate();
        ++st.result.stats.gate_invalidations;
      }
      img::image_u8 thumb =
          gate::make_thumb(work.frame, config.gate.thumb_factor);
      gate::change_stats stats;
      if (st.gate.have_ref && st.have_reference) {
        stats = gate::change_score(thumb, st.gate.ref_thumb,
                                   config.gate.thumb_search,
                                   config.gate.thumb_factor);
        // Dual-execution contract of the gate stage: recompute the
        // decision values hook-free and require bitwise agreement (both
        // lanes accumulate the same integers).
        resil::verify_recomputed(
            stage_id::gate, stats,
            [&] {
              return gate::change_score_clean(thumb, st.gate.ref_thumb,
                                              config.gate.thumb_search,
                                              config.gate.thumb_factor);
            },
            std::equal_to<gate::change_stats>());
      }
      st.gate.last_score = stats.score;
      const bool can_skip =
          gate::skip_enabled(glevel) && st.gate.have_ref &&
          st.have_reference &&
          st.gate.consecutive_skips < config.gate.max_consecutive_skips;
      const bool can_delta =
          gate::roi_enabled(glevel) && st.have_reference &&
          !st.gate.ref_frame.empty() &&
          st.gate.consecutive_deltas < config.gate.max_consecutive_deltas;
      cls = gate::classify(stats, config.gate, can_skip, can_delta);
      if (cls == gate::frame_class::skip) {
        ++st.gate.consecutive_skips;
      } else {
        // The shift and score accumulate against the last *processed*
        // frame, so a slow pan eventually crosses the motion bound even if
        // every single step is tiny.
        st.gate.ref_thumb = std::move(thumb);
        st.gate.have_ref = true;
        st.gate.consecutive_skips = 0;
      }
      if (cls == gate::frame_class::delta) {
        // Restricted processing is only committed once the extrapolated
        // model verifies against the actual pixels; otherwise the frame
        // falls back to the exact path.  The thumb-measured shift is the
        // translation prior (reference -> current content motion, so the
        // current -> reference model starts at its negation) — which is
        // how a delta frame bridges the gap across skipped frames.
        const geo::mat3 prior = geo::mat3::translation(
            -double(stats.shift_x), -double(stats.shift_y));
        extra = gate::extrapolate_alignment(work.frame, st.gate.ref_frame,
                                            prior, config.gate);
        if (extra.valid) {
          plan = gate::predict_roi(extra.delta, work.frame.width(),
                                   work.frame.height());
        }
        delta_mode = extra.valid && plan.valid;
        if (!delta_mode) cls = gate::frame_class::full;
      }
      if (cls == gate::frame_class::full) st.gate.consecutive_deltas = 0;
    }

    if (cls == gate::frame_class::skip) {
      // Near-duplicate: the canvas already shows this content; the frame
      // rides the previous placement and no feature stage runs.
      ++st.result.stats.frames_gated_skip;
      ++st.result.stats.frames_stitched;
      record_placement(index, st.cumulative);
      exec.end_frame();
      return;
    }

    if (gating) {
      // Extraction moved behind the gate: full frames extract everywhere,
      // delta frames only over the newly-revealed ROI strips.
      const auto guard = exec.enter(stage_id::detect);
      if (delta_mode) {
        work.features = gate::extract_roi(work.frame, plan.fresh, config.orb,
                                          config.gate.roi_margin);
      } else {
        work.features = exec.extract(work.frame);
      }
      exec.mark(stage_id::describe);
      // Freshly extracted features only: cached descriptors merged later
      // intentionally differ from a re-derivation against this frame.
      exec.check_extract(work);
    }
    st.result.stats.keypoints_detected += work.features.size();

    // --- VS_KDS: selective computation ----------------------------------
    if (!delta_mode && config.approx.alg == algorithm::vs_kds) {
      work.features = subsample_features(work.features,
                                         config.approx.kds_keypoint_fraction);
    }
    if (!delta_mode) {
      st.result.stats.keypoints_matched_on += work.features.size();
    }

    if (delta_mode) {
      // --- restricted processing: extrapolated alignment ----------------
      // The refined model replaces match + estimate; compositing still
      // runs in full.  The reference feature set is carried across the
      // step (descriptor reuse) instead of re-extracted.
      ++st.result.stats.frames_gated_delta;
      ++st.gate.consecutive_deltas;
      const int w = work.frame.width();
      const int h = work.frame.height();
      const int border = config.orb.fast.border;
      feat::frame_features carried;
      if (const auto inv = extra.delta.inverse()) {
        if (gate::cache_enabled(glevel)) {
          st.gate.cache.rebase(*inv, w, h, border);
          st.result.stats.keypoints_reused += st.gate.cache.size();
          st.gate.cache.insert(work.features);
          carried = st.gate.cache.snapshot();
        } else {
          carried =
              gate::rebase_features(st.prev_features, *inv, w, h, border);
          st.result.stats.keypoints_reused += carried.size();
          for (std::size_t i = 0; i < work.features.size(); ++i) {
            carried.keypoints.push_back(work.features.keypoints[i]);
            carried.descriptors.push_back(work.features.descriptors[i]);
          }
        }
      } else {
        carried = work.features;
      }

      const geo::mat3 frame_to_anchor = st.cumulative * extra.delta;
      const auto guard = exec.enter(stage_id::composite);
      if (st.builder.add_frame(work.frame, frame_to_anchor)) {
        st.cumulative = frame_to_anchor;
        record_placement(index, frame_to_anchor);
        st.prev_features = std::move(carried);
        ++st.result.stats.frames_stitched;
        st.consecutive_discards = 0;
        st.last_delta = extra.delta;
        st.have_last_delta = true;
        st.gate.ref_frame = work.frame;
      } else {
        // Implausible accumulated drift or canvas overflow: same hard
        // view-change handling as the exact path.
        ++st.result.stats.frames_discarded;
        close_mini_panorama();
        if (st.builder.add_frame(work.frame, geo::mat3::identity())) {
          ++st.result.stats.frames_stitched;
          --st.result.stats.frames_discarded;
          record_placement(index, geo::mat3::identity());
          st.prev_features = std::move(carried);
          st.have_reference = true;
          note_reference_frame(work.frame);
        }
      }
      exec.end_frame();
      return;
    }

    if (!st.have_reference) {
      // First (usable) frame anchors the mini-panorama.
      const auto guard = exec.enter(stage_id::composite);
      if (st.builder.add_frame(work.frame, geo::mat3::identity())) {
        ++st.result.stats.frames_stitched;
        record_placement(index, geo::mat3::identity());
        st.prev_features = std::move(work.features);
        st.have_reference = true;
        st.consecutive_discards = 0;
        note_reference_frame(work.frame);
      } else {
        ++st.result.stats.frames_discarded;
      }
      exec.end_frame();
      return;
    }

    std::optional<stitch::alignment> aligned;
    {
      const auto guard = exec.enter(stage_id::match);
      aligned = stitch::align_frames(
          work.features, st.prev_features, matcher, config.alignment,
          config.seed + static_cast<std::uint64_t>(index) * 7919u);
    }

    if (!aligned) {
      ++st.result.stats.frames_discarded;
      if (++st.consecutive_discards > config.discard_limit) {
        // The view changed beyond recovery: close this mini-panorama and
        // anchor a new one at the next usable frame.
        const auto guard = exec.enter(stage_id::composite);
        close_mini_panorama();
        if (st.builder.add_frame(work.frame, geo::mat3::identity())) {
          ++st.result.stats.frames_stitched;
          --st.result.stats.frames_discarded;  // it became the new anchor
          record_placement(index, geo::mat3::identity());
          st.prev_features = std::move(work.features);
          st.have_reference = true;
          note_reference_frame(work.frame);
        }
      }
      exec.end_frame();
      return;
    }

    st.result.stats.total_matches += aligned->matches;
    if (aligned->kind == stitch::model_kind::homography) {
      ++st.result.stats.homography_alignments;
    } else {
      ++st.result.stats.affine_alignments;
    }

    const geo::mat3 frame_to_anchor = st.cumulative * aligned->transform;
    const auto guard = exec.enter(stage_id::composite);
    if (st.builder.add_frame(work.frame, frame_to_anchor)) {
      st.cumulative = frame_to_anchor;
      record_placement(index, frame_to_anchor);
      st.prev_features = std::move(work.features);
      ++st.result.stats.frames_stitched;
      st.consecutive_discards = 0;
      st.last_delta = aligned->transform;
      st.have_last_delta = true;
      note_reference_frame(work.frame);
    } else {
      // Implausible accumulated drift or canvas overflow: treat like a hard
      // view change.
      ++st.result.stats.frames_discarded;
      close_mini_panorama();
      if (st.builder.add_frame(work.frame, geo::mat3::identity())) {
        ++st.result.stats.frames_stitched;
        --st.result.stats.frames_discarded;
        record_placement(index, geo::mat3::identity());
        st.prev_features = std::move(work.features);
        st.have_reference = true;
        note_reference_frame(work.frame);
      }
    }
    exec.end_frame();
  };

  // --- graceful degradation: the bottom rungs of the policy ladder -------
  // Step 1: place the frame by dead reckoning with the last successful
  // motion model (the compositor still paints it, just at its predicted
  // position; the reference features stay those of the last aligned frame,
  // so `cumulative` is deliberately not advanced).  Step 2: close the
  // mini-panorama and skip the frame — persistent corruption in the open
  // panorama's state cannot outlive a re-anchor.
  auto degrade_frame = [&](int index) {
    ++resil::tls.report.frames_degraded;
    if (gating) {
      // Dead-reckoned frames advance the canvas without a trusted model:
      // everything the gate learned before the failure is suspect.
      st.gate.invalidate();
      ++st.result.stats.gate_invalidations;
    }
    if (config.hardening.reuse_last_motion && st.have_reference &&
        st.have_last_delta) {
      const bool placed = !resil::attempt([&] {
        const img::image_u8 frame = exec.reacquire(index);
        const geo::mat3 frame_to_anchor = st.cumulative * st.last_delta;
        if (!st.builder.add_frame(frame, frame_to_anchor)) {
          throw crash_error(crash_kind::abort,
                            "degraded placement rejected by compositor");
        }
        record_placement(index, frame_to_anchor);
        ++st.result.stats.frames_stitched;
        st.consecutive_discards = 0;
      });
      if (placed) return;
    }
    ++st.result.stats.frames_discarded;
    ++resil::tls.report.frames_skipped;
    if (const auto failure = resil::attempt(close_mini_panorama)) {
      ++resil::tls.report.panoramas_dropped;
      reset_builder();
    }
  };

  for (int index = 0; index < frame_count; ++index) {
    // --- VS_RFD: random input sampling ---------------------------------
    // The drop decision is drawn for every frame (whatever the variant) so
    // all variants see identical RNG streams downstream — and it is drawn
    // outside the recovery boundary so a frame retry cannot re-roll it.
    const bool drop = drop_rng.chance(config.approx.rfd_drop_fraction);
    if (config.approx.alg == algorithm::vs_rfd && drop) {
      ++st.result.stats.frames_dropped_rfd;
      continue;
    }
    exec.run_frame(st, [&] { frame_body(index); },
                   [&] { degrade_frame(index); });
  }
  close_mini_panorama_contained();

  if (!hardened) {
    st.result.panorama = stitch::montage(st.result.mini_panoramas);
  } else if (const auto failure = resil::attempt([&] {
               st.result.panorama = stitch::montage(st.result.mini_panoramas);
             })) {
    // Even the montage is contained: an empty summary is a detected,
    // degraded output rather than a dead process.
    ++resil::tls.report.frames_degraded;
    st.result.panorama = img::image_u8{};
  }

  if (hardened && config.hardening.calibration.has_value()) {
    // End-of-run symptom detectors (Section V-D): no golden knowledge, just
    // the calibrated envelope.
    resil::tls.report.output_checked = true;
    resil::tls.report.output_verdict = fault::run_detectors(
        st.result.panorama, *config.hardening.calibration);
  }
  if (hardened) st.result.recovery = hardening->current_report();
  return st.result;
}

}  // namespace vs::app
