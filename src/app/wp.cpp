#include "app/wp.h"

#include "core/error.h"

namespace vs::app {

geo::mat3 wp_default_transform() {
  const geo::mat3 rigid =
      geo::mat3::translation(6.0, -3.0) * geo::mat3::rotation(0.06);
  geo::mat3 m = rigid;
  m(2, 0) = 2e-4;  // slight perspective tilt
  m(2, 1) = -1e-4;
  return m;
}

img::image_u8 run_wp(const img::image_u8& input, const geo::mat3& transform) {
  const auto bounds = geo::projected_bounds(transform, input.width(),
                                            input.height(), 32768.0);
  if (!bounds || bounds->empty()) {
    throw invalid_argument("run_wp: transform projects nowhere");
  }
  return geo::warp_perspective(input, transform, *bounds).pixels;
}

}  // namespace vs::app
