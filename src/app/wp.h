// WP — the stand-alone "hot function" toy benchmark of Section V-C.
//
// WP takes an image and a transformation matrix, calls WarpPerspective on
// them and returns the transformed image: the workflow *ends* at the hot
// function's output.  Comparing fault outcomes between WP and the same
// functions inside the full VS application quantifies the compositional
// masking that makes hot-kernel studies unrepresentative (Fig 11b).
#pragma once

#include "geometry/mat3.h"
#include "geometry/warp.h"
#include "image/image.h"

namespace vs::app {

/// A representative perspective transform for the WP benchmark: mild
/// rotation + translation + slight projective tilt, like an inter-frame
/// homography the VS pipeline would feed to WarpPerspective.
[[nodiscard]] geo::mat3 wp_default_transform();

/// Runs the toy benchmark: warps `input` through `transform` into the
/// projected bounding box and returns the result (the program output AFI's
/// result checker would compare).
[[nodiscard]] img::image_u8 run_wp(const img::image_u8& input,
                                   const geo::mat3& transform);

}  // namespace vs::app
