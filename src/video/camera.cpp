#include "video/camera.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"

namespace vs::video {

geo::mat3 pose_to_scene(const pose& p, int frame_width, int frame_height) {
  const double cx = frame_width / 2.0;
  const double cy = frame_height / 2.0;
  return geo::mat3::translation(p.x, p.y) * geo::mat3::rotation(p.angle) *
         geo::mat3::scaling(p.zoom, p.zoom) * geo::mat3::translation(-cx, -cy);
}

std::vector<pose> generate_path(const path_params& params, int scene_width,
                                int scene_height, std::uint64_t seed) {
  if (params.frames <= 0) throw invalid_argument("generate_path: frames <= 0");
  rng gen(seed);

  pose current;
  current.x = scene_width / 2.0 + gen.uniform_real(-40.0, 40.0);
  current.y = scene_height / 2.0 + gen.uniform_real(-40.0, 40.0);
  current.angle = gen.uniform_real(0.0, 2.0 * 3.14159265358979);
  current.zoom = 1.0;
  double heading = gen.uniform_real(0.0, 2.0 * 3.14159265358979);

  std::vector<pose> path;
  path.reserve(static_cast<std::size_t>(params.frames));
  int until_jump = params.segment_mean > 0
                       ? 1 + static_cast<int>(gen.uniform(
                                 static_cast<std::uint64_t>(
                                     2 * params.segment_mean)))
                       : params.frames + 1;

  for (int i = 0; i < params.frames; ++i) {
    path.push_back(current);

    if (--until_jump <= 0) {
      // Abrupt view change: new heading and zoom (the scene-cut events that
      // split Input 1 into many mini-panoramas).
      if (params.jump_teleport) {
        current.x = gen.uniform_real(params.margin, scene_width - params.margin);
        current.y = gen.uniform_real(params.margin, scene_height - params.margin);
      }
      heading += gen.uniform_real(-params.jump_turn, params.jump_turn) +
                 (gen.chance(0.5) ? 1.2 : -1.2);
      current.angle += gen.uniform_real(-params.jump_turn, params.jump_turn);
      current.zoom = std::clamp(
          current.zoom *
              (1.0 + gen.uniform_real(-params.jump_zoom, params.jump_zoom)),
          0.90, 1.15);
      until_jump = 1 + static_cast<int>(gen.uniform(
                           static_cast<std::uint64_t>(
                               2 * std::max(1, params.segment_mean))));
    }

    heading += gen.normal() * params.turn_sigma * 3.0;
    current.angle += gen.normal() * params.turn_sigma;
    current.zoom = std::clamp(
        current.zoom * (1.0 + gen.normal() * params.zoom_sigma), 0.90, 1.15);
    current.x += std::cos(heading) * params.speed + gen.normal() * params.jitter;
    current.y += std::sin(heading) * params.speed + gen.normal() * params.jitter;

    // Reflect off the margins so the camera never leaves the scene.
    const double lo_x = params.margin;
    const double hi_x = scene_width - params.margin;
    const double lo_y = params.margin;
    const double hi_y = scene_height - params.margin;
    if (current.x < lo_x || current.x > hi_x) {
      heading = 3.14159265358979 - heading;
      current.x = std::clamp(current.x, lo_x, hi_x);
    }
    if (current.y < lo_y || current.y > hi_y) {
      heading = -heading;
      current.y = std::clamp(current.y, lo_y, hi_y);
    }
  }
  return path;
}

path_params input1_path(int frames) {
  path_params p;
  p.frames = frames;
  p.speed = 20.0;
  p.turn_sigma = 0.025;
  p.zoom_sigma = 0.005;
  p.jitter = 0.8;
  p.segment_mean = std::max(6, frames / 3);  // a few hard view changes
  p.jump_turn = 1.0;
  p.jump_zoom = 0.18;
  p.jump_teleport = true;  // Input 1 concatenates dissimilar camera segments
  return p;
}

path_params input2_path(int frames) {
  path_params p;
  p.frames = frames;
  p.speed = 7.0;
  p.turn_sigma = 0.004;
  p.zoom_sigma = 0.0;
  p.jitter = 0.2;
  p.segment_mean = 0;  // disabled: one smooth segment
  p.jump_turn = 0.0;
  p.jump_zoom = 0.0;
  return p;
}

path_params input3_path(int frames) {
  // Slower than Input 2 (a loitering night orbit keeps plenty of overlap),
  // with slightly more translational jitter: low light means longer
  // exposures and a stabilizer working against wind.  The challenge of this
  // input is the scene, not the flight path.
  path_params p;
  p.frames = frames;
  p.speed = 4.0;
  p.turn_sigma = 0.003;
  p.zoom_sigma = 0.0;
  p.jitter = 0.35;
  p.segment_mean = 0;  // one smooth segment
  p.jump_turn = 0.0;
  p.jump_zoom = 0.0;
  return p;
}

}  // namespace vs::video
