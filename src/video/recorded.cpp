#include "video/recorded.h"

#include <algorithm>
#include <filesystem>

#include "core/error.h"
#include "image/image_io.h"

namespace vs::video {

std::vector<std::string> list_pnm_files(const std::string& directory) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension().string();
    if (ext == ".pgm" || ext == ".ppm" || ext == ".pnm") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) throw io_error("list_pnm_files: cannot read " + directory);
  std::sort(paths.begin(), paths.end());
  return paths;
}

frame_list recorded_video::load(const std::vector<std::string>& paths,
                                int downsample) {
  if (paths.empty()) throw io_error("recorded_video: no frames found");
  std::vector<img::image_u8> frames;
  frames.reserve(paths.size());
  for (const auto& path : paths) {
    img::image_u8 frame = img::to_gray(img::load_pnm(path));
    if (downsample > 1) frame = img::downscale(frame, downsample);
    frames.push_back(std::move(frame));
  }
  return frame_list(std::move(frames));
}

recorded_video::recorded_video(const std::string& directory, int downsample)
    : frames_(load(list_pnm_files(directory), downsample)) {}

recorded_video::recorded_video(const std::vector<std::string>& paths,
                               int downsample)
    : frames_(load(paths, downsample)) {}

int recorded_video::frame_count() const { return frames_.frame_count(); }
int recorded_video::frame_width() const { return frames_.frame_width(); }
int recorded_video::frame_height() const { return frames_.frame_height(); }

img::image_u8 recorded_video::frame(int index) const {
  return frames_.frame(index);
}

}  // namespace vs::video
