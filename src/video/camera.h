// Camera model and flight-path synthesis.
//
// A pose places the UAV camera over the landscape; a path is the sequence of
// poses for one clip.  The two built-in path profiles mirror the statistical
// character of the paper's two VIRAT inputs:
//   input 1 — frequent heading / zoom changes and occasional hard view jumps
//             (many segments -> many mini-panoramas, frames often discarded)
//   input 2 — smooth steady drift (one long segment, robust stitching)
//   input 3 — slow low-light pass: smooth like input 2 but slower still,
//             over a texture-starved night scene (feature scarcity, not
//             camera dynamics, is what stresses the pipeline)
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/mat3.h"

namespace vs::video {

/// Camera pose over the scene: view center (scene pixels), heading
/// (radians), and zoom (scene pixels per frame pixel; > 1 means the frame
/// covers a wider ground area).
struct pose {
  double x = 0.0;
  double y = 0.0;
  double angle = 0.0;
  double zoom = 1.0;
};

/// Frame-pixel -> scene-pixel transform for a pose (frame center maps to
/// (x, y); the frame is rotated by `angle` and scaled by `zoom`).
[[nodiscard]] geo::mat3 pose_to_scene(const pose& p, int frame_width,
                                      int frame_height);

/// Path-shape knobs.  All motion is per frame.
struct path_params {
  int frames = 40;
  double speed = 6.0;          ///< forward drift in scene px/frame
  double turn_sigma = 0.01;    ///< heading random walk (radians/frame)
  double zoom_sigma = 0.0;     ///< zoom random walk (fraction/frame)
  double jitter = 0.3;         ///< translational noise (scene px)
  int segment_mean = 1000000;  ///< mean frames between abrupt view changes
  double jump_turn = 0.9;      ///< heading change at a segment break
  double jump_zoom = 0.25;     ///< zoom change magnitude at a segment break
  bool jump_teleport = false;  ///< segment break relocates the camera (a
                               ///< scene cut between different cameras)
  double margin = 140.0;       ///< keep-out distance from scene borders
};

/// Generates a deterministic flight path inside a scene of the given size.
/// The path reflects off the margin so frames always see valid scene.
[[nodiscard]] std::vector<pose> generate_path(const path_params& params,
                                              int scene_width,
                                              int scene_height,
                                              std::uint64_t seed);

/// Paper "Input 1" profile: segmented, turny, zoom-varying.
[[nodiscard]] path_params input1_path(int frames);

/// Paper "Input 2" profile: smooth single-segment drift.
[[nodiscard]] path_params input2_path(int frames);

/// Synthetic "Input 3" profile: slow, smooth low-altitude night pass.
[[nodiscard]] path_params input3_path(int frames);

}  // namespace vs::video
