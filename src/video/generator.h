// Frame sources: the abstraction the VS pipeline consumes, plus the
// synthetic implementation that stands in for the two VIRAT aerial clips.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "image/image.h"
#include "video/camera.h"
#include "video/scene.h"

namespace vs::video {

/// Abstract sequence of frames.  Implementations must be deterministic and
/// safe to read from multiple threads concurrently (fault campaigns run
/// parallel pipeline instances against one shared source).
class video_source {
 public:
  virtual ~video_source() = default;

  [[nodiscard]] virtual int frame_count() const = 0;
  [[nodiscard]] virtual int frame_width() const = 0;
  [[nodiscard]] virtual int frame_height() const = 0;

  /// Renders/loads frame `index` (grayscale).  Throws on invalid index.
  [[nodiscard]] virtual img::image_u8 frame(int index) const = 0;
};

/// Configuration of a synthetic clip.
struct clip_params {
  landscape_params scene;
  path_params path;
  int frame_width = 128;
  int frame_height = 96;
  double sensor_noise_sigma = 0.6;  ///< per-pixel Gaussian sensor noise

  // Dynamic ground clutter: point features (vehicles, foliage, shimmer)
  // that persist for a while and then relocate.  They are what makes
  // matchability decay with temporal distance — the property that lets
  // random frame dropping trigger the paper's cascade of additional frame
  // discards on the busy input (Section IV-A).
  int dynamic_clutter = 2400;       ///< clutter points across the scene
  double clutter_stability = 0.85;  ///< per-frame survival probability

  // Clutter height range (fraction of camera altitude).  Elevated points
  // (urban structure: rooftops, poles, vehicles) exhibit parallax: their
  // apparent ground position shifts with the camera by height x camera
  // displacement.  Consecutive frames stay within RANSAC's inlier
  // threshold; frames two apart do not — the property that makes Input 1's
  // alignment collapse when a frame in between is dropped.
  double clutter_height_min = 0.0;
  double clutter_height_max = 0.0;
  std::uint64_t seed = 7;
};

/// Synthetic aerial clip: a landscape plus a camera path; frame(i) samples
/// the landscape through the pose-i camera with bilinear interpolation and
/// adds deterministic per-frame sensor noise.
class synthetic_video final : public video_source {
 public:
  explicit synthetic_video(const clip_params& params);

  [[nodiscard]] int frame_count() const override;
  [[nodiscard]] int frame_width() const override { return params_.frame_width; }
  [[nodiscard]] int frame_height() const override {
    return params_.frame_height;
  }
  [[nodiscard]] img::image_u8 frame(int index) const override;

  [[nodiscard]] const img::image_u8& scene() const noexcept { return scene_; }
  [[nodiscard]] const std::vector<pose>& path() const noexcept { return path_; }

 private:
  /// Clean (parallel) lane of frame(): identical bytes, no fault hooks.
  [[nodiscard]] img::image_u8 frame_clean(int index) const;
  /// Instrumented lane of frame(): sequential, rt:: hooks as fault sites.
  [[nodiscard]] img::image_u8 frame_instrumented(int index) const;
  /// Dynamic-clutter overlay shared by both lanes (order-dependent
  /// blending, so it runs sequentially in each).
  void overlay_clutter(img::image_u8& out, const geo::mat3& to_scene,
                       int index) const;

  clip_params params_;
  img::image_u8 scene_;
  std::vector<pose> path_;
  /// clutter_epoch_[k][i]: how many times clutter point k has relocated by
  /// frame i.  Precomputed so frame rendering is O(points) per frame.
  std::vector<std::vector<std::uint16_t>> clutter_epoch_;
};

/// An in-memory list of frames (tests, replay of saved clips).
class frame_list final : public video_source {
 public:
  explicit frame_list(std::vector<img::image_u8> frames);

  [[nodiscard]] int frame_count() const override;
  [[nodiscard]] int frame_width() const override;
  [[nodiscard]] int frame_height() const override;
  [[nodiscard]] img::image_u8 frame(int index) const override;

 private:
  std::vector<img::image_u8> frames_;
};

/// Identifier for the evaluation inputs: the paper's two VIRAT-style
/// clips, plus a synthetic third scenario (low-texture night pass) for
/// whole-pipeline campaigns summarized across a scenario matrix.
enum class input_id { input1, input2, input3 };

[[nodiscard]] const char* input_name(input_id id) noexcept;

/// Builds the standard evaluation clip for `id` with `frames` frames.
/// Frame geometry and scene seeds are fixed so results are comparable
/// across experiments; the paper's 1000-frame clips are represented at
/// laptop scale (default 40 frames — see EXPERIMENTS.md).
/// `replica` varies the flight path and dynamic content (not the scene),
/// for experiments that average over several runs of the same input class.
[[nodiscard]] std::shared_ptr<const synthetic_video> make_input(
    input_id id, int frames = 40, int replica = 0);

}  // namespace vs::video
