#include "video/scene.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "image/draw.h"
#include "image/pixel.h"

namespace vs::video {

namespace {

// Deterministic per-lattice-point hash noise in [0, 1).
double lattice_value(std::uint64_t seed, std::int64_t ix, std::int64_t iy) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
  h ^= static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
  h = splitmix64(h);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double smooth(double t) { return t * t * (3.0 - 2.0 * t); }

double noise_octave(std::uint64_t seed, double x, double y) {
  const double fx = std::floor(x);
  const double fy = std::floor(y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const double tx = smooth(x - fx);
  const double ty = smooth(y - fy);
  const double v00 = lattice_value(seed, ix, iy);
  const double v10 = lattice_value(seed, ix + 1, iy);
  const double v01 = lattice_value(seed, ix, iy + 1);
  const double v11 = lattice_value(seed, ix + 1, iy + 1);
  const double top = v00 + (v10 - v00) * tx;
  const double bottom = v01 + (v11 - v01) * tx;
  return top + (bottom - top) * ty;
}

}  // namespace

double value_noise(std::uint64_t seed, double x, double y, int octaves) {
  double sum = 0.0;
  double amplitude = 1.0;
  double total = 0.0;
  double frequency = 1.0 / 64.0;
  for (int o = 0; o < octaves; ++o) {
    sum += amplitude * noise_octave(seed + static_cast<std::uint64_t>(o) * 77,
                                    x * frequency, y * frequency);
    total += amplitude;
    amplitude *= 0.55;
    frequency *= 2.0;
  }
  return 255.0 * sum / total;
}

img::image_u8 generate_landscape(const landscape_params& params) {
  img::image_u8 scene(params.width, params.height, 1);
  rng gen(params.seed);

  // Terrain base: mid-tone multi-octave noise.
  for (int y = 0; y < params.height; ++y) {
    for (int x = 0; x < params.width; ++x) {
      const double v = value_noise(params.seed, x, y, params.noise_octaves);
      scene.at(x, y) = img::saturate_u8(60.0 + 0.45 * v);
    }
  }

  // Fields: large rectangles that shift the local tone (low contrast).
  for (int i = 0; i < params.fields; ++i) {
    const int w = static_cast<int>(gen.uniform_in(60, 200));
    const int h = static_cast<int>(gen.uniform_in(60, 200));
    const int x = static_cast<int>(gen.uniform_in(0, params.width - 1));
    const int y = static_cast<int>(gen.uniform_in(0, params.height - 1));
    const int delta = static_cast<int>(gen.uniform_in(-25, 25));
    for (int yy = std::max(0, y); yy < std::min(params.height, y + h); ++yy) {
      for (int xx = std::max(0, x); xx < std::min(params.width, x + w); ++xx) {
        scene.at(xx, yy) = img::saturate_u8(scene.at(xx, yy) + delta);
      }
    }
  }

  // Roads: long bright polylines with darker shoulders.
  for (int i = 0; i < params.roads; ++i) {
    int x = static_cast<int>(gen.uniform_in(0, params.width - 1));
    int y = static_cast<int>(gen.uniform_in(0, params.height - 1));
    double heading = gen.uniform_real(0.0, 2.0 * 3.14159265358979);
    const int segments = static_cast<int>(gen.uniform_in(4, 10));
    for (int s = 0; s < segments; ++s) {
      const int len = static_cast<int>(gen.uniform_in(80, 220));
      const int nx = x + static_cast<int>(std::cos(heading) * len);
      const int ny = y + static_cast<int>(std::sin(heading) * len);
      for (int offset = -1; offset <= 1; ++offset) {
        const std::uint8_t tone = offset == 0 ? 225 : 40;
        img::draw_line(scene, x + offset, y, nx + offset, ny,
                       img::color{tone, tone, tone});
      }
      x = nx;
      y = ny;
      heading += gen.uniform_real(-0.5, 0.5);
    }
  }

  // Buildings: small high-contrast rectangles with a shadow edge — the
  // dominant FAST-corner source, as rooftops are in aerial imagery.
  for (int i = 0; i < params.buildings; ++i) {
    const int w = static_cast<int>(gen.uniform_in(6, 22));
    const int h = static_cast<int>(gen.uniform_in(6, 22));
    const int x = static_cast<int>(gen.uniform_in(0, params.width - w - 1));
    const int y = static_cast<int>(gen.uniform_in(0, params.height - h - 1));
    const auto roof =
        static_cast<std::uint8_t>(gen.chance(0.5) ? gen.uniform_in(190, 250)
                                                  : gen.uniform_in(10, 60));
    img::fill_rect(scene, x, y, w, h, img::color{roof, roof, roof});
    img::fill_rect(scene, x + w, y + 2, 2, h, img::color{15, 15, 15});
    img::fill_rect(scene, x + 2, y + h, w, 2, img::color{15, 15, 15});
  }

  // Speckles: 2x2 high-contrast clutter (rocks, bushes, debris).  Aerial
  // imagery is full of such point features; they are what keeps FAST fed
  // between the larger structures.
  for (int i = 0; i < params.speckles; ++i) {
    const int x = static_cast<int>(gen.uniform_in(0, params.width - 3));
    const int y = static_cast<int>(gen.uniform_in(0, params.height - 3));
    const auto tone =
        static_cast<std::uint8_t>(gen.chance(0.5) ? gen.uniform_in(200, 255)
                                                  : gen.uniform_in(0, 35));
    img::fill_rect(scene, x, y, 2, 2, img::color{tone, tone, tone});
  }

  // Trees: small dark blobs with a bright rim pixel.
  for (int i = 0; i < params.trees; ++i) {
    const int r = static_cast<int>(gen.uniform_in(2, 5));
    const int x = static_cast<int>(gen.uniform_in(r, params.width - r - 1));
    const int y = static_cast<int>(gen.uniform_in(r, params.height - r - 1));
    img::fill_circle(scene, x, y, r, img::color{30, 30, 30});
    img::put_pixel(scene, x - r, y - r, img::color{200, 200, 200});
  }

  return scene;
}

}  // namespace vs::video
