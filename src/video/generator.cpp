#include "video/generator.h"

#include <cmath>
#include <vector>

#include "core/dispatch.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "geometry/warp.h"
#include "image/pixel.h"
#include "rt/instrument.h"

namespace vs::video {

synthetic_video::synthetic_video(const clip_params& params)
    : params_(params), scene_(generate_landscape(params.scene)) {
  if (params.frame_width < 32 || params.frame_height < 32) {
    throw invalid_argument("synthetic_video: frames must be >= 32x32");
  }
  if (params.clutter_stability < 0.0 || params.clutter_stability > 1.0) {
    throw invalid_argument("synthetic_video: clutter_stability not in [0,1]");
  }
  path_ = generate_path(params.path, scene_.width(), scene_.height(),
                        params.seed);

  // Precompute each clutter point's relocation history: point k relocates
  // at frame i when its (k, i) hash exceeds the stability threshold.
  const auto points = static_cast<std::size_t>(
      std::max(0, params.dynamic_clutter));
  clutter_epoch_.assign(points, {});
  const auto frames = path_.size();
  for (std::size_t k = 0; k < points; ++k) {
    auto& epochs = clutter_epoch_[k];
    epochs.resize(frames);
    std::uint16_t epoch = 0;
    for (std::size_t i = 0; i < frames; ++i) {
      if (i > 0) {
        std::uint64_t h = params.seed ^ (0x5eedc1a7ULL + k * 0x9e3779b9ULL);
        h += i * 0xc2b2ae3d27d4eb4fULL;
        const double roll =
            static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
        if (roll > params.clutter_stability) ++epoch;
      }
      epochs[i] = epoch;
    }
  }
}

int synthetic_video::frame_count() const {
  return static_cast<int>(path_.size());
}

img::image_u8 synthetic_video::frame(int index) const {
  if (index < 0 || index >= frame_count()) {
    throw invalid_argument("synthetic_video::frame: index out of range");
  }
  return core::dispatch([&] { return frame_clean(index); },
                        [&] { return frame_instrumented(index); });
}

img::image_u8 synthetic_video::frame_instrumented(int index) const {
  rt::scope attributed(rt::fn::video_decode);

  const geo::mat3 to_scene =
      pose_to_scene(path_[static_cast<std::size_t>(index)],
                    params_.frame_width, params_.frame_height);

  img::image_u8 out(params_.frame_width, params_.frame_height, 1);
  rng noise(params_.seed * 0x51ed2701ULL + static_cast<std::uint64_t>(index));

  for (int y = 0; y < out.height(); ++y) {
    for (int x = 0; x < out.width(); ++x) {
      const geo::vec2 s = to_scene.apply({x + 0.5, y + 0.5});
      const auto v = geo::sample_bilinear(scene_, s.x, s.y);
      double pixel = v ? static_cast<double>(*v) : 0.0;
      if (params_.sensor_noise_sigma > 0.0) {
        pixel += noise.normal() * params_.sensor_noise_sigma;
      }
      out.at(x, y) = img::saturate_u8(pixel);
    }
    // Real frame acquisition (decode + color/debayer + undistort) costs
    // far more than the synthetic sampling that stands in for it here.
    rt::account(rt::op::fp_alu, static_cast<std::uint64_t>(out.width()) * 8);
    rt::account(rt::op::int_alu, static_cast<std::uint64_t>(out.width()) * 14);
    rt::account(rt::op::mem, static_cast<std::uint64_t>(out.width()) * 6);
  }

  overlay_clutter(out, to_scene, index);
  return out;
}

img::image_u8 synthetic_video::frame_clean(int index) const {
  const geo::mat3 to_scene =
      pose_to_scene(path_[static_cast<std::size_t>(index)],
                    params_.frame_width, params_.frame_height);

  img::image_u8 out(params_.frame_width, params_.frame_height, 1);
  rng noise(params_.seed * 0x51ed2701ULL + static_cast<std::uint64_t>(index));

  // The per-pixel normal() draws are replicated up front in raster order:
  // Box–Muller caches a spare draw, so the stream is call-order-sensitive
  // and must match the instrumented lane's one-call-per-pixel sequence.
  std::vector<double> noise_buf;
  const bool noisy = params_.sensor_noise_sigma > 0.0;
  if (noisy) {
    noise_buf.resize(out.size());
    for (auto& v : noise_buf) v = noise.normal();
  }

  const int w = out.width();
  core::thread_pool::current().parallel_for(
      0, out.height(), 8, [&](std::int64_t y0, std::int64_t y1, std::size_t) {
        for (int y = static_cast<int>(y0); y < y1; ++y) {
          for (int x = 0; x < w; ++x) {
            const geo::vec2 s = to_scene.apply({x + 0.5, y + 0.5});
            const auto v = geo::sample_bilinear(scene_, s.x, s.y);
            double pixel = v ? static_cast<double>(*v) : 0.0;
            if (noisy) {
              pixel += noise_buf[static_cast<std::size_t>(y) * w + x] *
                       params_.sensor_noise_sigma;
            }
            out.at(x, y) = img::saturate_u8(pixel);
          }
        }
      });

  overlay_clutter(out, to_scene, index);
  return out;
}

void synthetic_video::overlay_clutter(img::image_u8& out,
                                      const geo::mat3& to_scene,
                                      int index) const {
  // Dynamic clutter overlay: each point's position is a pure function of
  // (seed, point id, relocation epoch), so it is stable while the point
  // survives and jumps when it relocates.  Points blend over one another in
  // id order, so both lanes run this sequentially.
  if (!clutter_epoch_.empty()) {
    const auto from_scene = to_scene.inverse();
    if (from_scene) {
      for (std::size_t k = 0; k < clutter_epoch_.size(); ++k) {
        const std::uint16_t epoch =
            clutter_epoch_[k][static_cast<std::size_t>(index)];
        std::uint64_t h = params_.seed ^ (0xc1a77e57ULL + k * 0x2545f491ULL);
        h += static_cast<std::uint64_t>(epoch) * 0x9e3779b97f4a7c15ULL;
        const std::uint64_t r0 = splitmix64(h);
        const std::uint64_t r1 = splitmix64(h);
        double sx = static_cast<double>(r0 % 100000) * 1e-5 *
                    (scene_.width() - 4);
        double sy = static_cast<double>(r1 % 100000) * 1e-5 *
                    (scene_.height() - 4);
        if (params_.clutter_height_max > 0.0) {
          // Parallax: an elevated point's apparent ground position leans
          // away from the camera nadir in proportion to its height.  The
          // height is a stable property of the point's identity (k), not of
          // its epoch, like a building that outlives the vehicles around it.
          std::uint64_t hh = params_.seed ^ (0x8e1ff00dULL + k * 0x7f4a7c15ULL);
          const double unit =
              static_cast<double>(splitmix64(hh) >> 11) * 0x1.0p-53;
          const double height =
              params_.clutter_height_min +
              unit * (params_.clutter_height_max - params_.clutter_height_min);
          const pose& cam = path_[static_cast<std::size_t>(index)];
          sx += (sx - cam.x) * height;
          sy += (sy - cam.y) * height;
        }
        const geo::vec2 f = from_scene->apply({sx, sy});
        if (f.x < 3.0 || f.y < 3.0 || f.x >= out.width() - 4.0 ||
            f.y >= out.height() - 4.0) {
          continue;
        }
        // Each point renders a distinctive 3x3 signature derived from its
        // identity hash (two tones + a pixel on/off pattern), so clutter
        // keypoints have locally unique descriptors and survive the ratio
        // test while they remain in place.  The signature is splatted with
        // bilinear weights at its subpixel position — like every static
        // scene feature, which is bilinearly sampled — so the rendered
        // position is accurate well below a pixel and parallax (not
        // rasterization jitter) governs the geometric residual.
        const auto tone_a = static_cast<std::uint8_t>(
            (r0 >> 32) & 1 ? 225 + (r1 >> 40) % 30 : 3 + (r1 >> 40) % 30);
        const auto tone_b = static_cast<std::uint8_t>(
            (r0 >> 33) & 1 ? 200 + (r1 >> 48) % 40 : 20 + (r1 >> 48) % 50);
        const std::uint32_t shape =
            static_cast<std::uint32_t>(r1 & 0x1ffffff) | (1u << 12);  // 5x5,
                                                        // center always on
        const auto base_x = static_cast<int>(std::floor(f.x));
        const auto base_y = static_cast<int>(std::floor(f.y));
        const double frac_x = f.x - base_x;
        const double frac_y = f.y - base_y;
        const double w11 = frac_x * frac_y;
        const double w10 = frac_x * (1.0 - frac_y);
        const double w01 = (1.0 - frac_x) * frac_y;
        const double w00 = (1.0 - frac_x) * (1.0 - frac_y);
        auto mix = [&out](int mx, int my, double tone, double weight) {
          if (weight <= 0.0) return;
          std::uint8_t& pixel = out.at(mx, my);
          pixel = img::saturate_u8((1.0 - weight) * pixel + weight * tone);
        };
        for (int dy = 0; dy < 5; ++dy) {
          for (int dx = 0; dx < 5; ++dx) {
            if (((shape >> (5 * dy + dx)) & 1) == 0) continue;
            const double tone = ((dx + dy) & 1) ? tone_b : tone_a;
            const int px = base_x + dx - 2;
            const int py = base_y + dy - 2;
            mix(px, py, tone, w00);
            mix(px + 1, py, tone, w10);
            mix(px, py + 1, tone, w01);
            mix(px + 1, py + 1, tone, w11);
          }
        }
      }
      rt::account(rt::op::int_alu, clutter_epoch_.size() * 8);
      rt::account(rt::op::fp_alu, clutter_epoch_.size() * 6);
    }
  }
}

frame_list::frame_list(std::vector<img::image_u8> frames)
    : frames_(std::move(frames)) {
  if (frames_.empty()) throw invalid_argument("frame_list: no frames");
  for (const auto& f : frames_) {
    if (f.width() != frames_[0].width() || f.height() != frames_[0].height() ||
        f.channels() != 1) {
      throw invalid_argument("frame_list: inconsistent frame shapes");
    }
  }
}

int frame_list::frame_count() const { return static_cast<int>(frames_.size()); }
int frame_list::frame_width() const { return frames_[0].width(); }
int frame_list::frame_height() const { return frames_[0].height(); }

img::image_u8 frame_list::frame(int index) const {
  if (index < 0 || index >= frame_count()) {
    throw invalid_argument("frame_list::frame: index out of range");
  }
  return frames_[static_cast<std::size_t>(index)];
}

const char* input_name(input_id id) noexcept {
  switch (id) {
    case input_id::input1: return "Input1";
    case input_id::input2: return "Input2";
    case input_id::input3: return "Input3";
  }
  return "Input?";
}

std::shared_ptr<const synthetic_video> make_input(input_id id, int frames,
                                                  int replica) {
  clip_params params;
  params.frame_width = 128;
  params.frame_height = 96;
  if (id == input_id::input1) {
    params.scene.seed = 0xA11CE;
    params.path = input1_path(frames);
    params.seed = 101;
    // Fast-moving, busy footage: the camera covers ground quickly (the
    // paper notes Input 1's much higher rate of view changes), so one frame
    // of extra temporal gap costs most of the inter-frame overlap; moving
    // clutter erodes matchability further.  Segment breaks are hard scene
    // cuts between cameras.
    params.scene.speckles = 3000;
    params.dynamic_clutter = 9000;
    params.clutter_stability = 0.92;
    params.clutter_height_min = 0.075;
    params.clutter_height_max = 0.095;
  } else if (id == input_id::input2) {
    params.scene.seed = 0xB0B42;
    params.path = input2_path(frames);
    params.seed = 202;
    // Calm rural-style footage: mostly static content, richly textured.
    params.scene.speckles = 20000;
    params.dynamic_clutter = 4000;
    params.clutter_stability = 0.95;
  } else {
    params.scene.seed = 0xC0FFEE;
    params.path = input3_path(frames);
    params.seed = 303;
    // Low-texture night pass: the detector is starved rather than
    // saturated.  Most of the daytime corner sources are gone (sparse
    // fields, few buildings, little ground speckle), sensor noise is up
    // (high gain in low light), and the little clutter there is flickers
    // quickly (headlights, moving shadows).  Alignment runs close to the
    // min-matches threshold, so faults that shave a few matches — harmless
    // on Inputs 1-2 — tip frames into discard here.
    params.scene.noise_octaves = 3;
    params.scene.fields = 8;
    params.scene.roads = 6;
    params.scene.buildings = 90;
    params.scene.trees = 160;
    params.scene.speckles = 1200;
    params.sensor_noise_sigma = 1.4;
    params.dynamic_clutter = 1500;
    params.clutter_stability = 0.80;
  }
  params.seed += static_cast<std::uint64_t>(replica) * 10007u;
  return std::make_shared<const synthetic_video>(params);
}

}  // namespace vs::video
