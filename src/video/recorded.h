// Frame source backed by image files on disk — how a downstream user feeds
// their own footage (e.g. frames exported from a real aerial clip) into the
// pipeline.  Complements `vs generate`, which writes clips in this layout.
#pragma once

#include <string>
#include <vector>

#include "video/generator.h"

namespace vs::video {

/// Loads every `frame_****.pgm` (or any PNM) file in a directory, sorted by
/// filename, optionally downsampling spatially (the paper downsamples its
/// inputs 3x to make thousand-run campaigns affordable).
class recorded_video final : public video_source {
 public:
  /// Throws io_error when the directory has no loadable frames or frames
  /// disagree in size.
  explicit recorded_video(const std::string& directory, int downsample = 1);

  /// Builds directly from an ordered list of file paths.
  recorded_video(const std::vector<std::string>& paths, int downsample);

  [[nodiscard]] int frame_count() const override;
  [[nodiscard]] int frame_width() const override;
  [[nodiscard]] int frame_height() const override;
  [[nodiscard]] img::image_u8 frame(int index) const override;

 private:
  frame_list frames_;

  static frame_list load(const std::vector<std::string>& paths,
                         int downsample);
};

/// Lists the PNM files (*.pgm / *.ppm / *.pnm) in `directory`, sorted.
[[nodiscard]] std::vector<std::string> list_pnm_files(
    const std::string& directory);

}  // namespace vs::video
