// Procedural aerial-landscape synthesis.
//
// The paper evaluates on two VIRAT aerial clips, which are not
// redistributable.  This module generates a deterministic overhead
// "landscape" (terrain shading + fields + roads + buildings + vegetation)
// with the corner-rich structure aerial imagery exhibits, from which the
// camera model extracts video frames.  Given the same parameters the scene
// is bit-identical on every platform (all randomness flows through vs::rng).
#pragma once

#include <cstdint>

#include "image/image.h"

namespace vs::video {

struct landscape_params {
  int width = 1024;
  int height = 768;
  std::uint64_t seed = 1;
  int noise_octaves = 4;   ///< value-noise octaves for the terrain base
  int fields = 24;         ///< large low-contrast agricultural patches
  int roads = 10;          ///< high-contrast linear features
  int buildings = 420;     ///< small bright/dark rectangles (corner sources)
  int trees = 420;         ///< dark blobs
  int speckles = 5000;     ///< 2x2 high-contrast ground clutter (rocks,
                           ///< bushes, debris) — dense FAST-corner texture
};

/// Generates the landscape.  Grayscale, `width` x `height`.
[[nodiscard]] img::image_u8 generate_landscape(const landscape_params& params);

/// Multi-octave value noise in [0, 255] at a point — exposed for tests.
[[nodiscard]] double value_noise(std::uint64_t seed, double x, double y,
                                 int octaves);

}  // namespace vs::video
