// Thread-local hardening runtime: the counterpart of rt::tls for the
// fault-containment subsystem.
//
// A resil::session is installed by app::summarize when hardening is
// enabled.  While it is alive, the deep layers participate without any API
// change: stage marks feed the CFCSS monitor, and the geometry math routes
// its critical calls through `replicated` (HAFT-style dual execution).
// When no session is active every entry point collapses to one thread-local
// load and a predictable branch, so the unhardened pipeline's behaviour —
// and, critically, its instrumented-lane hook stream — is bit-identical to
// a build without this subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/error.h"
#include "pipeline/stage.h"
#include "resil/cfcss.h"
#include "resil/hardening.h"
#include "rt/instrument.h"

namespace vs::resil {

/// Thread-local hardening state.  One pipeline run == one session.
struct runtime_state {
  bool active = false;       ///< a session is installed
  /// Per-stage selective-replication mask (bit i == pipeline::stage_id i):
  /// stages whose dual_check runs this session.
  std::uint32_t replicate_mask = 0;
  bool in_replica = false;   ///< executing inside a replica (no nesting)
  cfcss::monitor* monitor = nullptr;  ///< stage-signature monitor (or null)
  run_report report;         ///< live accumulation for the current run
};

// local-exec + constinit for the same reasons as rt::tls (see rt/instrument.h):
// no init wrapper, and no linker TLS relaxation that would break GCC 12's
// flag-carrying UBSan null checks.
extern thread_local constinit runtime_state tls VS_RT_TLS_MODEL;

/// Whether stage `s` dual-executes in the current session (false inside a
/// replica: nested replication would quadruple cost for no extra coverage).
[[nodiscard]] inline bool stage_replicated(pipeline::stage_id s) noexcept {
  return (tls.replicate_mask & pipeline::stage_bit(s)) != 0 && !tls.in_replica;
}

/// Report of the most recently *finished* session on this thread (the
/// campaign driver reads it after the workload returns, exactly as it reads
/// rt::tls after a run).
[[nodiscard]] const run_report& last_run_report() noexcept;

/// Zeroes last_run_report() — a campaign driver calls this before each
/// workload run so an unhardened run cannot inherit a stale report from an
/// earlier hardened run on the same thread.
void clear_last_run_report() noexcept;

/// RAII hardening session.  Saves/restores the previous thread state and
/// publishes the accumulated report to last_run_report() on destruction.
class session {
 public:
  explicit session(const hardening_config& config);
  ~session();
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// The report accumulated so far, with the CFCSS violation count folded
  /// in (the same value the destructor will publish).
  [[nodiscard]] run_report current_report() const noexcept;

 private:
  runtime_state saved_;
  cfcss::monitor monitor_;
};

/// Stage mark: records entry into stage `v` with the active monitor.
/// No-op without a session (or below the cfcss hardening level).
inline void mark(cfcss::node v) {
  if (tls.monitor != nullptr) tls.monitor->transition(v);
}

namespace detail {
/// RAII replica context: blocks nested replication and switches the rt
/// hooks off so the replica runs the stage's hook-free clean-lane twin
/// (cheap, and invisible to the instrumented lane's dynamic-op stream).
struct replica_context {
  runtime_state& s = tls;
  rt::replica_scope clean_lane;
  replica_context() { s.in_replica = true; }
  ~replica_context() { s.in_replica = false; }
  replica_context(const replica_context&) = delete;
  replica_context& operator=(const replica_context&) = delete;
};

/// Suppresses nested replication during a primary execution (hooks stay
/// on): the enclosing `replicated` call's replica re-runs the inner
/// computation anyway, so letting inner calls check too would compound the
/// cost (2x per nesting level) for no extra coverage.
struct nesting_guard {
  runtime_state& s = tls;
  bool prev = s.in_replica;
  nesting_guard() { s.in_replica = true; }
  ~nesting_guard() { s.in_replica = prev; }
  nesting_guard(const nesting_guard&) = delete;
  nesting_guard& operator=(const nesting_guard&) = delete;
};

[[noreturn]] inline void raise_divergence(pipeline::stage_id stage) {
  ++tls.report.replica_divergences;
  throw detected_error(
      detect_kind::replica_divergence,
      std::string("dual execution diverged in stage ") +
          pipeline::stage_name(stage));
}
}  // namespace detail

/// HAFT-style selective replication of a deterministic computation
/// belonging to pipeline stage `stage` (the registry's dual_check ==
/// recompute contract): runs `f` a second time on the hook-free clean lane
/// and compares the results with `equal`.  A divergence means a fault
/// struck the primary execution, so the silent corruption is converted
/// into a detected error the recovery ladder can contain.  `f` must be a
/// pure function of its captures.  Runs once (no check) when the session's
/// replication mask excludes the stage or when already inside a replica.
template <class F, class Eq>
auto replicated(pipeline::stage_id stage, F&& f, Eq&& equal) -> decltype(f()) {
  if (!stage_replicated(stage)) return f();
  auto first = [&] {
    const detail::nesting_guard primary;  // outermost call owns the check
    return f();
  }();
  {
    const detail::replica_context replica;
    auto second = f();
    if (!equal(first, second)) detail::raise_divergence(stage);
  }
  return first;
}

/// Checksum-compare dual execution for buffer-producing stages (the
/// registry's dual_check == checksum contract).  The primary execution has
/// already produced its buffer; `primary_digest` digests it lazily and
/// `replica_digest` re-runs the producer on the clean lane and digests the
/// replica's buffer.  Both callbacks return a 64-bit digest; disagreement
/// raises the same detected replica divergence as `replicated`.  No-op
/// when the stage is not replicated this session.
template <class DigestPrimary, class DigestReplica>
void verify_replica(pipeline::stage_id stage, DigestPrimary&& primary_digest,
                    DigestReplica&& replica_digest) {
  if (!stage_replicated(stage)) return;
  const std::uint64_t primary = primary_digest();
  std::uint64_t replica = 0;
  {
    const detail::replica_context context;
    replica = replica_digest();
  }
  if (primary != replica) detail::raise_divergence(stage);
}

/// Predicate-form dual check: runs `check` on the clean lane and raises
/// the replica divergence when it returns false.  For verifiers that
/// re-derive per-element products of the primary result (the extraction
/// stages' per-keypoint scoring check) instead of re-running the whole
/// stage.  No-op when the stage is not replicated this session.
template <class Check>
void verify_checked(pipeline::stage_id stage, Check&& check) {
  if (!stage_replicated(stage)) return;
  bool agrees = false;
  {
    const detail::replica_context context;
    agrees = check();
  }
  if (!agrees) detail::raise_divergence(stage);
}

/// Recompute-compare against an already-produced primary result: the
/// sibling of `replicated` for callers whose primary execution happened
/// upstream (the executor's fused extraction stages and the prefetch
/// ring).  Re-runs `recompute` on the clean lane and compares to `primary`
/// with `equal`.
template <class T, class F, class Eq>
void verify_recomputed(pipeline::stage_id stage, const T& primary,
                       F&& recompute, Eq&& equal) {
  if (!stage_replicated(stage)) return;
  bool agrees = false;
  {
    const detail::replica_context context;
    agrees = equal(primary, recompute());
  }
  if (!agrees) detail::raise_divergence(stage);
}

}  // namespace vs::resil
