// Thread-local hardening runtime: the counterpart of rt::tls for the
// fault-containment subsystem.
//
// A resil::session is installed by app::summarize when hardening is
// enabled.  While it is alive, the deep layers participate without any API
// change: stage marks feed the CFCSS monitor, and the geometry math routes
// its critical calls through `replicated` (HAFT-style dual execution).
// When no session is active every entry point collapses to one thread-local
// load and a predictable branch, so the unhardened pipeline's behaviour —
// and, critically, its instrumented-lane hook stream — is bit-identical to
// a build without this subsystem.
#pragma once

#include <cstdint>
#include <utility>

#include "core/error.h"
#include "resil/cfcss.h"
#include "resil/hardening.h"

namespace vs::resil {

/// Thread-local hardening state.  One pipeline run == one session.
struct runtime_state {
  bool active = false;       ///< a session is installed
  bool replicate = false;    ///< dual-execute replicated geometry calls
  bool in_replica = false;   ///< executing inside a replica (no nesting)
  cfcss::monitor* monitor = nullptr;  ///< stage-signature monitor (or null)
  run_report report;         ///< live accumulation for the current run
};

extern thread_local runtime_state tls;

/// Report of the most recently *finished* session on this thread (the
/// campaign driver reads it after the workload returns, exactly as it reads
/// rt::tls after a run).
[[nodiscard]] const run_report& last_run_report() noexcept;

/// Zeroes last_run_report() — a campaign driver calls this before each
/// workload run so an unhardened run cannot inherit a stale report from an
/// earlier hardened run on the same thread.
void clear_last_run_report() noexcept;

/// RAII hardening session.  Saves/restores the previous thread state and
/// publishes the accumulated report to last_run_report() on destruction.
class session {
 public:
  explicit session(const hardening_config& config);
  ~session();
  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// The report accumulated so far, with the CFCSS violation count folded
  /// in (the same value the destructor will publish).
  [[nodiscard]] run_report current_report() const noexcept;

 private:
  runtime_state saved_;
  cfcss::monitor monitor_;
};

/// Stage mark: records entry into stage `v` with the active monitor.
/// No-op without a session (or below the cfcss hardening level).
inline void mark(cfcss::node v) {
  if (tls.monitor != nullptr) tls.monitor->transition(v);
}

/// HAFT-style selective replication of a deterministic computation: runs
/// `f` twice and compares the results with `equal`; a divergence means a
/// fault struck one replica, so the silent corruption is converted into a
/// detected error.  Replicas must be pure functions of their captures.
/// Runs once (no check) when replication is off or when already inside a
/// replica (nested replication would quadruple cost for no extra coverage).
template <class F, class Eq>
auto replicated(F&& f, Eq&& equal) -> decltype(f()) {
  runtime_state& s = tls;
  if (!s.replicate || s.in_replica) return f();
  s.in_replica = true;
  struct reset {  // exception-safe: a replica may itself crash or hang
    runtime_state& s;
    ~reset() { s.in_replica = false; }
  } guard{s};
  auto first = f();
  auto second = f();
  if (!equal(first, second)) {
    ++s.report.replica_divergences;
    throw detected_error(detect_kind::replica_divergence,
                         "replicated computation diverged");
  }
  return first;
}

}  // namespace vs::resil
